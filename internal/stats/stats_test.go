package stats

import (
	"testing"

	"dramlat/internal/memreq"
)

func gid(load uint32) memreq.GroupID { return memreq.GroupID{SM: 1, Warp: 2, Load: load} }

func TestFullyResidentLoadNotTracked(t *testing.T) {
	c := NewCollector()
	c.OnLoadIssue(gid(1), 100, 4, 0)
	if c.Outstanding() != 0 {
		t.Fatal("fully resident load tracked as group")
	}
	if c.TotalLoads != 1 || c.TotalLines != 4 || c.MultiReqLoads != 1 {
		t.Fatalf("counters: %+v", c)
	}
}

func TestGroupLifecycle(t *testing.T) {
	c := NewCollector()
	c.OnLoadIssue(gid(1), 100, 6, 3)
	if c.Outstanding() != 1 {
		t.Fatal("group not tracked")
	}
	c.OnMCArrive(gid(1), 0)
	c.OnMCArrive(gid(1), 4)
	c.OnMCArrive(gid(1), 4)
	c.OnDRAMDone(gid(1), 300)
	c.OnDRAMDone(gid(1), 450)
	c.OnResp(gid(1), 340)
	c.OnResp(gid(1), 490)
	if c.Outstanding() != 1 {
		t.Fatal("group finalized early")
	}
	c.OnResp(gid(1), 520)
	if c.Outstanding() != 0 || len(c.Done()) != 1 {
		t.Fatal("group not finalized on last response")
	}
	g := c.Done()[0]
	if g.FirstResp != 340 || g.LastResp != 520 {
		t.Fatalf("resp window %d..%d", g.FirstResp, g.LastResp)
	}
	if g.FirstDRAMDone != 300 || g.LastDRAMDone != 450 {
		t.Fatalf("dram window %d..%d", g.FirstDRAMDone, g.LastDRAMDone)
	}
	if g.MCArrived != 3 || g.ChannelMask != (1|1<<4) {
		t.Fatalf("mc arrival: %d mask %b", g.MCArrived, g.ChannelMask)
	}
}

func TestEventsForUnknownGroupIgnored(t *testing.T) {
	c := NewCollector()
	c.OnMCArrive(gid(9), 0)
	c.OnDRAMDone(gid(9), 10)
	c.OnResp(gid(9), 20)
	if c.Outstanding() != 0 || len(c.Done()) != 0 {
		t.Fatal("phantom group created")
	}
}

func TestSummarize(t *testing.T) {
	c := NewCollector()
	// Load 1: two requests, both DRAM-serviced on two channels.
	c.OnLoadIssue(gid(1), 0, 2, 2)
	c.OnMCArrive(gid(1), 0)
	c.OnMCArrive(gid(1), 1)
	c.OnDRAMDone(gid(1), 100)
	c.OnDRAMDone(gid(1), 180)
	c.OnResp(gid(1), 120)
	c.OnResp(gid(1), 200)
	// Load 2: one request (single-channel).
	c.OnLoadIssue(gid(2), 0, 1, 1)
	c.OnMCArrive(gid(2), 3)
	c.OnDRAMDone(gid(2), 90)
	c.OnResp(gid(2), 110)
	// Load 3: fully L1 resident.
	c.OnLoadIssue(gid(3), 0, 1, 0)

	s := c.Summarize()
	if s.Loads != 3 {
		t.Fatalf("loads %d", s.Loads)
	}
	if s.MultiReqFrac < 0.33 || s.MultiReqFrac > 0.34 {
		t.Fatalf("multi frac %v", s.MultiReqFrac)
	}
	if s.ReqsPerLoad != 4.0/3 {
		t.Fatalf("reqs/load %v", s.ReqsPerLoad)
	}
	if s.AvgMCsTouched != 1.5 {
		t.Fatalf("MCs %v", s.AvgMCsTouched)
	}
	if s.DivergenceGap != 80 {
		t.Fatalf("gap %v", s.DivergenceGap)
	}
	// last/first for load 1: 200/120.
	if s.LastOverFirst < 1.66 || s.LastOverFirst > 1.67 {
		t.Fatalf("last/first %v", s.LastOverFirst)
	}
	// effective latency: (200 + 110)/2.
	if s.EffectiveLatency != 155 {
		t.Fatalf("eff lat %v", s.EffectiveLatency)
	}
	if s.MemGroups != 2 {
		t.Fatalf("mem groups %d", s.MemGroups)
	}
}

func TestStores(t *testing.T) {
	c := NewCollector()
	c.OnStoreIssue(3)
	c.OnStoreIssue(1)
	if c.Stores != 2 || c.StoreLines != 4 {
		t.Fatalf("stores %d lines %d", c.Stores, c.StoreLines)
	}
}

func TestEmptySummary(t *testing.T) {
	s := NewCollector().Summarize()
	if s.Loads != 0 || s.ReqsPerLoad != 0 || s.EffectiveLatency != 0 {
		t.Fatalf("empty summary %+v", s)
	}
}

func TestPopcount(t *testing.T) {
	for m, want := range map[uint32]int{0: 0, 1: 1, 0b101011: 4, 0xffffffff: 32} {
		if got := popcount(m); got != want {
			t.Fatalf("popcount(%b) = %d, want %d", m, got, want)
		}
	}
}

func TestPercentile(t *testing.T) {
	c := NewCollector()
	for i := 1; i <= 10; i++ {
		g := gid(uint32(i))
		c.OnLoadIssue(g, 0, 2, 2)
		c.OnDRAMDone(g, 100)
		c.OnDRAMDone(g, 100+int64(i)*10) // gaps 10..100
		c.OnResp(g, 200)
		c.OnResp(g, 300)
	}
	if got := c.Percentile(0); got != 10 {
		t.Fatalf("p0 = %v", got)
	}
	if got := c.Percentile(100); got != 100 {
		t.Fatalf("p100 = %v", got)
	}
	mid := c.Percentile(50)
	if mid < 40 || mid > 60 {
		t.Fatalf("p50 = %v", mid)
	}
	if NewCollector().Percentile(50) != 0 {
		t.Fatal("empty percentile not 0")
	}
}
