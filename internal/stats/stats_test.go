package stats

import (
	"testing"

	"dramlat/internal/memreq"
)

func gid(load uint32) memreq.GroupID { return memreq.GroupID{SM: 1, Warp: 2, Load: load} }

func TestFullyResidentLoadNotTracked(t *testing.T) {
	c := NewCollector()
	c.OnLoadIssue(gid(1), 100, 4, 0)
	if c.Outstanding() != 0 {
		t.Fatal("fully resident load tracked as group")
	}
	if c.TotalLoads != 1 || c.TotalLines != 4 || c.MultiReqLoads != 1 {
		t.Fatalf("counters: %+v", c)
	}
}

func TestGroupLifecycle(t *testing.T) {
	c := NewCollector()
	c.OnLoadIssue(gid(1), 100, 6, 3)
	if c.Outstanding() != 1 {
		t.Fatal("group not tracked")
	}
	c.OnMCArrive(gid(1), 0)
	c.OnMCArrive(gid(1), 4)
	c.OnMCArrive(gid(1), 4)
	c.OnDRAMDone(gid(1), 300)
	c.OnDRAMDone(gid(1), 450)
	c.OnResp(gid(1), 340)
	c.OnResp(gid(1), 490)
	if c.Outstanding() != 1 {
		t.Fatal("group finalized early")
	}
	c.OnResp(gid(1), 520)
	if c.Outstanding() != 0 || len(c.Done()) != 1 {
		t.Fatal("group not finalized on last response")
	}
	g := c.Done()[0]
	if g.FirstResp != 340 || g.LastResp != 520 {
		t.Fatalf("resp window %d..%d", g.FirstResp, g.LastResp)
	}
	if g.FirstDRAMDone != 300 || g.LastDRAMDone != 450 {
		t.Fatalf("dram window %d..%d", g.FirstDRAMDone, g.LastDRAMDone)
	}
	if g.MCArrived != 3 || g.Channels.Count() != 2 || !g.Channels.Has(0) || !g.Channels.Has(4) {
		t.Fatalf("mc arrival: %d channels %d", g.MCArrived, g.Channels.Count())
	}
}

func TestEventsForUnknownGroupIgnored(t *testing.T) {
	c := NewCollector()
	c.OnMCArrive(gid(9), 0)
	c.OnDRAMDone(gid(9), 10)
	c.OnResp(gid(9), 20)
	if c.Outstanding() != 0 || len(c.Done()) != 0 {
		t.Fatal("phantom group created")
	}
}

func TestSummarize(t *testing.T) {
	c := NewCollector()
	// Load 1: two requests, both DRAM-serviced on two channels.
	c.OnLoadIssue(gid(1), 0, 2, 2)
	c.OnMCArrive(gid(1), 0)
	c.OnMCArrive(gid(1), 1)
	c.OnDRAMDone(gid(1), 100)
	c.OnDRAMDone(gid(1), 180)
	c.OnResp(gid(1), 120)
	c.OnResp(gid(1), 200)
	// Load 2: one request (single-channel).
	c.OnLoadIssue(gid(2), 0, 1, 1)
	c.OnMCArrive(gid(2), 3)
	c.OnDRAMDone(gid(2), 90)
	c.OnResp(gid(2), 110)
	// Load 3: fully L1 resident.
	c.OnLoadIssue(gid(3), 0, 1, 0)

	s := c.Summarize()
	if s.Loads != 3 {
		t.Fatalf("loads %d", s.Loads)
	}
	if s.MultiReqFrac < 0.33 || s.MultiReqFrac > 0.34 {
		t.Fatalf("multi frac %v", s.MultiReqFrac)
	}
	if s.ReqsPerLoad != 4.0/3 {
		t.Fatalf("reqs/load %v", s.ReqsPerLoad)
	}
	if s.AvgMCsTouched != 1.5 {
		t.Fatalf("MCs %v", s.AvgMCsTouched)
	}
	if s.DivergenceGap != 80 {
		t.Fatalf("gap %v", s.DivergenceGap)
	}
	// last/first for load 1: 200/120.
	if s.LastOverFirst < 1.66 || s.LastOverFirst > 1.67 {
		t.Fatalf("last/first %v", s.LastOverFirst)
	}
	// effective latency: (200 + 110)/2.
	if s.EffectiveLatency != 155 {
		t.Fatalf("eff lat %v", s.EffectiveLatency)
	}
	if s.MemGroups != 2 {
		t.Fatalf("mem groups %d", s.MemGroups)
	}
}

func TestStores(t *testing.T) {
	c := NewCollector()
	c.OnStoreIssue(3)
	c.OnStoreIssue(1)
	if c.Stores != 2 || c.StoreLines != 4 {
		t.Fatalf("stores %d lines %d", c.Stores, c.StoreLines)
	}
}

func TestEmptySummary(t *testing.T) {
	s := NewCollector().Summarize()
	if s.Loads != 0 || s.ReqsPerLoad != 0 || s.EffectiveLatency != 0 {
		t.Fatalf("empty summary %+v", s)
	}
}

func TestChannelSet(t *testing.T) {
	var s ChannelSet
	if s.Count() != 0 || s.Has(0) {
		t.Fatal("zero set not empty")
	}
	for _, ch := range []int{0, 5, 5, 63, 64, 100, -1} {
		s.Add(ch)
	}
	if got := s.Count(); got != 5 {
		t.Fatalf("count = %d, want 5 (dup and negative must not count)", got)
	}
	for _, ch := range []int{0, 5, 63, 64, 100} {
		if !s.Has(ch) {
			t.Fatalf("missing channel %d", ch)
		}
	}
	for _, ch := range []int{1, 62, 65, 101, -1} {
		if s.Has(ch) {
			t.Fatalf("phantom channel %d", ch)
		}
	}
}

// TestChannelSetWide pins that channel indices beyond one machine word do
// not truncate the Fig 3 controllers-touched count (the old uint32 mask
// aliased channel 32 onto channel 0).
func TestChannelSetWide(t *testing.T) {
	c := NewCollector()
	c.OnLoadIssue(gid(1), 0, 80, 80)
	for ch := 0; ch < 80; ch++ {
		c.OnMCArrive(gid(1), ch)
	}
	c.OnDRAMDone(gid(1), 10)
	for i := 0; i < 80; i++ {
		c.OnResp(gid(1), 20)
	}
	if got := c.Done()[0].Channels.Count(); got != 80 {
		t.Fatalf("channels touched = %d, want 80", got)
	}
}

// TestPercentile pins the linear-interpolation definition on gaps 10..100:
// rank = p/100*(n-1), interpolated between the two closest order
// statistics.
func TestPercentile(t *testing.T) {
	c := NewCollector()
	for i := 1; i <= 10; i++ {
		g := gid(uint32(i))
		c.OnLoadIssue(g, 0, 2, 2)
		c.OnDRAMDone(g, 100)
		c.OnDRAMDone(g, 100+int64(i)*10) // gaps 10..100
		c.OnResp(g, 200)
		c.OnResp(g, 300)
	}
	for _, tc := range []struct {
		p    float64
		want float64
	}{
		{-5, 10},   // clamped below
		{0, 10},    // p0 = min
		{25, 32.5}, // rank 2.25 between 30 and 40
		{50, 55},   // rank 4.5 between 50 and 60
		{90, 91},   // rank 8.1 between 90 and 100
		{99, 99.1}, // rank 8.91 between 90 and 100
		{100, 100}, // p100 = max
		{150, 100}, // clamped above
	} {
		if got := c.Percentile(tc.p); got < tc.want-1e-9 || got > tc.want+1e-9 {
			t.Fatalf("p%v = %v, want %v", tc.p, got, tc.want)
		}
	}
	if NewCollector().Percentile(50) != 0 {
		t.Fatal("empty percentile not 0")
	}
}

// TestPercentileSingleGroup covers the n=1 degenerate distribution: every
// percentile is the lone gap.
func TestPercentileSingleGroup(t *testing.T) {
	c := NewCollector()
	c.OnLoadIssue(gid(1), 0, 2, 2)
	c.OnDRAMDone(gid(1), 100)
	c.OnDRAMDone(gid(1), 140)
	c.OnResp(gid(1), 150)
	c.OnResp(gid(1), 160)
	for _, p := range []float64{0, 50, 99, 100} {
		if got := c.Percentile(p); got != 40 {
			t.Fatalf("p%v = %v, want 40", p, got)
		}
	}
}

func TestOutstandingAtDrain(t *testing.T) {
	c := NewCollector()
	c.OnLoadIssue(gid(1), 0, 2, 2)
	c.OnLoadIssue(gid(2), 0, 3, 3)
	c.OnResp(gid(1), 50)
	if c.Outstanding() != 2 {
		t.Fatalf("outstanding = %d, want 2", c.Outstanding())
	}
	c.OnResp(gid(1), 60) // finalizes group 1
	if c.Outstanding() != 1 || len(c.Done()) != 1 {
		t.Fatalf("outstanding = %d done = %d", c.Outstanding(), len(c.Done()))
	}
	// Group 2 never completes: it stays outstanding (a MaxTicks run).
	if s := c.Summarize(); s.MemGroups != 1 {
		t.Fatalf("mem groups %d, want 1 (unfinalized group must not count)", s.MemGroups)
	}
}

// TestDuplicateFinalizationGuard pins that responses beyond Sent cannot
// finalize (and double-append) a group twice.
func TestDuplicateFinalizationGuard(t *testing.T) {
	c := NewCollector()
	c.OnLoadIssue(gid(1), 0, 1, 1)
	c.OnResp(gid(1), 10)
	c.OnResp(gid(1), 20) // late duplicate: group already finalized+removed
	if len(c.Done()) != 1 {
		t.Fatalf("done = %d, want 1", len(c.Done()))
	}
	if g := c.Done()[0]; g.LastResp != 10 || !g.Completed {
		t.Fatalf("finalized record mutated by late response: %+v", g)
	}
}

// TestOnLoadIssueZeroSentThenEvents covers the sent==0 path followed by
// stray downstream events for the same ID: nothing may be tracked.
func TestOnLoadIssueZeroSentThenEvents(t *testing.T) {
	c := NewCollector()
	c.OnLoadIssue(gid(7), 0, 2, 0)
	c.OnMCArrive(gid(7), 1)
	c.OnDRAMDone(gid(7), 30)
	c.OnResp(gid(7), 40)
	if c.Outstanding() != 0 || len(c.Done()) != 0 {
		t.Fatal("zero-sent load leaked into tracking")
	}
	if s := c.Summarize(); s.Loads != 1 || s.MemGroups != 0 {
		t.Fatalf("summary %+v", s)
	}
}
