package stats

import (
	"math"
	"sort"

	"dramlat/internal/guard"
)

// Bound is one metric's allowed deviation between a sampled run and
// its exact event-engine reference: the larger of Rel×|exact| and Abs.
// The absolute floor keeps near-zero references (an IPC of 0.02, a p50
// gap of 3 ticks) from demanding sub-tick agreement no statistical
// model can deliver.
type Bound struct {
	Rel float64 // relative tolerance, e.g. 0.15 = ±15%
	Abs float64 // absolute floor in the metric's own unit
}

// Allowed returns the absolute deviation the bound permits against
// reference value exact.
func (b Bound) Allowed(exact float64) float64 {
	return math.Max(b.Rel*math.Abs(exact), b.Abs)
}

// Bounds is the distributional-validation contract for the sampled
// engine: per-metric tolerances for IPC and the divergence-gap
// percentiles the paper's figures are built from.
type Bounds struct {
	IPC    Bound
	GapP50 Bound
	GapP90 Bound
	GapP99 Bound
}

// DefaultBounds returns the tolerances the CI accuracy gate runs
// with. IPC is the tightest (it averages over the whole run); the gap
// percentiles widen toward the tail, where a finite sample of
// synthesized groups has the most variance. The absolute floors are
// in ticks for the gaps and absolute IPC for IPC.
func DefaultBounds() Bounds {
	return Bounds{
		IPC:    Bound{Rel: 0.15, Abs: 0.02},
		GapP50: Bound{Rel: 0.25, Abs: 30},
		GapP90: Bound{Rel: 0.30, Abs: 60},
		GapP99: Bound{Rel: 0.40, Abs: 120},
	}
}

// MetricPair is one (sampled, exact) comparison for Check.
type MetricPair struct {
	Name    string
	Sampled float64
	Exact   float64
	Bound   Bound
}

// Check validates every pair and returns a *guard.AccuracyError for
// the worst violation (largest deviation-to-allowance ratio), or nil
// when all metrics are in bounds.
func Check(pairs []MetricPair) error {
	var worst *guard.AccuracyError
	worstRatio := 1.0
	for _, p := range pairs {
		allowed := p.Bound.Allowed(p.Exact)
		dev := math.Abs(p.Sampled - p.Exact)
		if allowed <= 0 || dev <= allowed {
			continue
		}
		if ratio := dev / allowed; ratio > worstRatio {
			worstRatio = ratio
			worst = &guard.AccuracyError{
				Metric: p.Name, Sampled: p.Sampled, Exact: p.Exact, Bound: allowed,
			}
		}
	}
	if worst != nil {
		return worst
	}
	return nil
}

// MeanCI95 returns the sample mean of xs and the half-width of its
// 95% confidence interval (1.96·s/√n). Fewer than two samples give a
// half-width of 0 — with one measurement window there is no
// window-to-window variance to report.
func MeanCI95(xs []float64) (mean, half float64) {
	n := len(xs)
	if n == 0 {
		return 0, 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean = sum / float64(n)
	if n < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(n-1))
	return mean, 1.96 * sd / math.Sqrt(float64(n))
}

// PercentileOf returns the p-th percentile (0..100) of xs with the
// same linear interpolation Collector.Percentile uses, so per-window
// gap percentiles and whole-run percentiles are directly comparable.
// It sorts a copy; xs is not modified. Empty input returns 0.
func PercentileOf(xs []float64, p float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(rank)
	if lo+1 >= n {
		return s[n-1]
	}
	return s[lo] + (rank-float64(lo))*(s[lo+1]-s[lo])
}
