// Package stats collects the per-warp-load measurements behind every
// figure of the paper: coalescing efficiency (Fig 2), main-memory latency
// divergence and controllers touched (Figs 3, 10), effective memory latency
// (Fig 9), and the aggregate run metrics.
package stats

import (
	"sort"

	"dramlat/internal/memreq"
)

// GroupRec tracks one dynamic warp-load from issue to the return of its
// last response.
type GroupRec struct {
	ID        memreq.GroupID
	IssueTick int64

	// Lines is the number of memory requests after coalescing (Fig 2).
	Lines int
	// Sent is the number of requests that missed L1 and entered the
	// memory system (including those later filtered by the L2).
	Sent int
	// MCArrived is the number of requests that reached a DRAM memory
	// controller's read queue.
	MCArrived int
	// Channels is the set of memory controllers touched (Fig 3).
	Channels ChannelSet

	// DRAM service window (Figs 3, 10).
	FirstDRAMDone int64
	LastDRAMDone  int64
	DRAMDone      int

	// SM-side response window. FirstResp/LastResp give the effective
	// memory latency (Fig 9) and the warp's unblock time.
	FirstResp int64
	LastResp  int64
	RespSeen  int

	Completed bool
}

// colOp is one buffered collector call in a staged child collector.
type colOp struct {
	kind uint8 // 0 load-issue, 1 store-issue, 2 mc-arrive, 3 dram-done, 4 resp
	id   memreq.GroupID
	t    int64
	a, b int
}

// Collector aggregates GroupRecs for one simulation run. It is not safe
// for concurrent use. The parallel engine gives each SM and each
// partition a staged child (Stage) that buffers calls instead of
// mutating shared state; the coordinator replays the buffers into the
// parent in a fixed component order at each phase barrier (Absorb), so
// the parent sees exactly the call sequence the serial engines produce.
type Collector struct {
	groups map[memreq.GroupID]*GroupRec
	done   []*GroupRec

	// parent is non-nil on a staged child; stage buffers its calls.
	parent *Collector
	stage  []colOp

	// TotalLoads counts every warp-load issued, including fully
	// L1-resident ones.
	TotalLoads int64
	// MultiReqLoads counts loads producing more than one request after
	// coalescing (the black bar of Fig 2).
	MultiReqLoads int64
	// TotalLines sums post-coalescing requests over all loads.
	TotalLines int64
	// Stores and StoreLines mirror the above for stores.
	Stores     int64
	StoreLines int64
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{groups: make(map[memreq.GroupID]*GroupRec)}
}

// Stage returns a staged child collector that buffers calls for later
// deterministic replay into c (see Absorb). A nil receiver returns nil,
// so disabled-collector wiring stays a nil check per site.
func (c *Collector) Stage() *Collector {
	if c == nil {
		return nil
	}
	return &Collector{parent: c}
}

// Absorb replays a staged child's buffered calls into c in their
// recording order and resets the child. Children are absorbed by the
// parallel engine's coordinator in ascending component order at each
// phase barrier, reproducing the serial engines' exact call sequence
// (which fixes the done-slice order, the First/Last timestamps and the
// float summation order of Summarize). Nil child or receiver is a no-op.
func (c *Collector) Absorb(child *Collector) {
	if c == nil || child == nil {
		return
	}
	for _, op := range child.stage {
		switch op.kind {
		case 0:
			c.OnLoadIssue(op.id, op.t, op.a, op.b)
		case 1:
			c.OnStoreIssue(op.a)
		case 2:
			c.OnMCArrive(op.id, op.a)
		case 3:
			c.OnDRAMDone(op.id, op.t)
		case 4:
			c.OnResp(op.id, op.t)
		}
	}
	child.stage = child.stage[:0]
}

// OnLoadIssue records a warp-load leaving the coalescer. sent is the
// number of requests entering the memory system (L1 misses).
func (c *Collector) OnLoadIssue(id memreq.GroupID, now int64, lines, sent int) {
	if c.parent != nil {
		c.stage = append(c.stage, colOp{kind: 0, id: id, t: now, a: lines, b: sent})
		return
	}
	c.TotalLoads++
	c.TotalLines += int64(lines)
	if lines > 1 {
		c.MultiReqLoads++
	}
	if sent == 0 {
		return // fully L1-resident; nothing further to track
	}
	c.groups[id] = &GroupRec{
		ID: id, IssueTick: now, Lines: lines, Sent: sent,
		FirstDRAMDone: -1, FirstResp: -1,
	}
}

// OnStoreIssue records a store leaving the coalescer.
func (c *Collector) OnStoreIssue(lines int) {
	if c.parent != nil {
		c.stage = append(c.stage, colOp{kind: 1, a: lines})
		return
	}
	c.Stores++
	c.StoreLines += int64(lines)
}

// OnMCArrive records a request of the group entering controller ch's read
// queue.
func (c *Collector) OnMCArrive(id memreq.GroupID, ch int) {
	if c.parent != nil {
		c.stage = append(c.stage, colOp{kind: 2, id: id, a: ch})
		return
	}
	if g, ok := c.groups[id]; ok {
		g.MCArrived++
		g.Channels.Add(ch)
	}
}

// OnDRAMDone records DRAM finishing one of the group's requests.
func (c *Collector) OnDRAMDone(id memreq.GroupID, now int64) {
	if c.parent != nil {
		c.stage = append(c.stage, colOp{kind: 3, id: id, t: now})
		return
	}
	g, ok := c.groups[id]
	if !ok {
		return
	}
	if g.FirstDRAMDone < 0 {
		g.FirstDRAMDone = now
	}
	if now > g.LastDRAMDone {
		g.LastDRAMDone = now
	}
	g.DRAMDone++
}

// OnResp records one response reaching the SM; when the expected count is
// reached the group is finalized.
func (c *Collector) OnResp(id memreq.GroupID, now int64) {
	if c.parent != nil {
		c.stage = append(c.stage, colOp{kind: 4, id: id, t: now})
		return
	}
	g, ok := c.groups[id]
	if !ok {
		return
	}
	if g.FirstResp < 0 {
		g.FirstResp = now
	}
	if now > g.LastResp {
		g.LastResp = now
	}
	g.RespSeen++
	if g.RespSeen >= g.Sent && !g.Completed {
		g.Completed = true
		c.done = append(c.done, g)
		delete(c.groups, id)
	}
}

// Done returns the finalized group records.
func (c *Collector) Done() []*GroupRec { return c.done }

// Mark returns the current length of the done slice, for DoneSince.
func (c *Collector) Mark() int { return len(c.done) }

// DoneSince returns the groups finalized after an earlier Mark — the
// sampled engine's per-window calibration sample.
func (c *Collector) DoneSince(mark int) []*GroupRec {
	if mark < 0 || mark > len(c.done) {
		return nil
	}
	return c.done[mark:]
}

// AddSynthetic appends a copy of g to the done records. The sampled
// engine uses it to stand in for the warp-loads a fast-forward region
// skipped: whole records resampled from the preceding measurement
// window, timestamps shifted into the modeled interval, so every
// downstream consumer (Summarize, Percentile, the façade's gap
// histogram) sees them exactly like detailed groups.
func (c *Collector) AddSynthetic(g GroupRec) {
	g.Completed = true
	rec := g
	c.done = append(c.done, &rec)
}

// AddModeled bulk-adds the coalescer-level counters for loads and
// stores a fast-forward region skipped, scaled from the preceding
// window's rates. Only the aggregate counters move; no group records
// are created (AddSynthetic covers those).
func (c *Collector) AddModeled(loads, multiReq, lines, stores, storeLines int64) {
	c.TotalLoads += loads
	c.MultiReqLoads += multiReq
	c.TotalLines += lines
	c.Stores += stores
	c.StoreLines += storeLines
}

// Outstanding returns the number of unfinalized groups (should be zero at
// the end of a drained run).
func (c *Collector) Outstanding() int { return len(c.groups) }

// Summary is the digest of one run's warp-load behaviour.
type Summary struct {
	Loads         int64
	MultiReqFrac  float64 // Fig 2 black bar
	ReqsPerLoad   float64 // Fig 2 line (5.9 avg in the paper)
	AvgMCsTouched float64 // Fig 3 (2.5 avg)
	// DivergenceGap is the mean (last - first) DRAM service gap in ticks
	// over groups with >= 2 DRAM-serviced requests (Figs 3, 10).
	DivergenceGap float64
	// LastOverFirst is the mean ratio of last-request to first-request
	// latency (issue -> response) over multi-response groups (~1.6x in
	// Fig 3).
	LastOverFirst float64
	// EffectiveLatency is the mean (last response - issue) over groups
	// that touched the memory system (Fig 9).
	EffectiveLatency float64
	// MemGroups is the number of groups that entered the memory system.
	MemGroups int64
}

// Percentile returns the p-th percentile (0..100) of the DRAM divergence
// gaps over multi-request groups, linearly interpolated between the two
// closest ranks (so e.g. p50 of {10, 20} is 15, not 10 as the old
// truncating index computed).
func (c *Collector) Percentile(p float64) float64 {
	var gaps []float64
	for _, g := range c.done {
		if g.DRAMDone >= 2 {
			gaps = append(gaps, float64(g.LastDRAMDone-g.FirstDRAMDone))
		}
	}
	n := len(gaps)
	if n == 0 {
		return 0
	}
	sort.Float64s(gaps)
	if p <= 0 {
		return gaps[0]
	}
	if p >= 100 {
		return gaps[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(rank)
	if lo+1 >= n {
		return gaps[n-1]
	}
	return gaps[lo] + (rank-float64(lo))*(gaps[lo+1]-gaps[lo])
}

// Summarize computes the digest.
func (c *Collector) Summarize() Summary {
	var s Summary
	s.Loads = c.TotalLoads
	if c.TotalLoads > 0 {
		s.MultiReqFrac = float64(c.MultiReqLoads) / float64(c.TotalLoads)
		s.ReqsPerLoad = float64(c.TotalLines) / float64(c.TotalLoads)
	}
	var mcSum, gapSum, ratioSum, effSum float64
	var mcN, gapN, ratioN, effN int64
	for _, g := range c.done {
		if g.MCArrived > 0 {
			mcSum += float64(g.Channels.Count())
			mcN++
		}
		if g.DRAMDone >= 2 {
			gapSum += float64(g.LastDRAMDone - g.FirstDRAMDone)
			gapN++
		}
		if g.RespSeen >= 2 && g.FirstResp > g.IssueTick {
			ratioSum += float64(g.LastResp-g.IssueTick) / float64(g.FirstResp-g.IssueTick)
			ratioN++
		}
		if g.RespSeen > 0 {
			effSum += float64(g.LastResp - g.IssueTick)
			effN++
		}
	}
	if mcN > 0 {
		s.AvgMCsTouched = mcSum / float64(mcN)
	}
	if gapN > 0 {
		s.DivergenceGap = gapSum / float64(gapN)
	}
	if ratioN > 0 {
		s.LastOverFirst = ratioSum / float64(ratioN)
	}
	if effN > 0 {
		s.EffectiveLatency = effSum / float64(effN)
	}
	s.MemGroups = effN
	return s
}
