package stats

import (
	"crypto/sha256"
	"encoding/binary"
)

// Stream is the sampled engine's deterministic pseudo-random source.
// Each fast-forward region draws from its own stream seeded from
// (key, seed, window index), where key is the spec's content hash —
// so two executions of the same sampled spec are byte-identical to
// each other regardless of which worker runs them, how many workers a
// sweep uses, or what ran before them in the process. The generator
// is splitmix64: tiny state, full 64-bit period per seed, and no
// dependence on math/rand's process-global ordering.
type Stream struct {
	x uint64
}

// NewStream derives the stream for fast-forward window idx of the run
// identified by (key, seed). The sha256 pre-hash means structurally
// similar (key, seed, idx) triples still land in unrelated state.
func NewStream(key string, seed int64, idx int) *Stream {
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[0:], uint64(seed))
	binary.LittleEndian.PutUint64(buf[8:], uint64(idx))
	h := sha256.New()
	h.Write([]byte(key))
	h.Write(buf[:])
	sum := h.Sum(nil)
	return &Stream{x: binary.LittleEndian.Uint64(sum[:8])}
}

// Uint64 returns the next 64 pseudo-random bits (splitmix64 step).
func (s *Stream) Uint64() uint64 {
	s.x += 0x9e3779b97f4a7c15
	z := s.x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). n must be positive.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}
