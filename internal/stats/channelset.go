package stats

import "math/bits"

// ChannelSet is the set of memory-controller channels a warp-group's
// requests touched (Fig 3). The inline word covers channels 0-63 with a
// single OR per insertion; wider machines spill into an overflow map, so
// a channel index beyond the word cannot silently truncate the count the
// way the old uint32 mask could.
type ChannelSet struct {
	word uint64
	over map[int]struct{} // channels >= 64; nil until one appears
}

// Add inserts channel ch into the set. Negative channels are ignored.
func (s *ChannelSet) Add(ch int) {
	switch {
	case ch < 0:
	case ch < 64:
		s.word |= 1 << uint(ch)
	default:
		if s.over == nil {
			s.over = make(map[int]struct{})
		}
		s.over[ch] = struct{}{}
	}
}

// Has reports whether channel ch is in the set.
func (s ChannelSet) Has(ch int) bool {
	switch {
	case ch < 0:
		return false
	case ch < 64:
		return s.word&(1<<uint(ch)) != 0
	default:
		_, ok := s.over[ch]
		return ok
	}
}

// Count returns the number of distinct channels in the set.
func (s ChannelSet) Count() int {
	return bits.OnesCount64(s.word) + len(s.over)
}
