package sm

import (
	"testing"

	"dramlat/internal/addrmap"
	"dramlat/internal/cache"
	"dramlat/internal/memreq"
	"dramlat/internal/stats"
)

// harness fakes the memory system: it captures injected requests and lets
// tests push responses.
type harness struct {
	sm        *SM
	col       *stats.Collector
	injected  []*memreq.Request
	responses []*memreq.Request
	reject    bool
	id        uint64
}

func newHarness(programs []Program, opts ...func(*Config)) *harness {
	h := &harness{col: stats.NewCollector()}
	cfg := Config{
		ID:     0,
		Mapper: addrmap.New(6, 16),
		L1: cache.Config{
			SizeBytes: 4096, LineBytes: 128, Ways: 4, MSHRs: 8,
		},
		L1Lat:    4,
		WarpSize: 32,
		Inject: func(r *memreq.Request, now int64) bool {
			if h.reject {
				return false
			}
			// Record a snapshot, not the live pointer: once a request is
			// delivered back the SM recycles it through its freelist, so
			// holding the original would let later issues rewrite history.
			cp := *r
			h.injected = append(h.injected, &cp)
			return true
		},
		NextID:    func() uint64 { h.id++; return h.id },
		Collector: h.col,
	}
	for _, o := range opts {
		o(&cfg)
	}
	h.sm = New(cfg, programs)
	return h
}

func (h *harness) pop() *memreq.Request {
	if len(h.responses) == 0 {
		return nil
	}
	// Hand the SM its own clone: Deliver ends with a freelist Put, and the
	// queued entry is one of the snapshots in h.injected.
	r := *h.responses[0]
	h.responses = h.responses[1:]
	return &r
}

func (h *harness) run(from, to int64) {
	for now := from; now < to; now++ {
		h.sm.Tick(now, h.pop())
	}
}

func divergentLoad(n int) Insn {
	addrs := make([]uint64, n)
	for i := range addrs {
		addrs[i] = uint64(i) * 1 << 20 // wildly divergent
	}
	return Insn{Kind: Load, Addrs: addrs}
}

func TestComputeOnlyWarpRetires(t *testing.T) {
	h := newHarness([]Program{{{Kind: Compute}, {Kind: Compute}, {Kind: Compute}}})
	h.run(0, 10)
	if !h.sm.Done() {
		t.Fatal("compute-only warp did not retire")
	}
	if h.sm.InstrIssued != 3 {
		t.Fatalf("issued %d", h.sm.InstrIssued)
	}
}

func TestLoadBlocksUntilLastResponse(t *testing.T) {
	h := newHarness([]Program{{divergentLoad(3), {Kind: Compute}}})
	h.run(0, 5)
	if len(h.injected) != 3 {
		t.Fatalf("injected %d requests, want 3", len(h.injected))
	}
	if h.sm.Done() {
		t.Fatal("warp advanced past blocking load")
	}
	// Return two of three responses: still blocked.
	h.responses = append(h.responses, h.injected[0], h.injected[1])
	h.run(5, 10)
	if h.sm.Done() {
		t.Fatal("warp unblocked before last response")
	}
	h.responses = append(h.responses, h.injected[2])
	h.run(10, 15)
	if !h.sm.Done() {
		t.Fatal("warp stuck after all responses")
	}
}

func TestZeroDivergenceUnblocksOnFirst(t *testing.T) {
	h := newHarness([]Program{{divergentLoad(3), {Kind: Compute}}},
		func(c *Config) { c.ZeroDivergence = true })
	h.run(0, 5)
	h.responses = append(h.responses, h.injected[0])
	h.run(5, 10)
	if !h.sm.Done() {
		t.Fatal("zero-divergence warp still blocked after first response")
	}
}

func TestPerfectCoalescingSendsOne(t *testing.T) {
	h := newHarness([]Program{{divergentLoad(8), {Kind: Compute}}},
		func(c *Config) { c.PerfectCoalescing = true })
	h.run(0, 5)
	if len(h.injected) != 1 {
		t.Fatalf("injected %d, want 1", len(h.injected))
	}
}

func TestL1HitNeedsNoRequest(t *testing.T) {
	prog := Program{
		divergentLoad(1),
		{Kind: Load, Addrs: []uint64{0}}, // same line as first lane
		{Kind: Compute},
	}
	h := newHarness([]Program{prog})
	h.run(0, 3)
	if len(h.injected) != 1 {
		t.Fatalf("first load injected %d", len(h.injected))
	}
	h.responses = append(h.responses, h.injected[0])
	h.run(3, 20)
	if !h.sm.Done() {
		t.Fatal("second load (L1 hit) blocked the warp")
	}
	if len(h.injected) != 1 {
		t.Fatalf("L1 hit sent a request (total %d)", len(h.injected))
	}
}

func TestLastInChannelTagging(t *testing.T) {
	// 4 divergent lines: channels may repeat; exactly one request per
	// distinct channel must carry the tag, and it must be the last sent
	// to that channel.
	h := newHarness([]Program{{divergentLoad(6)}})
	h.run(0, 10)
	lastIdx := map[int]int{}
	for i, r := range h.injected {
		lastIdx[r.Channel] = i
	}
	for i, r := range h.injected {
		want := lastIdx[r.Channel] == i
		if r.LastInChannel != want {
			t.Fatalf("request %d (ch %d): tag=%v want %v", i, r.Channel, r.LastInChannel, want)
		}
	}
}

func TestMSHRMergeAcrossWarps(t *testing.T) {
	// Two warps load the same line: one request, both block, both wake.
	same := Insn{Kind: Load, Addrs: []uint64{0x123400}}
	h := newHarness([]Program{{same}, {same}})
	h.run(0, 5)
	var real []*memreq.Request
	credits := 0
	for _, r := range h.injected {
		if r.CreditOnly {
			credits++
		} else {
			real = append(real, r)
		}
	}
	if len(real) != 1 {
		t.Fatalf("injected %d real requests, want 1 (MSHR merge)", len(real))
	}
	// The merged warp's tagged request became a credit marker.
	if credits != 1 {
		t.Fatalf("credits = %d, want 1", credits)
	}
	h.responses = append(h.responses, real[0])
	h.run(5, 10)
	if !h.sm.Done() {
		t.Fatal("merged warp not woken by carrier fill")
	}
}

func TestCreditMarkerOnMergedTag(t *testing.T) {
	// Warp 0 fetches lines A,B. Warp 1 loads C (other channel) then B:
	// if warp 1's tagged request for B merges into warp 0's MSHR, a
	// credit marker must be emitted to B's channel.
	lineA := uint64(0x100000)
	lineB := uint64(0x200000)
	m := addrmap.New(6, 16)
	chB := m.Decode(lineB).Channel
	// find a lineC on a different channel
	lineC := uint64(0x300000)
	for m.Decode(lineC).Channel == chB {
		lineC += 128
	}
	progs := []Program{
		{{Kind: Load, Addrs: []uint64{lineA, lineB}}},
		{{Kind: Load, Addrs: []uint64{lineC, lineB}}},
	}
	h := newHarness(progs)
	h.run(0, 10)
	credits := 0
	sawB := 0
	for _, r := range h.injected {
		if r.CreditOnly {
			credits++
			if r.Channel != chB {
				t.Fatalf("credit to channel %d, want %d", r.Channel, chB)
			}
			if !r.Group.Valid() || r.Group.Warp != 1 {
				t.Fatalf("credit group %v", r.Group)
			}
		}
		if r.Addr == lineB && !r.CreditOnly {
			sawB++
		}
	}
	if sawB != 1 {
		t.Fatalf("line B requested %d times, want 1", sawB)
	}
	if credits != 1 {
		t.Fatalf("credits = %d, want 1 (warp 1's tagged B merged)", credits)
	}
}

func TestStoresDontBlock(t *testing.T) {
	st := Insn{Kind: Store, Addrs: []uint64{0x1000, 0x90000}}
	h := newHarness([]Program{{st, {Kind: Compute}}})
	h.run(0, 10)
	if !h.sm.Done() {
		t.Fatal("store blocked the warp")
	}
	writes := 0
	for _, r := range h.injected {
		if r.Kind == memreq.Write {
			writes++
			if r.Group.Valid() {
				t.Fatal("store carries a warp-group")
			}
		}
	}
	if writes != 2 {
		t.Fatalf("writes = %d", writes)
	}
}

func TestInjectBackpressureRetries(t *testing.T) {
	h := newHarness([]Program{{divergentLoad(2), {Kind: Compute}}})
	h.reject = true
	h.run(0, 5)
	if len(h.injected) != 0 {
		t.Fatal("injected despite rejection")
	}
	h.reject = false
	h.run(5, 10)
	if len(h.injected) != 2 {
		t.Fatalf("injected %d after backpressure lifted", len(h.injected))
	}
	h.responses = append(h.responses, h.injected...)
	h.run(10, 20)
	if !h.sm.Done() {
		t.Fatal("warp stuck")
	}
}

func TestGTOPrefersSameWarp(t *testing.T) {
	progs := []Program{
		{{Kind: Compute}, {Kind: Compute}, {Kind: Compute}},
		{{Kind: Compute}, {Kind: Compute}, {Kind: Compute}},
	}
	h := newHarness(progs)
	// With greedy-then-oldest and 1-tick compute latency, warp 0 runs to
	// completion before warp 1 issues.
	h.run(0, 3)
	if h.sm.Warps()[0].Issued != 3 || h.sm.Warps()[1].Issued != 0 {
		t.Fatalf("issued: w0=%d w1=%d (greedy broken)",
			h.sm.Warps()[0].Issued, h.sm.Warps()[1].Issued)
	}
	h.run(3, 6)
	if !h.sm.Done() {
		t.Fatal("warps not done")
	}
}

func TestCollectorSeesLoads(t *testing.T) {
	h := newHarness([]Program{{divergentLoad(4), {Kind: Compute}}})
	h.run(0, 6)
	h.responses = append(h.responses, h.injected...)
	h.run(6, 20)
	sum := h.col.Summarize()
	if sum.Loads != 1 || sum.ReqsPerLoad != 4 || sum.MultiReqFrac != 1 {
		t.Fatalf("summary %+v", sum)
	}
	if h.col.Outstanding() != 0 {
		t.Fatalf("outstanding groups %d", h.col.Outstanding())
	}
	if len(h.col.Done()) != 1 {
		t.Fatalf("done groups %d", len(h.col.Done()))
	}
}

func TestEmptyProgramIsDone(t *testing.T) {
	h := newHarness([]Program{{}})
	if !h.sm.Done() {
		t.Fatal("empty program not done")
	}
}

func TestGroupChannelsAnnotated(t *testing.T) {
	h := newHarness([]Program{{divergentLoad(6)}})
	h.run(0, 10)
	chans := map[int]bool{}
	for _, r := range h.injected {
		chans[r.Channel] = true
	}
	for _, r := range h.injected {
		if int(r.GroupChannels) != len(chans) {
			t.Fatalf("GroupChannels=%d, want %d", r.GroupChannels, len(chans))
		}
	}
}

func TestStoreInvalidatesL1(t *testing.T) {
	line := uint64(0x4000)
	prog := Program{
		{Kind: Load, Addrs: []uint64{line}},
		{Kind: Store, Addrs: []uint64{line}},
		{Kind: Load, Addrs: []uint64{line}}, // must miss again after the store
	}
	h := newHarness([]Program{prog})
	h.run(0, 3)
	h.responses = append(h.responses, h.injected[0])
	h.run(3, 30)
	reads := 0
	for _, r := range h.injected {
		if r.Kind == memreq.Read && !r.CreditOnly {
			reads++
		}
	}
	if reads != 2 {
		t.Fatalf("reads = %d, want 2 (write-through store must invalidate L1)", reads)
	}
}
