package sm

// This file retains the pre-SoA warp-scheduler scan as an executable
// specification. pickWarpRef operates on a plain array-of-structs warp
// model and is a line-for-line transliteration of the original
// pointer-walking pickWarp; the property tests drive it in lockstep with
// the bitmask/flat-slice implementation across randomized warp states to
// pin the pick, the greedy bookkeeping, and the nextReady byproduct.

// refWarp is the reference model of one warp's scheduler-visible state.
type refWarp struct {
	Done    bool
	Blocked bool
	// MemNext reports whether the warp's next instruction is a memory
	// op (the replay-queue gating condition).
	MemNext bool
	ReadyAt int64
}

// pickWarpRef is the retained simple implementation: a linear scan over
// warp structs. It returns the picked warp index (or -1), the greedy
// slot after the scan, and the nextReady bound a failed scan computed
// (never when the scan succeeded or saw no counting-down warp).
func pickWarpRef(warps []refWarp, greedy int, lrr, replayBusy bool, now int64) (pick, newGreedy int, nextReady int64) {
	nextReady = never
	ready := func(w *refWarp) bool {
		if w.Done || w.Blocked {
			return false
		}
		if w.ReadyAt > now {
			if w.ReadyAt < nextReady {
				nextReady = w.ReadyAt
			}
			return false
		}
		if replayBusy && w.MemNext {
			return false
		}
		return true
	}
	if lrr {
		for i := 1; i <= len(warps); i++ {
			wi := (greedy + i) % len(warps)
			if ready(&warps[wi]) {
				return wi, wi, never
			}
		}
		return -1, greedy, nextReady
	}
	if ready(&warps[greedy]) {
		return greedy, greedy, never
	}
	for wi := range warps {
		if ready(&warps[wi]) {
			return wi, wi, never
		}
	}
	return -1, greedy, nextReady
}
