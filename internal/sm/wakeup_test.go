package sm

import (
	"fmt"
	"math/rand"
	"testing"

	"dramlat/internal/addrmap"
	"dramlat/internal/cache"
	"dramlat/internal/memreq"
)

// wakeHarness drives an SM against a fake memory system whose responses
// mature at explicit ticks, mirroring the crossbar's head-only delivery.
type wakeHarness struct {
	sm       *SM
	pendingQ []wakeResp // FIFO of responses; head pops when mature
	injected int
	id       uint64
}

type wakeResp struct {
	req     *memreq.Request
	readyAt int64
}

// fingerprint captures every piece of SM state the event loop relies on,
// except the idle counters (those are batched by CatchUp by design).
func (h *wakeHarness) fingerprint() string {
	s := h.sm
	out := fmt.Sprintf("ii=%d at=%d act=%d rep=%d wtr=%d inj=%d|",
		s.InstrIssued, s.ActiveTicks, s.active, s.ReplayLen(), len(s.waiters), h.injected)
	for _, w := range s.warps {
		out += fmt.Sprintf("w%d:%d,%d,%v,%v,%d;", w.ID, s.pc[w.ID], w.Issued, w.Blocked(), w.Done(), s.readyAt[w.ID])
	}
	return out
}

// TestSMNextWakeupNeverLate property-checks SM.NextWakeup over random
// programs and response latencies: on any tick with no response delivery,
// the SM's state must stay frozen until the wakeup it reported.
func TestSMNextWakeupNeverLate(t *testing.T) {
	for iter := 0; iter < 20; iter++ {
		iter := iter
		t.Run(fmt.Sprintf("stream%d", iter), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(iter) + 1))
			h := &wakeHarness{}
			reject := false
			var pendingInject []*memreq.Request
			cfg := Config{
				ID:     0,
				Mapper: addrmap.New(6, 16),
				L1: cache.Config{
					SizeBytes: 4096, LineBytes: 128, Ways: 4, MSHRs: 8,
				},
				L1Lat:    4,
				WarpSize: 32,
				Inject: func(r *memreq.Request, now int64) bool {
					if reject {
						return false
					}
					h.injected++
					pendingInject = append(pendingInject, r)
					return true
				},
				NextID: func() uint64 { h.id++; return h.id },
			}
			var progs []Program
			for w := 0; w < 4; w++ {
				var p Program
				for len(p) < 6 {
					switch rng.Intn(3) {
					case 0:
						p = append(p, Insn{Kind: Compute})
					case 1:
						n := 1 + rng.Intn(6)
						addrs := make([]uint64, n)
						for i := range addrs {
							addrs[i] = uint64(rng.Intn(1<<14)) * 128
						}
						p = append(p, Insn{Kind: Load, Addrs: addrs})
					case 2:
						p = append(p, Insn{Kind: Store, Addrs: []uint64{uint64(rng.Intn(1<<14)) * 128}})
					}
				}
				progs = append(progs, p)
			}
			h.sm = New(cfg, progs)

			pred := int64(0) // earliest tick state may change
			for now := int64(0); now < 5000 && !h.sm.Done(); now++ {
				// Turn injected requests into future responses (reads only;
				// writes are fire-and-forget).
				for _, r := range pendingInject {
					if r.Kind == memreq.Read && !r.CreditOnly {
						h.pendingQ = append(h.pendingQ, wakeResp{r, now + int64(5+rng.Intn(40))})
					}
				}
				pendingInject = pendingInject[:0]
				reject = rng.Intn(10) == 0

				var resp *memreq.Request
				if len(h.pendingQ) > 0 && h.pendingQ[0].readyAt <= now {
					resp = h.pendingQ[0].req
					h.pendingQ = h.pendingQ[1:]
				}
				effPred := pred
				if resp != nil {
					effPred = now // external input invalidates the bound
				}
				before := h.fingerprint()
				h.sm.Tick(now, resp)
				if after := h.fingerprint(); after != before && now < effPred {
					t.Fatalf("SM state changed at tick %d but wakeup promised quiet until %d\nbefore: %s\nafter:  %s",
						now, effPred, before, after)
				}
				pred = h.sm.NextWakeup(now)
				if pred <= now {
					t.Fatalf("NextWakeup(%d) = %d, not strictly in the future", now, pred)
				}
				// The response path is the external wake source the system
				// loop models with Xbar.RespWake: fold the head in.
				if len(h.pendingQ) > 0 && h.pendingQ[0].readyAt < pred {
					pred = h.pendingQ[0].readyAt
				}
			}
		})
	}
}
