package sm

import (
	"math/rand"
	"testing"

	"dramlat/internal/cache"
	"dramlat/internal/memreq"
)

// loadRefState forces the SM's SoA scheduling state to mirror a refWarp
// slice, rebuilding every bitmask from scratch.
func loadRefState(s *SM, warps []refWarp) {
	for i := range s.doneM {
		s.doneM[i], s.blockedM[i], s.liveM[i], s.memNextM[i] = 0, 0, 0, 0
	}
	for i := range warps {
		w := &warps[i]
		if w.Done {
			bitSet(s.doneM, i)
		}
		if w.Blocked {
			bitSet(s.blockedM, i)
		}
		if !w.Done && !w.Blocked {
			bitSet(s.liveM, i)
		}
		if w.MemNext {
			bitSet(s.memNextM, i)
		}
		s.readyAt[i] = w.ReadyAt
	}
}

// TestPickWarpMatchesReference drives the bitmask pickWarp in lockstep
// with the retained array-of-structs reference across randomized warp
// states, for both policies, pinning the pick, the greedy bookkeeping and
// the nextReady byproduct of failed scans.
func TestPickWarpMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	dummy := &memreq.Request{}
	for iter := 0; iter < 20000; iter++ {
		// Cross the 64-bit word boundaries regularly.
		n := 1 + rng.Intn(130)
		progs := make([]Program, n)
		for i := range progs {
			progs[i] = Program{{Kind: Compute}}
		}
		s := New(Config{
			L1: cache.Config{SizeBytes: 4096, LineBytes: 128, Ways: 4, MSHRs: 8},
		}, progs)
		s.cfg.LRR = rng.Intn(2) == 0
		now := int64(10 + rng.Intn(100))
		warps := make([]refWarp, n)
		for i := range warps {
			w := &warps[i]
			w.Done = rng.Intn(4) == 0
			w.Blocked = rng.Intn(4) == 0
			w.MemNext = rng.Intn(2) == 0
			// Mix of already-ready, counting-down and far-future warps.
			switch rng.Intn(4) {
			case 0:
				w.ReadyAt = now - int64(rng.Intn(5))
			case 1:
				w.ReadyAt = now + 1 + int64(rng.Intn(6))
			case 2:
				w.ReadyAt = now
			default:
				w.ReadyAt = never
			}
		}
		loadRefState(s, warps)
		greedy := rng.Intn(n)
		s.greedy = greedy
		replayBusy := rng.Intn(2) == 0
		if replayBusy {
			s.replay = append(s.replay[:0], dummy)
			s.rHead = 0
		}
		s.nextReady = -1 // poison: failed scans must overwrite it

		pick := s.pickWarp(now)
		refPick, refGreedy, refNext := pickWarpRef(warps, greedy, s.cfg.LRR, replayBusy, now)
		if pick != refPick {
			t.Fatalf("iter %d (n=%d lrr=%v busy=%v greedy=%d): pick=%d want %d",
				iter, n, s.cfg.LRR, replayBusy, greedy, pick, refPick)
		}
		if s.greedy != refGreedy {
			t.Fatalf("iter %d (n=%d lrr=%v busy=%v): greedy=%d want %d",
				iter, n, s.cfg.LRR, replayBusy, s.greedy, refGreedy)
		}
		if pick < 0 && s.nextReady != refNext {
			t.Fatalf("iter %d (n=%d lrr=%v busy=%v): nextReady=%d want %d",
				iter, n, s.cfg.LRR, replayBusy, s.nextReady, refNext)
		}
	}
}
