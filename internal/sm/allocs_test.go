package sm

import (
	"testing"

	"dramlat/internal/addrmap"
	"dramlat/internal/cache"
	"dramlat/internal/memreq"
)

// TestIssuePathSteadyStateAllocs pins the zero-alloc property of the SM's
// hot loop: once the request pool, replay queue, waiter slices and MSHR
// freelist are warm, ticking an SM through a miss-every-load workload —
// issue, coalesce, L1 probe, MSHR, inject, response delivery, unblock —
// must not allocate at all.
func TestIssuePathSteadyStateAllocs(t *testing.T) {
	// Program: loads cycling over 64 distinct lines. The L1 holds 32
	// lines, so every load misses and the full memory path runs forever.
	const loads = 40000
	prog := make(Program, loads)
	addrs := make([][]uint64, 64)
	for i := range addrs {
		addrs[i] = []uint64{uint64(i) * 128}
	}
	for i := range prog {
		prog[i] = Insn{Kind: Load, Addrs: addrs[i%len(addrs)]}
	}

	// The fake memory system echoes every injected request back as the
	// next tick's response, pointer-identical, like the real crossbar.
	var queue []*memreq.Request
	qHead := 0
	var id uint64
	cfg := Config{
		Mapper: addrmap.New(6, 16),
		L1:     cache.Config{SizeBytes: 4096, LineBytes: 128, Ways: 4, MSHRs: 8},
		L1Lat:  4,
		Inject: func(r *memreq.Request, now int64) bool {
			queue = append(queue, r)
			return true
		},
		NextID: func() uint64 { id++; return id },
	}
	s := New(cfg, []Program{prog})

	now := int64(0)
	tick := func() {
		var resp *memreq.Request
		if qHead < len(queue) {
			resp = queue[qHead]
			queue[qHead] = nil
			qHead++
			if qHead == len(queue) {
				queue = queue[:0]
				qHead = 0
			}
		}
		s.Tick(now, resp)
		now++
	}
	for i := 0; i < 2000; i++ {
		tick() // warm the pools
	}
	avg := testing.AllocsPerRun(100, func() {
		for i := 0; i < 100; i++ {
			tick()
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state SM tick allocated: %.2f allocs per 100 ticks, want 0", avg)
	}
	if s.Done() {
		t.Fatal("workload exhausted during measurement; lengthen the program")
	}
}
