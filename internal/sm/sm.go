// Package sm models the SIMT cores (Streaming Multiprocessors) of Section
// II-A: each SM runs up to 32 warps of 32 threads in lockstep with a
// greedy-then-oldest warp scheduler, coalesces each warp load/store into
// 128B line requests, probes its private L1, and blocks a warp until the
// last response of its load returns — the SIMT property that makes DRAM
// latency divergence hurt.
//
// Scheduling state is data-oriented: the per-warp flags and timestamps the
// pickWarp scan reads every cycle live in flat parallel slices and packed
// bitmask words on the SM (see the "Data-oriented core" section of
// DESIGN.md), not on *Warp. The Warp struct keeps only the cold per-warp
// state (program, pending-response bookkeeping, counters).
package sm

import (
	"math/bits"

	"dramlat/internal/addrmap"
	"dramlat/internal/cache"
	"dramlat/internal/coalesce"
	"dramlat/internal/memreq"
	"dramlat/internal/stats"
	"dramlat/internal/telemetry"
)

// InsnKind enumerates warp instruction kinds.
type InsnKind uint8

const (
	// Compute is any non-memory warp instruction (1 issue slot).
	Compute InsnKind = iota
	// Load is a warp gather: per-lane addresses, blocking.
	Load
	// Store is a warp scatter: per-lane addresses, fire-and-forget.
	Store
)

// Insn is one warp-wide instruction. Addrs holds the active lanes'
// byte addresses for Load/Store (nil for Compute).
type Insn struct {
	Kind  InsnKind
	Addrs []uint64
}

// Program is a warp's instruction sequence.
type Program []Insn

// Warp is one warp's cold execution state. The scheduler-scanned hot
// state (pc, readyAt, done/blocked) lives in flat slices on the owning
// SM, indexed by ID; the accessors below read it through the back
// pointer.
type Warp struct {
	ID   int
	Prog Program

	sm         *SM
	curLoad    uint32
	loadSerial uint32
	pending    map[uint32]int // outstanding responses per load serial
	DoneTick   int64
	Issued     int64
}

// waiter records an L1 MSHR subscriber: a (warp, load) pair to credit when
// the line fills.
type waiter struct {
	w    *Warp
	load uint32
	gid  memreq.GroupID
}

// Config wires an SM into the system.
type Config struct {
	ID       int
	Mapper   *addrmap.Mapper
	L1       cache.Config
	L1Lat    int64 // L1 hit latency in ticks
	WarpSize int

	// LRR selects loose round-robin warp scheduling instead of the
	// default greedy-then-oldest (GTO). GTO runs one warp until it
	// stalls, concentrating each warp's loads in time; LRR spreads every
	// warp's progress, putting more concurrent warp-groups in flight.
	LRR bool

	// ZeroDivergence unblocks a warp on the first response of its load
	// (the Fig 4 "Zero Latency Divergence" ideal).
	ZeroDivergence bool
	// PerfectCoalescing truncates every load/store to one line (the
	// Fig 4 "Perfect Coalescing" ideal).
	PerfectCoalescing bool

	// Inject offers a request to the crossbar; false means retry.
	Inject func(r *memreq.Request, now int64) bool
	// NextID allocates globally unique request IDs.
	NextID func() uint64

	Collector *stats.Collector

	// Probe receives warp-load issue/unblock trace events; nil disables
	// tracing at the cost of one branch per event site.
	Probe *telemetry.Tracer
	// ClassifyStalls splits IdleTicks into the IdleMem/IdleLSU breakdown
	// for the interval sampler. Off by default: the classification scans
	// warp state on idle cycles, which the no-telemetry path must not pay.
	ClassifyStalls bool
}

// SM is one SIMT core.
type SM struct {
	cfg   Config
	warps []*Warp
	l1    *cache.Cache

	// Hot per-warp scheduling state, struct-of-arrays: pickWarp's LRR and
	// greedy-then-oldest scans are linear passes over these words and
	// slices with no pointer dereferences. Invariants:
	//
	//	liveM  == ^doneM & ^blockedM      (the live-unblocked index)
	//	memNextM bit w set  <=>  pc[w] < len(Prog) && Prog[pc[w]] is Load/Store
	//
	// A warp can be done AND blocked at once (its last instruction was a
	// blocking load): done is set at issue time, the unblock credit still
	// arrives later. unblock() therefore re-inserts into liveM only when
	// the done bit is clear.
	pc       []int32
	readyAt  []int64
	doneM    []uint64
	blockedM []uint64
	liveM    []uint64
	memNextM []uint64

	// replay is the in-order request/credit injection queue, head-indexed
	// so steady-state pops never re-slice away capacity.
	replay []*memreq.Request
	rHead  int

	waiters map[uint64][]waiter
	// wsFree recycles drained waiter slices so line-merge bookkeeping
	// stops allocating once the working set is warm.
	wsFree [][]waiter

	// pool recycles this SM's request allocations: responses it has fully
	// absorbed (Deliver) and replay-queue requests filtered by the L1
	// (dropOrCredit) feed the coalescer's next fan-out. Domain-local, so
	// the parallel engine needs no synchronization around it.
	pool memreq.Pool
	// scratch, missBuf, lineBuf and chanIdx are issueLoad's reusable
	// per-call buffers (chanIdx is indexed by channel and tracks the last
	// request per channel, replacing a per-load map).
	scratch []*memreq.Request
	missBuf []uint64
	lineBuf []uint64
	chanIdx []int

	greedy int
	active int
	// frozen gates the issue stage for the sampled engine's drain
	// phase (see SetFrozen in fastforward.go): responses and replay
	// still drain, nothing new issues.
	frozen bool
	// issuedLast records whether the last Tick issued an instruction: an
	// O(1) "probably busy next tick too" signal that lets NextWakeup skip
	// the warp scan on active streaks (spuriously early at streak end,
	// which the contract allows).
	issuedLast bool
	// nextReady is the min readyAt over live unblocked warps, computed as
	// a byproduct of the last failed pickWarp scan, so NextWakeup costs
	// O(1) instead of re-scanning the warps the pick already examined.
	// Only meaningful right after a Tick that issued nothing.
	nextReady int64

	InstrIssued int64
	// IdleTicks counts cycles where the SM had warps outstanding but
	// none ready to issue — the "all warps stalled on memory" condition
	// of Section III-A that multithreading fails to hide.
	IdleTicks   int64
	ActiveTicks int64
	// IdleMemTicks / IdleLSUTicks break IdleTicks down by cause when
	// Config.ClassifyStalls is set: all live warps blocked on memory vs
	// the LSU replay queue backing up. The remainder is compute latency.
	IdleMemTicks int64
	IdleLSUTicks int64
	L1           *cache.Cache // exported for stats
	DoneTick     int64
}

// bitSet/bitClear/bitTest operate on the packed per-warp flag words.
func bitSet(m []uint64, i int)       { m[i>>6] |= 1 << (uint(i) & 63) }
func bitClear(m []uint64, i int)     { m[i>>6] &^= 1 << (uint(i) & 63) }
func bitTest(m []uint64, i int) bool { return m[i>>6]&(1<<(uint(i)&63)) != 0 }

// nextBit returns the index of the first set bit >= from, or -1.
func nextBit(m []uint64, from int) int {
	w := from >> 6
	if w >= len(m) {
		return -1
	}
	word := m[w] & (^uint64(0) << (uint(from) & 63))
	for {
		if word != 0 {
			return w<<6 + bits.TrailingZeros64(word)
		}
		w++
		if w >= len(m) {
			return -1
		}
		word = m[w]
	}
}

// New builds an SM running the given per-warp programs.
func New(cfg Config, programs []Program) *SM {
	n := len(programs)
	words := (n + 63) / 64
	s := &SM{
		cfg:      cfg,
		l1:       cache.New(cfg.L1),
		waiters:  make(map[uint64][]waiter),
		pc:       make([]int32, n),
		readyAt:  make([]int64, n),
		doneM:    make([]uint64, words),
		blockedM: make([]uint64, words),
		liveM:    make([]uint64, words),
		memNextM: make([]uint64, words),
	}
	s.L1 = s.l1
	if cfg.Mapper != nil {
		s.chanIdx = make([]int, cfg.Mapper.Channels)
	}
	for i, p := range programs {
		w := &Warp{ID: i, Prog: p, pending: make(map[uint32]int), sm: s}
		if len(p) == 0 {
			bitSet(s.doneM, i)
		} else {
			s.active++
			bitSet(s.liveM, i)
			if p[0].Kind != Compute {
				bitSet(s.memNextM, i)
			}
		}
		s.warps = append(s.warps, w)
	}
	return s
}

// Done reports whether every warp has retired.
func (s *SM) Done() bool { return s.active == 0 }

// ReplayLen reports the LSU replay-queue occupancy (diagnostics).
func (s *SM) ReplayLen() int { return len(s.replay) - s.rHead }

// Warps exposes warp states (read-only use).
func (s *SM) Warps() []*Warp { return s.warps }

// Done reports whether the warp has retired.
func (w *Warp) Done() bool { return bitTest(w.sm.doneM, w.ID) }

// Blocked reports whether the warp is blocked on an outstanding load.
func (w *Warp) Blocked() bool { return bitTest(w.sm.blockedM, w.ID) }

// gid builds the group identity for a warp's load.
func (s *SM) gid(w *Warp, load uint32) memreq.GroupID {
	return memreq.GroupID{SM: uint16(s.cfg.ID), Warp: uint16(w.ID), Load: load}
}

// Deliver hands a returning response (an L2 hit or a DRAM fill for a
// request this SM sent) to the core. It fills the L1 and credits every
// waiter merged on the line.
func (s *SM) Deliver(r *memreq.Request, now int64) {
	s.l1.Fill(r.Addr, false)
	s.l1.MSHRRelease(r.Addr)
	ws, ok := s.waiters[r.Addr]
	if ok {
		delete(s.waiters, r.Addr)
	}
	for _, wt := range ws {
		s.credit(wt, now)
	}
	if ok {
		s.wsFree = append(s.wsFree, ws[:0])
	}
	s.pool.Put(r) // response fully absorbed; nothing references it now
}

// addWaiter subscribes a (warp, load) pair to a line fill, reusing a
// drained waiter slice when one is free.
func (s *SM) addWaiter(addr uint64, wt waiter) {
	ws, ok := s.waiters[addr]
	if !ok {
		if n := len(s.wsFree); n > 0 {
			ws = s.wsFree[n-1]
			s.wsFree = s.wsFree[:n-1]
		}
	}
	s.waiters[addr] = append(ws, wt)
}

// credit delivers one line response to a (warp, load) subscriber.
func (s *SM) credit(wt waiter, now int64) {
	if s.cfg.Collector != nil {
		s.cfg.Collector.OnResp(wt.gid, now)
	}
	w := wt.w
	left := w.pending[wt.load] - 1
	if left <= 0 {
		delete(w.pending, wt.load)
	} else {
		w.pending[wt.load] = left
	}
	if !bitTest(s.blockedM, w.ID) || wt.load != w.curLoad {
		return
	}
	if s.cfg.ZeroDivergence {
		// The ideal model of Fig 4: the warp resumes as soon as its
		// first datum returns; the remaining requests still occupy
		// DRAM bandwidth.
		s.unblock(w.ID, now, wt.gid)
		return
	}
	if left <= 0 {
		s.unblock(w.ID, now, wt.gid)
	}
}

// unblock clears a warp's blocked bit and re-inserts it into the
// live-unblocked index — unless it retired at issue time (its last
// instruction was the blocking load), in which case it must never
// reappear in the scheduler scan.
func (s *SM) unblock(wi int, now int64, gid memreq.GroupID) {
	bitClear(s.blockedM, wi)
	if !bitTest(s.doneM, wi) {
		bitSet(s.liveM, wi)
	}
	s.readyAt[wi] = now + 1
	if s.cfg.Probe != nil {
		s.cfg.Probe.LoadUnblock(now, gid)
	}
}

// classifyStall attributes one idle cycle to its cause, for the interval
// sampler's stall breakdown. Memory wins over LSU back-pressure: if any
// live warp is blocked on a load, multithreading has run out of warps to
// hide that latency with (Section III-A), which is the condition the
// paper's schedulers attack.
func (s *SM) classifyStall() {
	for i, b := range s.blockedM {
		if b&^s.doneM[i] != 0 {
			s.IdleMemTicks++
			return
		}
	}
	if s.ReplayLen() > 0 {
		s.IdleLSUTicks++
	}
}

// never is the wakeup-contract sentinel (see dram.Never).
const never int64 = 1 << 62

// Tick advances the SM one cycle: absorb one response (resp, popped from
// the crossbar by the caller; nil when none is ready), drain the replay
// queue head, and issue one instruction (greedy-then-oldest).
func (s *SM) Tick(now int64, resp *memreq.Request) {
	if resp != nil {
		s.Deliver(resp, now)
	}
	s.drainReplay(now)
	s.issue(now)
}

// NextWakeup returns the earliest tick strictly after now at which Tick
// could do anything beyond counting an idle cycle, assuming no response
// arrives first (response arrival is covered by the crossbar's
// RespWake). A non-empty replay queue retries injection every tick; an
// unblocked warp issues at its readyAt (or next tick, when several are
// ready and queue behind the one-issue-per-tick limit). never means the
// SM is quiescent until external input. Call it right after Tick(now):
// it reads the nextReady bound that Tick's warp scan left behind.
func (s *SM) NextWakeup(now int64) int64 {
	if s.frozen {
		// Drain phase: tick every cycle until quiescent (the replay
		// queue retries and responses may land any tick), then sleep.
		if s.Quiescent() {
			return never
		}
		return now + 1
	}
	if s.ReplayLen() > 0 || s.issuedLast {
		return now + 1
	}
	if s.nextReady <= now {
		return now + 1
	}
	return s.nextReady
}

// CatchUp accounts k ticks the event-driven loop skipped for this SM.
// A skippable tick is exactly a dense tick that would only have counted
// an idle cycle: no deliverable response, empty replay queue, and no
// live unblocked warp ready before the wakeup — so warp and replay
// state are provably unchanged across the window and only the idle
// counters need batching. The stall classification mirrors
// classifyStall: with an empty replay queue the only attributable cause
// is memory, and the blocked set cannot change inside the window, so
// one check covers all k ticks.
func (s *SM) CatchUp(k int64) {
	if k <= 0 || s.active == 0 {
		return
	}
	s.IdleTicks += k
	if s.cfg.ClassifyStalls {
		for i, b := range s.blockedM {
			if b&^s.doneM[i] != 0 {
				s.IdleMemTicks += k
				return
			}
		}
	}
}

// drainReplay injects the head of the in-order request queue, re-checking
// the L1 and its MSHRs at injection time (a line may have been filled or
// requested by another warp while queued).
func (s *SM) drainReplay(now int64) {
	for s.rHead < len(s.replay) {
		r := s.replay[s.rHead]
		if r.CreditOnly {
			if !s.cfg.Inject(r, now) {
				return
			}
			s.popReplay()
			continue
		}
		wt := waiter{w: s.warps[r.Group.Warp], load: r.Group.Load, gid: r.Group}
		if r.Kind == memreq.Read {
			if s.l1.Contains(r.Addr) {
				// Filled while queued: satisfied locally.
				s.credit(wt, now)
				s.dropOrCredit(r)
				continue
			}
			if m := s.l1.MSHRFor(r.Addr); m != nil {
				// Another warp already fetched this line: merge.
				s.addWaiter(r.Addr, wt)
				s.dropOrCredit(r)
				continue
			}
			if s.l1.MSHRAlloc(r.Addr) == nil {
				return // MSHRs exhausted; stall the queue
			}
			if !s.cfg.Inject(r, now) {
				// Crossbar full: undo the MSHR and retry.
				s.l1.MSHRRelease(r.Addr)
				return
			}
			s.addWaiter(r.Addr, wt)
			s.popReplay()
			continue
		}
		// Store write-through: no waiter, no response.
		if !s.cfg.Inject(r, now) {
			return
		}
		s.popReplay()
	}
}

// popReplay advances the head index; a fully drained queue resets to
// reuse its capacity from the front.
func (s *SM) popReplay() {
	s.replay[s.rHead] = nil
	s.rHead++
	if s.rHead == len(s.replay) {
		s.replay = s.replay[:0]
		s.rHead = 0
	}
}

// dropOrCredit removes the head request; if it carried the group's
// channel tag, a zero-cost credit marker takes its queue slot so the
// memory controller still learns the group is fully transferred.
func (s *SM) dropOrCredit(r *memreq.Request) {
	if r.LastInChannel {
		c := s.pool.Get()
		c.ID, c.Kind, c.Addr = s.cfg.NextID(), memreq.Read, r.Addr
		c.Group, c.CreditOnly = r.Group, true
		c.Channel, c.Bank, c.Row, c.Col = r.Channel, r.Bank, r.Row, r.Col
		s.replay[s.rHead] = c
		s.pool.Put(r)
		return
	}
	s.popReplay()
	s.pool.Put(r)
}

// issue picks a warp greedy-then-oldest and issues its next instruction.
func (s *SM) issue(now int64) {
	if s.frozen {
		s.issuedLast = false
		if s.active > 0 {
			s.IdleTicks++
			if s.cfg.ClassifyStalls {
				s.classifyStall()
			}
		}
		return
	}
	wi := s.pickWarp(now)
	s.issuedLast = wi >= 0
	if wi < 0 {
		if s.active > 0 {
			s.IdleTicks++
			if s.cfg.ClassifyStalls {
				s.classifyStall()
			}
		}
		return
	}
	s.ActiveTicks++
	w := s.warps[wi]
	pc := int(s.pc[wi])
	insn := w.Prog[pc]
	pc++
	s.pc[wi] = int32(pc)
	w.Issued++
	s.InstrIssued++
	if pc < len(w.Prog) && w.Prog[pc].Kind != Compute {
		bitSet(s.memNextM, wi)
	} else {
		bitClear(s.memNextM, wi)
	}
	switch insn.Kind {
	case Compute:
		s.readyAt[wi] = now + 1
	case Load:
		s.issueLoad(w, insn, now)
	case Store:
		s.issueStore(w, insn, now)
	}
	if pc >= len(w.Prog) && !bitTest(s.doneM, wi) {
		bitSet(s.doneM, wi)
		bitClear(s.liveM, wi)
		w.DoneTick = now
		s.active--
		if s.active == 0 {
			s.DoneTick = now
		}
	}
}

// pickWarp selects the next warp to issue, returning its index or -1.
// Both policies walk the packed live-unblocked index (liveM), so done or
// blocked warps cost nothing — a failed scan touches only the flat
// readyAt/memNextM state of warps that could actually run. The scan
// semantics are pinned against the retained pre-SoA reference
// implementation (pickWarpRef) by TestPickWarpMatchesReference.
func (s *SM) pickWarp(now int64) int {
	// A failed scan has examined every live unblocked warp, so it records
	// the min readyAt for NextWakeup on the way (the greedy pre-check may
	// feed the same warp twice; min is idempotent).
	nextReady := never
	replayBusy := s.rHead < len(s.replay)
	// try reports whether live warp wi can issue at now. Memory
	// instructions wait for the LSU queue to drain so that per-channel
	// request order matches the tagging order.
	try := func(wi int) bool {
		if r := s.readyAt[wi]; r > now {
			if r < nextReady {
				nextReady = r
			}
			return false
		}
		return !(replayBusy && bitTest(s.memNextM, wi))
	}
	if s.cfg.LRR {
		// Loose round-robin: rotate past the last issuer.
		n := len(s.warps)
		start := s.greedy + 1
		if start >= n {
			start = 0
		}
		for wi := nextBit(s.liveM, start); wi >= 0; wi = nextBit(s.liveM, wi+1) {
			if try(wi) {
				s.greedy = wi
				return wi
			}
		}
		for wi := nextBit(s.liveM, 0); wi >= 0 && wi < start; wi = nextBit(s.liveM, wi+1) {
			if try(wi) {
				s.greedy = wi
				return wi
			}
		}
		s.nextReady = nextReady
		return -1
	}
	// Greedy-then-oldest.
	if g := s.greedy; bitTest(s.liveM, g) && try(g) {
		return g
	}
	for wi := nextBit(s.liveM, 0); wi >= 0; wi = nextBit(s.liveM, wi+1) {
		if try(wi) {
			s.greedy = wi
			return wi
		}
	}
	s.nextReady = nextReady
	return -1
}

func (s *SM) issueLoad(w *Warp, insn Insn, now int64) {
	lines := coalesce.LinesInto(s.lineBuf, insn.Addrs)
	s.lineBuf = lines
	if s.cfg.PerfectCoalescing && len(lines) > 1 {
		lines = lines[:1]
	}
	w.loadSerial++
	load := w.loadSerial
	gid := s.gid(w, load)

	// L1 probe: resident lines are satisfied at L1 latency.
	missing := s.missBuf[:0]
	for _, line := range lines {
		if s.l1.Lookup(line) {
			continue
		}
		missing = append(missing, line)
	}
	s.missBuf = missing
	if s.cfg.Collector != nil {
		s.cfg.Collector.OnLoadIssue(gid, now, len(lines), len(missing))
	}
	if len(missing) == 0 {
		s.readyAt[w.ID] = now + s.cfg.L1Lat
		return
	}
	if s.cfg.Probe != nil {
		// Only loads that enter the memory system are traced, so every
		// issue gets a matching unblock in a drained run.
		s.cfg.Probe.LoadIssue(now, gid, len(lines), len(missing))
	}
	w.pending[load] = len(missing)
	w.curLoad = load
	bitSet(s.blockedM, w.ID)
	bitClear(s.liveM, w.ID)

	// Build all requests up front so the last request per channel can be
	// tagged; enqueue in order on the LSU replay queue. chanIdx (indexed
	// by channel, reset per load) replaces a per-load map allocation.
	reqs := s.scratch[:0]
	for i := range s.chanIdx {
		s.chanIdx[i] = -1
	}
	channels := 0
	for i, line := range missing {
		c := s.cfg.Mapper.Decode(line)
		r := s.pool.Get()
		r.ID, r.Kind, r.Addr = s.cfg.NextID(), memreq.Read, line
		r.Group, r.Issue = gid, now
		r.Channel, r.Bank, r.Row, r.Col = c.Channel, c.Bank, c.Row, c.Col
		reqs = append(reqs, r)
		if s.chanIdx[c.Channel] < 0 {
			channels++
		}
		s.chanIdx[c.Channel] = i
	}
	for _, i := range s.chanIdx {
		if i >= 0 {
			reqs[i].LastInChannel = true
		}
	}
	for _, r := range reqs {
		r.GroupChannels = uint8(channels)
	}
	if s.cfg.ZeroDivergence {
		// Fig 4 ideal: every request after the first is a pure bus
		// transfer (bank conflicts abstracted away).
		for _, r := range reqs[1:] {
			r.BusOnly = true
		}
	}
	s.replay = append(s.replay, reqs...)
	s.scratch = reqs[:0]
	s.drainReplay(now)
}

func (s *SM) issueStore(w *Warp, insn Insn, now int64) {
	lines := coalesce.LinesInto(s.lineBuf, insn.Addrs)
	s.lineBuf = lines
	if s.cfg.PerfectCoalescing && len(lines) > 1 {
		lines = lines[:1]
	}
	if s.cfg.Collector != nil {
		s.cfg.Collector.OnStoreIssue(len(lines))
	}
	for _, line := range lines {
		// Write-through, no-allocate: keep L1 coherent by dropping any
		// stale copy, then send the write to the L2.
		s.l1.Invalidate(line)
		c := s.cfg.Mapper.Decode(line)
		r := s.pool.Get()
		r.ID, r.Kind, r.Addr = s.cfg.NextID(), memreq.Write, line
		r.Issue = now
		// Stores carry the SM in the group for response routing
		// (unused) but no load serial: they are ungrouped.
		r.Group = memreq.GroupID{SM: uint16(s.cfg.ID)}
		r.Channel, r.Bank, r.Row, r.Col = c.Channel, c.Bank, c.Row, c.Col
		s.replay = append(s.replay, r)
	}
	s.readyAt[w.ID] = now + 1
	s.drainReplay(now)
}
