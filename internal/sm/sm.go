// Package sm models the SIMT cores (Streaming Multiprocessors) of Section
// II-A: each SM runs up to 32 warps of 32 threads in lockstep with a
// greedy-then-oldest warp scheduler, coalesces each warp load/store into
// 128B line requests, probes its private L1, and blocks a warp until the
// last response of its load returns — the SIMT property that makes DRAM
// latency divergence hurt.
package sm

import (
	"dramlat/internal/addrmap"
	"dramlat/internal/cache"
	"dramlat/internal/coalesce"
	"dramlat/internal/memreq"
	"dramlat/internal/stats"
	"dramlat/internal/telemetry"
)

// InsnKind enumerates warp instruction kinds.
type InsnKind uint8

const (
	// Compute is any non-memory warp instruction (1 issue slot).
	Compute InsnKind = iota
	// Load is a warp gather: per-lane addresses, blocking.
	Load
	// Store is a warp scatter: per-lane addresses, fire-and-forget.
	Store
)

// Insn is one warp-wide instruction. Addrs holds the active lanes'
// byte addresses for Load/Store (nil for Compute).
type Insn struct {
	Kind  InsnKind
	Addrs []uint64
}

// Program is a warp's instruction sequence.
type Program []Insn

// Warp is one warp's execution state.
type Warp struct {
	ID   int
	Prog Program

	pc         int
	readyAt    int64
	blocked    bool
	curLoad    uint32
	loadSerial uint32
	pending    map[uint32]int // outstanding responses per load serial
	done       bool
	DoneTick   int64
	Issued     int64
}

// waiter records an L1 MSHR subscriber: a (warp, load) pair to credit when
// the line fills.
type waiter struct {
	w    *Warp
	load uint32
	gid  memreq.GroupID
}

// Config wires an SM into the system.
type Config struct {
	ID       int
	Mapper   *addrmap.Mapper
	L1       cache.Config
	L1Lat    int64 // L1 hit latency in ticks
	WarpSize int

	// LRR selects loose round-robin warp scheduling instead of the
	// default greedy-then-oldest (GTO). GTO runs one warp until it
	// stalls, concentrating each warp's loads in time; LRR spreads every
	// warp's progress, putting more concurrent warp-groups in flight.
	LRR bool

	// ZeroDivergence unblocks a warp on the first response of its load
	// (the Fig 4 "Zero Latency Divergence" ideal).
	ZeroDivergence bool
	// PerfectCoalescing truncates every load/store to one line (the
	// Fig 4 "Perfect Coalescing" ideal).
	PerfectCoalescing bool

	// Inject offers a request to the crossbar; false means retry.
	Inject func(r *memreq.Request, now int64) bool
	// NextID allocates globally unique request IDs.
	NextID func() uint64

	Collector *stats.Collector

	// Probe receives warp-load issue/unblock trace events; nil disables
	// tracing at the cost of one branch per event site.
	Probe *telemetry.Tracer
	// ClassifyStalls splits IdleTicks into the IdleMem/IdleLSU breakdown
	// for the interval sampler. Off by default: the classification scans
	// warp state on idle cycles, which the no-telemetry path must not pay.
	ClassifyStalls bool
}

// SM is one SIMT core.
type SM struct {
	cfg   Config
	warps []*Warp
	l1    *cache.Cache

	replay  []*memreq.Request // in-order request/credit injection queue
	waiters map[uint64][]waiter

	// pool recycles this SM's request allocations: responses it has fully
	// absorbed (Deliver) and replay-queue requests filtered by the L1
	// (dropOrCredit) feed the coalescer's next fan-out. Domain-local, so
	// the parallel engine needs no synchronization around it.
	pool memreq.Pool
	// scratch and missBuf are issueLoad's reusable per-call buffers.
	scratch []*memreq.Request
	missBuf []uint64

	greedy int
	active int
	// issuedLast records whether the last Tick issued an instruction: an
	// O(1) "probably busy next tick too" signal that lets NextWakeup skip
	// the warp scan on active streaks (spuriously early at streak end,
	// which the contract allows).
	issuedLast bool
	// nextReady is the min readyAt over live unblocked warps, computed as
	// a byproduct of the last failed pickWarp scan, so NextWakeup costs
	// O(1) instead of re-scanning the warps the pick already examined.
	// Only meaningful right after a Tick that issued nothing.
	nextReady int64

	InstrIssued int64
	// IdleTicks counts cycles where the SM had warps outstanding but
	// none ready to issue — the "all warps stalled on memory" condition
	// of Section III-A that multithreading fails to hide.
	IdleTicks   int64
	ActiveTicks int64
	// IdleMemTicks / IdleLSUTicks break IdleTicks down by cause when
	// Config.ClassifyStalls is set: all live warps blocked on memory vs
	// the LSU replay queue backing up. The remainder is compute latency.
	IdleMemTicks int64
	IdleLSUTicks int64
	L1           *cache.Cache // exported for stats
	DoneTick     int64
}

// New builds an SM running the given per-warp programs.
func New(cfg Config, programs []Program) *SM {
	s := &SM{
		cfg:     cfg,
		l1:      cache.New(cfg.L1),
		waiters: make(map[uint64][]waiter),
	}
	s.L1 = s.l1
	for i, p := range programs {
		w := &Warp{ID: i, Prog: p, pending: make(map[uint32]int)}
		if len(p) == 0 {
			w.done = true
		} else {
			s.active++
		}
		s.warps = append(s.warps, w)
	}
	return s
}

// Done reports whether every warp has retired.
func (s *SM) Done() bool { return s.active == 0 }

// ReplayLen reports the LSU replay-queue occupancy (diagnostics).
func (s *SM) ReplayLen() int { return len(s.replay) }

// Warps exposes warp states (read-only use).
func (s *SM) Warps() []*Warp { return s.warps }

// Done reports whether the warp has retired.
func (w *Warp) Done() bool { return w.done }

// Blocked reports whether the warp is blocked on an outstanding load.
func (w *Warp) Blocked() bool { return w.blocked }

// gid builds the group identity for a warp's load.
func (s *SM) gid(w *Warp, load uint32) memreq.GroupID {
	return memreq.GroupID{SM: uint16(s.cfg.ID), Warp: uint16(w.ID), Load: load}
}

// Deliver hands a returning response (an L2 hit or a DRAM fill for a
// request this SM sent) to the core. It fills the L1 and credits every
// waiter merged on the line.
func (s *SM) Deliver(r *memreq.Request, now int64) {
	s.l1.Fill(r.Addr, false)
	s.l1.MSHRRelease(r.Addr)
	ws := s.waiters[r.Addr]
	delete(s.waiters, r.Addr)
	for _, wt := range ws {
		s.credit(wt, now)
	}
	s.pool.Put(r) // response fully absorbed; nothing references it now
}

// credit delivers one line response to a (warp, load) subscriber.
func (s *SM) credit(wt waiter, now int64) {
	if s.cfg.Collector != nil {
		s.cfg.Collector.OnResp(wt.gid, now)
	}
	w := wt.w
	left := w.pending[wt.load] - 1
	if left <= 0 {
		delete(w.pending, wt.load)
	} else {
		w.pending[wt.load] = left
	}
	if !w.blocked || wt.load != w.curLoad {
		return
	}
	if s.cfg.ZeroDivergence {
		// The ideal model of Fig 4: the warp resumes as soon as its
		// first datum returns; the remaining requests still occupy
		// DRAM bandwidth.
		w.blocked = false
		w.readyAt = now + 1
		if s.cfg.Probe != nil {
			s.cfg.Probe.LoadUnblock(now, wt.gid)
		}
		return
	}
	if left <= 0 {
		w.blocked = false
		w.readyAt = now + 1
		if s.cfg.Probe != nil {
			s.cfg.Probe.LoadUnblock(now, wt.gid)
		}
	}
}

// classifyStall attributes one idle cycle to its cause, for the interval
// sampler's stall breakdown. Memory wins over LSU back-pressure: if any
// live warp is blocked on a load, multithreading has run out of warps to
// hide that latency with (Section III-A), which is the condition the
// paper's schedulers attack.
func (s *SM) classifyStall() {
	for _, w := range s.warps {
		if !w.done && w.blocked {
			s.IdleMemTicks++
			return
		}
	}
	if len(s.replay) > 0 {
		s.IdleLSUTicks++
	}
}

// never is the wakeup-contract sentinel (see dram.Never).
const never int64 = 1 << 62

// Tick advances the SM one cycle: absorb one response (resp, popped from
// the crossbar by the caller; nil when none is ready), drain the replay
// queue head, and issue one instruction (greedy-then-oldest).
func (s *SM) Tick(now int64, resp *memreq.Request) {
	if resp != nil {
		s.Deliver(resp, now)
	}
	s.drainReplay(now)
	s.issue(now)
}

// NextWakeup returns the earliest tick strictly after now at which Tick
// could do anything beyond counting an idle cycle, assuming no response
// arrives first (response arrival is covered by the crossbar's
// RespWake). A non-empty replay queue retries injection every tick; an
// unblocked warp issues at its readyAt (or next tick, when several are
// ready and queue behind the one-issue-per-tick limit). never means the
// SM is quiescent until external input. Call it right after Tick(now):
// it reads the nextReady bound that Tick's warp scan left behind.
func (s *SM) NextWakeup(now int64) int64 {
	if len(s.replay) > 0 || s.issuedLast {
		return now + 1
	}
	if s.nextReady <= now {
		return now + 1
	}
	return s.nextReady
}

// CatchUp accounts k ticks the event-driven loop skipped for this SM.
// A skippable tick is exactly a dense tick that would only have counted
// an idle cycle: no deliverable response, empty replay queue, and no
// live unblocked warp ready before the wakeup — so warp and replay
// state are provably unchanged across the window and only the idle
// counters need batching. The stall classification mirrors
// classifyStall: with an empty replay queue the only attributable cause
// is memory, and the blocked set cannot change inside the window, so
// one check covers all k ticks.
func (s *SM) CatchUp(k int64) {
	if k <= 0 || s.active == 0 {
		return
	}
	s.IdleTicks += k
	if s.cfg.ClassifyStalls {
		for _, w := range s.warps {
			if !w.done && w.blocked {
				s.IdleMemTicks += k
				return
			}
		}
	}
}

// drainReplay injects the head of the in-order request queue, re-checking
// the L1 and its MSHRs at injection time (a line may have been filled or
// requested by another warp while queued).
func (s *SM) drainReplay(now int64) {
	for len(s.replay) > 0 {
		r := s.replay[0]
		if r.CreditOnly {
			if !s.cfg.Inject(r, now) {
				return
			}
			s.replay = s.replay[1:]
			continue
		}
		wt := waiter{w: s.warps[r.Group.Warp], load: r.Group.Load, gid: r.Group}
		if r.Kind == memreq.Read {
			if s.l1.Contains(r.Addr) {
				// Filled while queued: satisfied locally.
				s.credit(wt, now)
				s.dropOrCredit(r)
				continue
			}
			if m := s.l1.MSHRFor(r.Addr); m != nil {
				// Another warp already fetched this line: merge.
				s.waiters[r.Addr] = append(s.waiters[r.Addr], wt)
				s.dropOrCredit(r)
				continue
			}
			if s.l1.MSHRAlloc(r.Addr) == nil {
				return // MSHRs exhausted; stall the queue
			}
			if !s.cfg.Inject(r, now) {
				// Crossbar full: undo the MSHR and retry.
				s.l1.MSHRRelease(r.Addr)
				return
			}
			s.waiters[r.Addr] = append(s.waiters[r.Addr], wt)
			s.replay = s.replay[1:]
			continue
		}
		// Store write-through: no waiter, no response.
		if !s.cfg.Inject(r, now) {
			return
		}
		s.replay = s.replay[1:]
	}
}

// dropOrCredit removes the head request; if it carried the group's
// channel tag, a zero-cost credit marker takes its queue slot so the
// memory controller still learns the group is fully transferred.
func (s *SM) dropOrCredit(r *memreq.Request) {
	if r.LastInChannel {
		c := s.pool.Get()
		c.ID, c.Kind, c.Addr = s.cfg.NextID(), memreq.Read, r.Addr
		c.Group, c.CreditOnly = r.Group, true
		c.Channel, c.Bank, c.Row, c.Col = r.Channel, r.Bank, r.Row, r.Col
		s.replay[0] = c
		s.pool.Put(r)
		return
	}
	s.replay = s.replay[1:]
	s.pool.Put(r)
}

// issue picks a warp greedy-then-oldest and issues its next instruction.
func (s *SM) issue(now int64) {
	w := s.pickWarp(now)
	s.issuedLast = w != nil
	if w == nil {
		if s.active > 0 {
			s.IdleTicks++
			if s.cfg.ClassifyStalls {
				s.classifyStall()
			}
		}
		return
	}
	s.ActiveTicks++
	insn := w.Prog[w.pc]
	w.pc++
	w.Issued++
	s.InstrIssued++
	switch insn.Kind {
	case Compute:
		w.readyAt = now + 1
	case Load:
		s.issueLoad(w, insn, now)
	case Store:
		s.issueStore(w, insn, now)
	}
	if w.pc >= len(w.Prog) && !w.done {
		w.done = true
		w.DoneTick = now
		s.active--
		if s.active == 0 {
			s.DoneTick = now
		}
	}
}

func (s *SM) pickWarp(now int64) *Warp {
	// A failed scan has examined every live unblocked warp, so it records
	// the min readyAt for NextWakeup on the way (the greedy pre-check may
	// feed the same warp twice; min is idempotent).
	nextReady := never
	ready := func(w *Warp) bool {
		if w.done || w.blocked {
			return false
		}
		if w.readyAt > now {
			if w.readyAt < nextReady {
				nextReady = w.readyAt
			}
			return false
		}
		// Memory instructions wait for the LSU queue to drain so that
		// per-channel request order matches the tagging order.
		if len(s.replay) > 0 && w.Prog[w.pc].Kind != Compute {
			return false
		}
		return true
	}
	if s.cfg.LRR {
		// Loose round-robin: rotate past the last issuer.
		for i := 1; i <= len(s.warps); i++ {
			w := s.warps[(s.greedy+i)%len(s.warps)]
			if ready(w) {
				s.greedy = w.ID
				return w
			}
		}
		s.nextReady = nextReady
		return nil
	}
	// Greedy-then-oldest.
	if g := s.warps[s.greedy]; ready(g) {
		return g
	}
	for i, w := range s.warps {
		if ready(w) {
			s.greedy = i
			return w
		}
	}
	s.nextReady = nextReady
	return nil
}

func (s *SM) issueLoad(w *Warp, insn Insn, now int64) {
	lines := coalesce.Lines(insn.Addrs)
	if s.cfg.PerfectCoalescing && len(lines) > 1 {
		lines = lines[:1]
	}
	w.loadSerial++
	load := w.loadSerial
	gid := s.gid(w, load)

	// L1 probe: resident lines are satisfied at L1 latency.
	missing := s.missBuf[:0]
	for _, line := range lines {
		if s.l1.Lookup(line) {
			continue
		}
		missing = append(missing, line)
	}
	s.missBuf = missing
	if s.cfg.Collector != nil {
		s.cfg.Collector.OnLoadIssue(gid, now, len(lines), len(missing))
	}
	if len(missing) == 0 {
		w.readyAt = now + s.cfg.L1Lat
		return
	}
	if s.cfg.Probe != nil {
		// Only loads that enter the memory system are traced, so every
		// issue gets a matching unblock in a drained run.
		s.cfg.Probe.LoadIssue(now, gid, len(lines), len(missing))
	}
	w.pending[load] = len(missing)
	w.curLoad = load
	w.blocked = true

	// Build all requests up front so the last request per channel can be
	// tagged; enqueue in order on the LSU replay queue.
	reqs := s.scratch[:0]
	lastToChannel := make(map[int]int)
	for i, line := range missing {
		c := s.cfg.Mapper.Decode(line)
		r := s.pool.Get()
		r.ID, r.Kind, r.Addr = s.cfg.NextID(), memreq.Read, line
		r.Group, r.Issue = gid, now
		r.Channel, r.Bank, r.Row, r.Col = c.Channel, c.Bank, c.Row, c.Col
		reqs = append(reqs, r)
		lastToChannel[c.Channel] = i
	}
	for _, i := range lastToChannel {
		reqs[i].LastInChannel = true
	}
	for _, r := range reqs {
		r.GroupChannels = uint8(len(lastToChannel))
	}
	if s.cfg.ZeroDivergence {
		// Fig 4 ideal: every request after the first is a pure bus
		// transfer (bank conflicts abstracted away).
		for _, r := range reqs[1:] {
			r.BusOnly = true
		}
	}
	s.replay = append(s.replay, reqs...)
	s.scratch = reqs[:0]
	s.drainReplay(now)
}

func (s *SM) issueStore(w *Warp, insn Insn, now int64) {
	lines := coalesce.Lines(insn.Addrs)
	if s.cfg.PerfectCoalescing && len(lines) > 1 {
		lines = lines[:1]
	}
	if s.cfg.Collector != nil {
		s.cfg.Collector.OnStoreIssue(len(lines))
	}
	for _, line := range lines {
		// Write-through, no-allocate: keep L1 coherent by dropping any
		// stale copy, then send the write to the L2.
		s.l1.Invalidate(line)
		c := s.cfg.Mapper.Decode(line)
		r := s.pool.Get()
		r.ID, r.Kind, r.Addr = s.cfg.NextID(), memreq.Write, line
		r.Issue = now
		// Stores carry the SM in the group for response routing
		// (unused) but no load serial: they are ungrouped.
		r.Group = memreq.GroupID{SM: uint16(s.cfg.ID)}
		r.Channel, r.Bank, r.Row, r.Col = c.Channel, c.Bank, c.Row, c.Col
		s.replay = append(s.replay, r)
	}
	w.readyAt = now + 1
	s.drainReplay(now)
}
