package sm

// Sampled-engine hooks: the interval-sampling engine (gpu.EngineSampled)
// freezes every SM's issue stage, runs the detailed core until the
// memory system drains, then advances warp progress statistically with
// FastForward before resuming detailed execution. The hooks only
// touch the SoA scheduling state through the same transitions issue()
// uses, so the data-oriented invariants (liveM == ^doneM & ^blockedM,
// memNextM mirroring Prog[pc]) hold across a jump.

// SetFrozen gates the SM's issue stage. A frozen SM still absorbs
// responses and drains its LSU replay queue — that is exactly what the
// sampled engine's drain phase needs — but issues no new instructions,
// so the in-flight request population can only shrink.
func (s *SM) SetFrozen(v bool) { s.frozen = v }

// Quiescent reports whether the SM holds no in-flight memory state:
// nothing queued in the LSU, no line fills outstanding, no warp
// blocked on a load. A frozen SM always reaches this state once the
// memory system returns its last response.
func (s *SM) Quiescent() bool {
	if s.ReplayLen() > 0 || len(s.waiters) > 0 {
		return false
	}
	for _, b := range s.blockedM {
		if b != 0 {
			return false
		}
	}
	return true
}

// FastForward statistically advances the SM across a modeled region of
// ffTicks cycles ending at tick now: up to budget instructions retire
// in bulk, spread evenly over the live warps, with no memory traffic —
// the engine injects the skipped loads' statistics separately. The SM
// must be quiescent (see Quiescent); budget is derived from the issue
// rate calibrated in the preceding measurement window. Returns the
// instructions actually issued (less than budget when the remaining
// programs are shorter).
//
// staggerBase and jitter re-seed warp desynchronization. Each warp's
// readyAt holds the tick its last load completed during the drain —
// that spread is the in-flight latency texture the drain collapsed —
// and jitter adds a random phase offset on a memory-latency scale.
// Both matter: a drained-then-restarted machine has every warp issue
// in lockstep, and synchronized warps produce tightly clustered DRAM
// arrivals (artificially small divergence gaps). Phase dispersion
// regrows only at random-walk speed — tens of thousands of detailed
// cycles, far more than any affordable warm-up — so the jump must
// restore it explicitly. jitter may be nil for no extra dispersion.
func (s *SM) FastForward(budget, ffTicks, now, staggerBase int64, jitter func() int64) int64 {
	if budget < 0 {
		budget = 0
	}
	for wi := nextBit(s.liveM, 0); wi >= 0; wi = nextBit(s.liveM, wi+1) {
		off := s.readyAt[wi] - staggerBase
		if off < 0 {
			off = 0
		}
		if jitter != nil {
			off += jitter()
		}
		s.readyAt[wi] = now + off
	}
	var issued int64
	// Two passes: an even split first, then leftover budget from warps
	// that ran out of program redistributes to warps that did not.
	for pass := 0; pass < 2 && budget > issued; pass++ {
		live := int64(0)
		for wi := nextBit(s.liveM, 0); wi >= 0; wi = nextBit(s.liveM, wi+1) {
			if int(s.pc[wi]) < len(s.warps[wi].Prog) {
				live++
			}
		}
		if live == 0 {
			break
		}
		share := (budget - issued + live - 1) / live
		for wi := nextBit(s.liveM, 0); wi >= 0 && issued < budget; wi = nextBit(s.liveM, wi+1) {
			w := s.warps[wi]
			take := share
			if left := budget - issued; take > left {
				take = left
			}
			if rem := int64(len(w.Prog)) - int64(s.pc[wi]); take > rem {
				take = rem
			}
			if take <= 0 {
				continue
			}
			pc := int64(s.pc[wi]) + take
			s.pc[wi] = int32(pc)
			w.Issued += take
			s.InstrIssued += take
			issued += take
			if int(pc) < len(w.Prog) && w.Prog[pc].Kind != Compute {
				bitSet(s.memNextM, wi)
			} else {
				bitClear(s.memNextM, wi)
			}
			if int(pc) >= len(w.Prog) {
				bitSet(s.doneM, wi)
				bitClear(s.liveM, wi)
				w.DoneTick = now
				s.active--
				if s.active == 0 {
					s.DoneTick = now
				}
			}
		}
	}
	s.ActiveTicks += issued
	if s.active > 0 && ffTicks > issued {
		s.IdleTicks += ffTicks - issued
	}
	return issued
}
