// Package gddr5 models the timing of the Hynix H5GQ1H24AFR GDDR5 SGRAM used
// in the paper (Table II): a 64-bit channel built from two x32 devices
// operated in tandem as one rank, 16 banks organized as 4 bank groups, a
// 1.5 GHz command clock (tCK = 0.667 ns) and a 6 Gbps data interface.
//
// It also derives the Minimum Efficient Row Burst (MERB) table of Section
// IV-D from first principles, and the single-bank utilization model that
// motivates the MERB=31 entry.
package gddr5

import "math"

// TCK is the GDDR5 command-clock period in nanoseconds (Table II).
const TCK = 0.667

// Timing holds the GDDR5 timing constraints. The *NS fields are datasheet
// nanosecond values (Table II); the cycle-count fields are derived with
// ceil(ns/tCK) by Derive and are what the DRAM engine enforces.
type Timing struct {
	// Nanosecond parameters.
	TRCNS   float64 // ACT to ACT, same bank
	TRCDNS  float64 // ACT to column command
	TRPNS   float64 // PRE to ACT
	TCASNS  float64 // column read to data (CL)
	TRASNS  float64 // ACT to PRE
	TRRDNS  float64 // ACT to ACT, different banks
	TWTRNS  float64 // end of write data to read command
	TFAWNS  float64 // four-activate window
	TRTPNS  float64 // read to precharge
	TWRNS   float64 // end of write data to precharge (write recovery)
	TBURSTN float64 // data burst duration in ns (2 tCK)

	// Native cycle-count parameters (already in tCK units in Table II).
	TWL    int // write latency (4 tCK)
	TBURST int // burst duration (2 tCK)
	TRTRS  int // rank-to-rank switch (1 tCK)
	TCCDL  int // column-to-column, same bank group (3 tCK)
	TCCDS  int // column-to-column, different bank group (2 tCK)

	// Derived cycle counts (filled by Derive).
	TRC  int
	TRCD int
	TRP  int
	TCAS int
	TRAS int
	TRRD int
	TWTR int
	TFAW int
	TRTP int
	TWR  int
	// TRTW is the read-to-write turnaround: the gap required between a
	// read column command and a write column command so that read data
	// (at tCAS) and write data (at tWL) do not collide on the shared bus.
	// Derived as TCAS + TBURST + TRTRS - TWL.
	TRTW int
}

// Default returns the Table II timing set for the simulated Hynix 1Gb
// GDDR5 part, with the derived cycle counts filled in.
func Default() Timing {
	t := Timing{
		TRCNS:   40,
		TRCDNS:  12,
		TRPNS:   12,
		TCASNS:  12,
		TRASNS:  28,
		TRRDNS:  5.5,
		TWTRNS:  5,
		TFAWNS:  23,
		TRTPNS:  2,
		TWRNS:   12, // datasheet write recovery; not listed in Table II
		TBURSTN: 2 * TCK,
		TWL:     4,
		TBURST:  2,
		TRTRS:   1,
		TCCDL:   3,
		TCCDS:   2,
	}
	t.Derive()
	return t
}

// Cycles converts a nanosecond constraint to command-clock cycles,
// rounding up (a constraint must never be violated by rounding).
func Cycles(ns float64) int {
	return int(math.Ceil(ns/TCK - 1e-9))
}

// Derive fills the cycle-count fields from the nanosecond fields.
func (t *Timing) Derive() {
	t.TRC = Cycles(t.TRCNS)
	t.TRCD = Cycles(t.TRCDNS)
	t.TRP = Cycles(t.TRPNS)
	t.TCAS = Cycles(t.TCASNS)
	t.TRAS = Cycles(t.TRASNS)
	t.TRRD = Cycles(t.TRRDNS)
	t.TWTR = Cycles(t.TWTRNS)
	t.TFAW = Cycles(t.TFAWNS)
	t.TRTP = Cycles(t.TRTPNS)
	t.TWR = Cycles(t.TWRNS)
	t.TRTW = t.TCAS + t.TBURST + t.TRTRS - t.TWL
	if t.TRTW < 0 {
		t.TRTW = 0
	}
}

// RowMissPenaltyNS is the extra latency of a row-miss over a row-hit:
// tRP + tRCD (the paper's 36 ns vs 12 ns rationale behind the 3:1 score).
func (t Timing) RowMissPenaltyNS() float64 { return t.TRPNS + t.TRCDNS }

// MERBMax is the saturating value of the 5-bit per-bank row-hit counter
// (Section IV-D).
const MERBMax = 31

// MERB returns the Minimum Efficient Row Burst for the given number of
// banks with pending work: the number of 64B data bursts that must be
// transferred from other banks to hide the cost of one row miss
// (tRTP + tRP + tRCD), bounded below by the activate rotation rate
// max(tRRD, tFAW/4). With a single busy bank nothing can hide the miss, so
// the counter saturates at 31 (Section IV-D).
func (t Timing) MERB(banksWithWork int) int {
	if banksWithWork <= 1 {
		return MERBMax
	}
	missOverhead := t.TRTPNS + t.TRPNS + t.TRCDNS
	hide := missOverhead / (float64(banksWithWork-1) * t.TBURSTN)
	actGap := math.Max(t.TRRDNS, t.TFAWNS/4) / t.TBURSTN
	m := int(math.Ceil(math.Max(hide, actGap) - 1e-9))
	if m > MERBMax {
		m = MERBMax
	}
	if m < 1 {
		m = 1
	}
	return m
}

// MERBTable returns the MERB values for 1..maxBanks banks with pending
// work. For the default GDDR5 timings and maxBanks=16 this reproduces
// Table I: [31 20 10 7 5 5 5 ... 5].
func (t Timing) MERBTable(maxBanks int) []int {
	tab := make([]int, maxBanks)
	for b := 1; b <= maxBanks; b++ {
		tab[b-1] = t.MERB(b)
	}
	return tab
}

// SingleBankUtilization returns the data-bus utilization achievable when a
// single bank services n row-hit bursts per activate (the formula in
// Section IV-D):
//
//	util = tBURST*n / (tRCD + tBURST*n + (tRTP - tBURST + tCK) + tRP)
//
// For GDDR5 this is 1.33n / (1.33n + 25.33); at n = 31 it reaches ~62%.
func (t Timing) SingleBankUtilization(n int) float64 {
	num := t.TBURSTN * float64(n)
	den := t.TRCDNS + num + (t.TRTPNS - t.TBURSTN + TCK) + t.TRPNS
	return num / den
}
