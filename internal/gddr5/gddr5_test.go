package gddr5

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDerivedCycles(t *testing.T) {
	tm := Default()
	cases := []struct {
		name string
		got  int
		want int
	}{
		{"tRC", tm.TRC, 60},
		{"tRCD", tm.TRCD, 18},
		{"tRP", tm.TRP, 18},
		{"tCAS", tm.TCAS, 18},
		{"tRAS", tm.TRAS, 42},
		{"tRRD", tm.TRRD, 9},
		{"tWTR", tm.TWTR, 8},
		{"tFAW", tm.TFAW, 35},
		{"tRTP", tm.TRTP, 3},
		{"tWR", tm.TWR, 18},
		{"tWL", tm.TWL, 4},
		{"tBURST", tm.TBURST, 2},
		{"tRTRS", tm.TRTRS, 1},
		{"tCCDL", tm.TCCDL, 3},
		{"tCCDS", tm.TCCDS, 2},
		{"tRTW", tm.TRTW, 18 + 2 + 1 - 4},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s = %d cycles, want %d", c.name, c.got, c.want)
		}
	}
}

func TestRowMissPenalty(t *testing.T) {
	tm := Default()
	// Section IV-B1: a row miss costs tRP+tRCD+tCAS = 36ns vs tCAS = 12ns.
	if got := tm.RowMissPenaltyNS(); got != 24 {
		t.Fatalf("RowMissPenaltyNS = %v, want 24 (so miss total 36ns vs hit 12ns)", got)
	}
}

// Table I of the paper, reproduced from first principles.
func TestMERBTableMatchesPaper(t *testing.T) {
	tm := Default()
	want := map[int]int{1: 31, 2: 20, 3: 10, 4: 7, 5: 5}
	for b, w := range want {
		if got := tm.MERB(b); got != w {
			t.Errorf("MERB(%d) = %d, want %d (Table I)", b, got, w)
		}
	}
	// Banks 6..16 all share the activate-rotation-bound value 5.
	for b := 6; b <= 16; b++ {
		if got := tm.MERB(b); got != 5 {
			t.Errorf("MERB(%d) = %d, want 5 (Table I row '6-16')", b, got)
		}
	}
}

func TestMERBTableSlice(t *testing.T) {
	tab := Default().MERBTable(16)
	if len(tab) != 16 {
		t.Fatalf("len = %d", len(tab))
	}
	want := []int{31, 20, 10, 7, 5, 5}
	for i, w := range want {
		if tab[i] != w {
			t.Errorf("tab[%d] = %d, want %d", i, tab[i], w)
		}
	}
}

// MERB is monotonically non-increasing in the number of busy banks and
// always within [1, 31].
func TestMERBMonotone(t *testing.T) {
	tm := Default()
	f := func(b uint8) bool {
		n := int(b%32) + 1
		m := tm.MERB(n)
		if m < 1 || m > MERBMax {
			return false
		}
		if n > 1 && tm.MERB(n-1) < m {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSingleBankUtilization(t *testing.T) {
	tm := Default()
	// Section IV-D: util = 1.33n/(1.33n+25.33); at n=31 this is ~62%.
	got := tm.SingleBankUtilization(31)
	if math.Abs(got-0.62) > 0.01 {
		t.Fatalf("SingleBankUtilization(31) = %.4f, want ~0.62", got)
	}
	// Utilization is monotone in n and bounded by 1.
	prev := 0.0
	for n := 1; n <= 64; n++ {
		u := tm.SingleBankUtilization(n)
		if u <= prev || u >= 1 {
			t.Fatalf("utilization not monotone/bounded at n=%d: %v (prev %v)", n, u, prev)
		}
		prev = u
	}
}

func TestCyclesRounding(t *testing.T) {
	// Exact multiples must not round up an extra cycle.
	if got := Cycles(2 * TCK); got != 2 {
		t.Fatalf("Cycles(2*tCK) = %d, want 2", got)
	}
	if got := Cycles(0); got != 0 {
		t.Fatalf("Cycles(0) = %d, want 0", got)
	}
	// Fractions round up: 5.5ns / 0.667 = 8.25 -> 9.
	if got := Cycles(5.5); got != 9 {
		t.Fatalf("Cycles(5.5) = %d, want 9", got)
	}
}

func TestDeriveClampsNegativeRTW(t *testing.T) {
	tm := Default()
	tm.TCASNS = 0
	tm.TWL = 100
	tm.Derive()
	if tm.TRTW != 0 {
		t.Fatalf("TRTW = %d, want clamped to 0", tm.TRTW)
	}
}
