package addrmap

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGeometryConstants(t *testing.T) {
	if BlocksPerRow != 16 {
		t.Fatalf("BlocksPerRow = %d, want 16", BlocksPerRow)
	}
	if AtomsPerBlk != 4 {
		t.Fatalf("AtomsPerBlk = %d, want 4", AtomsPerBlk)
	}
}

func TestNewPanics(t *testing.T) {
	for _, tc := range []struct{ ch, banks int }{{0, 16}, {6, 0}, {6, 12}, {-1, 16}, {6, -16}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", tc.ch, tc.banks)
				}
			}()
			New(tc.ch, tc.banks)
		}()
	}
}

func TestDecodeRanges(t *testing.T) {
	m := New(6, 16)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		addr := rng.Uint64() & ((1 << 40) - 1)
		c := m.Decode(addr)
		if c.Channel < 0 || c.Channel >= 6 {
			t.Fatalf("channel %d out of range for %#x", c.Channel, addr)
		}
		if c.Bank < 0 || c.Bank >= 16 {
			t.Fatalf("bank %d out of range for %#x", c.Bank, addr)
		}
		if c.Col < 0 || c.Col >= RowBytes/AtomBytes {
			t.Fatalf("col %d out of range for %#x", c.Col, addr)
		}
		if c.Row < 0 {
			t.Fatalf("negative row for %#x", addr)
		}
	}
}

// Round trip: Encode(Decode(a)) == a with the sub-atom offset stripped.
func TestRoundTripFromAddr(t *testing.T) {
	m := New(6, 16)
	f := func(a uint64) bool {
		addr := a & ((1 << 44) - 1)
		return m.Encode(m.Decode(addr)) == addr&^uint64(AtomBytes-1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}

// Round trip: Decode(Encode(c)) == c for in-range coordinates.
func TestRoundTripFromCoord(t *testing.T) {
	m := New(6, 16)
	f := func(ch, bank, row, col uint16) bool {
		c := Coord{
			Channel: int(ch) % 6,
			Bank:    int(bank) % 16,
			Row:     int(row) % 4096,
			Col:     int(col) % (RowBytes / AtomBytes),
		}
		return m.Decode(m.Encode(c)) == c
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}

// Two 128B lines inside the same 256B block must land in the same row and
// bank and channel (this is what makes the 128B coalesced pair cheap).
func TestSameBlockSameRow(t *testing.T) {
	m := New(6, 16)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		base := (rng.Uint64() & ((1 << 40) - 1)) &^ uint64(BlockBytes-1)
		a := m.Decode(base)
		b := m.Decode(base + LineBytes)
		if a.Channel != b.Channel || a.Bank != b.Bank || a.Row != b.Row {
			t.Fatalf("lines of block %#x split: %+v vs %+v", base, a, b)
		}
		if a.Col == b.Col {
			t.Fatalf("lines of block %#x share column %d", base, a.Col)
		}
	}
}

// Consecutive 256B blocks must spread across channels (and across banks
// within a channel): a sequential stream should touch every channel with
// near-uniform frequency.
func TestSequentialSpread(t *testing.T) {
	m := New(6, 16)
	chCount := make([]int, 6)
	bankCount := make([]int, 16)
	const n = 6 * 16 * 64
	for i := 0; i < n; i++ {
		c := m.Decode(uint64(i) * BlockBytes)
		chCount[c.Channel]++
		bankCount[c.Bank]++
	}
	for ch, cnt := range chCount {
		if cnt < n/6-n/32 || cnt > n/6+n/32 {
			t.Errorf("channel %d got %d of %d blocks; want ~%d", ch, cnt, n, n/6)
		}
	}
	for b, cnt := range bankCount {
		if cnt == 0 {
			t.Errorf("bank %d never touched by sequential stream", b)
		}
	}
}

// The XOR channel hash must defeat the pathological stride that would camp
// on one channel without it. With channel = (addr>>8) % 6 a stride of
// 6*256B camps; with the XOR fold the same stride must spread.
func TestChannelCampingDefeated(t *testing.T) {
	m := New(6, 16)
	chCount := make([]int, 6)
	const n = 1024
	for i := 0; i < n; i++ {
		c := m.Decode(uint64(i) * 6 * BlockBytes)
		chCount[c.Channel]++
	}
	max := 0
	for _, cnt := range chCount {
		if cnt > max {
			max = cnt
		}
	}
	// Without the XOR all n accesses go to one channel. Demand that no
	// channel receives more than half.
	if max > n/2 {
		t.Fatalf("stride-6-block stream camps: max channel share %d/%d", max, n)
	}
}

// Bank permutation must defeat bank camping for strides equal to the bank
// rotation period within a channel.
func TestBankCampingDefeated(t *testing.T) {
	m := New(6, 16)
	// Generate addresses that land on channel 0 with block stride 16
	// within the channel (same bank without permutation).
	bankCount := make([]int, 16)
	total := 0
	for cblk := uint64(0); cblk < 16*512; cblk += 16 {
		key := cblk*6 + 0
		addr := invChannelKey(key) << 8
		c := m.Decode(addr)
		if c.Channel != 0 {
			t.Fatalf("constructed address %#x not on channel 0", addr)
		}
		bankCount[c.Bank]++
		total++
	}
	max := 0
	for _, cnt := range bankCount {
		if cnt > max {
			max = cnt
		}
	}
	if max > total/4 {
		t.Fatalf("bank camping: max bank share %d/%d", max, total)
	}
}

func TestDecodeInto(t *testing.T) {
	m := New(6, 16)
	var ch, bank, row, col int
	m.DecodeInto(0x123456780, &ch, &bank, &row, &col)
	want := m.Decode(0x123456780)
	if ch != want.Channel || bank != want.Bank || row != want.Row || col != want.Col {
		t.Fatalf("DecodeInto mismatch: got (%d,%d,%d,%d) want %+v", ch, bank, row, col, want)
	}
}

// Different channel counts must still round-trip (the mapper is generic).
func TestOtherGeometries(t *testing.T) {
	for _, chs := range []int{1, 2, 4, 8} {
		for _, banks := range []int{8, 16, 32} {
			m := New(chs, banks)
			rng := rand.New(rand.NewSource(int64(chs*100 + banks)))
			for i := 0; i < 2000; i++ {
				addr := (rng.Uint64() & ((1 << 40) - 1)) &^ uint64(AtomBytes-1)
				if got := m.Encode(m.Decode(addr)); got != addr {
					t.Fatalf("chs=%d banks=%d: round trip %#x -> %#x", chs, banks, addr, got)
				}
			}
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	m := New(6, 16)
	var sink Coord
	for i := 0; i < b.N; i++ {
		sink = m.Decode(uint64(i) * 128)
	}
	_ = sink
}
