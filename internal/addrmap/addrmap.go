// Package addrmap implements the GPU address mapping described in Section
// II-C of the paper.
//
// The goals of the mapping are:
//
//   - consecutive cache lines land in the same DRAM row of the same bank to
//     promote row-buffer locality (the 256B interleave block holds two 128B
//     lines, and a 4KB row collects sixteen blocks);
//
//   - blocks of consecutive cache lines are interleaved across the memory
//     channels and banks at a granularity of 256 bytes for channel- and
//     bank-level parallelism;
//
//   - the channel index is computed by XOR-ing addr[10:8] with addr[13:11]
//     before the mod-6 fold, exactly as the paper specifies:
//
//     channel = {addr[47:11] : (addr[10:8] XOR addr[13:11])} % 6
//
//     which prevents pathological "channel camping" on power-of-two strides;
//
//   - the bank index is permuted by XOR-ing with low-order row bits
//     (Zhang et al. [53]) to prevent bank camping.
package addrmap

// Geometry constants of the simulated memory system (Table II).
const (
	LineBytes  = 128  // L1/L2 cache line and request size
	BlockBytes = 256  // channel/bank interleave granularity
	AtomBytes  = 64   // one GDDR5 burst (BL8 on the 64-bit channel)
	RowBytes   = 4096 // logical row: 2KB page per x32 device, two devices in tandem

	BlocksPerRow = RowBytes / BlockBytes // 16
	AtomsPerBlk  = BlockBytes / AtomBytes
)

// Mapper decodes byte addresses into DRAM coordinates for a fixed geometry.
type Mapper struct {
	Channels int // number of memory channels (6 in Table II)
	Banks    int // banks per channel (16 in Table II); must be a power of two
	bankMask uint64
	bankBits uint
}

// New returns a Mapper for the given channel and bank counts. Banks must be
// a power of two.
func New(channels, banks int) *Mapper {
	if channels <= 0 {
		panic("addrmap: channels must be positive")
	}
	if banks <= 0 || banks&(banks-1) != 0 {
		panic("addrmap: banks must be a positive power of two")
	}
	bits := uint(0)
	for 1<<bits < banks {
		bits++
	}
	return &Mapper{Channels: channels, Banks: banks, bankMask: uint64(banks - 1), bankBits: bits}
}

// Coord is a fully decoded DRAM location. Col is in units of 64B atoms
// within the row.
type Coord struct {
	Channel int
	Bank    int
	Row     int
	Col     int
}

// channelKey applies the paper's XOR spread to the 256B block index and
// returns the pre-fold key {addr[47:11] : (addr[10:8] XOR addr[13:11])}.
func channelKey(addr uint64) uint64 {
	blk := addr >> 8 // 256B block index; blk[2:0] == addr[10:8]
	hi := blk >> 3   // addr[47:11]
	lo := (blk & 7) ^ (hi & 7)
	return hi<<3 | lo
}

// invChannelKey inverts channelKey.
func invChannelKey(key uint64) uint64 {
	hi := key >> 3
	lo := (key & 7) ^ (hi & 7)
	return hi<<3 | lo // block index
}

// Decode maps a byte address to its DRAM coordinates.
func (m *Mapper) Decode(addr uint64) Coord {
	key := channelKey(addr)
	ch := int(key % uint64(m.Channels))
	cblk := key / uint64(m.Channels) // per-channel 256B block index

	row := cblk >> (m.bankBits + 4) // 16 block slots per row
	bank := (cblk & m.bankMask) ^ (row & m.bankMask)
	slot := (cblk >> m.bankBits) & (BlocksPerRow - 1)
	col := int(slot)*AtomsPerBlk + int((addr>>6)&(AtomsPerBlk-1))

	return Coord{Channel: ch, Bank: int(bank), Row: int(row), Col: col}
}

// Encode is the inverse of Decode: it returns the (64B-aligned) byte
// address of the given DRAM coordinate. Decode(Encode(c)) == c for every
// in-range coordinate, and Encode(Decode(a)) == a &^ 63 for every address.
func (m *Mapper) Encode(c Coord) uint64 {
	slot := uint64(c.Col / AtomsPerBlk)
	atom := uint64(c.Col % AtomsPerBlk)
	row := uint64(c.Row)
	bank := (uint64(c.Bank) ^ (row & m.bankMask)) & m.bankMask
	cblk := row<<(m.bankBits+4) | slot<<m.bankBits | bank
	key := cblk*uint64(m.Channels) + uint64(c.Channel)
	return invChannelKey(key)<<8 | atom<<6
}

// DecodeInto fills the DRAM coordinate fields of a request-like receiver.
// It exists so callers outside the hot path do not need to import Coord.
func (m *Mapper) DecodeInto(addr uint64, ch, bank, row, col *int) {
	c := m.Decode(addr)
	*ch, *bank, *row, *col = c.Channel, c.Bank, c.Row, c.Col
}
