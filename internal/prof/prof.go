// Package prof adds the standard pprof escape hatches to the CLI tools:
// -cpuprofile / -memprofile flags plus a machine-readable per-run timing
// export (-benchjson), so hot-path regressions in the simulation core can
// be diagnosed straight from a sweep invocation.
package prof

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"

	"dramlat/internal/sweep"
)

// Flags holds the profiling flag values registered by Register.
type Flags struct {
	cpu  string
	mem  string
	json string

	cpuFile *os.File
	once    sync.Once
}

// Register installs -cpuprofile, -memprofile and -benchjson on the
// default flag set. Call before flag.Parse.
func Register() *Flags {
	f := &Flags{}
	flag.StringVar(&f.cpu, "cpuprofile", "", "write a CPU profile to this file")
	flag.StringVar(&f.mem, "memprofile", "", "write a heap profile to this file on exit")
	flag.StringVar(&f.json, "benchjson", "", "write per-run wall-clock timings as JSON to this file (\"-\" = stdout)")
	return f
}

// Start begins CPU profiling when requested. Pair it with Stop.
func (f *Flags) Start() error {
	if f.cpu == "" {
		return nil
	}
	file, err := os.Create(f.cpu)
	if err != nil {
		return err
	}
	if err := pprof.StartCPUProfile(file); err != nil {
		file.Close()
		return err
	}
	f.cpuFile = file
	return nil
}

// Stop flushes the CPU profile and writes the heap profile. It is
// idempotent so every os.Exit path can call it unconditionally.
func (f *Flags) Stop() {
	f.once.Do(func() {
		if f.cpuFile != nil {
			pprof.StopCPUProfile()
			f.cpuFile.Close()
		}
		if f.mem == "" {
			return
		}
		file, err := os.Create(f.mem)
		if err != nil {
			fmt.Fprintln(os.Stderr, "memprofile:", err)
			return
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(file); err != nil {
			fmt.Fprintln(os.Stderr, "memprofile:", err)
		}
		file.Close()
	})
}

// BenchEntry is one executed run in the -benchjson export. Cached and
// failed outcomes are omitted: their Elapsed is not a simulation time.
type BenchEntry struct {
	Benchmark   string  `json:"benchmark"`
	Scheduler   string  `json:"scheduler"`
	Seed        int64   `json:"seed"`
	Ticks       int64   `json:"ticks"`
	WallNS      int64   `json:"wall_ns"`
	TicksPerSec float64 `json:"ticks_per_sec"`
}

// WriteBench exports per-run wall-clock timings for the executed
// outcomes. No-op when -benchjson was not given.
func (f *Flags) WriteBench(outcomes []sweep.Outcome) error {
	if f.json == "" {
		return nil
	}
	entries := []BenchEntry{}
	for _, o := range outcomes {
		if o.Cached || o.Err != nil || o.Elapsed <= 0 {
			continue
		}
		sp := o.Spec.Canonical()
		e := BenchEntry{
			Benchmark: sp.Benchmark, Scheduler: sp.Scheduler, Seed: sp.Seed,
			Ticks: o.Results.Ticks, WallNS: o.Elapsed.Nanoseconds(),
		}
		e.TicksPerSec = float64(e.Ticks) / (float64(e.WallNS) / 1e9)
		entries = append(entries, e)
	}
	w := os.Stdout
	if f.json != "-" {
		file, err := os.Create(f.json)
		if err != nil {
			return err
		}
		defer file.Close()
		w = file
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(entries)
}
