// Package dram implements a cycle-accurate model of one GDDR5 memory
// channel: 16 banks organized into 4 bank groups, per-bank in-order command
// queues, and a command scheduler that interleaves bank groups first and
// banks second (the multi-level round-robin of Section II-C), while
// enforcing every timing constraint of the Table II set.
//
// The channel is policy-free: a memory controller (internal/memctrl,
// internal/core) decides which transaction to enqueue and when; the channel
// guarantees that the resulting DRAM command stream is legal and reports
// when each transaction's data transfer finishes.
//
// One transaction moves one 128-byte request; because the 64-bit GDDR5
// channel transfers 64 bytes per burst (BL8, tBURST = 2 tCK), a transaction
// issues two column commands. Keeping the 64B burst as the unit of data
// transfer keeps the MERB arithmetic of Section IV-D identical to the
// paper's.
//
// Refresh is off by default (the paper does not discuss it and it affects
// all schedulers identically) but can be enabled with SetRefresh: an
// all-bank refresh model that drains the command queues, closes every bank
// and blocks the channel for tRFC every tREFI.
package dram

import (
	"dramlat/internal/gddr5"
	"dramlat/internal/guard"
	"dramlat/internal/memreq"
)

// Never is the wakeup-contract sentinel: a NextWakeup result of Never
// means "no state change can happen without new external input". Any
// finite wakeup may be early (the caller just re-checks); it must never
// be later than the component's first actual state change.
const Never int64 = 1 << 62

// CmdType enumerates DRAM commands.
type CmdType uint8

const (
	// CmdACT opens a row in a bank.
	CmdACT CmdType = iota
	// CmdPRE closes the open row of a bank.
	CmdPRE
	// CmdRD reads one 64B burst from the open row.
	CmdRD
	// CmdWR writes one 64B burst to the open row.
	CmdWR
)

func (c CmdType) String() string {
	switch c {
	case CmdACT:
		return "ACT"
	case CmdPRE:
		return "PRE"
	case CmdRD:
		return "RD"
	case CmdWR:
		return "WR"
	}
	return "?"
}

// Command is one entry of a per-bank command queue.
type Command struct {
	Type CmdType
	Bank int
	Row  int          // target row (ACT) or open-row check (RD/WR)
	Txn  *Transaction // owning transaction for column commands
	Last bool         // final column command of the transaction
}

// Transaction is a scheduled request: the unit the transaction scheduler
// hands to the channel. Hit records whether the transaction was projected
// (and, because per-bank queues execute in order, actually is) a row hit.
type Transaction struct {
	Req      *memreq.Request
	Hit      bool
	CASTotal int
	casDone  int
	DoneAt   int64 // tick at which the last burst finishes
}

// bank tracks both the architectural state (open row, earliest-legal times)
// and the shadow scheduling state (the row that will be open once all
// queued commands execute) of one DRAM bank.
type bank struct {
	openRow int // -1 when closed (architectural)
	actOK   int64
	preOK   int64
	casOK   int64

	schedRow     int // row open after queued cmds execute; -1 closed
	queue        []Command
	queuedTxns   int
	queuedScore  int // WG score units (1 per projected hit, 3 per miss)
	hitsSinceAct int // 64B bursts scheduled since the last scheduled ACT

	// schedVer increments whenever any scheduler-visible bank state above
	// (schedRow, queuedScore, hitsSinceAct) changes: on Enqueue, on a
	// transaction's last burst retiring, and on refresh. Warp-group score
	// caches (internal/core) compare snapshots of it to decide whether a
	// cached score is still valid.
	schedVer uint32
}

// Stats aggregates channel activity counters.
type Stats struct {
	Refreshes int64
	ACTs      int64
	PREs      int64
	RDBursts  int64
	WRBursts  int64
	HitTxns   int64
	MissTxns  int64
	ReadTxns  int64
	WriteTxns int64
	BusyTicks int64 // data-bus busy time (bursts * tBURST)
}

// Channel is one 64-bit GDDR5 channel with a single rank of 16 banks.
type Channel struct {
	T        gddr5.Timing
	NumBanks int
	Groups   int // bank groups (4)
	QueueCap int // max queued transactions per bank

	banks []bank

	// Rank-level timing state.
	lastACT   int64    // for tRRD
	fawWindow [4]int64 // ticks of the last four ACTs (ring)
	fawIdx    int

	lastCASGroup []int64 // last column command per bank group (tCCDL)
	lastCASAny   int64   // last column command on the channel (tCCDS)
	lastRDCmd    int64   // last read column command (tRTW)
	wrDataEnd    int64   // end of last write data (tWTR)
	busFreeAt    int64   // data bus availability

	rrBank  int // round-robin position within group
	rrGroup int // round-robin position across groups

	// busOnly holds Zero-Latency-Divergence trailing requests: they are
	// serviced purely as data-bus transfers (Fig 4's ideal model keeps
	// bus bandwidth and contention but abstracts bank conflicts away).
	busOnly []*Transaction

	// Refresh state (SetRefresh).
	refreshInterval int64
	trfc            int64
	nextRefresh     int64
	refreshDue      bool

	// OnComplete fires when a transaction's final burst finishes
	// transferring. It may be nil.
	OnComplete func(*Transaction, int64)

	// WakeCache lets Tick skip the bank scan outright while now is before
	// cmdWake, a cached lower bound on the next tick any command can
	// issue (recomputed on idle ticks, zeroed by every state mutation).
	// Off in the dense reference engine so its Tick stays the pristine
	// differential oracle; the cache's own contract is covered by
	// TestNextWakeupNeverLate.
	WakeCache bool
	cmdWake   int64

	Stats Stats
}

// NewChannel builds a channel with the given timing and geometry.
func NewChannel(t gddr5.Timing, numBanks, groups, queueCap int) *Channel {
	if numBanks%groups != 0 {
		panic("dram: banks must divide evenly into groups")
	}
	c := &Channel{
		T:            t,
		NumBanks:     numBanks,
		Groups:       groups,
		QueueCap:     queueCap,
		banks:        make([]bank, numBanks),
		lastCASGroup: make([]int64, groups),
	}
	const past = -1 << 30
	for i := range c.banks {
		c.banks[i].openRow = -1
		c.banks[i].schedRow = -1
		c.banks[i].actOK = past
		c.banks[i].preOK = past
		c.banks[i].casOK = past
	}
	c.lastACT = past
	for i := range c.fawWindow {
		c.fawWindow[i] = past
	}
	for i := range c.lastCASGroup {
		c.lastCASGroup[i] = past
	}
	c.lastCASAny = past
	c.lastRDCmd = past
	c.wrDataEnd = past
	c.busFreeAt = past
	return c
}

func (c *Channel) group(bankIdx int) int { return bankIdx / (c.NumBanks / c.Groups) }

// SetRefresh enables all-bank refresh every interval ticks, blocking the
// channel for trfc ticks per refresh. Passing interval 0 disables it.
func (c *Channel) SetRefresh(interval, trfc int64) {
	c.refreshInterval = interval
	c.trfc = trfc
	c.nextRefresh = interval
	c.cmdWake = 0
}

// CanAccept reports whether bank b's command queue has room for another
// transaction. While a refresh is pending the channel drains and accepts
// nothing new.
func (c *Channel) CanAccept(b int) bool {
	if c.refreshDue {
		return false
	}
	return c.banks[b].queuedTxns < c.QueueCap
}

// maybeRefresh arms and performs all-bank refreshes. It returns true while
// a refresh is blocking the channel this tick.
func (c *Channel) maybeRefresh(now int64) bool {
	if c.refreshInterval <= 0 {
		return false
	}
	if !c.refreshDue && now >= c.nextRefresh {
		c.refreshDue = true
	}
	if !c.refreshDue {
		return false
	}
	// Drain: issue queued commands as usual until every queue is empty.
	for i := range c.banks {
		if len(c.banks[i].queue) > 0 {
			return false // keep issuing; acceptance is already blocked
		}
	}
	if len(c.busOnly) > 0 {
		return false
	}
	// Wait until every bank may precharge and the bus is quiet.
	for i := range c.banks {
		if c.banks[i].openRow != -1 && now < c.banks[i].preOK {
			return true
		}
	}
	if now < c.busFreeAt {
		return true
	}
	// Perform the refresh: close everything, block for tRFC.
	for i := range c.banks {
		c.banks[i].openRow = -1
		c.banks[i].schedRow = -1
		c.banks[i].actOK = now + c.trfc
		c.banks[i].hitsSinceAct = 0
		c.banks[i].schedVer++
	}
	c.Stats.Refreshes++
	c.refreshDue = false
	c.nextRefresh = now + c.refreshInterval
	return true
}

// SchedRow returns the row that will be open in bank b once all queued
// commands execute, or -1 if the bank will be (or stay) closed.
func (c *Channel) SchedRow(b int) int { return c.banks[b].schedRow }

// OpenRow returns the row currently open in bank b (-1 precharged),
// for diagnostics.
func (c *Channel) OpenRow(b int) int { return c.banks[b].openRow }

// QueuedTxns returns the number of transactions queued at bank b.
func (c *Channel) QueuedTxns(b int) int { return c.banks[b].queuedTxns }

// QueuedScore returns the WG completion-time score (1 per projected row
// hit, 3 per projected row miss; Section IV-B1) of the transactions queued
// at bank b.
func (c *Channel) QueuedScore(b int) int { return c.banks[b].queuedScore }

// HitsSinceAct returns the number of 64B row-hit bursts scheduled to bank b
// since its last scheduled activate: the MERB counter of Section IV-D.
func (c *Channel) HitsSinceAct(b int) int { return c.banks[b].hitsSinceAct }

// SchedVersion returns a counter that changes whenever bank b's
// scheduler-visible state (SchedRow, QueuedScore, HitsSinceAct) changes.
// Score caches snapshot it to detect staleness without subscribing to
// individual mutations.
func (c *Channel) SchedVersion(b int) uint32 { return c.banks[b].schedVer }

// BanksWithQueuedWork counts banks with at least one queued transaction.
func (c *Channel) BanksWithQueuedWork() int {
	n := 0
	for i := range c.banks {
		if c.banks[i].queuedTxns > 0 {
			n++
		}
	}
	return n
}

// ProjectHit reports whether a request to (bank, row) would be a row hit if
// enqueued now.
func (c *Channel) ProjectHit(bankIdx, row int) bool {
	return c.banks[bankIdx].schedRow == row
}

// EnqueueBusOnly schedules a request that consumes only data-bus
// bandwidth: two bursts at the earliest bus opening, no bank commands.
func (c *Channel) EnqueueBusOnly(r *memreq.Request) *Transaction {
	txn := &Transaction{Req: r, Hit: true, CASTotal: 2}
	c.busOnly = append(c.busOnly, txn)
	c.cmdWake = 0
	return txn
}

// tickBusOnly issues the oldest bus-only transfer if the data bus is open.
// It mirrors a read's bus occupancy (data at now+tCAS for 2*tBURST).
func (c *Channel) tickBusOnly(now int64) bool {
	if len(c.busOnly) == 0 {
		return false
	}
	start := now + int64(c.T.TCAS)
	if start < c.busFreeAt {
		return false
	}
	txn := c.busOnly[0]
	c.busOnly = c.busOnly[1:]
	end := start + 2*int64(c.T.TBURST)
	c.busFreeAt = end
	c.Stats.RDBursts += 2
	c.Stats.BusyTicks += 2 * int64(c.T.TBURST)
	c.Stats.ReadTxns++
	c.Stats.HitTxns++
	txn.casDone = txn.CASTotal
	txn.DoneAt = end
	if c.OnComplete != nil {
		c.OnComplete(txn, end)
	}
	return true
}

// Enqueue schedules a request onto its bank's command queue, generating
// PRE/ACT commands as needed based on the shadow row state. It returns the
// transaction and whether it was a projected row hit. The caller must have
// checked CanAccept.
func (c *Channel) Enqueue(r *memreq.Request) *Transaction {
	b := &c.banks[r.Bank]
	if b.queuedTxns >= c.QueueCap {
		// Hot-path invariant: callers must CanAccept first. Kept as a
		// (typed) panic — the model cannot continue — and converted into
		// a *guard.RunError by the façade's recover.
		guard.Invariantf("dram: enqueue to full bank %d", r.Bank)
	}
	c.cmdWake = 0
	casType := CmdRD
	if r.Kind == memreq.Write {
		casType = CmdWR
	}
	const casPerTxn = 2 // 128B request = two 64B bursts
	txn := &Transaction{Req: r, CASTotal: casPerTxn}

	b.schedVer++
	if b.schedRow == r.Row {
		txn.Hit = true
		b.queuedScore++
		b.hitsSinceAct += casPerTxn
		c.Stats.HitTxns++
	} else {
		if b.schedRow != -1 {
			b.queue = append(b.queue, Command{Type: CmdPRE, Bank: r.Bank})
		}
		b.queue = append(b.queue, Command{Type: CmdACT, Bank: r.Bank, Row: r.Row})
		b.schedRow = r.Row
		b.queuedScore += 3
		b.hitsSinceAct = casPerTxn
		c.Stats.MissTxns++
	}
	for i := 0; i < casPerTxn; i++ {
		b.queue = append(b.queue, Command{
			Type: casType, Bank: r.Bank, Row: r.Row,
			Txn: txn, Last: i == casPerTxn-1,
		})
	}
	b.queuedTxns++
	if r.Kind == memreq.Write {
		c.Stats.WriteTxns++
	} else {
		c.Stats.ReadTxns++
	}
	return txn
}

// legal reports whether cmd may issue at tick now.
func (c *Channel) legal(cmd *Command, now int64) bool {
	b := &c.banks[cmd.Bank]
	switch cmd.Type {
	case CmdACT:
		if b.openRow != -1 || now < b.actOK {
			return false
		}
		if now < c.lastACT+int64(c.T.TRRD) {
			return false
		}
		if now < c.fawWindow[c.fawIdx]+int64(c.T.TFAW) {
			return false
		}
		return true
	case CmdPRE:
		return b.openRow != -1 && now >= b.preOK
	case CmdRD:
		if b.openRow != cmd.Row || now < b.casOK {
			return false
		}
		if now < c.lastCASGroup[c.group(cmd.Bank)]+int64(c.T.TCCDL) {
			return false
		}
		if now < c.lastCASAny+int64(c.T.TCCDS) {
			return false
		}
		if now < c.wrDataEnd+int64(c.T.TWTR) {
			return false
		}
		return now+int64(c.T.TCAS) >= c.busFreeAt
	case CmdWR:
		if b.openRow != cmd.Row || now < b.casOK {
			return false
		}
		if now < c.lastCASGroup[c.group(cmd.Bank)]+int64(c.T.TCCDL) {
			return false
		}
		if now < c.lastCASAny+int64(c.T.TCCDS) {
			return false
		}
		if now < c.lastRDCmd+int64(c.T.TRTW) {
			return false
		}
		return now+int64(c.T.TWL) >= c.busFreeAt
	}
	return false
}

// earliestLegal returns the exact first tick at which cmd (the head of
// its bank's queue) satisfies legal(). It mirrors legal() term by term;
// the row-state preconditions (ACT only on a closed bank, CAS only on
// the matching open row) always hold for queue heads because per-bank
// queues execute in order and Enqueue generated the PRE/ACT prefix from
// the shadow row state.
func (c *Channel) earliestLegal(cmd *Command) int64 {
	b := &c.banks[cmd.Bank]
	switch cmd.Type {
	case CmdACT:
		t := b.actOK
		if v := c.lastACT + int64(c.T.TRRD); v > t {
			t = v
		}
		if v := c.fawWindow[c.fawIdx] + int64(c.T.TFAW); v > t {
			t = v
		}
		return t
	case CmdPRE:
		return b.preOK
	case CmdRD:
		t := b.casOK
		if v := c.lastCASGroup[c.group(cmd.Bank)] + int64(c.T.TCCDL); v > t {
			t = v
		}
		if v := c.lastCASAny + int64(c.T.TCCDS); v > t {
			t = v
		}
		if v := c.wrDataEnd + int64(c.T.TWTR); v > t {
			t = v
		}
		if v := c.busFreeAt - int64(c.T.TCAS); v > t {
			t = v
		}
		return t
	case CmdWR:
		t := b.casOK
		if v := c.lastCASGroup[c.group(cmd.Bank)] + int64(c.T.TCCDL); v > t {
			t = v
		}
		if v := c.lastCASAny + int64(c.T.TCCDS); v > t {
			t = v
		}
		if v := c.lastRDCmd + int64(c.T.TRTW); v > t {
			t = v
		}
		if v := c.busFreeAt - int64(c.T.TWL); v > t {
			t = v
		}
		return t
	}
	return Never
}

// NextWakeup returns the earliest tick strictly after now at which Tick
// could change channel state (issue a command, start a bus-only
// transfer, or arm/perform a refresh), assuming nothing new is enqueued
// before then. Never means the channel is quiescent until external
// input. Spurious (early) wakeups are harmless; a late one would break
// the event-driven/dense equivalence.
func (c *Channel) NextWakeup(now int64) int64 {
	if c.refreshDue {
		// Refresh drain/perform progresses on per-tick conditions
		// (preOK, bus quiet, queue drain); step densely through it.
		return now + 1
	}
	w := Never
	if c.refreshInterval > 0 && c.nextRefresh < w {
		w = c.nextRefresh // arming tick mutates refreshDue
	}
	if len(c.busOnly) > 0 {
		if v := c.busFreeAt - int64(c.T.TCAS); v < w {
			w = v
		}
	}
	for i := range c.banks {
		b := &c.banks[i]
		if len(b.queue) == 0 {
			continue
		}
		if v := c.earliestLegal(&b.queue[0]); v < w {
			w = v
		}
	}
	if w <= now {
		return now + 1
	}
	return w
}

// apply issues cmd at tick now, updating all timing state.
func (c *Channel) apply(cmd *Command, now int64) {
	b := &c.banks[cmd.Bank]
	switch cmd.Type {
	case CmdACT:
		b.openRow = cmd.Row
		b.casOK = now + int64(c.T.TRCD)
		if ras := now + int64(c.T.TRAS); ras > b.preOK {
			b.preOK = ras
		}
		b.actOK = now + int64(c.T.TRC)
		c.lastACT = now
		c.fawWindow[c.fawIdx] = now
		c.fawIdx = (c.fawIdx + 1) % len(c.fawWindow)
		c.Stats.ACTs++
	case CmdPRE:
		b.openRow = -1
		if ok := now + int64(c.T.TRP); ok > b.actOK {
			b.actOK = ok
		}
		c.Stats.PREs++
	case CmdRD:
		if p := now + int64(c.T.TRTP); p > b.preOK {
			b.preOK = p
		}
		g := c.group(cmd.Bank)
		c.lastCASGroup[g] = now
		c.lastCASAny = now
		c.lastRDCmd = now
		end := now + int64(c.T.TCAS) + int64(c.T.TBURST)
		c.busFreeAt = end
		c.Stats.RDBursts++
		c.Stats.BusyTicks += int64(c.T.TBURST)
		c.finishBurst(cmd, end)
	case CmdWR:
		dataEnd := now + int64(c.T.TWL) + int64(c.T.TBURST)
		if p := dataEnd + int64(c.T.TWR); p > b.preOK {
			b.preOK = p
		}
		g := c.group(cmd.Bank)
		c.lastCASGroup[g] = now
		c.lastCASAny = now
		c.wrDataEnd = dataEnd
		c.busFreeAt = dataEnd
		c.Stats.WRBursts++
		c.Stats.BusyTicks += int64(c.T.TBURST)
		c.finishBurst(cmd, dataEnd)
	}
}

func (c *Channel) finishBurst(cmd *Command, dataEnd int64) {
	txn := cmd.Txn
	txn.casDone++
	if cmd.Last {
		if txn.casDone != txn.CASTotal {
			panic("dram: last burst issued before siblings")
		}
		txn.DoneAt = dataEnd
		c.banks[cmd.Bank].queuedTxns--
		score := 1
		if !txn.Hit {
			score = 3
		}
		c.banks[cmd.Bank].queuedScore -= score
		c.banks[cmd.Bank].schedVer++
		if c.OnComplete != nil {
			c.OnComplete(txn, dataEnd)
		}
	}
}

// Tick attempts to issue one command on the channel's command bus at tick
// now, visiting banks in bank-group-interleaved round-robin order so that
// consecutive column commands prefer different bank groups (lower tCCD).
// It returns the issued command or nil.
func (c *Channel) Tick(now int64) *Command {
	if c.maybeRefresh(now) {
		return nil
	}
	if c.WakeCache && now < c.cmdWake {
		return nil // provably nothing issuable before cmdWake
	}
	c.tickBusOnly(now)
	perGroup := c.NumBanks / c.Groups
	for i := 0; i < c.NumBanks; i++ {
		g := (c.rrGroup + i%c.Groups) % c.Groups
		within := (c.rrBank + i/c.Groups) % perGroup
		bi := g*perGroup + within
		b := &c.banks[bi]
		if len(b.queue) == 0 {
			continue
		}
		cmd := &b.queue[0]
		if !c.legal(cmd, now) {
			continue
		}
		issued := b.queue[0]
		b.queue = b.queue[1:]
		c.apply(&issued, now)
		// Advance round-robin past the bank we just served.
		c.rrGroup = (g + 1) % c.Groups
		if g == c.Groups-1 {
			c.rrBank = (within + 1) % perGroup
		}
		c.cmdWake = 0 // timing state changed: rescan next tick
		return &issued
	}
	if c.WakeCache {
		c.cmdWake = c.NextWakeup(now)
	}
	return nil
}

// Idle reports whether the channel has no queued commands at all.
func (c *Channel) Idle() bool {
	if len(c.busOnly) > 0 {
		return false
	}
	for i := range c.banks {
		if len(c.banks[i].queue) > 0 {
			return false
		}
	}
	return true
}

// Utilization returns the fraction of elapsed ticks the data bus spent
// transferring data.
func (c *Channel) Utilization(elapsed int64) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(c.Stats.BusyTicks) / float64(elapsed)
}

// RowHitRate returns the fraction of transactions that were row hits.
func (s Stats) RowHitRate() float64 {
	tot := s.HitTxns + s.MissTxns
	if tot == 0 {
		return 0
	}
	return float64(s.HitTxns) / float64(tot)
}
