// Package dram implements a cycle-accurate model of one GDDR5 memory
// channel: 16 banks organized into 4 bank groups, per-bank in-order command
// queues, and a command scheduler that interleaves bank groups first and
// banks second (the multi-level round-robin of Section II-C), while
// enforcing every timing constraint of the Table II set.
//
// The channel is policy-free: a memory controller (internal/memctrl,
// internal/core) decides which transaction to enqueue and when; the channel
// guarantees that the resulting DRAM command stream is legal and reports
// when each transaction's data transfer finishes.
//
// One transaction moves one 128-byte request; because the 64-bit GDDR5
// channel transfers 64 bytes per burst (BL8, tBURST = 2 tCK), a transaction
// issues two column commands. Keeping the 64B burst as the unit of data
// transfer keeps the MERB arithmetic of Section IV-D identical to the
// paper's.
//
// Per-bank state is data-oriented: the row/timing/score fields the
// scheduler scan and the legality checks read every cycle live in flat
// per-channel arrays indexed by bank (see the "Data-oriented core"
// section of DESIGN.md), so the round-robin scan in Tick and the
// earliest-legal pass in NextWakeup walk contiguous memory instead of
// chasing a struct per bank.
//
// Refresh is off by default (the paper does not discuss it and it affects
// all schedulers identically) but can be enabled with SetRefresh: an
// all-bank refresh model that drains the command queues, closes every bank
// and blocks the channel for tRFC every tREFI.
package dram

import (
	"dramlat/internal/gddr5"
	"dramlat/internal/guard"
	"dramlat/internal/memreq"
)

// Never is the wakeup-contract sentinel: a NextWakeup result of Never
// means "no state change can happen without new external input". Any
// finite wakeup may be early (the caller just re-checks); it must never
// be later than the component's first actual state change.
const Never int64 = 1 << 62

// CmdType enumerates DRAM commands.
type CmdType uint8

const (
	// CmdACT opens a row in a bank.
	CmdACT CmdType = iota
	// CmdPRE closes the open row of a bank.
	CmdPRE
	// CmdRD reads one 64B burst from the open row.
	CmdRD
	// CmdWR writes one 64B burst to the open row.
	CmdWR
)

func (c CmdType) String() string {
	switch c {
	case CmdACT:
		return "ACT"
	case CmdPRE:
		return "PRE"
	case CmdRD:
		return "RD"
	case CmdWR:
		return "WR"
	}
	return "?"
}

// Command is one entry of a per-bank command queue.
type Command struct {
	Type CmdType
	Bank int
	Row  int          // target row (ACT) or open-row check (RD/WR)
	Txn  *Transaction // owning transaction for column commands
	Last bool         // final column command of the transaction
}

// Transaction is a scheduled request: the unit the transaction scheduler
// hands to the channel. Hit records whether the transaction was projected
// (and, because per-bank queues execute in order, actually is) a row hit.
//
// Transactions are recycled: once one completes, the channel reclaims it
// at the next Tick on a later cycle. Callers may read a completed
// transaction until the end of the tick its last burst finished on
// (OnComplete and the command returned by that Tick), not across ticks.
type Transaction struct {
	Req      *memreq.Request
	Hit      bool
	CASTotal int
	casDone  int
	DoneAt   int64 // tick at which the last burst finishes
}

// Stats aggregates channel activity counters.
type Stats struct {
	Refreshes int64
	ACTs      int64
	PREs      int64
	RDBursts  int64
	WRBursts  int64
	HitTxns   int64
	MissTxns  int64
	ReadTxns  int64
	WriteTxns int64
	BusyTicks int64 // data-bus busy time (bursts * tBURST)
}

// Channel is one 64-bit GDDR5 channel with a single rank of 16 banks.
type Channel struct {
	T        gddr5.Timing
	NumBanks int
	Groups   int // bank groups (4)
	QueueCap int // max queued transactions per bank

	// Per-bank state, struct-of-arrays, indexed by bank. openRow/actOK/
	// preOK/casOK are the architectural row and earliest-legal times the
	// per-tick legality checks read; schedRow/queuedTxns/queuedScore/
	// hitsSinceAct are the shadow scheduling state (the view once all
	// queued commands execute) the transaction schedulers read.
	openRow      []int32 // -1 when closed (architectural)
	actOK        []int64
	preOK        []int64
	casOK        []int64
	schedRow     []int32 // row open after queued cmds execute; -1 closed
	queuedTxns   []int32
	queuedScore  []int32 // WG score units (1 per projected hit, 3 per miss)
	hitsSinceAct []int32 // 64B bursts scheduled since the last scheduled ACT
	// schedVer increments whenever any scheduler-visible bank state above
	// (schedRow, queuedScore, hitsSinceAct) changes: on Enqueue, on a
	// transaction's last burst retiring, and on refresh. Warp-group score
	// caches (internal/core) compare snapshots of it to decide whether a
	// cached score is still valid.
	schedVer []uint32

	// queues are the per-bank in-order command queues, head-indexed so a
	// pop never re-slices capacity away.
	queues [][]Command
	qHead  []int32

	// Rank-level timing state.
	lastACT   int64    // for tRRD
	fawWindow [4]int64 // ticks of the last four ACTs (ring)
	fawIdx    int

	lastCASGroup []int64 // last column command per bank group (tCCDL)
	lastCASAny   int64   // last column command on the channel (tCCDS)
	lastRDCmd    int64   // last read column command (tRTW)
	wrDataEnd    int64   // end of last write data (tWTR)
	busFreeAt    int64   // data bus availability

	rrBank  int // round-robin position within group
	rrGroup int // round-robin position across groups

	// busOnly holds Zero-Latency-Divergence trailing requests: they are
	// serviced purely as data-bus transfers (Fig 4's ideal model keeps
	// bus bandwidth and contention but abstracts bank conflicts away).
	busOnly []*Transaction
	boHead  int

	// lastCmd is the storage for the command Tick returns, so issuing a
	// command never allocates; the pointer is valid until the next Tick.
	lastCmd Command

	// txnFree/txnDead recycle Transaction objects. A completing
	// transaction parks on txnDead until a Tick on a later cycle moves it
	// to txnFree — by then every same-tick reader (OnComplete, the
	// tracer reading the returned command's Txn) has run.
	txnFree  []*Transaction
	txnDead  []*Transaction
	lastSeen int64

	// Refresh state (SetRefresh).
	refreshInterval int64
	trfc            int64
	nextRefresh     int64
	refreshDue      bool

	// OnComplete fires when a transaction's final burst finishes
	// transferring. It may be nil.
	OnComplete func(*Transaction, int64)

	// WakeCache lets Tick skip the bank scan outright while now is before
	// cmdWake, a cached lower bound on the next tick any command can
	// issue (recomputed on idle ticks, zeroed by every state mutation).
	// Off in the dense reference engine so its Tick stays the pristine
	// differential oracle; the cache's own contract is covered by
	// TestNextWakeupNeverLate.
	WakeCache bool
	cmdWake   int64

	Stats Stats
}

// NewChannel builds a channel with the given timing and geometry.
func NewChannel(t gddr5.Timing, numBanks, groups, queueCap int) *Channel {
	if numBanks%groups != 0 {
		panic("dram: banks must divide evenly into groups")
	}
	c := &Channel{
		T:            t,
		NumBanks:     numBanks,
		Groups:       groups,
		QueueCap:     queueCap,
		openRow:      make([]int32, numBanks),
		actOK:        make([]int64, numBanks),
		preOK:        make([]int64, numBanks),
		casOK:        make([]int64, numBanks),
		schedRow:     make([]int32, numBanks),
		queuedTxns:   make([]int32, numBanks),
		queuedScore:  make([]int32, numBanks),
		hitsSinceAct: make([]int32, numBanks),
		schedVer:     make([]uint32, numBanks),
		queues:       make([][]Command, numBanks),
		qHead:        make([]int32, numBanks),
		lastCASGroup: make([]int64, groups),
		lastSeen:     -1 << 62,
	}
	const past = -1 << 30
	for i := 0; i < numBanks; i++ {
		c.openRow[i] = -1
		c.schedRow[i] = -1
		c.actOK[i] = past
		c.preOK[i] = past
		c.casOK[i] = past
	}
	c.lastACT = past
	for i := range c.fawWindow {
		c.fawWindow[i] = past
	}
	for i := range c.lastCASGroup {
		c.lastCASGroup[i] = past
	}
	c.lastCASAny = past
	c.lastRDCmd = past
	c.wrDataEnd = past
	c.busFreeAt = past
	return c
}

func (c *Channel) group(bankIdx int) int { return bankIdx / (c.NumBanks / c.Groups) }

// queueLen returns the number of commands queued at bank b.
func (c *Channel) queueLen(b int) int { return len(c.queues[b]) - int(c.qHead[b]) }

// head returns the head command of bank b's queue (caller checked len).
func (c *Channel) head(b int) *Command { return &c.queues[b][c.qHead[b]] }

// popHead removes bank b's head command, resetting the backing array
// once the queue fully drains so its capacity is reused from the front.
func (c *Channel) popHead(b int) {
	q := c.queues[b]
	h := int(c.qHead[b])
	q[h] = Command{}
	h++
	if h == len(q) {
		c.queues[b] = q[:0]
		h = 0
	}
	c.qHead[b] = int32(h)
}

// newTxn returns a zeroed transaction, recycling a retired one when the
// freelist has stock.
func (c *Channel) newTxn(r *memreq.Request) *Transaction {
	if n := len(c.txnFree); n > 0 {
		t := c.txnFree[n-1]
		c.txnFree = c.txnFree[:n-1]
		*t = Transaction{Req: r}
		return t
	}
	return &Transaction{Req: r}
}

// reclaimTxns moves transactions that completed on an earlier tick to
// the freelist. Same-tick readers (OnComplete, the tracer behind Tick's
// returned command) have all run by the first Tick of a later cycle.
func (c *Channel) reclaimTxns(now int64) {
	if now == c.lastSeen {
		return
	}
	c.lastSeen = now
	if len(c.txnDead) > 0 {
		c.txnFree = append(c.txnFree, c.txnDead...)
		c.txnDead = c.txnDead[:0]
	}
}

// SetRefresh enables all-bank refresh every interval ticks, blocking the
// channel for trfc ticks per refresh. Passing interval 0 disables it.
func (c *Channel) SetRefresh(interval, trfc int64) {
	c.refreshInterval = interval
	c.trfc = trfc
	c.nextRefresh = interval
	c.cmdWake = 0
}

// CanAccept reports whether bank b's command queue has room for another
// transaction. While a refresh is pending the channel drains and accepts
// nothing new.
func (c *Channel) CanAccept(b int) bool {
	if c.refreshDue {
		return false
	}
	return int(c.queuedTxns[b]) < c.QueueCap
}

// maybeRefresh arms and performs all-bank refreshes. It returns true while
// a refresh is blocking the channel this tick.
func (c *Channel) maybeRefresh(now int64) bool {
	if c.refreshInterval <= 0 {
		return false
	}
	if !c.refreshDue && now >= c.nextRefresh {
		c.refreshDue = true
	}
	if !c.refreshDue {
		return false
	}
	// Drain: issue queued commands as usual until every queue is empty.
	for i := 0; i < c.NumBanks; i++ {
		if c.queueLen(i) > 0 {
			return false // keep issuing; acceptance is already blocked
		}
	}
	if len(c.busOnly)-c.boHead > 0 {
		return false
	}
	// Wait until every bank may precharge and the bus is quiet.
	for i := 0; i < c.NumBanks; i++ {
		if c.openRow[i] != -1 && now < c.preOK[i] {
			return true
		}
	}
	if now < c.busFreeAt {
		return true
	}
	// Perform the refresh: close everything, block for tRFC.
	for i := 0; i < c.NumBanks; i++ {
		c.openRow[i] = -1
		c.schedRow[i] = -1
		c.actOK[i] = now + c.trfc
		c.hitsSinceAct[i] = 0
		c.schedVer[i]++
	}
	c.Stats.Refreshes++
	c.refreshDue = false
	c.nextRefresh = now + c.refreshInterval
	return true
}

// SchedRow returns the row that will be open in bank b once all queued
// commands execute, or -1 if the bank will be (or stay) closed.
func (c *Channel) SchedRow(b int) int { return int(c.schedRow[b]) }

// OpenRow returns the row currently open in bank b (-1 precharged),
// for diagnostics.
func (c *Channel) OpenRow(b int) int { return int(c.openRow[b]) }

// QueuedTxns returns the number of transactions queued at bank b.
func (c *Channel) QueuedTxns(b int) int { return int(c.queuedTxns[b]) }

// QueuedScore returns the WG completion-time score (1 per projected row
// hit, 3 per projected row miss; Section IV-B1) of the transactions queued
// at bank b.
func (c *Channel) QueuedScore(b int) int { return int(c.queuedScore[b]) }

// HitsSinceAct returns the number of 64B row-hit bursts scheduled to bank b
// since its last scheduled activate: the MERB counter of Section IV-D.
func (c *Channel) HitsSinceAct(b int) int { return int(c.hitsSinceAct[b]) }

// SchedVersion returns a counter that changes whenever bank b's
// scheduler-visible state (SchedRow, QueuedScore, HitsSinceAct) changes.
// Score caches snapshot it to detect staleness without subscribing to
// individual mutations.
func (c *Channel) SchedVersion(b int) uint32 { return c.schedVer[b] }

// BanksWithQueuedWork counts banks with at least one queued transaction.
func (c *Channel) BanksWithQueuedWork() int {
	n := 0
	for _, q := range c.queuedTxns {
		if q > 0 {
			n++
		}
	}
	return n
}

// ProjectHit reports whether a request to (bank, row) would be a row hit if
// enqueued now.
func (c *Channel) ProjectHit(bankIdx, row int) bool {
	return c.schedRow[bankIdx] == int32(row)
}

// EnqueueBusOnly schedules a request that consumes only data-bus
// bandwidth: two bursts at the earliest bus opening, no bank commands.
func (c *Channel) EnqueueBusOnly(r *memreq.Request) *Transaction {
	txn := c.newTxn(r)
	txn.Hit = true
	txn.CASTotal = 2
	c.busOnly = append(c.busOnly, txn)
	c.cmdWake = 0
	return txn
}

// tickBusOnly issues the oldest bus-only transfer if the data bus is open.
// It mirrors a read's bus occupancy (data at now+tCAS for 2*tBURST).
func (c *Channel) tickBusOnly(now int64) bool {
	if len(c.busOnly)-c.boHead == 0 {
		return false
	}
	start := now + int64(c.T.TCAS)
	if start < c.busFreeAt {
		return false
	}
	txn := c.busOnly[c.boHead]
	c.busOnly[c.boHead] = nil
	c.boHead++
	if c.boHead == len(c.busOnly) {
		c.busOnly = c.busOnly[:0]
		c.boHead = 0
	}
	end := start + 2*int64(c.T.TBURST)
	c.busFreeAt = end
	c.Stats.RDBursts += 2
	c.Stats.BusyTicks += 2 * int64(c.T.TBURST)
	c.Stats.ReadTxns++
	c.Stats.HitTxns++
	txn.casDone = txn.CASTotal
	txn.DoneAt = end
	if c.OnComplete != nil {
		c.OnComplete(txn, end)
	}
	c.txnDead = append(c.txnDead, txn)
	return true
}

// Enqueue schedules a request onto its bank's command queue, generating
// PRE/ACT commands as needed based on the shadow row state. It returns the
// transaction and whether it was a projected row hit. The caller must have
// checked CanAccept.
func (c *Channel) Enqueue(r *memreq.Request) *Transaction {
	b := r.Bank
	if int(c.queuedTxns[b]) >= c.QueueCap {
		// Hot-path invariant: callers must CanAccept first. Kept as a
		// (typed) panic — the model cannot continue — and converted into
		// a *guard.RunError by the façade's recover.
		guard.Invariantf("dram: enqueue to full bank %d", r.Bank)
	}
	c.cmdWake = 0
	casType := CmdRD
	if r.Kind == memreq.Write {
		casType = CmdWR
	}
	const casPerTxn = 2 // 128B request = two 64B bursts
	txn := c.newTxn(r)
	txn.CASTotal = casPerTxn

	c.schedVer[b]++
	if c.schedRow[b] == int32(r.Row) {
		txn.Hit = true
		c.queuedScore[b]++
		c.hitsSinceAct[b] += casPerTxn
		c.Stats.HitTxns++
	} else {
		if c.schedRow[b] != -1 {
			c.queues[b] = append(c.queues[b], Command{Type: CmdPRE, Bank: b})
		}
		c.queues[b] = append(c.queues[b], Command{Type: CmdACT, Bank: b, Row: r.Row})
		c.schedRow[b] = int32(r.Row)
		c.queuedScore[b] += 3
		c.hitsSinceAct[b] = casPerTxn
		c.Stats.MissTxns++
	}
	for i := 0; i < casPerTxn; i++ {
		c.queues[b] = append(c.queues[b], Command{
			Type: casType, Bank: b, Row: r.Row,
			Txn: txn, Last: i == casPerTxn-1,
		})
	}
	c.queuedTxns[b]++
	if r.Kind == memreq.Write {
		c.Stats.WriteTxns++
	} else {
		c.Stats.ReadTxns++
	}
	return txn
}

// legal reports whether cmd may issue at tick now.
func (c *Channel) legal(cmd *Command, now int64) bool {
	b := cmd.Bank
	switch cmd.Type {
	case CmdACT:
		if c.openRow[b] != -1 || now < c.actOK[b] {
			return false
		}
		if now < c.lastACT+int64(c.T.TRRD) {
			return false
		}
		if now < c.fawWindow[c.fawIdx]+int64(c.T.TFAW) {
			return false
		}
		return true
	case CmdPRE:
		return c.openRow[b] != -1 && now >= c.preOK[b]
	case CmdRD:
		if c.openRow[b] != int32(cmd.Row) || now < c.casOK[b] {
			return false
		}
		if now < c.lastCASGroup[c.group(b)]+int64(c.T.TCCDL) {
			return false
		}
		if now < c.lastCASAny+int64(c.T.TCCDS) {
			return false
		}
		if now < c.wrDataEnd+int64(c.T.TWTR) {
			return false
		}
		return now+int64(c.T.TCAS) >= c.busFreeAt
	case CmdWR:
		if c.openRow[b] != int32(cmd.Row) || now < c.casOK[b] {
			return false
		}
		if now < c.lastCASGroup[c.group(b)]+int64(c.T.TCCDL) {
			return false
		}
		if now < c.lastCASAny+int64(c.T.TCCDS) {
			return false
		}
		if now < c.lastRDCmd+int64(c.T.TRTW) {
			return false
		}
		return now+int64(c.T.TWL) >= c.busFreeAt
	}
	return false
}

// earliestLegal returns the exact first tick at which cmd (the head of
// its bank's queue) satisfies legal(). It mirrors legal() term by term;
// the row-state preconditions (ACT only on a closed bank, CAS only on
// the matching open row) always hold for queue heads because per-bank
// queues execute in order and Enqueue generated the PRE/ACT prefix from
// the shadow row state.
func (c *Channel) earliestLegal(cmd *Command) int64 {
	b := cmd.Bank
	switch cmd.Type {
	case CmdACT:
		t := c.actOK[b]
		if v := c.lastACT + int64(c.T.TRRD); v > t {
			t = v
		}
		if v := c.fawWindow[c.fawIdx] + int64(c.T.TFAW); v > t {
			t = v
		}
		return t
	case CmdPRE:
		return c.preOK[b]
	case CmdRD:
		t := c.casOK[b]
		if v := c.lastCASGroup[c.group(b)] + int64(c.T.TCCDL); v > t {
			t = v
		}
		if v := c.lastCASAny + int64(c.T.TCCDS); v > t {
			t = v
		}
		if v := c.wrDataEnd + int64(c.T.TWTR); v > t {
			t = v
		}
		if v := c.busFreeAt - int64(c.T.TCAS); v > t {
			t = v
		}
		return t
	case CmdWR:
		t := c.casOK[b]
		if v := c.lastCASGroup[c.group(b)] + int64(c.T.TCCDL); v > t {
			t = v
		}
		if v := c.lastCASAny + int64(c.T.TCCDS); v > t {
			t = v
		}
		if v := c.lastRDCmd + int64(c.T.TRTW); v > t {
			t = v
		}
		if v := c.busFreeAt - int64(c.T.TWL); v > t {
			t = v
		}
		return t
	}
	return Never
}

// NextWakeup returns the earliest tick strictly after now at which Tick
// could change channel state (issue a command, start a bus-only
// transfer, or arm/perform a refresh), assuming nothing new is enqueued
// before then. Never means the channel is quiescent until external
// input. Spurious (early) wakeups are harmless; a late one would break
// the event-driven/dense equivalence.
func (c *Channel) NextWakeup(now int64) int64 {
	if c.refreshDue {
		// Refresh drain/perform progresses on per-tick conditions
		// (preOK, bus quiet, queue drain); step densely through it.
		return now + 1
	}
	w := Never
	if c.refreshInterval > 0 && c.nextRefresh < w {
		w = c.nextRefresh // arming tick mutates refreshDue
	}
	if len(c.busOnly)-c.boHead > 0 {
		if v := c.busFreeAt - int64(c.T.TCAS); v < w {
			w = v
		}
	}
	for i := 0; i < c.NumBanks; i++ {
		if c.queueLen(i) == 0 {
			continue
		}
		if v := c.earliestLegal(c.head(i)); v < w {
			w = v
		}
	}
	if w <= now {
		return now + 1
	}
	return w
}

// apply issues cmd at tick now, updating all timing state.
func (c *Channel) apply(cmd *Command, now int64) {
	b := cmd.Bank
	switch cmd.Type {
	case CmdACT:
		c.openRow[b] = int32(cmd.Row)
		c.casOK[b] = now + int64(c.T.TRCD)
		if ras := now + int64(c.T.TRAS); ras > c.preOK[b] {
			c.preOK[b] = ras
		}
		c.actOK[b] = now + int64(c.T.TRC)
		c.lastACT = now
		c.fawWindow[c.fawIdx] = now
		c.fawIdx = (c.fawIdx + 1) % len(c.fawWindow)
		c.Stats.ACTs++
	case CmdPRE:
		c.openRow[b] = -1
		if ok := now + int64(c.T.TRP); ok > c.actOK[b] {
			c.actOK[b] = ok
		}
		c.Stats.PREs++
	case CmdRD:
		if p := now + int64(c.T.TRTP); p > c.preOK[b] {
			c.preOK[b] = p
		}
		g := c.group(b)
		c.lastCASGroup[g] = now
		c.lastCASAny = now
		c.lastRDCmd = now
		end := now + int64(c.T.TCAS) + int64(c.T.TBURST)
		c.busFreeAt = end
		c.Stats.RDBursts++
		c.Stats.BusyTicks += int64(c.T.TBURST)
		c.finishBurst(cmd, end)
	case CmdWR:
		dataEnd := now + int64(c.T.TWL) + int64(c.T.TBURST)
		if p := dataEnd + int64(c.T.TWR); p > c.preOK[b] {
			c.preOK[b] = p
		}
		g := c.group(b)
		c.lastCASGroup[g] = now
		c.lastCASAny = now
		c.wrDataEnd = dataEnd
		c.busFreeAt = dataEnd
		c.Stats.WRBursts++
		c.Stats.BusyTicks += int64(c.T.TBURST)
		c.finishBurst(cmd, dataEnd)
	}
}

func (c *Channel) finishBurst(cmd *Command, dataEnd int64) {
	txn := cmd.Txn
	txn.casDone++
	if cmd.Last {
		if txn.casDone != txn.CASTotal {
			panic("dram: last burst issued before siblings")
		}
		txn.DoneAt = dataEnd
		b := cmd.Bank
		c.queuedTxns[b]--
		score := int32(1)
		if !txn.Hit {
			score = 3
		}
		c.queuedScore[b] -= score
		c.schedVer[b]++
		if c.OnComplete != nil {
			c.OnComplete(txn, dataEnd)
		}
		c.txnDead = append(c.txnDead, txn)
	}
}

// Tick attempts to issue one command on the channel's command bus at tick
// now, visiting banks in bank-group-interleaved round-robin order so that
// consecutive column commands prefer different bank groups (lower tCCD).
// It returns the issued command or nil; the returned pointer is only
// valid until the next Tick (the storage is reused).
func (c *Channel) Tick(now int64) *Command {
	c.reclaimTxns(now)
	if c.maybeRefresh(now) {
		return nil
	}
	if c.WakeCache && now < c.cmdWake {
		return nil // provably nothing issuable before cmdWake
	}
	c.tickBusOnly(now)
	perGroup := c.NumBanks / c.Groups
	for i := 0; i < c.NumBanks; i++ {
		g := (c.rrGroup + i%c.Groups) % c.Groups
		within := (c.rrBank + i/c.Groups) % perGroup
		bi := g*perGroup + within
		if c.queueLen(bi) == 0 {
			continue
		}
		cmd := c.head(bi)
		if !c.legal(cmd, now) {
			continue
		}
		c.lastCmd = *cmd
		c.popHead(bi)
		c.apply(&c.lastCmd, now)
		// Advance round-robin past the bank we just served.
		c.rrGroup = (g + 1) % c.Groups
		if g == c.Groups-1 {
			c.rrBank = (within + 1) % perGroup
		}
		c.cmdWake = 0 // timing state changed: rescan next tick
		return &c.lastCmd
	}
	if c.WakeCache {
		c.cmdWake = c.NextWakeup(now)
	}
	return nil
}

// Idle reports whether the channel has no queued commands at all.
func (c *Channel) Idle() bool {
	if len(c.busOnly)-c.boHead > 0 {
		return false
	}
	for i := 0; i < c.NumBanks; i++ {
		if c.queueLen(i) > 0 {
			return false
		}
	}
	return true
}

// Utilization returns the fraction of elapsed ticks the data bus spent
// transferring data.
func (c *Channel) Utilization(elapsed int64) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(c.Stats.BusyTicks) / float64(elapsed)
}

// RowHitRate returns the fraction of transactions that were row hits.
func (s Stats) RowHitRate() float64 {
	tot := s.HitTxns + s.MissTxns
	if tot == 0 {
		return 0
	}
	return float64(s.HitTxns) / float64(tot)
}
