package dram

import (
	"math/rand"
	"testing"

	"dramlat/internal/gddr5"
	"dramlat/internal/memreq"
)

// TestSoABankStateMatchesShadow cross-checks the flattened per-bank state
// against an independent shadow model fed only by the channel's observable
// outputs (issued commands and completion callbacks), over randomized
// traffic:
//
//   - OpenRow must track exactly the ACT/PRE command stream;
//   - QueuedTxns must equal enqueues minus completions per bank;
//   - SchedVersion must change whenever any scheduler-visible bank triple
//     (SchedRow, QueuedScore, HitsSinceAct) changes — the staleness
//     contract the warp-scheduler score cache depends on.
func TestSoABankStateMatchesShadow(t *testing.T) {
	const banks = 16
	rng := rand.New(rand.NewSource(42))
	c := NewChannel(gddr5.Default(), banks, 4, 4)

	shadowOpen := make([]int, banks)
	shadowQueued := make([]int, banks)
	for b := range shadowOpen {
		shadowOpen[b] = -1
	}
	c.OnComplete = func(txn *Transaction, at int64) {
		shadowQueued[txn.Req.Bank]--
	}

	type triple struct {
		row, score, hits int
		ver              uint32
	}
	prev := make([]triple, banks)
	for b := range prev {
		prev[b] = triple{row: c.SchedRow(b), score: c.QueuedScore(b), hits: c.HitsSinceAct(b), ver: c.SchedVersion(b)}
	}

	var id uint64
	for now := int64(0); now < 30000; now++ {
		if rng.Intn(3) == 0 {
			b := rng.Intn(banks)
			if c.CanAccept(b) {
				id++
				c.Enqueue(&memreq.Request{
					ID: id, Kind: memreq.Kind(rng.Intn(2)),
					Bank: b, Row: rng.Intn(8), Col: rng.Intn(64) * 2,
				})
				shadowQueued[b]++
			}
		}
		if cmd := c.Tick(now); cmd != nil {
			switch cmd.Type {
			case CmdACT:
				shadowOpen[cmd.Bank] = cmd.Row
			case CmdPRE:
				shadowOpen[cmd.Bank] = -1
			}
		}
		for b := 0; b < banks; b++ {
			if got := c.OpenRow(b); got != shadowOpen[b] {
				t.Fatalf("t=%d bank %d: OpenRow=%d, shadow %d", now, b, got, shadowOpen[b])
			}
			if got := c.QueuedTxns(b); got != shadowQueued[b] {
				t.Fatalf("t=%d bank %d: QueuedTxns=%d, shadow %d", now, b, got, shadowQueued[b])
			}
			cur := triple{row: c.SchedRow(b), score: c.QueuedScore(b), hits: c.HitsSinceAct(b), ver: c.SchedVersion(b)}
			p := prev[b]
			if (cur.row != p.row || cur.score != p.score || cur.hits != p.hits) && cur.ver == p.ver {
				t.Fatalf("t=%d bank %d: sched state changed (%+v -> %+v) but SchedVersion did not", now, b, p, cur)
			}
			prev[b] = cur
		}
	}
	want := 0
	for _, q := range shadowQueued {
		want += boolCount(q > 0)
	}
	if got := c.BanksWithQueuedWork(); got != want {
		t.Fatalf("BanksWithQueuedWork=%d, shadow %d", got, want)
	}
}

func boolCount(b bool) int {
	if b {
		return 1
	}
	return 0
}

// TestCommandPathSteadyStateAllocs pins the zero-alloc property of the
// channel's hot loop: with the transaction freelist and per-bank command
// queues warm, a sustained enqueue/tick/complete cycle must not allocate.
func TestCommandPathSteadyStateAllocs(t *testing.T) {
	const banks = 16
	c := NewChannel(gddr5.Default(), banks, 4, 4)
	// Recycle request objects through a free stack, like the real system's
	// pools do.
	var free []*memreq.Request
	c.OnComplete = func(txn *Transaction, at int64) {
		free = append(free, txn.Req)
	}
	for i := 0; i < 64; i++ {
		free = append(free, &memreq.Request{})
	}
	var id uint64
	rng := rand.New(rand.NewSource(7))
	now := int64(0)
	tick := func() {
		if len(free) > 0 {
			b := int(id) % banks
			if c.CanAccept(b) {
				r := free[len(free)-1]
				free = free[:len(free)-1]
				id++
				*r = memreq.Request{ID: id, Kind: memreq.Kind(rng.Intn(2)),
					Bank: b, Row: rng.Intn(4), Col: rng.Intn(64) * 2}
				c.Enqueue(r)
			}
		}
		c.Tick(now)
		now++
	}
	for i := 0; i < 5000; i++ {
		tick() // warm the freelists and queue capacity
	}
	avg := testing.AllocsPerRun(100, func() {
		for i := 0; i < 100; i++ {
			tick()
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state channel tick allocated: %.2f allocs per 100 ticks, want 0", avg)
	}
}
