package dram

import (
	"math/rand"
	"testing"

	"dramlat/internal/gddr5"
	"dramlat/internal/memreq"
)

func newTestChannel() *Channel {
	return NewChannel(gddr5.Default(), 16, 4, 4)
}

func req(id uint64, kind memreq.Kind, bank, row, col int) *memreq.Request {
	return &memreq.Request{ID: id, Kind: kind, Bank: bank, Row: row, Col: col}
}

// drive runs the channel until idle (or the tick bound), recording every
// issued command with its tick.
type issueRec struct {
	tick int64
	cmd  Command
}

func drive(t *testing.T, c *Channel, start, bound int64) []issueRec {
	t.Helper()
	var log []issueRec
	now := start
	for ; now < bound; now++ {
		if cmd := c.Tick(now); cmd != nil {
			log = append(log, issueRec{now, *cmd})
		}
		if c.Idle() {
			break
		}
	}
	if !c.Idle() {
		t.Fatalf("channel not idle after %d ticks", bound)
	}
	return log
}

// audit independently re-checks every Table II timing constraint over an
// issued command log. It is deliberately a from-scratch re-implementation
// so that a bug in Channel.legal cannot hide itself.
func audit(t *testing.T, tm gddr5.Timing, log []issueRec, banks, groups int) {
	t.Helper()
	type bankState struct {
		openRow        int
		lastACT        int64
		lastPRE        int64
		lastRD, lastWR int64
		wrDataEnd      int64
	}
	const past = -1 << 30
	bs := make([]bankState, banks)
	for i := range bs {
		bs[i] = bankState{openRow: -1, lastACT: past, lastPRE: past, lastRD: past, lastWR: past, wrDataEnd: past}
	}
	var acts []int64
	lastCASGroup := make([]int64, groups)
	for i := range lastCASGroup {
		lastCASGroup[i] = past
	}
	lastCASAny, lastRD, lastWrDataEnd := int64(past), int64(past), int64(past)
	busBusyUntil := int64(past)
	perGroup := banks / groups

	for _, rec := range log {
		b := &bs[rec.cmd.Bank]
		now := rec.tick
		g := rec.cmd.Bank / perGroup
		switch rec.cmd.Type {
		case CmdACT:
			if b.openRow != -1 {
				t.Fatalf("t=%d ACT on open bank %d", now, rec.cmd.Bank)
			}
			if now-b.lastACT < int64(tm.TRC) {
				t.Fatalf("t=%d tRC violation bank %d (last ACT %d)", now, rec.cmd.Bank, b.lastACT)
			}
			if now-b.lastPRE < int64(tm.TRP) {
				t.Fatalf("t=%d tRP violation bank %d", now, rec.cmd.Bank)
			}
			for i := len(acts) - 1; i >= 0; i-- {
				if now-acts[i] < int64(tm.TRRD) {
					t.Fatalf("t=%d tRRD violation (prev ACT %d)", now, acts[i])
				}
				break
			}
			if len(acts) >= 4 {
				if now-acts[len(acts)-4] < int64(tm.TFAW) {
					t.Fatalf("t=%d tFAW violation (4th-last ACT %d)", now, acts[len(acts)-4])
				}
			}
			acts = append(acts, now)
			b.openRow = rec.cmd.Row
			b.lastACT = now
		case CmdPRE:
			if b.openRow == -1 {
				t.Fatalf("t=%d PRE on closed bank %d", now, rec.cmd.Bank)
			}
			if now-b.lastACT < int64(tm.TRAS) {
				t.Fatalf("t=%d tRAS violation bank %d", now, rec.cmd.Bank)
			}
			if b.lastRD != past && now-b.lastRD < int64(tm.TRTP) {
				t.Fatalf("t=%d tRTP violation bank %d", now, rec.cmd.Bank)
			}
			if b.wrDataEnd != past && now-b.wrDataEnd < int64(tm.TWR) {
				t.Fatalf("t=%d tWR violation bank %d", now, rec.cmd.Bank)
			}
			b.openRow = -1
			b.lastPRE = now
		case CmdRD, CmdWR:
			if b.openRow != rec.cmd.Row {
				t.Fatalf("t=%d column to wrong row: open %d want %d", now, b.openRow, rec.cmd.Row)
			}
			if now-b.lastACT < int64(tm.TRCD) {
				t.Fatalf("t=%d tRCD violation bank %d", now, rec.cmd.Bank)
			}
			if now-lastCASGroup[g] < int64(tm.TCCDL) {
				t.Fatalf("t=%d tCCDL violation group %d", now, g)
			}
			if now-lastCASAny < int64(tm.TCCDS) {
				t.Fatalf("t=%d tCCDS violation", now)
			}
			var dataStart int64
			if rec.cmd.Type == CmdRD {
				if lastWrDataEnd != past && now-lastWrDataEnd < int64(tm.TWTR) {
					t.Fatalf("t=%d tWTR violation", now)
				}
				dataStart = now + int64(tm.TCAS)
				b.lastRD = now
				lastRD = now
			} else {
				if lastRD != past && now-lastRD < int64(tm.TRTW) {
					t.Fatalf("t=%d tRTW violation", now)
				}
				dataStart = now + int64(tm.TWL)
				b.lastWR = now
				b.wrDataEnd = dataStart + int64(tm.TBURST)
				lastWrDataEnd = dataStart + int64(tm.TBURST)
			}
			if dataStart < busBusyUntil {
				t.Fatalf("t=%d data bus collision: start %d < busy-until %d", now, dataStart, busBusyUntil)
			}
			busBusyUntil = dataStart + int64(tm.TBURST)
			lastCASGroup[g] = now
			lastCASAny = now
		}
	}
}

func TestSingleReadTiming(t *testing.T) {
	c := newTestChannel()
	var done *Transaction
	var doneAt int64
	c.OnComplete = func(txn *Transaction, at int64) { done, doneAt = txn, at }
	r := req(1, memreq.Read, 0, 5, 0)
	txn := c.Enqueue(r)
	if txn.Hit {
		t.Fatal("first access projected as hit")
	}
	log := drive(t, c, 0, 1000)
	audit(t, c.T, log, 16, 4)
	// Expect ACT@0, RD@tRCD, RD@tRCD+tCCDL (same bank group).
	if len(log) != 3 {
		t.Fatalf("issued %d commands, want 3 (ACT,RD,RD): %+v", len(log), log)
	}
	if log[0].cmd.Type != CmdACT || log[0].tick != 0 {
		t.Fatalf("first command %v@%d, want ACT@0", log[0].cmd.Type, log[0].tick)
	}
	if log[1].cmd.Type != CmdRD || log[1].tick != int64(c.T.TRCD) {
		t.Fatalf("second command %v@%d, want RD@%d", log[1].cmd.Type, log[1].tick, c.T.TRCD)
	}
	if done != txn {
		t.Fatal("completion callback not fired for the transaction")
	}
	wantDone := log[2].tick + int64(c.T.TCAS) + int64(c.T.TBURST)
	if doneAt != wantDone {
		t.Fatalf("doneAt = %d, want %d", doneAt, wantDone)
	}
}

func TestRowHitProjection(t *testing.T) {
	c := newTestChannel()
	t1 := c.Enqueue(req(1, memreq.Read, 3, 7, 0))
	t2 := c.Enqueue(req(2, memreq.Read, 3, 7, 4))
	t3 := c.Enqueue(req(3, memreq.Read, 3, 9, 0))
	if t1.Hit || !t2.Hit || t3.Hit {
		t.Fatalf("hit projection wrong: %v %v %v", t1.Hit, t2.Hit, t3.Hit)
	}
	if c.Stats.HitTxns != 1 || c.Stats.MissTxns != 2 {
		t.Fatalf("stats hits=%d misses=%d", c.Stats.HitTxns, c.Stats.MissTxns)
	}
	log := drive(t, c, 0, 5000)
	audit(t, c.T, log, 16, 4)
	// The second miss must PRE then ACT.
	var seq []CmdType
	for _, rec := range log {
		seq = append(seq, rec.cmd.Type)
	}
	want := []CmdType{CmdACT, CmdRD, CmdRD, CmdRD, CmdRD, CmdPRE, CmdACT, CmdRD, CmdRD}
	if len(seq) != len(want) {
		t.Fatalf("command sequence %v, want %v", seq, want)
	}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("command %d = %v, want %v (full %v)", i, seq[i], want[i], seq)
		}
	}
}

func TestHitsSinceActCounter(t *testing.T) {
	c := newTestChannel()
	c.Enqueue(req(1, memreq.Read, 0, 7, 0)) // miss: counter = 2 bursts
	if got := c.HitsSinceAct(0); got != 2 {
		t.Fatalf("after miss: HitsSinceAct = %d, want 2", got)
	}
	c.Enqueue(req(2, memreq.Read, 0, 7, 4)) // hit: +2
	if got := c.HitsSinceAct(0); got != 4 {
		t.Fatalf("after hit: HitsSinceAct = %d, want 4", got)
	}
	c.Enqueue(req(3, memreq.Read, 0, 8, 0)) // miss: reset to 2
	if got := c.HitsSinceAct(0); got != 2 {
		t.Fatalf("after second miss: HitsSinceAct = %d, want 2", got)
	}
}

func TestQueueCapAndCanAccept(t *testing.T) {
	c := newTestChannel()
	for i := 0; i < c.QueueCap; i++ {
		if !c.CanAccept(2) {
			t.Fatalf("CanAccept false at %d/%d", i, c.QueueCap)
		}
		c.Enqueue(req(uint64(i), memreq.Read, 2, i, 0))
	}
	if c.CanAccept(2) {
		t.Fatal("CanAccept true at cap")
	}
	if c.CanAccept(3) {
		// other banks unaffected
	} else {
		t.Fatal("CanAccept false for empty bank")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Enqueue past cap did not panic")
		}
	}()
	c.Enqueue(req(99, memreq.Read, 2, 42, 0))
}

func TestBankLevelParallelismBeatsSingleBank(t *testing.T) {
	// Four misses to four different bank groups must finish much faster
	// than four misses to one bank (row cycling).
	run := func(banks []int) int64 {
		c := newTestChannel()
		var last int64
		c.OnComplete = func(_ *Transaction, at int64) {
			if at > last {
				last = at
			}
		}
		for i, b := range banks {
			c.Enqueue(req(uint64(i), memreq.Read, b, 100+i, 0))
		}
		log := drive(t, c, 0, 20000)
		audit(t, c.T, log, 16, 4)
		return last
	}
	parallel := run([]int{0, 4, 8, 12})
	serial := run([]int{0, 0, 0, 0})
	if parallel*2 >= serial {
		t.Fatalf("BLP not exploited: parallel=%d serial=%d", parallel, serial)
	}
}

func TestWriteReadTurnaround(t *testing.T) {
	c := newTestChannel()
	c.Enqueue(req(1, memreq.Write, 0, 5, 0))
	c.Enqueue(req(2, memreq.Read, 4, 6, 0)) // different bank group
	log := drive(t, c, 0, 5000)
	audit(t, c.T, log, 16, 4)
	// Find WR then the first RD after it: gap must respect tWTR from
	// write data end.
	var wrTick, rdTick int64 = -1, -1
	for _, rec := range log {
		if rec.cmd.Type == CmdWR && wrTick == -1 {
			wrTick = rec.tick
		}
		if rec.cmd.Type == CmdRD && wrTick != -1 && rdTick == -1 && rec.tick > wrTick {
			rdTick = rec.tick
		}
	}
	if wrTick == -1 || rdTick == -1 {
		t.Fatalf("missing WR/RD in log")
	}
}

func TestCompletionOrderWithinBankIsFIFO(t *testing.T) {
	c := newTestChannel()
	var order []uint64
	c.OnComplete = func(txn *Transaction, _ int64) { order = append(order, txn.Req.ID) }
	// Same bank, same row: must complete in enqueue order.
	for i := 0; i < 4; i++ {
		c.Enqueue(req(uint64(i), memreq.Read, 1, 9, i*4))
	}
	log := drive(t, c, 0, 5000)
	audit(t, c.T, log, 16, 4)
	for i, id := range order {
		if id != uint64(i) {
			t.Fatalf("completion order %v", order)
		}
	}
}

func TestUtilizationAccounting(t *testing.T) {
	// A single-bank row-hit streak is capped by tCCDL (3 tCK between
	// column commands, 2 tCK of data each) at 2/3 utilization.
	c := newTestChannel()
	var last int64
	c.OnComplete = func(_ *Transaction, at int64) { last = at }
	streak := 16
	for i := 0; i < streak; i++ {
		for !c.CanAccept(0) {
			break
		}
		if c.CanAccept(0) {
			c.Enqueue(req(uint64(i), memreq.Read, 0, 5, i*4%64))
		}
	}
	// QueueCap limits to 4 queued; drain and refill.
	injected := c.QueueCap
	now := int64(0)
	for ; injected < streak || !c.Idle(); now++ {
		c.Tick(now)
		if injected < streak && c.CanAccept(0) {
			c.Enqueue(req(uint64(injected), memreq.Read, 0, 5, injected*4%64))
			injected++
		}
		if now > 5000 {
			t.Fatal("stuck")
		}
	}
	util := c.Utilization(last)
	if util < 0.4 || util > 2.0/3+0.01 {
		t.Fatalf("single-bank streak utilization %.2f, want in (0.4, 0.67]", util)
	}
	if got := c.Stats.RDBursts; got != int64(2*streak) {
		t.Fatalf("RDBursts = %d, want %d", got, 2*streak)
	}
}

func TestBankGroupInterleaveSaturatesBus(t *testing.T) {
	// Row hits alternating across bank groups are limited only by tCCDS
	// (2 tCK) which equals tBURST, so the bus approaches saturation.
	c := newTestChannel()
	var last int64
	c.OnComplete = func(_ *Transaction, at int64) { last = at }
	banks := []int{0, 4, 8, 12} // one per bank group
	total := 32
	injected := 0
	now := int64(0)
	for ; injected < total || !c.Idle(); now++ {
		for injected < total {
			b := banks[injected%len(banks)]
			if !c.CanAccept(b) {
				break
			}
			c.Enqueue(req(uint64(injected), memreq.Read, b, 5, (injected/len(banks))*4%64))
			injected++
		}
		c.Tick(now)
		if now > 10000 {
			t.Fatal("stuck")
		}
	}
	util := c.Utilization(last)
	if util < 0.75 {
		t.Fatalf("bank-group interleaved utilization %.2f, want > 0.75", util)
	}
}

func TestRowHitRate(t *testing.T) {
	var s Stats
	if s.RowHitRate() != 0 {
		t.Fatal("empty stats hit rate not 0")
	}
	s.HitTxns, s.MissTxns = 3, 1
	if s.RowHitRate() != 0.75 {
		t.Fatalf("hit rate %v", s.RowHitRate())
	}
}

// Property test: a random mix of reads and writes across random banks and
// rows always (a) completes every transaction exactly once, (b) produces a
// timing-legal command stream, (c) projects hits exactly.
func TestRandomStreamLegality(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c := newTestChannel()
		completed := map[uint64]int{}
		c.OnComplete = func(txn *Transaction, at int64) {
			completed[txn.Req.ID]++
			if txn.DoneAt != at {
				t.Fatalf("DoneAt mismatch")
			}
		}
		total := 0
		var log []issueRec
		now := int64(0)
		inject := 300
		for now < 200000 {
			if inject > 0 && rng.Intn(3) == 0 {
				bankIdx := rng.Intn(16)
				if c.CanAccept(bankIdx) {
					kind := memreq.Read
					if rng.Intn(4) == 0 {
						kind = memreq.Write
					}
					r := req(uint64(total), kind, bankIdx, rng.Intn(8), rng.Intn(64))
					want := c.ProjectHit(r.Bank, r.Row)
					txn := c.Enqueue(r)
					if txn.Hit != want {
						t.Fatalf("seed %d: hit projection mismatch", seed)
					}
					total++
					inject--
				}
			}
			if cmd := c.Tick(now); cmd != nil {
				log = append(log, issueRec{now, *cmd})
			}
			if inject == 0 && c.Idle() {
				break
			}
			now++
		}
		if !c.Idle() {
			t.Fatalf("seed %d: channel stuck", seed)
		}
		if len(completed) != total {
			t.Fatalf("seed %d: %d/%d transactions completed", seed, len(completed), total)
		}
		for id, n := range completed {
			if n != 1 {
				t.Fatalf("seed %d: txn %d completed %d times", seed, id, n)
			}
		}
		audit(t, c.T, log, 16, 4)
		if int(c.Stats.ReadTxns+c.Stats.WriteTxns) != total {
			t.Fatalf("seed %d: txn stats %d+%d != %d", seed, c.Stats.ReadTxns, c.Stats.WriteTxns, total)
		}
	}
}

// tFAW: five misses to five different banks cannot all activate within the
// four-activate window.
func TestFAWEnforced(t *testing.T) {
	c := newTestChannel()
	for i := 0; i < 5; i++ {
		c.Enqueue(req(uint64(i), memreq.Read, i*3%16, 1, 0))
	}
	log := drive(t, c, 0, 5000)
	audit(t, c.T, log, 16, 4)
	var actTicks []int64
	for _, rec := range log {
		if rec.cmd.Type == CmdACT {
			actTicks = append(actTicks, rec.tick)
		}
	}
	if len(actTicks) != 5 {
		t.Fatalf("got %d ACTs, want 5", len(actTicks))
	}
	if actTicks[4]-actTicks[0] < int64(c.T.TFAW) {
		t.Fatalf("5th ACT at %d within tFAW of 1st at %d", actTicks[4], actTicks[0])
	}
}

func TestNewChannelPanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for banks % groups != 0")
		}
	}()
	NewChannel(gddr5.Default(), 15, 4, 4)
}

func BenchmarkChannelRandomStream(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	c := newTestChannel()
	c.OnComplete = func(*Transaction, int64) {}
	now := int64(0)
	for i := 0; i < b.N; i++ {
		bankIdx := rng.Intn(16)
		for !c.CanAccept(bankIdx) {
			c.Tick(now)
			now++
		}
		c.Enqueue(req(uint64(i), memreq.Read, bankIdx, rng.Intn(32), rng.Intn(64)))
		c.Tick(now)
		now++
	}
}

func TestRefreshBlocksAndCloses(t *testing.T) {
	c := newTestChannel()
	c.SetRefresh(200, 50)
	var done []int64
	c.OnComplete = func(_ *Transaction, at int64) { done = append(done, at) }
	// Open a row before the refresh deadline.
	c.Enqueue(req(1, memreq.Read, 0, 5, 0))
	for now := int64(0); now < 190; now++ {
		c.Tick(now)
	}
	if len(done) != 1 {
		t.Fatal("setup read not done")
	}
	// Cross the deadline: acceptance must stop, then the bank must close.
	for now := int64(190); now < 260; now++ {
		c.Tick(now)
	}
	if c.Stats.Refreshes != 1 {
		t.Fatalf("refreshes = %d", c.Stats.Refreshes)
	}
	if c.SchedRow(0) != -1 {
		t.Fatal("bank row still open after refresh")
	}
	// A read right after refresh must wait for tRFC before activating.
	if !c.CanAccept(0) {
		t.Fatal("channel not accepting after refresh")
	}
	start := int64(260)
	c.Enqueue(req(2, memreq.Read, 0, 5, 0))
	var actTick int64 = -1
	for now := start; now < 800; now++ {
		if cmd := c.Tick(now); cmd != nil && cmd.Type == CmdACT {
			actTick = now
			break
		}
	}
	if actTick < 0 {
		t.Fatal("no ACT after refresh")
	}
	// Refresh happened at some tick >= 200; ACT must respect actOK =
	// refreshTick + 50.
	if actTick < 250 {
		t.Fatalf("ACT at %d violates tRFC window", actTick)
	}
}

func TestRefreshConservation(t *testing.T) {
	c := newTestChannel()
	c.SetRefresh(150, 40)
	done := 0
	c.OnComplete = func(*Transaction, int64) { done++ }
	injected := 0
	for now := int64(0); now < 100000; now++ {
		if injected < 60 && now%7 == 0 {
			b := injected % 16
			if c.CanAccept(b) {
				c.Enqueue(req(uint64(injected), memreq.Read, b, injected%8, 0))
				injected++
			}
		}
		c.Tick(now)
		if injected == 60 && c.Idle() && done == 60 {
			break
		}
	}
	if done != 60 {
		t.Fatalf("done %d/60 with refresh enabled", done)
	}
	if c.Stats.Refreshes < 2 {
		t.Fatalf("refreshes = %d, want several", c.Stats.Refreshes)
	}
}
