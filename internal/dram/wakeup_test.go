package dram

import (
	"fmt"
	"math/rand"
	"testing"

	"dramlat/internal/gddr5"
	"dramlat/internal/memreq"
)

// TestNextWakeupNeverLate property-checks the wakeup contract over random
// request streams: between an enqueue-free tick t and the wakeup
// NextWakeup(t) returned there, Tick must be a no-op. A command issue,
// burst completion, or stats delta strictly before the reported wakeup
// means the event loop would have slept through real work.
func TestNextWakeupNeverLate(t *testing.T) {
	for iter := 0; iter < 20; iter++ {
		iter := iter
		t.Run(fmt.Sprintf("stream%d", iter), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(iter) + 1))
			c := NewChannel(gddr5.Default(), 16, 4, 4)
			c.WakeCache = iter%2 == 0 // exercise the cached and pristine Tick
			if iter%3 == 0 {
				c.SetRefresh(2000, 160)
			}
			completed := 0
			c.OnComplete = func(*Transaction, int64) { completed++ }

			// pred is the earliest tick at which state may legally change:
			// NextWakeup of the last quiet tick, reset to "now" whenever an
			// enqueue (external input) invalidates the bound.
			pred := int64(0)
			var id uint64
			for now := int64(0); now < 30_000; now++ {
				if rng.Intn(6) == 0 {
					bank := rng.Intn(c.NumBanks)
					if c.CanAccept(bank) {
						id++
						kind := memreq.Read
						if rng.Intn(4) == 0 {
							kind = memreq.Write
						}
						c.Enqueue(&memreq.Request{
							ID: id, Kind: kind,
							Bank: bank, Row: rng.Intn(8), Col: rng.Intn(64),
						})
						pred = now
					}
				}
				if iter%5 == 1 && rng.Intn(50) == 0 {
					id++
					c.EnqueueBusOnly(&memreq.Request{ID: id, Kind: memreq.Read})
					pred = now
				}
				statsBefore := c.Stats
				doneBefore := completed
				cmd := c.Tick(now)
				if (cmd != nil || c.Stats != statsBefore || completed != doneBefore) && now < pred {
					t.Fatalf("state changed at tick %d but wakeup promised quiet until %d (cmd=%v stats %+v -> %+v)",
						now, pred, cmd, statsBefore, c.Stats)
				}
				pred = c.NextWakeup(now)
				if pred <= now {
					t.Fatalf("NextWakeup(%d) = %d, not strictly in the future", now, pred)
				}
			}
		})
	}
}
