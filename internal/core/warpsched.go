// Package core implements the paper's primary contribution: warp-aware DRAM
// transaction scheduling (Section IV).
//
// The WarpScheduler replaces the baseline GMC's row sorter with a Warp
// Sorter and Bank Table (Fig 6). Requests are batched by warp-group (one
// dynamic load of one warp); completed groups are ranked by a bank-aware
// shortest-job-first score that estimates each group's completion time from
// the row hit/miss mix of its requests and the work already queued at every
// bank (Section IV-B). The four cumulative policies of the paper are
// feature flags on one scheduler:
//
//	WG    — per-controller warp-group SJF scheduling (Section IV-B)
//	WG-M  — + cross-controller score coordination    (Section IV-C)
//	WG-Bw — + MERB-bounded row-miss overlap           (Section IV-D)
//	WG-W  — + warp-aware write draining               (Section IV-E)
//	WG-Sh — + shared-data group priority              (Conclusion, future work)
package core

import (
	"math/bits"

	"dramlat/internal/coordnet"
	"dramlat/internal/gddr5"
	"dramlat/internal/memctrl"
	"dramlat/internal/memreq"
	"dramlat/internal/telemetry"
)

// Score constants of Section IV-B1: a projected row hit costs 1 unit, a
// projected row miss 3 units (36 ns vs 12 ns of DRAM array access time).
const (
	scoreHit  = 1
	scoreMiss = 3
)

// group is one Warp Sorter entry: the requests of a single warp-group
// pending at this controller.
type group struct {
	id          memreq.GroupID
	pending     []*memreq.Request
	complete    bool // last-tagged request (or L2 group credit) seen
	dispatched  int  // requests already sent to command queues
	firstArrive int64
	scoreAdj    int // priority bonus accumulated from WG-M messages
	// boostUntil bounds the WG-M score cut: another controller began
	// servicing this warp-group with a smaller completion-time score
	// than ours, so until this tick the reduced score applies — that is
	// the alignment window in which servicing it here actually shortens
	// the warp's stall (Section IV-C). A stale boost (the remote service
	// long finished) must not distort the SJF order.
	boostUntil int64
	// channels is the number of controllers the whole group touches
	// (from Request.GroupChannels); remoteMask collects the controllers
	// that reported selecting the group. When every other controller has
	// serviced its share, this controller is the warp's sole remaining
	// blocker and the group takes absolute priority.
	channels   int
	remoteMask uint32

	// Score cache: the raw (pre-WG-M-boost) completion-time score and
	// row-hit count last computed for this group. It stays valid while
	// cacheValid is set and every bank in cacheMask still has the
	// SchedVersion recorded in cacheVers. The group's own pending-set
	// changes (enqueue, dispatch) clear cacheValid directly; changes to
	// bank state from other groups' traffic are caught by the version
	// comparison. The WG-M boost depends on now, so it is applied after
	// the cache on every read.
	cacheValid bool
	cacheMask  uint32
	cacheScore int
	cacheHits  int
	cacheVers  [32]uint32
}

// soleBlocker reports that every other controller already serviced its
// share of the group.
func (g *group) soleBlocker() bool {
	if g.channels <= 1 {
		return false
	}
	n := 0
	for m := g.remoteMask; m != 0; m &= m - 1 {
		n++
	}
	return n >= g.channels-1
}

// boosted reports whether the group's WG-M priority is still fresh.
func (g *group) boosted(now int64) bool { return now < g.boostUntil }

// Stats aggregates warp-scheduler activity, including the Fig 12 write-
// drain accounting.
type Stats struct {
	GroupsSelected      int64
	IncompleteFallbacks int64
	AgePromotions       int64
	MERBFillers         int64
	OrphanRideAlongs    int64
	UnitRushDispatches  int64
	CoordSent           int64
	CoordApplied        int64
	CoordSoleBlocker    int64
	SharedDemands       int64
	// Fig 12: warp-groups pending when a write drain started, and how
	// many of those were unit-sized or contained orphaned (1-2 leftover)
	// requests.
	DrainStalledGroups       int64
	DrainStalledUnitOrOrphan int64
}

// WarpScheduler implements memctrl.Scheduler with the warp-aware policies.
type WarpScheduler struct {
	// Feature flags (cumulative in the paper's evaluation).
	Coordinate bool // WG-M
	MERB       bool // WG-Bw
	WriteAware bool // WG-W
	// SharedPriority implements the extension sketched in the paper's
	// conclusion: "prioritizing warp-groups that contain blocks of data
	// that are shared by multiple warps". When the L2 merges another
	// warp's miss into a group's in-flight request, finishing that group
	// unblocks several warps at once, so its score drops.
	SharedPriority bool

	// ChannelID identifies this controller on the coordination network.
	ChannelID int
	// Net is the coordination fabric; nil disables coordination even if
	// Coordinate is set.
	Net *coordnet.Network

	// AgeThresh promotes the oldest complete group regardless of score
	// after this many ticks (starvation guard), and also lets an
	// incomplete group be scheduled if it has waited this long without
	// its tail (lost-tag robustness).
	AgeThresh int64
	// BoostWindow is how long (ticks) a WG-M coordination boost stays
	// decisive; roughly the remote controller's group service time.
	BoostWindow int64

	// CountScore is an ablation: rank groups by raw request count
	// instead of the bank-state-aware completion-time score. Section
	// IV-B argues this is inadequate for irregular applications; the
	// ablation bench quantifies it.
	CountScore bool
	// NoOrphanControl is an ablation: disable the orphan-control rule of
	// Section IV-D (row misses may strand 1-2 row hits behind them).
	NoOrphanControl bool
	// NoScoreCache disables the incremental warp-group score cache and
	// recomputes every score from live bank state. The cache is exact, so
	// this knob only exists for the differential property test and for
	// benchmarking the cache itself.
	NoScoreCache bool

	// Probe receives MERB streak begin/end trace events; nil disables
	// tracing (one branch per event site).
	Probe *telemetry.Tracer

	ctl        *memctrl.Controller
	merbTable  []int
	merbStreak []bool // per bank: a filler streak is protecting the row

	groups  map[memreq.GroupID]*group
	order   []*group // arrival order
	current *group
	count   int
	// groupFree recycles retired group entries (and their pending-slice
	// capacity): the sorter churns through one group per warp load, and
	// the live population is bounded by the read queue, so the steady
	// state should reuse rather than allocate.
	groupFree []*group

	bankPending []int // pending (undispatched) requests per bank

	// fillerIdx indexes pending requests by (bank,row) for the WG-Bw
	// row-hit filler search. dispatch removes entries eagerly (request
	// memory is pooled, so stale pointers must not linger); the
	// req.Dispatched skip in liveFillers is a defensive second line.
	fillerIdx map[[2]int][]*memreq.Request
	// fillerFree recycles the per-(bank,row) index slices dropped when an
	// entry empties, so re-opening the same locality later reuses their
	// capacity.
	fillerFree [][]*memreq.Request

	Stats Stats
}

// Option configures a WarpScheduler.
type Option func(*WarpScheduler)

// WithCoordination enables WG-M cross-controller score coordination.
func WithCoordination(net *coordnet.Network, channelID int) Option {
	return func(w *WarpScheduler) {
		w.Coordinate = true
		w.Net = net
		w.ChannelID = channelID
	}
}

// WithMERB enables the WG-Bw bandwidth optimization.
func WithMERB() Option { return func(w *WarpScheduler) { w.MERB = true } }

// WithWriteAware enables the WG-W warp-aware write-drain policy.
func WithWriteAware() Option { return func(w *WarpScheduler) { w.WriteAware = true } }

// WithSharedPriority enables the shared-data extension from the paper's
// conclusion (multi-warp demand raises a group's priority).
func WithSharedPriority() Option { return func(w *WarpScheduler) { w.SharedPriority = true } }

// New builds a warp-aware scheduler; with no options it is the plain WG
// policy of Section IV-B.
func New(opts ...Option) *WarpScheduler {
	w := &WarpScheduler{
		AgeThresh:   2000,
		BoostWindow: 256,
		groups:      make(map[memreq.GroupID]*group),
		fillerIdx:   make(map[[2]int][]*memreq.Request),
	}
	for _, o := range opts {
		o(w)
	}
	return w
}

// Name implements memctrl.Scheduler.
func (w *WarpScheduler) Name() string {
	switch {
	case w.SharedPriority:
		return "wg-sh"
	case w.WriteAware:
		return "wg-w"
	case w.MERB:
		return "wg-bw"
	case w.Coordinate:
		return "wg-m"
	default:
		return "wg"
	}
}

// Attach implements memctrl.Scheduler.
func (w *WarpScheduler) Attach(ctl *memctrl.Controller) {
	w.ctl = ctl
	w.bankPending = make([]int, ctl.Chan.NumBanks)
	w.merbTable = ctl.Chan.T.MERBTable(ctl.Chan.NumBanks)
	w.merbStreak = make([]bool, ctl.Chan.NumBanks)
}

// Pending implements memctrl.Scheduler.
func (w *WarpScheduler) Pending() int { return w.count }

// groupKey folds ungrouped reads (which have no warp identity) into
// single-request pseudo-groups so they flow through the same machinery.
// Request IDs are per-creator streams (stream<<40 | serial), so the key
// carries the stream in Warp and the serial in Load: truncating the ID to
// 32 bits alone would collide across streams.
func groupKey(r *memreq.Request) (memreq.GroupID, bool) {
	if r.Group.Valid() {
		return r.Group, false
	}
	return memreq.GroupID{SM: 0xffff, Warp: uint16(r.ID >> 40), Load: uint32(r.ID)}, true
}

// OnEnqueue implements memctrl.Scheduler.
func (w *WarpScheduler) OnEnqueue(r *memreq.Request, now int64) {
	key, pseudo := groupKey(r)
	g, ok := w.groups[key]
	if !ok {
		if n := len(w.groupFree); n > 0 {
			g = w.groupFree[n-1]
			w.groupFree = w.groupFree[:n-1]
			// A retired group's pending slice is empty but its capacity
			// tail may still hold pooled-request pointers; clear them so
			// the recycled entry starts clean.
			pend := g.pending[:cap(g.pending)]
			for i := range pend {
				pend[i] = nil
			}
			*g = group{id: key, firstArrive: now, pending: pend[:0]}
		} else {
			g = &group{id: key, firstArrive: now}
		}
		w.groups[key] = g
		w.order = append(w.order, g)
	}
	g.pending = append(g.pending, r)
	g.cacheValid = false
	if int(r.GroupChannels) > g.channels {
		g.channels = int(r.GroupChannels)
	}
	if r.LastInChannel || pseudo {
		g.complete = true
	}
	w.count++
	w.bankPending[r.Bank]++
	fk := [2]int{r.Bank, r.Row}
	list := w.fillerIdx[fk]
	if list == nil {
		if n := len(w.fillerFree); n > 0 {
			list = w.fillerFree[n-1]
			w.fillerFree = w.fillerFree[:n-1]
		}
	}
	w.fillerIdx[fk] = append(list, r)
}

// GroupComplete implements memctrl.Scheduler: the L2 slice signals that the
// group's channel-tagged request was filtered (cache hit or MSHR merge), so
// no further requests will arrive.
func (w *WarpScheduler) GroupComplete(id memreq.GroupID, now int64) {
	if g, ok := w.groups[id]; ok {
		g.complete = true
		if len(g.pending) == 0 {
			w.retire(g)
		}
		return
	}
	// A credit for a fully filtered group: none of its requests reached
	// this controller, so our share is trivially done. Tell the other
	// controllers (score 0) so their sole-blocker detection stays exact.
	if w.Coordinate && w.Net != nil && id.Valid() {
		w.Net.Broadcast(w.ChannelID, id, 0, now)
		w.Stats.CoordSent++
	}
}

// DeliverScore applies a WG-M coordination message from controller `from`:
// if our local completion-time score LC for the group exceeds the remote
// score RC, the group's local score is decreased by (LC-RC) so that this
// controller stops delaying a warp that is about to finish elsewhere
// (Section IV-C). Once every other controller touched by the group has
// reported servicing it, the group becomes this controller's sole-blocker
// tier: the warp is stalled on us alone.
func (w *WarpScheduler) DeliverScore(id memreq.GroupID, from, remoteScore int, now int64) {
	g, ok := w.groups[id]
	if !ok {
		return
	}
	g.remoteMask |= 1 << uint(from)
	if !g.soleBlocker() {
		// Not yet the warp's last outstanding controller: record the
		// sighting but leave the SJF order alone. (Applying the score
		// cut on every remote selection reorders a quarter of the
		// schedule and costs more row locality than the alignment
		// recovers — see the wg-m ablation bench.)
		return
	}
	w.Stats.CoordSoleBlocker++
	lc := w.score(g, now)
	if lc > remoteScore {
		g.scoreAdj += lc - remoteScore
		g.boostUntil = now + w.BoostWindow
		w.Stats.CoordApplied++
	}
}

// OnSharedDemand implements memctrl.SharedDemandObserver: another warp's
// miss just merged into one of this group's in-flight lines, so completing
// the group now unblocks multiple warps. The group's completion-time score
// drops by one row-hit unit per sharer (bounded by the fresh-boost window
// like WG-M adjustments).
func (w *WarpScheduler) OnSharedDemand(id memreq.GroupID, now int64) {
	if !w.SharedPriority {
		return
	}
	g, ok := w.groups[id]
	if !ok {
		return
	}
	g.scoreAdj += scoreHit
	if until := now + w.BoostWindow; until > g.boostUntil {
		g.boostUntil = until
	}
	w.Stats.SharedDemands++
}

// PollCoordination drains this controller's coordination-network ports and
// applies the received scores. The system glue calls it once per tick.
func (w *WarpScheduler) PollCoordination(now int64) {
	if !w.Coordinate || w.Net == nil {
		return
	}
	for _, m := range w.Net.Deliver(w.ChannelID, now) {
		w.DeliverScore(m.Group, m.From, m.Score, now)
	}
}

// score estimates the completion time of a group: for each bank touched by
// the group, the work already queued at that bank (Channel.QueuedScore)
// plus the group's own requests scored 1/3 by projected hit/miss, where the
// projection threads the group's own row changes through each bank. The
// group's score is the maximum over its banks (its last-finishing bank),
// minus any WG-M adjustment (Section IV-B1, IV-C).
func (w *WarpScheduler) score(g *group, now int64) int {
	s, _ := w.scoreAndHits(g, now)
	return s
}

func (w *WarpScheduler) scoreAndHits(g *group, now int64) (score, hits int) {
	if w.CountScore {
		// Ablation: shortest-request-count-first, blind to bank state.
		s := len(g.pending)
		if g.boosted(now) {
			s -= g.scoreAdj
			if s < 0 {
				s = 0
			}
		}
		return s, 0
	}
	if w.NoScoreCache || !w.scoreCacheValid(g) {
		w.refreshScoreCache(g)
	}
	max := g.cacheScore
	if g.boosted(now) {
		max -= g.scoreAdj
	}
	if max < 0 {
		max = 0
	}
	return max, g.cacheHits
}

// scoreCacheValid reports whether g's cached raw score still reflects the
// live bank state: the group's pending set is unchanged and every touched
// bank's SchedVersion matches the snapshot.
func (w *WarpScheduler) scoreCacheValid(g *group) bool {
	if !g.cacheValid {
		return false
	}
	ch := w.ctl.Chan
	for m := g.cacheMask; m != 0; m &= m - 1 {
		b := bits.TrailingZeros32(m)
		if ch.SchedVersion(b) != g.cacheVers[b] {
			return false
		}
	}
	return true
}

// refreshScoreCache recomputes g's raw (pre-boost) completion-time score
// and row-hit count from live bank state (the brute-force walk the
// scheduler previously did on every comparison) and snapshots the touched
// banks' versions so the result can be reused until something changes.
func (w *WarpScheduler) refreshScoreCache(g *group) {
	type acc struct {
		row   int
		total int
	}
	var banks [32]acc // NumBanks <= 32 in all configurations
	var touched uint32
	ch := w.ctl.Chan
	hits := 0
	for _, r := range g.pending {
		if r.Dispatched {
			continue
		}
		b := r.Bank
		if bit := uint32(1) << uint(b); touched&bit == 0 {
			banks[b] = acc{row: ch.SchedRow(b), total: ch.QueuedScore(b)}
			g.cacheVers[b] = ch.SchedVersion(b)
			touched |= bit
		}
		if banks[b].row == r.Row {
			banks[b].total += scoreHit
			hits++
		} else {
			banks[b].total += scoreMiss
			banks[b].row = r.Row
		}
	}
	max := 0
	for m := touched; m != 0; m &= m - 1 {
		if t := banks[bits.TrailingZeros32(m)].total; t > max {
			max = t
		}
	}
	g.cacheMask = touched
	g.cacheScore = max
	g.cacheHits = hits
	g.cacheValid = true
}

// selectGroup picks the next warp-group to service: the completed group
// with the smallest score; ties prefer more row hits (DRAM power), then
// fewer requests (less command-bus occupancy), then age. The starvation
// guard promotes the oldest complete group past AgeThresh; the incomplete
// fallback prevents read-queue-full deadlock.
func (w *WarpScheduler) selectGroup(now int64) *group {
	unitPref := w.WriteAware && w.ctl.DrainImminent()
	var best *group
	bestScore, bestHits := 0, 0
	var oldestComplete, oldestAny *group
	for _, g := range w.order {
		if len(g.pending) == 0 {
			continue
		}
		if oldestAny == nil {
			oldestAny = g
		}
		if !g.complete {
			continue
		}
		if oldestComplete == nil {
			oldestComplete = g
		}
		s, h := w.scoreAndHits(g, now)
		better := false
		switch {
		case best == nil:
			better = true
		case unitPref && (len(g.pending) == 1) != (len(best.pending) == 1):
			// WG-W: with a write drain imminent, unit warp-groups
			// outrank everything regardless of score (Section IV-E).
			better = len(g.pending) == 1
		case w.Coordinate && g.soleBlocker() != best.soleBlocker():
			// Every other controller already serviced this group:
			// its warp is stalled on us alone, so finishing it is a
			// direct stall reduction (Section IV-C, the cross-
			// channel form of the Fig 5 key idea).
			better = g.soleBlocker()
		case s < bestScore:
			better = true
		case s == bestScore && g.boosted(now) != best.boosted(now):
			// Prefer the remote-started group on ties.
			better = g.boosted(now)
		case s == bestScore && (h > bestHits ||
			(h == bestHits && len(g.pending) < len(best.pending))):
			better = true
		}
		if better {
			best, bestScore, bestHits = g, s, h
		}
	}
	if oldestComplete != nil && now-oldestComplete.firstArrive > w.AgeThresh {
		w.Stats.AgePromotions++
		best = oldestComplete
	}
	if best == nil && oldestAny != nil {
		// No complete group. Fall back to the oldest incomplete group
		// when the read queue is backing up (its own tail may be stuck
		// behind the full queue) or it has waited too long.
		if w.count >= w.ctl.ReadCap*3/4 || now-oldestAny.firstArrive > w.AgeThresh {
			w.Stats.IncompleteFallbacks++
			best = oldestAny
		}
	}
	if best != nil {
		w.Stats.GroupsSelected++
		if w.Coordinate && w.Net != nil && best.id.Valid() {
			w.Net.Broadcast(w.ChannelID, best.id, w.score(best, now), now)
			w.Stats.CoordSent++
		}
	}
	return best
}

// NextRead implements memctrl.Scheduler.
func (w *WarpScheduler) NextRead(now int64) *memreq.Request {
	if w.current == nil || w.exhausted(w.current) {
		w.current = w.selectGroup(now)
		if w.current == nil {
			return nil
		}
		// WG-W accounting: selections that jumped the score order
		// because a drain was imminent and the group was unit-sized.
		if w.WriteAware && w.ctl.DrainImminent() && len(w.current.pending) == 1 {
			w.Stats.UnitRushDispatches++
		}
	}

	r := w.nextFromGroup(w.current)
	if r == nil {
		return nil // all of the group's target banks are full; wait
	}

	// WG-Bw: before letting a projected row miss interrupt a row-hit
	// streak, require the bank to have transferred its Minimum Efficient
	// Row Burst; fill the gap with pending row hits from any warp, and
	// let 1-2 orphan hits ride along (Section IV-D).
	if w.MERB && !r.Dispatched {
		if filler := w.merbFiller(r); filler != nil {
			if w.Probe != nil && !w.merbStreak[filler.Bank] {
				w.merbStreak[filler.Bank] = true
				w.Probe.MERBStreakBegin(now, w.ChannelID, filler.Bank, filler.Row)
			}
			return w.dispatch(filler)
		}
		if w.Probe != nil && w.merbStreak[r.Bank] {
			// The protected miss proceeds: the filler streak is over.
			w.merbStreak[r.Bank] = false
			w.Probe.MERBStreakEnd(now, w.ChannelID, r.Bank)
		}
	}
	return w.dispatch(r)
}

// NextWakeup implements memctrl.Scheduler. The only time-triggered
// mutation on the NextRead path is the incomplete-group age fallback of
// selectGroup; everything else either dispatches next tick (any
// complete group, or a read queue backing up) or waits on external
// input: new requests, group credits, coordination messages (delivered
// by PollCoordination, woken by coordnet.NextDue) or a bank freeing up
// (woken by the channel). Selection itself always mutates state
// (Stats, WG-M broadcast), so any selectable state returns now+1.
func (w *WarpScheduler) NextWakeup(now int64) int64 {
	if w.count == 0 {
		return memctrl.Never
	}
	if w.current != nil && !w.exhausted(w.current) {
		if w.nextFromGroup(w.current) != nil {
			return now + 1
		}
		// Every target bank is full: the channel wakeup covers progress.
		return memctrl.Never
	}
	var oldestAny *group
	for _, g := range w.order {
		if len(g.pending) == 0 {
			continue
		}
		if g.complete {
			return now + 1 // selectGroup would pick (and mutate) now
		}
		if oldestAny == nil {
			oldestAny = g
		}
	}
	if oldestAny == nil {
		return memctrl.Never
	}
	if w.count >= w.ctl.ReadCap*3/4 {
		return now + 1 // incomplete fallback triggers on queue pressure
	}
	// The age fallback fires when now-firstArrive exceeds AgeThresh.
	if wake := oldestAny.firstArrive + w.AgeThresh + 1; wake > now {
		return wake
	}
	return now + 1
}

// FlushTelemetry closes any MERB streak span still open at end of run, so
// begin/end pairs balance in the exported trace.
func (w *WarpScheduler) FlushTelemetry(now int64) {
	if w.Probe == nil {
		return
	}
	for b, open := range w.merbStreak {
		if open {
			w.merbStreak[b] = false
			w.Probe.MERBStreakEnd(now, w.ChannelID, b)
		}
	}
}

// exhausted reports whether g has no undispatched requests left to give.
func (w *WarpScheduler) exhausted(g *group) bool { return len(g.pending) == 0 }

// nextFromGroup returns the first dispatchable pending request of g (its
// bank must have command-queue space), or nil.
func (w *WarpScheduler) nextFromGroup(g *group) *memreq.Request {
	for _, r := range g.pending {
		if w.ctl.Chan.CanAccept(r.Bank) {
			return r
		}
	}
	return nil
}

// merbFiller returns a pending row-hit request that should be serviced
// before the projected-miss request r, or nil if r may proceed.
func (w *WarpScheduler) merbFiller(r *memreq.Request) *memreq.Request {
	ch := w.ctl.Chan
	openRow := ch.SchedRow(r.Bank)
	if openRow == r.Row || openRow < 0 {
		return nil // not a miss, or bank closed (nothing to protect)
	}
	fillers := w.liveFillers(r.Bank, openRow)
	if len(fillers) == 0 {
		return nil
	}
	busy := w.banksWithWork()
	merb := w.merbTable[busy-1]
	if ch.HitsSinceAct(r.Bank) < merb {
		w.Stats.MERBFillers++
		return fillers[0]
	}
	// Orphan control: do not leave behind just one or two hits.
	if !w.NoOrphanControl && len(fillers) <= 2 {
		w.Stats.OrphanRideAlongs++
		return fillers[0]
	}
	return nil
}

// liveFillers returns (and compacts) the undispatched requests pending to
// (bank, row).
func (w *WarpScheduler) liveFillers(bank, row int) []*memreq.Request {
	fk := [2]int{bank, row}
	list := w.fillerIdx[fk]
	live := list[:0]
	for _, r := range list {
		if !r.Dispatched {
			live = append(live, r)
		}
	}
	if len(live) == 0 {
		w.dropFillerEntry(fk, list)
		return nil
	}
	w.fillerIdx[fk] = live
	return live
}

// dropFillerEntry removes an emptied (bank,row) index entry and parks its
// slice for reuse, clearing the stale request pointers it still holds.
func (w *WarpScheduler) dropFillerEntry(fk [2]int, list []*memreq.Request) {
	delete(w.fillerIdx, fk)
	list = list[:cap(list)]
	for i := range list {
		list[i] = nil
	}
	w.fillerFree = append(w.fillerFree, list[:0])
}

// banksWithWork counts banks with either queued transactions or pending
// sorter requests (the MERB table index).
func (w *WarpScheduler) banksWithWork() int {
	n := 0
	for b := 0; b < w.ctl.Chan.NumBanks; b++ {
		if w.bankPending[b] > 0 || w.ctl.Chan.QueuedTxns(b) > 0 {
			n++
		}
	}
	if n < 1 {
		n = 1
	}
	return n
}

// dispatch removes r from its group and all indexes and returns it.
func (w *WarpScheduler) dispatch(r *memreq.Request) *memreq.Request {
	key, _ := groupKey(r)
	g := w.groups[key]
	for i, p := range g.pending {
		if p == r {
			g.pending = append(g.pending[:i], g.pending[i+1:]...)
			break
		}
	}
	g.cacheValid = false
	g.dispatched++
	r.Dispatched = true
	w.count--
	w.bankPending[r.Bank]--
	// Drop r from the (bank,row) filler index eagerly: the request's
	// memory is recycled once it completes, and a recycled request with a
	// fresh Dispatched=false flag would make a lingering stale pointer
	// look live to liveFillers.
	fk := [2]int{r.Bank, r.Row}
	if list := w.fillerIdx[fk]; len(list) > 0 {
		live := list[:0]
		for _, p := range list {
			if p != r {
				live = append(live, p)
			}
		}
		if len(live) == 0 {
			w.dropFillerEntry(fk, list)
		} else {
			w.fillerIdx[fk] = live
		}
	}
	if len(g.pending) == 0 && g.complete {
		w.retire(g)
		if w.current == g {
			w.current = nil
		}
	}
	return r
}

// retire removes a finished group from the sorter and parks the entry for
// reuse. current must be cleared here: before recycling, a retired group
// held by w.current stayed "exhausted forever" and forced reselection; a
// recycled pointer could instead come back to life as a different group
// and be continued without selection.
func (w *WarpScheduler) retire(g *group) {
	if w.current == g {
		w.current = nil
	}
	delete(w.groups, g.id)
	w.groupFree = append(w.groupFree, g)
	for i, e := range w.order {
		if e == g {
			w.order = append(w.order[:i], w.order[i+1:]...)
			return
		}
	}
}

// OnDrainStart implements memctrl.DrainObserver: the Fig 12 accounting of
// warp-groups stalled behind a write drain.
func (w *WarpScheduler) OnDrainStart(now int64) {
	for _, g := range w.order {
		if len(g.pending) == 0 || !g.complete {
			continue
		}
		w.Stats.DrainStalledGroups++
		unit := g.dispatched == 0 && len(g.pending) == 1
		orphan := g.dispatched > 0 && len(g.pending) <= 2
		if unit || orphan {
			w.Stats.DrainStalledUnitOrOrphan++
		}
	}
}

// Interface conformance checks.
var (
	_ memctrl.Scheduler     = (*WarpScheduler)(nil)
	_ memctrl.DrainObserver = (*WarpScheduler)(nil)
)

// MERBTableForDocs re-exports the Table I computation for the façade and
// tools without importing gddr5 everywhere.
func MERBTableForDocs(maxBanks int) []int {
	return gddr5.Default().MERBTable(maxBanks)
}
