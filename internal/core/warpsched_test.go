package core

import (
	"math/rand"
	"testing"

	"dramlat/internal/coordnet"
	"dramlat/internal/dram"
	"dramlat/internal/gddr5"
	"dramlat/internal/memctrl"
	"dramlat/internal/memreq"
)

func newCtl(w *WarpScheduler) *memctrl.Controller {
	ch := dram.NewChannel(gddr5.Default(), 16, 4, 4)
	return memctrl.New(ch, w, 64, 64, 32, 16)
}

var nextID uint64

func rd(bank, row, col int, g memreq.GroupID, last bool) *memreq.Request {
	nextID++
	return &memreq.Request{
		ID: nextID, Kind: memreq.Read, Bank: bank, Row: row, Col: col,
		Group: g, LastInChannel: last,
	}
}

func wr(bank, row int) *memreq.Request {
	nextID++
	return &memreq.Request{ID: nextID, Kind: memreq.Write, Bank: bank, Row: row}
}

func gid(warp uint16, load uint32) memreq.GroupID {
	return memreq.GroupID{SM: 0, Warp: warp, Load: load}
}

func runUntilIdle(t *testing.T, ctl *memctrl.Controller, bound int64) {
	t.Helper()
	for now := int64(0); now < bound; now++ {
		ctl.Tick(now)
		if ctl.Idle() {
			return
		}
	}
	t.Fatalf("controller stuck: pending=%d", ctl.Sched.Pending())
}

// A complete group must be serviced as a unit: its requests are not
// interleaved with another group's at dispatch time.
func TestGroupServicedAsUnit(t *testing.T) {
	w := New()
	ctl := newCtl(w)
	var order []memreq.GroupID
	ctl.OnReadDone = func(r *memreq.Request, _ int64) { order = append(order, r.Group) }

	a, b := gid(1, 1), gid(2, 1)
	// Interleaved arrival to a single bank: the per-bank command queue
	// is FIFO, so completion order equals dispatch order and exposes any
	// inter-group interleaving by the transaction scheduler.
	ctl.AcceptRead(rd(0, 1, 0, a, false), 0)
	ctl.AcceptRead(rd(0, 4, 0, b, false), 1)
	ctl.AcceptRead(rd(0, 2, 0, a, false), 2)
	ctl.AcceptRead(rd(0, 5, 0, b, false), 3)
	ctl.AcceptRead(rd(0, 3, 0, a, true), 4)
	ctl.AcceptRead(rd(0, 6, 0, b, true), 5)
	runUntilIdle(t, ctl, 40000)

	if len(order) != 6 {
		t.Fatalf("%d reads done", len(order))
	}
	// All three requests of the first-served group must finish before
	// any request of the other group.
	first := order[0]
	for i := 0; i < 3; i++ {
		if order[i] != first {
			t.Fatalf("groups interleaved: %v", order)
		}
	}
	if w.Stats.GroupsSelected != 2 {
		t.Fatalf("groups selected = %d, want 2", w.Stats.GroupsSelected)
	}
}

// Shortest-job-first: a 1-request group must beat a 6-request group that
// arrived earlier, cutting average completion time (Fig 5).
func TestShortestJobFirst(t *testing.T) {
	w := New()
	ctl := newCtl(w)
	var order []memreq.GroupID
	ctl.OnReadDone = func(r *memreq.Request, _ int64) { order = append(order, r.Group) }

	big, small := gid(1, 1), gid(2, 1)
	// Big group arrives fully first (6 misses across 6 banks).
	for i := 0; i < 6; i++ {
		ctl.AcceptRead(rd(i, 5, 0, big, i == 5), int64(i))
	}
	// Small group: one miss.
	ctl.AcceptRead(rd(7, 5, 0, small, true), 6)

	// Do not tick until both groups are buffered (they are); then run.
	runUntilIdle(t, ctl, 20000)
	if order[0] != small {
		t.Fatalf("first completion %v, want the unit group %v (SJF)", order[0], small)
	}
}

// A group with row hits on the queued state must beat an equally sized
// group of misses (bank-state-aware scoring, Section IV-B1).
func TestScorePrefersRowHits(t *testing.T) {
	w := New()
	ctl := newCtl(w)
	var order []memreq.GroupID
	ctl.OnReadDone = func(r *memreq.Request, _ int64) { order = append(order, r.Group) }

	// Open row 1 in banks 0 and 1 via a first group.
	opener := gid(0, 1)
	ctl.AcceptRead(rd(0, 1, 0, opener, false), 0)
	ctl.AcceptRead(rd(1, 1, 0, opener, true), 0)
	// hits: two row-1 hits; misses: two row-9 misses on the same banks.
	hits, misses := gid(1, 1), gid(2, 1)
	ctl.AcceptRead(rd(0, 9, 4, misses, false), 1)
	ctl.AcceptRead(rd(1, 9, 4, misses, true), 1)
	ctl.AcceptRead(rd(0, 1, 8, hits, false), 2)
	ctl.AcceptRead(rd(1, 1, 8, hits, true), 2)
	runUntilIdle(t, ctl, 20000)

	posHit, posMiss := -1, -1
	for i, g := range order {
		if g == hits && posHit == -1 {
			posHit = i
		}
		if g == misses && posMiss == -1 {
			posMiss = i
		}
	}
	if posHit > posMiss {
		t.Fatalf("miss group served before hit group: %v", order)
	}
	if ctl.Chan.Stats.HitTxns < 2 {
		t.Fatalf("hits = %d, want >= 2", ctl.Chan.Stats.HitTxns)
	}
}

// An incomplete group must not be scheduled while complete groups exist,
// but must eventually be scheduled via the fallback when the queue backs up
// or it ages out.
func TestIncompleteGroupFallback(t *testing.T) {
	w := New()
	w.AgeThresh = 100
	ctl := newCtl(w)
	var done int
	ctl.OnReadDone = func(*memreq.Request, int64) { done++ }
	// A group whose LastInChannel tag never arrives.
	ctl.AcceptRead(rd(0, 1, 0, gid(1, 1), false), 0)
	for now := int64(0); now < 5000 && done == 0; now++ {
		ctl.Tick(now)
	}
	if done != 1 {
		t.Fatal("incomplete group never scheduled (age fallback broken)")
	}
	if w.Stats.IncompleteFallbacks == 0 {
		t.Fatal("fallback not recorded")
	}
}

// The L2 group credit completes a group whose tagged request was filtered.
func TestGroupCompleteCredit(t *testing.T) {
	w := New()
	w.AgeThresh = 1 << 40 // disable fallback; rely on the credit
	ctl := newCtl(w)
	var done int
	ctl.OnReadDone = func(*memreq.Request, int64) { done++ }
	g := gid(3, 7)
	ctl.AcceptRead(rd(0, 1, 0, g, false), 0)
	ctl.Tick(0)
	if done != 0 && w.Pending() == 0 {
		t.Fatal("incomplete group dispatched without credit")
	}
	ctl.GroupComplete(g, 1)
	runUntilIdle(t, ctl, 20000)
	if done != 1 {
		t.Fatalf("done = %d", done)
	}
	// Credit for an unknown group is a no-op.
	ctl.GroupComplete(gid(9, 9), 2)
}

// Ungrouped reads flow through as unit pseudo-groups.
func TestUngroupedReads(t *testing.T) {
	w := New()
	ctl := newCtl(w)
	var done int
	ctl.OnReadDone = func(*memreq.Request, int64) { done++ }
	for i := 0; i < 4; i++ {
		ctl.AcceptRead(rd(i, 1, 0, memreq.GroupID{}, false), 0)
	}
	runUntilIdle(t, ctl, 20000)
	if done != 4 {
		t.Fatalf("done = %d", done)
	}
}

// WG-M: a remote score smaller than the local score must raise the group's
// priority so it is selected ahead of a locally cheaper group.
func TestCoordinationPrioritizes(t *testing.T) {
	net := coordnet.New(6, 4)
	w := New(WithCoordination(net, 0))
	ctl := newCtl(w)
	var order []memreq.GroupID
	ctl.OnReadDone = func(r *memreq.Request, _ int64) { order = append(order, r.Group) }

	slow, fast := gid(1, 1), gid(2, 1)
	// "slow" is a 3-miss group spanning two controllers; "fast" is a
	// 1-miss group: WG alone would pick fast first.
	for i := 0; i < 3; i++ {
		r := rd(i, 5, 0, slow, i == 2)
		r.GroupChannels = 2
		ctl.AcceptRead(r, 0)
	}
	ctl.AcceptRead(rd(4, 5, 0, fast, true), 0)
	// The other controller of the pair reports it serviced its share
	// with score 0: we are now the warp's sole blocker, so our local
	// priority must jump.
	w.DeliverScore(slow, 1, 0, 0)
	if w.Stats.CoordApplied != 1 {
		t.Fatal("coordination message not applied")
	}
	if w.Stats.CoordSoleBlocker != 1 {
		t.Fatal("sole-blocker not detected")
	}
	runUntilIdle(t, ctl, 20000)
	first := order[0]
	if first != slow {
		t.Fatalf("coordination did not promote remote-selected group: %v", order)
	}
}

// WG-M: a remote score larger than the local one must change nothing.
func TestCoordinationNoOpWhenRemoteSlower(t *testing.T) {
	net := coordnet.New(6, 4)
	w := New(WithCoordination(net, 0))
	ctl := newCtl(w)
	g := gid(1, 1)
	ctl.AcceptRead(rd(0, 5, 0, g, true), 0)
	w.DeliverScore(g, 1, 1<<20, 0)
	if w.Stats.CoordApplied != 0 {
		t.Fatal("adjustment applied for slower remote")
	}
	runUntilIdle(t, ctl, 20000)
}

// Selecting a group must broadcast its score on the coordination network.
func TestSelectionBroadcasts(t *testing.T) {
	net := coordnet.New(6, 4)
	w := New(WithCoordination(net, 2))
	ctl := newCtl(w)
	ctl.AcceptRead(rd(0, 5, 0, gid(1, 1), true), 0)
	runUntilIdle(t, ctl, 20000)
	if w.Stats.CoordSent != 1 {
		t.Fatalf("broadcasts = %d, want 1", w.Stats.CoordSent)
	}
	if got := net.Deliver(0, 1<<40); len(got) != 1 {
		t.Fatalf("controller 0 received %d messages", len(got))
	}
}

// PollCoordination drains the network ports into DeliverScore.
func TestPollCoordination(t *testing.T) {
	net := coordnet.New(2, 0)
	w0 := New(WithCoordination(net, 0))
	ctl0 := newCtl(w0)
	w1 := New(WithCoordination(net, 1))
	ctl1 := newCtl(w1)
	_ = ctl0

	g := gid(1, 1)
	// Controller 1 holds an expensive copy of g (a two-controller
	// group); controller 0 broadcasts a cheap score.
	for i := 0; i < 4; i++ {
		r := rd(i, 5, 0, g, i == 3)
		r.GroupChannels = 2
		ctl1.AcceptRead(r, 0)
	}
	net.Broadcast(0, g, 0, 0)
	w1.PollCoordination(100)
	if w1.Stats.CoordApplied != 1 {
		t.Fatal("poll did not apply message")
	}
}

// WG-Bw: a row miss must wait for MERB row-hit fillers from other groups.
func TestMERBFillerOverlapsMiss(t *testing.T) {
	w := New(WithMERB())
	ctl := newCtl(w)
	var order []uint64
	ctl.OnReadDone = func(r *memreq.Request, _ int64) { order = append(order, r.ID) }

	// Group A opens row 1 on bank 0 (2 bursts scheduled). Group B wants
	// row 9 on bank 0 (a miss). Group C has row-1 hits pending but is
	// still incomplete (its channel tag has not arrived), so the
	// transaction scheduler cannot select it as a group — only the MERB
	// filler path can pull its hits forward.
	a, b, c := gid(1, 1), gid(2, 1), gid(3, 1)
	opener := rd(0, 1, 0, a, true)
	ctl.AcceptRead(opener, 0)
	ctl.Tick(0) // dispatch opener; bank 0 sched row = 1
	missReq := rd(0, 9, 0, b, true)
	var fills []*memreq.Request
	for i := 0; i < 3; i++ {
		f := rd(0, 1, (i+1)*4, c, false)
		fills = append(fills, f)
		ctl.AcceptRead(f, 1)
	}
	ctl.AcceptRead(missReq, 1)
	runUntilIdle(t, ctl, 40000)

	posMiss := -1
	var posFills []int
	for i, id := range order {
		if id == missReq.ID {
			posMiss = i
		}
		for _, f := range fills {
			if id == f.ID {
				posFills = append(posFills, i)
			}
		}
	}
	for _, pf := range posFills {
		if pf > posMiss {
			t.Fatalf("filler finished after the miss it should hide: order %v", order)
		}
	}
	if w.Stats.MERBFillers+w.Stats.OrphanRideAlongs == 0 {
		t.Fatal("no MERB fillers recorded")
	}
}

// WG-W: with a drain imminent, a unit group jumps a cheaper-scored big
// group.
func TestWriteAwareUnitRush(t *testing.T) {
	w := New(WithMERB(), WithWriteAware())
	ctl := newCtl(w)
	var order []memreq.GroupID
	ctl.OnReadDone = func(r *memreq.Request, _ int64) { order = append(order, r.Group) }

	// Push write occupancy to highWM-8 so DrainImminent is true but the
	// drain has not fired.
	for i := 0; i < ctl.HighWM-8; i++ {
		ctl.AcceptWrite(wr(15, 3), 0)
	}
	if !ctl.DrainImminent() {
		t.Fatal("setup: drain not imminent")
	}
	big, unit := gid(1, 1), gid(2, 1)
	// Big group: row hits (cheap score). Unit group: one miss (expensive).
	ctl.AcceptRead(rd(0, 1, 0, big, false), 0)
	ctl.AcceptRead(rd(0, 1, 4, big, false), 0)
	ctl.AcceptRead(rd(0, 1, 8, big, true), 0)
	ctl.AcceptRead(rd(1, 9, 0, unit, true), 0)
	runUntilIdle(t, ctl, 60000)
	if w.Stats.UnitRushDispatches == 0 {
		t.Fatal("unit rush never used")
	}
	posUnit := -1
	for i, g := range order {
		if g == unit {
			posUnit = i
			break
		}
	}
	if posUnit != 0 {
		t.Fatalf("unit group finished at %d: %v", posUnit, order)
	}
}

// Fig 12 accounting: drains record stalled unit/orphan groups.
func TestDrainAccounting(t *testing.T) {
	w := New(WithWriteAware())
	ctl := newCtl(w)
	// A unit group pending; then flood writes to trigger a drain.
	ctl.AcceptRead(rd(0, 1, 0, gid(1, 1), true), 0)
	for i := 0; i < ctl.HighWM; i++ {
		ctl.AcceptWrite(wr(i%16, 3), 0)
	}
	// One tick arms the drain (the unit rush may dispatch the read in
	// the same tick, after the drain-start snapshot).
	ctl.Tick(0)
	if ctl.Stats.DrainsStarted != 1 {
		t.Fatalf("drains = %d", ctl.Stats.DrainsStarted)
	}
	if w.Stats.DrainStalledGroups == 0 || w.Stats.DrainStalledUnitOrOrphan == 0 {
		t.Fatalf("drain accounting: stalled=%d unit=%d",
			w.Stats.DrainStalledGroups, w.Stats.DrainStalledUnitOrOrphan)
	}
	runUntilIdle(t, ctl, 60000)
}

// Scheduler names reflect the cumulative feature set.
func TestNames(t *testing.T) {
	net := coordnet.New(6, 4)
	if New().Name() != "wg" {
		t.Fatal("wg name")
	}
	if New(WithCoordination(net, 0)).Name() != "wg-m" {
		t.Fatal("wg-m name")
	}
	if New(WithCoordination(net, 0), WithMERB()).Name() != "wg-bw" {
		t.Fatal("wg-bw name")
	}
	if New(WithCoordination(net, 0), WithMERB(), WithWriteAware()).Name() != "wg-w" {
		t.Fatal("wg-w name")
	}
}

// Conservation under random grouped traffic for every WG variant.
func TestConservationAllVariants(t *testing.T) {
	variants := map[string]func(net *coordnet.Network) *WarpScheduler{
		"wg":    func(*coordnet.Network) *WarpScheduler { return New() },
		"wg-m":  func(n *coordnet.Network) *WarpScheduler { return New(WithCoordination(n, 0)) },
		"wg-bw": func(n *coordnet.Network) *WarpScheduler { return New(WithCoordination(n, 0), WithMERB()) },
		"wg-w": func(n *coordnet.Network) *WarpScheduler {
			return New(WithCoordination(n, 0), WithMERB(), WithWriteAware())
		},
	}
	for name, mk := range variants {
		for seed := int64(0); seed < 4; seed++ {
			rng := rand.New(rand.NewSource(seed))
			net := coordnet.New(6, 4)
			w := mk(net)
			ctl := newCtl(w)
			done := map[uint64]int{}
			ctl.OnReadDone = func(r *memreq.Request, _ int64) { done[r.ID]++ }
			ctl.OnWriteDone = func(r *memreq.Request, _ int64) { done[r.ID]++ }

			var ids []uint64
			groupsLeft := 120
			var open *memreq.GroupID
			var openLeft int
			var loadSerial uint32
			now := int64(0)
			for ; now < 2000000; now++ {
				w.PollCoordination(now)
				if groupsLeft > 0 && rng.Intn(3) == 0 {
					if open == nil {
						loadSerial++
						g := gid(uint16(rng.Intn(8)), loadSerial)
						open = &g
						openLeft = rng.Intn(6) + 1
					}
					last := openLeft == 1
					r := rd(rng.Intn(16), rng.Intn(8), rng.Intn(16)*4, *open, last)
					if ctl.AcceptRead(r, now) {
						ids = append(ids, r.ID)
						openLeft--
						if last {
							open = nil
							groupsLeft--
						}
					}
				}
				if groupsLeft > 0 && rng.Intn(8) == 0 {
					wreq := wr(rng.Intn(16), rng.Intn(8))
					if ctl.AcceptWrite(wreq, now) {
						ids = append(ids, wreq.ID)
					}
				}
				ctl.Tick(now)
				if groupsLeft == 0 && open == nil && ctl.Idle() {
					break
				}
			}
			if !ctl.Idle() {
				t.Fatalf("%s seed %d: stuck with %d pending", name, seed, w.Pending())
			}
			for _, id := range ids {
				if done[id] != 1 {
					t.Fatalf("%s seed %d: req %d completed %d times", name, seed, id, done[id])
				}
			}
		}
	}
}

func TestMERBTableForDocs(t *testing.T) {
	tab := MERBTableForDocs(6)
	want := []int{31, 20, 10, 7, 5, 5}
	for i := range want {
		if tab[i] != want[i] {
			t.Fatalf("tab = %v", tab)
		}
	}
}

// Ablation: CountScore ranks a 1-request miss group over a 3-request
// all-hit group, unlike the bank-aware score.
func TestCountScoreAblation(t *testing.T) {
	w := New()
	w.CountScore = true
	ctl := newCtl(w)
	var order []memreq.GroupID
	ctl.OnReadDone = func(r *memreq.Request, _ int64) { order = append(order, r.Group) }
	// Everything on one bank so the per-bank FIFO makes completion order
	// equal dispatch order. The opener leaves row 1 open; "hits" is a
	// 3-request all-hit group, "unit" a 1-request row miss. Bank-aware
	// scoring prefers the hit group; count-only must prefer the smaller.
	opener := gid(0, 1)
	ctl.AcceptRead(rd(0, 1, 0, opener, true), 0)
	hits, unit := gid(1, 1), gid(2, 1)
	ctl.AcceptRead(rd(0, 1, 4, hits, false), 1)
	ctl.AcceptRead(rd(0, 1, 8, hits, false), 1)
	ctl.AcceptRead(rd(0, 1, 12, hits, true), 1)
	ctl.AcceptRead(rd(0, 9, 0, unit, true), 2)
	runUntilIdle(t, ctl, 40000)
	posUnit, posHits := -1, -1
	for i, g := range order {
		if g == unit && posUnit == -1 {
			posUnit = i
		}
		if g == hits && posHits == -1 {
			posHits = i
		}
	}
	if posUnit > posHits {
		t.Fatalf("count-score did not prefer the smaller group: %v", order)
	}
}

// Ablation: NoOrphanControl lets a miss strand 1-2 row hits.
func TestNoOrphanControlAblation(t *testing.T) {
	w := New(WithMERB())
	w.NoOrphanControl = true
	ctl := newCtl(w)
	ctl.AcceptRead(rd(0, 1, 0, gid(1, 1), true), 0)
	ctl.Tick(0)
	// Two pending hits (below MERB? no - MERB for 1 busy bank is 31, so
	// the fillers still go; force the counter past MERB by making many
	// banks busy). Simplest check: the stat stays zero when the rule is
	// disabled even in configurations where it would fire.
	for i := 0; i < 2; i++ {
		ctl.AcceptRead(rd(0, 1, (i+1)*4, gid(3, 1), false), 1)
	}
	ctl.AcceptRead(rd(0, 9, 0, gid(2, 1), true), 1)
	runUntilIdle(t, ctl, 40000)
	if w.Stats.OrphanRideAlongs != 0 {
		t.Fatalf("orphan control fired despite ablation (%d)", w.Stats.OrphanRideAlongs)
	}
}

// Property: under random enqueue/complete/dispatch traffic, the scheduler's
// internal counts never go negative and Pending always equals the sum of
// group pending lists.
func TestSchedulerCountInvariant(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		rng := rand.New(rand.NewSource(seed + 100))
		w := New(WithMERB())
		ctl := newCtl(w)
		var serial uint32
		for now := int64(0); now < 30000; now++ {
			if rng.Intn(4) == 0 {
				serial++
				n := rng.Intn(4) + 1
				for i := 0; i < n; i++ {
					ctl.AcceptRead(rd(rng.Intn(16), rng.Intn(6), rng.Intn(16)*4,
						gid(uint16(rng.Intn(4)), serial), i == n-1), now)
				}
			}
			ctl.Tick(now)
			sum := 0
			for _, g := range w.order {
				sum += len(g.pending)
			}
			if sum != w.Pending() {
				t.Fatalf("seed %d t=%d: pending %d != sum %d", seed, now, w.Pending(), sum)
			}
			if w.Pending() < 0 {
				t.Fatalf("negative pending")
			}
		}
	}
}

// Shared-data priority: a demand notification lowers the group's score and
// records the event.
func TestSharedPriority(t *testing.T) {
	w := New(WithSharedPriority())
	ctl := newCtl(w)
	_ = ctl
	g := gid(1, 1)
	ctl.AcceptRead(rd(0, 5, 0, g, false), 0)
	before := w.score(w.groups[g], 0)
	w.OnSharedDemand(g, 0)
	after := w.score(w.groups[g], 0)
	if after >= before {
		t.Fatalf("shared demand did not lower score: %d -> %d", before, after)
	}
	if w.Stats.SharedDemands != 1 {
		t.Fatal("shared demand not recorded")
	}
	// Unknown group and disabled flag are no-ops.
	w.OnSharedDemand(gid(9, 9), 0)
	w2 := New()
	w2.OnSharedDemand(g, 0)
	if w2.Stats.SharedDemands != 0 {
		t.Fatal("disabled scheduler recorded shared demand")
	}
}

func TestSharedSchedulerName(t *testing.T) {
	if New(WithSharedPriority()).Name() != "wg-sh" {
		t.Fatal("wg-sh name")
	}
}

// Scheduler overhead microbenchmark: one NextRead decision over a loaded
// sorter (64 pending requests across 16 groups).
func BenchmarkWarpSchedulerNextRead(b *testing.B) {
	w := New(WithMERB())
	ctl := newCtl(w)
	var serial uint32
	refill := func() {
		for w.Pending() < 48 {
			serial++
			n := int(serial%4) + 1
			for i := 0; i < n; i++ {
				ctl.AcceptRead(rd(int(serial)%16, int(serial)%8, i*4,
					gid(uint16(serial%8), serial), i == n-1), 0)
			}
		}
	}
	refill()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctl.Tick(int64(i))
		if w.Pending() < 16 {
			b.StopTimer()
			refill()
			b.StartTimer()
		}
	}
}
