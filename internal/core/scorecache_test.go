package core

import (
	"math/rand"
	"testing"

	"dramlat/internal/memreq"
)

// Property: at any point in any random schedule, the incrementally cached
// group score must equal the brute-force scan. The NoScoreCache knob IS
// the brute path (it forces refreshScoreCache on every query), so querying
// the cached value first and the forced recomputation second exposes any
// missed invalidation: a stale-valid cache answers before the brute pass
// can repair it.
func TestScoreCacheMatchesBruteForce(t *testing.T) {
	variants := map[string]func() *WarpScheduler{
		"wg":    func() *WarpScheduler { return New() },
		"wg-bw": func() *WarpScheduler { return New(WithMERB()) },
		"wg-w":  func() *WarpScheduler { return New(WithMERB(), WithWriteAware()) },
	}
	for name, mk := range variants {
		for seed := int64(0); seed < 4; seed++ {
			rng := rand.New(rand.NewSource(seed*31 + 7))
			w := mk()
			ctl := newCtl(w)
			var serial uint32
			var openGroups []memreq.GroupID
			for now := int64(0); now < 20000; now++ {
				if rng.Intn(4) == 0 {
					serial++
					g := gid(uint16(rng.Intn(6)), serial)
					n := rng.Intn(5) + 1
					closed := rng.Intn(3) != 0 // some groups stay incomplete
					for i := 0; i < n; i++ {
						ctl.AcceptRead(rd(rng.Intn(16), rng.Intn(6), rng.Intn(16)*4,
							g, closed && i == n-1), now)
					}
					if !closed {
						openGroups = append(openGroups, g)
					}
				}
				if rng.Intn(16) == 0 {
					ctl.AcceptWrite(wr(rng.Intn(16), rng.Intn(6)), now)
				}
				// Occasionally complete an open group via the L2 credit path.
				if len(openGroups) > 0 && rng.Intn(8) == 0 {
					i := rng.Intn(len(openGroups))
					ctl.GroupComplete(openGroups[i], now)
					openGroups = append(openGroups[:i], openGroups[i+1:]...)
				}
				ctl.Tick(now)
				for _, g := range w.order {
					cachedScore, cachedHits := w.scoreAndHits(g, now)
					w.NoScoreCache = true
					bruteScore, bruteHits := w.scoreAndHits(g, now)
					w.NoScoreCache = false
					if cachedScore != bruteScore || cachedHits != bruteHits {
						t.Fatalf("%s seed %d t=%d group %v: cached (%d,%d) != brute (%d,%d)",
							name, seed, now, g.id, cachedScore, cachedHits, bruteScore, bruteHits)
					}
				}
			}
		}
	}
}

// The cache must be behaviorally invisible: a cached and an uncached
// scheduler fed identical traffic must produce identical completion
// sequences and selection counts.
func TestScoreCacheLockstep(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		rng := rand.New(rand.NewSource(seed + 400))
		wc, wn := New(WithMERB()), New(WithMERB())
		wn.NoScoreCache = true
		cc, cn := newCtl(wc), newCtl(wn)
		var orderC, orderN []uint64
		cc.OnReadDone = func(r *memreq.Request, _ int64) { orderC = append(orderC, r.ID) }
		cn.OnReadDone = func(r *memreq.Request, _ int64) { orderN = append(orderN, r.ID) }

		var serial uint32
		for now := int64(0); now < 50000; now++ {
			if rng.Intn(4) == 0 {
				serial++
				g := gid(uint16(rng.Intn(6)), serial)
				n := rng.Intn(5) + 1
				for i := 0; i < n; i++ {
					bank, row, col := rng.Intn(16), rng.Intn(6), rng.Intn(16)*4
					last := i == n-1
					// Build two distinct request values with the same identity
					// so the controllers cannot alias state through pointers.
					ra := rd(bank, row, col, g, last)
					rb := *ra
					okA := cc.AcceptRead(ra, now)
					okB := cn.AcceptRead(&rb, now)
					if okA != okB {
						t.Fatalf("seed %d t=%d: accept diverged (%v vs %v)", seed, now, okA, okB)
					}
				}
			}
			cc.Tick(now)
			cn.Tick(now)
		}
		if len(orderC) != len(orderN) {
			t.Fatalf("seed %d: %d vs %d completions", seed, len(orderC), len(orderN))
		}
		for i := range orderC {
			if orderC[i] != orderN[i] {
				t.Fatalf("seed %d: completion order diverges at %d: %d vs %d",
					seed, i, orderC[i], orderN[i])
			}
		}
		if wc.Stats.GroupsSelected != wn.Stats.GroupsSelected {
			t.Fatalf("seed %d: selections %d vs %d", seed,
				wc.Stats.GroupsSelected, wn.Stats.GroupsSelected)
		}
	}
}
