package atomicio

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCommitWritesFileAtomically(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	// A previous good artifact must survive until the new one commits.
	if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}

	w := Create(path)
	if _, err := w.Write([]byte(`{"a":`)); err != nil {
		t.Fatal(err)
	}
	// Mid-render: destination untouched.
	if b, _ := os.ReadFile(path); string(b) != "old" {
		t.Fatalf("destination changed before commit: %q", b)
	}
	if _, err := w.Write([]byte(`1}`)); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil || string(b) != `{"a":1}` {
		t.Fatalf("committed content %q err %v", b, err)
	}
	// No stray temp files.
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Errorf("stray temp file %s", e.Name())
		}
	}
	if err := w.Commit(); err == nil {
		t.Fatal("double commit succeeded")
	}
}

func TestAbandonedWriterLeavesNothing(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.csv")
	w := Create(path)
	w.Write([]byte("partial render then process death"))
	// Never committed: destination must not exist.
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("uncommitted writer touched the destination: %v", err)
	}
	if w.Len() == 0 {
		t.Fatal("buffer empty")
	}
}

func TestSyncDir(t *testing.T) {
	// The happy path runs inside Commit already; pin the error shape for
	// a directory that vanished between rename and sync.
	if err := syncDir(filepath.Join(t.TempDir(), "gone")); err == nil {
		t.Fatal("syncDir on a missing directory succeeded")
	}
	if err := syncDir(t.TempDir()); err != nil {
		t.Fatalf("syncDir on a real directory: %v", err)
	}
}

func TestCommitDurableAfterRename(t *testing.T) {
	// Commit must fsync file and directory without erroring on a normal
	// filesystem, and the content must be fully visible afterwards.
	path := filepath.Join(t.TempDir(), "nested")
	if err := os.Mkdir(path, 0o755); err != nil {
		t.Fatal(err)
	}
	dest := filepath.Join(path, "artifact.jsonl")
	w := Create(dest)
	w.Write([]byte("line1\nline2\n"))
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(dest)
	if err != nil || string(b) != "line1\nline2\n" {
		t.Fatalf("content %q err %v", b, err)
	}
}

func TestCreateStdin(t *testing.T) {
	for _, p := range []string{"-", ""} {
		w := Create(p)
		if w.path != "" {
			t.Fatalf("Create(%q) path %q", p, w.path)
		}
	}
}
