// Package atomicio gives CLI output all-or-nothing semantics: renderers
// write into a buffer, and Commit lands the whole thing in one step — a
// single Write for stdout, a temp-file rename for paths. A SIGINT (or
// any error exit) between render and commit therefore leaves either the
// complete artifact or nothing: no truncated last line for a consumer
// to choke on, and never a half-written file shadowing a good one.
package atomicio

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
)

// Writer buffers output destined for a file or stdout. The zero value
// is not usable; see Create.
type Writer struct {
	buf       bytes.Buffer
	path      string // "" means stdout
	committed bool
}

// Create returns a writer that will commit to path; "-" or "" selects
// stdout. Nothing touches the destination until Commit, so the old
// artifact (if any) stays whole while the new one renders.
func Create(path string) *Writer {
	if path == "-" {
		path = ""
	}
	return &Writer{path: path}
}

// Write buffers p; it cannot fail.
func (w *Writer) Write(p []byte) (int, error) {
	return w.buf.Write(p)
}

// Commit lands the buffered output: one os.Stdout.Write for stdout, or
// an atomic temp-file + rename next to the destination path, fsynced
// so the artifact survives power loss — the file before the rename, the
// containing directory after it (the rename itself lives in directory
// metadata). Calling Commit twice is an error; a writer that is never
// committed writes nothing.
func (w *Writer) Commit() error {
	if w.committed {
		return fmt.Errorf("atomicio: already committed")
	}
	w.committed = true
	if w.path == "" {
		_, err := os.Stdout.Write(w.buf.Bytes())
		return err
	}
	dir := filepath.Dir(w.path)
	tmp, err := os.CreateTemp(dir, filepath.Base(w.path)+".tmp*")
	if err != nil {
		return fmt.Errorf("atomicio: %w", err)
	}
	if _, err := tmp.Write(w.buf.Bytes()); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("atomicio: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("atomicio: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("atomicio: %w", err)
	}
	if err := os.Rename(tmp.Name(), w.path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("atomicio: %w", err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed entry is durable. Some
// filesystems reject fsync on directories; that is not a data-loss
// condition, so only open errors are reported.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("atomicio: %w", err)
	}
	defer d.Close()
	d.Sync()
	return nil
}

// Len reports the bytes buffered so far.
func (w *Writer) Len() int { return w.buf.Len() }
