package telemetry

// The sampler stores cumulative counters at each snapshot and computes
// per-interval deltas at export time, so a sample costs a few dozen copies
// and no division on the simulation path.

// ChannelSample is one per-channel snapshot. Queue depths and Draining are
// instantaneous gauges; the counter fields are cumulative since tick 0
// (mirroring dram.Stats), turned into per-interval deltas by
// ChannelIntervals.
type ChannelSample struct {
	Tick    int64
	Channel int

	ReadQ      int  // reads buffered in the transaction scheduler
	WriteQ     int  // writes buffered in the write queue
	Draining   bool // write drain engaged
	QueuedTxns int  // transactions resident in per-bank command queues

	ACTs, PREs         int64
	RDBursts, WRBursts int64
	HitTxns, MissTxns  int64
	BusyTicks          int64
	DrainsStarted      int64
}

// SMSample is one per-SM snapshot of cumulative issue/stall counters. The
// Idle* breakdown is populated only when stall classification is on
// (sampling enabled); IdleOther additionally absorbs compute-latency
// bubbles.
type SMSample struct {
	Tick int64
	SM   int

	Instr   int64
	Active  int64
	IdleMem int64 // no warp ready: at least one warp blocked on memory
	IdleLSU int64 // no warp ready: LSU replay queue backed up
	Idle    int64 // total idle (IdleMem + IdleLSU + other)
}

// GlobalSample is one machine-wide snapshot.
type GlobalSample struct {
	Tick int64
	// OutstandingGroups is the number of warp-groups in flight in the
	// memory system at the sample tick.
	OutstandingGroups int
	// CompletedGroups is cumulative.
	CompletedGroups int
}

// Sampler accumulates interval snapshots. internal/gpu owns the cadence:
// it appends one ChannelSample per channel, one SMSample per SM and one
// GlobalSample every Every ticks (plus a final sample at run end).
type Sampler struct {
	Every int64

	Channels []ChannelSample
	SMs      []SMSample
	Globals  []GlobalSample
}

// ChannelInterval is the delta between two consecutive snapshots of one
// channel.
type ChannelInterval struct {
	Start, End int64
	Channel    int

	ReadQ      int // gauges at End
	WriteQ     int
	Draining   bool
	QueuedTxns int

	ACTs, PREs         int64
	RDBursts, WRBursts int64
	HitTxns, MissTxns  int64
	DrainsStarted      int64
	BusyFrac           float64 // data-bus busy fraction over the interval
	RowHitRate         float64 // HitTxns / (HitTxns + MissTxns), 0 if none
}

// SMInterval is the delta between two consecutive snapshots of one SM.
type SMInterval struct {
	Start, End int64
	SM         int

	Instr   int64
	Active  int64
	IdleMem int64
	IdleLSU int64
	Idle    int64
}

// ChannelIntervals converts the stored snapshots into per-interval deltas,
// ordered by (start tick, channel).
func (s *Sampler) ChannelIntervals() []ChannelInterval {
	if s == nil {
		return nil
	}
	prev := map[int]ChannelSample{}
	var out []ChannelInterval
	for _, cur := range s.Channels {
		p, ok := prev[cur.Channel]
		prev[cur.Channel] = cur
		if !ok || cur.Tick <= p.Tick {
			continue
		}
		iv := ChannelInterval{
			Start: p.Tick, End: cur.Tick, Channel: cur.Channel,
			ReadQ: cur.ReadQ, WriteQ: cur.WriteQ,
			Draining: cur.Draining, QueuedTxns: cur.QueuedTxns,
			ACTs: cur.ACTs - p.ACTs, PREs: cur.PREs - p.PREs,
			RDBursts: cur.RDBursts - p.RDBursts, WRBursts: cur.WRBursts - p.WRBursts,
			HitTxns: cur.HitTxns - p.HitTxns, MissTxns: cur.MissTxns - p.MissTxns,
			DrainsStarted: cur.DrainsStarted - p.DrainsStarted,
		}
		iv.BusyFrac = float64(cur.BusyTicks-p.BusyTicks) / float64(cur.Tick-p.Tick)
		if tot := iv.HitTxns + iv.MissTxns; tot > 0 {
			iv.RowHitRate = float64(iv.HitTxns) / float64(tot)
		}
		out = append(out, iv)
	}
	return out
}

// SMIntervals converts the stored SM snapshots into per-interval deltas.
func (s *Sampler) SMIntervals() []SMInterval {
	if s == nil {
		return nil
	}
	prev := map[int]SMSample{}
	var out []SMInterval
	for _, cur := range s.SMs {
		p, ok := prev[cur.SM]
		prev[cur.SM] = cur
		if !ok || cur.Tick <= p.Tick {
			continue
		}
		out = append(out, SMInterval{
			Start: p.Tick, End: cur.Tick, SM: cur.SM,
			Instr: cur.Instr - p.Instr, Active: cur.Active - p.Active,
			IdleMem: cur.IdleMem - p.IdleMem, IdleLSU: cur.IdleLSU - p.IdleLSU,
			Idle: cur.Idle - p.Idle,
		})
	}
	return out
}
