package telemetry

import (
	"fmt"
	"math"
	"sort"

	"dramlat/internal/memreq"
)

// ReqTrace is the reconstructed life of one DRAM read request.
type ReqTrace struct {
	ID      uint64
	Channel int
	Bank    int
	Row     int
	Enq     int64   // entered the controller read queue (-1 unseen)
	Deq     int64   // dispatched to the DRAM command queues (-1 unseen)
	Bursts  []int64 // RD command ticks
	Done    int64   // data transfer finished (-1 unseen)
	Acts    []int64 // ACT commands on (channel, bank) between Deq and Done
}

// GroupTrace is the reconstructed life of one warp-group.
type GroupTrace struct {
	ID      memreq.GroupID
	Issue   int64 // -1 when the issue event is missing (truncated trace)
	Unblock int64 // -1 when still blocked at trace end
	Lines   int
	Sent    int
	// Dones are the DRAM completion ticks credited to this group, in
	// timestamp order — exactly the collector's OnDRAMDone inputs, so
	// Gap() matches stats.GroupRec's divergence window.
	Dones []int64
	Reqs  []*ReqTrace // requests that reached a controller, enq order
}

// Gap returns the DRAM divergence gap (last − first completion), or -1
// for groups with fewer than two DRAM-serviced requests.
func (g *GroupTrace) Gap() int64 {
	if len(g.Dones) < 2 {
		return -1
	}
	return g.Dones[len(g.Dones)-1] - g.Dones[0]
}

// Channels returns the number of distinct channels the group's traced
// requests reached.
func (g *GroupTrace) Channels() int {
	seen := map[int]bool{}
	for _, r := range g.Reqs {
		seen[r.Channel] = true
	}
	return len(seen)
}

// Analysis is the per-group reconstruction of an event stream.
type Analysis struct {
	Groups []*GroupTrace // in first-appearance order

	byID  map[memreq.GroupID]*GroupTrace
	byReq map[uint64]*ReqTrace
}

// Analyze reconstructs warp-group and request lifetimes from an event
// stream (any order; it sorts a copy first).
func Analyze(events []Event) *Analysis {
	sorted := append([]Event(nil), events...)
	SortEvents(sorted)
	a := &Analysis{
		byID:  make(map[memreq.GroupID]*GroupTrace),
		byReq: make(map[uint64]*ReqTrace),
	}
	// inflight indexes dispatched-but-incomplete requests per (ch, bank)
	// so ACT attribution does not scan every request.
	inflight := map[[2]int][]*ReqTrace{}
	group := func(id memreq.GroupID) *GroupTrace {
		g, ok := a.byID[id]
		if !ok {
			g = &GroupTrace{ID: id, Issue: -1, Unblock: -1}
			a.byID[id] = g
			a.Groups = append(a.Groups, g)
		}
		return g
	}
	for _, e := range sorted {
		id := e.GroupID()
		switch e.Kind {
		case EvLoadIssue:
			g := group(id)
			g.Issue, g.Lines, g.Sent = e.Tick, int(e.A), int(e.B)
		case EvLoadUnblock:
			group(id).Unblock = e.Tick
		case EvEnqRead:
			if !id.Valid() {
				continue // ungrouped read (none today, but be safe)
			}
			r := &ReqTrace{
				ID: e.Req, Channel: int(e.Channel), Bank: int(e.Bank),
				Row: int(e.Row), Enq: e.Tick, Deq: -1, Done: -1,
			}
			a.byReq[e.Req] = r
			g := group(id)
			g.Reqs = append(g.Reqs, r)
		case EvDeqRead:
			if r := a.byReq[e.Req]; r != nil {
				r.Deq = e.Tick
				k := [2]int{r.Channel, r.Bank}
				inflight[k] = append(inflight[k], r)
			}
		case EvRD:
			if r := a.byReq[e.Req]; r != nil {
				r.Bursts = append(r.Bursts, e.Tick)
			}
		case EvACT:
			// Attribute the activate to the dispatched-but-incomplete
			// requests waiting on this (channel, bank) row: it is the
			// row open they waited for. Completed entries compact away.
			k := [2]int{int(e.Channel), int(e.Bank)}
			live := inflight[k][:0]
			for _, r := range inflight[k] {
				if r.Done >= 0 {
					continue
				}
				live = append(live, r)
				if int32(r.Row) == e.Row {
					r.Acts = append(r.Acts, e.Tick)
				}
			}
			inflight[k] = live
		case EvDone:
			if !id.Valid() {
				continue
			}
			g := group(id)
			g.Dones = append(g.Dones, e.Tick)
			if r := a.byReq[e.Req]; r != nil && r.Done < 0 {
				r.Done = e.Tick
			}
		}
	}
	return a
}

// DivergenceGap returns the mean DRAM divergence gap over groups with at
// least two DRAM completions — the trace-side reproduction of
// stats.Summary.DivergenceGap (they agree on drained runs, where every
// traced group finalizes).
func (a *Analysis) DivergenceGap() float64 {
	var sum float64
	var n int64
	for _, g := range a.Groups {
		if gap := g.Gap(); gap >= 0 {
			sum += float64(gap)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Gaps returns the sorted divergence gaps of all multi-completion groups.
func (a *Analysis) Gaps() []float64 {
	var out []float64
	for _, g := range a.Groups {
		if gap := g.Gap(); gap >= 0 {
			out = append(out, float64(gap))
		}
	}
	sort.Float64s(out)
	return out
}

// Stragglers returns the k groups with the largest divergence gaps,
// largest first.
func (a *Analysis) Stragglers(k int) []*GroupTrace {
	multi := make([]*GroupTrace, 0, len(a.Groups))
	for _, g := range a.Groups {
		if g.Gap() >= 0 {
			multi = append(multi, g)
		}
	}
	sort.SliceStable(multi, func(i, j int) bool { return multi[i].Gap() > multi[j].Gap() })
	if k > len(multi) {
		k = len(multi)
	}
	return multi[:k]
}

// HistBin is one bucket of the divergence-gap histogram.
type HistBin struct {
	Lo, Hi int64 // [Lo, Hi) in ticks; the last bin is open-ended
	Count  int
}

// GapHistogram buckets the divergence gaps into power-of-two bins
// starting at [0,64): the Fig 10 time-gap distribution.
func (a *Analysis) GapHistogram() []HistBin {
	gaps := a.Gaps()
	if len(gaps) == 0 {
		return nil
	}
	maxGap := gaps[len(gaps)-1]
	var bins []HistBin
	lo := int64(0)
	hi := int64(64)
	for {
		bins = append(bins, HistBin{Lo: lo, Hi: hi})
		if float64(hi) > maxGap {
			break
		}
		lo, hi = hi, hi*2
	}
	for _, g := range gaps {
		idx := 0
		for i := range bins {
			if g < float64(bins[i].Hi) {
				idx = i
				break
			}
		}
		bins[idx].Count++
	}
	return bins
}

// GapPercentile returns the p-th percentile (0..100, linearly
// interpolated between ranks) of the divergence-gap distribution.
func (a *Analysis) GapPercentile(p float64) float64 {
	return PercentileOf(a.Gaps(), p)
}

// PercentileOf computes the p-th percentile of a sorted sample with
// linear interpolation between closest ranks (the same definition as
// stats.Collector.Percentile).
func PercentileOf(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo] + (rank-float64(lo))*(sorted[lo+1]-sorted[lo])
}

// Summary returns a one-line digest of the analysis for logs.
func (a *Analysis) Summary() string {
	return fmt.Sprintf("%d warp-groups, %d multi-completion, mean gap %.1f ticks",
		len(a.Groups), len(a.Gaps()), a.DivergenceGap())
}
