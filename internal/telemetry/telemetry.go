// Package telemetry is the simulator's observability layer: a cycle-level
// event tracer and an interval time-series sampler, both designed to cost
// one predictable nil-check branch per instrumentation site when disabled.
//
// The paper's whole subject is *when* things happen — which bank makes a
// warp-group's straggler request late (Fig 3), how MERB streaks trade row
// bandwidth against divergence (Section IV-D), how write drains stall
// warp-groups (Fig 12) — yet the simulator's Results struct only reports
// end-of-run scalars. This package records the time-resolved raw material:
//
//   - Tracer: typed, timestamped events (warp-load issue/unblock, request
//     enqueue/dequeue per controller, DRAM ACT/PRE/RD/WR commands, MERB
//     streak begin/end, write-drain begin/end, DRAM request completion)
//     in a bounded ring buffer, exportable as JSONL or as Chrome
//     trace_event JSON that loads directly in chrome://tracing / Perfetto.
//   - Sampler: per-channel, per-SM and global gauges snapshotted every N
//     ticks (queue depths, row hit/miss deltas, bus busy fraction,
//     outstanding warp-groups, stall-reason breakdown), exportable as CSV
//     or consumed programmatically via the *Intervals helpers.
//
// Components hold a *Tracer probe that is nil when tracing is disabled;
// every event site is guarded by `if probe != nil` so a disabled build
// pays one branch and no call. internal/gpu owns the sampling cadence and
// pushes rows into the Sampler, so a run without sampling pays one branch
// per tick. The overhead contract is pinned by BenchmarkRunTelemetryOff.
package telemetry

// Options selects which telemetry subsystems a run enables. The zero
// value disables everything (and makes New return nil, so probes stay
// nil-check cheap).
type Options struct {
	// Events enables the event tracer.
	Events bool
	// EventCap bounds the tracer ring buffer; when full, the oldest
	// events are overwritten and Tracer.Dropped counts the loss.
	// 0 means DefaultEventCap.
	EventCap int
	// SampleEvery enables the interval sampler with the given period in
	// ticks; 0 disables sampling.
	SampleEvery int64
}

// DefaultEventCap is the tracer ring capacity when Options.EventCap is 0:
// large enough for every event of the small-scale runs used for analysis
// (~50 bytes/event, so the default is ~50 MB when completely full).
const DefaultEventCap = 1 << 20

// Enabled reports whether any subsystem is on.
func (o Options) Enabled() bool { return o.Events || o.SampleEvery > 0 }

// Telemetry bundles the live subsystems of one run. Either field may be
// nil (that subsystem disabled).
type Telemetry struct {
	Tracer  *Tracer
	Sampler *Sampler
}

// New builds the subsystems selected by o, or returns nil when o enables
// nothing — callers thread the nil straight into the probe fields.
func New(o Options) *Telemetry {
	if !o.Enabled() {
		return nil
	}
	t := &Telemetry{}
	if o.Events {
		capacity := o.EventCap
		if capacity <= 0 {
			capacity = DefaultEventCap
		}
		t.Tracer = NewTracer(capacity)
	}
	if o.SampleEvery > 0 {
		t.Sampler = &Sampler{Every: o.SampleEvery}
	}
	return t
}
