package telemetry

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// SortEvents stable-sorts events by timestamp in place. The tracer records
// DRAM completions with future (data-transfer-end) timestamps, so the raw
// recording order is not timestamp-sorted; stability preserves causal
// recording order among same-tick events.
func SortEvents(events []Event) {
	sort.SliceStable(events, func(i, j int) bool { return events[i].Tick < events[j].Tick })
}

// jsonEvent is the JSONL wire schema: one object per line, the kind as a
// stable string name, all coordinates explicit (-1 = not applicable).
type jsonEvent struct {
	Tick    int64  `json:"t"`
	Kind    string `json:"ev"`
	Channel int16  `json:"ch"`
	Bank    int16  `json:"bank"`
	Row     int32  `json:"row"`
	SM      int32  `json:"sm"`
	Warp    int32  `json:"warp"`
	Load    uint32 `json:"load"`
	Req     uint64 `json:"req"`
	A       int64  `json:"a"`
	B       int64  `json:"b"`
}

// WriteJSONL writes events as JSON Lines, sorted by timestamp.
func WriteJSONL(w io.Writer, events []Event) error {
	sorted := append([]Event(nil), events...)
	SortEvents(sorted)
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range sorted {
		je := jsonEvent{
			Tick: e.Tick, Kind: e.Kind.String(),
			Channel: e.Channel, Bank: e.Bank, Row: e.Row,
			SM: e.SM, Warp: e.Warp, Load: e.Load, Req: e.Req,
			A: e.A, B: e.B,
		}
		if err := enc.Encode(je); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a JSONL event stream produced by WriteJSONL.
func ReadJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var je jsonEvent
		if err := json.Unmarshal(b, &je); err != nil {
			return nil, fmt.Errorf("telemetry: line %d: %w", line, err)
		}
		k, err := ParseKind(je.Kind)
		if err != nil {
			return nil, fmt.Errorf("telemetry: line %d: %w", line, err)
		}
		out = append(out, Event{
			Tick: je.Tick, Kind: k,
			Channel: je.Channel, Bank: je.Bank, Row: je.Row,
			SM: je.SM, Warp: je.Warp, Load: je.Load, Req: je.Req,
			A: je.A, B: je.B,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Chrome trace_event mapping (the JSON Object Format, loadable in
// chrome://tracing and Perfetto):
//
//   - pid 1 ("SMs"): one thread per warp; warp-loads are B/E duration
//     spans named ld<serial>.
//   - pid 100+ch ("DRAM ch<N>"): one thread per bank carrying ACT/PRE/
//     RD/WR instants and merb-streak B/E spans; thread chromeCtlTID
//     ("controller") carries write-drain B/E spans and dram_done instants;
//     read/write queue depths are counter events.
//
// One simulator tick is rendered as one microsecond.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

const (
	chromeSMPid    = 1
	chromeDRAMPid  = 100 // + channel
	chromeCtlTID   = 999 // controller-level thread within a DRAM process
	chromeWarpsPer = 1024
)

func chromeMeta(name string, pid, tid int, value string) chromeEvent {
	args := map[string]any{"name": value}
	return chromeEvent{Name: name, Ph: "M", Pid: pid, Tid: tid, Args: args}
}

// WriteChromeTrace renders events as Chrome trace_event JSON.
func WriteChromeTrace(w io.Writer, events []Event) error {
	sorted := append([]Event(nil), events...)
	SortEvents(sorted)

	var out []chromeEvent
	out = append(out, chromeMeta("process_name", chromeSMPid, 0, "SMs"))
	seenCh := map[int16]bool{}
	seenWarp := map[int32]bool{}
	seenBank := map[int32]bool{}

	for _, e := range sorted {
		if e.Channel >= 0 && !seenCh[e.Channel] {
			seenCh[e.Channel] = true
			pid := chromeDRAMPid + int(e.Channel)
			out = append(out,
				chromeMeta("process_name", pid, 0, fmt.Sprintf("DRAM ch%d", e.Channel)),
				chromeMeta("thread_name", pid, chromeCtlTID, "controller"))
		}
		if e.Channel >= 0 && e.Bank >= 0 {
			key := int32(e.Channel)<<16 | int32(e.Bank)
			if !seenBank[key] {
				seenBank[key] = true
				out = append(out, chromeMeta("thread_name",
					chromeDRAMPid+int(e.Channel), int(e.Bank),
					fmt.Sprintf("bank %d", e.Bank)))
			}
		}
		if e.SM >= 0 && (e.Kind == EvLoadIssue || e.Kind == EvLoadUnblock) {
			tid := e.SM*chromeWarpsPer + e.Warp
			if !seenWarp[tid] {
				seenWarp[tid] = true
				out = append(out, chromeMeta("thread_name", chromeSMPid, int(tid),
					fmt.Sprintf("sm%d.w%d", e.SM, e.Warp)))
			}
		}

		switch e.Kind {
		case EvLoadIssue:
			out = append(out, chromeEvent{
				Name: "ld" + strconv.FormatUint(uint64(e.Load), 10),
				Cat:  "warp", Ph: "B", Ts: e.Tick,
				Pid: chromeSMPid, Tid: int(e.SM*chromeWarpsPer + e.Warp),
				Args: map[string]any{"lines": e.A, "sent": e.B},
			})
		case EvLoadUnblock:
			out = append(out, chromeEvent{
				Name: "ld" + strconv.FormatUint(uint64(e.Load), 10),
				Cat:  "warp", Ph: "E", Ts: e.Tick,
				Pid: chromeSMPid, Tid: int(e.SM*chromeWarpsPer + e.Warp),
			})
		case EvACT, EvPRE, EvRD, EvWR:
			args := map[string]any{}
			if e.Row >= 0 {
				args["row"] = e.Row
			}
			if e.Req != 0 {
				args["req"] = e.Req
			}
			out = append(out, chromeEvent{
				Name: e.Kind.String(), Cat: "dram", Ph: "i", S: "t",
				Ts: e.Tick, Pid: chromeDRAMPid + int(e.Channel), Tid: int(e.Bank),
				Args: args,
			})
		case EvMERBBegin:
			out = append(out, chromeEvent{
				Name: "merb-streak", Cat: "dram", Ph: "B", Ts: e.Tick,
				Pid: chromeDRAMPid + int(e.Channel), Tid: int(e.Bank),
				Args: map[string]any{"row": e.Row},
			})
		case EvMERBEnd:
			out = append(out, chromeEvent{
				Name: "merb-streak", Cat: "dram", Ph: "E", Ts: e.Tick,
				Pid: chromeDRAMPid + int(e.Channel), Tid: int(e.Bank),
			})
		case EvDrainBegin:
			out = append(out, chromeEvent{
				Name: "write-drain", Cat: "mc", Ph: "B", Ts: e.Tick,
				Pid: chromeDRAMPid + int(e.Channel), Tid: chromeCtlTID,
				Args: map[string]any{"write_q": e.A},
			})
		case EvDrainEnd:
			out = append(out, chromeEvent{
				Name: "write-drain", Cat: "mc", Ph: "E", Ts: e.Tick,
				Pid: chromeDRAMPid + int(e.Channel), Tid: chromeCtlTID,
			})
		case EvEnqRead, EvDeqRead:
			out = append(out, chromeEvent{
				Name: "read_q", Cat: "mc", Ph: "C", Ts: e.Tick,
				Pid: chromeDRAMPid + int(e.Channel), Tid: 0,
				Args: map[string]any{"depth": e.A},
			})
		case EvEnqWrite, EvDeqWrite:
			out = append(out, chromeEvent{
				Name: "write_q", Cat: "mc", Ph: "C", Ts: e.Tick,
				Pid: chromeDRAMPid + int(e.Channel), Tid: 0,
				Args: map[string]any{"depth": e.A},
			})
		case EvDone:
			out = append(out, chromeEvent{
				Name: "dram_done", Cat: "mc", Ph: "i", S: "t", Ts: e.Tick,
				Pid: chromeDRAMPid + int(e.Channel), Tid: chromeCtlTID,
				Args: map[string]any{"group": e.GroupID().String(), "req": e.Req},
			})
		}
	}

	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
		Unit        string        `json:"displayTimeUnit"`
	}{out, "ms"}); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteChannelCSV writes the per-interval per-channel table.
func WriteChannelCSV(w io.Writer, rows []ChannelInterval) error {
	cw := csv.NewWriter(w)
	header := []string{"start", "end", "channel", "read_q", "write_q", "draining",
		"queued_txns", "acts", "pres", "rd_bursts", "wr_bursts",
		"hit_txns", "miss_txns", "drains_started", "busy_frac", "row_hit_rate"}
	if err := cw.Write(header); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }
	for _, r := range rows {
		rec := []string{
			strconv.FormatInt(r.Start, 10), strconv.FormatInt(r.End, 10),
			strconv.Itoa(r.Channel), strconv.Itoa(r.ReadQ), strconv.Itoa(r.WriteQ),
			strconv.FormatBool(r.Draining), strconv.Itoa(r.QueuedTxns),
			strconv.FormatInt(r.ACTs, 10), strconv.FormatInt(r.PREs, 10),
			strconv.FormatInt(r.RDBursts, 10), strconv.FormatInt(r.WRBursts, 10),
			strconv.FormatInt(r.HitTxns, 10), strconv.FormatInt(r.MissTxns, 10),
			strconv.FormatInt(r.DrainsStarted, 10),
			f(r.BusyFrac), f(r.RowHitRate),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteSMCSV writes the per-interval per-SM stall table.
func WriteSMCSV(w io.Writer, rows []SMInterval) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"start", "end", "sm", "instr", "active",
		"idle_mem", "idle_lsu", "idle"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			strconv.FormatInt(r.Start, 10), strconv.FormatInt(r.End, 10),
			strconv.Itoa(r.SM),
			strconv.FormatInt(r.Instr, 10), strconv.FormatInt(r.Active, 10),
			strconv.FormatInt(r.IdleMem, 10), strconv.FormatInt(r.IdleLSU, 10),
			strconv.FormatInt(r.Idle, 10),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
