package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"dramlat/internal/memreq"
)

func g(load uint32) memreq.GroupID { return memreq.GroupID{SM: 1, Warp: 2, Load: load} }

func req(id uint64, grp memreq.GroupID, ch, bank, row int) *memreq.Request {
	return &memreq.Request{ID: id, Group: grp, Channel: ch, Bank: bank, Row: row}
}

func TestOptionsEnabled(t *testing.T) {
	if (Options{}).Enabled() {
		t.Fatal("zero options enabled")
	}
	if !(Options{Events: true}).Enabled() || !(Options{SampleEvery: 10}).Enabled() {
		t.Fatal("non-zero options disabled")
	}
	if New(Options{}) != nil {
		t.Fatal("New of zero options not nil")
	}
	tel := New(Options{Events: true, EventCap: 4})
	if tel == nil || tel.Tracer == nil || tel.Sampler != nil {
		t.Fatalf("New(events): %+v", tel)
	}
	tel = New(Options{SampleEvery: 100})
	if tel == nil || tel.Tracer != nil || tel.Sampler == nil || tel.Sampler.Every != 100 {
		t.Fatalf("New(sampler): %+v", tel)
	}
}

func TestKindStringRoundTrip(t *testing.T) {
	for k := Kind(0); k < kindCount; k++ {
		name := k.String()
		if strings.HasPrefix(name, "kind(") {
			t.Fatalf("kind %d has no name", k)
		}
		back, err := ParseKind(name)
		if err != nil || back != k {
			t.Fatalf("roundtrip %s: %v, %v", name, back, err)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Fatal("bogus kind parsed")
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.LoadIssue(1, g(1), 2, 2)
	tr.Done(1, 0, g(1), 1)
	tr.DrainBegin(1, 0, 5)
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer accumulated state")
	}
}

func TestTracerRingWrap(t *testing.T) {
	tr := NewTracer(3)
	for i := int64(1); i <= 5; i++ {
		tr.LoadUnblock(i, g(uint32(i)))
	}
	if tr.Len() != 3 {
		t.Fatalf("len %d", tr.Len())
	}
	if tr.Dropped() != 2 {
		t.Fatalf("dropped %d", tr.Dropped())
	}
	evs := tr.Events()
	// Oldest two overwritten: ticks 3, 4, 5 remain, in recording order.
	for i, want := range []int64{3, 4, 5} {
		if evs[i].Tick != want {
			t.Fatalf("event %d tick %d, want %d", i, evs[i].Tick, want)
		}
	}
}

func TestSortEventsStable(t *testing.T) {
	evs := []Event{
		{Tick: 10, Kind: EvDone, Req: 1}, // future-stamped completion recorded first
		{Tick: 5, Kind: EvEnqRead, Req: 2},
		{Tick: 5, Kind: EvDeqRead, Req: 2}, // same tick: must stay after its enqueue
	}
	SortEvents(evs)
	if evs[0].Kind != EvEnqRead || evs[1].Kind != EvDeqRead || evs[2].Kind != EvDone {
		t.Fatalf("sorted order: %+v", evs)
	}
}

// stream builds a small, fully legal event stream: two requests of one
// warp-group on different channels, each ACT->RD->RD, plus a MERB streak
// and a write drain.
func stream(tr *Tracer) {
	r1 := req(1, g(1), 0, 2, 7)
	r2 := req(2, g(1), 1, 3, 9)
	tr.LoadIssue(10, g(1), 2, 2)
	tr.EnqueueRead(20, 0, r1, 1)
	tr.EnqueueRead(21, 1, r2, 1)
	tr.DequeueRead(25, 0, r1, 0)
	tr.DequeueRead(26, 1, r2, 0)
	tr.Command(30, EvACT, 0, 2, 7, nil)
	tr.Command(31, EvACT, 1, 3, 9, nil)
	tr.Command(40, EvRD, 0, 2, 7, r1)
	tr.Command(44, EvRD, 0, 2, 7, r1)
	tr.Done(48, 0, g(1), 1) // future timestamp emitted at command time
	tr.MERBStreakBegin(50, 1, 3, 9)
	tr.MERBStreakEnd(60, 1, 3)
	tr.Command(62, EvRD, 1, 3, 9, r2)
	tr.Command(66, EvRD, 1, 3, 9, r2)
	tr.Done(70, 1, g(1), 2)
	tr.DrainBegin(80, 0, 32)
	w := req(3, memreq.GroupID{}, 0, 2, 7)
	tr.EnqueueWrite(81, 0, w, 1)
	tr.DequeueWrite(82, 0, w, 0)
	tr.Command(83, EvWR, 0, 2, 7, w)
	tr.DrainEnd(90, 0, 16)
	tr.Command(95, EvPRE, 0, 2, -1, nil)
	tr.Command(96, EvPRE, 1, 3, -1, nil)
	tr.LoadUnblock(99, g(1))
}

func TestValidateCleanStream(t *testing.T) {
	tr := NewTracer(64)
	stream(tr)
	evs := tr.Events()
	SortEvents(evs)
	if err := Validate(evs); err != nil {
		t.Fatalf("clean stream rejected: %v", err)
	}
}

func TestValidateCatchesViolations(t *testing.T) {
	cases := map[string][]Event{
		"backwards time": {
			{Tick: 10, Kind: EvLoadIssue, SM: 1, Load: 1},
			{Tick: 5, Kind: EvLoadUnblock, SM: 1, Load: 1},
		},
		"ACT on open bank": {
			{Tick: 1, Kind: EvACT, Channel: 0, Bank: 0, Row: 1},
			{Tick: 2, Kind: EvACT, Channel: 0, Bank: 0, Row: 2},
		},
		"PRE on closed bank": {
			{Tick: 1, Kind: EvPRE, Channel: 0, Bank: 0},
		},
		"RD on closed bank": {
			{Tick: 1, Kind: EvRD, Channel: 0, Bank: 0, Row: 1},
		},
		"RD to wrong row": {
			{Tick: 1, Kind: EvACT, Channel: 0, Bank: 0, Row: 1},
			{Tick: 2, Kind: EvRD, Channel: 0, Bank: 0, Row: 2},
		},
		"dequeue without enqueue": {
			{Tick: 1, Kind: EvDeqRead, Req: 7},
		},
		"double enqueue": {
			{Tick: 1, Kind: EvEnqRead, Req: 7},
			{Tick: 2, Kind: EvEnqRead, Req: 7},
		},
		"done before dispatch": {
			{Tick: 1, Kind: EvEnqRead, Req: 7},
			{Tick: 2, Kind: EvDone, Req: 7},
		},
		"nested MERB streak": {
			{Tick: 1, Kind: EvMERBBegin, Channel: 0, Bank: 0, Row: 1},
			{Tick: 2, Kind: EvMERBBegin, Channel: 0, Bank: 0, Row: 1},
			{Tick: 3, Kind: EvMERBEnd, Channel: 0, Bank: 0},
			{Tick: 4, Kind: EvMERBEnd, Channel: 0, Bank: 0},
		},
		"drain left open": {
			{Tick: 1, Kind: EvDrainBegin, Channel: 0, A: 32},
		},
		"unblock without issue": {
			{Tick: 1, Kind: EvLoadUnblock, SM: 1, Load: 1},
		},
		"load never unblocked": {
			{Tick: 1, Kind: EvLoadIssue, SM: 1, Load: 1},
		},
	}
	for name, evs := range cases {
		if err := Validate(evs); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	tr := NewTracer(64)
	stream(tr)
	evs := tr.Events()
	SortEvents(evs)

	var buf bytes.Buffer
	if err := WriteJSONL(&buf, evs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(evs) {
		t.Fatalf("roundtrip %d -> %d events", len(evs), len(back))
	}
	for i := range evs {
		if back[i] != evs[i] {
			t.Fatalf("event %d: %+v != %+v", i, back[i], evs[i])
		}
	}
}

func TestChromeTraceShape(t *testing.T) {
	tr := NewTracer(64)
	stream(tr)
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr.Events()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Ts   int64  `json:"ts"`
			Pid  int    `json:"pid"`
			Tid  int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty trace")
	}
	// Timestamps monotone among non-metadata events, and B/E balanced per
	// (pid, tid, name).
	last := int64(-1)
	type span struct {
		pid, tid int
		name     string
	}
	depth := map[span]int{}
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			continue
		case "B":
			depth[span{e.Pid, e.Tid, e.Name}]++
		case "E":
			s := span{e.Pid, e.Tid, e.Name}
			depth[s]--
			if depth[s] < 0 {
				t.Fatalf("E without B for %+v", s)
			}
		}
		if e.Ts < last {
			t.Fatalf("timestamps not monotone: %d after %d", e.Ts, last)
		}
		last = e.Ts
	}
	for s, d := range depth {
		if d != 0 {
			t.Fatalf("unbalanced span %+v: depth %d", s, d)
		}
	}
}

func TestAnalyze(t *testing.T) {
	tr := NewTracer(64)
	stream(tr)
	a := Analyze(tr.Events())

	if len(a.Groups) != 1 {
		t.Fatalf("groups %d", len(a.Groups))
	}
	grp := a.Groups[0]
	if grp.ID != g(1) || grp.Issue != 10 || grp.Unblock != 99 {
		t.Fatalf("group %+v", grp)
	}
	if gap := grp.Gap(); gap != 70-48 {
		t.Fatalf("gap %d", gap)
	}
	if grp.Channels() != 2 || len(grp.Reqs) != 2 {
		t.Fatalf("reqs %d channels %d", len(grp.Reqs), grp.Channels())
	}
	r1 := grp.Reqs[0]
	if r1.Enq != 20 || r1.Deq != 25 || len(r1.Acts) != 1 || r1.Acts[0] != 30 ||
		len(r1.Bursts) != 2 || r1.Done != 48 {
		t.Fatalf("req 1 trace %+v", r1)
	}
	if got := a.DivergenceGap(); got != 22 {
		t.Fatalf("mean gap %v", got)
	}
	if s := a.Stragglers(5); len(s) != 1 || s[0] != grp {
		t.Fatalf("stragglers %+v", s)
	}
	bins := a.GapHistogram()
	if len(bins) != 1 || bins[0].Count != 1 || bins[0].Lo != 0 || bins[0].Hi != 64 {
		t.Fatalf("histogram %+v", bins)
	}
}

func TestPercentileOf(t *testing.T) {
	sorted := []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	for _, tc := range []struct{ p, want float64 }{
		{0, 10}, {50, 55}, {99, 99.1}, {100, 100}, {-1, 10}, {200, 100},
	} {
		if got := PercentileOf(sorted, tc.p); got < tc.want-1e-9 || got > tc.want+1e-9 {
			t.Fatalf("p%v = %v, want %v", tc.p, got, tc.want)
		}
	}
	if PercentileOf(nil, 50) != 0 {
		t.Fatal("empty percentile not 0")
	}
}

func TestSamplerIntervals(t *testing.T) {
	s := &Sampler{Every: 100}
	add := func(tick int64, acts, busy int64, hit, miss int64) {
		s.Channels = append(s.Channels, ChannelSample{
			Tick: tick, Channel: 0, ReadQ: int(tick / 100),
			ACTs: acts, BusyTicks: busy, HitTxns: hit, MissTxns: miss,
		})
	}
	add(100, 10, 50, 6, 2)
	add(200, 25, 150, 12, 2)
	ivs := s.ChannelIntervals()
	if len(ivs) != 1 {
		t.Fatalf("intervals %d", len(ivs))
	}
	iv := ivs[0]
	if iv.Start != 100 || iv.End != 200 || iv.ACTs != 15 {
		t.Fatalf("interval %+v", iv)
	}
	if iv.BusyFrac != 1.0 { // 100 busy ticks over a 100-tick interval
		t.Fatalf("busy frac %v", iv.BusyFrac)
	}
	if iv.RowHitRate != 1.0 { // 6 hits, 0 misses in the delta
		t.Fatalf("hit rate %v", iv.RowHitRate)
	}
	if iv.ReadQ != 2 { // gauge at End
		t.Fatalf("readq gauge %d", iv.ReadQ)
	}

	s.SMs = append(s.SMs,
		SMSample{Tick: 100, SM: 3, Instr: 50, Active: 40, Idle: 60, IdleMem: 30},
		SMSample{Tick: 200, SM: 3, Instr: 90, Active: 70, Idle: 130, IdleMem: 80})
	sms := s.SMIntervals()
	if len(sms) != 1 || sms[0].Instr != 40 || sms[0].IdleMem != 50 {
		t.Fatalf("sm intervals %+v", sms)
	}

	var nilS *Sampler
	if nilS.ChannelIntervals() != nil || nilS.SMIntervals() != nil {
		t.Fatal("nil sampler produced intervals")
	}
}

func TestCSVExports(t *testing.T) {
	s := &Sampler{Every: 10}
	s.Channels = append(s.Channels,
		ChannelSample{Tick: 10, Channel: 0, ACTs: 1},
		ChannelSample{Tick: 20, Channel: 0, ACTs: 3, BusyTicks: 4})
	s.SMs = append(s.SMs,
		SMSample{Tick: 10, SM: 0, Instr: 5},
		SMSample{Tick: 20, SM: 0, Instr: 9})
	var ch, sm bytes.Buffer
	if err := WriteChannelCSV(&ch, s.ChannelIntervals()); err != nil {
		t.Fatal(err)
	}
	if err := WriteSMCSV(&sm, s.SMIntervals()); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(ch.String(), "\n"); lines != 2 {
		t.Fatalf("channel csv lines %d:\n%s", lines, ch.String())
	}
	if !strings.HasPrefix(sm.String(), "start,end,sm,") {
		t.Fatalf("sm csv header:\n%s", sm.String())
	}
}

// BenchmarkTracerEmit measures the cost of one enabled emit (the hot-path
// cost a traced run pays per event site that fires).
func BenchmarkTracerEmit(b *testing.B) {
	tr := NewTracer(1 << 16)
	r := req(1, g(1), 0, 2, 7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.EnqueueRead(int64(i), 0, r, 1)
	}
}

// BenchmarkTracerDisabled measures the nil-probe cost: the branch every
// instrumentation site pays when tracing is off.
func BenchmarkTracerDisabled(b *testing.B) {
	var tr *Tracer
	r := req(1, g(1), 0, 2, 7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if tr != nil {
			tr.EnqueueRead(int64(i), 0, r, 1)
		}
	}
}
