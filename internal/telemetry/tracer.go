package telemetry

import (
	"fmt"

	"dramlat/internal/memreq"
)

// Kind enumerates the event taxonomy. The begin/end kinds form balanced
// pairs in a completed trace (Validate checks this).
type Kind uint8

const (
	// EvLoadIssue: a warp-load left the coalescer with at least one
	// request entering the memory system. A = post-coalescing lines,
	// B = requests sent past the L1.
	EvLoadIssue Kind = iota
	// EvLoadUnblock: the issuing warp resumed (last response returned,
	// or first response under the Zero-Latency-Divergence ideal).
	EvLoadUnblock
	// EvEnqRead: a read entered a controller's read queue (A = occupancy
	// after). Also emitted for bus-only ideal-model requests.
	EvEnqRead
	// EvEnqWrite: a write entered a controller's write queue (A =
	// occupancy after).
	EvEnqWrite
	// EvDeqRead: the transaction scheduler dispatched a read to the DRAM
	// command queues (A = read-queue occupancy after).
	EvDeqRead
	// EvDeqWrite: the drain logic dispatched a write to the DRAM command
	// queues (A = write-queue occupancy after).
	EvDeqWrite
	// EvDone: DRAM finished transferring a read request's data; one event
	// per warp-group sharing the line (MSHR-merged groups included), so
	// per-group divergence gaps are recoverable from the trace alone.
	EvDone
	// EvACT / EvPRE / EvRD / EvWR: one DRAM command issued on the channel
	// command bus. RD/WR carry the owning request and group.
	EvACT
	EvPRE
	EvRD
	EvWR
	// EvMERBBegin / EvMERBEnd: a WG-Bw row-hit filler streak protecting a
	// row from an interrupting miss started / the protected miss finally
	// dispatched (Section IV-D).
	EvMERBBegin
	EvMERBEnd
	// EvDrainBegin / EvDrainEnd: the controller's write-drain state
	// machine engaged / released (A = write-queue occupancy).
	EvDrainBegin
	EvDrainEnd
	// EvWindow: a sampled-engine phase boundary (A = phase code: 0
	// measure, 1 drain, 2 fast-forward, 3 warm-up; B = region index).
	// Lets dlprof show which trace regions were modeled statistically —
	// no other events exist inside a fast-forward region.
	EvWindow

	kindCount
)

var kindNames = [kindCount]string{
	EvLoadIssue:   "load_issue",
	EvLoadUnblock: "load_unblock",
	EvEnqRead:     "enq_read",
	EvEnqWrite:    "enq_write",
	EvDeqRead:     "deq_read",
	EvDeqWrite:    "deq_write",
	EvDone:        "dram_done",
	EvACT:         "act",
	EvPRE:         "pre",
	EvRD:          "rd",
	EvWR:          "wr",
	EvMERBBegin:   "merb_begin",
	EvMERBEnd:     "merb_end",
	EvDrainBegin:  "drain_begin",
	EvDrainEnd:    "drain_end",
	EvWindow:      "window",
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// ParseKind inverts String.
func ParseKind(s string) (Kind, error) {
	for k, n := range kindNames {
		if n == s {
			return Kind(k), nil
		}
	}
	return 0, fmt.Errorf("telemetry: unknown event kind %q", s)
}

// Event is one trace record. Fields that do not apply to a kind hold -1
// (Channel, Bank, Row, SM, Warp) or 0 (Load, Req, A, B); see the Kind
// constants for which fields each kind populates.
type Event struct {
	Tick    int64
	Kind    Kind
	Channel int16
	Bank    int16
	Row     int32
	SM      int32
	Warp    int32
	Load    uint32
	Req     uint64
	A, B    int64
}

// GroupID reconstructs the warp-group identity carried by the event; the
// zero (invalid) GroupID is returned for ungrouped traffic.
func (e Event) GroupID() memreq.GroupID {
	if e.SM < 0 || e.Load == 0 {
		return memreq.GroupID{}
	}
	return memreq.GroupID{SM: uint16(e.SM), Warp: uint16(e.Warp), Load: e.Load}
}

// Tracer records events into a bounded ring buffer. It is not safe for
// concurrent use; the serial engines emit from one goroutine. A nil
// *Tracer is the disabled probe: instrumentation sites guard each emit
// with a nil check, so disabled tracing costs one branch per site.
//
// The parallel engine gives each SM and each partition a staged child
// (Stage) whose emits buffer into an unbounded per-component slice; the
// coordinator replays the buffers into the parent ring in a fixed
// component order at each phase barrier (Absorb), reproducing the serial
// recording order — including which events the bounded ring drops.
type Tracer struct {
	buf     []Event
	next    int  // overwrite cursor once full
	full    bool // buf wrapped at least once
	dropped int64

	// parent is non-nil on a staged child; stage buffers its events.
	parent *Tracer
	stage  []Event
}

// NewTracer builds a tracer holding at most capacity events.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultEventCap
	}
	return &Tracer{buf: make([]Event, 0, capacity)}
}

// Stage returns a staged child tracer that buffers events for later
// deterministic replay into t (see Absorb). A nil receiver returns nil,
// so disabled-telemetry wiring keeps its one-branch-per-site cost.
func (t *Tracer) Stage() *Tracer {
	if t == nil {
		return nil
	}
	return &Tracer{parent: t}
}

// Absorb replays a staged child's buffered events into t in recording
// order and resets the child. Nil child or receiver is a no-op.
func (t *Tracer) Absorb(child *Tracer) {
	if t == nil || child == nil {
		return
	}
	for _, e := range child.stage {
		t.add(e)
	}
	child.stage = child.stage[:0]
}

func (t *Tracer) add(e Event) {
	if t == nil {
		return
	}
	if t.parent != nil {
		t.stage = append(t.stage, e)
		return
	}
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, e)
		return
	}
	t.buf[t.next] = e
	t.next = (t.next + 1) % len(t.buf)
	t.full = true
	t.dropped++
}

// Len returns the number of retained events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.buf)
}

// Dropped returns how many events were overwritten by ring wrap-around.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// Events returns the retained events in recording order. Recording order
// is causal per tick but not globally sorted by Tick: DRAM completions are
// recorded at command-issue time with their (future) data-transfer
// timestamp. SortEvents restores timestamp order for export.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	out := make([]Event, 0, len(t.buf))
	if t.full {
		out = append(out, t.buf[t.next:]...)
		out = append(out, t.buf[:t.next]...)
		return out
	}
	return append(out, t.buf...)
}

// none fills the "not applicable" sentinels.
func none() Event {
	return Event{Channel: -1, Bank: -1, Row: -1, SM: -1, Warp: -1}
}

func (t *Tracer) group(e Event, g memreq.GroupID) Event {
	if g.Valid() {
		e.SM, e.Warp, e.Load = int32(g.SM), int32(g.Warp), g.Load
	}
	return e
}

// LoadIssue records a warp-load entering the memory system.
func (t *Tracer) LoadIssue(now int64, g memreq.GroupID, lines, sent int) {
	e := none()
	e.Tick, e.Kind, e.A, e.B = now, EvLoadIssue, int64(lines), int64(sent)
	t.add(t.group(e, g))
}

// LoadUnblock records the issuing warp resuming.
func (t *Tracer) LoadUnblock(now int64, g memreq.GroupID) {
	e := none()
	e.Tick, e.Kind = now, EvLoadUnblock
	t.add(t.group(e, g))
}

// EnqueueRead records a read entering channel ch's read queue.
func (t *Tracer) EnqueueRead(now int64, ch int, r *memreq.Request, occupancy int) {
	e := none()
	e.Tick, e.Kind, e.Channel = now, EvEnqRead, int16(ch)
	e.Bank, e.Row = int16(r.Bank), int32(r.Row)
	e.Req, e.A = r.ID, int64(occupancy)
	t.add(t.group(e, r.Group))
}

// EnqueueWrite records a write entering channel ch's write queue.
func (t *Tracer) EnqueueWrite(now int64, ch int, r *memreq.Request, occupancy int) {
	e := none()
	e.Tick, e.Kind, e.Channel = now, EvEnqWrite, int16(ch)
	e.Bank, e.Row = int16(r.Bank), int32(r.Row)
	e.Req, e.A = r.ID, int64(occupancy)
	t.add(e)
}

// DequeueRead records the scheduler dispatching a read to DRAM.
func (t *Tracer) DequeueRead(now int64, ch int, r *memreq.Request, occupancy int) {
	e := none()
	e.Tick, e.Kind, e.Channel = now, EvDeqRead, int16(ch)
	e.Bank, e.Row = int16(r.Bank), int32(r.Row)
	e.Req, e.A = r.ID, int64(occupancy)
	t.add(t.group(e, r.Group))
}

// DequeueWrite records the drain logic dispatching a write to DRAM.
func (t *Tracer) DequeueWrite(now int64, ch int, r *memreq.Request, occupancy int) {
	e := none()
	e.Tick, e.Kind, e.Channel = now, EvDeqWrite, int16(ch)
	e.Bank, e.Row = int16(r.Bank), int32(r.Row)
	e.Req, e.A = r.ID, int64(occupancy)
	t.add(e)
}

// Done records DRAM finishing a read's data transfer for one warp-group
// (the request's own group, or a group MSHR-merged onto its line).
func (t *Tracer) Done(now int64, ch int, g memreq.GroupID, reqID uint64) {
	e := none()
	e.Tick, e.Kind, e.Channel, e.Req = now, EvDone, int16(ch), reqID
	t.add(t.group(e, g))
}

// Command records one issued DRAM command. kind must be one of EvACT,
// EvPRE, EvRD, EvWR; row is -1 for PRE. For column commands the owning
// request and its group tie the command stream back to warp-groups.
func (t *Tracer) Command(now int64, kind Kind, ch, bank, row int, r *memreq.Request) {
	e := none()
	e.Tick, e.Kind, e.Channel, e.Bank = now, kind, int16(ch), int16(bank)
	e.Row = int32(row)
	if r != nil {
		e.Req = r.ID
		e = t.group(e, r.Group)
	}
	t.add(e)
}

// MERBStreakBegin records a WG-Bw filler streak starting on (ch, bank) to
// protect the open row from an interrupting miss.
func (t *Tracer) MERBStreakBegin(now int64, ch, bank, row int) {
	e := none()
	e.Tick, e.Kind, e.Channel = now, EvMERBBegin, int16(ch)
	e.Bank, e.Row = int16(bank), int32(row)
	t.add(e)
}

// MERBStreakEnd records the protected miss finally dispatching.
func (t *Tracer) MERBStreakEnd(now int64, ch, bank int) {
	e := none()
	e.Tick, e.Kind, e.Channel, e.Bank = now, EvMERBEnd, int16(ch), int16(bank)
	t.add(e)
}

// DrainBegin records a write drain engaging on channel ch.
func (t *Tracer) DrainBegin(now int64, ch, occupancy int) {
	e := none()
	e.Tick, e.Kind, e.Channel, e.A = now, EvDrainBegin, int16(ch), int64(occupancy)
	t.add(e)
}

// DrainEnd records the drain releasing.
func (t *Tracer) DrainEnd(now int64, ch, occupancy int) {
	e := none()
	e.Tick, e.Kind, e.Channel, e.A = now, EvDrainEnd, int16(ch), int64(occupancy)
	t.add(e)
}

// Sampled-engine phase codes carried in EvWindow's A field.
const (
	WindowMeasure     = 0 // full-fidelity measurement window begins
	WindowDrain       = 1 // SMs frozen, memory system draining
	WindowFastForward = 2 // statistical fast-forward region begins
	WindowWarmup      = 3 // detailed warm-up before the next window
)

// Window records a sampled-engine phase boundary: phase is a Window*
// code, region the zero-based sampling-region index.
func (t *Tracer) Window(now int64, phase int, region int) {
	e := none()
	e.Tick, e.Kind, e.A, e.B = now, EvWindow, int64(phase), int64(region)
	t.add(e)
}
