package telemetry

import (
	"errors"
	"fmt"
)

// Validate checks the structural invariants of a completed event stream,
// in the order given (WriteJSONL emits timestamp-sorted streams):
//
//   - timestamps are monotone non-decreasing;
//   - the DRAM command stream is legal per (channel, bank): ACT only on a
//     closed bank, PRE only on an open one, RD/WR only to the open row;
//   - every request is dequeued at most once and only after its enqueue,
//     its column commands and completion follow its dequeue;
//   - begin/end pairs balance: write drains per channel, MERB streaks per
//     (channel, bank), and warp-load issue/unblock per warp-group.
//
// A trace truncated by ring-buffer wrap-around, or taken from a run that
// hit MaxTicks with warps still blocked, legitimately fails the pairing
// checks; Validate is meant for complete traces of drained runs.
func Validate(events []Event) error {
	var errs []error
	bad := func(i int, e Event, format string, args ...any) {
		if len(errs) < 20 { // cap the report, keep counting nothing
			errs = append(errs, fmt.Errorf("event %d (tick %d, %s): %s",
				i, e.Tick, e.Kind, fmt.Sprintf(format, args...)))
		}
	}

	type bankKey struct{ ch, bank int16 }
	type loadKey struct {
		sm, warp int32
		load     uint32
	}
	openRow := map[bankKey]int32{} // missing = closed
	merb := map[bankKey]bool{}
	drain := map[int16]bool{}
	loads := map[loadKey]bool{}
	const (
		reqEnqueued = 1
		reqDequeued = 2
	)
	reqState := map[uint64]int{}

	last := int64(-1 << 62)
	for i, e := range events {
		if e.Tick < last {
			bad(i, e, "timestamp went backwards (%d after %d)", e.Tick, last)
		}
		last = e.Tick

		bk := bankKey{e.Channel, e.Bank}
		switch e.Kind {
		case EvACT:
			if row, open := openRow[bk]; open {
				bad(i, e, "ACT on open bank (row %d open)", row)
			}
			openRow[bk] = e.Row
		case EvPRE:
			if _, open := openRow[bk]; !open {
				bad(i, e, "PRE on closed bank")
			}
			delete(openRow, bk)
		case EvRD, EvWR:
			row, open := openRow[bk]
			if !open {
				bad(i, e, "column command on closed bank")
			} else if row != e.Row {
				bad(i, e, "column command to row %d but row %d open", e.Row, row)
			}
			if e.Req != 0 && reqState[e.Req] != reqDequeued {
				bad(i, e, "burst for request %d not in dispatched state", e.Req)
			}
		case EvEnqRead, EvEnqWrite:
			if st := reqState[e.Req]; st != 0 {
				bad(i, e, "request %d enqueued twice", e.Req)
			}
			reqState[e.Req] = reqEnqueued
		case EvDeqRead, EvDeqWrite:
			if st := reqState[e.Req]; st != reqEnqueued {
				bad(i, e, "request %d dequeued in state %d", e.Req, st)
			}
			reqState[e.Req] = reqDequeued
		case EvDone:
			if st := reqState[e.Req]; st != reqDequeued {
				bad(i, e, "completion for request %d in state %d", e.Req, st)
			}
		case EvMERBBegin:
			if merb[bk] {
				bad(i, e, "nested MERB streak")
			}
			merb[bk] = true
		case EvMERBEnd:
			if !merb[bk] {
				bad(i, e, "MERB end without begin")
			}
			delete(merb, bk)
		case EvDrainBegin:
			if drain[e.Channel] {
				bad(i, e, "nested write drain")
			}
			drain[e.Channel] = true
		case EvDrainEnd:
			if !drain[e.Channel] {
				bad(i, e, "drain end without begin")
			}
			delete(drain, e.Channel)
		case EvLoadIssue:
			lk := loadKey{e.SM, e.Warp, e.Load}
			if loads[lk] {
				bad(i, e, "load issued twice")
			}
			loads[lk] = true
		case EvLoadUnblock:
			lk := loadKey{e.SM, e.Warp, e.Load}
			if !loads[lk] {
				bad(i, e, "unblock without issue")
			}
			delete(loads, lk)
		}
	}

	for bk := range merb {
		errs = append(errs, fmt.Errorf("MERB streak left open on ch%d bank %d", bk.ch, bk.bank))
	}
	for ch := range drain {
		errs = append(errs, fmt.Errorf("write drain left open on ch%d", ch))
	}
	if n := len(loads); n > 0 {
		errs = append(errs, fmt.Errorf("%d warp-loads issued but never unblocked", n))
	}
	return errors.Join(errs...)
}
