// Package xbar models the crossbar interconnect between the SIMT cores and
// the memory partitions (Section II-B). Its two fidelity-critical
// properties, both from Section IV-B2:
//
//   - requests from a single SM are never re-ordered (this is what makes
//     the warp sorter's "last request to this channel" tag a reliable
//     group-complete signal), and
//   - requests from different SMs interleave at each partition port (this
//     is what defeats plain FCFS scheduling, Section III-A).
//
// A NoInterleave mode services one SM's queue to exhaustion before moving
// on — the interconnect assumed by the WAFCFS comparator (Yuan et al.
// [51], Section VI-C2).
//
// Concurrency model for the parallel engine (Par = true): during an SM
// phase only Inject and PopResponse run, each (sm, part) request FIFO has
// exactly one writer (its SM), and the shared bookkeeping (queued counts,
// wake bounds, counters) is maintained with commutative atomics (adds and
// CAS-min), so any interleaving produces the same state. During a
// partition phase only PeekPart/pops and Respond run with the symmetric
// single-writer property per (part, sm) response FIFO. The whole-crossbar
// minima are recomputed exactly by the coordinator at each phase barrier
// (RecomputeMins); the per-pop global-min maintenance of the serial
// engines is skipped under Par because it reads other domains' entries.
package xbar

import (
	"sync/atomic"

	"dramlat/internal/memreq"
)

// never is the wakeup-contract sentinel (see dram.Never).
const never int64 = 1 << 62

type entry struct {
	req     *memreq.Request
	readyAt int64
}

// ring is a reusable FIFO of entries: a power-of-two circular buffer that
// grows on demand and never re-allocates on steady-state push/pop churn
// (the old slice queues re-sliced on pop and re-allocated on append,
// churning the allocator on the hottest path in the simulator).
type ring struct {
	buf  []entry
	head int
	n    int
}

func (r *ring) len() int { return r.n }

func (r *ring) front() *entry {
	return &r.buf[r.head]
}

func (r *ring) push(e entry) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = e
	r.n++
}

func (r *ring) pop() entry {
	e := r.buf[r.head]
	r.buf[r.head] = entry{}
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return e
}

func (r *ring) grow() {
	newCap := len(r.buf) * 2
	if newCap == 0 {
		newCap = 8
	}
	buf := make([]entry, newCap)
	for i := 0; i < r.n; i++ {
		buf[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf = buf
	r.head = 0
}

// Xbar is the SM <-> partition crossbar.
type Xbar struct {
	NumSM, NumPart int
	// Latency is the one-way pipe latency in ticks.
	Latency int64
	// CapPerQueue bounds each (SM,partition) request FIFO; injection
	// fails (and the SM retries) when full.
	CapPerQueue int
	// NoInterleave makes each partition port drain one SM completely
	// before rotating (WAFCFS interconnect).
	NoInterleave bool
	// Par marks parallel-engine use: the per-pop global-min recomputes
	// are skipped (they read other domains' wake entries) and the
	// coordinator restores exact minima at each barrier via
	// RecomputeMins. Serial engines leave it false and keep the minima
	// exact at every step.
	Par bool

	toPart [][]ring // [sm][part] request FIFOs
	toSM   [][]ring // [part][sm] response FIFOs
	rrReq  []int    // per-partition SM rotation
	curSM  []int    // per-partition sticky SM (NoInterleave)
	rrResp []int    // per-SM partition rotation

	// pendSM/pendRot record, per partition, which SM's head the last
	// successful PeekPart returned and the round-robin rotation PopPart
	// must apply when it consumes it. Keeping the pending pop as flat
	// per-partition state (written only by the partition's own phase
	// domain) lets PeekPart avoid allocating a pop closure per request
	// on the hottest crossbar path.
	pendSM  []int
	pendRot []int

	// Wakeup bookkeeping for the event-driven system loop. reqWake and
	// respWake are lower bounds on the earliest head readyAt of the
	// queues toward a partition / an SM: min-updated on insert (exact
	// when the queue was empty), recomputed from the true heads on every
	// pop attempt. A stale-early bound only costs a spurious visit.
	reqWake  []int64
	respWake []int64
	queuedTo []int64 // per-partition queued request count (NoInterleave)
	// minReqWake / minRespWake are the exact minima of reqWake / respWake,
	// kept current by the same insert/pop maintenance, so the system loop
	// gets a whole-crossbar wake bound in O(1) per tick.
	minReqWake  int64
	minRespWake int64

	Injected  int64
	Rejected  int64
	Responses int64
}

// New builds a crossbar.
func New(numSM, numPart int, latency int64, capPerQueue int) *Xbar {
	x := &Xbar{
		NumSM: numSM, NumPart: numPart,
		Latency: latency, CapPerQueue: capPerQueue,
		toPart:   make([][]ring, numSM),
		toSM:     make([][]ring, numPart),
		rrReq:    make([]int, numPart),
		curSM:    make([]int, numPart),
		pendSM:   make([]int, numPart),
		pendRot:  make([]int, numPart),
		rrResp:   make([]int, numSM),
		reqWake:  make([]int64, numPart),
		respWake: make([]int64, numSM),
		queuedTo: make([]int64, numPart),
	}
	x.minReqWake = never
	x.minRespWake = never
	for i := range x.reqWake {
		x.reqWake[i] = never
	}
	for i := range x.respWake {
		x.respWake[i] = never
	}
	for i := range x.toPart {
		x.toPart[i] = make([]ring, numPart)
	}
	for i := range x.toSM {
		x.toSM[i] = make([]ring, numSM)
	}
	for i := range x.curSM {
		x.curSM[i] = -1
	}
	return x
}

// casMin lowers *addr to v if v is smaller. The operation commutes, so
// concurrent callers from any phase domain converge to the same value.
func casMin(addr *int64, v int64) {
	for {
		cur := atomic.LoadInt64(addr)
		if v >= cur || atomic.CompareAndSwapInt64(addr, cur, v) {
			return
		}
	}
}

// Inject offers a request from SM sm toward its partition (req.Channel).
// It returns false when the queue is full. Safe for concurrent use by
// distinct SMs during a parallel SM phase.
func (x *Xbar) Inject(sm int, req *memreq.Request, now int64) bool {
	q := &x.toPart[sm][req.Channel]
	if q.len() >= x.CapPerQueue {
		atomic.AddInt64(&x.Rejected, 1)
		return false
	}
	q.push(entry{req, now + x.Latency})
	atomic.AddInt64(&x.Injected, 1)
	atomic.AddInt64(&x.queuedTo[req.Channel], 1)
	t := now + x.Latency
	casMin(&x.reqWake[req.Channel], t)
	casMin(&x.minReqWake, t)
	return true
}

// PeekPart returns the next request deliverable to partition `part` at tick
// now without removing it; PopPart(part) consumes it. It returns nil when
// nothing is ready. Arbitration is round-robin across SMs (or sticky
// per-SM in NoInterleave mode); each (SM, partition) FIFO preserves
// order. A successful peek must be consumed (or re-peeked) before the
// partition's state changes: PopPart pops whatever the last PeekPart on
// that partition selected.
func (x *Xbar) PeekPart(part int, now int64) *memreq.Request {
	if x.NoInterleave {
		// Stick with the current SM while it has anything queued.
		cur := x.curSM[part]
		if cur >= 0 && x.toPart[cur][part].len() > 0 {
			return x.headIfReady(cur, part, now)
		}
		for i := 0; i < x.NumSM; i++ {
			sm := (x.rrReq[part] + i) % x.NumSM
			if x.toPart[sm][part].len() > 0 {
				x.curSM[part] = sm
				x.rrReq[part] = (sm + 1) % x.NumSM
				return x.headIfReady(sm, part, now)
			}
		}
		x.curSM[part] = -1
		return nil
	}
	// reqWake is a lower bound on the earliest head readyAt, so a future
	// bound proves the SM scan below would find nothing. The arbitration
	// state is untouched either way (rrReq only moves on a pop).
	if atomic.LoadInt64(&x.queuedTo[part]) == 0 || atomic.LoadInt64(&x.reqWake[part]) > now {
		return nil
	}
	for i := 0; i < x.NumSM; i++ {
		sm := (x.rrReq[part] + i) % x.NumSM
		if req := x.headIfReady(sm, part, now); req != nil {
			x.pendRot[part] = (sm + 1) % x.NumSM
			return req
		}
	}
	// Nothing ready: tighten the wake bound to the true earliest head so
	// the event loop can skip this partition until a request matures.
	x.recomputeReqWake(part)
	return nil
}

// headIfReady returns the head of the (sm, part) FIFO when it has
// matured, recording it as the partition's pending pop.
func (x *Xbar) headIfReady(sm, part int, now int64) *memreq.Request {
	q := &x.toPart[sm][part]
	if q.len() == 0 || q.front().readyAt > now {
		return nil
	}
	x.pendSM[part] = sm
	x.pendRot[part] = -1 // NoInterleave rotates eagerly in PeekPart
	return q.front().req
}

// PopPart consumes the request the last successful PeekPart(part, ·)
// returned, advancing the round-robin arbitration past its SM.
func (x *Xbar) PopPart(part int) {
	x.toPart[x.pendSM[part]][part].pop()
	atomic.AddInt64(&x.queuedTo[part], -1)
	x.recomputeReqWake(part)
	if rot := x.pendRot[part]; rot >= 0 {
		x.rrReq[part] = rot
	}
}

// recomputeReqWake restores the exact per-partition request-wake bound
// from the queue heads. Only partition `part`'s phase domain calls it, so
// the index write is single-writer; the global-min pass is skipped under
// Par (it reads every partition's bound) and restored at the barrier.
func (x *Xbar) recomputeReqWake(part int) {
	w := never
	for sm := 0; sm < x.NumSM; sm++ {
		if q := &x.toPart[sm][part]; q.len() > 0 && q.front().readyAt < w {
			w = q.front().readyAt
		}
	}
	atomic.StoreInt64(&x.reqWake[part], w)
	if x.Par {
		return
	}
	m := never
	for i := range x.reqWake {
		if v := x.reqWake[i]; v < m {
			m = v
		}
	}
	x.minReqWake = m
}

func (x *Xbar) recomputeRespWake(sm int) {
	w := never
	for part := 0; part < x.NumPart; part++ {
		if q := &x.toSM[part][sm]; q.len() > 0 && q.front().readyAt < w {
			w = q.front().readyAt
		}
	}
	atomic.StoreInt64(&x.respWake[sm], w)
	if x.Par {
		return
	}
	m := never
	for i := range x.respWake {
		if v := x.respWake[i]; v < m {
			m = v
		}
	}
	x.minRespWake = m
}

// RecomputeMins restores the exact whole-crossbar minima from the
// per-index wake bounds. The parallel engine's coordinator calls it at
// every phase barrier; the per-index bounds themselves are maintained
// exactly by their owning domains (pop recomputes) and by commutative
// CAS-min inserts, so the restored minima are byte-identical to the
// serially maintained ones.
func (x *Xbar) RecomputeMins() {
	m := never
	for i := range x.reqWake {
		if v := atomic.LoadInt64(&x.reqWake[i]); v < m {
			m = v
		}
	}
	atomic.StoreInt64(&x.minReqWake, m)
	m = never
	for i := range x.respWake {
		if v := atomic.LoadInt64(&x.respWake[i]); v < m {
			m = v
		}
	}
	atomic.StoreInt64(&x.minRespWake, m)
}

// ReqWake returns the earliest tick at which PeekPart(part, ·) could
// return a request, or never when nothing is queued toward part. In
// NoInterleave mode the partition must be visited every tick while any
// request is queued: PeekPart mutates its sticky-SM arbitration state
// even on not-ready heads.
func (x *Xbar) ReqWake(part int) int64 {
	if x.NoInterleave {
		if atomic.LoadInt64(&x.queuedTo[part]) > 0 {
			return 0
		}
		return never
	}
	return atomic.LoadInt64(&x.reqWake[part])
}

// RespWake returns the earliest tick at which PopResponse(sm, ·) could
// return a response, or never when none are queued. The bound may be
// stale-early (≤ now with no deliverable head), which only costs a
// spurious SM visit, never a missed one.
func (x *Xbar) RespWake(sm int) int64 { return atomic.LoadInt64(&x.respWake[sm]) }

// MinRespWake returns min over SMs of RespWake — the earliest tick any
// SM could receive a response.
func (x *Xbar) MinRespWake() int64 { return atomic.LoadInt64(&x.minRespWake) }

// MinReqWake returns min over partitions of ReqWake — the earliest tick
// any partition could receive a request.
func (x *Xbar) MinReqWake() int64 {
	if x.NoInterleave {
		for i := range x.queuedTo {
			if atomic.LoadInt64(&x.queuedTo[i]) > 0 {
				return 0
			}
		}
		return never
	}
	return atomic.LoadInt64(&x.minReqWake)
}

// Respond sends a response from partition part back to the request's SM.
// The response path is modeled with latency but without back-pressure (the
// SM drains one response per tick, far above the DRAM return rate). Safe
// for concurrent use by distinct partitions during a parallel partition
// phase.
func (x *Xbar) Respond(part int, req *memreq.Request, now int64) {
	sm := int(req.Group.SM)
	if !req.Group.Valid() {
		sm = 0
	}
	x.RespondTo(part, sm, req, now)
}

// RespondTo sends a response to an explicit SM (for ungrouped traffic).
func (x *Xbar) RespondTo(part, sm int, req *memreq.Request, now int64) {
	x.toSM[part][sm].push(entry{req, now + x.Latency})
	atomic.AddInt64(&x.Responses, 1)
	t := now + x.Latency
	casMin(&x.respWake[sm], t)
	casMin(&x.minRespWake, t)
}

// PopResponse returns the next response for SM sm at tick now, or nil.
func (x *Xbar) PopResponse(sm int, now int64) *memreq.Request {
	for i := 0; i < x.NumPart; i++ {
		part := (x.rrResp[sm] + i) % x.NumPart
		q := &x.toSM[part][sm]
		if q.len() == 0 || q.front().readyAt > now {
			continue
		}
		e := q.pop()
		x.rrResp[sm] = (part + 1) % x.NumPart
		x.recomputeRespWake(sm)
		return e.req
	}
	x.recomputeRespWake(sm)
	return nil
}

// Empty reports whether the crossbar holds no traffic in either direction.
func (x *Xbar) Empty() bool {
	for sm := range x.toPart {
		for part := range x.toPart[sm] {
			if x.toPart[sm][part].len() > 0 {
				return false
			}
		}
	}
	for part := range x.toSM {
		for sm := range x.toSM[part] {
			if x.toSM[part][sm].len() > 0 {
				return false
			}
		}
	}
	return true
}
