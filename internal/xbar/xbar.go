// Package xbar models the crossbar interconnect between the SIMT cores and
// the memory partitions (Section II-B). Its two fidelity-critical
// properties, both from Section IV-B2:
//
//   - requests from a single SM are never re-ordered (this is what makes
//     the warp sorter's "last request to this channel" tag a reliable
//     group-complete signal), and
//   - requests from different SMs interleave at each partition port (this
//     is what defeats plain FCFS scheduling, Section III-A).
//
// A NoInterleave mode services one SM's queue to exhaustion before moving
// on — the interconnect assumed by the WAFCFS comparator (Yuan et al.
// [51], Section VI-C2).
package xbar

import "dramlat/internal/memreq"

// never is the wakeup-contract sentinel (see dram.Never).
const never int64 = 1 << 62

type entry struct {
	req     *memreq.Request
	readyAt int64
}

// Xbar is the SM <-> partition crossbar.
type Xbar struct {
	NumSM, NumPart int
	// Latency is the one-way pipe latency in ticks.
	Latency int64
	// CapPerQueue bounds each (SM,partition) request FIFO; injection
	// fails (and the SM retries) when full.
	CapPerQueue int
	// NoInterleave makes each partition port drain one SM completely
	// before rotating (WAFCFS interconnect).
	NoInterleave bool

	toPart [][][]entry // [sm][part] request FIFOs
	toSM   [][][]entry // [part][sm] response FIFOs
	rrReq  []int       // per-partition SM rotation
	curSM  []int       // per-partition sticky SM (NoInterleave)
	rrResp []int       // per-SM partition rotation

	// Wakeup bookkeeping for the event-driven system loop. reqWake and
	// respWake are lower bounds on the earliest head readyAt of the
	// queues toward a partition / an SM: min-updated on insert (exact
	// when the queue was empty), recomputed from the true heads on every
	// pop attempt. A stale-early bound only costs a spurious visit.
	reqWake  []int64
	respWake []int64
	queuedTo []int // per-partition queued request count (NoInterleave)
	// minReqWake / minRespWake are the exact minima of reqWake / respWake,
	// kept current by the same insert/pop maintenance, so the system loop
	// gets a whole-crossbar wake bound in O(1) per tick.
	minReqWake  int64
	minRespWake int64

	Injected  int64
	Rejected  int64
	Responses int64
}

// New builds a crossbar.
func New(numSM, numPart int, latency int64, capPerQueue int) *Xbar {
	x := &Xbar{
		NumSM: numSM, NumPart: numPart,
		Latency: latency, CapPerQueue: capPerQueue,
		toPart:   make([][][]entry, numSM),
		toSM:     make([][][]entry, numPart),
		rrReq:    make([]int, numPart),
		curSM:    make([]int, numPart),
		rrResp:   make([]int, numSM),
		reqWake:  make([]int64, numPart),
		respWake: make([]int64, numSM),
		queuedTo: make([]int, numPart),
	}
	x.minReqWake = never
	x.minRespWake = never
	for i := range x.reqWake {
		x.reqWake[i] = never
	}
	for i := range x.respWake {
		x.respWake[i] = never
	}
	for i := range x.toPart {
		x.toPart[i] = make([][]entry, numPart)
	}
	for i := range x.toSM {
		x.toSM[i] = make([][]entry, numSM)
	}
	for i := range x.curSM {
		x.curSM[i] = -1
	}
	return x
}

// Inject offers a request from SM sm toward its partition (req.Channel).
// It returns false when the queue is full.
func (x *Xbar) Inject(sm int, req *memreq.Request, now int64) bool {
	q := &x.toPart[sm][req.Channel]
	if len(*q) >= x.CapPerQueue {
		x.Rejected++
		return false
	}
	*q = append(*q, entry{req, now + x.Latency})
	x.Injected++
	x.queuedTo[req.Channel]++
	if t := now + x.Latency; t < x.reqWake[req.Channel] {
		x.reqWake[req.Channel] = t
		if t < x.minReqWake {
			x.minReqWake = t
		}
	}
	return true
}

// PeekPart returns the next request deliverable to partition `part` at tick
// now without removing it, plus a pop function to consume it. It returns
// nil when nothing is ready. Arbitration is round-robin across SMs (or
// sticky per-SM in NoInterleave mode); each (SM, partition) FIFO preserves
// order.
func (x *Xbar) PeekPart(part int, now int64) (*memreq.Request, func()) {
	if x.NoInterleave {
		// Stick with the current SM while it has anything queued.
		cur := x.curSM[part]
		if cur >= 0 && len(x.toPart[cur][part]) > 0 {
			return x.headIfReady(cur, part, now)
		}
		for i := 0; i < x.NumSM; i++ {
			sm := (x.rrReq[part] + i) % x.NumSM
			if len(x.toPart[sm][part]) > 0 {
				x.curSM[part] = sm
				x.rrReq[part] = (sm + 1) % x.NumSM
				return x.headIfReady(sm, part, now)
			}
		}
		x.curSM[part] = -1
		return nil, nil
	}
	// reqWake is a lower bound on the earliest head readyAt, so a future
	// bound proves the SM scan below would find nothing. The arbitration
	// state is untouched either way (rrReq only moves on a pop).
	if x.queuedTo[part] == 0 || x.reqWake[part] > now {
		return nil, nil
	}
	for i := 0; i < x.NumSM; i++ {
		sm := (x.rrReq[part] + i) % x.NumSM
		if req, pop := x.headIfReady(sm, part, now); req != nil {
			rot := (sm + 1) % x.NumSM
			return req, func() { pop(); x.rrReq[part] = rot }
		}
	}
	// Nothing ready: tighten the wake bound to the true earliest head so
	// the event loop can skip this partition until a request matures.
	x.recomputeReqWake(part)
	return nil, nil
}

func (x *Xbar) headIfReady(sm, part int, now int64) (*memreq.Request, func()) {
	q := x.toPart[sm][part]
	if len(q) == 0 || q[0].readyAt > now {
		return nil, nil
	}
	return q[0].req, func() {
		x.toPart[sm][part] = x.toPart[sm][part][1:]
		x.queuedTo[part]--
		x.recomputeReqWake(part)
	}
}

func (x *Xbar) recomputeReqWake(part int) {
	w := never
	for sm := 0; sm < x.NumSM; sm++ {
		if q := x.toPart[sm][part]; len(q) > 0 && q[0].readyAt < w {
			w = q[0].readyAt
		}
	}
	x.reqWake[part] = w
	m := never
	for _, v := range x.reqWake {
		if v < m {
			m = v
		}
	}
	x.minReqWake = m
}

func (x *Xbar) recomputeRespWake(sm int) {
	w := never
	for part := 0; part < x.NumPart; part++ {
		if q := x.toSM[part][sm]; len(q) > 0 && q[0].readyAt < w {
			w = q[0].readyAt
		}
	}
	x.respWake[sm] = w
	m := never
	for _, v := range x.respWake {
		if v < m {
			m = v
		}
	}
	x.minRespWake = m
}

// ReqWake returns the earliest tick at which PeekPart(part, ·) could
// return a request, or never when nothing is queued toward part. In
// NoInterleave mode the partition must be visited every tick while any
// request is queued: PeekPart mutates its sticky-SM arbitration state
// even on not-ready heads.
func (x *Xbar) ReqWake(part int) int64 {
	if x.NoInterleave {
		if x.queuedTo[part] > 0 {
			return 0
		}
		return never
	}
	return x.reqWake[part]
}

// RespWake returns the earliest tick at which PopResponse(sm, ·) could
// return a response, or never when none are queued. The bound may be
// stale-early (≤ now with no deliverable head), which only costs a
// spurious SM visit, never a missed one.
func (x *Xbar) RespWake(sm int) int64 { return x.respWake[sm] }

// MinRespWake returns min over SMs of RespWake — the earliest tick any
// SM could receive a response.
func (x *Xbar) MinRespWake() int64 { return x.minRespWake }

// MinReqWake returns min over partitions of ReqWake — the earliest tick
// any partition could receive a request.
func (x *Xbar) MinReqWake() int64 {
	if x.NoInterleave {
		for _, n := range x.queuedTo {
			if n > 0 {
				return 0
			}
		}
		return never
	}
	return x.minReqWake
}

// Respond sends a response from partition part back to the request's SM.
// The response path is modeled with latency but without back-pressure (the
// SM drains one response per tick, far above the DRAM return rate).
func (x *Xbar) Respond(part int, req *memreq.Request, now int64) {
	sm := int(req.Group.SM)
	if !req.Group.Valid() {
		sm = 0
	}
	x.toSM[part][sm] = append(x.toSM[part][sm], entry{req, now + x.Latency})
	x.Responses++
	if t := now + x.Latency; t < x.respWake[sm] {
		x.respWake[sm] = t
		if t < x.minRespWake {
			x.minRespWake = t
		}
	}
}

// RespondTo sends a response to an explicit SM (for ungrouped traffic).
func (x *Xbar) RespondTo(part, sm int, req *memreq.Request, now int64) {
	x.toSM[part][sm] = append(x.toSM[part][sm], entry{req, now + x.Latency})
	x.Responses++
	if t := now + x.Latency; t < x.respWake[sm] {
		x.respWake[sm] = t
		if t < x.minRespWake {
			x.minRespWake = t
		}
	}
}

// PopResponse returns the next response for SM sm at tick now, or nil.
func (x *Xbar) PopResponse(sm int, now int64) *memreq.Request {
	for i := 0; i < x.NumPart; i++ {
		part := (x.rrResp[sm] + i) % x.NumPart
		q := x.toSM[part][sm]
		if len(q) == 0 || q[0].readyAt > now {
			continue
		}
		x.toSM[part][sm] = q[1:]
		x.rrResp[sm] = (part + 1) % x.NumPart
		x.recomputeRespWake(sm)
		return q[0].req
	}
	x.recomputeRespWake(sm)
	return nil
}

// Empty reports whether the crossbar holds no traffic in either direction.
func (x *Xbar) Empty() bool {
	for sm := range x.toPart {
		for part := range x.toPart[sm] {
			if len(x.toPart[sm][part]) > 0 {
				return false
			}
		}
	}
	for part := range x.toSM {
		for sm := range x.toSM[part] {
			if len(x.toSM[part][sm]) > 0 {
				return false
			}
		}
	}
	return true
}
