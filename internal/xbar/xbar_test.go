package xbar

import (
	"testing"

	"dramlat/internal/memreq"
)

func req(id uint64, smID uint16, ch int) *memreq.Request {
	return &memreq.Request{
		ID: id, Kind: memreq.Read, Channel: ch,
		Group: memreq.GroupID{SM: smID, Warp: 0, Load: 1},
	}
}

func TestLatencyAndDelivery(t *testing.T) {
	x := New(4, 2, 10, 8)
	r := req(1, 0, 1)
	if !x.Inject(0, r, 100) {
		t.Fatal("inject failed")
	}
	if got := x.PeekPart(1, 105); got != nil {
		t.Fatal("delivered before latency elapsed")
	}
	got := x.PeekPart(1, 110)
	if got != r {
		t.Fatalf("got %v", got)
	}
	x.PopPart(1)
	if got := x.PeekPart(1, 111); got != nil {
		t.Fatal("request not consumed")
	}
}

func TestPerSMOrderPreserved(t *testing.T) {
	x := New(2, 1, 0, 8)
	for i := 0; i < 5; i++ {
		x.Inject(0, req(uint64(i), 0, 0), 0)
	}
	for i := 0; i < 5; i++ {
		got := x.PeekPart(0, 0)
		if got == nil || got.ID != uint64(i) {
			t.Fatalf("position %d: got %v", i, got)
		}
		x.PopPart(0)
	}
}

func TestSMsInterleave(t *testing.T) {
	x := New(2, 1, 0, 8)
	for i := 0; i < 3; i++ {
		x.Inject(0, req(uint64(10+i), 0, 0), 0)
		x.Inject(1, req(uint64(20+i), 1, 0), 0)
	}
	var order []uint64
	for {
		got := x.PeekPart(0, 0)
		if got == nil {
			break
		}
		x.PopPart(0)
		order = append(order, got.ID)
	}
	want := []uint64{10, 20, 11, 21, 12, 22}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

func TestNoInterleaveDrainsOneSM(t *testing.T) {
	x := New(2, 1, 0, 8)
	x.NoInterleave = true
	for i := 0; i < 3; i++ {
		x.Inject(0, req(uint64(10+i), 0, 0), 0)
		x.Inject(1, req(uint64(20+i), 1, 0), 0)
	}
	var order []uint64
	for {
		got := x.PeekPart(0, 0)
		if got == nil {
			break
		}
		x.PopPart(0)
		order = append(order, got.ID)
	}
	want := []uint64{10, 11, 12, 20, 21, 22}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v (sticky SM)", order, want)
		}
	}
}

func TestInjectBackpressure(t *testing.T) {
	x := New(1, 1, 0, 2)
	if !x.Inject(0, req(1, 0, 0), 0) || !x.Inject(0, req(2, 0, 0), 0) {
		t.Fatal("inject below cap failed")
	}
	if x.Inject(0, req(3, 0, 0), 0) {
		t.Fatal("inject past cap succeeded")
	}
	if x.Rejected != 1 {
		t.Fatalf("rejected=%d", x.Rejected)
	}
}

func TestResponsePath(t *testing.T) {
	x := New(2, 2, 5, 8)
	r := req(1, 1, 0)
	x.Respond(0, r, 100)
	if x.PopResponse(1, 104) != nil {
		t.Fatal("response before latency")
	}
	if got := x.PopResponse(1, 105); got != r {
		t.Fatalf("got %v", got)
	}
	if x.PopResponse(0, 200) != nil {
		t.Fatal("response to wrong SM")
	}
}

func TestRespondTo(t *testing.T) {
	x := New(2, 1, 0, 8)
	r := &memreq.Request{ID: 9, Kind: memreq.Read}
	x.RespondTo(0, 1, r, 0)
	if got := x.PopResponse(1, 0); got != r {
		t.Fatalf("got %v", got)
	}
}

func TestEmpty(t *testing.T) {
	x := New(1, 1, 0, 4)
	if !x.Empty() {
		t.Fatal("fresh crossbar not empty")
	}
	x.Inject(0, req(1, 0, 0), 0)
	if x.Empty() {
		t.Fatal("empty with queued request")
	}
	x.PeekPart(0, 0)
	x.PopPart(0)
	x.Respond(0, req(2, 0, 0), 0)
	if x.Empty() {
		t.Fatal("empty with queued response")
	}
	x.PopResponse(0, 100)
	if !x.Empty() {
		t.Fatal("not empty after draining")
	}
}

func TestPartitionRoundRobinFair(t *testing.T) {
	// Three SMs contending for one partition: over 3N pops each SM gets N.
	x := New(3, 1, 0, 64)
	for i := 0; i < 30; i++ {
		for s := 0; s < 3; s++ {
			x.Inject(s, req(uint64(s*100+i), uint16(s), 0), 0)
		}
	}
	counts := map[uint16]int{}
	for i := 0; i < 30; i++ {
		got := x.PeekPart(0, 0)
		x.PopPart(0)
		counts[got.Group.SM]++
	}
	for s := uint16(0); s < 3; s++ {
		if counts[s] != 10 {
			t.Fatalf("SM %d got %d of 30 slots", s, counts[s])
		}
	}
}
