package sweepd

import "net/http"

// handleDashboard serves the zero-dependency live status page: plain
// HTML + inline JS, no build step, no external assets. It polls
// /api/v1/health and /api/v1/jobs on a short interval and attaches an
// EventSource (the SSE flavor of the existing /jobs/{id}/stream
// endpoint — the browser's Accept header selects it) to every running
// job, so per-outcome progress lands live without a custom push
// channel.
func (s *Server) handleDashboard(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Header().Set("Cache-Control", "no-store")
	w.Write([]byte(dashboardHTML))
}

const dashboardHTML = `<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>dlserve dashboard</title>
<style>
  :root { color-scheme: light dark; }
  body { font: 14px/1.5 system-ui, sans-serif; margin: 2rem auto; max-width: 72rem; padding: 0 1rem; }
  h1 { font-size: 1.2rem; } h1 small { font-weight: normal; opacity: .6; }
  .tiles { display: flex; flex-wrap: wrap; gap: .8rem; margin: 1rem 0; }
  .tile { border: 1px solid color-mix(in srgb, currentColor 25%, transparent); border-radius: .5rem; padding: .5rem .9rem; min-width: 7.5rem; }
  .tile b { display: block; font-size: 1.3rem; font-variant-numeric: tabular-nums; }
  .tile span { font-size: .78rem; opacity: .65; text-transform: uppercase; letter-spacing: .04em; }
  table { border-collapse: collapse; width: 100%; }
  th, td { text-align: left; padding: .35rem .6rem; border-bottom: 1px solid color-mix(in srgb, currentColor 15%, transparent); font-variant-numeric: tabular-nums; }
  th { font-size: .78rem; text-transform: uppercase; letter-spacing: .04em; opacity: .65; }
  .bar { background: color-mix(in srgb, currentColor 12%, transparent); border-radius: .25rem; overflow: hidden; width: 10rem; height: .6rem; }
  .bar i { display: block; height: 100%; background: #4c8dd6; }
  .state-running { color: #4c8dd6; } .state-done { color: #3a9b57; }
  .state-canceled, .state-resumable { color: #c98a2b; }
  .ok { color: #3a9b57; } .cached { color: #4c8dd6; } .failed { color: #c94f4f; }
  .approx { color: #9a6fd0; }
  #err { color: #c94f4f; min-height: 1.2em; }
</style>
</head>
<body>
<h1>dlserve <small id="meta">connecting…</small></h1>
<div class="tiles">
  <div class="tile"><b id="t-state">–</b><span>state</span></div>
  <div class="tile"><b id="t-workers">–</b><span>workers busy/total</span></div>
  <div class="tile"><b id="t-queued">–</b><span>queued specs</span></div>
  <div class="tile"><b id="t-active">–</b><span>active jobs</span></div>
  <div class="tile"><b id="t-exec">–</b><span>executed</span></div>
  <div class="tile"><b id="t-hit">–</b><span>cache hit rate</span></div>
</div>
<div class="tiles" id="fleet" hidden>
  <div class="tile"><b id="t-fleet">–</b><span>fleet workers</span></div>
  <div class="tile"><b id="t-leases">–</b><span>active leases</span></div>
  <div class="tile"><b id="t-backlog">–</b><span>retry backlog</span></div>
  <div class="tile"><b id="t-expiries">–</b><span>lease expiries</span></div>
  <div class="tile"><b id="t-quarantined">–</b><span>quarantined</span></div>
</div>
<div id="err"></div>
<table>
  <thead><tr>
    <th>job</th><th>state</th><th>prio</th><th>progress</th>
    <th>ok / cached / failed</th><th>elapsed</th>
  </tr></thead>
  <tbody id="jobs"></tbody>
</table>
<script>
"use strict";
const $ = id => document.getElementById(id);
const streams = new Map();   // job id -> EventSource
const live = new Map();      // job id -> latest stream counters

function fmtMS(ms) {
  if (ms < 1000) return ms + "ms";
  if (ms < 120000) return (ms / 1000).toFixed(1) + "s";
  return Math.round(ms / 60000) + "m";
}

function attach(job) {
  if (streams.has(job.id) || job.state !== "running") return;
  // EventSource sends Accept: text/event-stream, which flips the
  // existing stream endpoint into SSE mode.
  const es = new EventSource("/api/v1/jobs/" + job.id + "/stream");
  streams.set(job.id, es);
  es.onmessage = e => {
    const ev = JSON.parse(e.data);
    live.set(job.id, ev);
    render();
    if (ev.state) { es.close(); streams.delete(job.id); refresh(); }
  };
  es.onerror = () => { es.close(); streams.delete(job.id); };
}

let jobs = [];
function render() {
  const rows = jobs.map(j => {
    const ev = live.get(j.id);
    const done = ev ? ev.done : j.done, total = j.total;
    const executed = ev ? ev.executed : j.executed;
    const cached = ev ? ev.cached : j.cached;
    const failed = ev ? ev.failed : j.failed;
    // Sampled-engine outcomes are approximate: flag them so nobody
    // reads error-bar numbers as exact event-driven results.
    const approx = ev ? (ev.approximate || 0) : (j.approximate || 0);
    const pct = total ? Math.round(100 * done / total) : 0;
    return "<tr><td>" + j.id + "</td>" +
      '<td class="state-' + j.state + '">' + j.state + "</td>" +
      "<td>" + (j.priority || 0) + "</td>" +
      '<td><div class="bar"><i style="width:' + pct + '%"></i></div> ' +
        done + "/" + total + "</td>" +
      '<td><span class="ok">' + (executed - failed >= 0 ? executed : 0) + "</span> / " +
        '<span class="cached">' + cached + "</span> / " +
        '<span class="failed">' + failed + "</span>" +
        (approx ? ' · <span class="approx" title="sampled-engine results with error bars">≈' + approx + "</span>" : "") + "</td>" +
      "<td>" + fmtMS(j.elapsed_ms) + "</td></tr>";
  });
  $("jobs").innerHTML = rows.join("");
}

async function refresh() {
  try {
    const [h, js] = await Promise.all([
      fetch("/api/v1/health").then(r => r.json()),
      fetch("/api/v1/jobs").then(r => r.json()),
    ]);
    jobs = (js || []).slice().reverse(); // newest first
    $("t-state").textContent = h.state;
    $("t-workers").textContent = h.running + "/" + h.workers;
    $("t-queued").textContent = h.queued_specs;
    $("t-active").textContent = h.active_jobs;
    $("t-exec").textContent = h.executed;
    const lookups = h.executed + h.cache_hits;
    $("t-hit").textContent = lookups ? Math.round(100 * h.cache_hits / lookups) + "%" : "–";
    // The fleet row only appears once remote workers are part of the
    // picture (a dlwork connected, or fleet state left a trace).
    const fleet = (h.fleet_workers || 0) + (h.active_leases || 0) +
      (h.lease_expiries || 0) + (h.quarantined || 0);
    $("fleet").hidden = !fleet;
    $("t-fleet").textContent = h.fleet_workers || 0;
    $("t-leases").textContent = h.active_leases || 0;
    $("t-backlog").textContent = h.retry_backlog || 0;
    $("t-expiries").textContent = h.lease_expiries || 0;
    $("t-quarantined").textContent = h.quarantined || 0;
    $("meta").textContent = (h.version || "dev") +
      (h.revision ? " @ " + h.revision.slice(0, 10) : "") +
      " · up " + fmtMS(h.uptime_ms) + " · cache " + (h.cache_dir || "off");
    $("err").textContent = "";
    jobs.forEach(attach);
    render();
  } catch (e) {
    $("err").textContent = "refresh failed: " + e;
  }
}
refresh();
setInterval(refresh, 2500);
</script>
</body>
</html>
`
