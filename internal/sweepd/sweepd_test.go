package sweepd

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dramlat"
	"dramlat/internal/sweep"
)

// stubRunner counts executions per hash and can block until released,
// so tests control exactly when specs finish.
type stubRunner struct {
	mu      sync.Mutex
	runs    map[string]int
	order   []int64 // seeds in completion order
	total   atomic.Int64
	gate    chan struct{} // nil: run immediately; else: wait for release
	failFor map[string]error
}

func newStubRunner() *stubRunner {
	return &stubRunner{runs: map[string]int{}, failFor: map[string]error{}}
}

func (r *stubRunner) run(sp dramlat.RunSpec) (dramlat.Results, error) {
	if r.gate != nil {
		<-r.gate
	}
	h := sp.Hash()
	r.mu.Lock()
	r.runs[h]++
	r.order = append(r.order, sp.Seed)
	err := r.failFor[h]
	r.mu.Unlock()
	r.total.Add(1)
	if err != nil {
		return dramlat.Results{}, err
	}
	return dramlat.Results{Ticks: 1000 + sp.Seed, Instr: 10, Drained: true}, nil
}

func (r *stubRunner) count(h string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.runs[h]
}

func (r *stubRunner) seedOrder() []int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]int64(nil), r.order...)
}

func specN(seed int64) dramlat.RunSpec {
	return dramlat.RunSpec{Benchmark: "bfs", Scheduler: "gmc", Seed: seed,
		Scale: 0.05, SMs: 2, WarpsPerSM: 4}
}

func specList(seeds ...int64) []dramlat.RunSpec {
	out := make([]dramlat.RunSpec, len(seeds))
	for i, s := range seeds {
		out[i] = specN(s)
	}
	return out
}

func newTestServer(t *testing.T, run *stubRunner, workers int) *Server {
	t.Helper()
	cache, err := sweep.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := New(&sweep.Engine{Workers: workers, Cache: cache, Runner: run.run}, nil)
	t.Cleanup(s.Close)
	return s
}

// waitJob blocks until the job reaches a terminal state (the Events
// primitive is the same path the streaming endpoint uses).
func waitJob(t *testing.T, s *Server, id string) JobStatus {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	offset := 0
	for {
		evs, state, err := s.Events(ctx, id, offset)
		if err != nil {
			t.Fatalf("events(%s): %v", id, err)
		}
		offset += len(evs)
		if state.terminal() {
			st, err := s.Status(id)
			if err != nil {
				t.Fatal(err)
			}
			return st
		}
	}
}

func TestSubmitRunsJobToCompletion(t *testing.T) {
	run := newStubRunner()
	s := newTestServer(t, run, 4)
	st, err := s.Submit(specList(1, 2, 3, 4, 2), 0) // seed 2 duplicated
	if err != nil {
		t.Fatal(err)
	}
	if st.Total != 5 || st.State != JobRunning {
		t.Fatalf("submit status %+v", st)
	}
	fin := waitJob(t, s, st.ID)
	if fin.State != JobDone || fin.Done != 5 {
		t.Fatalf("final status %+v", fin)
	}
	// Engine accounting: 4 unique specs executed, the in-job duplicate
	// counts cached.
	if fin.Executed != 4 || fin.Cached != 1 || fin.Failed != 0 {
		t.Fatalf("counters %+v", fin)
	}
	if got := run.total.Load(); got != 4 {
		t.Fatalf("runner executed %d specs, want 4", got)
	}
	rep, _, err := s.Report(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	// Outcomes in input order, duplicate marked cached.
	for i, want := range []int64{1, 2, 3, 4, 2} {
		if rep.Outcomes[i].Spec.Seed != want {
			t.Fatalf("outcome %d seed %d, want %d", i, rep.Outcomes[i].Spec.Seed, want)
		}
		if rep.Outcomes[i].Err != nil {
			t.Fatalf("outcome %d: %v", i, rep.Outcomes[i].Err)
		}
	}
	if rep.Outcomes[4].Cached != true || rep.Outcomes[1].Cached {
		t.Fatalf("dedup cached flags: leader %v dup %v",
			rep.Outcomes[1].Cached, rep.Outcomes[4].Cached)
	}
}

// TestConcurrentOverlappingJobsExecuteOnce is the acceptance check: two
// overlapping grids submitted concurrently execute each distinct hash
// exactly once.
func TestConcurrentOverlappingJobsExecuteOnce(t *testing.T) {
	run := newStubRunner()
	run.gate = make(chan struct{})
	s := newTestServer(t, run, 4)

	a, err := s.Submit(specList(1, 2, 3, 4, 5, 6), 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Submit(specList(4, 5, 6, 7, 8), 0)
	if err != nil {
		t.Fatal(err)
	}
	close(run.gate) // release every blocked worker at once
	fa, fb := waitJob(t, s, a.ID), waitJob(t, s, b.ID)
	if fa.State != JobDone || fb.State != JobDone {
		t.Fatalf("states %v %v", fa.State, fb.State)
	}
	for seed := int64(1); seed <= 8; seed++ {
		if n := run.count(specN(seed).Hash()); n != 1 {
			t.Errorf("seed %d executed %d times, want exactly 1", seed, n)
		}
	}
	stats := s.Stats()
	if stats.Executed != 8 {
		t.Errorf("stats.Executed = %d, want 8", stats.Executed)
	}
	if stats.Deduped == 0 {
		t.Error("no dedup recorded for overlapping jobs")
	}
	// Job B's overlap (seeds 4-6) reads as cached/deduped, not executed.
	if fb.Executed+fb.Cached != 5 || fb.Failed != 0 {
		t.Errorf("job B counters %+v", fb)
	}
}

// TestResubmitFullyCacheServed: running the same specs again executes
// nothing — every outcome is a cache hit and the stats executed counter
// does not move.
func TestResubmitFullyCacheServed(t *testing.T) {
	run := newStubRunner()
	s := newTestServer(t, run, 2)
	st, _ := s.Submit(specList(1, 2, 3), 0)
	waitJob(t, s, st.ID)
	before := s.Stats()

	st2, _ := s.Submit(specList(1, 2, 3), 0)
	fin := waitJob(t, s, st2.ID)
	if fin.Cached != 3 || fin.Executed != 0 {
		t.Fatalf("resubmit counters %+v", fin)
	}
	after := s.Stats()
	if after.Executed != before.Executed {
		t.Fatalf("resubmit executed %d new specs", after.Executed-before.Executed)
	}
	if after.CacheHits != before.CacheHits+3 {
		t.Fatalf("cache hits %d -> %d, want +3", before.CacheHits, after.CacheHits)
	}
	if got := run.total.Load(); got != 3 {
		t.Fatalf("runner ran %d specs total, want 3", got)
	}
}

func TestPriorityOrdersQueue(t *testing.T) {
	run := newStubRunner()
	run.gate = make(chan struct{})
	s := newTestServer(t, run, 1)

	// Fill the single worker with a blocked spec, then queue a low- and
	// a high-priority job; the high one must run first.
	first, _ := s.Submit(specList(100), 0)
	// Wait until the worker actually claimed it.
	for s.Stats().Running == 0 {
		time.Sleep(time.Millisecond)
	}
	low, _ := s.Submit(specList(1), 0)
	high, _ := s.Submit(specList(2), 10)

	close(run.gate)
	waitJob(t, s, first.ID)
	waitJob(t, s, low.ID)
	waitJob(t, s, high.ID)
	order := run.seedOrder()
	if len(order) != 3 || order[0] != 100 || order[1] != 2 || order[2] != 1 {
		t.Fatalf("execution order %v, want [100 2 1] (high priority first)", order)
	}
}

func TestCancelJob(t *testing.T) {
	run := newStubRunner()
	run.gate = make(chan struct{})
	s := newTestServer(t, run, 1)

	blocker, _ := s.Submit(specList(100), 0)
	for s.Stats().Running == 0 {
		time.Sleep(time.Millisecond)
	}
	victim, _ := s.Submit(specList(1, 2, 3), 0)
	shared, _ := s.Submit(specList(3), 0) // waits on victim's seed-3 task

	st, err := s.Cancel(victim.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != JobCanceled || st.Done != 3 || st.Failed != 3 {
		t.Fatalf("canceled status %+v", st)
	}
	rep, _, _ := s.Report(victim.ID)
	for i, o := range rep.Outcomes {
		if !errors.Is(o.Err, context.Canceled) {
			t.Fatalf("outcome %d err %v, want context.Canceled", i, o.Err)
		}
	}
	// Canceling twice is a no-op, unknown IDs error.
	if _, err := s.Cancel(victim.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Cancel("job-999"); err == nil {
		t.Fatal("cancel of unknown job succeeded")
	}

	// The shared seed-3 task survives the cancellation (another job
	// still wants it); seeds 1-2 were dropped from the queue.
	close(run.gate)
	waitJob(t, s, blocker.ID)
	fin := waitJob(t, s, shared.ID)
	if fin.State != JobDone || fin.Failed != 0 {
		t.Fatalf("shared job %+v", fin)
	}
	if n := run.count(specN(1).Hash()); n != 0 {
		t.Errorf("canceled-only seed 1 ran %d times", n)
	}
	if n := run.count(specN(3).Hash()); n != 1 {
		t.Errorf("shared seed 3 ran %d times, want 1", n)
	}
}

// TestDrainMarksJobsResumable: drain finishes in-flight specs, persists
// them to the cache, marks unfinished jobs resumable, and a resubmission
// against a fresh server over the same cache serves the finished prefix
// without re-executing.
func TestDrainMarksJobsResumable(t *testing.T) {
	run := newStubRunner()
	cache, err := sweep.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	run.gate = make(chan struct{}, 64)
	s := New(&sweep.Engine{Workers: 1, Cache: cache, Runner: run.run}, nil)

	st, _ := s.Submit(specList(1, 2, 3), 0)
	run.gate <- struct{}{} // let exactly one spec through
	for {
		if js, _ := s.Status(st.ID); js.Done >= 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	// Start draining while the worker is parked on the gate, and only
	// then release it: draining is observed before another spec can be
	// dequeued, so the in-flight spec finishes and the rest never run.
	drainDone := make(chan struct{})
	go func() { s.Drain(); close(drainDone) }()
	for s.Stats().State != "draining" {
		time.Sleep(time.Millisecond)
	}
	close(run.gate)
	<-drainDone

	fin, _ := s.Status(st.ID)
	if fin.State != JobResumable {
		t.Fatalf("state %v, want resumable", fin.State)
	}
	if fin.Done != 3 {
		t.Fatalf("done %d after drain, want 3 (unfinished specs filled)", fin.Done)
	}
	rep, _, _ := s.Report(st.ID)
	drained := 0
	for _, o := range rep.Outcomes {
		if errors.Is(o.Err, ErrDrained) {
			drained++
		}
	}
	if drained == 0 || drained > 2 {
		t.Fatalf("%d drained outcomes, want 1 or 2", drained)
	}
	if _, err := s.Submit(specList(9), 0); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit while draining: %v", err)
	}
	ranBefore := run.total.Load()

	// Resume on a fresh server over the same cache: completed specs are
	// served from disk, only the drained remainder executes.
	s2 := New(&sweep.Engine{Workers: 1, Cache: cache, Runner: run.run}, nil)
	defer s2.Close()
	st2, _ := s2.Submit(specList(1, 2, 3), 0)
	fin2 := waitJob(t, s2, st2.ID)
	if fin2.State != JobDone || fin2.Failed != 0 {
		t.Fatalf("resumed job %+v", fin2)
	}
	reran := run.total.Load() - ranBefore
	if int(reran) != 3-int(fin2.Cached) {
		t.Fatalf("re-ran %d specs with %d cached", reran, fin2.Cached)
	}
	if fin2.Cached == 0 {
		t.Fatal("resume served nothing from the cache")
	}
}

func TestFailedSpecDoesNotPoisonJob(t *testing.T) {
	run := newStubRunner()
	boom := errors.New("boom")
	run.failFor[specN(2).Hash()] = boom
	s := newTestServer(t, run, 2)
	st, _ := s.Submit(specList(1, 2, 3), 0)
	fin := waitJob(t, s, st.ID)
	if fin.State != JobDone || fin.Failed != 1 {
		t.Fatalf("status %+v", fin)
	}
	rep, _, _ := s.Report(st.ID)
	if !errors.Is(rep.Outcomes[1].Err, boom) {
		t.Fatalf("outcome 1 err %v", rep.Outcomes[1].Err)
	}
	if rep.Outcomes[0].Err != nil || rep.Outcomes[2].Err != nil {
		t.Fatal("healthy specs affected by the failure")
	}
	// Failures are never cached: resubmitting re-runs the failed hash.
	run.mu.Lock()
	delete(run.failFor, specN(2).Hash())
	run.mu.Unlock()
	st2, _ := s.Submit(specList(2), 0)
	fin2 := waitJob(t, s, st2.ID)
	if fin2.Failed != 0 || fin2.Executed != 1 {
		t.Fatalf("retry %+v", fin2)
	}
}

func TestEventsReplayForLateSubscribers(t *testing.T) {
	run := newStubRunner()
	s := newTestServer(t, run, 2)
	st, _ := s.Submit(specList(1, 2, 3, 4), 0)
	waitJob(t, s, st.ID)

	// Subscribe after completion: the full log replays, then the
	// terminal state reports immediately.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	evs, state, err := s.Events(ctx, st.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if state != JobDone || len(evs) != 4 {
		t.Fatalf("replay: state %v, %d events", state, len(evs))
	}
	seen := map[int]bool{}
	for _, e := range evs {
		seen[e.Index] = true
		if e.Event.Outcome.Err != nil {
			t.Fatalf("event outcome err %v", e.Event.Outcome.Err)
		}
	}
	if len(seen) != 4 {
		t.Fatalf("events cover %d distinct specs, want 4", len(seen))
	}

	// A canceled subscriber context returns promptly with ctx.Err.
	cctx, ccancel := context.WithCancel(context.Background())
	ccancel()
	if _, _, err := s.Events(cctx, st.ID, 99); !errors.Is(err, context.Canceled) {
		t.Fatalf("events with dead ctx: %v", err)
	}
}
