package client

// Worker is the fleet side of the sweepd lease protocol (the engine
// behind cmd/dlwork): a pull-based remote executor that claims queued
// specs from a server, heartbeats while simulating them, and returns
// typed outcomes over the sweep wire format. Fault handling mirrors
// the server's model:
//
//   - transport errors on claim back off exponentially and never give
//     up (the server may be restarting behind us);
//   - a lease the server declared gone (410) cancels the in-flight
//     simulation — the spec was re-queued elsewhere or the job died;
//   - heartbeat transport failures do NOT cancel execution: if the
//     partition heals, the finished result is still submitted, and
//     "late completion wins" on the server retires the re-queued copy;
//   - completion submissions retry with backoff a bounded number of
//     times, then drop the result (the server will re-lease the spec).

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"dramlat/internal/guard/backoff"
	"dramlat/internal/sweep"
	"dramlat/internal/sweepd"
)

// Worker pulls specs from one sweepd server and executes them on a
// local sweep.Engine. Configure the fields before Run; zero values
// get sensible defaults.
type Worker struct {
	// Remote is the server connection (required).
	Remote *Remote
	// Eng executes claimed specs (required): its cache gives this
	// worker private hits, its runner/timeout apply per spec.
	Eng *sweep.Engine
	// Name identifies this worker to the server; default "host-pid".
	Name string
	// Concurrency is how many specs run at once (default 1).
	Concurrency int
	// Poll is the claim long-poll window (default 15s).
	Poll time.Duration
	// Backoff paces claim/complete retries after transport errors.
	// The zero value is backoff.Default().
	Backoff backoff.Policy
	// Logger receives worker lifecycle logs; nil discards them.
	Logger *slog.Logger

	claimed   atomic.Int64
	completed atomic.Int64
	abandoned atomic.Int64
}

// Stats reports lifetime counters: specs claimed, outcomes delivered,
// and specs abandoned (lease gone or result unwanted).
func (w *Worker) Stats() (claimed, completed, abandoned int64) {
	return w.claimed.Load(), w.completed.Load(), w.abandoned.Load()
}

func (w *Worker) name() string {
	if w.Name != "" {
		return w.Name
	}
	host, _ := os.Hostname()
	if host == "" {
		host = "worker"
	}
	return fmt.Sprintf("%s-%d", host, os.Getpid())
}

func (w *Worker) poll() time.Duration {
	if w.Poll > 0 {
		return w.Poll
	}
	return 15 * time.Second
}

func (w *Worker) logger() *slog.Logger {
	if w.Logger != nil {
		return w.Logger
	}
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// Run claims and executes specs until ctx is canceled or the server
// begins draining (both return nil — the worker exited on purpose).
// Canceling ctx stops claiming; specs already leased finish and their
// outcomes are still delivered (the graceful-shutdown path of
// cmd/dlwork). It is the blocking main loop of cmd/dlwork.
func (w *Worker) Run(ctx context.Context) error {
	n := w.Concurrency
	if n <= 0 {
		n = 1
	}
	name := w.name()
	log := w.logger().With("worker", name)
	log.Info("worker up", "server", w.Remote.BaseURL, "concurrency", n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			w.slot(ctx, name, log.With("slot", slot))
		}(i)
	}
	wg.Wait()
	log.Info("worker down",
		"claimed", w.claimed.Load(), "completed", w.completed.Load())
	return nil
}

// slot is one claim-execute-complete loop.
func (w *Worker) slot(ctx context.Context, name string, log *slog.Logger) {
	fails := 0
	for ctx.Err() == nil {
		resp, err := w.Remote.Claim(ctx, name, w.poll())
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			fails++
			log.Debug("claim failed, backing off", "attempt", fails, "err", err)
			if w.Backoff.Sleep(ctx, fails-1) != nil {
				return
			}
			continue
		}
		fails = 0
		if resp.Draining {
			log.Info("server draining, worker exiting")
			return
		}
		if resp.LeaseID == "" {
			continue // queue empty; the claim already long-polled
		}
		w.claimed.Add(1)
		w.execute(ctx, resp, log)
	}
}

// execute runs one leased spec with a heartbeat loop alongside, then
// submits the outcome. Execution is detached from the claim context:
// a worker asked to shut down finishes (and delivers) what it holds —
// only the server saying "lease gone" aborts a simulation mid-run.
func (w *Worker) execute(ctx context.Context, lease sweepd.ClaimResponse, log *slog.Logger) {
	log = log.With("lease", lease.LeaseID, "hash", lease.Hash)
	log.Debug("lease claimed", "attempt", lease.Attempt)
	runCtx, cancel := context.WithCancel(context.WithoutCancel(ctx))
	defer cancel()
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		w.heartbeat(runCtx, cancel, lease.LeaseID, time.Duration(lease.TTLMS)*time.Millisecond, log)
	}()

	o := w.runSpec(runCtx, lease)
	abandoned := runCtx.Err() != nil
	cancel() // stop the heartbeat loop
	<-hbDone

	if abandoned && o.Err != nil {
		// The heartbeat loop canceled us (lease gone / abandon): the
		// result is a context-canceled outcome nobody wants.
		w.abandoned.Add(1)
		log.Debug("spec abandoned mid-run")
		return
	}

	// Submit with bounded retries: the result embodies real compute, so
	// ride out a short server restart, but do not hold the slot forever
	// — an expired lease just re-queues the spec.
	subCtx := context.WithoutCancel(ctx)
	for attempt := 0; ; attempt++ {
		resp, err := w.Remote.Complete(subCtx, lease.LeaseID, lease.Hash, o)
		switch {
		case err == nil:
			w.completed.Add(1)
			log.Debug("outcome delivered", "kind", string(o.Kind()), "late", resp.Late)
			return
		case errors.Is(err, sweepd.ErrLeaseGone):
			w.abandoned.Add(1)
			log.Debug("outcome not wanted", "kind", string(o.Kind()))
			return
		case attempt >= 4:
			w.abandoned.Add(1)
			log.Warn("dropping outcome after repeated submit failures", "err", err)
			return
		}
		if w.Backoff.Sleep(subCtx, attempt) != nil {
			return
		}
	}
}

// runSpec produces the spec's outcome: the worker's private cache
// first, then the server's shared result store by content hash, then
// a fresh simulation (which lands in the private cache). Failures of
// every kind come back as typed outcomes — a panic that dramlat.Run
// can recover becomes a RunError; one that kills the process becomes
// a lease expiry on the server.
func (w *Worker) runSpec(ctx context.Context, lease sweepd.ClaimResponse) sweep.Outcome {
	spec := *lease.Spec
	o := sweep.Outcome{Spec: spec, Hash: lease.Hash}
	if res, ok := w.Eng.Cache.Get(spec); ok {
		o.Results, o.Cached = res, true
		return o
	}
	if _, res, err := w.Remote.Result(ctx, lease.Hash); err == nil {
		o.Results, o.Cached = res, true
		return o
	}
	return w.Eng.RunOneContext(ctx, spec)
}

// heartbeat renews the lease every TTL/3 until ctx ends. A server
// that answers "gone" (or asks to abandon) cancels the simulation;
// transport errors are tolerated indefinitely — if the partition
// heals the lease may still be alive, and if it is not, the finished
// result rides the late-completion path.
func (w *Worker) heartbeat(ctx context.Context, cancel context.CancelFunc, leaseID string, ttl time.Duration, log *slog.Logger) {
	every := ttl / 3
	if every <= 0 {
		every = time.Second
	}
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		resp, err := w.Remote.Heartbeat(ctx, leaseID)
		switch {
		case errors.Is(err, sweepd.ErrLeaseGone):
			log.Debug("lease gone, canceling run")
			cancel()
			return
		case err != nil:
			log.Debug("heartbeat failed", "err", err)
		case resp.Abandon:
			log.Debug("server asked to abandon, canceling run")
			cancel()
			return
		}
	}
}
