package client

import (
	"bytes"
	"context"
	"errors"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"dramlat"
	"dramlat/internal/sweep"
	"dramlat/internal/sweepd"
)

// countingRunner is a deterministic stand-in for dramlat.Run that
// counts executions, so tests can assert cache-vs-execute behavior.
type countingRunner struct {
	mu   sync.Mutex
	runs int
}

func (c *countingRunner) run(sp dramlat.RunSpec) (dramlat.Results, error) {
	c.mu.Lock()
	c.runs++
	c.mu.Unlock()
	if sp.Benchmark == "explode" {
		return dramlat.Results{}, &dramlat.StallError{Kind: dramlat.StallNoProgress, Cycle: 7}
	}
	return dramlat.Results{Scheduler: sp.Scheduler, Workload: sp.Benchmark,
		Ticks: 5000 + sp.Seed, Instr: 100 * sp.Seed, Drained: true}, nil
}

func (c *countingRunner) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.runs
}

func startService(t *testing.T) (*Remote, *sweepd.Server, *countingRunner) {
	t.Helper()
	cache, err := sweep.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	run := &countingRunner{}
	srv := sweepd.New(&sweep.Engine{Workers: 2, Cache: cache, Runner: run.run}, nil)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return &Remote{BaseURL: ts.URL, HTTP: ts.Client()}, srv, run
}

func grid2x2() sweep.Grid {
	return sweep.Grid{Benchmarks: []string{"bfs", "spmv"},
		Schedulers: []string{"gmc", "wg-w"},
		Scales:     []float64{0.05}, SMs: []int{2}, WarpsPerSM: []int{4}}
}

// TestRemoteMatchesLocalRun is the acceptance check: the same grid via
// the service produces a report identical to a local engine run —
// outcomes, order, cached flags, counters (elapsed aside, which is
// wall-clock on both sides).
func TestRemoteMatchesLocalRun(t *testing.T) {
	r, _, _ := startService(t)
	specs := grid2x2().Enumerate()

	// Local run with the same deterministic runner and a fresh cache.
	localCache, _ := sweep.OpenCache(t.TempDir())
	local := (&sweep.Engine{Workers: 2, Cache: localCache,
		Runner: (&countingRunner{}).run}).Run(specs)

	var events []sweep.Event
	r.Progress = func(ev sweep.Event) { events = append(events, ev) }
	remote := r.RunContext(context.Background(), specs)

	if remote.Executed != local.Executed || remote.Cached != local.Cached ||
		remote.Failed != local.Failed {
		t.Fatalf("counters: remote %d/%d/%d local %d/%d/%d",
			remote.Executed, remote.Cached, remote.Failed,
			local.Executed, local.Cached, local.Failed)
	}
	if len(remote.Outcomes) != len(local.Outcomes) {
		t.Fatalf("outcome count %d vs %d", len(remote.Outcomes), len(local.Outcomes))
	}
	for i := range local.Outcomes {
		lo, ro := local.Outcomes[i], remote.Outcomes[i]
		lo.Elapsed, ro.Elapsed = 0, 0
		if !reflect.DeepEqual(lo, ro) {
			t.Errorf("outcome %d differs:\n local %+v\n remote %+v", i, lo, ro)
		}
	}
	if len(events) != len(specs) {
		t.Errorf("progress saw %d events, want %d", len(events), len(specs))
	}

	// Resubmission: everything cache-served, nothing executed.
	again := r.RunContext(context.Background(), specs)
	if again.Cached != len(specs) || again.Executed != 0 {
		t.Fatalf("resubmit: %d cached %d executed", again.Cached, again.Executed)
	}
	st, err := r.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Executed != int64(len(specs)) {
		t.Fatalf("stats executed %d after resubmit, want %d", st.Executed, len(specs))
	}
}

func TestSubmitGridAndFetchByHash(t *testing.T) {
	r, _, _ := startService(t)
	ctx := context.Background()
	st, err := r.Submit(ctx, sweepd.SubmitRequest{Grid: ptr(grid2x2())})
	if err != nil {
		t.Fatal(err)
	}
	if st.Total != 4 {
		t.Fatalf("grid submitted %d specs, want 4", st.Total)
	}
	state, err := r.Stream(ctx, st.ID, nil)
	if err != nil || state != sweepd.JobDone {
		t.Fatalf("stream: state %v err %v", state, err)
	}
	rep, job, err := r.Report(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if job.State != sweepd.JobDone || len(rep.Outcomes) != 4 {
		t.Fatalf("report: %+v, %d outcomes", job, len(rep.Outcomes))
	}
	// Every outcome is fetchable by content hash.
	for _, o := range rep.Outcomes {
		spec, res, err := r.Result(ctx, o.Hash)
		if err != nil {
			t.Fatalf("result %s: %v", o.Hash, err)
		}
		if res != o.Results || spec.Hash() != o.Hash {
			t.Fatalf("result %s mismatch", o.Hash)
		}
	}
	if _, _, err := r.Result(ctx, "0000000000000000000000000000000000000000000000000000000000000000"); err == nil {
		t.Fatal("absent hash fetch succeeded")
	}
}

func TestRemoteRevivesTypedErrors(t *testing.T) {
	r, _, _ := startService(t)
	o := r.RunOneContext(context.Background(), dramlat.RunSpec{
		Benchmark: "explode", Scheduler: "gmc", Scale: 0.05, SMs: 2, WarpsPerSM: 4})
	var se *dramlat.StallError
	if !errors.As(o.Err, &se) {
		t.Fatalf("remote error %v (%T) lost its type", o.Err, o.Err)
	}
	if se.Kind != dramlat.StallNoProgress || se.Cycle != 7 {
		t.Fatalf("stall payload drifted: %+v", se)
	}
}

func TestBadGridRejectedWithFields(t *testing.T) {
	r, _, _ := startService(t)
	g := sweep.Grid{Benchmarks: []string{"nope"}}
	_, err := r.Submit(context.Background(), sweepd.SubmitRequest{Grid: &g})
	if err == nil {
		t.Fatal("bad grid accepted")
	}
	var ve *dramlat.ValidationError
	if !errors.As(err, &ve) {
		t.Fatalf("error %v (%T) is not a revived *ValidationError", err, err)
	}
	if len(ve.Fields) != 1 || ve.Fields[0].Field != "benchmarks[0]" {
		t.Fatalf("fields %+v", ve.Fields)
	}
}

func TestCancelOverHTTP(t *testing.T) {
	r, srv, _ := startService(t)
	_ = srv
	ctx := context.Background()
	st, err := r.Submit(ctx, sweepd.SubmitRequest{Specs: []dramlat.RunSpec{
		{Benchmark: "bfs", Scheduler: "gmc", Scale: 0.05, SMs: 2, WarpsPerSM: 4}}})
	if err != nil {
		t.Fatal(err)
	}
	// The job may already be done (tiny spec, fast runner); cancel must
	// succeed either way and the job must end terminal.
	if _, err := r.Cancel(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	fin, err := r.Status(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != sweepd.JobCanceled && fin.State != sweepd.JobDone {
		t.Fatalf("state after cancel: %v", fin.State)
	}
	if _, err := r.Cancel(ctx, "job-12345"); err == nil {
		t.Fatal("cancel of unknown job succeeded over HTTP")
	}
}

func ptr[T any](v T) *T { return &v }

// TestRemoteTelemetryArtifacts drives the whole remote-capture loop: a
// Remote with Telemetry set submits a real (tiny) simulation, the
// server captures artifacts, and DownloadArtifacts lands byte-identical
// copies locally under the server's <hash>.<name> layout.
func TestRemoteTelemetryArtifacts(t *testing.T) {
	artDir := t.TempDir()
	cache, err := sweep.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := sweepd.New(&sweep.Engine{Workers: 1, Cache: cache, TelemetryDir: artDir}, nil)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	r := &Remote{BaseURL: ts.URL, HTTP: ts.Client(),
		Telemetry: &dramlat.TelemetryOptions{Events: true, SampleEvery: 200}}

	spec := dramlat.RunSpec{
		Benchmark: "bfs", Scheduler: "wg-w", Scale: 0.05, SMs: 2, WarpsPerSM: 4,
	}
	rep := r.RunContext(context.Background(), []dramlat.RunSpec{spec})
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}

	hash := spec.Hash()
	arts, err := r.Artifacts(context.Background(), hash)
	if err != nil {
		t.Fatal(err)
	}
	if len(arts) != 3 {
		t.Fatalf("artifacts %+v, want events.jsonl + both CSVs", arts)
	}

	dest := t.TempDir()
	paths, err := r.DownloadArtifacts(context.Background(), hash, dest)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 3 {
		t.Fatalf("downloaded %v, want 3 files", paths)
	}
	for _, p := range paths {
		local, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		remote, err := os.ReadFile(filepath.Join(artDir, filepath.Base(p)))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(local, remote) {
			t.Errorf("%s differs from server-side copy", filepath.Base(p))
		}
	}

	// Unknown hash: typed not-found error, no files written.
	if _, err := r.DownloadArtifacts(context.Background(),
		strings.Repeat("ab", 32), t.TempDir()); err == nil {
		t.Fatal("DownloadArtifacts for unknown hash succeeded")
	}
}
