package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dramlat"
	"dramlat/internal/guard/backoff"
	"dramlat/internal/metrics"
	"dramlat/internal/sweep"
	"dramlat/internal/sweepd"
)

// Chaos tests: the fleet (dlserve + dlwork, in-process) under worker
// death, dropped heartbeats and network partitions, asserting reports
// stay byte-identical to local execution throughout.

// tinyBackoff keeps every retry loop fast and deterministic in tests.
var tinyBackoff = backoff.Policy{Base: time.Millisecond, Cap: 2 * time.Millisecond, Factor: 2}

// startFleetService runs a sweepd server (usually fleet-only) behind
// httptest and returns a connected Remote.
func startFleetService(t *testing.T, opts sweepd.Options) (*Remote, *sweepd.Server) {
	t.Helper()
	cache, err := sweep.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if opts.RetryBackoff == (backoff.Policy{}) {
		opts.RetryBackoff = tinyBackoff
	}
	run := &countingRunner{}
	srv := sweepd.NewWithOptions(&sweep.Engine{Workers: 2, Cache: cache, Runner: run.run},
		nil, metrics.NewRegistry(), opts)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return &Remote{BaseURL: ts.URL, HTTP: ts.Client()}, srv
}

// newTestWorker builds a Worker with its own engine, cache and runner.
func newTestWorker(t *testing.T, r *Remote, name string) (*Worker, *countingRunner) {
	t.Helper()
	cache, err := sweep.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	run := &countingRunner{}
	w := &Worker{
		Remote:  r,
		Eng:     &sweep.Engine{Workers: 1, Cache: cache, Runner: run.run},
		Name:    name,
		Poll:    time.Second,
		Backoff: tinyBackoff,
	}
	return w, run
}

// runWorkers starts n workers against r and returns a stop function
// that shuts them down and waits for them to exit.
func runWorkers(t *testing.T, r *Remote, n int) func() {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		w, _ := newTestWorker(t, r, fmt.Sprintf("w%d", i))
		wg.Add(1)
		go func() { defer wg.Done(); w.Run(ctx) }()
	}
	stop := func() { cancel(); wg.Wait() }
	t.Cleanup(stop)
	return stop
}

// faultTransport injects transport-level failures (the in-process
// stand-in for a network partition): requests whose URL path contains
// path fail while failN != 0 (-1 = fail forever).
type faultTransport struct {
	base  http.RoundTripper
	mu    sync.Mutex
	path  string
	failN int
}

func (f *faultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	f.mu.Lock()
	fail := (f.path == "" || strings.Contains(req.URL.Path, f.path)) && f.failN != 0
	if fail && f.failN > 0 {
		f.failN--
	}
	f.mu.Unlock()
	if fail {
		return nil, fmt.Errorf("faultTransport: injected partition on %s", req.URL.Path)
	}
	return f.base.RoundTrip(req)
}

func (f *faultTransport) remaining() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.failN
}

// assertIdentical compares a fleet-produced report against a local
// engine run of the same specs — outcomes, order, counters; only
// wall-clock Elapsed is exempt.
func assertIdentical(t *testing.T, local, remote *sweep.Report) {
	t.Helper()
	if remote.Executed != local.Executed || remote.Cached != local.Cached ||
		remote.Failed != local.Failed {
		t.Fatalf("counters: remote %d/%d/%d local %d/%d/%d",
			remote.Executed, remote.Cached, remote.Failed,
			local.Executed, local.Cached, local.Failed)
	}
	if len(remote.Outcomes) != len(local.Outcomes) {
		t.Fatalf("outcome count %d vs %d", len(remote.Outcomes), len(local.Outcomes))
	}
	for i := range local.Outcomes {
		lo, ro := local.Outcomes[i], remote.Outcomes[i]
		lo.Elapsed, ro.Elapsed = 0, 0
		if !reflect.DeepEqual(lo, ro) {
			t.Errorf("outcome %d differs:\n local %+v\n remote %+v", i, lo, ro)
		}
	}
}

func localRun(t *testing.T, specs []dramlat.RunSpec) *sweep.Report {
	t.Helper()
	cache, err := sweep.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return (&sweep.Engine{Workers: 2, Cache: cache, Runner: (&countingRunner{}).run}).Run(specs)
}

// TestFleetMatchesLocalRun is the fleet acceptance check: a grid run
// through a fleet-only server and two remote workers produces the
// exact report a local engine produces.
func TestFleetMatchesLocalRun(t *testing.T) {
	r, _ := startFleetService(t, sweepd.Options{LocalWorkers: -1})
	specs := grid2x2().Enumerate()
	runWorkers(t, r, 2)

	remote := r.RunContext(context.Background(), specs)
	assertIdentical(t, localRun(t, specs), remote)

	st, err := r.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.FleetWorkers != 2 {
		t.Fatalf("server saw %d fleet workers, want 2", st.FleetWorkers)
	}
	if st.Quarantined != 0 || st.LeaseExpiries != 0 {
		t.Fatalf("healthy fleet reported faults: %+v", st)
	}
}

// TestFleetSurvivesKilledWorker SIGKILLs a worker mid-spec (modeled
// faithfully: the "worker" claims a lease and then never speaks again
// — exactly what the server observes after a kill -9). The lease
// expires, the spec re-queues, a healthy worker finishes the job, and
// the report is still byte-identical to a local run.
func TestFleetSurvivesKilledWorker(t *testing.T) {
	r, _ := startFleetService(t, sweepd.Options{
		LocalWorkers: -1, LeaseTTL: 100 * time.Millisecond, SweepEvery: 10 * time.Millisecond,
	})
	ctx := context.Background()
	specs := grid2x2().Enumerate()
	st, err := r.Submit(ctx, sweepd.SubmitRequest{Specs: specs})
	if err != nil {
		t.Fatal(err)
	}
	dead, err := r.Claim(ctx, "doomed", time.Second)
	if err != nil || dead.LeaseID == "" {
		t.Fatalf("doomed claim: %+v err %v", dead, err)
	}
	// kill -9: no heartbeat, no completion, ever.

	runWorkers(t, r, 1)
	state, err := r.Stream(ctx, st.ID, nil)
	if err != nil || state != sweepd.JobDone {
		t.Fatalf("stream: state %v err %v", state, err)
	}
	rep, job, err := r.Report(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if job.Failed != 0 || job.Executed != len(specs) {
		t.Fatalf("job after worker death: %+v", job)
	}
	assertIdentical(t, localRun(t, specs), rep)

	health, err := r.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if health.LeaseExpiries < 1 || health.Retried < 1 {
		t.Fatalf("server never noticed the death: %+v", health)
	}
}

// TestFleetToleratesDroppedHeartbeats: every heartbeat is lost in the
// network, the lease expires mid-run, and the slow worker's finished
// result still lands via the late-completion path — the spec is not
// executed twice.
func TestFleetToleratesDroppedHeartbeats(t *testing.T) {
	r, _ := startFleetService(t, sweepd.Options{
		LocalWorkers: -1, LeaseTTL: 150 * time.Millisecond, SweepEvery: 10 * time.Millisecond,
	})
	ctx := context.Background()
	ft := &faultTransport{base: r.HTTP.Transport, path: "/workers/heartbeat", failN: -1}
	wr := &Remote{BaseURL: r.BaseURL, HTTP: &http.Client{Transport: ft}}

	w, run := newTestWorker(t, wr, "deaf")
	w.Eng.Runner = func(sp dramlat.RunSpec) (dramlat.Results, error) {
		time.Sleep(600 * time.Millisecond) // well past the lease TTL
		return run.run(sp)
	}
	wctx, wcancel := context.WithCancel(ctx)
	workerDone := make(chan struct{})
	go func() { defer close(workerDone); w.Run(wctx) }()
	defer func() { wcancel(); <-workerDone }()

	st, err := r.Submit(ctx, sweepd.SubmitRequest{Specs: grid2x2().Enumerate()[:1]})
	if err != nil {
		t.Fatal(err)
	}
	state, err := r.Stream(ctx, st.ID, nil)
	if err != nil || state != sweepd.JobDone {
		t.Fatalf("stream: state %v err %v", state, err)
	}
	if got := run.count(); got != 1 {
		t.Fatalf("spec executed %d times, want 1", got)
	}
	health, err := r.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if health.LateCompletions != 1 || health.LeaseExpiries != 1 {
		t.Fatalf("expected one expiry resolved late: %+v", health)
	}
}

// TestFleetRidesOutPartition: the network eats the first completion
// attempts; the worker's bounded retry/backoff loop delivers the
// result once the partition heals, and the job completes normally.
func TestFleetRidesOutPartition(t *testing.T) {
	r, _ := startFleetService(t, sweepd.Options{LocalWorkers: -1})
	ctx := context.Background()
	ft := &faultTransport{base: r.HTTP.Transport, path: "/workers/complete", failN: 2}
	wr := &Remote{BaseURL: r.BaseURL, HTTP: &http.Client{Transport: ft}}

	w, run := newTestWorker(t, wr, "flaky-net")
	wctx, wcancel := context.WithCancel(ctx)
	workerDone := make(chan struct{})
	go func() { defer close(workerDone); w.Run(wctx) }()
	defer func() { wcancel(); <-workerDone }()

	st, err := r.Submit(ctx, sweepd.SubmitRequest{Specs: grid2x2().Enumerate()[:1]})
	if err != nil {
		t.Fatal(err)
	}
	state, err := r.Stream(ctx, st.ID, nil)
	if err != nil || state != sweepd.JobDone {
		t.Fatalf("stream: state %v err %v", state, err)
	}
	// The server marks the job done inside the Complete handler, before
	// the worker's HTTP call returns and its counter ticks — stop the
	// worker (which waits out in-flight delivery) before reading stats.
	wcancel()
	<-workerDone
	if got := run.count(); got != 1 {
		t.Fatalf("spec executed %d times, want 1", got)
	}
	if ft.remaining() != 0 {
		t.Fatalf("partition never exercised: %d injected failures left", ft.remaining())
	}
	if _, completed, _ := w.Stats(); completed != 1 {
		t.Fatalf("worker delivered %d outcomes, want 1", completed)
	}
}

// TestFleetQuarantineOverHTTP: a spec that kills every worker that
// touches it (leases granted, never completed) ends as a typed
// QuarantineError in the report — revived across the wire — and the
// job terminates instead of cycling forever.
func TestFleetQuarantineOverHTTP(t *testing.T) {
	r, _ := startFleetService(t, sweepd.Options{
		LocalWorkers: -1, LeaseTTL: 50 * time.Millisecond,
		SweepEvery: 10 * time.Millisecond, LeaseAttempts: 2,
	})
	ctx := context.Background()
	st, err := r.Submit(ctx, sweepd.SubmitRequest{Specs: grid2x2().Enumerate()[:1]})
	if err != nil {
		t.Fatal(err)
	}
	granted := 0
	for deadline := time.Now().Add(15 * time.Second); granted < 2; {
		if time.Now().After(deadline) {
			t.Fatalf("only %d leases granted before deadline", granted)
		}
		resp, err := r.Claim(ctx, "crashy", 500*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if resp.LeaseID != "" {
			granted++ // claimed — and now we "crash" without a word
		}
	}
	state, err := r.Stream(ctx, st.ID, nil)
	if err != nil || state != sweepd.JobDone {
		t.Fatalf("stream: state %v err %v", state, err)
	}
	rep, job, err := r.Report(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if job.Failed != 1 || job.Done != 1 {
		t.Fatalf("poison job: %+v", job)
	}
	var qe *dramlat.QuarantineError
	if !errors.As(rep.Outcomes[0].Err, &qe) {
		t.Fatalf("outcome error %v (%T) is not a QuarantineError",
			rep.Outcomes[0].Err, rep.Outcomes[0].Err)
	}
	if qe.Attempts != 2 || qe.LastWorker != "crashy" {
		t.Fatalf("quarantine payload: %+v", qe)
	}
	health, err := r.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if health.Quarantined != 1 {
		t.Fatalf("stats: %+v", health)
	}
}

// cutAfter aborts the connection (http.ErrAbortHandler) after passing
// through a fixed number of writes — one NDJSON event per write.
type cutAfter struct {
	http.ResponseWriter
	remaining int
}

func (c *cutAfter) Write(b []byte) (int, error) {
	if c.remaining <= 0 {
		panic(http.ErrAbortHandler)
	}
	c.remaining--
	return c.ResponseWriter.Write(b)
}

func (c *cutAfter) Flush() {
	if f, ok := c.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// startFlakyStreamService runs a local-execution sweepd server whose
// /stream responses are sabotaged by shape: cut > 0 aborts the
// connection after that many event lines on the FIRST stream request;
// cut == 0 aborts every stream request before any byte is written.
func startFlakyStreamService(t *testing.T, cut int) (*Remote, *atomic.Int32) {
	t.Helper()
	cache, err := sweep.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	run := &countingRunner{}
	srv := sweepd.NewWithOptions(&sweep.Engine{Workers: 2, Cache: cache, Runner: run.run},
		nil, metrics.NewRegistry(), sweepd.Options{})
	inner := srv.Handler()
	var streamReqs atomic.Int32
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/stream") {
			n := streamReqs.Add(1)
			if cut == 0 {
				panic(http.ErrAbortHandler) // dead proxy: no response, ever
			}
			if n == 1 {
				w = &cutAfter{ResponseWriter: w, remaining: cut}
			}
		}
		inner.ServeHTTP(w, r)
	})
	ts := httptest.NewServer(h)
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return &Remote{BaseURL: ts.URL, HTTP: ts.Client(), Backoff: tinyBackoff}, &streamReqs
}

// TestStreamReconnectsAcrossDrops: a stream cut mid-job resumes from
// ?offset=N — every outcome is delivered exactly once and the terminal
// state still arrives.
func TestStreamReconnectsAcrossDrops(t *testing.T) {
	r, streamReqs := startFlakyStreamService(t, 2)
	ctx := context.Background()
	st, err := r.Submit(ctx, sweepd.SubmitRequest{Grid: ptr(grid2x2())})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	events := 0
	state, err := r.Stream(ctx, st.ID, func(ev sweepd.StreamEvent) {
		if ev.Outcome != nil {
			events++
			seen[ev.Outcome.Hash]++
		}
	})
	if err != nil || state != sweepd.JobDone {
		t.Fatalf("stream: state %v err %v", state, err)
	}
	if events != 4 || len(seen) != 4 {
		t.Fatalf("saw %d events over %d distinct hashes, want exactly-once over 4", events, len(seen))
	}
	for h, n := range seen {
		if n != 1 {
			t.Fatalf("hash %s delivered %d times", h, n)
		}
	}
	if n := streamReqs.Load(); n < 2 {
		t.Fatalf("stream reconnected %d times, want a cut + a resume", n)
	}
}

// TestStreamGivesUpAfterRetryBudget: a stream endpoint that never
// yields a byte exhausts the reconnect budget and surfaces an error
// instead of spinning forever.
func TestStreamGivesUpAfterRetryBudget(t *testing.T) {
	r, streamReqs := startFlakyStreamService(t, 0)
	r.StreamRetries = 2
	ctx := context.Background()
	st, err := r.Submit(ctx, sweepd.SubmitRequest{Grid: ptr(grid2x2())})
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.Stream(ctx, st.ID, nil)
	if err == nil || !strings.Contains(err.Error(), "giving up after") {
		t.Fatalf("stream against a dead endpoint: %v", err)
	}
	// Client-side: 1 attempt + 2 retries. Server-side the count can be
	// higher — net/http transparently replays a GET whose reused
	// keep-alive connection died before any response byte.
	if n := streamReqs.Load(); n < 3 {
		t.Fatalf("stream attempted %d connections, want at least 3 (1 + 2 retries)", n)
	}
}
