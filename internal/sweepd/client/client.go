// Package client is the typed Go client for the sweepd experiment
// service. Remote mirrors sweep.Engine's RunContext / RunOneContext
// surface, so cmd/dlsweep and cmd/dlbench switch between local and
// remote execution behind one interface and produce identical reports
// either way.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"time"

	"dramlat"
	"dramlat/internal/atomicio"
	"dramlat/internal/sweep"
	"dramlat/internal/sweepd"
)

// Remote executes sweeps on a sweepd server. The zero value is not
// usable; set BaseURL. Methods are safe for concurrent use.
type Remote struct {
	// BaseURL is the server root, e.g. "http://localhost:8080".
	BaseURL string
	// HTTP is the client to use; nil means http.DefaultClient.
	HTTP *http.Client
	// Priority rides along with every submitted job.
	Priority int
	// Telemetry, when non-nil, asks the server to capture per-spec
	// telemetry artifacts for jobs submitted through RunContext /
	// RunOneContext; fetch them afterwards with Artifacts / Artifact.
	// Requires a server running with an artifact dir.
	Telemetry *dramlat.TelemetryOptions
	// Progress, when non-nil, receives one event per streamed outcome
	// during RunContext, never concurrently — the same contract as
	// sweep.Engine.Progress.
	Progress func(sweep.Event)
}

func (r *Remote) httpClient() *http.Client {
	if r.HTTP != nil {
		return r.HTTP
	}
	return http.DefaultClient
}

func (r *Remote) url(path string) string {
	return strings.TrimRight(r.BaseURL, "/") + "/api/v1" + path
}

// apiError decodes the server's JSON error body into a Go error,
// reviving validation field lists.
func apiError(resp *http.Response) error {
	defer resp.Body.Close()
	var body struct {
		Error  string               `json:"error"`
		Fields []dramlat.FieldError `json:"fields"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body.Error == "" {
		return fmt.Errorf("sweepd client: server returned %s", resp.Status)
	}
	if len(body.Fields) > 0 {
		return &dramlat.ValidationError{Fields: body.Fields}
	}
	return fmt.Errorf("sweepd client: %s", body.Error)
}

func (r *Remote) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("sweepd client: encode request: %w", err)
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, r.url(path), body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := r.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("sweepd client: %w", err)
	}
	if resp.StatusCode/100 != 2 {
		return apiError(resp)
	}
	defer resp.Body.Close()
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("sweepd client: decode response: %w", err)
	}
	return nil
}

// Submit queues a job and returns its status without waiting for it.
func (r *Remote) Submit(ctx context.Context, req sweepd.SubmitRequest) (sweepd.JobStatus, error) {
	if req.Priority == 0 {
		req.Priority = r.Priority
	}
	var st sweepd.JobStatus
	err := r.do(ctx, http.MethodPost, "/jobs", req, &st)
	return st, err
}

// Status fetches one job's status.
func (r *Remote) Status(ctx context.Context, id string) (sweepd.JobStatus, error) {
	var st sweepd.JobStatus
	err := r.do(ctx, http.MethodGet, "/jobs/"+id, nil, &st)
	return st, err
}

// Jobs lists the server's jobs.
func (r *Remote) Jobs(ctx context.Context) ([]sweepd.JobStatus, error) {
	var out []sweepd.JobStatus
	err := r.do(ctx, http.MethodGet, "/jobs", nil, &out)
	return out, err
}

// Cancel aborts a job.
func (r *Remote) Cancel(ctx context.Context, id string) (sweepd.JobStatus, error) {
	var st sweepd.JobStatus
	err := r.do(ctx, http.MethodPost, "/jobs/"+id+"/cancel", nil, &st)
	return st, err
}

// Report fetches a job's full report: outcomes in input-spec order with
// typed failures revived (errors.As works on them), counters with
// engine semantics.
func (r *Remote) Report(ctx context.Context, id string) (*sweep.Report, sweepd.JobStatus, error) {
	var body sweepd.ReportResponse
	if err := r.do(ctx, http.MethodGet, "/jobs/"+id+"/report", nil, &body); err != nil {
		return nil, sweepd.JobStatus{}, err
	}
	rep := &sweep.Report{
		Outcomes: body.Outcomes,
		Executed: body.Job.Executed, Cached: body.Job.Cached, Failed: body.Job.Failed,
		Elapsed: time.Duration(body.Job.ElapsedMS) * time.Millisecond,
	}
	return rep, body.Job, nil
}

// Result fetches one cached result by spec content hash.
func (r *Remote) Result(ctx context.Context, hash string) (dramlat.RunSpec, dramlat.Results, error) {
	var body sweepd.ResultResponse
	if err := r.do(ctx, http.MethodGet, "/results/"+hash, nil, &body); err != nil {
		return dramlat.RunSpec{}, dramlat.Results{}, err
	}
	return body.Spec, body.Results, nil
}

// Artifacts lists the telemetry artifacts stored for one spec hash.
func (r *Remote) Artifacts(ctx context.Context, hash string) ([]sweepd.ArtifactInfo, error) {
	var body sweepd.ArtifactsResponse
	if err := r.do(ctx, http.MethodGet, "/results/"+hash+"/artifacts", nil, &body); err != nil {
		return nil, err
	}
	return body.Artifacts, nil
}

// Artifact streams one telemetry artifact ("events.jsonl",
// "channels.csv", "sms.csv"). The returned reader yields exactly the
// bytes of the server-side file; the caller must Close it.
func (r *Remote) Artifact(ctx context.Context, hash, name string) (io.ReadCloser, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		r.url("/results/"+hash+"/artifacts/"+name), nil)
	if err != nil {
		return nil, err
	}
	resp, err := r.httpClient().Do(req)
	if err != nil {
		return nil, fmt.Errorf("sweepd client: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	return resp.Body, nil
}

// DownloadArtifacts fetches every stored artifact of a spec into dir
// using the server's own layout (<dir>/<hash>.<name>), committing each
// file atomically. It returns the written paths; a hash with no
// artifacts is an error.
func (r *Remote) DownloadArtifacts(ctx context.Context, hash, dir string) ([]string, error) {
	arts, err := r.Artifacts(ctx, hash)
	if err != nil {
		return nil, err
	}
	var paths []string
	for _, art := range arts {
		rc, err := r.Artifact(ctx, hash, art.Name)
		if err != nil {
			return paths, err
		}
		w := atomicio.Create(filepath.Join(dir, hash+"."+art.Name))
		_, err = io.Copy(w, rc)
		rc.Close()
		if err != nil {
			return paths, fmt.Errorf("sweepd client: fetch artifact %s: %w", art.Name, err)
		}
		if err := w.Commit(); err != nil {
			return paths, err
		}
		paths = append(paths, filepath.Join(dir, hash+"."+art.Name))
	}
	return paths, nil
}

// Health fetches the server stats. A draining server answers (with
// State "draining"), so this doubles as the liveness probe.
func (r *Remote) Health(ctx context.Context) (sweepd.Stats, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.url("/health"), nil)
	if err != nil {
		return sweepd.Stats{}, err
	}
	resp, err := r.httpClient().Do(req)
	if err != nil {
		return sweepd.Stats{}, fmt.Errorf("sweepd client: %w", err)
	}
	defer resp.Body.Close()
	var st sweepd.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return sweepd.Stats{}, fmt.Errorf("sweepd client: decode health: %w", err)
	}
	return st, nil
}

// Stream follows a job's progress, calling fn for every event until
// the job reaches a terminal state (returned), the stream ends, or ctx
// is canceled. fn may be nil to just wait for completion.
func (r *Remote) Stream(ctx context.Context, id string, fn func(sweepd.StreamEvent)) (sweepd.JobState, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		r.url("/jobs/"+id+"/stream"), nil)
	if err != nil {
		return "", err
	}
	resp, err := r.httpClient().Do(req)
	if err != nil {
		return "", fmt.Errorf("sweepd client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", apiError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20) // stall dumps can be large
	var state sweepd.JobState
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev sweepd.StreamEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			return state, fmt.Errorf("sweepd client: decode stream event: %w", err)
		}
		if fn != nil {
			fn(ev)
		}
		if ev.State != "" {
			state = ev.State
		}
	}
	if err := sc.Err(); err != nil {
		if ctx.Err() != nil {
			return state, ctx.Err()
		}
		return state, fmt.Errorf("sweepd client: stream: %w", err)
	}
	if state == "" {
		return state, fmt.Errorf("sweepd client: stream ended without a terminal state")
	}
	return state, nil
}

// RunContext submits the specs as one job, streams progress (feeding
// Progress, when set), and returns the completed report — the same
// contract as sweep.Engine.RunContext, including outcome order and
// cached/executed accounting. Canceling ctx cancels the remote job.
func (r *Remote) RunContext(ctx context.Context, specs []dramlat.RunSpec) *sweep.Report {
	rep, err := r.runContext(ctx, specs)
	if err != nil {
		// Mirror the engine's never-abort contract: every spec gets an
		// outcome even when the service is unreachable.
		rep = &sweep.Report{Outcomes: make([]sweep.Outcome, len(specs))}
		for i, sp := range specs {
			rep.Outcomes[i] = sweep.Outcome{Spec: sp, Hash: sp.Hash(), Err: err}
		}
		rep.Failed = len(specs)
	}
	return rep
}

func (r *Remote) runContext(ctx context.Context, specs []dramlat.RunSpec) (*sweep.Report, error) {
	if len(specs) == 0 {
		return &sweep.Report{}, nil
	}
	start := time.Now()
	st, err := r.Submit(ctx, sweepd.SubmitRequest{Specs: specs, Telemetry: r.Telemetry})
	if err != nil {
		return nil, err
	}
	_, err = r.Stream(ctx, st.ID, func(ev sweepd.StreamEvent) {
		if r.Progress != nil && ev.Outcome != nil {
			r.Progress(sweep.Event{
				Done: ev.Done, Total: ev.Total,
				Executed: ev.Executed, Cached: ev.Cached, Failed: ev.Failed,
				Outcome: *ev.Outcome,
			})
		}
	})
	rctx := ctx
	if ctx.Err() != nil {
		// Our caller gave up: cancel the remote job (freeing its queue
		// slots) and still fetch the partial report, mirroring the
		// engine's interrupted-sweep behavior. The report marks every
		// unfinished spec context.Canceled.
		var cancel context.CancelFunc
		rctx, cancel = context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if _, cerr := r.Cancel(rctx, st.ID); cerr != nil {
			return nil, cerr
		}
	} else if err != nil {
		return nil, err
	}
	// The report is authoritative: it includes outcomes the stream never
	// carried (canceled or drained specs) in input-spec order.
	rep, _, err := r.Report(rctx, st.ID)
	if err != nil {
		return nil, err
	}
	rep.Elapsed = time.Since(start)
	return rep, nil
}

// RunOneContext runs a single spec remotely — sweep.Engine.RunOneContext
// over the wire.
func (r *Remote) RunOneContext(ctx context.Context, spec dramlat.RunSpec) sweep.Outcome {
	rep := r.RunContext(ctx, []dramlat.RunSpec{spec})
	return rep.Outcomes[0]
}
