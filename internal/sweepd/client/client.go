// Package client is the typed Go client for the sweepd experiment
// service. Remote mirrors sweep.Engine's RunContext / RunOneContext
// surface, so cmd/dlsweep and cmd/dlbench switch between local and
// remote execution behind one interface and produce identical reports
// either way.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"dramlat"
	"dramlat/internal/atomicio"
	"dramlat/internal/guard/backoff"
	"dramlat/internal/sweep"
	"dramlat/internal/sweepd"
)

// Remote executes sweeps on a sweepd server. The zero value is not
// usable; set BaseURL. Methods are safe for concurrent use.
type Remote struct {
	// BaseURL is the server root, e.g. "http://localhost:8080".
	BaseURL string
	// HTTP is the client to use; nil means http.DefaultClient.
	HTTP *http.Client
	// Priority rides along with every submitted job.
	Priority int
	// Telemetry, when non-nil, asks the server to capture per-spec
	// telemetry artifacts for jobs submitted through RunContext /
	// RunOneContext; fetch them afterwards with Artifacts / Artifact.
	// Requires a server running with an artifact dir.
	Telemetry *dramlat.TelemetryOptions
	// Progress, when non-nil, receives one event per streamed outcome
	// during RunContext, never concurrently — the same contract as
	// sweep.Engine.Progress.
	Progress func(sweep.Event)
	// StreamRetries caps consecutive failed reconnect attempts of
	// Stream before it gives up (<=0 means 5). The budget resets every
	// time a connection delivers at least one event, so a long sweep
	// over a flaky link survives any number of drops as long as it
	// keeps making progress.
	StreamRetries int
	// Backoff paces Stream reconnects and the retry loops of the
	// worker tier. The zero value is backoff.Default().
	Backoff backoff.Policy
}

// streamRetries resolves the reconnect budget.
func (r *Remote) streamRetries() int {
	if r.StreamRetries > 0 {
		return r.StreamRetries
	}
	return 5
}

func (r *Remote) httpClient() *http.Client {
	if r.HTTP != nil {
		return r.HTTP
	}
	return http.DefaultClient
}

func (r *Remote) url(path string) string {
	return strings.TrimRight(r.BaseURL, "/") + "/api/v1" + path
}

// apiError decodes the server's JSON error body into a Go error,
// reviving validation field lists.
func apiError(resp *http.Response) error {
	defer resp.Body.Close()
	var body struct {
		Error  string               `json:"error"`
		Fields []dramlat.FieldError `json:"fields"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body.Error == "" {
		return fmt.Errorf("sweepd client: server returned %s", resp.Status)
	}
	if len(body.Fields) > 0 {
		return &dramlat.ValidationError{Fields: body.Fields}
	}
	return fmt.Errorf("sweepd client: %s", body.Error)
}

func (r *Remote) do(ctx context.Context, method, path string, in, out any) error {
	_, err := r.doCode(ctx, method, path, in, out)
	return err
}

// doCode is do exposing the HTTP status, for callers that map specific
// codes to sentinel errors (410 Gone -> sweepd.ErrLeaseGone).
func (r *Remote) doCode(ctx context.Context, method, path string, in, out any) (int, error) {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return 0, fmt.Errorf("sweepd client: encode request: %w", err)
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, r.url(path), body)
	if err != nil {
		return 0, err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := r.httpClient().Do(req)
	if err != nil {
		return 0, fmt.Errorf("sweepd client: %w", err)
	}
	if resp.StatusCode/100 != 2 {
		return resp.StatusCode, apiError(resp)
	}
	defer resp.Body.Close()
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return resp.StatusCode, fmt.Errorf("sweepd client: decode response: %w", err)
	}
	return resp.StatusCode, nil
}

// Submit queues a job and returns its status without waiting for it.
func (r *Remote) Submit(ctx context.Context, req sweepd.SubmitRequest) (sweepd.JobStatus, error) {
	if req.Priority == 0 {
		req.Priority = r.Priority
	}
	var st sweepd.JobStatus
	err := r.do(ctx, http.MethodPost, "/jobs", req, &st)
	return st, err
}

// Status fetches one job's status.
func (r *Remote) Status(ctx context.Context, id string) (sweepd.JobStatus, error) {
	var st sweepd.JobStatus
	err := r.do(ctx, http.MethodGet, "/jobs/"+id, nil, &st)
	return st, err
}

// Jobs lists the server's jobs.
func (r *Remote) Jobs(ctx context.Context) ([]sweepd.JobStatus, error) {
	var out []sweepd.JobStatus
	err := r.do(ctx, http.MethodGet, "/jobs", nil, &out)
	return out, err
}

// Cancel aborts a job.
func (r *Remote) Cancel(ctx context.Context, id string) (sweepd.JobStatus, error) {
	var st sweepd.JobStatus
	err := r.do(ctx, http.MethodPost, "/jobs/"+id+"/cancel", nil, &st)
	return st, err
}

// Report fetches a job's full report: outcomes in input-spec order with
// typed failures revived (errors.As works on them), counters with
// engine semantics.
func (r *Remote) Report(ctx context.Context, id string) (*sweep.Report, sweepd.JobStatus, error) {
	var body sweepd.ReportResponse
	if err := r.do(ctx, http.MethodGet, "/jobs/"+id+"/report", nil, &body); err != nil {
		return nil, sweepd.JobStatus{}, err
	}
	rep := &sweep.Report{
		Outcomes: body.Outcomes,
		Executed: body.Job.Executed, Cached: body.Job.Cached, Failed: body.Job.Failed,
		Elapsed: time.Duration(body.Job.ElapsedMS) * time.Millisecond,
	}
	return rep, body.Job, nil
}

// Result fetches one cached result by spec content hash.
func (r *Remote) Result(ctx context.Context, hash string) (dramlat.RunSpec, dramlat.Results, error) {
	var body sweepd.ResultResponse
	if err := r.do(ctx, http.MethodGet, "/results/"+hash, nil, &body); err != nil {
		return dramlat.RunSpec{}, dramlat.Results{}, err
	}
	return body.Spec, body.Results, nil
}

// Artifacts lists the telemetry artifacts stored for one spec hash.
func (r *Remote) Artifacts(ctx context.Context, hash string) ([]sweepd.ArtifactInfo, error) {
	var body sweepd.ArtifactsResponse
	if err := r.do(ctx, http.MethodGet, "/results/"+hash+"/artifacts", nil, &body); err != nil {
		return nil, err
	}
	return body.Artifacts, nil
}

// Artifact streams one telemetry artifact ("events.jsonl",
// "channels.csv", "sms.csv"). The returned reader yields exactly the
// bytes of the server-side file; the caller must Close it.
func (r *Remote) Artifact(ctx context.Context, hash, name string) (io.ReadCloser, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		r.url("/results/"+hash+"/artifacts/"+name), nil)
	if err != nil {
		return nil, err
	}
	resp, err := r.httpClient().Do(req)
	if err != nil {
		return nil, fmt.Errorf("sweepd client: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	return resp.Body, nil
}

// DownloadArtifacts fetches every stored artifact of a spec into dir
// using the server's own layout (<dir>/<hash>.<name>), committing each
// file atomically. It returns the written paths; a hash with no
// artifacts is an error.
func (r *Remote) DownloadArtifacts(ctx context.Context, hash, dir string) ([]string, error) {
	arts, err := r.Artifacts(ctx, hash)
	if err != nil {
		return nil, err
	}
	var paths []string
	for _, art := range arts {
		rc, err := r.Artifact(ctx, hash, art.Name)
		if err != nil {
			return paths, err
		}
		w := atomicio.Create(filepath.Join(dir, hash+"."+art.Name))
		_, err = io.Copy(w, rc)
		rc.Close()
		if err != nil {
			return paths, fmt.Errorf("sweepd client: fetch artifact %s: %w", art.Name, err)
		}
		if err := w.Commit(); err != nil {
			return paths, err
		}
		paths = append(paths, filepath.Join(dir, hash+"."+art.Name))
	}
	return paths, nil
}

// Health fetches the server stats. A draining server answers (with
// State "draining"), so this doubles as the liveness probe.
func (r *Remote) Health(ctx context.Context) (sweepd.Stats, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.url("/health"), nil)
	if err != nil {
		return sweepd.Stats{}, err
	}
	resp, err := r.httpClient().Do(req)
	if err != nil {
		return sweepd.Stats{}, fmt.Errorf("sweepd client: %w", err)
	}
	defer resp.Body.Close()
	var st sweepd.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return sweepd.Stats{}, fmt.Errorf("sweepd client: decode health: %w", err)
	}
	return st, nil
}

// Stream follows a job's progress, calling fn for every event until
// the job reaches a terminal state (returned), or ctx is canceled. fn
// may be nil to just wait for completion.
//
// A dropped connection (server restart behind a proxy, flaky link, a
// stream cut mid-line) is not fatal: Stream reconnects with ?offset=N
// — N being the outcome events already consumed — so no event is
// re-delivered to fn and none is lost. Reconnects back off per
// r.Backoff and give up after r.StreamRetries consecutive failures;
// any connection that delivers at least one event resets the budget.
// API-level rejections (unknown job, bad request) are permanent and
// abort immediately.
func (r *Remote) Stream(ctx context.Context, id string, fn func(sweepd.StreamEvent)) (sweepd.JobState, error) {
	offset, fails := 0, 0
	for {
		state, n, err, permanent := r.streamOnce(ctx, id, offset, fn)
		if err == nil {
			return state, nil
		}
		offset += n
		if permanent || ctx.Err() != nil {
			return state, err
		}
		if n > 0 {
			fails = 0 // progress: refill the reconnect budget
		}
		fails++
		if fails > r.streamRetries() {
			return state, fmt.Errorf("sweepd client: stream: giving up after %d consecutive failures: %w", fails, err)
		}
		if serr := r.Backoff.Sleep(ctx, fails-1); serr != nil {
			return state, serr
		}
	}
}

// streamOnce runs one stream connection from the given event offset.
// It returns the terminal state (err == nil) or how many outcome
// events this connection delivered before failing; permanent flags
// API rejections that reconnecting cannot cure.
func (r *Remote) streamOnce(ctx context.Context, id string, offset int, fn func(sweepd.StreamEvent)) (state sweepd.JobState, n int, err error, permanent bool) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		r.url("/jobs/"+id+"/stream?offset="+strconv.Itoa(offset)), nil)
	if err != nil {
		return "", 0, err, true
	}
	resp, err := r.httpClient().Do(req)
	if err != nil {
		return "", 0, fmt.Errorf("sweepd client: %w", err), false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", 0, apiError(resp), true
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20) // stall dumps can be large
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev sweepd.StreamEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			// A connection cut mid-line leaves a truncated JSON tail;
			// treat it like a drop and resume from the last whole event.
			return "", n, fmt.Errorf("sweepd client: decode stream event: %w", err), false
		}
		if fn != nil {
			fn(ev)
		}
		if ev.State != "" {
			return ev.State, n, nil, false // terminal line
		}
		n++
	}
	if err := sc.Err(); err != nil {
		if ctx.Err() != nil {
			return "", n, ctx.Err(), true
		}
		return "", n, fmt.Errorf("sweepd client: stream: %w", err), false
	}
	return "", n, fmt.Errorf("sweepd client: stream ended without a terminal state"), false
}

// Claim asks the server for a queued spec under a lease, long-polling
// up to wait. Inspect the response: LeaseID set means work, Draining
// true means stop claiming, neither means the queue was empty.
func (r *Remote) Claim(ctx context.Context, worker string, wait time.Duration) (sweepd.ClaimResponse, error) {
	var resp sweepd.ClaimResponse
	err := r.do(ctx, http.MethodPost, "/workers/claim",
		sweepd.ClaimRequest{Worker: worker, WaitMS: wait.Milliseconds()}, &resp)
	return resp, err
}

// Heartbeat renews a lease. sweepd.ErrLeaseGone (mapped from 410)
// means the server gave up on this lease: abandon the spec.
func (r *Remote) Heartbeat(ctx context.Context, leaseID string) (sweepd.HeartbeatResponse, error) {
	var resp sweepd.HeartbeatResponse
	code, err := r.doCode(ctx, http.MethodPost, "/workers/heartbeat",
		sweepd.HeartbeatRequest{LeaseID: leaseID}, &resp)
	if code == http.StatusGone {
		return resp, sweepd.ErrLeaseGone
	}
	return resp, err
}

// Complete returns a spec's typed outcome to the server, releasing the
// lease. sweepd.ErrLeaseGone means the result was no longer wanted
// (a faster worker won, the job was canceled, or the server drained).
func (r *Remote) Complete(ctx context.Context, leaseID, hash string, o sweep.Outcome) (sweepd.CompleteResponse, error) {
	var resp sweepd.CompleteResponse
	code, err := r.doCode(ctx, http.MethodPost, "/workers/complete",
		sweepd.CompleteRequest{LeaseID: leaseID, Hash: hash, Outcome: o}, &resp)
	if code == http.StatusGone {
		return resp, sweepd.ErrLeaseGone
	}
	return resp, err
}

// RunContext submits the specs as one job, streams progress (feeding
// Progress, when set), and returns the completed report — the same
// contract as sweep.Engine.RunContext, including outcome order and
// cached/executed accounting. Canceling ctx cancels the remote job.
func (r *Remote) RunContext(ctx context.Context, specs []dramlat.RunSpec) *sweep.Report {
	rep, err := r.runContext(ctx, specs)
	if err != nil {
		// Mirror the engine's never-abort contract: every spec gets an
		// outcome even when the service is unreachable.
		rep = &sweep.Report{Outcomes: make([]sweep.Outcome, len(specs))}
		for i, sp := range specs {
			rep.Outcomes[i] = sweep.Outcome{Spec: sp, Hash: sp.Hash(), Err: err}
		}
		rep.Failed = len(specs)
	}
	return rep
}

func (r *Remote) runContext(ctx context.Context, specs []dramlat.RunSpec) (*sweep.Report, error) {
	if len(specs) == 0 {
		return &sweep.Report{}, nil
	}
	start := time.Now()
	st, err := r.Submit(ctx, sweepd.SubmitRequest{Specs: specs, Telemetry: r.Telemetry})
	if err != nil {
		return nil, err
	}
	_, err = r.Stream(ctx, st.ID, func(ev sweepd.StreamEvent) {
		if r.Progress != nil && ev.Outcome != nil {
			r.Progress(sweep.Event{
				Done: ev.Done, Total: ev.Total,
				Executed: ev.Executed, Cached: ev.Cached, Failed: ev.Failed,
				Outcome: *ev.Outcome,
			})
		}
	})
	rctx := ctx
	if ctx.Err() != nil {
		// Our caller gave up: cancel the remote job (freeing its queue
		// slots) and still fetch the partial report, mirroring the
		// engine's interrupted-sweep behavior. The report marks every
		// unfinished spec context.Canceled.
		var cancel context.CancelFunc
		rctx, cancel = context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if _, cerr := r.Cancel(rctx, st.ID); cerr != nil {
			return nil, cerr
		}
	} else if err != nil {
		return nil, err
	}
	// The report is authoritative: it includes outcomes the stream never
	// carried (canceled or drained specs) in input-spec order.
	rep, _, err := r.Report(rctx, st.ID)
	if err != nil {
		return nil, err
	}
	rep.Elapsed = time.Since(start)
	return rep, nil
}

// RunOneContext runs a single spec remotely — sweep.Engine.RunOneContext
// over the wire.
func (r *Remote) RunOneContext(ctx context.Context, spec dramlat.RunSpec) sweep.Outcome {
	rep := r.RunContext(ctx, []dramlat.RunSpec{spec})
	return rep.Outcomes[0]
}
