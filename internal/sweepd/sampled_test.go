package sweepd

import (
	"errors"
	"strings"
	"testing"

	"dramlat"
	"dramlat/internal/sweep"
)

// sampledSpecN is specN with a hash-included Sampled block, selecting
// the approximate interval-sampling engine.
func sampledSpecN(seed int64) dramlat.RunSpec {
	sp := specN(seed)
	sp.Sampled = dramlat.SampledOptions{
		WindowCycles: 500, FastForwardCycles: 2000, WarmupCycles: 250,
	}
	return sp
}

// A job asking for telemetry capture must reject sampled specs with a
// typed field error: their fast-forward regions are modeled, so there
// is no event trace to capture, and a partial artifact would be
// indistinguishable from a complete one.
func TestSubmitRejectsSampledTelemetry(t *testing.T) {
	run := newStubRunner()
	cache, err := sweep.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := New(&sweep.Engine{Workers: 1, Cache: cache, Runner: run.run,
		TelemetryDir: t.TempDir()}, nil)
	t.Cleanup(s.Close)

	_, err = s.SubmitJob([]dramlat.RunSpec{specN(1), sampledSpecN(2)}, JobOptions{
		Telemetry: dramlat.TelemetryOptions{Events: true},
	})
	var verr *dramlat.ValidationError
	if !errors.As(err, &verr) {
		t.Fatalf("sampled spec + telemetry: err = %v, want *ValidationError", err)
	}
	if !strings.Contains(err.Error(), "sampled") {
		t.Fatalf("rejection does not name the sampled engine: %v", err)
	}

	// The same specs without telemetry are a perfectly good job.
	st, err := s.SubmitJob([]dramlat.RunSpec{specN(1), sampledSpecN(2)}, JobOptions{})
	if err != nil {
		t.Fatalf("sampled spec without telemetry rejected: %v", err)
	}
	waitJob(t, s, st.ID)
}

// Approximate outcomes are counted per job and surfaced in JobStatus
// and the progress stream, so a dashboard can flag jobs whose numbers
// carry error bars.
func TestSampledJobCountsApproximate(t *testing.T) {
	run := &stubRunner{runs: map[string]int{}, failFor: map[string]error{}}
	runner := func(sp dramlat.RunSpec) (dramlat.Results, error) {
		res, err := run.run(sp)
		if sp.IsSampled() {
			res.Approximate = true
		}
		return res, err
	}
	cache, err := sweep.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := New(&sweep.Engine{Workers: 2, Cache: cache, Runner: runner}, nil)
	t.Cleanup(s.Close)

	st, err := s.SubmitJob([]dramlat.RunSpec{specN(1), sampledSpecN(1), sampledSpecN(2)}, JobOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fin := waitJob(t, s, st.ID)
	if fin.Failed != 0 {
		t.Fatalf("failures: %+v", fin)
	}
	if fin.Approximate != 2 {
		t.Fatalf("JobStatus.Approximate = %d, want 2 (status %+v)", fin.Approximate, fin)
	}
}
