package sweepd

import (
	"context"
	"errors"
	"testing"
	"time"

	"dramlat"
	"dramlat/internal/guard/backoff"
	"dramlat/internal/metrics"
	"dramlat/internal/sweep"
)

// Fleet tests drive the lease protocol directly (Claim / Heartbeat /
// CompleteLease) and force expiry deterministically by calling
// sweepOnce with a synthetic "now", so no test sleeps out a TTL.

// fastBackoff keeps retry delays effectively zero and jitter-free.
var fastBackoff = backoff.Policy{Base: time.Microsecond, Cap: time.Microsecond, Factor: 2}

func newFleetServer(t *testing.T, run *stubRunner, opts Options) *Server {
	t.Helper()
	cache, err := sweep.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if opts.RetryBackoff == (backoff.Policy{}) {
		opts.RetryBackoff = fastBackoff
	}
	if opts.SweepEvery == 0 {
		// Park the background sweeper; tests call sweepOnce directly.
		opts.SweepEvery = time.Hour
	}
	s := NewWithOptions(&sweep.Engine{Workers: 1, Cache: cache, Runner: run.run},
		nil, metrics.NewRegistry(), opts)
	t.Cleanup(s.Close)
	return s
}

// claimNow claims with no long-poll and fails the test on error.
func claimNow(t *testing.T, s *Server, worker string) ClaimResponse {
	t.Helper()
	resp, err := s.Claim(context.Background(), worker, 0)
	if err != nil {
		t.Fatalf("claim(%s): %v", worker, err)
	}
	return resp
}

// runOutcome produces the outcome a healthy worker would return for a
// granted lease, using the stub runner's deterministic results.
func runOutcome(run *stubRunner, lease ClaimResponse) sweep.Outcome {
	res, err := run.run(*lease.Spec)
	return sweep.Outcome{Spec: *lease.Spec, Hash: lease.Hash, Results: res, Err: err,
		Elapsed: time.Millisecond}
}

// expireLeases advances the failure detector past every live lease.
func expireLeases(s *Server) {
	s.sweepOnce(time.Now().Add(s.leaseTTL() + time.Second))
}

func TestFleetClaimExecuteComplete(t *testing.T) {
	run := newStubRunner()
	s := newFleetServer(t, run, Options{LocalWorkers: -1})
	if s.Workers() != 0 {
		t.Fatalf("fleet-only server reports %d local workers", s.Workers())
	}
	st, err := s.Submit(specList(1, 2, 3), 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		lease := claimNow(t, s, "w1")
		if lease.LeaseID == "" || lease.Spec == nil {
			t.Fatalf("claim %d came back empty: %+v", i, lease)
		}
		if lease.Attempt != 0 {
			t.Fatalf("fresh lease reports attempt %d", lease.Attempt)
		}
		if hb, err := s.Heartbeat(lease.LeaseID); err != nil || !hb.OK || hb.Abandon {
			t.Fatalf("heartbeat: %+v err %v", hb, err)
		}
		cr, err := s.CompleteLease(lease.LeaseID, lease.Hash, runOutcome(run, lease))
		if err != nil || !cr.Accepted || cr.Late {
			t.Fatalf("complete: %+v err %v", cr, err)
		}
	}
	fin := waitJob(t, s, st.ID)
	if fin.State != JobDone || fin.Executed != 3 || fin.Failed != 0 {
		t.Fatalf("job after fleet execution: %+v", fin)
	}
	// Empty queue answers an empty response, not an error.
	if lease := claimNow(t, s, "w1"); lease.LeaseID != "" || lease.Draining {
		t.Fatalf("claim on empty queue: %+v", lease)
	}
	stats := s.Stats()
	if stats.FleetWorkers != 1 || stats.ActiveLeases != 0 || stats.LeaseExpiries != 0 {
		t.Fatalf("stats: %+v", stats)
	}
}

func TestFleetClaimLongPollWakesOnSubmit(t *testing.T) {
	run := newStubRunner()
	s := newFleetServer(t, run, Options{LocalWorkers: -1})
	type claimRes struct {
		resp ClaimResponse
		err  error
	}
	got := make(chan claimRes, 1)
	go func() {
		resp, err := s.Claim(context.Background(), "w1", 10*time.Second)
		got <- claimRes{resp, err}
	}()
	time.Sleep(20 * time.Millisecond) // let the claim park in the long poll
	if _, err := s.Submit(specList(1), 0); err != nil {
		t.Fatal(err)
	}
	select {
	case cr := <-got:
		if cr.err != nil || cr.resp.LeaseID == "" {
			t.Fatalf("long-poll claim: %+v err %v", cr.resp, cr.err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("long-poll claim never woke on submit")
	}
}

func TestFleetClaimCanceledContext(t *testing.T) {
	run := newStubRunner()
	s := newFleetServer(t, run, Options{LocalWorkers: -1})
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(20 * time.Millisecond); cancel() }()
	if _, err := s.Claim(ctx, "w1", 10*time.Second); !errors.Is(err, context.Canceled) {
		t.Fatalf("claim with canceled ctx: %v", err)
	}
	if _, err := s.Claim(context.Background(), "", 0); !errors.Is(err, ErrUnknownWorker) {
		t.Fatalf("claim without a worker name: %v", err)
	}
}

// TestFleetLeaseExpiryRequeues is the crash-safety core: a worker that
// claims and dies (never heartbeats) loses the lease, the spec is
// re-queued with its attempt count, and a healthy worker finishes the
// job — results identical to an uninterrupted run.
func TestFleetLeaseExpiryRequeues(t *testing.T) {
	run := newStubRunner()
	s := newFleetServer(t, run, Options{LocalWorkers: -1, LeaseTTL: time.Minute})
	st, err := s.Submit(specList(7), 0)
	if err != nil {
		t.Fatal(err)
	}
	dead := claimNow(t, s, "doomed")
	if dead.LeaseID == "" {
		t.Fatal("no lease granted")
	}
	expireLeases(s) // "doomed" never came back; re-queue with backoff
	// The retry delay is microseconds; a second pass promotes it.
	expireLeases(s)
	if _, err := s.Heartbeat(dead.LeaseID); !errors.Is(err, ErrLeaseGone) {
		t.Fatalf("heartbeat on expired lease: %v", err)
	}
	retry := claimNow(t, s, "healthy")
	if retry.LeaseID == "" {
		t.Fatal("re-queued spec not claimable")
	}
	if retry.Attempt != 1 {
		t.Fatalf("retry lease reports attempt %d, want 1", retry.Attempt)
	}
	if retry.Hash != dead.Hash {
		t.Fatalf("retry handed a different spec: %s vs %s", retry.Hash, dead.Hash)
	}
	if cr, err := s.CompleteLease(retry.LeaseID, retry.Hash, runOutcome(run, retry)); err != nil || !cr.Accepted {
		t.Fatalf("complete: %+v err %v", cr, err)
	}
	fin := waitJob(t, s, st.ID)
	if fin.State != JobDone || fin.Executed != 1 || fin.Failed != 0 {
		t.Fatalf("job after worker death: %+v", fin)
	}
	stats := s.Stats()
	if stats.LeaseExpiries != 1 || stats.Retried != 1 || stats.Quarantined != 0 {
		t.Fatalf("stats after one expiry: %+v", stats)
	}
}

// TestFleetQuarantine: a spec whose every execution kills its worker
// must not wedge the fleet — after the lease budget it completes with
// a typed QuarantineError and the job terminates.
func TestFleetQuarantine(t *testing.T) {
	run := newStubRunner()
	s := newFleetServer(t, run, Options{LocalWorkers: -1, LeaseAttempts: 2})
	st, err := s.Submit(specList(13), 0)
	if err != nil {
		t.Fatal(err)
	}
	for attempt := 0; attempt < 2; attempt++ {
		lease := claimNow(t, s, "crashy")
		if lease.LeaseID == "" {
			t.Fatalf("attempt %d: nothing claimable", attempt)
		}
		if lease.Attempt != attempt {
			t.Fatalf("lease attempt %d, want %d", lease.Attempt, attempt)
		}
		expireLeases(s)
		expireLeases(s) // promote the retry (attempt 1) / quarantine (attempt 2)
	}
	fin := waitJob(t, s, st.ID)
	if fin.State != JobDone || fin.Failed != 1 {
		t.Fatalf("job with poison spec: %+v", fin)
	}
	rep, _, err := s.Report(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	var qe *dramlat.QuarantineError
	if !errors.As(rep.Outcomes[0].Err, &qe) {
		t.Fatalf("outcome error %v (%T) is not a QuarantineError", rep.Outcomes[0].Err, rep.Outcomes[0].Err)
	}
	if qe.Attempts != 2 || qe.LastWorker != "crashy" || qe.SpecHash != rep.Outcomes[0].Hash {
		t.Fatalf("quarantine payload: %+v", qe)
	}
	if rep.Outcomes[0].Kind() != sweep.KindQuarantined {
		t.Fatalf("outcome kind %q", rep.Outcomes[0].Kind())
	}
	// Nothing left to claim: the poison spec is retired, not cycling.
	if lease := claimNow(t, s, "crashy"); lease.LeaseID != "" {
		t.Fatalf("quarantined spec re-leased: %+v", lease)
	}
	if stats := s.Stats(); stats.Quarantined != 1 || stats.LeaseExpiries != 2 {
		t.Fatalf("stats: %+v", stats)
	}
}

// TestFleetLateCompletionWins: a worker that merely ran slow (lease
// expired, spec re-leased elsewhere) still gets its result accepted;
// the duplicate execution is retired when it reports.
func TestFleetLateCompletionWins(t *testing.T) {
	run := newStubRunner()
	s := newFleetServer(t, run, Options{LocalWorkers: -1})
	st, err := s.Submit(specList(21), 0)
	if err != nil {
		t.Fatal(err)
	}
	slow := claimNow(t, s, "slow")
	expireLeases(s)
	expireLeases(s)
	second := claimNow(t, s, "second")
	if second.LeaseID == "" || second.LeaseID == slow.LeaseID {
		t.Fatalf("re-lease: %+v", second)
	}
	// The slow worker finishes first, after its lease already expired.
	cr, err := s.CompleteLease(slow.LeaseID, slow.Hash, runOutcome(run, slow))
	if err != nil || !cr.Accepted || !cr.Late {
		t.Fatalf("late completion: %+v err %v", cr, err)
	}
	fin := waitJob(t, s, st.ID)
	if fin.State != JobDone || fin.Executed != 1 {
		t.Fatalf("job after late completion: %+v", fin)
	}
	// The second worker's duplicate result is politely declined.
	if _, err := s.CompleteLease(second.LeaseID, second.Hash, runOutcome(run, second)); !errors.Is(err, ErrLeaseGone) {
		t.Fatalf("duplicate completion: %v", err)
	}
	if stats := s.Stats(); stats.LateCompletions != 1 {
		t.Fatalf("stats: %+v", stats)
	}
}

// TestFleetClaimServesCacheHits: specs already in the server cache
// never reach a remote worker — the claim loop completes them
// server-side and keeps looking for real work.
func TestFleetClaimServesCacheHits(t *testing.T) {
	run := newStubRunner()
	s := newFleetServer(t, run, Options{LocalWorkers: -1})
	first, err := s.Submit(specList(5), 0)
	if err != nil {
		t.Fatal(err)
	}
	lease := claimNow(t, s, "w1")
	if _, err := s.CompleteLease(lease.LeaseID, lease.Hash, runOutcome(run, lease)); err != nil {
		t.Fatal(err)
	}
	waitJob(t, s, first.ID)

	again, err := s.Submit(specList(5), 0)
	if err != nil {
		t.Fatal(err)
	}
	// The resubmitted spec is cache-served inside Claim; the claim
	// comes back empty and the job completes without a worker.
	if lease := claimNow(t, s, "w1"); lease.LeaseID != "" {
		t.Fatalf("cached spec leased to a worker: %+v", lease)
	}
	fin := waitJob(t, s, again.ID)
	if fin.State != JobDone || fin.Cached != 1 || fin.Executed != 0 {
		t.Fatalf("resubmitted job: %+v", fin)
	}
	if got := run.count(specN(5).Hash()); got != 1 {
		t.Fatalf("spec executed %d times, want 1", got)
	}
}

// TestFleetDrainFailsLeasesFast: a drain must not wait out lease TTLs
// — open leases are dropped immediately, their specs marked drained,
// and a worker still holding one learns via ErrLeaseGone. Its result,
// arriving after the drain, is still banked to the cache for resume.
func TestFleetDrainFailsLeasesFast(t *testing.T) {
	run := newStubRunner()
	s := newFleetServer(t, run, Options{LocalWorkers: -1, LeaseTTL: time.Hour})
	st, err := s.Submit(specList(31), 0)
	if err != nil {
		t.Fatal(err)
	}
	lease := claimNow(t, s, "w1")
	if lease.LeaseID == "" {
		t.Fatal("no lease granted")
	}
	done := make(chan struct{})
	go func() { s.Drain(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("drain waited on an open lease (TTL is an hour)")
	}
	fin, err := s.Status(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != JobResumable {
		t.Fatalf("job after drain: %+v", fin)
	}
	rep, _, err := s.Report(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(rep.Outcomes[0].Err, ErrDrained) {
		t.Fatalf("drained spec error: %v", rep.Outcomes[0].Err)
	}
	if _, err := s.Heartbeat(lease.LeaseID); !errors.Is(err, ErrLeaseGone) {
		t.Fatalf("heartbeat after drain: %v", err)
	}
	// The worker finishes anyway; its result lands in the cache so the
	// resubmitted job is served instantly next time.
	s.CompleteLease(lease.LeaseID, lease.Hash, runOutcome(run, lease))
	if _, _, ok := s.Result(lease.Hash); !ok {
		t.Fatal("post-drain completion not banked to the cache")
	}
	// Claims during/after drain answer Draining, telling workers to exit.
	resp, err := s.Claim(context.Background(), "w1", 0)
	if err != nil || !resp.Draining {
		t.Fatalf("claim during drain: %+v err %v", resp, err)
	}
}

// TestFleetCancelDropsRetryBacklog: canceling the only job waiting on
// a retry-delayed spec removes it from the backlog (regression: the
// old Cancel called heap.Remove on index -1 and panicked).
func TestFleetCancelDropsRetryBacklog(t *testing.T) {
	run := newStubRunner()
	s := newFleetServer(t, run, Options{LocalWorkers: -1})
	st, err := s.Submit(specList(41), 0)
	if err != nil {
		t.Fatal(err)
	}
	claimNow(t, s, "doomed")
	expireLeases(s) // spec now sits in the retry backlog (delayed list)
	if s.Stats().RetryBacklog != 1 {
		t.Fatalf("stats: %+v", s.Stats())
	}
	if _, err := s.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().RetryBacklog; got != 0 {
		t.Fatalf("retry backlog after cancel: %d", got)
	}
	// The sweeper finds nothing left to promote.
	expireLeases(s)
	if lease := claimNow(t, s, "w2"); lease.LeaseID != "" {
		t.Fatalf("canceled spec re-leased: %+v", lease)
	}
}

// TestFleetCancelWhileLeased: canceling every waiter of a leased spec
// flags Abandon on the next heartbeat. A worker that completes anyway
// is not turned away — the compute is real, so the result is accepted
// and banked to the cache (regression: Cancel used to delete a leased
// task from the dedup map while its lease stayed live).
func TestFleetCancelWhileLeased(t *testing.T) {
	run := newStubRunner()
	s := newFleetServer(t, run, Options{LocalWorkers: -1})
	st, err := s.Submit(specList(43), 0)
	if err != nil {
		t.Fatal(err)
	}
	lease := claimNow(t, s, "w1")
	if _, err := s.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	hb, err := s.Heartbeat(lease.LeaseID)
	if err != nil || !hb.Abandon {
		t.Fatalf("heartbeat after cancel: %+v err %v", hb, err)
	}
	cr, err := s.CompleteLease(lease.LeaseID, lease.Hash, runOutcome(run, lease))
	if err != nil || !cr.Accepted {
		t.Fatalf("completion of canceled spec: %+v err %v", cr, err)
	}
	if _, _, ok := s.Result(lease.Hash); !ok {
		t.Fatal("canceled spec's completion not banked to the cache")
	}
	s.mu.Lock()
	ntasks, nleases := len(s.tasks), len(s.leases)
	s.mu.Unlock()
	if ntasks != 0 || nleases != 0 {
		t.Fatalf("leftover state after canceled completion: %d tasks, %d leases", ntasks, nleases)
	}
}

// TestFleetTelemetrySpecsStayLocal: artifact capture writes into the
// server's filesystem, so telemetry jobs are never leased out.
func TestFleetTelemetrySpecsStayLocal(t *testing.T) {
	run := newStubRunner()
	cache, err := sweep.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	eng := &sweep.Engine{Workers: 1, Cache: cache, Runner: run.run,
		TelemetryDir: t.TempDir()}
	s := NewWithOptions(eng, nil, metrics.NewRegistry(),
		Options{RetryBackoff: fastBackoff, SweepEvery: time.Hour})
	t.Cleanup(s.Close)
	st, err := s.SubmitJob(specList(51), JobOptions{
		Telemetry: dramlat.TelemetryOptions{Events: true}})
	if err != nil {
		t.Fatal(err)
	}
	// A remote claim racing the local pool must never see this task.
	if lease := claimNow(t, s, "w1"); lease.LeaseID != "" {
		t.Fatalf("telemetry spec leased to remote worker: %+v", lease)
	}
	fin := waitJob(t, s, st.ID)
	if fin.State != JobDone || fin.Failed != 0 {
		t.Fatalf("telemetry job: %+v", fin)
	}
}

// TestFleetOnlyRejectsTelemetry: with no local pool there is nothing
// that could ever run a telemetry spec; reject at submit.
func TestFleetOnlyRejectsTelemetry(t *testing.T) {
	run := newStubRunner()
	cache, err := sweep.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	eng := &sweep.Engine{Workers: 1, Cache: cache, Runner: run.run,
		TelemetryDir: t.TempDir()}
	s := NewWithOptions(eng, nil, metrics.NewRegistry(),
		Options{LocalWorkers: -1, RetryBackoff: fastBackoff, SweepEvery: time.Hour})
	t.Cleanup(s.Close)
	_, err = s.SubmitJob(specList(52), JobOptions{
		Telemetry: dramlat.TelemetryOptions{Events: true}})
	if !errors.Is(err, ErrTelemetryRemote) {
		t.Fatalf("telemetry submit on fleet-only server: %v", err)
	}
}

// TestFleetWaiterlessExpiryDropsSpec: a lease whose job was canceled
// expires into nothing — no retry, no quarantine, no leak.
func TestFleetWaiterlessExpiryDropsSpec(t *testing.T) {
	run := newStubRunner()
	s := newFleetServer(t, run, Options{LocalWorkers: -1})
	st, err := s.Submit(specList(61), 0)
	if err != nil {
		t.Fatal(err)
	}
	claimNow(t, s, "w1")
	if _, err := s.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	expireLeases(s)
	s.mu.Lock()
	ntasks, ndelayed := len(s.tasks), len(s.delayed)
	s.mu.Unlock()
	if ntasks != 0 || ndelayed != 0 {
		t.Fatalf("waiterless expiry leaked: %d tasks, %d delayed", ntasks, ndelayed)
	}
	if stats := s.Stats(); stats.Retried != 0 || stats.Quarantined != 0 {
		t.Fatalf("stats: %+v", stats)
	}
}
