package sweepd

import (
	"fmt"
	"os"
	"path/filepath"

	"dramlat/internal/sweep"
)

// Telemetry artifacts are the per-run observability bundle PR 2's local
// sweeps write (event JSONL, interval CSVs); the service captures them
// for jobs that request telemetry and serves them back content-addressed
// by spec hash, so remote straggler/histogram analysis (dlprof -server)
// reads byte-identical files to a local run. On disk they use
// sweep.WriteArtifacts' layout — <dir>/<hash>.<name> — and over the API
// they are listed and fetched by bare name ("events.jsonl").

// ArtifactNames are the artifact files one run can produce, in serving
// order. The allowlist doubles as path-traversal fencing: only these
// exact names are ever joined onto the artifact dir.
var ArtifactNames = []string{"events.jsonl", "channels.csv", "sms.csv"}

// ArtifactInfo describes one stored artifact of a spec.
type ArtifactInfo struct {
	Name string `json:"name"` // e.g. "events.jsonl"
	Size int64  `json:"size"`
}

// ErrNoArtifacts reports a hash with no stored artifacts (never
// captured, or the server runs without an artifact dir).
var ErrNoArtifacts = fmt.Errorf("sweepd: no artifacts for this spec")

// ArtifactDir returns the server-side artifact root ("" when capture is
// disabled).
func (s *Server) ArtifactDir() string { return s.eng.TelemetryDir }

// Artifacts lists the stored artifacts for one spec hash.
func (s *Server) Artifacts(hash string) ([]ArtifactInfo, error) {
	if !sweep.ValidHash(hash) {
		return nil, fmt.Errorf("sweepd: invalid spec hash %q", hash)
	}
	dir := s.eng.TelemetryDir
	if dir == "" {
		return nil, ErrNoArtifacts
	}
	var out []ArtifactInfo
	for _, name := range ArtifactNames {
		fi, err := os.Stat(filepath.Join(dir, hash+"."+name))
		if err != nil {
			continue
		}
		out = append(out, ArtifactInfo{Name: name, Size: fi.Size()})
	}
	if len(out) == 0 {
		return nil, ErrNoArtifacts
	}
	return out, nil
}

// ArtifactPath resolves one artifact to its on-disk path, validating
// both the hash (strict hex) and the name (allowlist) before any path
// is built. The file is stat'd, so a returned path exists at return
// time.
func (s *Server) ArtifactPath(hash, name string) (string, error) {
	if !sweep.ValidHash(hash) {
		return "", fmt.Errorf("sweepd: invalid spec hash %q", hash)
	}
	ok := false
	for _, n := range ArtifactNames {
		if n == name {
			ok = true
			break
		}
	}
	if !ok {
		return "", fmt.Errorf("sweepd: unknown artifact %q (want one of %v)", name, ArtifactNames)
	}
	if s.eng.TelemetryDir == "" {
		return "", ErrNoArtifacts
	}
	path := filepath.Join(s.eng.TelemetryDir, hash+"."+name)
	if _, err := os.Stat(path); err != nil {
		return "", ErrNoArtifacts
	}
	return path, nil
}
