package sweepd

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"dramlat"
	"dramlat/internal/metrics"
	"dramlat/internal/sweep"
)

// scrapeMetrics fetches GET /metrics and returns every sample as
// series -> value, keyed by the full series string ("name" or
// "name{label="v"}") exactly as exposed.
func scrapeMetrics(t *testing.T, base string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("GET /metrics: content-type %q", ct)
	}
	out := map[string]float64{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("unparseable metrics line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestMetricsReconcileWithReport pins the acceptance criterion: after a
// mix of fresh and cache-served jobs, the /metrics outcome counters
// must reconcile exactly with the job reports — ok + cached == total
// specs submitted, with each side matching the reports' Executed and
// Cached sums.
func TestMetricsReconcileWithReport(t *testing.T) {
	run := newStubRunner()
	cache, err := sweep.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	s := NewWithMetrics(&sweep.Engine{Workers: 2, Cache: cache, Runner: run.run}, nil, reg)
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Submit over HTTP so the request middleware counts too.
	submit := func(seeds ...int64) JobStatus {
		t.Helper()
		body, _ := json.Marshal(SubmitRequest{Specs: specList(seeds...)})
		resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit status %d", resp.StatusCode)
		}
		var st JobStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st
	}

	// Job A: 4 fresh specs. Job B: the same 4 (cache hits) plus 2 new.
	a := submit(1, 2, 3, 4)
	fa := waitJob(t, s, a.ID)
	b := submit(1, 2, 3, 4, 5, 6)
	fb := waitJob(t, s, b.ID)

	if fa.Executed != 4 || fb.Executed != 2 || fb.Cached != 4 {
		t.Fatalf("unexpected reports: a=%+v b=%+v", fa, fb)
	}

	m := scrapeMetrics(t, ts.URL)
	ok := m[`dramlat_sweepd_spec_outcomes_total{kind="ok"}`]
	cached := m[`dramlat_sweepd_spec_outcomes_total{kind="cached"}`]
	total := float64(fa.Total + fb.Total)

	if wantOK := float64(fa.Executed + fb.Executed); ok != wantOK {
		t.Errorf("outcome ok = %v, reports say %v", ok, wantOK)
	}
	if wantCached := float64(fa.Cached + fb.Cached); cached != wantCached {
		t.Errorf("outcome cached = %v, reports say %v", cached, wantCached)
	}
	if ok+cached != total {
		t.Errorf("ok (%v) + cached (%v) != total specs (%v)", ok, cached, total)
	}

	if got := m["dramlat_sweepd_jobs_submitted_total"]; got != 2 {
		t.Errorf("jobs_submitted_total = %v, want 2", got)
	}
	if got := m[`dramlat_sweepd_jobs_total{state="done"}`]; got != 2 {
		t.Errorf("jobs_total{done} = %v, want 2", got)
	}
	if got := m["dramlat_sweepd_queue_depth"]; got != 0 {
		t.Errorf("queue_depth = %v after all jobs done, want 0", got)
	}
	if got := m["dramlat_sweepd_queue_waiters"]; got != 0 {
		t.Errorf("queue_waiters = %v after all jobs done, want 0", got)
	}
	if got := m["dramlat_sweepd_workers_busy"]; got != 0 {
		t.Errorf("workers_busy = %v after all jobs done, want 0", got)
	}
	if got := m["dramlat_sweepd_workers"]; got != 2 {
		t.Errorf("workers = %v, want 2", got)
	}
	// Every unique queued task is claimed by a worker — cache hits are
	// resolved inside the worker — so the queue-wait histogram counted
	// all 10 claims.
	if got := m[`dramlat_sweepd_queue_wait_seconds_count{priority="0"}`]; got != 10 {
		t.Errorf("queue_wait count = %v, want 10 claims", got)
	}
	if got := m[`dramlat_sweepd_http_requests_total{method="POST",code="202"}`]; got != 2 {
		t.Errorf("http_requests{POST,202} = %v, want 2", got)
	}
}

// TestArtifactEndpointsByteIdentical submits a real (tiny) simulation
// with telemetry requested on the job, then fetches every stored
// artifact over the API and requires the payload to be byte-identical
// to the server-side file — the contract dlprof -server relies on.
func TestArtifactEndpointsByteIdentical(t *testing.T) {
	dir := t.TempDir()
	cache, err := sweep.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := New(&sweep.Engine{Workers: 1, Cache: cache, TelemetryDir: dir}, nil)
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := dramlat.RunSpec{
		Benchmark: "bfs", Scheduler: "wg-w", Scale: 0.05, SMs: 2, WarpsPerSM: 4,
	}
	body, _ := json.Marshal(SubmitRequest{
		Specs:     []dramlat.RunSpec{spec},
		Telemetry: &dramlat.TelemetryOptions{Events: true, SampleEvery: 200},
	})
	resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	fin := waitJob(t, s, st.ID)
	if fin.Failed != 0 {
		t.Fatalf("job failed: %+v", fin)
	}

	hash := spec.Hash()
	resp, err = http.Get(ts.URL + "/api/v1/results/" + hash + "/artifacts")
	if err != nil {
		t.Fatal(err)
	}
	var list ArtifactsResponse
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Artifacts) != len(ArtifactNames) {
		t.Fatalf("artifact list %+v, want all of %v", list.Artifacts, ArtifactNames)
	}

	for _, art := range list.Artifacts {
		resp, err := http.Get(ts.URL + "/api/v1/results/" + hash + "/artifacts/" + art.Name)
		if err != nil {
			t.Fatal(err)
		}
		remote, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET artifact %s: status %d", art.Name, resp.StatusCode)
		}
		local, err := os.ReadFile(filepath.Join(dir, hash+"."+art.Name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(remote, local) {
			t.Errorf("artifact %s differs from server-side file (%d vs %d bytes)",
				art.Name, len(remote), len(local))
		}
		if int64(len(remote)) != art.Size {
			t.Errorf("artifact %s: listed size %d, fetched %d", art.Name, art.Size, len(remote))
		}
	}

	// Unknown names and traversal attempts never resolve to a path.
	for _, bad := range []string{"evil.txt", "..%2F..%2Fetc%2Fpasswd"} {
		resp, err := http.Get(ts.URL + "/api/v1/results/" + hash + "/artifacts/" + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET artifact %q: status %d, want 404", bad, resp.StatusCode)
		}
	}
}

// TestTelemetryRequiresArtifactDir pins the submit-time rejection: a
// job asking for telemetry on a server without an artifact dir fails
// loudly instead of silently dropping capture.
func TestTelemetryRequiresArtifactDir(t *testing.T) {
	run := newStubRunner()
	s := newTestServer(t, run, 1)
	_, err := s.SubmitJob(specList(1), JobOptions{
		Telemetry: dramlat.TelemetryOptions{Events: true},
	})
	if err == nil || !strings.Contains(err.Error(), "telemetry") {
		t.Fatalf("SubmitJob with telemetry, no dir: err = %v, want telemetry rejection", err)
	}
}

func TestHealthzBuildInfo(t *testing.T) {
	run := newStubRunner()
	s := newTestServer(t, run, 1)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz: status %d", resp.StatusCode)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.State != "ok" {
		t.Errorf("state %q, want ok", st.State)
	}
	if st.GoVersion == "" {
		t.Error("go_version empty; ReadBuildInfo should always supply it under `go test`")
	}
	if st.StartTime.IsZero() {
		t.Error("start_time is zero")
	}
	if st.UptimeMS < 0 {
		t.Errorf("uptime_ms = %d, want >= 0", st.UptimeMS)
	}
}

func TestRequestIDMiddleware(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	run := newStubRunner()
	cache, err := sweep.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := NewWithMetrics(&sweep.Engine{Workers: 1, Cache: cache, Runner: run.run},
		logger, metrics.NewRegistry())
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// A caller-supplied ID is propagated verbatim.
	req, _ := http.NewRequest("GET", ts.URL+"/api/v1/jobs", nil)
	req.Header.Set("X-Request-ID", "caller-supplied-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "caller-supplied-42" {
		t.Errorf("X-Request-ID = %q, want propagation of caller's", got)
	}

	// Absent one, the server generates 16 hex chars.
	resp, err = http.Get(ts.URL + "/api/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	gen := resp.Header.Get("X-Request-ID")
	if !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(gen) {
		t.Errorf("generated X-Request-ID = %q, want 16 hex chars", gen)
	}

	// One access-log line per request, carrying the request id.
	logs := buf.String()
	if !strings.Contains(logs, "request_id=caller-supplied-42") {
		t.Errorf("access log missing propagated request id:\n%s", logs)
	}
	if !strings.Contains(logs, "request_id="+gen) {
		t.Errorf("access log missing generated request id:\n%s", logs)
	}
	for _, want := range []string{"method=GET", "path=/api/v1/jobs", "status=200"} {
		if !strings.Contains(logs, want) {
			t.Errorf("access log missing %q:\n%s", want, logs)
		}
	}
}

func TestDashboardServed(t *testing.T) {
	run := newStubRunner()
	s := newTestServer(t, run, 1)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/api/v1/dashboard")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /api/v1/dashboard: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/html") {
		t.Errorf("content-type %q, want text/html", ct)
	}
	page, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"dlserve dashboard", "/api/v1/jobs", "/api/v1/health", "EventSource"} {
		if !strings.Contains(string(page), want) {
			t.Errorf("dashboard page missing %q", want)
		}
	}
}
