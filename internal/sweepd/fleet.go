package sweepd

// The distributed execution tier: remote worker processes (cmd/dlwork)
// pull queued specs over HTTP instead of the server pushing work to
// them. Three verbs cover the whole protocol:
//
//	claim      pop the best queued spec under a time-bounded lease
//	heartbeat  renew the lease while the spec executes
//	complete   return the typed sweep.Outcome, releasing the lease
//
// Fault model: a worker that dies (SIGKILL, OOM, network partition)
// simply stops heartbeating. The expiry sweeper notices the lease
// passing its TTL on the server's monotonic clock, counts one failed
// attempt against the spec, and re-queues it behind an exponential
// backoff with jitter so a crash-looping spec does not hammer the
// fleet. After Options.LeaseAttempts expired leases the spec is a
// proven poison pill: it is quarantined — its jobs complete with a
// typed *dramlat.QuarantineError outcome — instead of cycling through
// (and eventually wedging) every worker. No queued spec is ever lost,
// and no job ever hangs on a dead worker.
//
// A worker that merely ran slow is handled too: a completion arriving
// after the lease expired is still accepted as long as some job wants
// the spec ("late completion wins" — the result is deterministic, so
// first-to-finish is correct), and the re-queued copy is retired.

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"time"

	"dramlat"
	"dramlat/internal/sweep"
)

// ErrLeaseGone rejects heartbeats and completions for leases the
// server no longer holds: expired (the spec was re-queued or
// quarantined), completed by a faster worker, or failed by a drain.
// Workers treat it as "abandon this spec and claim the next one".
var ErrLeaseGone = errors.New("sweepd: lease expired or unknown")

// ErrUnknownWorker rejects claims with an empty worker name.
var ErrUnknownWorker = errors.New("sweepd: claim requires a worker name")

// ClaimRequest is the POST /workers/claim body.
type ClaimRequest struct {
	// Worker identifies the claiming process (host-pid by default);
	// it keys the fleet registry and labels lease diagnostics.
	Worker string `json:"worker"`
	// WaitMS long-polls: the server holds the request up to this long
	// for a spec to appear before answering "nothing queued".
	WaitMS int64 `json:"wait_ms,omitempty"`
}

// ClaimResponse is the POST /workers/claim reply. Exactly one of
// three shapes comes back: a granted lease (LeaseID set), "nothing
// queued" (all fields zero), or "server draining" (Draining true —
// stop claiming, finish what you hold).
type ClaimResponse struct {
	LeaseID string           `json:"lease_id,omitempty"`
	Hash    string           `json:"hash,omitempty"`
	Spec    *dramlat.RunSpec `json:"spec,omitempty"`
	// TTLMS is the lease duration; the worker must heartbeat well
	// within it (TTL/3 is the convention) or the spec is re-queued.
	TTLMS int64 `json:"ttl_ms,omitempty"`
	// Attempt is how many leases on this spec have already expired;
	// 0 is the first try.
	Attempt  int  `json:"attempt,omitempty"`
	Draining bool `json:"draining,omitempty"`
}

// HeartbeatRequest is the POST /workers/heartbeat body.
type HeartbeatRequest struct {
	LeaseID string `json:"lease_id"`
}

// HeartbeatResponse acknowledges a renewal. Abandon asks the worker
// to stop executing the spec (every job wanting it was canceled); the
// lease stays valid so the abandonment is graceful.
type HeartbeatResponse struct {
	OK      bool `json:"ok"`
	Abandon bool `json:"abandon,omitempty"`
}

// CompleteRequest is the POST /workers/complete body. The outcome
// travels in the typed sweep wire format, so failures arrive as the
// same errors.As-able values a local run would produce. Hash repeats
// the spec hash so a late completion (lease already expired) can
// still find and retire the re-queued task.
type CompleteRequest struct {
	LeaseID string        `json:"lease_id"`
	Hash    string        `json:"hash"`
	Outcome sweep.Outcome `json:"outcome"`
}

// CompleteResponse acknowledges a result. Late means the lease had
// already expired but the result was still wanted and won.
type CompleteResponse struct {
	Accepted bool `json:"accepted"`
	Late     bool `json:"late,omitempty"`
}

// lease is one granted claim: a spec checked out to a remote worker
// until expires (renewed by heartbeats). Expiry comparisons ride on
// time.Time's monotonic reading, so wall-clock jumps cannot mass-
// expire (or immortalize) leases.
type lease struct {
	id      string
	t       *task
	worker  string
	granted time.Time
	expires time.Time
}

// fleetWorker is one remote worker's registry row.
type fleetWorker struct {
	firstSeen time.Time
	lastSeen  time.Time
	active    int   // leases currently held
	completed int64 // outcomes returned over this worker's lifetime
}

// leaseTTL returns the configured lease duration.
func (s *Server) leaseTTL() time.Duration {
	if s.opts.LeaseTTL > 0 {
		return s.opts.LeaseTTL
	}
	return 30 * time.Second
}

// maxAttempts returns the per-spec lease budget before quarantine.
func (s *Server) maxAttempts() int {
	if s.opts.LeaseAttempts > 0 {
		return s.opts.LeaseAttempts
	}
	return 3
}

// sweepEvery returns the expiry-scan cadence: a quarter TTL, clamped
// so tiny test TTLs still get scanned and huge ones don't starve the
// delayed-retry promotion.
func (s *Server) sweepEvery() time.Duration {
	if s.opts.SweepEvery > 0 {
		return s.opts.SweepEvery
	}
	d := s.leaseTTL() / 4
	if d < 5*time.Millisecond {
		d = 5 * time.Millisecond
	}
	if d > time.Second {
		d = time.Second
	}
	return d
}

// workerExpiry is how long an idle fleet worker stays registered.
func (s *Server) workerExpiry() time.Duration {
	if d := 3 * s.leaseTTL(); d > time.Minute {
		return d
	}
	return time.Minute
}

// touchWorkerLocked records contact from a fleet worker (mu held).
func (s *Server) touchWorkerLocked(name string) *fleetWorker {
	fw, ok := s.fleet[name]
	if !ok {
		fw = &fleetWorker{firstSeen: time.Now()}
		s.fleet[name] = fw
		s.m.fleetWorkers.Set(float64(len(s.fleet)))
		s.logger.Info("fleet worker joined", "worker", name)
	}
	fw.lastSeen = time.Now()
	return fw
}

// popClaimableLocked removes and returns the best queued task a
// remote worker may run (mu held), or nil. Telemetry-capturing tasks
// are skipped: artifact capture writes into the server's own artifact
// dir, so those specs only execute on the local pool.
func (s *Server) popClaimableLocked() *task {
	best := -1
	for i, t := range s.pq {
		if t.tel.Enabled() {
			continue
		}
		if best < 0 || s.pq.Less(i, best) {
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	return heap.Remove(&s.pq, best).(*task)
}

// Claim hands the best queued spec to a remote worker under a fresh
// lease, long-polling up to wait for one to appear. Specs whose
// result is already in the shared cache never reach the fleet: the
// claim loop completes them server-side and keeps looking. A
// draining server answers Draining instead of work.
func (s *Server) Claim(ctx context.Context, workerName string, wait time.Duration) (ClaimResponse, error) {
	if workerName == "" {
		return ClaimResponse{}, ErrUnknownWorker
	}
	deadline := time.Now().Add(wait)
	// The cond wait below must wake when the caller gives up or the
	// long-poll window closes; both just broadcast.
	stop := context.AfterFunc(ctx, func() {
		s.mu.Lock()
		s.workCond.Broadcast()
		s.mu.Unlock()
	})
	defer stop()
	if wait > 0 {
		tm := time.AfterFunc(wait, func() {
			s.mu.Lock()
			s.workCond.Broadcast()
			s.mu.Unlock()
		})
		defer tm.Stop()
	}

	s.mu.Lock()
	s.touchWorkerLocked(workerName)
	for {
		if s.draining {
			s.mu.Unlock()
			s.m.claims.With("draining").Inc()
			return ClaimResponse{Draining: true}, nil
		}
		if err := ctx.Err(); err != nil {
			s.mu.Unlock()
			return ClaimResponse{}, err
		}
		if t := s.popClaimableLocked(); t != nil {
			t.running = true
			s.m.queueDepth.Dec()
			s.m.queueWait.With(fmt.Sprint(t.priority)).Observe(time.Since(t.queued).Seconds())
			s.mu.Unlock()
			// Cache short-circuit outside mu (disk I/O): a spec another
			// job already resolved — or a resubmitted grid — is served
			// here and never ties up a worker.
			if res, ok := s.eng.Cache.Get(t.spec); ok {
				s.m.claims.With("cached").Inc()
				s.mu.Lock()
				s.complete(t, sweep.Outcome{Results: res, Cached: true})
				continue
			}
			s.mu.Lock()
			resp := s.grantLocked(t, workerName)
			s.mu.Unlock()
			s.m.claims.With("granted").Inc()
			return resp, nil
		}
		if wait <= 0 || !time.Now().Before(deadline) {
			s.mu.Unlock()
			s.m.claims.With("empty").Inc()
			return ClaimResponse{}, nil
		}
		s.workCond.Wait()
	}
}

// grantLocked checks t out to worker under a fresh lease (mu held).
func (s *Server) grantLocked(t *task, worker string) ClaimResponse {
	ttl := s.leaseTTL()
	s.leaseSeq++
	l := &lease{
		id: fmt.Sprintf("lease-%d", s.leaseSeq), t: t, worker: worker,
		granted: time.Now(), expires: time.Now().Add(ttl),
	}
	s.leases[l.id] = l
	t.leaseID = l.id
	fw := s.touchWorkerLocked(worker)
	fw.active++
	s.m.leasesActive.Set(float64(len(s.leases)))
	s.logger.Debug("lease granted", "lease", l.id, "worker", worker,
		"hash", t.hash, "attempt", t.attempts)
	return ClaimResponse{
		LeaseID: l.id, Hash: t.hash, Spec: &t.spec,
		TTLMS: ttl.Milliseconds(), Attempt: t.attempts,
	}
}

// dropLeaseLocked forgets a lease without touching its task (mu held).
func (s *Server) dropLeaseLocked(l *lease) {
	delete(s.leases, l.id)
	if l.t.leaseID == l.id {
		l.t.leaseID = ""
	}
	if fw := s.fleet[l.worker]; fw != nil && fw.active > 0 {
		fw.active--
	}
	s.m.leasesActive.Set(float64(len(s.leases)))
}

// Heartbeat renews a lease for another TTL. ErrLeaseGone means the
// server re-queued (or quarantined, or drained) the spec — the worker
// should abandon it. Abandon=true keeps the lease but asks the worker
// to stop: every job wanting the spec has been canceled.
func (s *Server) Heartbeat(leaseID string) (HeartbeatResponse, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	l, ok := s.leases[leaseID]
	if !ok {
		s.m.heartbeats.With("gone").Inc()
		return HeartbeatResponse{}, ErrLeaseGone
	}
	l.expires = time.Now().Add(s.leaseTTL())
	s.touchWorkerLocked(l.worker)
	s.m.heartbeats.With("ok").Inc()
	return HeartbeatResponse{OK: true, Abandon: len(l.t.waiters) == 0}, nil
}

// CompleteLease lands a worker's outcome. The happy path releases the
// live lease; a late completion (lease already expired) is accepted
// as long as some job still wants the hash — the re-queued or
// re-leased copy is retired, because the result is deterministic and
// first-to-finish wins. Successful fresh results persist to the
// shared cache exactly like local executions (a cache-write failure
// becomes the outcome's error, matching sweep.Engine).
func (s *Server) CompleteLease(leaseID, hash string, o sweep.Outcome) (CompleteResponse, error) {
	s.mu.Lock()
	var t *task
	late := false
	if l, ok := s.leases[leaseID]; ok {
		t = l.t
		s.dropLeaseLocked(l)
		if fw := s.fleet[l.worker]; fw != nil {
			fw.completed++
		}
	} else {
		t = s.tasks[hash]
		if t == nil || t.completing {
			s.mu.Unlock()
			// Nobody wants it anymore (completed by a sibling, job
			// canceled, or quarantined). Still bank a successful fresh
			// result: the cache is content-addressed and the next sweep
			// over this spec becomes a hit.
			if o.Err == nil && !o.Cached {
				s.eng.Cache.Put(o.Spec, o.Results)
			}
			return CompleteResponse{}, ErrLeaseGone
		}
		late = true
		s.stats.lateCompletions++
		s.m.lateCompletions.Inc()
		// Retire the re-queued copy from wherever it sits: the ready
		// queue, the retry-backoff backlog, or a second worker's lease
		// (that worker's own completion will land in the task-gone path
		// above, harmlessly).
		s.unqueueLocked(t)
		if t.leaseID != "" {
			if l2 := s.leases[t.leaseID]; l2 != nil {
				s.dropLeaseLocked(l2)
			}
		}
	}
	t.completing = true
	t.running = true
	s.mu.Unlock()

	if o.Err == nil && !o.Cached {
		if cerr := s.eng.Cache.Put(t.spec, o.Results); cerr != nil {
			o.Err = cerr
		}
	}

	s.mu.Lock()
	if !o.Cached {
		s.m.execSeconds.With(t.spec.Canonical().Scheduler).Observe(o.Elapsed.Seconds())
	}
	s.complete(t, o)
	s.mu.Unlock()
	return CompleteResponse{Accepted: true, Late: late}, nil
}

// unqueueLocked removes t from the ready heap or the retry backlog,
// whichever holds it (mu held). A leased or running task is in
// neither — that's a no-op.
func (s *Server) unqueueLocked(t *task) {
	if t.index >= 0 {
		heap.Remove(&s.pq, t.index)
		s.m.queueDepth.Dec()
		return
	}
	for i, d := range s.delayed {
		if d == t {
			s.delayed = append(s.delayed[:i], s.delayed[i+1:]...)
			s.m.retryBacklog.Set(float64(len(s.delayed)))
			return
		}
	}
}

// sweeper is the fleet's failure detector: a single goroutine that
// periodically expires dead leases, promotes retry-delayed specs back
// into the ready queue, and forgets long-idle workers. It runs until
// Drain/Close.
func (s *Server) sweeper() {
	defer s.swg.Done()
	tick := time.NewTicker(s.sweepEvery())
	defer tick.Stop()
	for {
		select {
		case <-s.sweepStop:
			return
		case <-tick.C:
			s.sweepOnce(time.Now())
		}
	}
}

// sweepOnce runs one failure-detection pass at the given instant.
// Split out (and instant-injected) so tests drive expiry
// deterministically without sleeping.
func (s *Server) sweepOnce(now time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, l := range s.leases {
		if now.Before(l.expires) {
			continue
		}
		t := l.t
		s.dropLeaseLocked(l)
		s.stats.leaseExpiries++
		s.m.leaseExpiries.Inc()
		t.attempts++
		t.lastWorker = l.worker
		switch {
		case len(t.waiters) == 0:
			// Every job wanting it was canceled while leased; nothing
			// to retry for.
			delete(s.tasks, t.hash)
		case t.attempts >= s.maxAttempts():
			s.stats.quarantined++
			s.m.quarantines.Inc()
			t.completing = true
			s.logger.Warn("spec quarantined",
				"hash", t.hash, "attempts", t.attempts, "last_worker", l.worker)
			s.complete(t, sweep.Outcome{Err: &dramlat.QuarantineError{
				SpecHash: t.hash, Attempts: t.attempts, LastWorker: l.worker,
			}})
		default:
			s.stats.retried++
			s.m.retries.Inc()
			t.running = false
			t.leaseID = ""
			t.notBefore = now.Add(s.retryBackoff.Delay(t.attempts - 1))
			s.delayed = append(s.delayed, t)
			s.m.retryBacklog.Set(float64(len(s.delayed)))
			s.logger.Warn("lease expired, spec re-queued",
				"lease", l.id, "worker", l.worker, "hash", t.hash,
				"attempt", t.attempts, "retry_in", time.Until(t.notBefore).Round(time.Millisecond))
		}
	}

	// Promote retry-delayed specs whose backoff elapsed.
	kept := s.delayed[:0]
	promoted := false
	for _, t := range s.delayed {
		if now.Before(t.notBefore) {
			kept = append(kept, t)
			continue
		}
		s.seq++
		t.seq = s.seq
		t.queued = now
		heap.Push(&s.pq, t)
		s.m.queueDepth.Inc()
		promoted = true
	}
	for i := len(kept); i < len(s.delayed); i++ {
		s.delayed[i] = nil
	}
	s.delayed = kept
	if promoted {
		s.m.retryBacklog.Set(float64(len(s.delayed)))
		s.workCond.Broadcast()
	}

	// Forget workers that hold nothing and have not spoken in a while.
	for name, fw := range s.fleet {
		if fw.active == 0 && now.Sub(fw.lastSeen) > s.workerExpiry() {
			delete(s.fleet, name)
			s.m.fleetWorkers.Set(float64(len(s.fleet)))
			s.logger.Info("fleet worker expired", "worker", name)
		}
	}
}
