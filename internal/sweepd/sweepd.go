// Package sweepd is the long-running experiment service behind
// cmd/dlserve: it accepts sweep jobs (grids or spec lists) over HTTP,
// deduplicates specs by content hash across every submitted job, runs
// them on a bounded worker pool backed by the shared persistent
// sweep.Cache, streams per-outcome progress to any number of watchers,
// and drains gracefully on shutdown so interrupted jobs are resumable
// from the cache.
//
// The core is a priority task queue in front of sweep.Engine's
// RunOneContext. A "task" is one unique spec hash; every (job, spec
// index) pair that needs it registers as a waiter, so two overlapping
// grids submitted concurrently execute each distinct hash exactly once
// — the tasks map is the singleflight. The first waiter plays the
// engine's "leader" role (its outcome keeps Cached/Elapsed verbatim);
// later waiters are followers and report Cached, exactly like
// sweep.Engine deduplication, so a report fetched from the service is
// indistinguishable from a local run.
package sweepd

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"time"

	"dramlat"
	"dramlat/internal/guard/backoff"
	"dramlat/internal/metrics"
	"dramlat/internal/sweep"
)

// JobState is the lifecycle of a submitted job.
type JobState string

const (
	// JobRunning: specs are queued or executing.
	JobRunning JobState = "running"
	// JobDone: every spec has an outcome (some may have failed).
	JobDone JobState = "done"
	// JobCanceled: canceled by request; unfinished specs carry
	// context.Canceled outcomes.
	JobCanceled JobState = "canceled"
	// JobResumable: the server drained before the job finished.
	// Completed specs are in the cache, so resubmitting the same job
	// serves the finished prefix instantly.
	JobResumable JobState = "resumable"
)

func (s JobState) terminal() bool { return s != JobRunning }

// ErrDrained marks specs a graceful shutdown never ran.
var ErrDrained = errors.New("sweepd: server drained before this spec ran")

// ErrDraining rejects submissions once shutdown has begun.
var ErrDraining = errors.New("sweepd: server is draining")

// ErrTelemetryDisabled rejects telemetry-capture submissions on a
// server without an artifact directory.
var ErrTelemetryDisabled = errors.New("sweepd: server has no artifact dir; telemetry capture disabled")

// ErrTelemetryRemote rejects telemetry-capture submissions on a
// fleet-only server: artifact capture writes into the server's own
// artifact dir, so those specs need local workers.
var ErrTelemetryRemote = errors.New("sweepd: telemetry capture requires local workers; this server is fleet-only")

// Stats is the health/stats endpoint payload. Counters are cumulative
// over the server's lifetime; Executed counts specs actually simulated
// (a resubmitted, fully cached grid leaves it untouched). Build
// identity (version, VCS revision, Go version) and uptime ride along so
// `GET /healthz` answers "what exactly is running, and since when".
type Stats struct {
	State       string `json:"state"` // ok | draining
	Workers     int    `json:"workers"`
	Jobs        int    `json:"jobs"`
	ActiveJobs  int    `json:"active_jobs"`
	QueuedSpecs int    `json:"queued_specs"`
	Running     int    `json:"running"`
	Executed    int64  `json:"executed"`
	CacheHits   int64  `json:"cache_hits"`
	Deduped     int64  `json:"deduped"`
	Failed      int64  `json:"failed"`
	CacheDir    string `json:"cache_dir,omitempty"`
	ArtifactDir string `json:"artifact_dir,omitempty"`

	// Fleet counters (zero on a server no remote worker ever joined).
	FleetWorkers    int   `json:"fleet_workers"`
	ActiveLeases    int   `json:"active_leases"`
	RetryBacklog    int   `json:"retry_backlog"`
	LeaseExpiries   int64 `json:"lease_expiries"`
	Retried         int64 `json:"retried"`
	Quarantined     int64 `json:"quarantined"`
	LateCompletions int64 `json:"late_completions"`

	Version   string    `json:"version,omitempty"`
	Revision  string    `json:"revision,omitempty"`
	GoVersion string    `json:"go_version,omitempty"`
	StartTime time.Time `json:"start_time"`
	UptimeMS  int64     `json:"uptime_ms"`
}

// buildIdentity reads the binary's module version, VCS revision and Go
// toolchain once; absent fields (e.g. a test binary with no VCS stamp)
// stay empty rather than erroring.
var buildIdentity = sync.OnceValue(func() (bi [3]string) {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return bi
	}
	bi[0] = info.Main.Version
	bi[2] = info.GoVersion
	for _, s := range info.Settings {
		if s.Key == "vcs.revision" {
			bi[1] = s.Value
		}
	}
	return bi
})

// JobStatus is the externally visible state of one job.
type JobStatus struct {
	ID       string   `json:"id"`
	State    JobState `json:"state"`
	Priority int      `json:"priority,omitempty"`
	Total    int      `json:"total"`
	Done     int      `json:"done"`
	Executed int      `json:"executed"`
	Cached   int      `json:"cached"`
	Failed   int      `json:"failed"`
	// Approximate counts successful sampled-engine outcomes: their
	// Results carry error bars rather than exact event-driven numbers.
	Approximate int       `json:"approximate,omitempty"`
	Submitted   time.Time `json:"submitted"`
	ElapsedMS   int64     `json:"elapsed_ms"`
}

// task is one unique spec hash wanted by one or more (job, index)
// waiters. It sits in the priority heap until a worker claims it.
type task struct {
	hash     string
	spec     dramlat.RunSpec
	priority int
	seq      int64 // FIFO tiebreak within a priority
	waiters  []waiter
	running  bool
	index    int       // heap index; -1 once claimed or removed
	queued   time.Time // enqueue instant, for the queue-wait histogram
	// Fleet bookkeeping (fleet.go): how many leases on this spec have
	// expired, which lease currently holds it, when a retry-delayed
	// copy may re-enter the heap, and whether a completion has claimed
	// it (late-completion race fence).
	attempts   int
	lastWorker string
	leaseID    string
	notBefore  time.Time
	completing bool
	// tel is the merged telemetry request of every waiter that asked
	// for artifact capture: any waiter enabling a subsystem enables it
	// for the single shared execution. Joining a task that is already
	// running cannot retroactively enable capture.
	tel dramlat.TelemetryOptions
}

type waiter struct {
	job *job
	idx int
}

// taskHeap orders by priority (higher first), then submission order.
type taskHeap []*task

func (h taskHeap) Len() int { return len(h) }
func (h taskHeap) Less(i, j int) bool {
	if h[i].priority != h[j].priority {
		return h[i].priority > h[j].priority
	}
	return h[i].seq < h[j].seq
}
func (h taskHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index, h[j].index = i, j
}
func (h *taskHeap) Push(x any) {
	t := x.(*task)
	t.index = len(*h)
	*h = append(*h, t)
}
func (h *taskHeap) Pop() any {
	old := *h
	t := old[len(old)-1]
	old[len(old)-1] = nil
	t.index = -1
	*h = old[:len(old)-1]
	return t
}

// jobEvent is one completed spec in a job's event log: everything a
// progress stream needs, kept so late subscribers replay from the start.
type jobEvent struct {
	Index  int
	Event  sweep.Event
	Approx int // job-level approximate (sampled) count as of this event
}

type job struct {
	id        string
	priority  int
	state     JobState
	specs     []dramlat.RunSpec
	outcomes  []sweep.Outcome
	filled    []bool
	done      int
	executed  int
	cached    int
	failed    int
	approx    int // successful sampled-engine outcomes (approximate Results)
	events    []jobEvent
	submitted time.Time
	finished  time.Time
}

func (j *job) status() JobStatus {
	end := j.finished
	if end.IsZero() {
		end = time.Now()
	}
	return JobStatus{
		ID: j.id, State: j.state, Priority: j.priority,
		Total: len(j.specs), Done: j.done,
		Executed: j.executed, Cached: j.cached, Failed: j.failed,
		Approximate: j.approx,
		Submitted:   j.submitted,
		ElapsedMS:   end.Sub(j.submitted).Milliseconds(),
	}
}

// Server owns the queue, the jobs, and the worker pool. All mutable
// state is guarded by mu; workCond wakes workers when tasks arrive,
// eventCond wakes progress streams when any job advances.
type Server struct {
	eng     *sweep.Engine
	opts    Options
	logger  *slog.Logger
	m       *serverMetrics
	started time.Time

	ctx    context.Context // cancels in-flight simulations on Close
	cancel context.CancelFunc

	mu       sync.Mutex
	workCond *sync.Cond
	evCond   *sync.Cond
	jobs     map[string]*job
	order    []string // job submission order
	tasks    map[string]*task
	pq       taskHeap
	seq      int64
	nextJob  int64
	draining bool
	running  int
	stats    struct {
		executed, cacheHits, deduped, failed int64
		leaseExpiries, retried, quarantined  int64
		lateCompletions                      int64
	}

	// Fleet state (fleet.go): leases checked out to remote workers,
	// specs waiting out a retry backoff, and the worker registry.
	leases       map[string]*lease
	delayed      []*task
	fleet        map[string]*fleetWorker
	leaseSeq     int64
	retryBackoff backoff.Policy

	wg        sync.WaitGroup // local worker goroutines
	swg       sync.WaitGroup // expiry sweeper
	sweepStop chan struct{}
	sweepOff  sync.Once
}

// Options tune the server beyond the engine's own knobs. The zero
// value matches the pre-fleet behavior: a local pool sized by the
// engine, 30s leases, 3 attempts before quarantine.
type Options struct {
	// LocalWorkers sizes the in-process execution pool: 0 uses the
	// engine's Workers (GOMAXPROCS when that is also unset), -1 runs
	// no local workers at all — every spec waits for a remote worker
	// to claim it (fleet-only mode).
	LocalWorkers int
	// LeaseTTL is how long a claimed spec may go without a heartbeat
	// before it is presumed lost and re-queued (default 30s).
	LeaseTTL time.Duration
	// LeaseAttempts is the per-spec lease budget: after this many
	// expired leases the spec is quarantined (default 3).
	LeaseAttempts int
	// RetryBackoff delays each re-queue after a lease expiry. The
	// zero value is backoff.Default() (100ms base, 30s cap, ×2,
	// half-width jitter).
	RetryBackoff backoff.Policy
	// SweepEvery overrides the expiry-scan cadence (default TTL/4,
	// clamped to [5ms, 1s]). Tests use small values.
	SweepEvery time.Duration
}

// New starts a server with eng's worker count (Workers <= 0 means
// GOMAXPROCS). The engine's cache, runner and timeout apply to every
// spec the service executes. A nil logger discards logs. Service
// metrics land on metrics.Default (alongside the engine- and
// cache-level families), so `GET /metrics` exposes the whole stack.
func New(eng *sweep.Engine, logger *slog.Logger) *Server {
	return NewWithMetrics(eng, logger, metrics.Default)
}

// NewWithMetrics is New with the service instruments on a caller-owned
// registry — tests use a fresh registry so counters start at zero.
// Engine and cache families still land on metrics.Default.
func NewWithMetrics(eng *sweep.Engine, logger *slog.Logger, reg *metrics.Registry) *Server {
	return NewWithOptions(eng, logger, reg, Options{})
}

// NewWithOptions is the full constructor: pool sizing, lease TTL and
// retry policy for the remote-worker tier (fleet.go).
func NewWithOptions(eng *sweep.Engine, logger *slog.Logger, reg *metrics.Registry, opts Options) *Server {
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		eng: eng, opts: opts, logger: logger,
		m:       newServerMetrics(reg),
		started: time.Now(),
		ctx:     ctx, cancel: cancel,
		jobs:      map[string]*job{},
		tasks:     map[string]*task{},
		leases:    map[string]*lease{},
		fleet:     map[string]*fleetWorker{},
		sweepStop: make(chan struct{}),
	}
	s.retryBackoff = opts.RetryBackoff
	s.workCond = sync.NewCond(&s.mu)
	s.evCond = sync.NewCond(&s.mu)
	n := s.Workers()
	s.m.workers.Set(float64(n))
	for i := 0; i < n; i++ {
		s.wg.Add(1)
		go s.worker(i)
	}
	s.swg.Add(1)
	go s.sweeper()
	s.logger.Info("sweepd up", "workers", n, "cache", eng.Cache.Dir(),
		"lease_ttl", s.leaseTTL(), "lease_attempts", s.maxAttempts())
	return s
}

// Workers reports the local pool size (0 on a fleet-only server).
func (s *Server) Workers() int {
	if s.opts.LocalWorkers < 0 {
		return 0
	}
	if s.opts.LocalWorkers > 0 {
		return s.opts.LocalWorkers
	}
	n := s.eng.Workers
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return n
}

// JobOptions shape one submission beyond its specs.
type JobOptions struct {
	// Priority orders jobs in the queue (higher first; FIFO within).
	Priority int
	// Telemetry, when it enables a subsystem, captures per-spec
	// artifacts (event JSONL, interval CSVs) for every spec this job
	// freshly executes; they land in the server's artifact dir,
	// content-addressed by spec hash, and are served by the
	// /results/{hash}/artifacts endpoints. Requires the server to run
	// with an artifact dir (ErrTelemetryDisabled otherwise). Specs
	// served from the cache — including ones another job is already
	// executing without telemetry — produce no artifacts, exactly like
	// cache hits in a local sweep.
	Telemetry dramlat.TelemetryOptions
}

// Submit queues one job over the given specs at the given priority.
// See SubmitJob for the full-option surface.
func (s *Server) Submit(specs []dramlat.RunSpec, priority int) (JobStatus, error) {
	return s.SubmitJob(specs, JobOptions{Priority: priority})
}

// SubmitJob queues one job over the given specs. Specs are not
// pre-validated: an invalid spec fails at execution with a
// *dramlat.ValidationError outcome, exactly as in a local sweep, so
// remote and local reports stay identical. Duplicate hashes — within
// the job or against specs other live jobs are already waiting on —
// execute once.
func (s *Server) SubmitJob(specs []dramlat.RunSpec, opts JobOptions) (JobStatus, error) {
	if len(specs) == 0 {
		return JobStatus{}, errors.New("sweepd: job has no specs")
	}
	if opts.Telemetry.Enabled() {
		if s.eng.TelemetryDir == "" {
			return JobStatus{}, ErrTelemetryDisabled
		}
		// Telemetry tasks only run on the local pool (popClaimableLocked
		// skips them), so a fleet-only server would queue them forever.
		if s.Workers() == 0 {
			return JobStatus{}, ErrTelemetryRemote
		}
		// Sampled specs have no full trace to capture — the fast-forward
		// regions are modeled. Reject the combination up front with a
		// typed field error rather than queueing specs doomed to fail.
		for i, sp := range specs {
			if sp.IsSampled() {
				return JobStatus{}, &dramlat.ValidationError{Fields: []dramlat.FieldError{{
					Field: "Telemetry", Value: fmt.Sprintf("specs[%d]", i),
					Msg: "telemetry capture is not available for sampled runs: fast-forward regions are modeled and have no events to record",
				}}}
			}
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return JobStatus{}, ErrDraining
	}
	s.nextJob++
	j := &job{
		id:       fmt.Sprintf("job-%d", s.nextJob),
		priority: opts.Priority,
		state:    JobRunning,
		specs:    specs,
		outcomes: make([]sweep.Outcome, len(specs)),
		filled:   make([]bool, len(specs)),

		submitted: time.Now(),
	}
	now := time.Now()
	for i, sp := range specs {
		h := sp.Hash()
		j.outcomes[i] = sweep.Outcome{Spec: sp, Hash: h}
		if t, ok := s.tasks[h]; ok {
			t.waiters = append(t.waiters, waiter{j, i})
			s.stats.deduped++
			s.m.queueWaiters.Inc()
			// A waiting task inherits the most urgent priority asked
			// of it, and the union of the telemetry requests (unless it
			// is already running — capture cannot start retroactively).
			if !t.running {
				t.tel = mergeTelemetry(t.tel, opts.Telemetry)
			}
			if opts.Priority > t.priority && !t.running {
				// The task may sit in the heap or in the retry-delayed
				// list; only heap residents need a re-sift.
				t.priority = opts.Priority
				if t.index >= 0 {
					heap.Fix(&s.pq, t.index)
				}
			}
			continue
		}
		s.seq++
		t := &task{hash: h, spec: sp, priority: opts.Priority, seq: s.seq,
			queued: now, tel: opts.Telemetry,
			waiters: []waiter{{j, i}}}
		s.tasks[h] = t
		heap.Push(&s.pq, t)
		s.m.queueDepth.Inc()
		s.m.queueWaiters.Inc()
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.m.jobsSubmitted.Inc()
	s.workCond.Broadcast()
	s.logger.Info("job submitted", "job", j.id, "specs", len(specs), "priority", opts.Priority)
	return j.status(), nil
}

// mergeTelemetry unions two capture requests: any enabled subsystem
// stays enabled, the ring capacity takes the larger ask, and the
// sampling period the finer one.
func mergeTelemetry(a, b dramlat.TelemetryOptions) dramlat.TelemetryOptions {
	out := a
	out.Events = a.Events || b.Events
	if b.EventCap > out.EventCap {
		out.EventCap = b.EventCap
	}
	if b.SampleEvery > 0 && (out.SampleEvery == 0 || b.SampleEvery < out.SampleEvery) {
		out.SampleEvery = b.SampleEvery
	}
	return out
}

// worker pulls the highest-priority task, runs it through the engine
// (cache first), and fans the outcome out to every waiter.
func (s *Server) worker(id int) {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.pq) == 0 && !s.draining {
			s.workCond.Wait()
		}
		if s.draining {
			s.mu.Unlock()
			return
		}
		t := heap.Pop(&s.pq).(*task)
		t.running = true
		s.running++
		s.m.queueDepth.Dec()
		s.m.workersBusy.Inc()
		s.m.queueWait.With(strconv.Itoa(t.priority)).Observe(time.Since(t.queued).Seconds())
		s.mu.Unlock()

		spec := t.spec
		if t.tel.Enabled() {
			// Per-job artifact capture: the engine's telemetry runner
			// writes the bundle under the artifact dir before returning.
			spec.Telemetry = t.tel
		}
		start := time.Now()
		o := s.eng.RunOneContext(s.ctx, spec)
		if !o.Cached {
			s.m.execSeconds.With(spec.Canonical().Scheduler).Observe(o.Elapsed.Seconds())
		}
		s.logger.Debug("spec finished",
			"worker", id, "hash", t.hash, "kind", string(o.Kind()),
			"ms", time.Since(start).Milliseconds())

		s.mu.Lock()
		s.running--
		s.m.workersBusy.Dec()
		if s.draining {
			s.m.drainPending.Set(float64(s.running))
		}
		s.complete(t, o)
		s.mu.Unlock()
	}
}

// complete (mu held) distributes a task's outcome to its waiters with
// the engine's leader/follower semantics and retires the task.
func (s *Server) complete(t *task, o sweep.Outcome) {
	delete(s.tasks, t.hash)
	switch {
	case o.Cached:
		s.stats.cacheHits++
	default:
		s.stats.executed++
	}
	if o.Err != nil {
		s.stats.failed++
	}
	for k, w := range t.waiters {
		oc := o
		oc.Spec = w.job.specs[w.idx]
		oc.Hash = t.hash
		if k > 0 {
			// Followers are served by the leader's run: cached on
			// success, no elapsed time of their own.
			oc.Cached = o.Err == nil
			oc.Elapsed = 0
		}
		s.m.queueWaiters.Dec()
		s.deliver(w.job, w.idx, oc, k > 0)
	}
	s.evCond.Broadcast()
}

// deliver (mu held) lands one outcome in a job and advances its
// counters and event log. Counter semantics mirror sweep.Engine:
// executed counts leader runs only, followers of a successful leader
// count as cached.
func (s *Server) deliver(j *job, idx int, o sweep.Outcome, follower bool) {
	if j.state.terminal() || j.filled[idx] {
		return
	}
	j.outcomes[idx] = o
	j.filled[idx] = true
	j.done++
	s.m.specOutcomes.With(string(o.Kind())).Inc()
	if o.Err != nil {
		j.failed++
	}
	if o.Cached {
		j.cached++
	} else if !follower {
		j.executed++
	}
	if o.Err == nil && o.Results.Approximate {
		j.approx++
	}
	j.events = append(j.events, jobEvent{Index: idx, Approx: j.approx, Event: sweep.Event{
		Done: j.done, Total: len(j.specs),
		Executed: j.executed, Cached: j.cached, Failed: j.failed,
		Outcome: o,
	}})
	if j.done == len(j.specs) {
		j.state = JobDone
		j.finished = time.Now()
		s.m.jobsFinished.With(string(JobDone)).Inc()
		s.logger.Info("job done", "job", j.id,
			"executed", j.executed, "cached", j.cached, "failed", j.failed,
			"ms", j.finished.Sub(j.submitted).Milliseconds())
	}
}

// Cancel aborts a job: unfinished specs get context.Canceled outcomes,
// and queue entries no other job waits on are dropped. Specs already
// executing finish (their results still land in the cache) but the
// outcome is discarded for this job. Canceling a terminal job is a
// no-op; an unknown ID is an error.
func (s *Server) Cancel(id string) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, fmt.Errorf("sweepd: unknown job %q", id)
	}
	if j.state.terminal() {
		return j.status(), nil
	}
	// Detach this job from every task it is waiting on.
	for h, t := range s.tasks {
		kept := t.waiters[:0]
		for _, w := range t.waiters {
			if w.job != j {
				kept = append(kept, w)
			} else {
				s.m.queueWaiters.Dec()
			}
		}
		t.waiters = kept
		if len(kept) == 0 && !t.running && t.leaseID == "" {
			// The task may be in the ready heap or the retry-delayed
			// list; unqueueLocked handles both. A running or leased
			// task stays: the local worker (or the remote one, via
			// heartbeat Abandon) learns nobody wants it, the lease
			// sweeper forgets it if it expires waiterless, and a
			// completion that arrives anyway still banks its result.
			s.unqueueLocked(t)
			delete(s.tasks, h)
		}
	}
	for i := range j.specs {
		if !j.filled[i] {
			j.outcomes[i].Err = context.Canceled
			j.filled[i] = true
			j.done++
			j.failed++
			s.m.specOutcomes.With(string(sweep.KindCanceled)).Inc()
		}
	}
	j.state = JobCanceled
	j.finished = time.Now()
	s.m.jobsFinished.With(string(JobCanceled)).Inc()
	s.evCond.Broadcast()
	s.logger.Info("job canceled", "job", id, "done", j.done, "total", len(j.specs))
	return j.status(), nil
}

// Status returns one job's state.
func (s *Server) Status(id string) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, fmt.Errorf("sweepd: unknown job %q", id)
	}
	return j.status(), nil
}

// Jobs lists every job in submission order.
func (s *Server) Jobs() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].status())
	}
	return out
}

// Report returns a job's aggregate in sweep.Report form: outcomes in
// input-spec order, counters with engine semantics. Unfinished specs
// (running or resumable jobs) carry nil-error zero outcomes unless the
// job was canceled or drained.
func (s *Server) Report(id string) (*sweep.Report, JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, JobStatus{}, fmt.Errorf("sweepd: unknown job %q", id)
	}
	end := j.finished
	if end.IsZero() {
		end = time.Now()
	}
	rep := &sweep.Report{
		Outcomes: append([]sweep.Outcome(nil), j.outcomes...),
		Executed: j.executed, Cached: j.cached, Failed: j.failed,
		Elapsed: end.Sub(j.submitted),
	}
	return rep, j.status(), nil
}

// Events returns a job's event log from offset on, blocking until more
// events exist, the job reaches a terminal state, or ctx is canceled.
// It is the primitive behind the streaming endpoint; the returned state
// tells the caller whether to keep polling.
func (s *Server) Events(ctx context.Context, id string, offset int) ([]jobEvent, JobState, error) {
	// Wake our cond wait when the caller gives up.
	stop := context.AfterFunc(ctx, func() {
		s.mu.Lock()
		s.evCond.Broadcast()
		s.mu.Unlock()
	})
	defer stop()

	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, "", fmt.Errorf("sweepd: unknown job %q", id)
	}
	for len(j.events) <= offset && !j.state.terminal() && ctx.Err() == nil {
		s.evCond.Wait()
	}
	if err := ctx.Err(); err != nil {
		return nil, j.state, err
	}
	return j.events[offset:], j.state, nil
}

// Result serves one cached result by spec hash (the content-addressed
// artifact store every finished spec lands in).
func (s *Server) Result(hash string) (dramlat.RunSpec, dramlat.Results, bool) {
	return s.eng.Cache.Entry(hash)
}

// Stats snapshots the server counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	bi := buildIdentity()
	st := Stats{
		State:    "ok",
		Workers:  s.Workers(),
		Jobs:     len(s.jobs),
		Running:  s.running,
		Executed: s.stats.executed, CacheHits: s.stats.cacheHits,
		Deduped: s.stats.deduped, Failed: s.stats.failed,
		CacheDir:     s.eng.Cache.Dir(),
		ArtifactDir:  s.eng.TelemetryDir,
		FleetWorkers: len(s.fleet), ActiveLeases: len(s.leases),
		RetryBacklog:  len(s.delayed),
		LeaseExpiries: s.stats.leaseExpiries, Retried: s.stats.retried,
		Quarantined: s.stats.quarantined, LateCompletions: s.stats.lateCompletions,
		Version: bi[0], Revision: bi[1], GoVersion: bi[2],
		StartTime: s.started,
		UptimeMS:  time.Since(s.started).Milliseconds(),
	}
	if s.draining {
		st.State = "draining"
	}
	for _, t := range s.pq {
		st.QueuedSpecs += len(t.waiters)
	}
	for _, t := range s.delayed {
		st.QueuedSpecs += len(t.waiters)
	}
	for _, j := range s.jobs {
		if !j.state.terminal() {
			st.ActiveJobs++
		}
	}
	return st
}

// Drain performs a graceful shutdown: stop dequeuing, let in-flight
// local specs finish (their results persist to the cache), then mark
// every unfinished job resumable — its pending specs get ErrDrained
// outcomes and open streams terminate. New submissions are rejected
// from the first moment. Open remote leases fail fast: they are
// dropped immediately — not waited out to their TTL — so their specs
// land in the resumable set at once; a worker still executing one
// learns on its next heartbeat (ErrLeaseGone) and its eventual result
// is banked to the cache for the resume. Safe to call more than once.
func (s *Server) Drain() {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.m.draining.Set(1)
	s.m.drainPending.Set(float64(s.running))
	for _, l := range s.leases {
		s.dropLeaseLocked(l)
		s.logger.Info("drain: lease failed open", "lease", l.id,
			"worker", l.worker, "hash", l.t.hash)
	}
	s.delayed = nil
	s.m.retryBacklog.Set(0)
	s.workCond.Broadcast()
	s.mu.Unlock()
	if !already {
		s.logger.Info("draining", "in_flight", s.Stats().Running)
	}
	s.sweepOff.Do(func() { close(s.sweepStop) })
	s.swg.Wait()
	s.wg.Wait()

	s.mu.Lock()
	defer s.mu.Unlock()
	s.m.drainPending.Set(0)
	for _, id := range s.order {
		j := s.jobs[id]
		if j.state.terminal() {
			continue
		}
		for i := range j.specs {
			if !j.filled[i] {
				j.outcomes[i].Err = ErrDrained
				j.filled[i] = true
				j.done++
				j.failed++
				s.m.specOutcomes.With(string(sweep.Outcome{Err: ErrDrained}.Kind())).Inc()
			}
		}
		j.state = JobResumable
		j.finished = time.Now()
		s.m.jobsFinished.With(string(JobResumable)).Inc()
		s.logger.Info("job marked resumable", "job", id,
			"completed", j.done-j.failed, "total", len(j.specs))
	}
	s.evCond.Broadcast()
}

// Close hard-stops the server: cancels in-flight simulations (they
// abort at their next watchdog check) and then drains. For tests and
// abnormal exits; SIGTERM paths should prefer Drain.
func (s *Server) Close() {
	s.cancel()
	s.Drain()
}
