package sweepd

import (
	"dramlat/internal/metrics"
)

// serverMetrics is the service-level instrument set, registered on one
// registry (metrics.Default in production, a fresh registry in tests so
// counters start from zero). The engine- and cache-level families
// (dramlat_sweep_*, dramlat_cache_*) live on metrics.Default regardless
// — see internal/sweep/metrics.go — so a default-registry server
// exposes the whole stack from one /metrics scrape.
type serverMetrics struct {
	reg *metrics.Registry

	// Queue: unique spec hashes waiting for a worker, (job, spec)
	// waiter pairs behind them, and how long claims sat queued.
	queueDepth   *metrics.Gauge
	queueWaiters *metrics.Gauge
	queueWait    *metrics.HistogramVec // seconds, by priority

	// Worker pool.
	workers     *metrics.Gauge
	workersBusy *metrics.Gauge

	// Jobs and spec outcomes.
	jobsSubmitted *metrics.Counter
	jobsFinished  *metrics.CounterVec // by terminal state
	specOutcomes  *metrics.CounterVec // by sweep.OutcomeKind
	execSeconds   *metrics.HistogramVec

	// Fleet: remote workers pulling specs under leases (fleet.go).
	fleetWorkers    *metrics.Gauge
	leasesActive    *metrics.Gauge
	retryBacklog    *metrics.Gauge
	claims          *metrics.CounterVec // by result
	heartbeats      *metrics.CounterVec // by result
	leaseExpiries   *metrics.Counter
	retries         *metrics.Counter
	quarantines     *metrics.Counter
	lateCompletions *metrics.Counter

	// Streaming and shutdown.
	streamSubs   *metrics.Gauge
	draining     *metrics.Gauge
	drainPending *metrics.Gauge

	// HTTP surface (populated by the request middleware).
	httpRequests *metrics.CounterVec // method, code
	httpSeconds  *metrics.Histogram
}

func newServerMetrics(reg *metrics.Registry) *serverMetrics {
	// Queue-wait buckets reach further than execution latency: a spec
	// can sit behind a long sweep for minutes.
	waitBuckets := metrics.ExpBuckets(0.001, 4, 12) // 1ms .. ~4200s
	return &serverMetrics{
		reg: reg,
		queueDepth: reg.Gauge("dramlat_sweepd_queue_depth",
			"Unique spec hashes queued and not yet claimed by a worker."),
		queueWaiters: reg.Gauge("dramlat_sweepd_queue_waiters",
			"(job, spec) pairs waiting on queued or in-flight tasks."),
		queueWait: reg.HistogramVec("dramlat_sweepd_queue_wait_seconds",
			"Time from task enqueue to worker claim.", waitBuckets, "priority"),
		workers: reg.Gauge("dramlat_sweepd_workers",
			"Size of the simulation worker pool."),
		workersBusy: reg.Gauge("dramlat_sweepd_workers_busy",
			"Workers currently executing a spec."),
		jobsSubmitted: reg.Counter("dramlat_sweepd_jobs_submitted_total",
			"Jobs accepted by Submit."),
		jobsFinished: reg.CounterVec("dramlat_sweepd_jobs_total",
			"Jobs that reached a terminal state.", "state"),
		specOutcomes: reg.CounterVec("dramlat_sweepd_spec_outcomes_total",
			"Spec outcomes delivered to jobs, by outcome kind; for a clean job, ok + cached equals the job's total specs.", "kind"),
		execSeconds: reg.HistogramVec("dramlat_sweepd_exec_seconds",
			"Execution latency of specs freshly simulated by this server.",
			nil, "scheduler"),
		fleetWorkers: reg.Gauge("dramlat_sweepd_workers_fleet",
			"Remote workers currently registered with the fleet."),
		leasesActive: reg.Gauge("dramlat_sweepd_workers_leases_active",
			"Specs currently checked out to remote workers under a live lease."),
		retryBacklog: reg.Gauge("dramlat_sweepd_workers_retry_backlog",
			"Specs waiting out a retry backoff after a lease expiry."),
		claims: reg.CounterVec("dramlat_sweepd_workers_claims_total",
			"Worker claim requests, by result (granted, cached, empty, draining).", "result"),
		heartbeats: reg.CounterVec("dramlat_sweepd_workers_heartbeats_total",
			"Worker lease renewals, by result (ok, gone).", "result"),
		leaseExpiries: reg.Counter("dramlat_sweepd_workers_lease_expiries_total",
			"Leases that expired without a completion (worker presumed dead)."),
		retries: reg.Counter("dramlat_sweepd_workers_retries_total",
			"Specs re-queued after a lease expiry; equals lease expiries minus quarantines and abandoned specs."),
		quarantines: reg.Counter("dramlat_sweepd_workers_quarantines_total",
			"Poison specs retired with a QuarantineError after exhausting their lease budget."),
		lateCompletions: reg.Counter("dramlat_sweepd_workers_late_completions_total",
			"Completions accepted after their lease had already expired (slow worker won the race)."),
		streamSubs: reg.Gauge("dramlat_sweepd_stream_subscribers",
			"Open progress-stream connections."),
		draining: reg.Gauge("dramlat_sweepd_draining",
			"1 while a graceful drain is in progress, else 0."),
		drainPending: reg.Gauge("dramlat_sweepd_drain_pending_specs",
			"In-flight specs a drain is still waiting on."),
		httpRequests: reg.CounterVec("dramlat_sweepd_http_requests_total",
			"HTTP requests served, by method and status code.", "method", "code"),
		httpSeconds: reg.Histogram("dramlat_sweepd_http_seconds",
			"HTTP request service time.", nil),
	}
}
