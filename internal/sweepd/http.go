package sweepd

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"time"

	"dramlat"
	"dramlat/internal/sweep"
)

// The HTTP surface, all under /api/v1:
//
//	POST   /jobs                         submit a grid and/or spec list -> job ID
//	GET    /jobs                         list jobs
//	GET    /jobs/{id}                    one job's status
//	GET    /jobs/{id}/stream             live progress, NDJSON (or SSE via Accept)
//	GET    /jobs/{id}/report             full report: outcomes in input order
//	POST   /jobs/{id}/cancel             cancel (DELETE /jobs/{id} is an alias)
//	GET    /results/{hash}               one cached result by spec content hash
//	GET    /results/{hash}/artifacts     list telemetry artifacts for a spec
//	GET    /results/{hash}/artifacts/{name}  fetch one artifact verbatim
//	GET    /health                       stats / liveness
//	GET    /dashboard                    live single-page status view (SSE-fed)
//	POST   /workers/claim                fleet: claim a queued spec under a lease
//	POST   /workers/heartbeat            fleet: renew a lease
//	POST   /workers/complete             fleet: return a spec's typed outcome
//
// The stream endpoint accepts ?offset=N to resume after a dropped
// connection: the first N outcome events are skipped, so a client that
// already consumed them replays nothing.
//
// plus two root-level operational endpoints:
//
//	GET /metrics   Prometheus text exposition of the service registry
//	GET /healthz   alias of /api/v1/health (build info, uptime, stats)
//
// Every handler runs behind the request-ID middleware: the response
// carries X-Request-ID (generated, or propagated from the request) and
// each request is access-logged with method, path, status and duration.
//
// Failures are JSON {"error": ..., "fields": [...]}, with validation
// problems carried field by field so a client fixes a bad grid in one
// round trip.

// SubmitRequest is the POST /jobs body. Grid, when present, is
// enumerated first; Specs are appended verbatim after (matching
// sweep.Grid.Extra semantics). Priority orders jobs in the queue
// (higher first; equal priorities are FIFO). Telemetry, when present
// and enabling a subsystem, asks the server to capture per-spec
// artifacts for every freshly executed spec of this job (the
// RunSpec.Telemetry field itself never travels: it is hash-excluded and
// JSON-suppressed, so the job-level request is the wire surface).
type SubmitRequest struct {
	Grid      *sweep.Grid               `json:"grid,omitempty"`
	Specs     []dramlat.RunSpec         `json:"specs,omitempty"`
	Priority  int                       `json:"priority,omitempty"`
	Telemetry *dramlat.TelemetryOptions `json:"telemetry,omitempty"`
}

// StreamEvent is one NDJSON line (or SSE data payload) of a progress
// stream: the job counters after this outcome, the flattened
// sweep.Record row, and the lossless outcome itself. The final line of
// every stream has no record and a terminal State.
type StreamEvent struct {
	Done     int `json:"done"`
	Total    int `json:"total"`
	Executed int `json:"executed"`
	Cached   int `json:"cached"`
	Failed   int `json:"failed"`
	// Approximate counts successful sampled-engine outcomes so far.
	Approximate int      `json:"approximate,omitempty"`
	Index       int      `json:"index,omitempty"` // spec index within the job
	State       JobState `json:"state,omitempty"` // set on the terminal line

	Record  *sweep.Record  `json:"record,omitempty"`
	Outcome *sweep.Outcome `json:"outcome,omitempty"`
}

// ReportResponse is the GET /jobs/{id}/report body.
type ReportResponse struct {
	Job      JobStatus       `json:"job"`
	Outcomes []sweep.Outcome `json:"outcomes"`
}

// ResultResponse is the GET /results/{hash} body.
type ResultResponse struct {
	Hash    string          `json:"hash"`
	Spec    dramlat.RunSpec `json:"spec"`
	Results dramlat.Results `json:"results"`
}

// errorBody is every non-2xx response.
type errorBody struct {
	Error  string               `json:"error"`
	Fields []dramlat.FieldError `json:"fields,omitempty"`
}

// Handler returns the service's HTTP API, wrapped in the request-ID /
// access-log middleware.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/jobs", s.handleJobs)
	mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /api/v1/jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /api/v1/jobs/{id}/report", s.handleReport)
	mux.HandleFunc("POST /api/v1/jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("DELETE /api/v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /api/v1/results/{hash}", s.handleResult)
	mux.HandleFunc("GET /api/v1/results/{hash}/artifacts", s.handleArtifacts)
	mux.HandleFunc("GET /api/v1/results/{hash}/artifacts/{name}", s.handleArtifact)
	mux.HandleFunc("GET /api/v1/health", s.handleHealth)
	mux.HandleFunc("GET /api/v1/dashboard", s.handleDashboard)
	mux.HandleFunc("POST /api/v1/workers/claim", s.handleClaim)
	mux.HandleFunc("POST /api/v1/workers/heartbeat", s.handleHeartbeat)
	mux.HandleFunc("POST /api/v1/workers/complete", s.handleComplete)
	mux.Handle("GET /metrics", s.m.reg.Handler())
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return s.withRequestLog(mux)
}

// MetricsHandler exposes just the /metrics scrape endpoint, for
// mounting on a separate admin listener.
func (s *Server) MetricsHandler() http.Handler { return s.m.reg.Handler() }

// HealthzHandler exposes just the health probe, for mounting on a
// separate admin listener.
func (s *Server) HealthzHandler(w http.ResponseWriter, r *http.Request) {
	s.handleHealth(w, r)
}

// withRequestLog is the outermost middleware: it assigns (or
// propagates) X-Request-ID, captures the response status, counts the
// request in the HTTP metric families, and emits one structured access
// log line per request. Streaming endpoints flush through it — the
// recorder forwards Flush — and /metrics & health probes log at Debug
// so scrapes do not drown the job lifecycle log.
func (s *Server) withRequestLog(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = newRequestID()
		}
		w.Header().Set("X-Request-ID", id)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(rec, r)
		elapsed := time.Since(start)
		s.m.httpRequests.With(r.Method, strconv.Itoa(rec.status)).Inc()
		s.m.httpSeconds.Observe(elapsed.Seconds())
		level := slog.LevelInfo
		switch r.URL.Path {
		case "/metrics", "/healthz", "/api/v1/health",
			"/api/v1/workers/claim", "/api/v1/workers/heartbeat",
			"/api/v1/workers/complete":
			// Scrapes and the fleet's claim/heartbeat chatter would
			// drown the job lifecycle log at Info.
			level = slog.LevelDebug
		}
		s.logger.Log(r.Context(), level, "http",
			"method", r.Method, "path", r.URL.Path, "status", rec.status,
			"ms", elapsed.Milliseconds(), "request_id", id)
	})
}

// newRequestID returns 16 hex chars of crypto randomness.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "unknown"
	}
	return hex.EncodeToString(b[:])
}

// statusRecorder captures the status code written by a handler while
// keeping http.Flusher working for the streaming endpoints.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap supports http.ResponseController pass-through.
func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	body := errorBody{Error: err.Error()}
	var ve *dramlat.ValidationError
	if errors.As(err, &ve) {
		body.Fields = ve.Fields
		// FieldError.Value is `any`; flatten for deterministic JSON.
		for i := range body.Fields {
			if body.Fields[i].Value != nil {
				body.Fields[i].Value = fmt.Sprint(body.Fields[i].Value)
			}
		}
	}
	writeJSON(w, code, body)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	var specs []dramlat.RunSpec
	if req.Grid != nil {
		if err := req.Grid.Validate(); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		specs = req.Grid.Enumerate()
	}
	specs = append(specs, req.Specs...)
	opts := JobOptions{Priority: req.Priority}
	if req.Telemetry != nil {
		opts.Telemetry = *req.Telemetry
	}
	st, err := s.SubmitJob(specs, opts)
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, ErrDraining) {
			code = http.StatusServiceUnavailable
		}
		writeErr(w, code, err)
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs())
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	st, err := s.Status(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, err := s.Cancel(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	rep, st, err := s.Report(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, ReportResponse{Job: st, Outcomes: rep.Outcomes})
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	spec, res, ok := s.Result(hash)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no cached result for hash %q", hash))
		return
	}
	writeJSON(w, http.StatusOK, ResultResponse{Hash: hash, Spec: spec, Results: res})
}

// ArtifactsResponse is the GET /results/{hash}/artifacts body.
type ArtifactsResponse struct {
	Hash      string         `json:"hash"`
	Artifacts []ArtifactInfo `json:"artifacts"`
}

func (s *Server) handleArtifacts(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	arts, err := s.Artifacts(hash)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, ArtifactsResponse{Hash: hash, Artifacts: arts})
}

// handleArtifact serves one artifact file verbatim, so a remote fetch
// is byte-identical to reading the server-side file — the contract
// dlprof -server depends on.
func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	path, err := s.ArtifactPath(r.PathValue("hash"), r.PathValue("name"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	http.ServeFile(w, r, path)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	st := s.Stats()
	code := http.StatusOK
	if st.State != "ok" {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, st)
}

// handleClaim is the fleet's work-pull endpoint: it long-polls up to
// the requested wait for a queued spec and answers with a lease (or
// "nothing queued" / "draining"). The wait is clamped server-side so a
// buggy client cannot pin a handler goroutine for hours.
func (s *Server) handleClaim(w http.ResponseWriter, r *http.Request) {
	var req ClaimRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	wait := time.Duration(req.WaitMS) * time.Millisecond
	if wait > time.Minute {
		wait = time.Minute
	}
	resp, err := s.Claim(r.Context(), req.Worker, wait)
	if err != nil {
		if errors.Is(err, ErrUnknownWorker) {
			writeErr(w, http.StatusBadRequest, err)
		}
		return // client gone mid-poll; nothing useful to write
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	resp, err := s.Heartbeat(req.LeaseID)
	if err != nil {
		// 410 Gone is the protocol's "abandon this spec" signal; the
		// client maps it back to ErrLeaseGone.
		writeErr(w, http.StatusGone, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	resp, err := s.CompleteLease(req.LeaseID, req.Hash, req.Outcome)
	if err != nil {
		writeErr(w, http.StatusGone, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleStream replays a job's event log and then follows it live until
// the job reaches a terminal state or the client disconnects. Each
// event is one StreamEvent; the stream always ends with a terminal
// line carrying the job's final state (unless the client left early).
// Content negotiation: "Accept: text/event-stream" selects SSE, the
// default is NDJSON.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, err := s.Status(id); err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	s.m.streamSubs.Inc()
	defer s.m.streamSubs.Dec()
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	flush()

	emit := func(ev StreamEvent) error {
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if sse {
			_, err = fmt.Fprintf(w, "data: %s\n\n", b)
		} else {
			_, err = fmt.Fprintf(w, "%s\n", b)
		}
		flush()
		return err
	}

	offset := 0
	if q := r.URL.Query().Get("offset"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			// Headers are already out; emit nothing and end the stream
			// rather than mislabel replayed events. Clients send offsets
			// they counted themselves, so this only catches hand-typed
			// URLs.
			return
		}
		offset = n
	}
	for {
		events, state, err := s.Events(r.Context(), id, offset)
		if err != nil {
			return // client gone (or job vanished — nothing to say)
		}
		for _, je := range events {
			o := je.Event.Outcome
			rec := sweep.RecordOf(o)
			if err := emit(StreamEvent{
				Done: je.Event.Done, Total: je.Event.Total,
				Executed: je.Event.Executed, Cached: je.Event.Cached,
				Failed: je.Event.Failed, Approximate: je.Approx,
				Index:  je.Index,
				Record: &rec, Outcome: &o,
			}); err != nil {
				return
			}
		}
		offset += len(events)
		if state.terminal() {
			st, err := s.Status(id)
			if err != nil {
				return
			}
			emit(StreamEvent{
				Done: st.Done, Total: st.Total, Executed: st.Executed,
				Cached: st.Cached, Failed: st.Failed,
				Approximate: st.Approximate, State: st.State,
			})
			return
		}
	}
}
