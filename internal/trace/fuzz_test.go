package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead hardens the trace parser: arbitrary input must either parse
// into a workload that round-trips through Write/Read, or fail cleanly.
func FuzzRead(f *testing.F) {
	f.Add("@ 0 0\nL 10 20\nC 2\nS ff\n")
	f.Add("# comment\n\n@ 1 1\nC\n")
	f.Add("@ 0 0\nL zz\n")
	f.Add("@ 9 9\n")
	f.Add("C 5\n")
	f.Fuzz(func(t *testing.T, in string) {
		wl, err := Read(strings.NewReader(in), "fuzz", 2, 2)
		if err != nil {
			return // clean rejection
		}
		// Accepted input must round-trip.
		var buf bytes.Buffer
		if err := Write(&buf, wl); err != nil {
			t.Fatalf("Write failed on accepted input: %v", err)
		}
		wl2, err := Read(&buf, "fuzz", 2, 2)
		if err != nil {
			t.Fatalf("round-trip Read failed: %v\ninput: %q\nserialized: %q", err, in, buf.String())
		}
		for s := range wl.Programs {
			for w := range wl.Programs[s] {
				if len(wl.Programs[s][w]) != len(wl2.Programs[s][w]) {
					t.Fatalf("round trip changed program length")
				}
			}
		}
	})
}
