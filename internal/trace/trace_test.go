package trace

import (
	"bytes"
	"strings"
	"testing"

	"dramlat/internal/gpu"
	"dramlat/internal/sm"
)

func sampleWorkload() gpu.Workload {
	return gpu.Workload{
		Name: "sample",
		Programs: [][]sm.Program{
			{
				{ // sm0 warp0
					{Kind: sm.Compute},
					{Kind: sm.Compute},
					{Kind: sm.Load, Addrs: []uint64{0x1000, 0x2000}},
					{Kind: sm.Store, Addrs: []uint64{0xdeadc0}},
					{Kind: sm.Compute},
				},
				{}, // sm0 warp1: empty
			},
			{
				{ // sm1 warp0
					{Kind: sm.Load, Addrs: []uint64{0xabc}},
				},
				{ // sm1 warp1
					{Kind: sm.Compute},
				},
			},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	wl := sampleWorkload()
	var buf bytes.Buffer
	if err := Write(&buf, wl); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf, "sample", 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	for s := range wl.Programs {
		for w := range wl.Programs[s] {
			a, b := wl.Programs[s][w], got.Programs[s][w]
			if len(a) != len(b) {
				t.Fatalf("sm%d w%d: %d insns vs %d", s, w, len(a), len(b))
			}
			for i := range a {
				if a[i].Kind != b[i].Kind || len(a[i].Addrs) != len(b[i].Addrs) {
					t.Fatalf("sm%d w%d insn %d mismatch", s, w, i)
				}
				for j := range a[i].Addrs {
					if a[i].Addrs[j] != b[i].Addrs[j] {
						t.Fatalf("sm%d w%d insn %d addr %d mismatch", s, w, i, j)
					}
				}
			}
		}
	}
}

func TestComputeRunLengthEncoding(t *testing.T) {
	wl := gpu.Workload{Programs: [][]sm.Program{{{
		{Kind: sm.Compute}, {Kind: sm.Compute}, {Kind: sm.Compute},
	}}}}
	var buf bytes.Buffer
	if err := Write(&buf, wl); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "C 3") {
		t.Fatalf("compute run not encoded:\n%s", buf.String())
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"insn before header": "C\n",
		"malformed header":   "@ 1\n",
		"bad header ids":     "@ x y\n",
		"out of range sm":    "@ 9 0\n",
		"out of range warp":  "@ 0 9\n",
		"duplicate header":   "@ 0 0\nC\n@ 0 0\n",
		"empty load":         "@ 0 0\nL\n",
		"bad address":        "@ 0 0\nL zz\n",
		"bad compute count":  "@ 0 0\nC x\n",
		"negative compute":   "@ 0 0\nC -1\n",
		"unknown record":     "@ 0 0\nX 1\n",
		"extra field on C":   "@ 0 0\nC 1 2\n",
	}
	for name, in := range cases {
		if _, err := Read(strings.NewReader(in), "t", 2, 2); err == nil {
			t.Errorf("%s: no error for %q", name, in)
		}
	}
}

func TestCommentsAndBlanks(t *testing.T) {
	in := "# header\n\n@ 0 0\n# mid\nL 10 20\nC 2\n"
	wl, err := Read(strings.NewReader(in), "t", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	p := wl.Programs[0][0]
	if len(p) != 3 || p[0].Kind != sm.Load || p[0].Addrs[0] != 0x10 {
		t.Fatalf("parsed %+v", p)
	}
}

// A trace round-tripped through the format must simulate identically to
// the original workload.
func TestTraceSimulatesIdentically(t *testing.T) {
	cfg := gpu.DefaultConfig()
	cfg.NumSMs = 2
	cfg.WarpsPerSM = 2
	cfg.MaxTicks = 1_000_000

	orig := gpu.Workload{Name: "t", Programs: [][]sm.Program{
		{
			{{Kind: sm.Load, Addrs: []uint64{0, 1 << 20, 2 << 20}}, {Kind: sm.Compute}},
			{{Kind: sm.Store, Addrs: []uint64{3 << 20}}, {Kind: sm.Load, Addrs: []uint64{4 << 20}}},
		},
		{
			{{Kind: sm.Load, Addrs: []uint64{5 << 20, 6 << 20}}},
			{{Kind: sm.Compute}},
		},
	}}
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	replay, err := Read(&buf, "t", 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := gpu.NewSystem(cfg, orig)
	if err != nil {
		t.Fatal(err)
	}
	r1, _ := s1.Run()
	s2, err := gpu.NewSystem(cfg, replay)
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := s2.Run()
	if r1.Ticks != r2.Ticks || r1.Instr != r2.Instr || r1.DRAM.RDBursts != r2.DRAM.RDBursts {
		t.Fatalf("replay differs: %+v vs %+v", r1, r2)
	}
}
