// Package trace serializes workloads as a line-oriented text format so
// that externally captured warp instruction traces can be replayed through
// the simulator, and generated workloads can be exported for inspection or
// use by other tools.
//
// Format (one record per line, '#' starts a comment):
//
//	@ <sm> <warp>          start of a warp's instruction stream
//	C [n]                  n compute instructions (default 1)
//	L <addr> [addr...]     warp load: per-lane byte addresses, hex
//	S <addr> [addr...]     warp store
//
// Addresses are unprefixed hexadecimal. A warp's instructions follow its
// '@' header in order; headers may appear in any order but at most once
// per (sm, warp).
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"dramlat/internal/gpu"
	"dramlat/internal/sm"
)

// Write serializes a workload.
func Write(w io.Writer, wl gpu.Workload) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# dramlat trace: workload %q, %d SMs\n", wl.Name, len(wl.Programs))
	for smID, warps := range wl.Programs {
		for warpID, prog := range warps {
			if len(prog) == 0 {
				continue
			}
			fmt.Fprintf(bw, "@ %d %d\n", smID, warpID)
			runC := 0
			flushC := func() {
				if runC == 1 {
					fmt.Fprintln(bw, "C")
				} else if runC > 1 {
					fmt.Fprintf(bw, "C %d\n", runC)
				}
				runC = 0
			}
			for _, in := range prog {
				switch in.Kind {
				case sm.Compute:
					runC++
				case sm.Load, sm.Store:
					flushC()
					tag := "L"
					if in.Kind == sm.Store {
						tag = "S"
					}
					bw.WriteString(tag)
					for _, a := range in.Addrs {
						fmt.Fprintf(bw, " %x", a)
					}
					bw.WriteByte('\n')
				}
			}
			flushC()
		}
	}
	return bw.Flush()
}

// Read parses a trace into a workload shaped for a machine with the given
// geometry. Records for SMs or warps beyond the geometry are an error.
func Read(r io.Reader, name string, numSMs, warpsPerSM int) (gpu.Workload, error) {
	wl := gpu.Workload{Name: name, Programs: make([][]sm.Program, numSMs)}
	for i := range wl.Programs {
		wl.Programs[i] = make([]sm.Program, warpsPerSM)
	}
	var cur *sm.Program
	seen := map[[2]int]bool{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "@":
			if len(fields) != 3 {
				return wl, fmt.Errorf("trace:%d: malformed warp header", lineNo)
			}
			smID, err1 := strconv.Atoi(fields[1])
			warpID, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil {
				return wl, fmt.Errorf("trace:%d: bad warp header ids", lineNo)
			}
			if smID < 0 || smID >= numSMs || warpID < 0 || warpID >= warpsPerSM {
				return wl, fmt.Errorf("trace:%d: warp (%d,%d) outside %dx%d machine",
					lineNo, smID, warpID, numSMs, warpsPerSM)
			}
			key := [2]int{smID, warpID}
			if seen[key] {
				return wl, fmt.Errorf("trace:%d: duplicate warp header (%d,%d)", lineNo, smID, warpID)
			}
			seen[key] = true
			cur = &wl.Programs[smID][warpID]
		case "C":
			if cur == nil {
				return wl, fmt.Errorf("trace:%d: instruction before warp header", lineNo)
			}
			n := 1
			if len(fields) == 2 {
				v, err := strconv.Atoi(fields[1])
				if err != nil || v < 1 {
					return wl, fmt.Errorf("trace:%d: bad compute count", lineNo)
				}
				n = v
			} else if len(fields) > 2 {
				return wl, fmt.Errorf("trace:%d: malformed compute record", lineNo)
			}
			for i := 0; i < n; i++ {
				*cur = append(*cur, sm.Insn{Kind: sm.Compute})
			}
		case "L", "S":
			if cur == nil {
				return wl, fmt.Errorf("trace:%d: instruction before warp header", lineNo)
			}
			if len(fields) < 2 {
				return wl, fmt.Errorf("trace:%d: memory record with no addresses", lineNo)
			}
			kind := sm.Load
			if fields[0] == "S" {
				kind = sm.Store
			}
			addrs := make([]uint64, 0, len(fields)-1)
			for _, f := range fields[1:] {
				a, err := strconv.ParseUint(f, 16, 64)
				if err != nil {
					return wl, fmt.Errorf("trace:%d: bad address %q", lineNo, f)
				}
				addrs = append(addrs, a)
			}
			*cur = append(*cur, sm.Insn{Kind: kind, Addrs: addrs})
		default:
			return wl, fmt.Errorf("trace:%d: unknown record %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return wl, fmt.Errorf("trace: %w", err)
	}
	return wl, nil
}
