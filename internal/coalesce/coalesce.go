// Package coalesce implements the SIMT memory coalescer of Section III-A:
// the per-thread addresses of one warp load/store are combined into as few
// 128-byte cache-line-sized requests as possible. Coalescing eliminates
// redundant same-line accesses; it cannot help when the threads' data are
// not spatially co-located, which is exactly the irregular case the paper
// targets (56% of irregular loads produce >1 request, 5.9 on average).
package coalesce

// LineBytes is the coalescing granularity (the L1/L2 line size).
const LineBytes = 128

// Lines returns the unique 128B-aligned line addresses touched by the given
// per-thread addresses, in first-appearance order. Inactive threads are
// represented by absent entries (callers pass only active lanes). The
// result length is bounded by the number of addresses (at most the warp
// width, 32).
func Lines(addrs []uint64) []uint64 {
	// A warp has at most 32 lanes; linear dedup against the small output
	// slice beats a map allocation on this hot path.
	out := make([]uint64, 0, 8)
	for _, a := range addrs {
		line := a &^ uint64(LineBytes-1)
		dup := false
		for _, l := range out {
			if l == line {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, line)
		}
	}
	return out
}

// LinesInto is an allocation-free variant of Lines for hot paths: it
// appends into dst and returns it.
func LinesInto(dst []uint64, addrs []uint64) []uint64 {
	dst = dst[:0]
	for _, a := range addrs {
		line := a &^ uint64(LineBytes-1)
		dup := false
		for _, l := range dst {
			if l == line {
				dup = true
				break
			}
		}
		if !dup {
			dst = append(dst, line)
		}
	}
	return dst
}
