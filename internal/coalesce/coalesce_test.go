package coalesce

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSameLineCoalesces(t *testing.T) {
	addrs := make([]uint64, 32)
	for i := range addrs {
		addrs[i] = 0x1000 + uint64(i*4) // 32 consecutive words: one line
	}
	got := Lines(addrs)
	if len(got) != 1 || got[0] != 0x1000 {
		t.Fatalf("got %v", got)
	}
}

func TestFullyDivergent(t *testing.T) {
	addrs := make([]uint64, 32)
	for i := range addrs {
		addrs[i] = uint64(i) * 4096
	}
	got := Lines(addrs)
	if len(got) != 32 {
		t.Fatalf("got %d lines, want 32", len(got))
	}
}

func TestFirstAppearanceOrder(t *testing.T) {
	got := Lines([]uint64{0x300, 0x100, 0x380, 0x180, 0x100})
	want := []uint64{0x300, 0x100, 0x380, 0x180}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestEmpty(t *testing.T) {
	if got := Lines(nil); len(got) != 0 {
		t.Fatalf("got %v", got)
	}
}

// Properties: every input address is covered by an output line; outputs are
// unique, line-aligned, and no more numerous than the inputs.
func TestProperties(t *testing.T) {
	f := func(raw []uint64) bool {
		if len(raw) > 32 {
			raw = raw[:32]
		}
		out := Lines(raw)
		if len(out) > len(raw) {
			return false
		}
		seen := map[uint64]bool{}
		for _, l := range out {
			if l%LineBytes != 0 || seen[l] {
				return false
			}
			seen[l] = true
		}
		for _, a := range raw {
			if !seen[a&^uint64(LineBytes-1)] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestLinesIntoMatchesLines(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	buf := make([]uint64, 0, 32)
	for i := 0; i < 500; i++ {
		n := rng.Intn(32) + 1
		addrs := make([]uint64, n)
		for j := range addrs {
			addrs[j] = rng.Uint64() % (1 << 30)
		}
		a := Lines(addrs)
		buf = LinesInto(buf, addrs)
		if len(a) != len(buf) {
			t.Fatalf("length mismatch %d vs %d", len(a), len(buf))
		}
		for j := range a {
			if a[j] != buf[j] {
				t.Fatalf("mismatch at %d", j)
			}
		}
	}
}

func BenchmarkLines32Divergent(b *testing.B) {
	addrs := make([]uint64, 32)
	for i := range addrs {
		addrs[i] = uint64(i) * 8192
	}
	buf := make([]uint64, 0, 32)
	for i := 0; i < b.N; i++ {
		buf = LinesInto(buf, addrs)
	}
}
