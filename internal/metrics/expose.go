package metrics

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered family in the Prometheus
// text exposition format (version 0.0.4): families sorted by name, one
// `# HELP` / `# TYPE` header each, children sorted by label values so
// scrapes are deterministic and diffable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	r.mu.RLock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		if err := f.write(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Handler returns an http.Handler serving WritePrometheus — the
// `GET /metrics` endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// sample is one child instrument flattened for rendering.
type sample struct {
	key  string // sorted-by order (joined label values)
	vals []string
	inst any
}

func (f *family) write(w *bufio.Writer) error {
	if f.help != "" {
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	}
	fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind)

	var samples []sample
	if len(f.labels) == 0 {
		if f.single == nil {
			return nil
		}
		samples = []sample{{inst: f.single}}
	} else {
		for i := range f.stripes {
			st := &f.stripes[i]
			st.mu.RLock()
			for k, inst := range st.m {
				samples = append(samples, sample{key: k, vals: strings.Split(k, "\x00"), inst: inst})
			}
			st.mu.RUnlock()
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i].key < samples[j].key })
	}

	for _, s := range samples {
		switch inst := s.inst.(type) {
		case *Counter:
			fmt.Fprintf(w, "%s%s %d\n", f.name, labelString(f.labels, s.vals, "", ""), inst.Value())
		case *Gauge:
			fmt.Fprintf(w, "%s%s %s\n", f.name, labelString(f.labels, s.vals, "", ""), formatFloat(inst.Value()))
		case *Histogram:
			cum := uint64(0)
			for i := range inst.counts {
				cum += inst.counts[i].Load()
				le := "+Inf"
				if i < len(inst.upper) {
					le = formatFloat(inst.upper[i])
				}
				fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelString(f.labels, s.vals, "le", le), cum)
			}
			fmt.Fprintf(w, "%s_sum%s %s\n", f.name, labelString(f.labels, s.vals, "", ""), formatFloat(inst.Sum()))
			// _count is the +Inf cumulative rather than a separate atomic
			// load, so `le="+Inf"` == `_count` holds even mid-scrape under
			// concurrent Observes.
			fmt.Fprintf(w, "%s_count%s %d\n", f.name, labelString(f.labels, s.vals, "", ""), cum)
		}
	}
	return nil
}

// labelString renders `{k1="v1",k2="v2"}` (plus an optional extra pair,
// used for histogram `le`), or "" when there are no labels at all.
func labelString(names, values []string, extraK, extraV string) string {
	if len(names) == 0 && extraK == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extraK != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraK)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraV))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabel(s string) string { return labelEscaper.Replace(s) }

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeHelp(s string) string { return helpEscaper.Replace(s) }
