package metrics

import (
	"bufio"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	// Re-registering the same name returns the same instrument.
	if r.Counter("c_total", "a counter") != c {
		t.Fatal("re-register returned a new counter")
	}

	g := r.Gauge("g", "a gauge")
	g.Set(2.5)
	g.Inc()
	g.Dec()
	g.Add(-0.5)
	if g.Value() != 2 {
		t.Fatalf("gauge = %v, want 2", g.Value())
	}
}

func TestVecChildrenAreDistinctAndStable(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("specs_total", "by kind", "kind")
	v.With("ok").Add(3)
	v.With("failed").Inc()
	if v.With("ok").Value() != 3 || v.With("failed").Value() != 1 {
		t.Fatalf("children ok=%d failed=%d", v.With("ok").Value(), v.With("failed").Value())
	}
	if v.With("ok") != v.With("ok") {
		t.Fatal("With not stable")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "latency", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500, 5000} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 5556.5 {
		t.Fatalf("sum = %v", h.Sum())
	}
	// Bucket upper bounds are inclusive: 1 lands in le="1".
	want := []uint64{2, 1, 1, 2} // (-inf,1] (1,10] (10,100] (100,+inf)
	for i, n := range want {
		if got := h.counts[i].Load(); got != n {
			t.Fatalf("bucket %d = %d, want %d", i, got, n)
		}
	}
}

func TestDisabledRegistryDropsUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	h := r.Histogram("h", "", []float64{1})
	g := r.Gauge("g", "")
	c.Inc()
	r.SetEnabled(false)
	c.Inc()
	g.Set(7)
	h.Observe(1)
	if c.Value() != 1 || g.Value() != 0 || h.Count() != 0 {
		t.Fatalf("disabled registry recorded updates: c=%d g=%v h=%d",
			c.Value(), g.Value(), h.Count())
	}
	r.SetEnabled(true)
	c.Inc()
	if c.Value() != 2 {
		t.Fatalf("re-enabled counter = %d", c.Value())
	}
}

func TestNilInstrumentsAreSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	g.Set(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments not zero")
	}
}

func TestRegisterKindCollisionPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on kind collision")
		}
	}()
	r.Gauge("x", "")
}

// TestWritePrometheusGolden pins the exact exposition bytes: family
// ordering, HELP/TYPE headers, label rendering, cumulative histogram
// buckets with +Inf, label escaping.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("dl_b_total", "second family").Add(7)
	v := r.CounterVec("dl_c_total", "by kind", "kind")
	v.With("ok").Add(3)
	v.With("failed").Inc()
	r.Gauge("dl_a_depth", "queue depth").Set(2.5)
	h := r.HistogramVec("dl_d_seconds", "latency", []float64{0.1, 1}, "sched")
	h.With("gmc").Observe(0.05)
	h.With("gmc").Observe(0.5)
	h.With("gmc").Observe(50)
	r.CounterVec("dl_e_total", `esc`, "path").With(`a"b\c`).Inc()

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP dl_a_depth queue depth
# TYPE dl_a_depth gauge
dl_a_depth 2.5
# HELP dl_b_total second family
# TYPE dl_b_total counter
dl_b_total 7
# HELP dl_c_total by kind
# TYPE dl_c_total counter
dl_c_total{kind="failed"} 1
dl_c_total{kind="ok"} 3
# HELP dl_d_seconds latency
# TYPE dl_d_seconds histogram
dl_d_seconds_bucket{sched="gmc",le="0.1"} 1
dl_d_seconds_bucket{sched="gmc",le="1"} 2
dl_d_seconds_bucket{sched="gmc",le="+Inf"} 3
dl_d_seconds_sum{sched="gmc"} 50.55
dl_d_seconds_count{sched="gmc"} 3
# HELP dl_e_total esc
# TYPE dl_e_total counter
dl_e_total{path="a\"b\\c"} 1
`
	if got := b.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestConcurrentHammer races many writers against scrapes; run under
// -race in CI. It also checks that no update is lost.
func TestConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hammer_total", "")
	v := r.CounterVec("hammer_kind_total", "", "kind")
	g := r.Gauge("hammer_gauge", "")
	h := r.HistogramVec("hammer_seconds", "", []float64{0.5}, "who")
	kinds := []string{"a", "b", "c", "d", "e", "f", "g", "h"}

	const workers, perWorker = 16, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				v.With(kinds[(w+i)%len(kinds)]).Inc()
				g.Add(1)
				h.With(kinds[w%len(kinds)]).Observe(float64(i%2) * 0.9)
			}
		}(w)
	}
	// Concurrent scrapes while the writers run.
	scrapeDone := make(chan struct{})
	go func() {
		defer close(scrapeDone)
		for i := 0; i < 50; i++ {
			var b strings.Builder
			if err := r.WritePrometheus(&b); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	<-scrapeDone

	if c.Value() != workers*perWorker {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*perWorker)
	}
	var sum uint64
	for _, k := range kinds {
		sum += v.With(k).Value()
	}
	if sum != workers*perWorker {
		t.Fatalf("vec sum = %d, want %d", sum, workers*perWorker)
	}
	if g.Value() != workers*perWorker {
		t.Fatalf("gauge = %v, want %d", g.Value(), workers*perWorker)
	}
	var hn uint64
	for _, k := range kinds {
		hn += h.With(k).Count()
	}
	if hn != workers*perWorker {
		t.Fatalf("histogram observations = %d, want %d", hn, workers*perWorker)
	}
}

// TestExpositionParses runs a minimal text-format parser over a scrape
// of every instrument kind — the same checks the CI service job applies
// to a live /metrics endpoint.
func TestExpositionParses(t *testing.T) {
	r := NewRegistry()
	r.Counter("p_total", "x").Inc()
	r.Gauge("p_g", "x").Set(1)
	r.Histogram("p_h", "x", nil).Observe(0.2)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(b.String()))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// name{labels} value — exactly two space-separated fields.
		parts := strings.Fields(line)
		if len(parts) != 2 {
			t.Fatalf("unparseable sample line %q", line)
		}
	}
}

func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_total", "")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkCounterIncDisabled(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_total", "")
	r.SetEnabled(false)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench_seconds", "", nil)
	b.RunParallel(func(pb *testing.PB) {
		v := 0.0003
		for pb.Next() {
			h.Observe(v)
			v *= 1.1
			if v > 40 {
				v = 0.0003
			}
		}
	})
}

func BenchmarkVecLookupObserve(b *testing.B) {
	r := NewRegistry()
	v := r.CounterVec("bench_kind_total", "", "kind")
	kinds := []string{"ok", "cached", "failed", "stalled"}
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			v.With(kinds[i%len(kinds)]).Inc()
			i++
		}
	})
}
