// Package metrics is a dependency-free metrics registry with Prometheus
// text-format exposition, built for the sweep service's hot paths.
//
// Three instrument kinds cover the service's needs:
//
//   - Counter: monotonically increasing uint64 (specs executed, cache
//     hits, HTTP requests).
//   - Gauge: a float64 that goes up and down (queue depth, busy
//     workers, stream subscribers).
//   - Histogram: observations bucketed by configurable upper bounds
//     (queue wait, spec execution latency).
//
// Each kind also comes as a labeled family (CounterVec, GaugeVec,
// HistogramVec): one registered name, one child instrument per label
// combination.
//
// Concurrency design: individual instruments are lock-free — counters
// and gauges are single atomics, histogram buckets are per-bucket
// atomic adds with a CAS loop only for the float sum — so an Inc on a
// hot path is one uncontended atomic instruction. The only locks in
// the package are (a) the registry's family map, taken when an
// instrument is *created*, and (b) the label-lookup maps inside Vec
// families, which are stripe-locked (16 RWMutex-guarded shards keyed
// by label hash) so concurrent lookups of different label sets do not
// serialize. Callers on hot paths should resolve Vec children once and
// hold the child (`v := vec.With("gmc")` outside the loop); the striped
// lookup keeps even the lazy path cheap.
//
// A Registry can be switched off (SetEnabled(false)): every instrument
// mutation then returns after one atomic load, which is the "disabled"
// cost pinned by BenchmarkCounterIncDisabled.
package metrics

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Default is the process-wide registry. Library packages (internal/sweep,
// internal/sweepd) register their instruments here so a local CLI run and
// a dlserve instance expose the same families from the same code paths.
var Default = NewRegistry()

// DefBuckets are general-purpose latency buckets in seconds, 1ms..~32s.
var DefBuckets = ExpBuckets(0.001, 2, 16)

// ExpBuckets returns n exponentially growing bucket upper bounds
// starting at start and multiplying by factor. It panics on a
// non-positive start, a factor <= 1, or n < 1 — bucket layouts are
// compile-time decisions, not runtime inputs.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("metrics: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Registry holds named instrument families. The zero value is not
// usable; use NewRegistry. All methods are safe for concurrent use.
type Registry struct {
	off atomic.Bool // inverted so the zero state of instruments is "on"

	mu   sync.RWMutex
	fams map[string]*family
}

// NewRegistry returns an empty, enabled registry.
func NewRegistry() *Registry {
	return &Registry{fams: map[string]*family{}}
}

// SetEnabled switches instrument mutations on or off. Disabled
// instruments drop updates after one atomic load; exposition still
// works and reports the values accumulated while enabled.
func (r *Registry) SetEnabled(on bool) { r.off.Store(!on) }

// Enabled reports whether mutations are recorded.
func (r *Registry) Enabled() bool { return !r.off.Load() }

type familyKind uint8

const (
	kindCounter familyKind = iota
	kindGauge
	kindHistogram
)

func (k familyKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// lookupStripes is the number of label-map shards per Vec family.
const lookupStripes = 16

// family is one registered metric name: either a single unlabeled
// instrument or a labeled Vec with stripe-locked children.
type family struct {
	name, help string
	kind       familyKind
	labels     []string
	buckets    []float64 // histograms only
	reg        *Registry

	single any // *Counter / *Gauge / *Histogram when unlabeled

	stripes [lookupStripes]stripe
}

type stripe struct {
	mu sync.RWMutex
	m  map[string]any
}

// register installs (or fetches) a family; a name collision with a
// different kind or label set panics — that is a programming error, and
// failing loud at init beats silently merging incompatible series.
func (r *Registry) register(name, help string, kind familyKind, labels []string, buckets []float64) *family {
	if name == "" {
		panic("metrics: empty metric name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.kind != kind || !equalStrings(f.labels, labels) {
			panic(fmt.Sprintf("metrics: %q re-registered as %s%v, was %s%v",
				name, kind, labels, f.kind, f.labels))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind, labels: labels, reg: r}
	if kind == kindHistogram {
		if len(buckets) == 0 {
			buckets = DefBuckets
		}
		f.buckets = append([]float64(nil), buckets...)
		sort.Float64s(f.buckets)
	}
	if len(labels) > 0 {
		for i := range f.stripes {
			f.stripes[i].m = map[string]any{}
		}
	}
	r.fams[name] = f
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// child returns the instrument for one label-value combination,
// creating it on first use. Lookup is a striped RLock; creation takes
// the stripe's write lock.
func (f *family) child(values []string, make func() any) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %q wants %d label values, got %d",
			f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	h := fnv.New32a()
	h.Write([]byte(key))
	st := &f.stripes[h.Sum32()%lookupStripes]
	st.mu.RLock()
	c, ok := st.m[key]
	st.mu.RUnlock()
	if ok {
		return c
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if c, ok := st.m[key]; ok {
		return c
	}
	c = make()
	st.m[key] = c
	return c
}

// ---------------------------------------------------------------- Counter

// Counter is a monotonically increasing counter.
type Counter struct {
	off *atomic.Bool
	n   atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by n (negative n panics).
func (c *Counter) Add(n int64) {
	if c == nil || c.off.Load() {
		return
	}
	if n < 0 {
		panic("metrics: counter decreased")
	}
	c.n.Add(uint64(n))
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.n.Load()
}

// Counter registers (or fetches) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, kindCounter, nil, nil)
	r.mu.Lock()
	defer r.mu.Unlock()
	if f.single == nil {
		f.single = &Counter{off: &r.off}
	}
	return f.single.(*Counter)
}

// CounterVec is a labeled counter family.
type CounterVec struct{ f *family }

// CounterVec registers (or fetches) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if len(labels) == 0 {
		panic("metrics: CounterVec needs labels; use Counter")
	}
	return &CounterVec{r.register(name, help, kindCounter, labels, nil)}
}

// With returns the child counter for the given label values.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.child(values, func() any { return &Counter{off: &v.f.reg.off} }).(*Counter)
}

// ---------------------------------------------------------------- Gauge

// Gauge is a float64 value that can move in both directions.
type Gauge struct {
	off  *atomic.Bool
	bits atomic.Uint64 // math.Float64bits
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil || g.off.Load() {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add increases the gauge by d (negative d decreases it).
func (g *Gauge) Add(d float64) {
	if g == nil || g.off.Load() {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Inc adds 1.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Gauge registers (or fetches) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, kindGauge, nil, nil)
	r.mu.Lock()
	defer r.mu.Unlock()
	if f.single == nil {
		f.single = &Gauge{off: &r.off}
	}
	return f.single.(*Gauge)
}

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *family }

// GaugeVec registers (or fetches) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if len(labels) == 0 {
		panic("metrics: GaugeVec needs labels; use Gauge")
	}
	return &GaugeVec{r.register(name, help, kindGauge, labels, nil)}
}

// With returns the child gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.child(values, func() any { return &Gauge{off: &v.f.reg.off} }).(*Gauge)
}

// ------------------------------------------------------------- Histogram

// Histogram buckets observations by configurable upper bounds. Bucket
// counts are per-bucket atomics (non-cumulative internally, summed at
// exposition); the running sum is a CAS loop over float bits.
type Histogram struct {
	off    *atomic.Bool
	upper  []float64 // sorted upper bounds; implicit +Inf after the last
	counts []atomic.Uint64
	sum    atomic.Uint64 // float bits
	n      atomic.Uint64
}

func newHistogram(off *atomic.Bool, upper []float64) *Histogram {
	return &Histogram{off: off, upper: upper, counts: make([]atomic.Uint64, len(upper)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil || h.off.Load() {
		return
	}
	// Binary search for the first bucket whose bound is >= v.
	lo, hi := 0, len(h.upper)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.upper[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.n.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Histogram registers (or fetches) an unlabeled histogram; nil buckets
// mean DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.register(name, help, kindHistogram, nil, buckets)
	r.mu.Lock()
	defer r.mu.Unlock()
	if f.single == nil {
		f.single = newHistogram(&r.off, f.buckets)
	}
	return f.single.(*Histogram)
}

// HistogramVec is a labeled histogram family; all children share the
// family's bucket layout.
type HistogramVec struct{ f *family }

// HistogramVec registers (or fetches) a labeled histogram family; nil
// buckets mean DefBuckets.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if len(labels) == 0 {
		panic("metrics: HistogramVec needs labels; use Histogram")
	}
	return &HistogramVec{r.register(name, help, kindHistogram, labels, buckets)}
}

// With returns the child histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.child(values, func() any { return newHistogram(&v.f.reg.off, v.f.buckets) }).(*Histogram)
}
