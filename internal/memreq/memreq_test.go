package memreq

import (
	"strings"
	"testing"
)

func TestKindString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" {
		t.Fatalf("kind strings: %q %q", Read, Write)
	}
}

func TestGroupIDValidity(t *testing.T) {
	if (GroupID{}).Valid() {
		t.Fatal("zero group valid")
	}
	if (GroupID{SM: 3, Warp: 4}).Valid() {
		t.Fatal("load==0 group valid (reserved for ungrouped traffic)")
	}
	g := GroupID{SM: 3, Warp: 4, Load: 1}
	if !g.Valid() {
		t.Fatal("real group invalid")
	}
	if got := g.String(); got != "sm3.w4.ld1" {
		t.Fatalf("group string %q", got)
	}
	if got := (GroupID{}).String(); got != "ungrouped" {
		t.Fatalf("zero group string %q", got)
	}
}

func TestRequestString(t *testing.T) {
	r := &Request{
		Kind: Read, Addr: 0x1f80,
		Group:   GroupID{SM: 1, Warp: 2, Load: 3},
		Channel: 4, Bank: 5, Row: 6, Col: 7,
	}
	s := r.String()
	for _, want := range []string{"read", "0x1f80", "ch4", "b5", "r6", "c7", "sm1.w2.ld3"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}
