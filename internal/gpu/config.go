// Package gpu assembles the full system of Table II: 30 SIMT cores, a
// crossbar, six memory partitions (L2 slice + GDDR5 channel + memory
// controller), and the coordination network, driven by one global clock
// (1 tick = 1 GDDR5 command cycle, 0.667 ns).
package gpu

import (
	"io"
	"time"

	"dramlat/internal/gddr5"
	"dramlat/internal/guard"
	"dramlat/internal/guard/chaos"
	"dramlat/internal/telemetry"
)

// Config collects every simulation parameter. DefaultConfig reproduces
// Table II.
type Config struct {
	// Cores.
	NumSMs     int
	WarpsPerSM int
	WarpSize   int
	L1Lat      int64
	// WarpSched selects the SM warp scheduler: "gto" (default,
	// greedy-then-oldest) or "lrr" (loose round-robin).
	WarpSched string

	// Caches.
	L1SizeBytes int
	L1Ways      int
	L1MSHRs     int
	L2SliceSize int
	L2Ways      int
	L2MSHRs     int
	L2Lat       int64
	LineBytes   int

	// Interconnect.
	XbarLat     int64
	XbarQueue   int
	L2PipeDepth int

	// Memory system.
	NumChannels   int
	NumBanks      int
	BankGroups    int
	CmdQueueCap   int
	ReadQ         int
	WriteQ        int
	HighWM        int
	LowWM         int
	WriteAgeDrain int64
	Timing        gddr5.Timing

	// Scheduling policy (see Schedulers).
	Scheduler  string
	SBWASAlpha float64
	CoordDelay int64
	AgeThresh  int64
	// ATLASQuantum is the rank-update period of the ATLAS comparator.
	ATLASQuantum int64
	// EnableRefresh turns on all-bank refresh (tREFI ~3.9us, tRFC
	// ~107ns for the 1Gb part). Off by default: the paper does not model
	// it and it affects every scheduler identically.
	EnableRefresh bool
	RefreshTicks  int64 // tREFI in ticks (default 5850 ~ 3.9us)
	TRFCTicks     int64 // tRFC in ticks (default 160 ~ 107ns)

	// Ideal models (Fig 4).
	PerfectCoalescing bool
	ZeroDivergence    bool

	// Ablation selects a design-choice ablation for the warp-aware
	// schedulers: "" (none), "count-score" (rank by request count, not
	// bank-aware completion time), "no-orphan" (disable IV-D orphan
	// control), "no-credits" (drop the L2 group-complete credits and
	// rely on the age fallback alone).
	Ablation string

	// MaxTicks bounds the simulation. Exhausting it with warps still
	// live aborts the run with a *guard.StallError (cycle-budget kind).
	MaxTicks int64

	// StallCycles is the liveness watchdog's no-progress budget: if no
	// instruction issues and no request is accepted or retired anywhere
	// in the system for this many consecutive simulation cycles while
	// warps are still live, Run aborts with a *guard.StallError carrying
	// a diagnostic dump instead of spinning to MaxTicks. 0 selects
	// DefaultStallCycles; negative disables the watchdog.
	StallCycles int64

	// Deadline, when non-zero, is a wall-clock bound checked at watchdog
	// cadence; exceeding it aborts with a deadline StallError.
	Deadline time.Time

	// Stop, when non-nil, cancels the run when closed (checked at
	// watchdog cadence); the run aborts with a stopped StallError.
	Stop <-chan struct{}

	// Faults injects chaos-test failures (late wakeups, forced panics).
	// nil — the production value — injects nothing and keeps results
	// byte-identical to a build without the hooks.
	Faults *chaos.Faults

	// DenseLoop selects the reference tick-every-cycle engine instead of
	// the event-driven next-wakeup engine. Results are byte-identical
	// either way (TestEventDrivenMatchesDense); the dense loop exists as
	// an escape hatch and as the differential-testing oracle.
	DenseLoop bool

	// Engine selects the simulation engine explicitly: "" or
	// EngineEvent (event-driven next-wakeup, the default), EngineDense
	// (the dense reference loop, same as DenseLoop), or EngineParallel
	// (the epoch-parallel engine: SMs and memory partitions sharded
	// across worker goroutines, byte-identical Results to the serial
	// engines — see DESIGN.md "Parallel engine").
	Engine string

	// Shards bounds the parallel engine's worker count; 0 picks
	// min(GOMAXPROCS, components). Results never depend on it.
	Shards int

	// Sampled configures EngineSampled's interval sampling. Unlike
	// Engine/Shards these parameters DO change Results (they select
	// which regions run detailed vs modeled), so the façade includes
	// them in the content hash.
	Sampled SampledConfig

	// CmdLog, when non-nil, receives one line per issued DRAM command
	// ("tick chN TYPE bank row") for debugging and external analysis.
	CmdLog io.Writer

	// Telemetry configures the event tracer and interval sampler. The
	// zero value disables both; disabled telemetry costs one nil-check
	// branch per instrumentation site (see BenchmarkRunTelemetryOff).
	Telemetry telemetry.Options
}

// Engine names for Config.Engine.
const (
	// EngineEvent is the default event-driven next-wakeup engine.
	EngineEvent = "event"
	// EngineDense is the tick-every-cycle reference loop (the
	// differential-testing oracle; equivalent to DenseLoop).
	EngineDense = "dense"
	// EngineParallel shards SMs and memory partitions across worker
	// goroutines within each visited tick, byte-identical to the serial
	// engines.
	EngineParallel = "parallel"
	// EngineSampled is the interval-sampling engine: short full-fidelity
	// measurement windows on the event-driven core alternate with
	// fast-forward regions advanced by statistical models calibrated
	// from the preceding window. Results are approximate — validated
	// distributionally against the event engine, never byte-identical
	// (see DESIGN.md "Sampled engine").
	EngineSampled = "sampled"
)

// Engines lists the selectable engine names.
func Engines() []string {
	return []string{EngineEvent, EngineDense, EngineParallel, EngineSampled}
}

// SampledConfig parameterizes the interval-sampling engine. All cycle
// counts are in ticks; zero fields take the Default*Cycles values.
type SampledConfig struct {
	// WindowCycles is the length of each full-fidelity measurement
	// window the statistical models are calibrated from.
	WindowCycles int64
	// FastForwardCycles is the length of each modeled region between
	// windows: warp progress advances at the calibrated issue rates and
	// the skipped memory traffic is injected statistically.
	FastForwardCycles int64
	// WarmupCycles is the detailed prefix run after each fast-forward
	// before the next measurement window, re-converging cache, row
	// buffer and queue state; it is excluded from calibration.
	WarmupCycles int64
	// Seed perturbs the per-window RNG streams; same (Key, Seed) means
	// byte-identical sampled runs on any worker.
	Seed int64
	// Key is the RNG stream key — the façade sets it to the spec's
	// content hash so sampled runs are reproducible per spec.
	Key string
}

// Default interval-sampling parameters: an 8:1 modeled-to-detailed
// ratio with windows long enough to complete thousands of warp-groups
// per calibration at Table II scale, and warm-ups long enough (with
// the settle prefix and the jump's phase-jitter re-seeding) to
// re-converge warp-phase dispersion — the slow mode behind the
// divergence-gap distribution. Shorter windows censor the gap tail;
// shorter warm-ups bias every percentile low. Raise
// FastForwardCycles for more speed on long runs; the accuracy/speed
// trade is measured in EXPERIMENTS.md.
const (
	DefaultWindowCycles      = 8000
	DefaultFastForwardCycles = 64000
	DefaultWarmupCycles      = 8000
)

// WithDefaults fills zero fields with the Default*Cycles values.
func (p SampledConfig) WithDefaults() SampledConfig {
	if p.WindowCycles == 0 {
		p.WindowCycles = DefaultWindowCycles
	}
	if p.FastForwardCycles == 0 {
		p.FastForwardCycles = DefaultFastForwardCycles
	}
	if p.WarmupCycles == 0 {
		p.WarmupCycles = DefaultWarmupCycles
	}
	return p
}

// Schedulers lists the supported policy names in evaluation order: the
// simple baselines, the throughput-optimized GMC, the comparators from
// Section VI-C (SBWAS, WAFCFS via the fcfs+ordered-interconnect pair,
// PAR-BS and ATLAS from the CPU-scheduler discussion), the paper's four
// warp-aware policies, and the shared-data extension from the conclusion.
func Schedulers() []string {
	return []string{"fcfs", "wafcfs", "frfcfs", "gmc", "sbwas", "parbs", "atlas",
		"wg", "wg-m", "wg-bw", "wg-w", "wg-sh"}
}

// DefaultConfig returns the Table II configuration with the GMC baseline
// scheduler.
func DefaultConfig() Config {
	return Config{
		NumSMs:     30,
		WarpsPerSM: 32, // 1024 threads / 32-thread warps
		WarpSize:   32,
		L1Lat:      20,

		L1SizeBytes: 32 << 10,
		L1Ways:      8,
		L1MSHRs:     64,
		L2SliceSize: 128 << 10,
		L2Ways:      16,
		L2MSHRs:     64,
		L2Lat:       40,
		LineBytes:   128,

		XbarLat:     20,
		XbarQueue:   8,
		L2PipeDepth: 8,

		NumChannels:   6,
		NumBanks:      16,
		BankGroups:    4,
		CmdQueueCap:   4,
		ReadQ:         64,
		WriteQ:        64,
		HighWM:        32,
		LowWM:         16,
		WriteAgeDrain: 4096,
		Timing:        gddr5.Default(),

		Scheduler:    "gmc",
		SBWASAlpha:   0.5,
		CoordDelay:   4,
		AgeThresh:    2000,
		ATLASQuantum: 50_000,
		RefreshTicks: 5850,
		TRFCTicks:    160,

		MaxTicks: 50_000_000,
	}
}

// DefaultStallCycles is the watchdog's no-progress budget when
// Config.StallCycles is zero: 1M command cycles (~0.67ms of sim time)
// with zero system-wide progress is far beyond any legal quiet period
// (the longest legitimate gaps — a full write drain against busy banks —
// retire bursts every few hundred cycles).
const DefaultStallCycles = 1_000_000

// Sanity ceilings for Validate: far above Table II and every sweep this
// repo runs, low enough that a corrupted or fuzzed config fails fast
// instead of attempting a multi-terabyte allocation.
const (
	maxSMs        = 4096
	maxWarpsPerSM = 2048
	maxChannels   = 1024
	maxBanks      = 4096
)

func powerOfTwo(n int) bool { return n > 0 && n&(n-1) == 0 }

// validateCache checks the set-associative geometry cache.New requires,
// so a bad config is a field-level error here instead of a constructor
// panic downstream.
func validateCache(v *guard.ValidationError, field string, sizeBytes, lineBytes, ways, mshrs int) {
	if ways <= 0 {
		v.Addf(field+"Ways", ways, "must be positive")
		return
	}
	lines := 0
	if lineBytes > 0 {
		lines = sizeBytes / lineBytes
	}
	if lines <= 0 || lines%ways != 0 {
		v.Addf(field+"Size", sizeBytes, "size/line/ways mismatch: %d lines must be positive and divisible by %d ways", lines, ways)
		return
	}
	if !powerOfTwo(lines / ways) {
		v.Addf(field+"Size", sizeBytes, "set count %d must be a power of two", lines/ways)
	}
	if mshrs <= 0 {
		v.Addf(field+"MSHRs", mshrs, "must be positive")
	}
}

// Validate checks every constructor precondition of the assembled
// system and returns a *guard.ValidationError naming each offending
// field, so NewSystem (and therefore dramlat.Run) rejects a bad config
// with a structured error before any cycle runs instead of panicking
// out of internal/addrmap, internal/cache or internal/dram.
func (c Config) Validate() error {
	v := &guard.ValidationError{}
	switch {
	case c.NumSMs <= 0:
		v.Addf("NumSMs", c.NumSMs, "must be positive")
	case c.NumSMs > maxSMs:
		v.Addf("NumSMs", c.NumSMs, "exceeds sanity ceiling %d", maxSMs)
	}
	switch {
	case c.WarpsPerSM <= 0:
		v.Addf("WarpsPerSM", c.WarpsPerSM, "must be positive")
	case c.WarpsPerSM > maxWarpsPerSM:
		v.Addf("WarpsPerSM", c.WarpsPerSM, "exceeds sanity ceiling %d", maxWarpsPerSM)
	}
	switch {
	case c.NumChannels <= 0:
		v.Addf("NumChannels", c.NumChannels, "must be positive")
	case c.NumChannels > maxChannels:
		v.Addf("NumChannels", c.NumChannels, "exceeds sanity ceiling %d", maxChannels)
	}
	// addrmap.New and dram.NewChannel preconditions.
	switch {
	case !powerOfTwo(c.NumBanks):
		v.Addf("NumBanks", c.NumBanks, "must be a positive power of two")
	case c.NumBanks > maxBanks:
		v.Addf("NumBanks", c.NumBanks, "exceeds sanity ceiling %d", maxBanks)
	case c.BankGroups <= 0 || c.NumBanks%c.BankGroups != 0:
		v.Addf("BankGroups", c.BankGroups, "banks (%d) must divide evenly into groups", c.NumBanks)
	}
	if !powerOfTwo(c.LineBytes) {
		v.Addf("LineBytes", c.LineBytes, "must be a positive power of two")
	} else {
		validateCache(v, "L1", c.L1SizeBytes, c.LineBytes, c.L1Ways, c.L1MSHRs)
		validateCache(v, "L2", c.L2SliceSize, c.LineBytes, c.L2Ways, c.L2MSHRs)
	}
	if c.CmdQueueCap <= 0 {
		v.Addf("CmdQueueCap", c.CmdQueueCap, "must be positive")
	}
	if c.ReadQ <= 0 {
		v.Addf("ReadQ", c.ReadQ, "must be positive")
	}
	if c.WriteQ <= 0 {
		v.Addf("WriteQ", c.WriteQ, "must be positive")
	}
	if c.HighWM > c.WriteQ || c.LowWM >= c.HighWM {
		v.Addf("HighWM", c.HighWM, "bad write watermarks high %d / low %d (cap %d)", c.HighWM, c.LowWM, c.WriteQ)
	}
	if c.XbarQueue <= 0 {
		v.Addf("XbarQueue", c.XbarQueue, "must be positive")
	}
	if c.L2PipeDepth <= 0 {
		v.Addf("L2PipeDepth", c.L2PipeDepth, "must be positive")
	}
	if c.WarpSched != "" && c.WarpSched != "gto" && c.WarpSched != "lrr" {
		v.Addf("WarpSched", c.WarpSched, "unknown warp scheduler (want gto or lrr)")
	}
	ok := false
	for _, s := range Schedulers() {
		if s == c.Scheduler {
			ok = true
			break
		}
	}
	if !ok {
		v.Addf("Scheduler", c.Scheduler, "unknown scheduler (see Schedulers())")
	}
	if c.MaxTicks <= 0 {
		v.Addf("MaxTicks", c.MaxTicks, "must be positive")
	}
	switch c.Engine {
	case "", EngineEvent, EngineDense:
	case EngineParallel:
		if c.CmdLog != nil {
			// Partitions write the command log as they tick; running them
			// concurrently would interleave lines nondeterministically.
			v.Addf("CmdLog", "non-nil", "command logging requires a serial engine (use event or dense)")
		}
		if c.DenseLoop {
			v.Addf("DenseLoop", c.DenseLoop, "conflicts with Engine=parallel")
		}
	case EngineSampled:
		if c.CmdLog != nil {
			// A sampled command log would have holes spanning every
			// modeled region; reject instead of emitting a partial log.
			v.Addf("CmdLog", "non-nil", "command logging requires an exact engine (fast-forward regions issue no commands)")
		}
		if c.DenseLoop {
			v.Addf("DenseLoop", c.DenseLoop, "conflicts with Engine=sampled")
		}
		if c.Sampled.WindowCycles < 0 {
			v.Addf("Sampled.WindowCycles", c.Sampled.WindowCycles, "must be non-negative (0 = default)")
		}
		if c.Sampled.FastForwardCycles < 0 {
			v.Addf("Sampled.FastForwardCycles", c.Sampled.FastForwardCycles, "must be non-negative (0 = default)")
		}
		if c.Sampled.WarmupCycles < 0 {
			v.Addf("Sampled.WarmupCycles", c.Sampled.WarmupCycles, "must be non-negative (0 = default)")
		}
	default:
		v.Addf("Engine", c.Engine, "unknown engine (want event, dense, parallel or sampled)")
	}
	if c.Shards < 0 {
		v.Addf("Shards", c.Shards, "must be non-negative")
	}
	return v.Err()
}
