// Package gpu assembles the full system of Table II: 30 SIMT cores, a
// crossbar, six memory partitions (L2 slice + GDDR5 channel + memory
// controller), and the coordination network, driven by one global clock
// (1 tick = 1 GDDR5 command cycle, 0.667 ns).
package gpu

import (
	"fmt"
	"io"

	"dramlat/internal/gddr5"
	"dramlat/internal/telemetry"
)

// Config collects every simulation parameter. DefaultConfig reproduces
// Table II.
type Config struct {
	// Cores.
	NumSMs     int
	WarpsPerSM int
	WarpSize   int
	L1Lat      int64
	// WarpSched selects the SM warp scheduler: "gto" (default,
	// greedy-then-oldest) or "lrr" (loose round-robin).
	WarpSched string

	// Caches.
	L1SizeBytes int
	L1Ways      int
	L1MSHRs     int
	L2SliceSize int
	L2Ways      int
	L2MSHRs     int
	L2Lat       int64
	LineBytes   int

	// Interconnect.
	XbarLat     int64
	XbarQueue   int
	L2PipeDepth int

	// Memory system.
	NumChannels   int
	NumBanks      int
	BankGroups    int
	CmdQueueCap   int
	ReadQ         int
	WriteQ        int
	HighWM        int
	LowWM         int
	WriteAgeDrain int64
	Timing        gddr5.Timing

	// Scheduling policy (see Schedulers).
	Scheduler  string
	SBWASAlpha float64
	CoordDelay int64
	AgeThresh  int64
	// ATLASQuantum is the rank-update period of the ATLAS comparator.
	ATLASQuantum int64
	// EnableRefresh turns on all-bank refresh (tREFI ~3.9us, tRFC
	// ~107ns for the 1Gb part). Off by default: the paper does not model
	// it and it affects every scheduler identically.
	EnableRefresh bool
	RefreshTicks  int64 // tREFI in ticks (default 5850 ~ 3.9us)
	TRFCTicks     int64 // tRFC in ticks (default 160 ~ 107ns)

	// Ideal models (Fig 4).
	PerfectCoalescing bool
	ZeroDivergence    bool

	// Ablation selects a design-choice ablation for the warp-aware
	// schedulers: "" (none), "count-score" (rank by request count, not
	// bank-aware completion time), "no-orphan" (disable IV-D orphan
	// control), "no-credits" (drop the L2 group-complete credits and
	// rely on the age fallback alone).
	Ablation string

	// MaxTicks bounds the simulation.
	MaxTicks int64

	// DenseLoop selects the reference tick-every-cycle engine instead of
	// the event-driven next-wakeup engine. Results are byte-identical
	// either way (TestEventDrivenMatchesDense); the dense loop exists as
	// an escape hatch and as the differential-testing oracle.
	DenseLoop bool

	// CmdLog, when non-nil, receives one line per issued DRAM command
	// ("tick chN TYPE bank row") for debugging and external analysis.
	CmdLog io.Writer

	// Telemetry configures the event tracer and interval sampler. The
	// zero value disables both; disabled telemetry costs one nil-check
	// branch per instrumentation site (see BenchmarkRunTelemetryOff).
	Telemetry telemetry.Options
}

// Schedulers lists the supported policy names in evaluation order: the
// simple baselines, the throughput-optimized GMC, the comparators from
// Section VI-C (SBWAS, WAFCFS via the fcfs+ordered-interconnect pair,
// PAR-BS and ATLAS from the CPU-scheduler discussion), the paper's four
// warp-aware policies, and the shared-data extension from the conclusion.
func Schedulers() []string {
	return []string{"fcfs", "wafcfs", "frfcfs", "gmc", "sbwas", "parbs", "atlas",
		"wg", "wg-m", "wg-bw", "wg-w", "wg-sh"}
}

// DefaultConfig returns the Table II configuration with the GMC baseline
// scheduler.
func DefaultConfig() Config {
	return Config{
		NumSMs:     30,
		WarpsPerSM: 32, // 1024 threads / 32-thread warps
		WarpSize:   32,
		L1Lat:      20,

		L1SizeBytes: 32 << 10,
		L1Ways:      8,
		L1MSHRs:     64,
		L2SliceSize: 128 << 10,
		L2Ways:      16,
		L2MSHRs:     64,
		L2Lat:       40,
		LineBytes:   128,

		XbarLat:     20,
		XbarQueue:   8,
		L2PipeDepth: 8,

		NumChannels:   6,
		NumBanks:      16,
		BankGroups:    4,
		CmdQueueCap:   4,
		ReadQ:         64,
		WriteQ:        64,
		HighWM:        32,
		LowWM:         16,
		WriteAgeDrain: 4096,
		Timing:        gddr5.Default(),

		Scheduler:    "gmc",
		SBWASAlpha:   0.5,
		CoordDelay:   4,
		AgeThresh:    2000,
		ATLASQuantum: 50_000,
		RefreshTicks: 5850,
		TRFCTicks:    160,

		MaxTicks: 50_000_000,
	}
}

// Validate sanity-checks the configuration.
func (c Config) Validate() error {
	if c.NumSMs <= 0 || c.WarpsPerSM <= 0 || c.NumChannels <= 0 {
		return fmt.Errorf("gpu: non-positive geometry")
	}
	if c.WarpSched != "" && c.WarpSched != "gto" && c.WarpSched != "lrr" {
		return fmt.Errorf("gpu: unknown warp scheduler %q", c.WarpSched)
	}
	if c.HighWM > c.WriteQ || c.LowWM >= c.HighWM {
		return fmt.Errorf("gpu: bad write watermarks %d/%d (cap %d)", c.HighWM, c.LowWM, c.WriteQ)
	}
	ok := false
	for _, s := range Schedulers() {
		if s == c.Scheduler {
			ok = true
			break
		}
	}
	if !ok {
		return fmt.Errorf("gpu: unknown scheduler %q", c.Scheduler)
	}
	return nil
}
