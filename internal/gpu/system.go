package gpu

import (
	"fmt"

	"dramlat/internal/addrmap"
	"dramlat/internal/cache"
	"dramlat/internal/coordnet"
	"dramlat/internal/core"
	"dramlat/internal/dram"
	"dramlat/internal/guard"
	"dramlat/internal/guard/chaos"
	"dramlat/internal/memctrl"
	"dramlat/internal/memreq"
	"dramlat/internal/sm"
	"dramlat/internal/stats"
	"dramlat/internal/telemetry"
	"dramlat/internal/xbar"
)

// Workload is the per-SM, per-warp instruction streams fed to the GPU.
type Workload struct {
	Name     string
	Programs [][]sm.Program // [sm][warp]
}

// Results digests one simulation run.
type Results struct {
	Scheduler string
	Workload  string

	Ticks       int64 // tick at which the last warp retired
	Instr       int64
	IPC         float64
	Drained     bool
	Summary     stats.Summary
	DRAM        dram.Stats // aggregated over channels
	Utilization float64    // DRAM data-bus utilization up to Ticks
	RowHitRate  float64
	L2HitRate   float64
	L1HitRate   float64

	// Divergence-gap distribution percentiles (ticks).
	GapP50, GapP90, GapP99 float64

	// SMIdleFrac is the fraction of core cycles where an SM had live
	// warps but none ready — memory stalls multithreading could not hide
	// (Section III-A).
	SMIdleFrac float64

	DrainsStarted int64
	WriteFrac     float64 // write bursts / all bursts (Fig 12)
	// Fig 12: warp-groups pending at drain start, and the unit/orphan
	// subset (wg schedulers only).
	DrainStalledGroups       int64
	DrainStalledUnitOrOrphan int64
	CoordMessages            int64
	CoordApplied             int64
	CoordSoleBlocker         int64
	GroupsSelected           int64
	MERBFillers              int64
	UnitRush                 int64

	// Approximate marks results produced by the sampled engine: every
	// aggregate above is a statistical estimate, valid within the error
	// bars in Sampling, never byte-comparable to an exact engine's
	// output. Exact engines leave it false and Sampling nil.
	Approximate bool `json:",omitempty"`
	Sampling    *SamplingStats
}

// SamplingStats is the sampled engine's self-report: how much of the
// run was simulated in full detail vs advanced by the statistical
// model, and 95% confidence half-widths for the headline metrics
// derived from window-to-window variation. A run short enough to fit
// in one window reports zero half-widths (no variance to estimate) —
// and also ran essentially exactly.
type SamplingStats struct {
	Windows       int   // completed measurement windows
	DetailedTicks int64 // cycles simulated in full fidelity (windows + drains + warm-ups)
	ModeledTicks  int64 // cycles advanced by the statistical model
	// 95% CI half-widths (same units as the point estimates).
	IPCErr    float64
	GapP50Err float64
	GapP90Err float64
	GapP99Err float64
}

// System is one assembled GPU simulation.
type System struct {
	Cfg    Config
	Mapper *addrmap.Mapper
	Col    *stats.Collector
	// Tel holds the run's telemetry subsystems; nil when Cfg.Telemetry is
	// the zero value.
	Tel *telemetry.Telemetry

	sms   []*sm.SM
	parts []*partition
	name  string
	x     *xbar.Xbar
	net   *coordnet.Network

	atlas *memctrl.ATLASState

	// Engine holds per-run engine counters (visit/skip rates). They are
	// deliberately NOT part of Results: the engines batch work
	// differently, and Results must stay byte-identical between them.
	Engine EngineStats

	// Parallel-engine staging (Cfg.Engine == EngineParallel): each SM and
	// each partition records its collector calls and trace events into a
	// staged child, and the coordinator absorbs the children in component
	// order at each phase barrier, reproducing the serial call sequence.
	smCols      []*stats.Collector
	partCols    []*stats.Collector
	smTracers   []*telemetry.Tracer
	partTracers []*telemetry.Tracer

	// shards describes the parallel engine's SM sharding for stall dumps;
	// nil outside parallel runs.
	shards []guard.ShardState

	now int64
}

// EngineStats counts the work the simulation engine actually performed.
// VisitedTicks is the number of distinct ticks the main loop executed
// (equal to Ticks+1 for the dense engine); SMTicks and PartTicks count
// component-tick executions. The dense/event ratio of these is the
// tick-skipping win reported in BENCH_3.json.
type EngineStats struct {
	VisitedTicks int64
	SMTicks      int64
	PartTicks    int64
}

// NewSystem assembles a GPU for the given config and workload.
func NewSystem(cfg Config, w Workload) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(w.Programs) != cfg.NumSMs {
		return nil, fmt.Errorf("gpu: workload has %d SMs, config %d", len(w.Programs), cfg.NumSMs)
	}
	s := &System{
		Cfg:    cfg,
		name:   w.Name,
		Mapper: addrmap.New(cfg.NumChannels, cfg.NumBanks),
		Col:    stats.NewCollector(),
		x:      xbar.New(cfg.NumSMs, cfg.NumChannels, cfg.XbarLat, cfg.XbarQueue),
		Tel:    telemetry.New(cfg.Telemetry),
	}
	var tracer *telemetry.Tracer
	var sampler *telemetry.Sampler
	if s.Tel != nil {
		tracer, sampler = s.Tel.Tracer, s.Tel.Sampler
	}
	if cfg.Scheduler == "wafcfs" {
		s.x.NoInterleave = true
	}
	switch cfg.Scheduler {
	case "wg-m", "wg-bw", "wg-w", "wg-sh":
		s.net = coordnet.New(cfg.NumChannels, cfg.CoordDelay)
	case "atlas":
		s.atlas = memctrl.NewATLASState(cfg.ATLASQuantum)
	}
	par := cfg.Engine == EngineParallel
	if par {
		s.x.Par = true
		if s.net != nil {
			s.net.EnableStaging()
		}
	}

	for ch := 0; ch < cfg.NumChannels; ch++ {
		channel := dram.NewChannel(cfg.Timing, cfg.NumBanks, cfg.BankGroups, cfg.CmdQueueCap)
		// The dense reference engine keeps the uncached Tick as the
		// differential-testing oracle.
		channel.WakeCache = !cfg.DenseLoop
		if cfg.EnableRefresh {
			channel.SetRefresh(cfg.RefreshTicks, cfg.TRFCTicks)
		}
		pCol, pTracer := s.Col, tracer
		if par {
			pCol, pTracer = s.Col.Stage(), tracer.Stage()
			s.partCols = append(s.partCols, pCol)
			s.partTracers = append(s.partTracers, pTracer)
		}
		sched, ws := s.buildScheduler(ch)
		ctl := memctrl.New(channel, sched, cfg.ReadQ, cfg.WriteQ, cfg.HighWM, cfg.LowWM)
		ctl.WriteAgeDrain = cfg.WriteAgeDrain
		ctl.Probe, ctl.ChannelID = pTracer, ch
		if ws != nil {
			ws.Probe = pTracer
		}
		if cfg.Scheduler == "sbwas" {
			ctl.Writes = memctrl.Interleaved
		}
		p := &partition{
			id: ch,
			l2: cache.New(cache.Config{
				SizeBytes: cfg.L2SliceSize, LineBytes: cfg.LineBytes,
				Ways: cfg.L2Ways, MSHRs: cfg.L2MSHRs,
			}),
			ctl: ctl, ws: ws, x: s.x, col: pCol,
			pipeCap: cfg.L2PipeDepth,
			mapper:  s.Mapper, mshrCap: cfg.L2MSHRs, l2Lat: cfg.L2Lat,
			nextID:    creatorID(uint64(cfg.NumSMs + ch)),
			noCredits: cfg.Ablation == "no-credits",
			cmdLog:    cfg.CmdLog,
			probe:     pTracer,
			tsamp:     sampler,
		}
		ctl.OnReadDone = p.onReadDone
		ctl.OnWriteDone = p.onWriteDone
		s.parts = append(s.parts, p)
	}

	for id := 0; id < cfg.NumSMs; id++ {
		sCol, sTracer := s.Col, tracer
		if par {
			sCol, sTracer = s.Col.Stage(), tracer.Stage()
			s.smCols = append(s.smCols, sCol)
			s.smTracers = append(s.smTracers, sTracer)
		}
		smCfg := sm.Config{
			ID:     id,
			Mapper: s.Mapper,
			L1: cache.Config{
				SizeBytes: cfg.L1SizeBytes, LineBytes: cfg.LineBytes,
				Ways: cfg.L1Ways, MSHRs: cfg.L1MSHRs,
			},
			L1Lat:             cfg.L1Lat,
			WarpSize:          cfg.WarpSize,
			LRR:               cfg.WarpSched == "lrr",
			ZeroDivergence:    cfg.ZeroDivergence,
			PerfectCoalescing: cfg.PerfectCoalescing,
			NextID:            creatorID(uint64(id)),
			Collector:         sCol,
			Probe:             sTracer,
			ClassifyStalls:    sampler != nil,
		}
		smID := id
		smCfg.Inject = func(r *memreq.Request, now int64) bool {
			return s.x.Inject(smID, r, now)
		}
		s.sms = append(s.sms, sm.New(smCfg, w.Programs[id]))
	}
	return s, nil
}

// creatorID returns an ID allocator for one creator domain: SM i uses
// stream i, partition ch uses stream NumSMs+ch. IDs are
// (stream+1)<<40 | serial, so streams never collide, every ID is
// engine-independent (serial and parallel allocate identically), and
// allocation is domain-local — no shared counter for parallel phases to
// contend on.
func creatorID(creator uint64) func() uint64 {
	var serial uint64
	return func() uint64 {
		serial++
		return (creator+1)<<40 | serial
	}
}

func (s *System) buildScheduler(ch int) (memctrl.Scheduler, *core.WarpScheduler) {
	cfg := s.Cfg
	ablate := func(w *core.WarpScheduler) (memctrl.Scheduler, *core.WarpScheduler) {
		w.AgeThresh = cfg.AgeThresh
		w.CountScore = cfg.Ablation == "count-score"
		w.NoOrphanControl = cfg.Ablation == "no-orphan"
		return w, w
	}
	switch cfg.Scheduler {
	case "gmc":
		g := memctrl.NewGMC()
		g.AgeThresh = cfg.AgeThresh
		return g, nil
	case "fcfs", "wafcfs":
		return memctrl.NewFCFS(), nil
	case "frfcfs":
		return memctrl.NewFRFCFS(), nil
	case "sbwas":
		return memctrl.NewSBWAS(cfg.SBWASAlpha), nil
	case "parbs":
		return memctrl.NewPARBS(), nil
	case "atlas":
		return memctrl.NewATLAS(s.atlas), nil
	case "wg":
		return ablate(core.New())
	case "wg-m":
		return ablate(core.New(core.WithCoordination(s.net, ch)))
	case "wg-bw":
		return ablate(core.New(core.WithCoordination(s.net, ch), core.WithMERB()))
	case "wg-w":
		return ablate(core.New(core.WithCoordination(s.net, ch), core.WithMERB(), core.WithWriteAware()))
	case "wg-sh":
		return ablate(core.New(core.WithCoordination(s.net, ch), core.WithMERB(),
			core.WithWriteAware(), core.WithSharedPriority()))
	}
	panic("gpu: unknown scheduler " + cfg.Scheduler)
}

// Run executes the simulation until every warp retires, MaxTicks
// elapse, or the liveness watchdog trips. Kernel time (Results.Ticks)
// is the tick at which the last warp retired; the write-back tail left
// in the memory system is not part of it, matching the paper's IPC
// measurement.
//
// On a completed run the error is nil. A run that exhausts MaxTicks,
// makes no forward progress for Cfg.StallCycles, misses Cfg.Deadline,
// or is cancelled through Cfg.Stop returns partial Results together
// with a *guard.StallError carrying a diagnostic dump — never a hang.
// The watchdog only reads state, so completed runs remain
// byte-identical to a watchdog-free build.
//
// The default engine is event-driven: it visits a component only at
// ticks where its state can change and jumps time to the next wakeup
// when nothing is runnable, producing results byte-identical to the
// dense reference loop (Cfg.DenseLoop; see DESIGN.md "Simulation
// engine" and TestEventDrivenMatchesDense). Cfg.Engine selects the
// dense reference loop or the epoch-parallel engine explicitly.
func (s *System) Run() (Results, error) {
	switch {
	case s.Cfg.Engine == EngineParallel:
		return s.runParallel()
	case s.Cfg.Engine == EngineSampled:
		return s.runSampled()
	case s.Cfg.DenseLoop || s.Cfg.Engine == EngineDense:
		return s.runDense()
	default:
		return s.runEvent()
	}
}

// Now reports the current simulation cycle (for panic-recovery context).
func (s *System) Now() int64 { return s.now }

// runDense is the reference engine: every component ticks every cycle.
func (s *System) runDense() (Results, error) {
	doneTick := int64(-1)
	// nextSample keeps the per-tick telemetry cost to one compare when
	// sampling is off (it never matches).
	nextSample := int64(-1)
	lastSample := int64(-1)
	if s.Tel != nil && s.Tel.Sampler != nil {
		nextSample = s.Tel.Sampler.Every
	}
	smDone := make([]bool, len(s.sms))
	live := 0
	for i, c := range s.sms {
		if c.Done() {
			smDone[i] = true
		} else {
			live++
		}
	}
	wd := s.newWatchdog()
	f := s.Cfg.Faults
	var stall *guard.StallError
	for s.now = 0; s.now < s.Cfg.MaxTicks; s.now++ {
		now := s.now
		f.CheckPanic(now)
		s.Engine.VisitedTicks++
		s.Engine.SMTicks += int64(len(s.sms))
		s.Engine.PartTicks += int64(len(s.parts))
		for i, c := range s.sms {
			if f.Asleep(chaos.TargetSM, i, now) {
				continue
			}
			c.Tick(now, s.x.PopResponse(i, now))
			if !smDone[i] && c.Done() {
				smDone[i] = true
				live--
			}
		}
		for ch, p := range s.parts {
			if f.Asleep(chaos.TargetPartition, ch, now) {
				continue
			}
			p.Tick(now)
		}
		if now == nextSample {
			s.sample(now)
			lastSample = now
			nextSample = now + s.Tel.Sampler.Every
		}
		if live == 0 {
			doneTick = now
			break
		}
		if now >= wd.next {
			if stall = wd.check(now); stall != nil {
				break
			}
		}
	}
	if s.Tel != nil {
		s.flushTelemetry(lastSample)
	}
	res := s.results(doneTick)
	if doneTick < 0 && stall == nil {
		stall = s.stallError(guard.StallCycleBudget, s.now, s.Cfg.MaxTicks)
	}
	if stall != nil {
		return res, stall
	}
	return res, nil
}

// runEvent is the next-wakeup engine. Invariant: at every visited tick
// it executes exactly the dense per-tick code, in dense component order,
// for every component whose tick would not be a no-op; a component-tick
// is skipped only when the wakeup contracts prove it would be a dense
// no-op (modulo the SM idle counters, which CatchUp batches). By
// induction over visited ticks the two engines produce byte-identical
// state, hence byte-identical Results and telemetry.
func (s *System) runEvent() (Results, error) {
	doneTick := int64(-1)
	nextSample := int64(-1)
	lastSample := int64(-1)
	if s.Tel != nil && s.Tel.Sampler != nil {
		nextSample = s.Tel.Sampler.Every
	}
	nSM := len(s.sms)
	smWake := make([]int64, nSM) // zero: every SM is runnable at tick 0
	smLast := make([]int64, nSM) // last tick the SM actually ticked
	smDone := make([]bool, nSM)
	pWake := make([]int64, len(s.parts))
	live := 0
	for i, c := range s.sms {
		smLast[i] = -1
		if c.Done() {
			smDone[i] = true
		} else {
			live++
		}
	}
	// smBase is the exact min over smWake (SM-internal wakeups); partBase
	// the exact min over pWake and coordination-message dues. Crossbar
	// traffic is covered by the xbar's own maintained minima, so deciding
	// whether any component needs this tick is a handful of compares —
	// the per-component scans run only when their trigger fires.
	const bigTick = int64(1) << 62
	smBase, partBase := int64(0), int64(0)
	now := int64(0)
	wd := s.newWatchdog()
	f := s.Cfg.Faults
	var stall *guard.StallError
	for now < s.Cfg.MaxTicks {
		s.now = now
		f.CheckPanic(now)
		s.Engine.VisitedTicks++
		if now >= smBase || now >= s.x.MinRespWake() {
			smBase = bigTick
			for i, c := range s.sms {
				eff := smWake[i]
				if rw := s.x.RespWake(i); rw < eff {
					eff = rw
				}
				// A comatose component models a late NextWakeup answer:
				// its due tick passes unserved. Leaving smWake stale
				// (<= now) keeps the loop stepping densely so the
				// watchdog, not a hang, reports it.
				if eff <= now && !f.Asleep(chaos.TargetSM, i, now) {
					if gap := now - 1 - smLast[i]; gap > 0 {
						c.CatchUp(gap)
					}
					s.Engine.SMTicks++
					c.Tick(now, s.x.PopResponse(i, now))
					smLast[i] = now
					smWake[i] = c.NextWakeup(now)
					if !smDone[i] && c.Done() {
						smDone[i] = true
						live--
					}
				}
				if smWake[i] < smBase {
					smBase = smWake[i]
				}
			}
		}
		if now >= partBase || now >= s.x.MinReqWake() {
			for ch, p := range s.parts {
				eff := pWake[ch]
				if rw := s.x.ReqWake(ch); rw < eff {
					eff = rw
				}
				if s.net != nil {
					if nd := s.net.NextDue(ch); nd < eff {
						eff = nd
					}
				}
				if eff > now {
					continue
				}
				if f.Asleep(chaos.TargetPartition, ch, now) {
					continue
				}
				s.Engine.PartTicks++
				p.Tick(now)
				pWake[ch] = p.NextWakeup(now)
			}
			// Recompute partBase in a second pass: a partition ticked late
			// in the loop may have broadcast a coordination message due at
			// an earlier-indexed partition.
			partBase = bigTick
			for ch := range s.parts {
				b := pWake[ch]
				if s.net != nil {
					if nd := s.net.NextDue(ch); nd < b {
						b = nd
					}
				}
				if b < partBase {
					partBase = b
				}
			}
		}
		if now == nextSample {
			// Idle accounting must be current through this tick before
			// the sampler snapshots the SM counters.
			s.catchUpSMs(now, smLast)
			s.sample(now)
			lastSample = now
			nextSample = now + s.Tel.Sampler.Every
		}
		if live == 0 {
			doneTick = now
			break
		}
		if now >= wd.next {
			if stall = wd.check(now); stall != nil {
				break
			}
		}
		// Jump to the earliest wakeup, clamped to the next sample tick
		// and the next watchdog check.
		next := s.Cfg.MaxTicks
		if smBase < next {
			next = smBase
		}
		if rw := s.x.MinRespWake(); rw < next {
			next = rw
		}
		if partBase < next {
			next = partBase
		}
		if rw := s.x.MinReqWake(); rw < next {
			next = rw
		}
		if nextSample >= 0 && nextSample < next {
			next = nextSample
		}
		if wd.next < next {
			next = wd.next
		}
		if next <= now {
			next = now + 1 // a stale-early bound forces dense stepping
		}
		now = next
	}
	if stall != nil {
		// Aborted mid-run: bring idle accounting current through the
		// abort tick so partial Results read dense-identical counters.
		s.catchUpSMs(s.now, smLast)
	} else if doneTick < 0 {
		// MaxTicks exhausted: the dense loop ticked (and idle-counted)
		// every SM through MaxTicks-1.
		s.now = s.Cfg.MaxTicks
		s.catchUpSMs(s.Cfg.MaxTicks-1, smLast)
	} else {
		s.now = doneTick
	}
	if s.Tel != nil {
		s.flushTelemetry(lastSample)
	}
	res := s.results(doneTick)
	if doneTick < 0 && stall == nil {
		stall = s.stallError(guard.StallCycleBudget, s.now, s.Cfg.MaxTicks)
	}
	if stall != nil {
		return res, stall
	}
	return res, nil
}

// catchUpSMs flushes batched idle accounting for every SM through tick
// `through` (inclusive), so samples and results read dense-identical
// counters.
func (s *System) catchUpSMs(through int64, smLast []int64) {
	for i, c := range s.sms {
		if gap := through - smLast[i]; gap > 0 {
			c.CatchUp(gap)
			smLast[i] = through
		}
	}
}

// flushTelemetry takes the final interval sample and closes any spans
// (write drains, MERB streaks) still open at end of run, so exported
// traces have balanced begin/end pairs.
func (s *System) flushTelemetry(lastSample int64) {
	if s.Tel.Sampler != nil && s.now > lastSample {
		s.sample(s.now)
	}
	for _, p := range s.parts {
		p.ctl.FlushTelemetry(s.now)
		if p.ws != nil {
			p.ws.FlushTelemetry(s.now)
		}
	}
}

// sample snapshots every channel, every SM and the global gauges.
func (s *System) sample(now int64) {
	for _, p := range s.parts {
		p.sample(now)
	}
	samp := s.Tel.Sampler
	for i, c := range s.sms {
		samp.SMs = append(samp.SMs, telemetry.SMSample{
			Tick: now, SM: i,
			Instr:   c.InstrIssued,
			Active:  c.ActiveTicks,
			IdleMem: c.IdleMemTicks,
			IdleLSU: c.IdleLSUTicks,
			Idle:    c.IdleTicks,
		})
	}
	samp.Globals = append(samp.Globals, telemetry.GlobalSample{
		Tick:              now,
		OutstandingGroups: s.Col.Outstanding(),
		CompletedGroups:   len(s.Col.Done()),
	})
}

func (s *System) results(doneTick int64) Results {
	r := Results{Scheduler: s.Cfg.Scheduler, Workload: s.name, Drained: doneTick >= 0}
	if doneTick < 0 {
		doneTick = s.now
	}
	r.Ticks = doneTick
	for _, c := range s.sms {
		r.Instr += c.InstrIssued
	}
	if r.Ticks > 0 {
		r.IPC = float64(r.Instr) / float64(r.Ticks)
	}
	r.Summary = s.Col.Summarize()
	r.GapP50 = s.Col.Percentile(50)
	r.GapP90 = s.Col.Percentile(90)
	r.GapP99 = s.Col.Percentile(99)

	var l1h, l1m, l2h, l2m int64
	var idle, act int64
	for _, c := range s.sms {
		l1h += c.L1.Hits
		l1m += c.L1.Misses
		idle += c.IdleTicks
		act += c.ActiveTicks
	}
	if idle+act > 0 {
		r.SMIdleFrac = float64(idle) / float64(idle+act)
	}
	var busy int64
	for _, p := range s.parts {
		st := p.ctl.Chan.Stats
		r.DRAM.ACTs += st.ACTs
		r.DRAM.PREs += st.PREs
		r.DRAM.RDBursts += st.RDBursts
		r.DRAM.WRBursts += st.WRBursts
		r.DRAM.HitTxns += st.HitTxns
		r.DRAM.MissTxns += st.MissTxns
		r.DRAM.ReadTxns += st.ReadTxns
		r.DRAM.WriteTxns += st.WriteTxns
		r.DRAM.BusyTicks += st.BusyTicks
		busy += st.BusyTicks
		l2h += p.l2.Hits
		l2m += p.l2.Misses
		r.DrainsStarted += p.ctl.Stats.DrainsStarted
		if p.ws != nil {
			r.DrainStalledGroups += p.ws.Stats.DrainStalledGroups
			r.DrainStalledUnitOrOrphan += p.ws.Stats.DrainStalledUnitOrOrphan
			r.CoordMessages += p.ws.Stats.CoordSent
			r.CoordApplied += p.ws.Stats.CoordApplied
			r.CoordSoleBlocker += p.ws.Stats.CoordSoleBlocker
			r.GroupsSelected += p.ws.Stats.GroupsSelected
			r.MERBFillers += p.ws.Stats.MERBFillers + p.ws.Stats.OrphanRideAlongs
			r.UnitRush += p.ws.Stats.UnitRushDispatches
		}
	}
	if r.Ticks > 0 {
		r.Utilization = float64(busy) / float64(int64(s.Cfg.NumChannels)*r.Ticks)
	}
	r.RowHitRate = r.DRAM.RowHitRate()
	if l1h+l1m > 0 {
		r.L1HitRate = float64(l1h) / float64(l1h+l1m)
	}
	if l2h+l2m > 0 {
		r.L2HitRate = float64(l2h) / float64(l2h+l2m)
	}
	if tot := r.DRAM.RDBursts + r.DRAM.WRBursts; tot > 0 {
		r.WriteFrac = float64(r.DRAM.WRBursts) / float64(tot)
	}
	return r
}
