package gpu

import (
	"fmt"
	"io"

	"dramlat/internal/addrmap"
	"dramlat/internal/cache"
	"dramlat/internal/core"
	"dramlat/internal/dram"
	"dramlat/internal/memctrl"
	"dramlat/internal/memreq"
	"dramlat/internal/stats"
	"dramlat/internal/telemetry"
	"dramlat/internal/xbar"
)

// pipeEntry is one request inside the L2 slice's lookup pipeline.
type pipeEntry struct {
	req     *memreq.Request
	readyAt int64
}

// partition is one memory partition: an L2 slice in front of one GDDR5
// channel and its memory controller (Section II-B).
type partition struct {
	id  int
	l2  *cache.Cache
	ctl *memctrl.Controller
	ws  *core.WarpScheduler // non-nil for the wg* schedulers
	x   *xbar.Xbar
	col *stats.Collector

	// pipe and evictQ are head-indexed FIFOs: pops advance the head
	// instead of re-slicing capacity away, and the backing arrays reset
	// once empty, so the steady state never re-allocates.
	pipe      []pipeEntry
	pipeHead  int
	pipeCap   int
	evictQ    []*memreq.Request // dirty write-backs awaiting the write queue
	evictHead int

	// pool recycles this partition's request traffic: absorbed writes and
	// credits feed the next dirty-eviction write-back. Domain-local, so
	// the parallel engine needs no synchronization around it.
	pool memreq.Pool

	// didWork records whether the last Tick made observable progress: an
	// O(1) "probably busy next tick too" signal that lets NextWakeup skip
	// the controller/channel scans on active streaks (spuriously early at
	// streak end, which the wakeup contract allows).
	didWork bool

	mapper    *addrmap.Mapper
	mshrCap   int
	l2Lat     int64
	nextID    func() uint64
	noCredits bool               // ablation: drop group-complete credits
	cmdLog    io.Writer          // optional DRAM command trace
	probe     *telemetry.Tracer  // nil disables event tracing
	tsamp     *telemetry.Sampler // nil disables interval sampling

	L2Hits, L2Misses, L2Merges int64
}

func (p *partition) onReadDone(r *memreq.Request, now int64) {
	// Fill the L2 and emit any displaced dirty victim as a DRAM write.
	if v, dirty, evicted := p.l2.Fill(r.Addr, false); evicted && dirty {
		p.pushEvict(v, now)
	}
	m := p.l2.MSHRRelease(r.Addr)
	if p.col != nil {
		p.col.OnDRAMDone(r.Group, now)
	}
	if p.probe != nil {
		p.probe.Done(now, p.id, r.Group, r.ID)
	}
	p.x.Respond(p.id, r, now)
	if m != nil {
		for _, w := range m.Waiters {
			mr := w.(*memreq.Request)
			if p.col != nil {
				p.col.OnDRAMDone(mr.Group, now)
			}
			if p.probe != nil {
				p.probe.Done(now, p.id, mr.Group, r.ID)
			}
			p.x.Respond(p.id, mr, now)
		}
	}
}

func (p *partition) pushEvict(victim uint64, now int64) {
	w := p.pool.Get()
	w.ID, w.Kind, w.Addr = p.nextID(), memreq.Write, victim
	w.Issue, w.Channel = now, p.id
	// Victim addresses come from this partition, so they decode back to
	// this channel; only bank/row/col are needed.
	c := p.mapper.Decode(victim)
	w.Bank, w.Row, w.Col = c.Bank, c.Row, c.Col
	p.evictQ = append(p.evictQ, w)
}

// onWriteDone recycles a drained write-back; only pushEvict-created
// writes reach the DRAM write path (SM stores are absorbed by the L2).
func (p *partition) onWriteDone(r *memreq.Request, now int64) {
	p.pool.Put(r)
}

// process handles the head of the L2 pipeline. It returns false when the
// head must stall (MSHR or read-queue pressure downstream).
func (p *partition) process(r *memreq.Request, now int64) bool {
	if r.CreditOnly {
		if !p.noCredits {
			p.ctl.GroupComplete(r.Group, now)
		}
		p.pool.Put(r) // credit absorbed; it never reaches DRAM
		return true
	}
	if r.Kind == memreq.Write {
		if len(p.evictQ)-p.evictHead >= 16 {
			return false // eviction buffer full: stall the pipe
		}
		if v, dirty, evicted := p.l2.Fill(r.Addr, true); evicted && dirty {
			p.pushEvict(v, now)
		}
		p.pool.Put(r) // store absorbed by the L2
		return true
	}
	// Read.
	if p.l2.Lookup(r.Addr) {
		p.L2Hits++
		if r.LastInChannel && !p.noCredits {
			p.ctl.GroupComplete(r.Group, now)
		}
		p.x.Respond(p.id, r, now)
		return true
	}
	if m := p.l2.MSHRFor(r.Addr); m != nil {
		p.L2Merges++
		m.Waiters = append(m.Waiters, r)
		if owner, ok := m.Owner.(memreq.GroupID); ok && owner != r.Group {
			// Another warp now waits on the owner group's line: the
			// shared-data extension raises the owner's priority.
			p.ctl.SharedDemand(owner, now)
		}
		if r.LastInChannel && !p.noCredits {
			p.ctl.GroupComplete(r.Group, now)
		}
		return true
	}
	// True miss: needs an MSHR and a read-queue slot together.
	if p.l2.MSHRCount() >= p.mshrCap {
		return false
	}
	if !p.ctl.AcceptRead(r, now) {
		return false
	}
	m := p.l2.MSHRAlloc(r.Addr)
	m.Owner = r.Group
	p.L2Misses++
	if p.col != nil {
		p.col.OnMCArrive(r.Group, p.id)
	}
	return true
}

// Tick advances the partition one cycle.
func (p *partition) Tick(now int64) {
	p.didWork = false
	// Retry buffered dirty evictions first: they must not be lost.
	for p.evictHead < len(p.evictQ) {
		if !p.ctl.AcceptWrite(p.evictQ[p.evictHead], now) {
			break
		}
		p.evictQ[p.evictHead] = nil
		p.evictHead++
		p.didWork = true
	}
	if p.evictHead == len(p.evictQ) {
		p.evictQ = p.evictQ[:0]
		p.evictHead = 0
	}
	// L2 pipeline: one request per tick.
	if p.pipeHead < len(p.pipe) && p.pipe[p.pipeHead].readyAt <= now {
		if p.process(p.pipe[p.pipeHead].req, now) {
			p.pipe[p.pipeHead] = pipeEntry{}
			p.pipeHead++
			if p.pipeHead == len(p.pipe) {
				p.pipe = p.pipe[:0]
				p.pipeHead = 0
			}
			p.didWork = true
		}
	}
	// Pull new work from the crossbar.
	if len(p.pipe)-p.pipeHead < p.pipeCap {
		if req := p.x.PeekPart(p.id, now); req != nil {
			p.x.PopPart(p.id)
			p.pipe = append(p.pipe, pipeEntry{req, now + p.l2Lat})
			p.didWork = true
		}
	}
	if p.ws != nil {
		p.ws.PollCoordination(now)
	}
	cmd := p.ctl.Tick(now)
	if cmd != nil {
		p.didWork = true
	}
	if cmd != nil && p.cmdLog != nil {
		fmt.Fprintf(p.cmdLog, "%d ch%d %s b%d r%d\n", now, p.id, cmd.Type, cmd.Bank, cmd.Row)
	}
	if cmd != nil && p.probe != nil {
		p.emitCommand(cmd, now)
	}
}

// NextWakeup returns the earliest tick strictly after now at which Tick
// could do real work, assuming no new crossbar arrivals (covered by
// Xbar.ReqWake) and no coordination deliveries (covered by
// coordnet.NextDue). A buffered eviction retries the write queue every
// tick; a ready (possibly stalled) pipe head is re-processed every
// tick; otherwise the partition sleeps until the pipe head matures or
// the controller/channel can act.
func (p *partition) NextWakeup(now int64) int64 {
	if p.didWork {
		return now + 1
	}
	w := p.ctl.NextWakeup(now)
	if len(p.evictQ)-p.evictHead > 0 && now+1 < w {
		w = now + 1
	}
	if len(p.pipe)-p.pipeHead > 0 {
		head := p.pipe[p.pipeHead].readyAt
		if head <= now {
			head = now + 1
		}
		if head < w {
			w = head
		}
	}
	return w
}

// emitCommand translates one issued DRAM command into a trace event.
func (p *partition) emitCommand(cmd *dram.Command, now int64) {
	var kind telemetry.Kind
	row := cmd.Row
	switch cmd.Type {
	case dram.CmdACT:
		kind = telemetry.EvACT
	case dram.CmdPRE:
		kind, row = telemetry.EvPRE, -1
	case dram.CmdRD:
		kind = telemetry.EvRD
	case dram.CmdWR:
		kind = telemetry.EvWR
	default:
		return
	}
	var r *memreq.Request
	if cmd.Txn != nil {
		r = cmd.Txn.Req
	}
	p.probe.Command(now, kind, p.id, cmd.Bank, row, r)
}

// sample appends one ChannelSample snapshot; gpu.Run owns the cadence.
func (p *partition) sample(now int64) {
	queued := 0
	for b := 0; b < p.ctl.Chan.NumBanks; b++ {
		queued += p.ctl.Chan.QueuedTxns(b)
	}
	cs := p.ctl.Chan.Stats
	p.tsamp.Channels = append(p.tsamp.Channels, telemetry.ChannelSample{
		Tick:    now,
		Channel: p.id,

		ReadQ:      p.ctl.ReadOccupancy(),
		WriteQ:     p.ctl.WriteOccupancy(),
		Draining:   p.ctl.Draining(),
		QueuedTxns: queued,

		ACTs: cs.ACTs, PREs: cs.PREs,
		RDBursts: cs.RDBursts, WRBursts: cs.WRBursts,
		HitTxns: cs.HitTxns, MissTxns: cs.MissTxns,
		BusyTicks:     cs.BusyTicks,
		DrainsStarted: p.ctl.Stats.DrainsStarted,
	})
}

// drained reports whether the partition holds no in-flight work.
func (p *partition) drained() bool {
	return len(p.pipe)-p.pipeHead == 0 && len(p.evictQ)-p.evictHead == 0 && p.ctl.Idle()
}
