package gpu

import (
	"fmt"
	"os"

	"dramlat/internal/core"
	"dramlat/internal/dram"
	"dramlat/internal/guard"
	"dramlat/internal/guard/chaos"
	"dramlat/internal/memctrl"
	"dramlat/internal/stats"
	"dramlat/internal/telemetry"
)

// The sampled engine (Cfg.Engine == EngineSampled) trades exactness
// for wall-clock: it alternates short full-fidelity measurement
// windows — run on the event-driven core — with fast-forward regions
// where warp progress and memory behavior advance by statistical
// models calibrated from the window just measured. Each region is
//
//	measure (W detailed cycles)   calibrate per-SM issue rates, the
//	                              warp-group latency/divergence sample
//	                              and per-channel DRAM/L2 rates
//	drain   (detailed)            freeze every SM's issue stage and run
//	                              the detailed core until the memory
//	                              system is empty — the model then jumps
//	                              from a state with no in-flight requests
//	fast-forward (F modeled)      bulk-advance warp PCs at the calibrated
//	                              rates; resample whole warp-group records
//	                              into the collector; scale the window's
//	                              counter deltas by F/W
//	warm-up (U detailed cycles)   resume detailed execution to re-converge
//	                              cache/row-buffer/queue state before the
//	                              next measurement window
//
// Results carry Approximate=true and window-to-window error bars; they
// are validated distributionally against the event engine (see
// internal/stats.Check and DESIGN.md "Sampled engine"), never
// byte-compared.

// maxDrainFactor bounds the drain phase at maxDrainFactor×WindowCycles
// detailed cycles; a drain that has not quiesced by then (pathological
// queue churn) skips its jump and the region continues detailed, so
// sampling degrades to exact simulation instead of stalling.
const maxDrainFactor = 8

// scaleCount scales a window-delta counter to a fast-forward region:
// round(x·f), deterministic.
func scaleCount(x int64, f float64) int64 {
	if x <= 0 {
		return 0
	}
	return int64(float64(x)*f + 0.5)
}

// sampledState is the event-core stepping state shared by every
// detailed phase of a sampled run — the same smWake/pWake bookkeeping
// runEvent keeps, factored so the phases can stop and resume it.
type sampledState struct {
	s       *System
	smWake  []int64
	smLast  []int64
	smDone  []bool
	pWake   []int64
	smBase  int64
	prtBase int64
	now     int64
	live    int

	doneTick int64
	stall    *guard.StallError
	wd       *watchdog
	f        *chaos.Faults

	nextSample int64
	lastSample int64
}

const sampledBigTick = int64(1) << 62

func newSampledState(s *System) *sampledState {
	e := &sampledState{
		s:          s,
		smWake:     make([]int64, len(s.sms)),
		smLast:     make([]int64, len(s.sms)),
		smDone:     make([]bool, len(s.sms)),
		pWake:      make([]int64, len(s.parts)),
		doneTick:   -1,
		wd:         s.newWatchdog(),
		f:          s.Cfg.Faults,
		nextSample: -1,
		lastSample: -1,
	}
	if s.Tel != nil && s.Tel.Sampler != nil {
		e.nextSample = s.Tel.Sampler.Every
	}
	for i, c := range s.sms {
		e.smLast[i] = -1
		if c.Done() {
			e.smDone[i] = true
		} else {
			e.live++
		}
	}
	return e
}

// stepUntil advances the event core from e.now to limit (exclusive),
// stopping early when the last warp retires, the watchdog trips, or —
// with stopQuiescent — the whole system reaches quiescence. The body
// is the runEvent loop; see its invariants.
func (e *sampledState) stepUntil(limit int64, stopQuiescent bool) {
	s := e.s
	if limit > s.Cfg.MaxTicks {
		limit = s.Cfg.MaxTicks
	}
	for e.now < limit && e.live > 0 && e.stall == nil {
		now := e.now
		s.now = now
		e.f.CheckPanic(now)
		s.Engine.VisitedTicks++
		if now >= e.smBase || now >= s.x.MinRespWake() {
			e.smBase = sampledBigTick
			for i, c := range s.sms {
				eff := e.smWake[i]
				if rw := s.x.RespWake(i); rw < eff {
					eff = rw
				}
				if eff <= now && !e.f.Asleep(chaos.TargetSM, i, now) {
					if gap := now - 1 - e.smLast[i]; gap > 0 {
						c.CatchUp(gap)
					}
					s.Engine.SMTicks++
					c.Tick(now, s.x.PopResponse(i, now))
					e.smLast[i] = now
					e.smWake[i] = c.NextWakeup(now)
					if !e.smDone[i] && c.Done() {
						e.smDone[i] = true
						e.live--
					}
				}
				if e.smWake[i] < e.smBase {
					e.smBase = e.smWake[i]
				}
			}
		}
		if now >= e.prtBase || now >= s.x.MinReqWake() {
			for ch, p := range s.parts {
				eff := e.pWake[ch]
				if rw := s.x.ReqWake(ch); rw < eff {
					eff = rw
				}
				if s.net != nil {
					if nd := s.net.NextDue(ch); nd < eff {
						eff = nd
					}
				}
				if eff > now {
					continue
				}
				if e.f.Asleep(chaos.TargetPartition, ch, now) {
					continue
				}
				s.Engine.PartTicks++
				p.Tick(now)
				e.pWake[ch] = p.NextWakeup(now)
			}
			e.prtBase = sampledBigTick
			for ch := range s.parts {
				b := e.pWake[ch]
				if s.net != nil {
					if nd := s.net.NextDue(ch); nd < b {
						b = nd
					}
				}
				if b < e.prtBase {
					e.prtBase = b
				}
			}
		}
		if now == e.nextSample {
			s.catchUpSMs(now, e.smLast)
			s.sample(now)
			e.lastSample = now
			e.nextSample = now + s.Tel.Sampler.Every
		}
		if e.live == 0 {
			e.doneTick = now
			return
		}
		if stopQuiescent && s.quiescent() {
			// Leave e.now at the tick after the one that drained the
			// last request: quiescence was observed post-Tick.
			e.now = now + 1
			return
		}
		if now >= e.wd.next {
			if e.stall = e.wd.check(now); e.stall != nil {
				return
			}
		}
		next := limit
		if e.smBase < next {
			next = e.smBase
		}
		if rw := s.x.MinRespWake(); rw < next {
			next = rw
		}
		if e.prtBase < next {
			next = e.prtBase
		}
		if rw := s.x.MinReqWake(); rw < next {
			next = rw
		}
		if e.nextSample >= 0 && e.nextSample < next {
			next = e.nextSample
		}
		if e.wd.next < next {
			next = e.wd.next
		}
		if next <= now {
			next = now + 1
		}
		e.now = next
	}
}

// quiescent reports whether no memory state is in flight anywhere:
// every SM drained (no replay, no outstanding fills, no blocked
// warps), the crossbar empty in both directions, every partition's
// pipeline/controller/channel idle, and no coordination messages
// pending. With SMs frozen this is the sampled engine's jump point.
func (s *System) quiescent() bool {
	for _, c := range s.sms {
		if !c.Quiescent() {
			return false
		}
	}
	if !s.x.Empty() {
		return false
	}
	for ch, p := range s.parts {
		if !p.drained() {
			return false
		}
		if s.net != nil && s.net.PendingFor(ch) > 0 {
			return false
		}
	}
	return true
}

// calSnap is the counter snapshot taken at a measurement-window start;
// calibrate turns two snapshots into a window model.
type calSnap struct {
	instr  []int64
	l1h    []int64
	l1m    []int64
	mark   int
	loads  int64
	multi  int64
	lines  int64
	stores int64
	stLine int64
	dram   []dram.Stats
	ctl    []memctrl.Stats
	ws     []core.Stats
	l2h    []int64
	l2m    []int64
}

func (s *System) snapshotCounters() calSnap {
	sn := calSnap{
		instr: make([]int64, len(s.sms)),
		l1h:   make([]int64, len(s.sms)),
		l1m:   make([]int64, len(s.sms)),
		mark:  s.Col.Mark(),
		loads: s.Col.TotalLoads, multi: s.Col.MultiReqLoads, lines: s.Col.TotalLines,
		stores: s.Col.Stores, stLine: s.Col.StoreLines,
		dram: make([]dram.Stats, len(s.parts)),
		ctl:  make([]memctrl.Stats, len(s.parts)),
		ws:   make([]core.Stats, len(s.parts)),
		l2h:  make([]int64, len(s.parts)),
		l2m:  make([]int64, len(s.parts)),
	}
	for i, c := range s.sms {
		sn.instr[i] = c.InstrIssued
		sn.l1h[i] = c.L1.Hits
		sn.l1m[i] = c.L1.Misses
	}
	for ch, p := range s.parts {
		sn.dram[ch] = p.ctl.Chan.Stats
		sn.ctl[ch] = p.ctl.Stats
		if p.ws != nil {
			sn.ws[ch] = p.ws.Stats
		}
		sn.l2h[ch] = p.l2.Hits
		sn.l2m[ch] = p.l2.Misses
	}
	return sn
}

// calibration is one window's statistical model plus the per-window
// summary feeding the error bars.
type calibration struct {
	winLen  int64
	dInstr  []int64
	dL1h    []int64
	dL1m    []int64
	recs    []stats.GroupRec // window-completed warp-groups, by value
	dLoads  int64
	dMulti  int64
	dLines  int64
	dStores int64
	dStLine int64
	dDRAM   []dram.Stats
	dCtl    []memctrl.Stats
	dWS     []core.Stats
	dL2h    []int64
	dL2m    []int64

	winIPC                 float64
	winP50, winP90, winP99 float64
}

func (s *System) calibrate(sn calSnap, winLen int64) calibration {
	c := calibration{
		winLen: winLen,
		dInstr: make([]int64, len(s.sms)),
		dL1h:   make([]int64, len(s.sms)),
		dL1m:   make([]int64, len(s.sms)),
		dDRAM:  make([]dram.Stats, len(s.parts)),
		dCtl:   make([]memctrl.Stats, len(s.parts)),
		dWS:    make([]core.Stats, len(s.parts)),
		dL2h:   make([]int64, len(s.parts)),
		dL2m:   make([]int64, len(s.parts)),
		dLoads: s.Col.TotalLoads - sn.loads, dMulti: s.Col.MultiReqLoads - sn.multi,
		dLines: s.Col.TotalLines - sn.lines, dStores: s.Col.Stores - sn.stores,
		dStLine: s.Col.StoreLines - sn.stLine,
	}
	var instr int64
	for i, sm := range s.sms {
		c.dInstr[i] = sm.InstrIssued - sn.instr[i]
		c.dL1h[i] = sm.L1.Hits - sn.l1h[i]
		c.dL1m[i] = sm.L1.Misses - sn.l1m[i]
		instr += c.dInstr[i]
	}
	for _, g := range s.Col.DoneSince(sn.mark) {
		c.recs = append(c.recs, *g)
	}
	for ch, p := range s.parts {
		c.dDRAM[ch] = subDRAM(p.ctl.Chan.Stats, sn.dram[ch])
		c.dCtl[ch] = subCtl(p.ctl.Stats, sn.ctl[ch])
		if p.ws != nil {
			c.dWS[ch] = subWS(p.ws.Stats, sn.ws[ch])
		}
		c.dL2h[ch] = p.l2.Hits - sn.l2h[ch]
		c.dL2m[ch] = p.l2.Misses - sn.l2m[ch]
	}
	if winLen > 0 {
		c.winIPC = float64(instr) / float64(winLen)
	}
	var gaps []float64
	for i := range c.recs {
		if g := &c.recs[i]; g.DRAMDone >= 2 {
			gaps = append(gaps, float64(g.LastDRAMDone-g.FirstDRAMDone))
		}
	}
	c.winP50 = stats.PercentileOf(gaps, 50)
	c.winP90 = stats.PercentileOf(gaps, 90)
	c.winP99 = stats.PercentileOf(gaps, 99)
	if os.Getenv("DRAMLAT_SAMPLED_DEBUG") != "" {
		fmt.Printf("  [cal] win=%d instr=%d ipc=%.3f recs=%d p50=%.0f p90=%.0f p99=%.0f\n",
			winLen, instr, c.winIPC, len(c.recs), c.winP50, c.winP90, c.winP99)
	}
	return c
}

func subDRAM(a, b dram.Stats) dram.Stats {
	a.Refreshes -= b.Refreshes
	a.ACTs -= b.ACTs
	a.PREs -= b.PREs
	a.RDBursts -= b.RDBursts
	a.WRBursts -= b.WRBursts
	a.HitTxns -= b.HitTxns
	a.MissTxns -= b.MissTxns
	a.ReadTxns -= b.ReadTxns
	a.WriteTxns -= b.WriteTxns
	a.BusyTicks -= b.BusyTicks
	return a
}

func subCtl(a, b memctrl.Stats) memctrl.Stats {
	a.ReadsAccepted -= b.ReadsAccepted
	a.WritesAccepted -= b.WritesAccepted
	a.ReadsDone -= b.ReadsDone
	a.WritesDone -= b.WritesDone
	a.DrainsStarted -= b.DrainsStarted
	a.DrainTicks -= b.DrainTicks
	a.ReadQFullRejects -= b.ReadQFullRejects
	a.WriteQFullRejects -= b.WriteQFullRejects
	a.GroupCompleteSignals -= b.GroupCompleteSignals
	return a
}

func subWS(a, b core.Stats) core.Stats {
	a.GroupsSelected -= b.GroupsSelected
	a.IncompleteFallbacks -= b.IncompleteFallbacks
	a.AgePromotions -= b.AgePromotions
	a.MERBFillers -= b.MERBFillers
	a.OrphanRideAlongs -= b.OrphanRideAlongs
	a.UnitRushDispatches -= b.UnitRushDispatches
	a.CoordSent -= b.CoordSent
	a.CoordApplied -= b.CoordApplied
	a.CoordSoleBlocker -= b.CoordSoleBlocker
	a.SharedDemands -= b.SharedDemands
	a.DrainStalledGroups -= b.DrainStalledGroups
	a.DrainStalledUnitOrOrphan -= b.DrainStalledUnitOrOrphan
	return a
}

// fastForward advances the quiescent system F wall cycles using the
// window model, injecting H >= F cycles' worth of modeled activity:
// H = F + drain length, so the jump also stands in for the issue the
// frozen drain phase suppressed — without the compensation every
// region would add dead cycles the exact run does not have, biasing
// IPC low. Per-SM instruction budgets advance at the calibrated
// rates; synthetic warp-group records are resampled from the window's
// completed groups (timestamps shifted into the modeled interval);
// every per-channel counter delta scales by H/W. drift != 1 is the
// chaos injection biasing the model for AccuracyError tests. Returns
// the estimated completion tick if every warp retired mid-jump, else
// -1.
func (e *sampledState) fastForward(cal calibration, H, F, drainStart int64, rng *stats.Stream, drift float64) int64 {
	s := e.s
	f := float64(H) / float64(cal.winLen)
	ffStart := e.now
	end := ffStart + F

	// Restart-phase jitter horizon: twice the window's mean warp-group
	// round-trip. Spreading restarts over a latency-scale horizon
	// re-seeds the warp-phase dispersion the drain collapsed — the slow
	// mode behind steady-state divergence gaps (see SM.FastForward).
	var latSum, latN int64
	for i := range cal.recs {
		if g := &cal.recs[i]; g.LastResp >= 0 && g.LastResp > g.IssueTick {
			latSum += g.LastResp - g.IssueTick
			latN++
		}
	}
	var spread int64
	if latN > 0 {
		spread = 2 * latSum / latN
	}
	if spread > F/2 {
		spread = F / 2
	}
	var jitter func() int64
	if spread > 0 {
		jitter = func() int64 { return int64(rng.Float64() * float64(spread)) }
	}

	// Warp progress: budgets from the calibrated per-SM issue rates.
	allDoneAt := int64(-1)
	for i, c := range s.sms {
		if c.Done() {
			continue
		}
		budget := scaleCount(cal.dInstr[i], f*drift)
		issued := c.FastForward(budget, F, end, drainStart, jitter)
		if c.Done() {
			// Finished mid-jump: estimate when, proportional to the
			// budget fraction it consumed.
			at := ffStart + 1
			if budget > 0 {
				at = ffStart + scaleCount(F, float64(issued)/float64(budget))
				if at <= ffStart {
					at = ffStart + 1
				}
			}
			if at > allDoneAt {
				allDoneAt = at
			}
		}
		c.L1.Hits += scaleCount(cal.dL1h[i], f)
		c.L1.Misses += scaleCount(cal.dL1m[i], f)
	}

	// Memory behavior: resample whole warp-group records from the
	// window into the modeled interval. Cloning preserves the joint
	// distribution of lines, channels touched, DRAM window and response
	// window that Summarize and the gap percentiles are built from.
	if n := len(cal.recs); n > 0 {
		for k := scaleCount(int64(n), f); k > 0; k-- {
			g := cal.recs[rng.Intn(n)]
			shift := ffStart + int64(rng.Float64()*float64(F)) - g.IssueTick
			g.IssueTick += shift
			if drift != 1 {
				g.LastDRAMDone = g.FirstDRAMDone + int64(drift*float64(g.LastDRAMDone-g.FirstDRAMDone))
				g.LastResp = g.FirstResp + int64(drift*float64(g.LastResp-g.FirstResp))
			}
			if g.FirstDRAMDone >= 0 {
				g.FirstDRAMDone += shift
				g.LastDRAMDone += shift
			}
			if g.FirstResp >= 0 {
				g.FirstResp += shift
				g.LastResp += shift
			}
			s.Col.AddSynthetic(g)
		}
	}
	s.Col.AddModeled(
		scaleCount(cal.dLoads, f), scaleCount(cal.dMulti, f), scaleCount(cal.dLines, f),
		scaleCount(cal.dStores, f), scaleCount(cal.dStLine, f))

	// Channel-side counters: scale the window deltas.
	for ch, p := range s.parts {
		d := &cal.dDRAM[ch]
		st := &p.ctl.Chan.Stats
		st.ACTs += scaleCount(d.ACTs, f)
		st.PREs += scaleCount(d.PREs, f)
		st.RDBursts += scaleCount(d.RDBursts, f)
		st.WRBursts += scaleCount(d.WRBursts, f)
		st.HitTxns += scaleCount(d.HitTxns, f)
		st.MissTxns += scaleCount(d.MissTxns, f)
		st.ReadTxns += scaleCount(d.ReadTxns, f)
		st.WriteTxns += scaleCount(d.WriteTxns, f)
		st.BusyTicks += scaleCount(d.BusyTicks, f)
		dc := &cal.dCtl[ch]
		cs := &p.ctl.Stats
		cs.ReadsAccepted += scaleCount(dc.ReadsAccepted, f)
		cs.WritesAccepted += scaleCount(dc.WritesAccepted, f)
		cs.ReadsDone += scaleCount(dc.ReadsDone, f)
		cs.WritesDone += scaleCount(dc.WritesDone, f)
		cs.DrainsStarted += scaleCount(dc.DrainsStarted, f)
		cs.DrainTicks += scaleCount(dc.DrainTicks, f)
		cs.GroupCompleteSignals += scaleCount(dc.GroupCompleteSignals, f)
		if p.ws != nil {
			dw := &cal.dWS[ch]
			wsst := &p.ws.Stats
			wsst.GroupsSelected += scaleCount(dw.GroupsSelected, f)
			wsst.IncompleteFallbacks += scaleCount(dw.IncompleteFallbacks, f)
			wsst.AgePromotions += scaleCount(dw.AgePromotions, f)
			wsst.MERBFillers += scaleCount(dw.MERBFillers, f)
			wsst.OrphanRideAlongs += scaleCount(dw.OrphanRideAlongs, f)
			wsst.UnitRushDispatches += scaleCount(dw.UnitRushDispatches, f)
			wsst.CoordSent += scaleCount(dw.CoordSent, f)
			wsst.CoordApplied += scaleCount(dw.CoordApplied, f)
			wsst.CoordSoleBlocker += scaleCount(dw.CoordSoleBlocker, f)
			wsst.SharedDemands += scaleCount(dw.SharedDemands, f)
			wsst.DrainStalledGroups += scaleCount(dw.DrainStalledGroups, f)
			wsst.DrainStalledUnitOrOrphan += scaleCount(dw.DrainStalledUnitOrOrphan, f)
		}
		p.l2.Hits += scaleCount(cal.dL2h[ch], f)
		p.l2.Misses += scaleCount(cal.dL2m[ch], f)
	}

	e.now = end
	s.now = end
	for i, c := range s.sms {
		// The jump is accounted; the first post-jump tick must not
		// CatchUp across it.
		e.smLast[i] = end - 1
		e.smWake[i] = end
		if !e.smDone[i] && c.Done() {
			e.smDone[i] = true
			e.live--
		}
	}
	for ch := range s.parts {
		e.pWake[ch] = end
	}
	e.smBase, e.prtBase = end, end
	if e.nextSample >= 0 && e.nextSample <= end {
		e.nextSample = end + s.Tel.Sampler.Every
	}
	if e.live == 0 {
		if allDoneAt < 0 || allDoneAt > end {
			allDoneAt = end
		}
		return allDoneAt
	}
	return -1
}

// freeze gates or releases every SM's issue stage and forces the
// stepping loop to re-ask each live SM for a wakeup under the new
// regime.
func (e *sampledState) freeze(v bool) {
	for i, c := range e.s.sms {
		c.SetFrozen(v)
		if !e.smDone[i] {
			e.smWake[i] = e.now
		}
	}
	e.smBase = e.now
}

// emitWindow records a sampled-engine phase boundary in the trace.
func (e *sampledState) emitWindow(phase, region int) {
	if t := e.s.Tel; t != nil && t.Tracer != nil {
		t.Tracer.Window(e.now, phase, region)
	}
}

// runSampled is the interval-sampling engine loop; see the package
// comment at the top of this file for the region structure.
func (s *System) runSampled() (Results, error) {
	prm := s.Cfg.Sampled.WithDefaults()
	drift := s.Cfg.Faults.DriftFactor()
	e := newSampledState(s)
	var winIPC, winP50, winP90, winP99 []float64
	var detailed, modeled int64
	windows := 0

	// Settle prefix: run detailed past the cold-start transient before
	// the first measurement window. A machine started cold (or drained)
	// takes tens of thousands of cycles to reach steady-state warp-phase
	// dispersion, and the first region's model covers a far larger share
	// of the run than the exact run's own transient does — calibrating
	// it on a cold machine systematically shortens the modeled
	// divergence-gap distribution.
	if settle := prm.WarmupCycles + prm.WindowCycles; settle > 0 && e.live > 0 {
		e.emitWindow(telemetry.WindowWarmup, 0)
		t0 := e.now
		e.stepUntil(t0+settle, false)
		detailed += e.now - t0
	}

	for region := 0; e.live > 0 && e.stall == nil && e.now < s.Cfg.MaxTicks; region++ {
		// Measurement window.
		e.emitWindow(telemetry.WindowMeasure, region)
		winStart := e.now
		sn := s.snapshotCounters()
		e.stepUntil(winStart+prm.WindowCycles, false)
		winLen := e.now - winStart
		detailed += winLen
		if e.live == 0 || e.stall != nil || e.now >= s.Cfg.MaxTicks {
			break
		}

		// Drain to quiescence with issue frozen. The memory controller's
		// idle-drain trigger flushes the write queues once reads stop
		// arriving, so a frozen system converges without flush hooks.
		e.emitWindow(telemetry.WindowDrain, region)
		drainStart := e.now
		e.freeze(true)
		e.stepUntil(drainStart+maxDrainFactor*prm.WindowCycles, true)
		D := e.now - drainStart
		detailed += D
		if e.stall != nil {
			e.freeze(false)
			break
		}
		s.catchUpSMs(e.now-1, e.smLast)
		// Calibrate AFTER the drain: frozen SMs issue nothing, so the
		// instruction/load deltas still cover exactly the window, while
		// the group records and DRAM/L2 deltas include the window's
		// in-flight tail — without it, groups slow enough to outlive the
		// window (precisely the long-divergence-gap ones) would never
		// enter the calibration sample and the modeled gap distribution
		// would be biased short.
		cal := s.calibrate(sn, winLen)
		windows++
		winIPC = append(winIPC, cal.winIPC)
		winP50 = append(winP50, cal.winP50)
		winP90 = append(winP90, cal.winP90)
		winP99 = append(winP99, cal.winP99)
		F := prm.FastForwardCycles
		if e.now+F > s.Cfg.MaxTicks {
			F = s.Cfg.MaxTicks - e.now
		}
		if !s.quiescent() || F <= 0 || cal.winLen <= 0 {
			// No jump point: resume detailed and try again next region.
			e.freeze(false)
			continue
		}

		// Fast-forward.
		e.emitWindow(telemetry.WindowFastForward, region)
		rng := stats.NewStream(prm.Key, prm.Seed, region)
		doneAt := e.fastForward(cal, D+F, F, drainStart, rng, drift)
		modeled += F
		e.freeze(false)
		if doneAt >= 0 {
			e.doneTick = doneAt
			break
		}

		// Warm-up (detailed, excluded from the next calibration by
		// virtue of the next window snapshotting after it).
		e.emitWindow(telemetry.WindowWarmup, region)
		wuStart := e.now
		e.stepUntil(wuStart+prm.WarmupCycles, false)
		detailed += e.now - wuStart
	}

	if e.stall != nil {
		s.catchUpSMs(s.now, e.smLast)
	} else if e.doneTick < 0 && e.now >= s.Cfg.MaxTicks {
		s.now = s.Cfg.MaxTicks
		s.catchUpSMs(s.Cfg.MaxTicks-1, e.smLast)
	} else if e.doneTick >= 0 {
		s.now = e.doneTick
	}
	if s.Tel != nil {
		s.flushTelemetry(e.lastSample)
	}
	res := s.results(e.doneTick)
	res.Approximate = true
	_, ipcErr := stats.MeanCI95(winIPC)
	_, p50Err := stats.MeanCI95(winP50)
	_, p90Err := stats.MeanCI95(winP90)
	_, p99Err := stats.MeanCI95(winP99)
	res.Sampling = &SamplingStats{
		Windows:       windows,
		DetailedTicks: detailed,
		ModeledTicks:  modeled,
		IPCErr:        ipcErr,
		GapP50Err:     p50Err,
		GapP90Err:     p90Err,
		GapP99Err:     p99Err,
	}
	stall := e.stall
	if e.doneTick < 0 && stall == nil {
		stall = s.stallError(guard.StallCycleBudget, s.now, s.Cfg.MaxTicks)
	}
	if stall != nil {
		return res, stall
	}
	return res, nil
}
