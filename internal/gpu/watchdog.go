package gpu

import (
	"time"

	"dramlat/internal/guard"
)

// progressSig is the watchdog's forward-progress fingerprint: monotone
// counters that move whenever an instruction issues, a request enters a
// memory controller, or a transaction's data transfer completes. If the
// whole vector is unchanged across a window, nothing retired and no
// warp unblocked in it.
type progressSig struct {
	instr    int64
	accepted int64
	done     int64
}

func (s *System) progress() progressSig {
	var p progressSig
	for _, c := range s.sms {
		p.instr += c.InstrIssued
	}
	for _, pt := range s.parts {
		st := pt.ctl.Stats
		p.accepted += st.ReadsAccepted + st.WritesAccepted
		p.done += st.ReadsDone + st.WritesDone
	}
	return p
}

// watchdogCheckEvery is the default cadence (in sim cycles) at which
// the watchdog samples the progress vector, polls the Stop channel and
// compares the wall clock to the deadline. Fine enough that a deadline
// or cancellation is honored promptly even under a dense spin, coarse
// enough that the scan cost vanishes (one O(SMs+channels) pass per 64K
// cycles). A no-progress budget tighter than the default cadence pulls
// the cadence down to budget/4 (floored) so small budgets still trip
// within ~1.25x their nominal window.
const (
	watchdogCheckEvery = 1 << 16
	watchdogCheckFloor = 1 << 10
)

// watchdog is the per-run liveness checker shared by both engines.
type watchdog struct {
	sys      *System
	budget   int64 // no-progress trip threshold (cycles); <0 disables
	deadline time.Time
	stop     <-chan struct{}

	every      int64 // check cadence (cycles)
	next       int64 // next sim cycle to check at
	last       progressSig
	lastChange int64 // sim cycle the progress vector last moved
}

// newWatchdog builds the run's watchdog; it returns a watchdog even
// when the no-progress check is disabled so deadline/stop polling and
// the MaxTicks stall dump still work.
func (s *System) newWatchdog() *watchdog {
	budget := s.Cfg.StallCycles
	if budget == 0 {
		budget = DefaultStallCycles
	}
	every := int64(watchdogCheckEvery)
	if budget > 0 && budget/4 < every {
		every = budget / 4
		if every < watchdogCheckFloor {
			every = watchdogCheckFloor
		}
	}
	return &watchdog{
		sys:      s,
		budget:   budget,
		deadline: s.Cfg.Deadline,
		stop:     s.Cfg.Stop,
		every:    every,
		next:     every,
		last:     s.progress(),
	}
}

// check runs one watchdog pass at sim cycle now and returns the
// StallError to abort with, or nil. The caller invokes it only when
// now >= wd.next; checks are pure reads, so a run that never stalls is
// byte-identical with and without the watchdog.
func (wd *watchdog) check(now int64) *guard.StallError {
	wd.next = now + wd.every
	if wd.stop != nil {
		select {
		case <-wd.stop:
			return wd.sys.stallError(guard.StallStopped, now, 0)
		default:
		}
	}
	if !wd.deadline.IsZero() && time.Now().After(wd.deadline) {
		return wd.sys.stallError(guard.StallDeadline, now, 0)
	}
	if wd.budget < 0 {
		return nil
	}
	if p := wd.sys.progress(); p != wd.last {
		wd.last = p
		wd.lastChange = now
		return nil
	}
	if now-wd.lastChange >= wd.budget {
		return wd.sys.stallError(guard.StallNoProgress, now, wd.budget)
	}
	return nil
}

// stallError assembles a StallError with the full diagnostic dump.
func (s *System) stallError(kind string, now, budget int64) *guard.StallError {
	return &guard.StallError{Kind: kind, Cycle: now, Budget: budget, Dump: s.stallDump(now)}
}

// stallDump snapshots the stalled system: the per-SM blocked-warp
// table, per-channel queue occupancies, per-bank DRAM state and the
// pending wakeups. NextWakeup values are best-effort — outside the
// engines' right-after-Tick contract they may be stale bounds — but the
// occupancy and blocked-warp columns are exact.
func (s *System) stallDump(now int64) guard.StallDump {
	d := guard.StallDump{
		Cycle:        now,
		Shards:       append([]guard.ShardState(nil), s.shards...),
		XbarReqWake:  s.x.MinReqWake(),
		XbarRespWake: s.x.MinRespWake(),
	}
	for i := range d.Shards {
		sh := &d.Shards[i]
		if sh.Kind != "sm" {
			continue
		}
		sh.LiveWarps = 0
		for id := sh.First; id <= sh.Last && id < len(s.sms); id++ {
			for _, w := range s.sms[id].Warps() {
				if !w.Done() {
					sh.LiveWarps++
				}
			}
		}
	}
	for i, c := range s.sms {
		st := guard.SMState{ID: i, ReplayQueue: c.ReplayLen(), NextWakeup: c.NextWakeup(now)}
		for _, w := range c.Warps() {
			if w.Done() {
				continue
			}
			st.LiveWarps++
			if w.Blocked() {
				st.Blocked++
			}
		}
		d.SMs = append(d.SMs, st)
	}
	for ch, p := range s.parts {
		cs := guard.ChannelState{
			Channel:      ch,
			ReadQ:        p.ctl.ReadOccupancy(),
			WriteQ:       p.ctl.WriteOccupancy(),
			SchedPending: p.ctl.Sched.Pending(),
			Draining:     p.ctl.Draining(),
			L2Pipe:       len(p.pipe),
			EvictQ:       len(p.evictQ),
			NextWakeup:   p.NextWakeup(now),
		}
		if s.net != nil {
			cs.CoordPending = s.net.PendingFor(ch)
		}
		for b := 0; b < p.ctl.Chan.NumBanks; b++ {
			cs.Banks = append(cs.Banks, guard.BankState{
				Bank:       b,
				QueuedTxns: p.ctl.Chan.QueuedTxns(b),
				OpenRow:    p.ctl.Chan.OpenRow(b),
				SchedRow:   p.ctl.Chan.SchedRow(b),
			})
		}
		d.Channels = append(d.Channels, cs)
	}
	return d
}
