package gpu

import (
	"runtime"
	"sync/atomic"

	"dramlat/internal/guard"
	"dramlat/internal/guard/chaos"
	"dramlat/internal/telemetry"
)

// This file is the epoch-parallel engine (Cfg.Engine == EngineParallel).
//
// runParallel mirrors runEvent statement for statement — same gates, same
// wakeup folds, same jump computation, same truncation tails — but executes
// each visited tick in two parallel phases:
//
//	SM phase:        the SMs are split into contiguous shards, one per
//	                 worker. Within a tick, SM ticks only interact through
//	                 the crossbar, whose SM-side operations (Inject,
//	                 PopResponse) are single-writer per (sm,part) FIFO with
//	                 commutative atomics for the shared bookkeeping.
//	barrier:         the coordinator absorbs each SM's staged collector and
//	                 tracer children in ascending SM order (reproducing the
//	                 serial call sequence), folds the per-shard wakeup
//	                 minima, and restores the crossbar's global minima.
//	partition phase: the memory partitions are split the same way (except
//	                 under the atlas scheduler, whose shared quantum state
//	                 forces one sequential domain). Partition ticks only
//	                 interact through the crossbar response path and the
//	                 coordination network, which stages broadcasts per
//	                 source.
//	barrier:         the coordinator flushes staged coordination messages
//	                 in ascending source order, absorbs the partitions'
//	                 staged children in ascending channel order, restores
//	                 the crossbar minima and recomputes the partition base.
//
// Because every visited tick executes exactly the serial per-tick code with
// the same component order effects on every order-sensitive shared object,
// the engine is byte-identical to runEvent (and hence runDense) by the same
// induction over visited ticks — see TestParallelMatchesEvent.

// shardRange is a contiguous inclusive component index range; empty when
// last < first.
type shardRange struct{ first, last int }

// splitRange slices [0,n) into `shards` contiguous near-equal ranges.
func splitRange(n, shards int) []shardRange {
	out := make([]shardRange, shards)
	for w := 0; w < shards; w++ {
		out[w] = shardRange{w * n / shards, (w+1)*n/shards - 1}
	}
	return out
}

// poolSpins bounds the busy-wait at the phase barriers before yielding the
// OS thread. Phases are microseconds long, so spinning briefly beats a
// futex sleep; the Gosched fallback keeps an oversubscribed machine live.
const poolSpins = 2000

// phasePool is the engine's worker pool. The coordinator doubles as worker
// 0; workers 1..n-1 park in a spin loop on the epoch counter. One epoch =
// one phase: the coordinator publishes the task, bumps seq (the atomic op
// orders the publish), runs its own shard, then waits for the done count.
// Worker panics are caught into per-worker slots and re-raised by the
// coordinator in worker order, so a chaos-injected panic surfaces
// deterministically no matter which goroutine hit it.
type phasePool struct {
	n       int
	task    func(w int)
	seq     int64
	done    int64
	stopped int64
	panics  []any
}

func newPhasePool(n int) *phasePool {
	p := &phasePool{n: n, panics: make([]any, n)}
	for w := 1; w < n; w++ {
		go p.worker(w)
	}
	return p
}

func (p *phasePool) worker(w int) {
	last := int64(0)
	for {
		spins := 0
		for atomic.LoadInt64(&p.seq) == last {
			if spins++; spins > poolSpins {
				runtime.Gosched()
			}
		}
		last = atomic.LoadInt64(&p.seq)
		if atomic.LoadInt64(&p.stopped) != 0 {
			return
		}
		p.invoke(w)
		atomic.AddInt64(&p.done, 1)
	}
}

// invoke runs the published task for worker w, catching a panic into the
// worker's slot so the barrier still completes.
func (p *phasePool) invoke(w int) {
	defer func() {
		if r := recover(); r != nil {
			p.panics[w] = r
		}
	}()
	p.task(w)
}

// run executes task on every worker and returns after all have finished.
// With one worker it degenerates to a plain call (panics propagate
// directly, exactly like the serial engines).
func (p *phasePool) run(task func(int)) {
	if p.n == 1 {
		task(0)
		return
	}
	p.task = task
	atomic.AddInt64(&p.seq, 1)
	p.invoke(0)
	spins := 0
	for atomic.LoadInt64(&p.done) != int64(p.n-1) {
		if spins++; spins > poolSpins {
			runtime.Gosched()
		}
	}
	atomic.StoreInt64(&p.done, 0)
	for w := 0; w < p.n; w++ {
		if r := p.panics[w]; r != nil {
			p.panics[w] = nil
			panic(r)
		}
	}
}

// close releases the parked workers; the pool is unusable afterwards.
func (p *phasePool) close() {
	if p.n == 1 {
		return
	}
	atomic.StoreInt64(&p.stopped, 1)
	atomic.AddInt64(&p.seq, 1)
}

// parRun is the per-run state of the parallel engine. The per-component
// slices (smWake, smLast, smDone, pWake) are written only by the worker
// owning that component's shard during a phase and read by the coordinator
// between phases; the barrier's atomic handshake orders both directions.
type parRun struct {
	s    *System
	n    int
	pool *phasePool

	smShards   []shardRange
	partShards []shardRange
	smRow      []int // per worker: index into s.shards, -1 when empty
	partRow    []int

	now int64 // the visited tick, published before each phase

	smWake []int64
	smLast []int64
	smDone []bool
	pWake  []int64

	smMin     []int64 // per-worker fold of min smWake over the shard
	smNewDone []int   // per-worker count of SMs retired this phase
}

// smPhase is the per-worker SM phase body: the exact SM block of runEvent
// restricted to the worker's shard.
func (r *parRun) smPhase(w int) {
	s := r.s
	now := r.now
	f := s.Cfg.Faults
	sh := r.smShards[w]
	min := int64(1) << 62
	newDone := 0
	var ticked int64
	for i := sh.first; i <= sh.last; i++ {
		c := s.sms[i]
		eff := r.smWake[i]
		if rw := s.x.RespWake(i); rw < eff {
			eff = rw
		}
		if eff <= now && !f.Asleep(chaos.TargetSM, i, now) {
			if gap := now - 1 - r.smLast[i]; gap > 0 {
				c.CatchUp(gap)
			}
			ticked++
			c.Tick(now, s.x.PopResponse(i, now))
			r.smLast[i] = now
			r.smWake[i] = c.NextWakeup(now)
			if !r.smDone[i] && c.Done() {
				r.smDone[i] = true
				newDone++
			}
		}
		if r.smWake[i] < min {
			min = r.smWake[i]
		}
	}
	r.smMin[w] = min
	r.smNewDone[w] = newDone
	if row := r.smRow[w]; row >= 0 {
		s.shards[row].LastTick = now
		s.shards[row].Ticked += ticked
	}
}

// partPhase is the per-worker partition phase body: the exact partition
// block of runEvent restricted to the worker's channel range.
func (r *parRun) partPhase(w int) {
	s := r.s
	now := r.now
	f := s.Cfg.Faults
	sh := r.partShards[w]
	var ticked int64
	for ch := sh.first; ch <= sh.last; ch++ {
		p := s.parts[ch]
		eff := r.pWake[ch]
		if rw := s.x.ReqWake(ch); rw < eff {
			eff = rw
		}
		if s.net != nil {
			if nd := s.net.NextDue(ch); nd < eff {
				eff = nd
			}
		}
		if eff > now {
			continue
		}
		if f.Asleep(chaos.TargetPartition, ch, now) {
			continue
		}
		ticked++
		p.Tick(now)
		r.pWake[ch] = p.NextWakeup(now)
	}
	if row := r.partRow[w]; row >= 0 {
		s.shards[row].LastTick = now
		s.shards[row].Ticked += ticked
	}
}

// runParallel is the epoch-parallel engine loop. See the file comment for
// the phase structure and the byte-identity argument.
func (s *System) runParallel() (Results, error) {
	nSM := len(s.sms)
	n := s.Cfg.Shards
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
		// Workers beyond the physical cores can never run simultaneously;
		// they only turn the spin barriers into OS scheduler thrash (two
		// orders of magnitude on a single-core host). An explicit Shards
		// setting is honored as-is — oversubscription is still correct,
		// just slow (see TestParallelShardCountInvariance).
		if c := runtime.NumCPU(); n > c {
			n = c
		}
	}
	if n > nSM {
		n = nSM
	}
	if n < 1 {
		n = 1
	}

	r := &parRun{s: s, n: n}
	r.smShards = splitRange(nSM, n)
	if s.atlas != nil {
		// ATLASState is shared across controllers and mutated on every
		// controller tick in channel order; one sequential domain keeps
		// that order serial-identical.
		r.partShards = make([]shardRange, n)
		for w := range r.partShards {
			r.partShards[w] = shardRange{0, -1}
		}
		r.partShards[0] = shardRange{0, len(s.parts) - 1}
	} else {
		r.partShards = splitRange(len(s.parts), n)
	}
	s.shards = s.shards[:0]
	r.smRow = make([]int, n)
	r.partRow = make([]int, n)
	for w := 0; w < n; w++ {
		r.smRow[w] = -1
		if sh := r.smShards[w]; sh.last >= sh.first {
			r.smRow[w] = len(s.shards)
			s.shards = append(s.shards, guard.ShardState{ID: w, Kind: "sm", First: sh.first, Last: sh.last, LastTick: -1})
		}
	}
	for w := 0; w < n; w++ {
		r.partRow[w] = -1
		if sh := r.partShards[w]; sh.last >= sh.first {
			r.partRow[w] = len(s.shards)
			s.shards = append(s.shards, guard.ShardState{ID: w, Kind: "part", First: sh.first, Last: sh.last, LastTick: -1})
		}
	}

	r.pool = newPhasePool(n)
	defer r.pool.close()

	doneTick := int64(-1)
	nextSample := int64(-1)
	lastSample := int64(-1)
	var tracer *telemetry.Tracer
	if s.Tel != nil {
		tracer = s.Tel.Tracer
		if s.Tel.Sampler != nil {
			nextSample = s.Tel.Sampler.Every
		}
	}
	r.smWake = make([]int64, nSM)
	r.smLast = make([]int64, nSM)
	r.smDone = make([]bool, nSM)
	r.pWake = make([]int64, len(s.parts))
	r.smMin = make([]int64, n)
	r.smNewDone = make([]int, n)
	live := 0
	for i, c := range s.sms {
		r.smLast[i] = -1
		if c.Done() {
			r.smDone[i] = true
		} else {
			live++
		}
	}
	const bigTick = int64(1) << 62
	smBase, partBase := int64(0), int64(0)
	now := int64(0)
	wd := s.newWatchdog()
	f := s.Cfg.Faults
	var stall *guard.StallError
	smTask, partTask := r.smPhase, r.partPhase
	for now < s.Cfg.MaxTicks {
		s.now = now
		f.CheckPanic(now)
		s.Engine.VisitedTicks++
		if now >= smBase || now >= s.x.MinRespWake() {
			r.now = now
			r.pool.run(smTask)
			smBase = bigTick
			for w := 0; w < n; w++ {
				if r.smMin[w] < smBase {
					smBase = r.smMin[w]
				}
				live -= r.smNewDone[w]
			}
			for _, c := range s.smCols {
				s.Col.Absorb(c)
			}
			for _, t := range s.smTracers {
				tracer.Absorb(t)
			}
			s.x.RecomputeMins()
		}
		if now >= partBase || now >= s.x.MinReqWake() {
			r.now = now
			r.pool.run(partTask)
			if s.net != nil {
				s.net.Flush()
			}
			for _, c := range s.partCols {
				s.Col.Absorb(c)
			}
			for _, t := range s.partTracers {
				tracer.Absorb(t)
			}
			s.x.RecomputeMins()
			partBase = bigTick
			for ch := range s.parts {
				b := r.pWake[ch]
				if s.net != nil {
					if nd := s.net.NextDue(ch); nd < b {
						b = nd
					}
				}
				if b < partBase {
					partBase = b
				}
			}
		}
		if now == nextSample {
			s.catchUpSMs(now, r.smLast)
			s.sample(now)
			lastSample = now
			nextSample = now + s.Tel.Sampler.Every
		}
		if live == 0 {
			doneTick = now
			break
		}
		if now >= wd.next {
			if stall = wd.check(now); stall != nil {
				break
			}
		}
		next := s.Cfg.MaxTicks
		if smBase < next {
			next = smBase
		}
		if rw := s.x.MinRespWake(); rw < next {
			next = rw
		}
		if partBase < next {
			next = partBase
		}
		if rw := s.x.MinReqWake(); rw < next {
			next = rw
		}
		if nextSample >= 0 && nextSample < next {
			next = nextSample
		}
		if wd.next < next {
			next = wd.next
		}
		if next <= now {
			next = now + 1
		}
		now = next
	}
	if stall != nil {
		s.catchUpSMs(s.now, r.smLast)
	} else if doneTick < 0 {
		s.now = s.Cfg.MaxTicks
		s.catchUpSMs(s.Cfg.MaxTicks-1, r.smLast)
	} else {
		s.now = doneTick
	}
	if s.Tel != nil {
		s.flushTelemetry(lastSample)
		// The flush emitted span-close events into the staged partition
		// tracers; drain them in channel order like a phase barrier would.
		for _, t := range s.partTracers {
			tracer.Absorb(t)
		}
	}
	for _, sh := range s.shards {
		if sh.Kind == "sm" {
			s.Engine.SMTicks += sh.Ticked
		} else {
			s.Engine.PartTicks += sh.Ticked
		}
	}
	res := s.results(doneTick)
	if doneTick < 0 && stall == nil {
		stall = s.stallError(guard.StallCycleBudget, s.now, s.Cfg.MaxTicks)
	}
	if stall != nil {
		return res, stall
	}
	return res, nil
}
