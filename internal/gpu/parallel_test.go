package gpu

import (
	"sync/atomic"
	"testing"
)

func TestSplitRange(t *testing.T) {
	for n := 1; n <= 130; n++ {
		for shards := 1; shards <= 16; shards++ {
			rs := splitRange(n, shards)
			if len(rs) != shards {
				t.Fatalf("n=%d shards=%d: got %d ranges", n, shards, len(rs))
			}
			covered := 0
			next := 0
			for _, r := range rs {
				if r.last < r.first {
					continue // empty shard
				}
				if r.first != next {
					t.Fatalf("n=%d shards=%d: gap before %d (range %+v)", n, shards, next, r)
				}
				covered += r.last - r.first + 1
				next = r.last + 1
			}
			if covered != n || next != n {
				t.Fatalf("n=%d shards=%d: covered %d ranges=%v", n, shards, covered, rs)
			}
		}
	}
}

// The pool must run the task once per worker per epoch, across epochs.
func TestPhasePoolRunsEveryWorker(t *testing.T) {
	const n = 4
	p := newPhasePool(n)
	defer p.close()
	var hits [n]int64
	task := func(w int) { atomic.AddInt64(&hits[w], 1) }
	for epoch := 0; epoch < 100; epoch++ {
		p.run(task)
	}
	for w := 0; w < n; w++ {
		if got := atomic.LoadInt64(&hits[w]); got != 100 {
			t.Fatalf("worker %d ran %d times, want 100", w, got)
		}
	}
}

// A panic on a non-coordinator worker must surface from run() on the
// coordinator goroutine — and when several workers panic in the same
// epoch, the lowest-index one must win deterministically.
func TestPhasePoolWorkerPanicPropagates(t *testing.T) {
	p := newPhasePool(4)
	defer p.close()

	catch := func(task func(int)) (r any) {
		defer func() { r = recover() }()
		p.run(task)
		return nil
	}

	if r := catch(func(w int) {
		if w == 2 {
			panic("boom-2")
		}
	}); r != "boom-2" {
		t.Fatalf("worker panic lost: got %v", r)
	}

	// Pool must remain usable after a recovered panic.
	if r := catch(func(w int) {}); r != nil {
		t.Fatalf("stale panic resurfaced: %v", r)
	}

	if r := catch(func(w int) {
		if w == 1 || w == 3 {
			panic(w)
		}
	}); r != 1 {
		t.Fatalf("multi-panic not resolved to lowest worker: got %v", r)
	}
}

// n=1 degenerates to a direct call: panics propagate unwrapped and no
// goroutines are involved.
func TestPhasePoolSingleWorker(t *testing.T) {
	p := newPhasePool(1)
	defer p.close()
	ran := false
	p.run(func(w int) {
		if w != 0 {
			t.Fatalf("worker id %d", w)
		}
		ran = true
	})
	if !ran {
		t.Fatal("task did not run")
	}
	defer func() {
		if r := recover(); r != "direct" {
			t.Fatalf("got %v", r)
		}
	}()
	p.run(func(int) { panic("direct") })
}
