// Package guard is the simulation-hardening vocabulary shared by the
// façade, the GPU engines and the sweep stack: structured field-level
// validation errors, the RunError a recovered panic is converted into,
// the StallError the liveness watchdog trips with, and the diagnostic
// StallDump that replaces a silent hang with an actionable snapshot.
//
// The package sits below every simulator package (it imports nothing
// from the repo), so internal/dram, internal/memctrl and internal/gpu
// can all speak the same failure types without cycles; the public
// façade re-exports them as dramlat.RunError / dramlat.StallError /
// dramlat.ValidationError for errors.As.
package guard

import (
	"fmt"
	"math"
	"runtime/debug"
	"strings"
)

// Run phases recorded in RunError.Phase: where in the façade pipeline a
// panic was recovered.
const (
	PhaseValidate = "validate" // spec/config validation
	PhaseBuild    = "build"    // workload generation + system assembly
	PhaseRun      = "run"      // the simulation loop itself
)

// FieldError reports one invalid configuration field.
type FieldError struct {
	Field string // the Config/RunSpec field name, e.g. "NumBanks"
	Value any    // the offending value
	Msg   string // what the constraint is
}

func (e FieldError) Error() string {
	return fmt.Sprintf("%s = %v: %s", e.Field, e.Value, e.Msg)
}

// ValidationError aggregates every field-level problem found in one
// validation pass, so a caller fixes a bad config in one round trip
// instead of one field per run.
type ValidationError struct {
	Fields []FieldError
}

func (e *ValidationError) Error() string {
	if len(e.Fields) == 1 {
		return "invalid config: " + e.Fields[0].Error()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "invalid config (%d problems):", len(e.Fields))
	for _, f := range e.Fields {
		b.WriteString("\n  ")
		b.WriteString(f.Error())
	}
	return b.String()
}

// Addf records one field problem.
func (e *ValidationError) Addf(field string, value any, format string, args ...any) {
	e.Fields = append(e.Fields, FieldError{Field: field, Value: value, Msg: fmt.Sprintf(format, args...)})
}

// Err returns the collected error, or nil when every check passed.
func (e *ValidationError) Err() error {
	if len(e.Fields) == 0 {
		return nil
	}
	return e
}

// RunError is a panic recovered at the façade boundary: dramlat.Run
// never panics, it returns one of these instead, carrying enough to
// reproduce (spec hash), locate (phase + cycle) and debug (panic value
// + stack) the failure.
type RunError struct {
	SpecHash string // RunSpec.Hash() of the run that died
	Phase    string // Phase* constant: where the panic escaped
	Cycle    int64  // simulation cycle at recovery (-1 before the loop)
	Panic    any    // the recovered value
	Stack    string // debug.Stack() at recovery
}

func (e *RunError) Error() string {
	return fmt.Sprintf("dramlat: panic during %s at cycle %d (spec %.12s): %v",
		e.Phase, e.Cycle, e.SpecHash, e.Panic)
}

// Recovered converts a recovered panic value into a RunError, capturing
// the stack at the call site. An InvariantViolation panic keeps its
// typed value so callers can distinguish "model invariant broke" from
// an arbitrary crash.
func Recovered(r any, specHash, phase string, cycle int64) *RunError {
	return &RunError{
		SpecHash: specHash, Phase: phase, Cycle: cycle,
		Panic: r, Stack: string(debug.Stack()),
	}
}

// InvariantViolation is the typed panic value of hot-path invariant
// checks (Invariantf): a state the simulation model promises cannot
// happen. These deliberately stay panics — the simulation cannot
// continue — but the façade's recover converts them into a RunError
// whose Panic field is this type.
type InvariantViolation struct {
	Msg string
}

func (e InvariantViolation) Error() string { return "invariant violated: " + e.Msg }

// Invariantf panics with a typed InvariantViolation. Use it instead of
// a bare panic() for model invariants on the simulation hot path.
func Invariantf(format string, args ...any) {
	panic(InvariantViolation{Msg: fmt.Sprintf(format, args...)})
}

// QuarantineError marks a poison spec the sweep fleet gave up on:
// every execution attempt took a worker down with it (lease expired
// without a result), so after the retry budget the spec is failed
// deterministically instead of cycling through — and eventually
// wedging — the whole fleet. The job it belonged to terminates with
// this outcome rather than hanging.
type QuarantineError struct {
	SpecHash   string // RunSpec.Hash() of the quarantined spec
	Attempts   int    // executions granted before giving up
	LastWorker string // worker holding the final expired lease
}

func (e *QuarantineError) Error() string {
	if e.LastWorker != "" {
		return fmt.Sprintf("dramlat: spec %.12s quarantined: %d lease(s) expired without a result (last worker %s)",
			e.SpecHash, e.Attempts, e.LastWorker)
	}
	return fmt.Sprintf("dramlat: spec %.12s quarantined: %d lease(s) expired without a result",
		e.SpecHash, e.Attempts)
}

// AccuracyError reports that a sampled (statistically fast-forwarded)
// run landed outside its configured error bounds against the exact
// event-engine reference. Metric names the offending aggregate ("ipc",
// "gap_p50", "gap_p90", "gap_p99"), Bound the allowed absolute
// deviation the check derived from the relative/absolute bound pair.
// Unlike ValidationError this is not a spec problem: the spec ran to
// completion, but its statistical model did not hold for this workload
// at these window parameters.
type AccuracyError struct {
	Metric  string  // which aggregate drifted
	Sampled float64 // the sampled engine's estimate
	Exact   float64 // the event engine's reference value
	Bound   float64 // allowed absolute deviation
}

func (e *AccuracyError) Error() string {
	return fmt.Sprintf("dramlat: sampled run outside error bounds: %s = %.4g vs exact %.4g (|Δ| %.4g > allowed %.4g)",
		e.Metric, e.Sampled, e.Exact, math.Abs(e.Sampled-e.Exact), e.Bound)
}

// Stall kinds recorded in StallError.Kind.
const (
	StallNoProgress  = "no-progress"  // watchdog: nothing retired or issued for Budget cycles
	StallCycleBudget = "cycle-budget" // MaxTicks exhausted with warps still live
	StallDeadline    = "deadline"     // wall-clock deadline exceeded
	StallStopped     = "stopped"      // external cancellation (Stop channel)
)

// StallError is the liveness watchdog's verdict: the simulation was
// still live but made no forward progress (or ran out of its cycle or
// wall-clock budget), so the run was aborted with a diagnostic dump
// instead of hanging.
type StallError struct {
	Kind   string // Stall* constant
	Cycle  int64  // simulation cycle at the trip
	Budget int64  // the exhausted budget (cycles; 0 for deadline/stopped)
	Dump   StallDump
}

func (e *StallError) Error() string {
	switch e.Kind {
	case StallNoProgress:
		return fmt.Sprintf("dramlat: stalled at cycle %d: no request retired and no warp issued for %d cycles (%d blocked warps)",
			e.Cycle, e.Budget, e.Dump.BlockedWarps())
	case StallCycleBudget:
		return fmt.Sprintf("dramlat: cycle budget exhausted: %d warps still live at MaxTicks %d",
			e.Dump.LiveWarps(), e.Budget)
	case StallDeadline:
		return fmt.Sprintf("dramlat: wall-clock deadline exceeded at cycle %d", e.Cycle)
	case StallStopped:
		return fmt.Sprintf("dramlat: run stopped at cycle %d", e.Cycle)
	}
	return fmt.Sprintf("dramlat: stalled at cycle %d (%s)", e.Cycle, e.Kind)
}

// StallDump is the forensic snapshot attached to a StallError: enough
// per-SM, per-channel and per-bank state to see which component went
// quiet and what everyone else was waiting on.
type StallDump struct {
	Cycle    int64
	SMs      []SMState
	Channels []ChannelState

	// Shards is populated by the parallel engine only: one row per
	// worker shard, so a stall report shows which shard went quiet.
	Shards []ShardState

	// Crossbar wakeup minima: the earliest tick any partition-bound
	// request / SM-bound response becomes deliverable (guard.Never when
	// none is queued).
	XbarReqWake  int64
	XbarRespWake int64
}

// Never mirrors the simulator's wakeup sentinel (dram.Never) without an
// import: a component reporting this is quiescent until external input.
const Never int64 = 1 << 62

// SMState is one SM's row of the blocked-warp table.
type SMState struct {
	ID          int
	LiveWarps   int   // not yet retired
	Blocked     int   // live warps blocked on a load
	ReplayQueue int   // LSU requests awaiting crossbar injection
	NextWakeup  int64 // the engine's recorded wakeup (best-effort in dense mode)
}

// ChannelState is one memory partition's occupancy snapshot.
type ChannelState struct {
	Channel      int
	ReadQ        int // controller read-queue occupancy
	WriteQ       int // controller write-queue occupancy
	SchedPending int // reads held by the transaction scheduler
	Draining     bool
	L2Pipe       int // L2 lookup-pipeline occupancy
	EvictQ       int // dirty write-backs awaiting the write queue
	CoordPending int // undelivered coordination messages (wg-m and up)
	NextWakeup   int64
	Banks        []BankState
}

// ShardState is one parallel-engine worker shard's progress row: which
// contiguous component range it owns and how far it got.
type ShardState struct {
	ID        int
	Kind      string // "sm" or "part"
	First     int    // first component index owned (inclusive)
	Last      int    // last component index owned (inclusive)
	LastTick  int64  // last visited tick this shard completed
	Ticked    int64  // components ticked by this shard in total
	LiveWarps int    // live warps in the shard's range (sm shards only)
}

// BankState is one DRAM bank's command-queue snapshot.
type BankState struct {
	Bank       int
	QueuedTxns int
	OpenRow    int // -1 when precharged
	SchedRow   int // shadow row the queue tail targets
}

// LiveWarps totals the not-yet-retired warps across SMs.
func (d StallDump) LiveWarps() int {
	n := 0
	for _, s := range d.SMs {
		n += s.LiveWarps
	}
	return n
}

// BlockedWarps totals the warps blocked on outstanding loads.
func (d StallDump) BlockedWarps() int {
	n := 0
	for _, s := range d.SMs {
		n += s.Blocked
	}
	return n
}

func fmtWake(w int64) string {
	if w >= Never {
		return "never"
	}
	return fmt.Sprintf("%d", w)
}

// String renders the dump as a human-readable report: the per-SM
// blocked-warp table, per-channel queue occupancies and the per-bank
// DRAM state, with fully idle rows elided.
func (d StallDump) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "stall dump @ cycle %d: %d live warps (%d blocked), xbar req wake %s resp wake %s\n",
		d.Cycle, d.LiveWarps(), d.BlockedWarps(), fmtWake(d.XbarReqWake), fmtWake(d.XbarRespWake))
	b.WriteString("  sm    live blocked replay wakeup\n")
	for _, s := range d.SMs {
		if s.LiveWarps == 0 && s.ReplayQueue == 0 {
			continue
		}
		fmt.Fprintf(&b, "  sm%-3d %4d %7d %6d %s\n", s.ID, s.LiveWarps, s.Blocked, s.ReplayQueue, fmtWake(s.NextWakeup))
	}
	if len(d.Shards) > 0 {
		b.WriteString("  shard kind  range     lasttick ticked   live\n")
		for _, s := range d.Shards {
			fmt.Fprintf(&b, "  %-5d %-5s %3d..%-4d %8d %8d %5d\n",
				s.ID, s.Kind, s.First, s.Last, s.LastTick, s.Ticked, s.LiveWarps)
		}
	}
	b.WriteString("  chan  readq writeq sched pipe evict coord drain wakeup\n")
	for _, c := range d.Channels {
		fmt.Fprintf(&b, "  ch%-3d %5d %6d %5d %4d %5d %5d %5v %s\n",
			c.Channel, c.ReadQ, c.WriteQ, c.SchedPending, c.L2Pipe, c.EvictQ, c.CoordPending, c.Draining, fmtWake(c.NextWakeup))
		for _, bank := range c.Banks {
			if bank.QueuedTxns == 0 {
				continue
			}
			fmt.Fprintf(&b, "        bank%-2d txns %d open %d sched %d\n",
				bank.Bank, bank.QueuedTxns, bank.OpenRow, bank.SchedRow)
		}
	}
	return b.String()
}
