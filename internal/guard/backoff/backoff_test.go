package backoff

import (
	"context"
	"math/rand"
	"testing"
	"time"
)

// TestDelayGrowsAndCaps: with jitter off the schedule is exactly
// Base*Factor^n clamped at Cap.
func TestDelayGrowsAndCaps(t *testing.T) {
	p := Policy{Base: 10 * time.Millisecond, Cap: 80 * time.Millisecond, Factor: 2}
	want := []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond,
		80 * time.Millisecond, 80 * time.Millisecond, 80 * time.Millisecond,
	}
	for i, w := range want {
		if got := p.Delay(i); got != w {
			t.Errorf("Delay(%d) = %v, want %v", i, got, w)
		}
	}
	if got := p.Delay(-3); got != 10*time.Millisecond {
		t.Errorf("Delay(-3) = %v, want Base", got)
	}
	// Huge attempt counts terminate and stay at Cap (the growth loop
	// stops once the cap is reached, no float overflow).
	if got := p.Delay(10_000); got != 80*time.Millisecond {
		t.Errorf("Delay(10000) = %v, want Cap", got)
	}
}

// TestJitterBoundsAndDeterminism: jittered delays stay inside
// [d*(1-J), d], and an injected rand makes the schedule reproducible.
func TestJitterBoundsAndDeterminism(t *testing.T) {
	mk := func() Policy {
		return Policy{Base: 100 * time.Millisecond, Cap: time.Second,
			Factor: 2, Jitter: 0.5, Rand: rand.New(rand.NewSource(42))}
	}
	a, b := mk(), mk()
	for i := 0; i < 8; i++ {
		da, db := a.Delay(i), b.Delay(i)
		if da != db {
			t.Fatalf("attempt %d: same seed diverged: %v vs %v", i, da, db)
		}
		full := 100 * time.Millisecond << uint(i)
		if full > time.Second {
			full = time.Second
		}
		if da < full/2 || da > full {
			t.Errorf("attempt %d: delay %v outside [%v, %v]", i, da, full/2, full)
		}
	}
}

// TestZeroValueUsesDefaults: the zero Policy behaves like Default().
func TestZeroValueUsesDefaults(t *testing.T) {
	var p Policy
	d := p.Delay(0)
	if d < 50*time.Millisecond || d > 100*time.Millisecond {
		t.Errorf("zero-policy Delay(0) = %v, want within [50ms, 100ms]", d)
	}
	def := Default()
	if def.Base != 100*time.Millisecond || def.Cap != 30*time.Second ||
		def.Factor != 2 || def.Jitter != 0.5 {
		t.Errorf("Default() = %+v", def)
	}
	// Out-of-range knobs are clamped, not errors.
	odd := Policy{Base: time.Millisecond, Factor: 0.1, Jitter: 5}
	if d := odd.Delay(1); d <= 0 || d > 2*time.Millisecond {
		t.Errorf("clamped policy Delay(1) = %v", d)
	}
	if d := odd.Delay(0); d <= 0 {
		t.Errorf("full jitter must still return a positive delay, got %v", d)
	}
}

// TestSleepHonorsContext: a canceled context aborts the pause
// immediately with ctx.Err, and an open one sleeps roughly Delay.
func TestSleepHonorsContext(t *testing.T) {
	p := Policy{Base: time.Hour, Jitter: 0}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if err := p.Sleep(ctx, 0); err != context.Canceled {
		t.Fatalf("Sleep on dead ctx = %v, want context.Canceled", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("Sleep ignored the canceled context")
	}

	q := Policy{Base: 5 * time.Millisecond, Jitter: 0}
	if err := q.Sleep(context.Background(), 0); err != nil {
		t.Fatalf("Sleep = %v", err)
	}
}
