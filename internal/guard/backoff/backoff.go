// Package backoff is the retry-pacing helper shared by the sweep
// fleet: the sweepd server uses it to space re-queues of specs whose
// worker died, and the HTTP client uses it to pace stream reconnects
// and claim retries. It is deliberately tiny — one Policy value, one
// Delay function — so every retry loop in the repo paces itself the
// same way and tests can pin the schedule with an injected rand.
package backoff

import (
	"context"
	"math/rand"
	"time"
)

// Policy computes exponentially growing, jittered delays. The zero
// value is usable and equals Default(). A Policy is a value type:
// copy it freely. When Rand is set the Policy must not be shared
// across goroutines (rand.Rand is not concurrency-safe); a nil Rand
// uses the global locked source.
type Policy struct {
	// Base is the delay before the first retry (attempt 0). <= 0
	// means 100ms.
	Base time.Duration
	// Cap bounds the grown delay before jitter. <= 0 means 30s.
	Cap time.Duration
	// Factor is the per-attempt growth multiplier. < 1 means 2.
	Factor float64
	// Jitter is the fraction of each delay that is randomized, in
	// [0, 1]: the returned delay is uniform in
	// [d*(1-Jitter), d]. Negative means 0.5; 0 stays 0 (fully
	// deterministic), which tests rely on.
	Jitter float64
	// Rand, when non-nil, supplies the jitter randomness so tests
	// get a reproducible schedule. Nil uses the global source.
	Rand *rand.Rand
}

// Default is the fleet-wide policy: 100ms base, 30s cap, doubling,
// half-jittered.
func Default() Policy {
	return Policy{Base: 100 * time.Millisecond, Cap: 30 * time.Second, Factor: 2, Jitter: 0.5}
}

func (p Policy) base() time.Duration {
	if p.Base <= 0 {
		return 100 * time.Millisecond
	}
	return p.Base
}

func (p Policy) cap() time.Duration {
	if p.Cap <= 0 {
		return 30 * time.Second
	}
	return p.Cap
}

func (p Policy) factor() float64 {
	if p.Factor < 1 {
		return 2
	}
	return p.Factor
}

func (p Policy) jitter() float64 {
	switch {
	case p.Jitter < 0:
		return 0.5
	case p.Jitter > 1:
		return 1
	}
	return p.Jitter
}

// Delay returns the pause before retry number attempt (counted from
// 0): min(Base*Factor^attempt, Cap), with the top Jitter fraction
// randomized. Negative attempts are treated as 0. The result is
// always in (0, Cap].
func (p Policy) Delay(attempt int) time.Duration {
	if attempt < 0 {
		attempt = 0
	}
	d := float64(p.base())
	cap := float64(p.cap())
	f := p.factor()
	for i := 0; i < attempt && d < cap; i++ {
		d *= f
	}
	if d > cap {
		d = cap
	}
	if j := p.jitter(); j > 0 {
		u := rand.Float64
		if p.Rand != nil {
			u = p.Rand.Float64
		}
		d = d*(1-j) + u()*d*j
	}
	if d < 1 {
		d = 1 // never a zero sleep: callers use the delay to yield
	}
	return time.Duration(d)
}

// Sleep blocks for Delay(attempt) or until ctx is done, returning
// ctx.Err() in the latter case. It is the standard shape of a retry
// loop pause: `if err := p.Sleep(ctx, n); err != nil { return err }`.
func (p Policy) Sleep(ctx context.Context, attempt int) error {
	t := time.NewTimer(p.Delay(attempt))
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
