package guard

import (
	"errors"
	"strings"
	"testing"
)

func TestValidationErrorAggregation(t *testing.T) {
	v := &ValidationError{}
	if v.Err() != nil {
		t.Fatal("empty ValidationError is not nil")
	}
	v.Addf("NumSMs", 0, "must be positive")
	if msg := v.Err().Error(); !strings.Contains(msg, "NumSMs = 0") || !strings.Contains(msg, "must be positive") {
		t.Fatalf("single-field message: %q", msg)
	}
	v.Addf("NumBanks", 7, "must be a power of two")
	msg := v.Err().Error()
	if !strings.Contains(msg, "2 problems") || !strings.Contains(msg, "NumBanks = 7") {
		t.Fatalf("multi-field message: %q", msg)
	}
	var ve *ValidationError
	if !errors.As(v.Err(), &ve) || len(ve.Fields) != 2 {
		t.Fatal("errors.As round trip failed")
	}
}

func TestInvariantfPanicsTyped(t *testing.T) {
	defer func() {
		r := recover()
		iv, ok := r.(InvariantViolation)
		if !ok {
			t.Fatalf("recovered %T, want InvariantViolation", r)
		}
		if !strings.Contains(iv.Error(), "bank 3 overfull") {
			t.Fatalf("message: %q", iv.Error())
		}
	}()
	Invariantf("bank %d overfull", 3)
}

func TestRecoveredCapturesContext(t *testing.T) {
	re := Recovered("boom", "abc123def456", PhaseRun, 777)
	if re.SpecHash != "abc123def456" || re.Phase != PhaseRun || re.Cycle != 777 {
		t.Fatalf("context lost: %+v", re)
	}
	if re.Stack == "" {
		t.Fatal("no stack captured")
	}
	msg := re.Error()
	for _, want := range []string{"panic", "run", "777", "boom", "abc123def456"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("message %q missing %q", msg, want)
		}
	}
}

func TestStallErrorMessages(t *testing.T) {
	dump := StallDump{
		Cycle: 500_000,
		SMs: []SMState{
			{ID: 0, LiveWarps: 3, Blocked: 2, ReplayQueue: 1, NextWakeup: Never},
			{ID: 1}, // retired: elided from the rendering
		},
		Channels: []ChannelState{{
			Channel: 0, ReadQ: 4, Draining: true, NextWakeup: 123,
			Banks: []BankState{{Bank: 2, QueuedTxns: 3, OpenRow: 17, SchedRow: 17}},
		}},
		XbarReqWake: Never, XbarRespWake: 42,
	}
	if dump.LiveWarps() != 3 || dump.BlockedWarps() != 2 {
		t.Fatalf("totals: live=%d blocked=%d", dump.LiveWarps(), dump.BlockedWarps())
	}
	cases := map[string]string{
		StallNoProgress:  "no request retired",
		StallCycleBudget: "cycle budget exhausted",
		StallDeadline:    "deadline exceeded",
		StallStopped:     "stopped",
	}
	for kind, want := range cases {
		e := &StallError{Kind: kind, Cycle: 500_000, Budget: 1_000_000, Dump: dump}
		if !strings.Contains(e.Error(), want) {
			t.Fatalf("%s: message %q missing %q", kind, e.Error(), want)
		}
	}
	s := dump.String()
	for _, want := range []string{"stall dump", "sm0", "ch0", "bank2", "never"} {
		if !strings.Contains(s, want) {
			t.Fatalf("dump rendering missing %q:\n%s", want, s)
		}
	}
	if strings.Contains(s, "sm1 ") {
		t.Fatalf("fully idle SM not elided:\n%s", s)
	}
}
