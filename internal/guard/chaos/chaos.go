// Package chaos injects faults into the simulator for hardening tests:
// a component whose NextWakeup contract goes "too late" (so the
// liveness watchdog must trip instead of the run hanging), a forced
// panic mid-run (so the façade's recover must convert it into a
// RunError), and seeded on-disk corruption (so the sweep cache's
// checksum verification must quarantine the entry).
//
// A nil *Faults injects nothing and costs one nil check per hook, so
// production runs stay byte-identical with the chaos plumbing compiled
// in. Faults are excluded from RunSpec.Canonical/Hash for the same
// reason telemetry is: they never describe a different simulation,
// only a broken one.
package chaos

import (
	"fmt"
	"math/rand"
	"os"
)

// Component kinds addressable by a wakeup fault.
const (
	TargetSM        = "sm"
	TargetPartition = "partition"
)

// Faults selects the injected failures for one run. The zero value (and
// nil) injects nothing.
type Faults struct {
	// WakeTarget/WakeIndex name one component ("sm" or "partition" plus
	// its index) whose NextWakeup answer turns "too late" from sim tick
	// WakeAfter on: the engine treats the component as asleep — exactly
	// what a wakeup-contract violation looks like from the outside — for
	// WakeDelay ticks (<= 0 means forever). Under the event-driven
	// engine this models a late NextWakeup answer; under the dense
	// reference engine, where no wakeups exist, the same fault gates the
	// component's Tick so both engines exhibit the identical hang for
	// the watchdog to catch.
	WakeTarget string
	WakeIndex  int
	WakeAfter  int64
	WakeDelay  int64

	// PanicAtCycle forces a panic from inside the run loop when the
	// simulation reaches this cycle (0 disables), exercising the
	// façade's panic recovery end to end.
	PanicAtCycle int64

	// SampleDrift multiplies the sampled engine's calibrated models —
	// per-SM issue rates and synthesized divergence gaps — by this
	// factor during every fast-forward region (0 disables, 1 is a
	// no-op). A factor well away from 1 forces the sampled run outside
	// its error bounds so the distributional validator's AccuracyError
	// path can be exercised deterministically.
	SampleDrift float64
}

// DriftFactor returns the sampled-model bias to apply, 1 when no drift
// fault is armed.
func (f *Faults) DriftFactor() float64 {
	if f == nil || f.SampleDrift == 0 {
		return 1
	}
	return f.SampleDrift
}

// Asleep reports whether the wakeup fault holds component (kind, idx)
// comatose at tick now.
func (f *Faults) Asleep(kind string, idx int, now int64) bool {
	if f == nil || f.WakeTarget != kind || f.WakeIndex != idx || now < f.WakeAfter {
		return false
	}
	return f.WakeDelay <= 0 || now < f.WakeAfter+f.WakeDelay
}

// CheckPanic panics when the forced-panic fault is armed for this
// cycle. The run loop calls it once per visited tick.
func (f *Faults) CheckPanic(now int64) {
	if f != nil && f.PanicAtCycle > 0 && now >= f.PanicAtCycle {
		f.PanicAtCycle = 0 // one shot: the recover path must not re-trip
		panic(fmt.Sprintf("chaos: forced panic at cycle %d", now))
	}
}

// CorruptFile flips eight deterministically seeded bits of the file in
// place, simulating torn or bit-rotten storage for cache-quarantine
// tests. The file must be non-empty.
func CorruptFile(path string, seed int64) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(b) == 0 {
		return fmt.Errorf("chaos: %s is empty", path)
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < 8; i++ {
		pos := rng.Intn(len(b))
		b[pos] ^= 1 << rng.Intn(8)
	}
	return os.WriteFile(path, b, 0o644)
}
