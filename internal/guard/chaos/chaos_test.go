package chaos

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestAsleepWindow(t *testing.T) {
	var nilF *Faults
	if nilF.Asleep(TargetSM, 0, 100) {
		t.Fatal("nil Faults injected a fault")
	}
	f := &Faults{WakeTarget: TargetPartition, WakeIndex: 2, WakeAfter: 1000, WakeDelay: 500}
	cases := []struct {
		kind string
		idx  int
		now  int64
		want bool
	}{
		{TargetPartition, 2, 999, false},  // before the window
		{TargetPartition, 2, 1000, true},  // window opens
		{TargetPartition, 2, 1499, true},  // still inside
		{TargetPartition, 2, 1500, false}, // window closed
		{TargetPartition, 1, 1200, false}, // wrong index
		{TargetSM, 2, 1200, false},        // wrong kind
	}
	for _, c := range cases {
		if got := f.Asleep(c.kind, c.idx, c.now); got != c.want {
			t.Fatalf("Asleep(%s, %d, %d) = %v, want %v", c.kind, c.idx, c.now, got, c.want)
		}
	}
	forever := &Faults{WakeTarget: TargetSM, WakeAfter: 10}
	if !forever.Asleep(TargetSM, 0, 1<<40) {
		t.Fatal("zero WakeDelay should mean forever")
	}
}

func TestCheckPanicOneShot(t *testing.T) {
	var nilF *Faults
	nilF.CheckPanic(100) // must not panic
	f := &Faults{PanicAtCycle: 50}
	f.CheckPanic(49) // not yet
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("armed CheckPanic did not fire")
			}
			if !strings.Contains(r.(string), "cycle 50") {
				t.Fatalf("panic value: %v", r)
			}
		}()
		f.CheckPanic(50)
	}()
	f.CheckPanic(51) // disarmed after firing: recovery must not re-trip
}

func TestCorruptFileDeterministic(t *testing.T) {
	dir := t.TempDir()
	orig := bytes.Repeat([]byte("cache entry payload "), 20)
	write := func(name string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, orig, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	p1, p2 := write("a"), write("b")
	if err := CorruptFile(p1, 7); err != nil {
		t.Fatal(err)
	}
	if err := CorruptFile(p2, 7); err != nil {
		t.Fatal(err)
	}
	b1, _ := os.ReadFile(p1)
	b2, _ := os.ReadFile(p2)
	if bytes.Equal(b1, orig) {
		t.Fatal("file unchanged")
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("same seed produced different corruption")
	}
	if err := CorruptFile(filepath.Join(dir, "missing"), 1); err == nil {
		t.Fatal("missing file accepted")
	}
}
