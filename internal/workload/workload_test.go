package workload

import (
	"testing"

	"dramlat/internal/gpu"
	"dramlat/internal/sm"
)

func testParams() Params {
	return Params{NumSMs: 4, WarpsPerSM: 4, WarpSize: 32, Scale: 0.3, Seed: 1}
}

func testConfig() gpu.Config {
	cfg := gpu.DefaultConfig()
	cfg.NumSMs = 4
	cfg.WarpsPerSM = 4
	cfg.Scheduler = "gmc"
	cfg.MaxTicks = 8_000_000
	// The small test machine touches a far smaller footprint than the
	// full 30-SM runs; shrink the L2 proportionally so dirty write-backs
	// still reach DRAM (write-intensity characterization).
	cfg.L2SliceSize = 16 << 10
	return cfg
}

func TestRegistry(t *testing.T) {
	if len(Irregular()) != 11 {
		t.Fatalf("%d irregular benchmarks, want 11 (Table III)", len(Irregular()))
	}
	if len(Regular()) != 6 {
		t.Fatalf("%d regular benchmarks, want 6 (Section VI-A)", len(Regular()))
	}
	seen := map[string]bool{}
	for _, b := range All() {
		if seen[b.Name] {
			t.Fatalf("duplicate benchmark %q", b.Name)
		}
		seen[b.Name] = true
		got, err := ByName(b.Name)
		if err != nil || got.Name != b.Name {
			t.Fatalf("ByName(%q): %v", b.Name, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("ByName accepted unknown name")
	}
}

func TestBuildersDeterministic(t *testing.T) {
	p := testParams()
	for _, b := range []Benchmark{Irregular()[0], Regular()[0]} {
		w1 := b.Build(p)
		w2 := b.Build(p)
		for s := range w1.Programs {
			for w := range w1.Programs[s] {
				p1, p2 := w1.Programs[s][w], w2.Programs[s][w]
				if len(p1) != len(p2) {
					t.Fatalf("%s: program length differs", b.Name)
				}
				for i := range p1 {
					if p1[i].Kind != p2[i].Kind || len(p1[i].Addrs) != len(p2[i].Addrs) {
						t.Fatalf("%s: insn %d differs", b.Name, i)
					}
					for j := range p1[i].Addrs {
						if p1[i].Addrs[j] != p2[i].Addrs[j] {
							t.Fatalf("%s: addr differs", b.Name)
						}
					}
				}
			}
		}
	}
}

func TestWarpShapeMatchesParams(t *testing.T) {
	p := testParams()
	for _, b := range All() {
		w := b.Build(p)
		if len(w.Programs) != p.NumSMs {
			t.Fatalf("%s: %d SMs", b.Name, len(w.Programs))
		}
		for s := range w.Programs {
			if len(w.Programs[s]) != p.WarpsPerSM {
				t.Fatalf("%s: %d warps on SM %d", b.Name, len(w.Programs[s]), s)
			}
			for wi, prog := range w.Programs[s] {
				if len(prog) == 0 {
					t.Fatalf("%s: empty program sm%d w%d", b.Name, s, wi)
				}
				for _, in := range prog {
					if in.Kind != sm.Compute && len(in.Addrs) == 0 {
						t.Fatalf("%s: memory insn with no addresses", b.Name)
					}
					if len(in.Addrs) > p.WarpSize {
						t.Fatalf("%s: %d addresses > warp size", b.Name, len(in.Addrs))
					}
				}
			}
		}
	}
}

// Every benchmark must run to completion under the baseline, and its
// measured characterization must match the paper's grouping.
func TestCharacterization(t *testing.T) {
	if testing.Short() {
		t.Skip("full characterization run")
	}
	type row struct {
		reqsPerLoad float64
		multiFrac   float64
		mcs         float64
		writeFrac   float64
	}
	rows := map[string]row{}
	for _, b := range All() {
		cfg := testConfig()
		sys, err := gpu.NewSystem(cfg, b.Build(testParams()))
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		res, err := sys.Run()
		if err != nil {
			t.Fatalf("%s: did not complete", b.Name)
		}
		sum := res.Summary
		rows[b.Name] = row{sum.ReqsPerLoad, sum.MultiReqFrac, sum.AvgMCsTouched, res.WriteFrac}
	}

	// Irregular applications produce >1 request per load on average and a
	// majority-ish of multi-request loads (Fig 2).
	var irrReqs, irrMulti float64
	for _, b := range Irregular() {
		r := rows[b.Name]
		if r.reqsPerLoad <= 1.2 {
			t.Errorf("%s: reqs/load %.2f too coalesced for an irregular app", b.Name, r.reqsPerLoad)
		}
		irrReqs += r.reqsPerLoad
		irrMulti += r.multiFrac
	}
	irrReqs /= float64(len(Irregular()))
	irrMulti /= float64(len(Irregular()))
	if irrReqs < 3 || irrReqs > 10 {
		t.Errorf("irregular suite avg reqs/load %.2f, paper reports 5.9", irrReqs)
	}
	if irrMulti < 0.35 {
		t.Errorf("irregular suite multi-request fraction %.2f, paper reports 0.56", irrMulti)
	}

	// Regular applications coalesce to ~1 request per load.
	for _, b := range Regular() {
		r := rows[b.Name]
		if r.reqsPerLoad > 1.3 {
			t.Errorf("%s: reqs/load %.2f too divergent for a regular app", b.Name, r.reqsPerLoad)
		}
	}

	// Fig 3 grouping: the wide-spread apps touch more controllers than
	// the clustered ones.
	wide := (rows["cfd"].mcs + rows["spmv"].mcs + rows["sssp"].mcs + rows["sp"].mcs) / 4
	narrow := (rows["sad"].mcs + rows["nw"].mcs + rows["SS"].mcs + rows["bfs"].mcs) / 4
	if wide <= narrow {
		t.Errorf("controller spread inverted: wide=%.2f narrow=%.2f", wide, narrow)
	}
	if wide < 2.4 {
		t.Errorf("wide group touches %.2f MCs, paper reports ~3.2", wide)
	}
	if narrow > 2.6 {
		t.Errorf("narrow group touches %.2f MCs, paper reports < 2", narrow)
	}

	// Fig 12 grouping: nw, SS and sad are write intensive relative to the
	// graph workloads.
	writeHeavy := (rows["nw"].writeFrac + rows["SS"].writeFrac + rows["sad"].writeFrac) / 3
	writeLight := (rows["bfs"].writeFrac + rows["sp"].writeFrac + rows["sssp"].writeFrac) / 3
	if writeHeavy <= writeLight {
		t.Errorf("write intensity inverted: heavy=%.2f light=%.2f", writeHeavy, writeLight)
	}
}

// Every generator must also complete under the full warp-aware scheduler
// (exercises group tagging, credits, MERB and write-aware paths against
// real workload shapes).
func TestAllBenchmarksUnderWGW(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep")
	}
	for _, b := range All() {
		cfg := testConfig()
		cfg.Scheduler = "wg-w"
		sys, err := gpu.NewSystem(cfg, b.Build(testParams()))
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if _, err := sys.Run(); err != nil {
			t.Fatalf("%s: stuck under wg-w: %v", b.Name, err)
		}
		if sys.Col.Outstanding() != 0 {
			t.Fatalf("%s: %d groups unfinished", b.Name, sys.Col.Outstanding())
		}
	}
}
