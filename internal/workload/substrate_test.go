package workload

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRandCSRWellFormed(t *testing.T) {
	f := func(seed int64, nRaw, degRaw uint16) bool {
		n := int(nRaw%2000) + 10
		deg := int(degRaw%12) + 1
		rng := rand.New(rand.NewSource(seed))
		g := randCSR(rng, n, deg, 0.5, 64)
		if g.n != n || len(g.rowPtr) != n+1 || g.rowPtr[0] != 0 {
			return false
		}
		for i := 0; i < n; i++ {
			if g.rowPtr[i+1] < g.rowPtr[i] {
				return false // rowPtr must be non-decreasing
			}
			if g.degree(i) < 1 {
				return false // every node has at least one edge
			}
		}
		if int(g.rowPtr[n]) != len(g.colIdx) {
			return false
		}
		for _, c := range g.colIdx {
			if c < 0 || int(c) >= n {
				return false // edges must stay in range
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRandCSRLocalityKnob(t *testing.T) {
	// High pLocal with a small window must keep most edges near the
	// diagonal; low pLocal must scatter them.
	count := func(pLocal float64) (near, far int) {
		rng := rand.New(rand.NewSource(5))
		g := randCSR(rng, 10000, 8, pLocal, 64)
		for i := 0; i < g.n; i++ {
			for _, c := range g.edges(i) {
				d := int(c) - i
				if d < 0 {
					d = -d
				}
				// Account for the ring wrap.
				if w := g.n - d; w < d {
					d = w
				}
				if d <= 64 {
					near++
				} else {
					far++
				}
			}
		}
		return
	}
	nearHi, farHi := count(0.95)
	nearLo, farLo := count(0.05)
	if float64(nearHi)/float64(nearHi+farHi) < 0.9 {
		t.Fatalf("pLocal=0.95 produced only %d/%d local edges", nearHi, nearHi+farHi)
	}
	if float64(nearLo)/float64(nearLo+farLo) > 0.2 {
		t.Fatalf("pLocal=0.05 produced %d/%d local edges", nearLo, nearLo+farLo)
	}
}

func TestRandCSRDeterministic(t *testing.T) {
	g1 := randCSR(rand.New(rand.NewSource(9)), 500, 6, 0.5, 32)
	g2 := randCSR(rand.New(rand.NewSource(9)), 500, 6, 0.5, 32)
	if len(g1.colIdx) != len(g2.colIdx) {
		t.Fatal("nondeterministic size")
	}
	for i := range g1.colIdx {
		if g1.colIdx[i] != g2.colIdx[i] {
			t.Fatal("nondeterministic edges")
		}
	}
}

func TestOctreeStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tr := randOctree(rng, 6)
	if tr.nodeCount() < 10 {
		t.Fatalf("tiny tree: %d nodes", tr.nodeCount())
	}
	if len(tr.levels) < 3 {
		t.Fatalf("only %d levels", len(tr.levels))
	}
	// Children must reference valid pool ids and levels must grow.
	seen := map[int32]bool{0: true}
	for _, lvl := range tr.levels {
		for _, n := range lvl {
			if int(n) >= tr.nodeCount() {
				t.Fatalf("level node %d out of pool", n)
			}
			for _, c := range tr.child[n] {
				if c == -1 {
					continue
				}
				if int(c) >= tr.nodeCount() {
					t.Fatalf("child %d out of pool", c)
				}
				if seen[c] && c != 0 {
					t.Fatalf("node %d has two parents", c)
				}
				seen[c] = true
			}
		}
	}
	// pick must stay within the requested (clamped) level.
	for lvl := 0; lvl < 10; lvl++ {
		n := tr.pick(rng, lvl)
		if int(n) >= tr.nodeCount() || n < 0 {
			t.Fatalf("pick(%d) = %d out of range", lvl, n)
		}
	}
}

func TestArenaAllocations(t *testing.T) {
	a := newArena()
	x := a.alloc(100)
	y := a.alloc(5000)
	z := a.alloc(1)
	if x%4096 != 0 || y%4096 != 0 || z%4096 != 0 {
		t.Fatalf("allocations not row aligned: %x %x %x", x, y, z)
	}
	if y <= x || z <= y || y-x < 100 || z-y < 5000 {
		t.Fatalf("overlapping arena allocations: %x %x %x", x, y, z)
	}
}

func TestScaledClampsToOne(t *testing.T) {
	p := DefaultParams()
	p.Scale = 0.0001
	if p.scaled(10) != 1 {
		t.Fatalf("scaled(10) = %d at tiny scale, want clamp to 1", p.scaled(10))
	}
	p.Scale = 2
	if p.scaled(10) != 20 {
		t.Fatalf("scaled(10) = %d at 2x", p.scaled(10))
	}
}
