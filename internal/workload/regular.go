package workload

import (
	"math/rand"

	"dramlat/internal/gpu"
	"dramlat/internal/sm"
)

// The Section VI-A suite: bandwidth-sensitive applications with structured,
// streaming access that coalesces to one request per load in the common
// case. The paper uses them to show warp-aware scheduling causes no
// slowdown (WG-W gains a modest 1.8% on them).

// streamKernel builds a generic streaming workload: each warp marches
// through large arrays with fully coalesced loads and optional coalesced
// stores.
func streamKernel(p Params, name string, arrays int, loadsPerIter, storesPerIter, iters int) gpu.Workload {
	a := newArena()
	bases := make([]uint64, arrays)
	for i := range bases {
		bases[i] = a.alloc(64 << 20)
	}
	n := p.scaled(iters)
	b := newBuilder(p)
	b.eachWarp(func(wr *rand.Rand, global int) sm.Program {
		var prog sm.Program
		for it := 0; it < n; it++ {
			idx := ((global*n + it) * p.WarpSize) % (1 << 22)
			for l := 0; l < loadsPerIter; l++ {
				prog = append(prog, coalescedLoad(bases[l%arrays], idx+l*p.WarpSize, p.WarpSize))
				prog = append(prog, compute())
			}
			for s := 0; s < storesPerIter; s++ {
				prog = append(prog, coalescedStore(bases[(loadsPerIter+s)%arrays], idx+s*p.WarpSize, p.WarpSize))
			}
			prog = computeN(prog, 2)
		}
		return prog
	})
	return b.workload(name)
}

// BuildStreamcluster reproduces the Rodinia streaming clustering kernel:
// long coalesced distance sweeps, read dominated.
func BuildStreamcluster(p Params) gpu.Workload {
	return streamKernel(p, "streamcluster", 3, 4, 0, 20)
}

// BuildSRAD2 reproduces the Rodinia SRAD2 structured-grid stencil:
// neighboring rows load coalesced, one result row stores.
func BuildSRAD2(p Params) gpu.Workload {
	return streamKernel(p, "srad2", 4, 3, 1, 18)
}

// BuildBP reproduces Rodinia back-propagation: dense layer sweeps with a
// store per iteration (weight updates).
func BuildBP(p Params) gpu.Workload {
	return streamKernel(p, "bp", 4, 2, 2, 18)
}

// BuildHotspot reproduces the Rodinia HotSpot thermal stencil: five
// coalesced neighbor-row loads, one store.
func BuildHotspot(p Params) gpu.Workload {
	return streamKernel(p, "hotspot", 3, 5, 1, 14)
}

// BuildInvertedIndex reproduces the MARS InvertedIndex build: streaming
// document scan with streaming output.
func BuildInvertedIndex(p Params) gpu.Workload {
	return streamKernel(p, "invertedindex", 2, 3, 2, 16)
}

// BuildPageViewRank reproduces the MARS PageViewRank pass: streaming rank
// reads, light writes.
func BuildPageViewRank(p Params) gpu.Workload {
	return streamKernel(p, "pageviewrank", 3, 4, 1, 16)
}
