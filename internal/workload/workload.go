// Package workload generates the benchmark suites of Table III as warp
// instruction streams. The paper ran CUDA binaries from Rodinia, MARS,
// LonestarGPU and Parboil under GPGPU-Sim; those binaries and traces are
// not available here, so each benchmark is reproduced as a kernel-level
// address-trace generator that walks the same data structures the original
// kernel walks (CSR graphs and matrices, unstructured meshes, hash tables,
// octrees, dynamic-programming bands, block-matching windows).
//
// The substitution preserves what the memory schedulers actually see: the
// warp structure, coalescing behaviour, row locality, bank/channel spread,
// and write intensity of the access stream. Each generator documents its
// calibration targets against the paper's characterization:
//
//   - Fig 2: irregular loads average ~5.9 requests after coalescing and
//     ~56% of loads produce more than one request;
//   - Fig 3: warps touch ~2.5 memory controllers on average; cfd, spmv,
//     sssp and sp touch ~3.2 while sad, nw, SS and bfs touch fewer than 2;
//   - Section III-A: ~30% of a warp's requests fall in the same DRAM row
//     and a warp touches ~2 banks;
//   - Fig 12: nw, SS and sad are write-intensive.
package workload

import (
	"fmt"
	"math/rand"

	"dramlat/internal/gpu"
	"dramlat/internal/sm"
)

// Params sizes a workload build.
type Params struct {
	NumSMs     int
	WarpsPerSM int
	WarpSize   int
	// Scale multiplies the default work per warp; 1.0 is the full-size
	// run used in EXPERIMENTS.md, smaller values give quick runs.
	Scale float64
	Seed  int64
}

// DefaultParams matches the Table II machine.
func DefaultParams() Params {
	return Params{NumSMs: 30, WarpsPerSM: 32, WarpSize: 32, Scale: 1.0, Seed: 1}
}

func (p Params) scaled(n int) int {
	v := int(float64(n) * p.Scale)
	if v < 1 {
		v = 1
	}
	return v
}

// Benchmark is one generator.
type Benchmark struct {
	Name      string
	Suite     string
	Irregular bool
	Desc      string
	Build     func(p Params) gpu.Workload
}

// Irregular returns the eleven irregular, memory-divergent benchmarks of
// Table III.
func Irregular() []Benchmark {
	return []Benchmark{
		{"bfs", "Rodinia", true, "breadth-first search over a CSR graph", BuildBFS},
		{"cfd", "Rodinia", true, "unstructured-mesh Euler solver neighbor gather", BuildCFD},
		{"nw", "Rodinia", true, "Needleman-Wunsch wavefront alignment", BuildNW},
		{"kmeans", "Rodinia", true, "k-means clustering distance phase", BuildKmeans},
		{"PVC", "MARS", true, "PageViewCount hash-based map/reduce", BuildPVC},
		{"SS", "MARS", true, "SimilarityScore matrix phase", BuildSS},
		{"sp", "LonestarGPU", true, "survey propagation on a random factor graph", BuildSP},
		{"bh", "LonestarGPU", true, "Barnes-Hut octree force computation", BuildBH},
		{"sssp", "LonestarGPU", true, "single-source shortest paths worklist", BuildSSSP},
		{"spmv", "Parboil", true, "CSR sparse matrix - dense vector multiply", BuildSpMV},
		{"sad", "Parboil", true, "sum-of-absolute-differences block search", BuildSAD},
	}
}

// Regular returns the six structured, bandwidth-sensitive benchmarks of
// Section VI-A (streaming access patterns that coalesce to one request per
// load in the common case).
func Regular() []Benchmark {
	return []Benchmark{
		{"streamcluster", "Rodinia", false, "streaming clustering distance sweep", BuildStreamcluster},
		{"srad2", "Rodinia", false, "structured-grid diffusion stencil", BuildSRAD2},
		{"bp", "Rodinia", false, "back-propagation dense layers", BuildBP},
		{"hotspot", "Rodinia", false, "structured thermal stencil", BuildHotspot},
		{"invertedindex", "MARS", false, "streaming index build", BuildInvertedIndex},
		{"pageviewrank", "MARS", false, "streaming rank pass", BuildPageViewRank},
	}
}

// All returns every benchmark.
func All() []Benchmark {
	return append(Irregular(), Regular()...)
}

// ByName finds a benchmark.
func ByName(name string) (Benchmark, error) {
	for _, b := range All() {
		if b.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// ---- shared construction helpers ----

// arena allocates non-overlapping virtual address ranges for the kernel's
// arrays, 4KB-aligned so arrays start on row boundaries like a real
// allocator.
type arena struct{ next uint64 }

func newArena() *arena { return &arena{next: 1 << 20} }

func (a *arena) alloc(bytes uint64) uint64 {
	const align = 4096
	base := (a.next + align - 1) &^ (align - 1)
	a.next = base + bytes
	return base
}

// builder accumulates per-warp programs.
type builder struct {
	p     Params
	progs [][]sm.Program
}

func newBuilder(p Params) *builder {
	b := &builder{p: p, progs: make([][]sm.Program, p.NumSMs)}
	for i := range b.progs {
		b.progs[i] = make([]sm.Program, p.WarpsPerSM)
	}
	return b
}

// eachWarp invokes f for every (sm, warp) with a per-warp RNG and global
// warp index; f returns the warp's program.
func (b *builder) eachWarp(f func(rng *rand.Rand, global int) sm.Program) {
	for s := 0; s < b.p.NumSMs; s++ {
		for w := 0; w < b.p.WarpsPerSM; w++ {
			g := s*b.p.WarpsPerSM + w
			rng := rand.New(rand.NewSource(b.p.Seed + int64(g)*7919))
			b.progs[s][w] = f(rng, g)
		}
	}
}

func (b *builder) workload(name string) gpu.Workload {
	return gpu.Workload{Name: name, Programs: b.progs}
}

// gather emits a warp load of one 4-byte element per lane.
func gather(addrs []uint64) sm.Insn { return sm.Insn{Kind: sm.Load, Addrs: addrs} }

// scatter emits a warp store of one 4-byte element per lane.
func scatter(addrs []uint64) sm.Insn { return sm.Insn{Kind: sm.Store, Addrs: addrs} }

// coalescedLoad reads warpSize consecutive 4B elements starting at base +
// idx*4 — one or two 128B lines.
func coalescedLoad(base uint64, idx int, warpSize int) sm.Insn {
	addrs := make([]uint64, warpSize)
	for i := range addrs {
		addrs[i] = base + uint64(idx+i)*4
	}
	return sm.Insn{Kind: sm.Load, Addrs: addrs}
}

func coalescedStore(base uint64, idx int, warpSize int) sm.Insn {
	in := coalescedLoad(base, idx, warpSize)
	in.Kind = sm.Store
	return in
}

// elem4 returns the address of a 4-byte element.
func elem4(base uint64, idx int) uint64 { return base + uint64(idx)*4 }

func compute() sm.Insn { return sm.Insn{Kind: sm.Compute} }

// computeN appends n compute instructions.
func computeN(p sm.Program, n int) sm.Program {
	for i := 0; i < n; i++ {
		p = append(p, compute())
	}
	return p
}
