package workload

import (
	"math/rand"

	"dramlat/internal/gpu"
	"dramlat/internal/sm"
)

// BuildBFS reproduces Rodinia breadth-first search: one thread per node,
// a sparse frontier mask, edge-list walks and visited-flag gathers.
//
// Calibration: the frontier is sparse (2-6 active lanes), so most loads
// produce 1-4 clustered requests and a warp touches < 2 controllers on
// average (Fig 3 groups bfs with the low-spread applications); writes are
// light (cost/mask updates).
func BuildBFS(p Params) gpu.Workload {
	rng := rand.New(rand.NewSource(p.Seed))
	g := randCSR(rng, 150_000, 8, 0.7, 512)
	a := newArena()
	maskBase := a.alloc(uint64(g.n) * 4)
	rowBase := a.alloc(uint64(len(g.rowPtr)) * 4)
	colBase := a.alloc(uint64(len(g.colIdx)) * 4)
	visBase := a.alloc(uint64(g.n) * 4)
	costBase := a.alloc(uint64(g.n) * 4)

	iters := p.scaled(10)
	b := newBuilder(p)
	b.eachWarp(func(wr *rand.Rand, global int) sm.Program {
		var prog sm.Program
		for it := 0; it < iters; it++ {
			nodeBase := (global*p.WarpSize + it*7777) % (g.n - p.WarpSize)
			// Frontier mask check: fully coalesced (consecutive tids).
			prog = append(prog, coalescedLoad(maskBase, nodeBase, p.WarpSize))
			// Sparse frontier: 2-6 lanes are active this iteration.
			active := wr.Intn(3) + 2
			lanes := wr.Perm(p.WarpSize)[:active]
			// Row pointers of the active nodes (clustered: the nodes are
			// consecutive thread ids).
			var rp []uint64
			for _, l := range lanes {
				rp = append(rp, elem4(rowBase, nodeBase+l))
			}
			prog = append(prog, gather(rp))
			// Edge walk: each active lane loads one neighbor id per
			// step, then the neighbor's visited flag (data-dependent).
			steps := wr.Intn(3) + 1
			for s := 0; s < steps; s++ {
				var ce, vf []uint64
				for _, l := range lanes {
					node := nodeBase + l
					d := g.degree(node)
					if d == 0 {
						continue
					}
					e := int(g.rowPtr[node]) + (s % d)
					ce = append(ce, elem4(colBase, e))
					vf = append(vf, elem4(visBase, int(g.colIdx[e])))
				}
				if len(ce) > 0 {
					prog = append(prog, gather(ce), gather(vf))
				}
				prog = append(prog, compute())
			}
			// Cost update for discovered nodes (scattered, small).
			var up []uint64
			for _, l := range lanes[:1+active/3] {
				node := nodeBase + l
				if g.degree(node) > 0 {
					up = append(up, elem4(costBase, int(g.edges(node)[0])))
				}
			}
			if len(up) > 0 {
				prog = append(prog, scatter(up))
			}
			prog = computeN(prog, 2)
		}
		return prog
	})
	return b.workload("bfs")
}

// BuildSSSP reproduces the LonestarGPU worklist-driven single-source
// shortest paths kernel: threads pop arbitrary node ids from a worklist, so
// even the row-pointer loads are fully divergent gathers.
//
// Calibration: high request counts per load and wide channel spread (the
// paper groups sssp with the ~3.2-controller applications).
func BuildSSSP(p Params) gpu.Workload {
	rng := rand.New(rand.NewSource(p.Seed + 2))
	g := randCSR(rng, 150_000, 8, 0.3, 2048)
	a := newArena()
	rowBase := a.alloc(uint64(len(g.rowPtr)) * 4)
	colBase := a.alloc(uint64(len(g.colIdx)) * 4)
	wtBase := a.alloc(uint64(len(g.colIdx)) * 4)
	distBase := a.alloc(uint64(g.n) * 4)
	wlBase := a.alloc(1 << 20)

	iters := p.scaled(7)
	b := newBuilder(p)
	b.eachWarp(func(wr *rand.Rand, global int) sm.Program {
		var prog sm.Program
		for it := 0; it < iters; it++ {
			// Pop 32 node ids from the worklist (coalesced read of the
			// worklist itself).
			prog = append(prog, coalescedLoad(wlBase, (global*iters+it)*p.WarpSize%200000, p.WarpSize))
			// Lonestar worklists retain partial ordering: lanes pop in
			// clusters of four consecutive node ids.
			nodes := make([]int, p.WarpSize)
			var rp []uint64
			for c := 0; c < p.WarpSize/4; c++ {
				base := wr.Intn(g.n - 4)
				for k := 0; k < 4; k++ {
					nodes[c*4+k] = base + k
					rp = append(rp, elem4(rowBase, base+k))
				}
			}
			// Divergent row-pointer gather (up to 32 lines).
			prog = append(prog, gather(rp))
			// One edge-relaxation step per node: neighbor id, weight,
			// dist[neighbor] gathers and a scattered dist update.
			var ce, wts, dst []uint64
			for _, n := range nodes[:12] {
				if g.degree(n) == 0 {
					continue
				}
				e := int(g.rowPtr[n]) + wr.Intn(g.degree(n))
				ce = append(ce, elem4(colBase, e))
				wts = append(wts, elem4(wtBase, e))
				dst = append(dst, elem4(distBase, int(g.colIdx[e])))
			}
			if len(ce) > 0 {
				prog = append(prog, gather(ce), gather(wts), gather(dst), compute())
				prog = append(prog, scatter(dst[:1+len(dst)/4]))
			}
			prog = computeN(prog, 2)
		}
		return prog
	})
	return b.workload("sssp")
}

// BuildSP reproduces LonestarGPU survey propagation: message updates over a
// random bipartite factor graph — nearly pure pointer-chasing gathers with
// almost no spatial locality and very light writes.
func BuildSP(p Params) gpu.Workload {
	rng := rand.New(rand.NewSource(p.Seed + 3))
	g := randCSR(rng, 120_000, 6, 0.1, 1024)
	a := newArena()
	edgeBase := a.alloc(uint64(len(g.colIdx)) * 8) // per-edge message (8B)
	nodeBase := a.alloc(uint64(g.n) * 8)

	iters := p.scaled(8)
	b := newBuilder(p)
	b.eachWarp(func(wr *rand.Rand, global int) sm.Program {
		var prog sm.Program
		for it := 0; it < iters; it++ {
			// Each lane updates one clause: gather the messages on the
			// clause's (random) edges, then the variable states.
			var msg, vars []uint64
			for l := 0; l < p.WarpSize/2; l++ {
				n := wr.Intn(g.n)
				if g.degree(n) == 0 {
					continue
				}
				e := int(g.rowPtr[n]) + wr.Intn(g.degree(n))
				msg = append(msg, edgeBase+uint64(e)*8)
				vars = append(vars, nodeBase+uint64(g.colIdx[e])*8)
			}
			prog = append(prog, gather(msg), compute(), gather(vars), compute())
			// Sparse message write-back.
			prog = append(prog, scatter(msg[:2]))
			prog = computeN(prog, 3)
		}
		return prog
	})
	return b.workload("sp")
}

// BuildSpMV reproduces the Parboil CSR sparse matrix-vector kernel: one
// thread per row, banded column structure, so the x-vector gathers mix
// same-row locality (~30%, Section III-A) with cross-channel spread (~3.2
// controllers, Fig 3).
func BuildSpMV(p Params) gpu.Workload {
	rng := rand.New(rand.NewSource(p.Seed + 4))
	g := randCSR(rng, 100_000, 12, 0.85, 128)
	a := newArena()
	rowBase := a.alloc(uint64(len(g.rowPtr)) * 4)
	colBase := a.alloc(uint64(len(g.colIdx)) * 4)
	valBase := a.alloc(uint64(len(g.colIdx)) * 4)
	xBase := a.alloc(uint64(g.n) * 4)
	yBase := a.alloc(uint64(g.n) * 4)

	rows := p.scaled(8)
	b := newBuilder(p)
	b.eachWarp(func(wr *rand.Rand, global int) sm.Program {
		var prog sm.Program
		for r := 0; r < rows; r++ {
			base := ((global*rows + r) * p.WarpSize * 13) % (g.n - p.WarpSize)
			prog = append(prog, coalescedLoad(rowBase, base, p.WarpSize))
			// Each lane walks its row; per step every lane loads one
			// (col,val) pair then x[col].
			steps := 3
			for s := 0; s < steps; s++ {
				var cv, xs []uint64
				for l := 0; l < p.WarpSize; l++ {
					row := base + l
					d := g.degree(row)
					if d == 0 {
						continue
					}
					e := int(g.rowPtr[row]) + (s*d/steps)%d
					cv = append(cv, elem4(colBase, e))
					xs = append(xs, elem4(xBase, int(g.colIdx[e])))
					_ = valBase
				}
				prog = append(prog, gather(cv), gather(xs), compute())
			}
			prog = append(prog, coalescedStore(yBase, base, p.WarpSize))
			prog = computeN(prog, 2)
		}
		return prog
	})
	return b.workload("spmv")
}

// BuildCFD reproduces the Rodinia unstructured-mesh Euler solver: per-cell
// gathers of four neighbors' flow variables from a renumbered mesh
// (mostly-local neighbor indices with a random tail), wide channel spread.
func BuildCFD(p Params) gpu.Workload {
	rng := rand.New(rand.NewSource(p.Seed + 5))
	mesh := randCSR(rng, 97_000, 4, 0.9, 128)
	a := newArena()
	nbBase := a.alloc(uint64(len(mesh.colIdx)) * 4)
	// Five flow variables, SoA layout.
	var varBase [5]uint64
	for i := range varBase {
		varBase[i] = a.alloc(uint64(mesh.n) * 4)
	}
	fluxBase := a.alloc(uint64(mesh.n) * 4 * 5)

	iters := p.scaled(6)
	b := newBuilder(p)
	b.eachWarp(func(wr *rand.Rand, global int) sm.Program {
		var prog sm.Program
		for it := 0; it < iters; it++ {
			base := ((global + it*331) * p.WarpSize) % (mesh.n - p.WarpSize)
			// Neighbor indices: coalesced (4 per cell, AoS).
			prog = append(prog, coalescedLoad(nbBase, base*4, p.WarpSize))
			// Own-cell variables: coalesced.
			prog = append(prog, coalescedLoad(varBase[0], base, p.WarpSize))
			// Neighbor gathers for two variables over the 4 neighbors.
			for k := 0; k < 4; k++ {
				var g0, g1 []uint64
				for l := 0; l < p.WarpSize; l++ {
					cell := base + l
					if mesh.degree(cell) == 0 {
						continue
					}
					nb := int(mesh.edges(cell)[k%mesh.degree(cell)])
					g0 = append(g0, elem4(varBase[1+k%4], nb))
					g1 = append(g1, elem4(varBase[(2+k)%5], nb))
				}
				prog = append(prog, gather(g0), gather(g1), compute())
			}
			// Flux write-back: coalesced.
			prog = append(prog, coalescedStore(fluxBase, base, p.WarpSize))
			prog = computeN(prog, 4)
		}
		return prog
	})
	return b.workload("cfd")
}

// BuildNW reproduces Rodinia Needleman-Wunsch: 16x16 blocks along the
// anti-diagonal of a dynamic-programming matrix. Row segments coalesce;
// the column segments are short strided gathers confined to one block
// column (low controller spread), and every block writes its tile back —
// one of the paper's write-intensive applications (Fig 12).
func BuildNW(p Params) gpu.Workload {
	const width = 2048 // DP matrix is width x width int32
	a := newArena()
	matBase := a.alloc(uint64(width) * uint64(width) * 4)
	refBase := a.alloc(uint64(width) * uint64(width) * 4)

	blocks := p.scaled(20)
	b := newBuilder(p)
	b.eachWarp(func(wr *rand.Rand, global int) sm.Program {
		var prog sm.Program
		for bl := 0; bl < blocks; bl++ {
			bx := ((global*7 + bl*3) % (width/16 - 1)) * 16
			by := ((global*3 + bl*5) % (width/16 - 1)) * 16
			at := func(r, c int) uint64 { return matBase + uint64(r*width+c)*4 }
			// North boundary row: coalesced (16 x 4B = 64B).
			row := make([]uint64, 16)
			for i := range row {
				row[i] = at(by, bx+i)
			}
			prog = append(prog, gather(row))
			// West boundary column: strided by the matrix width — 12
			// lanes active, 8KB stride but confined to one block
			// column, so requests cluster on few controllers.
			col := make([]uint64, 12)
			for i := range col {
				col[i] = at(by+i, bx)
			}
			prog = append(prog, gather(col))
			// Reference tile: four coalesced row segments.
			for r := 0; r < 4; r++ {
				ref := make([]uint64, 16)
				for i := range ref {
					ref[i] = refBase + uint64((by+r*4)*width+bx+i)*4
				}
				prog = append(prog, gather(ref))
			}
			prog = append(prog, compute()) // the wavefront compute
			// Tile write-back: eight row stores (write intensive).
			for r := 0; r < 8; r++ {
				wrow := make([]uint64, 16)
				for i := range wrow {
					wrow[i] = at(by+r*2, bx+i)
				}
				prog = append(prog, scatter(wrow))
			}
		}
		return prog
	})
	return b.workload("nw")
}

// BuildKmeans reproduces the Rodinia k-means distance kernel with the
// untransposed (AoS) feature layout: lane i reads point (base+i)'s feature
// f at stride F*4 = 36B, so one warp load spans ~1.1KB — a mid-divergence
// pattern (~9 requests over ~4 blocks).
func BuildKmeans(p Params) gpu.Workload {
	const nPoints = 300_000
	const features = 9
	a := newArena()
	featBase := a.alloc(uint64(nPoints) * features * 4)
	memberBase := a.alloc(uint64(nPoints) * 4)
	centBase := a.alloc(64 * features * 4) // 64 centroids: cache resident

	pts := p.scaled(10)
	b := newBuilder(p)
	b.eachWarp(func(wr *rand.Rand, global int) sm.Program {
		var prog sm.Program
		for it := 0; it < pts; it++ {
			base := ((global*pts + it) * p.WarpSize) % (nPoints - p.WarpSize)
			for f := 0; f < 3; f++ {
				addrs := make([]uint64, p.WarpSize)
				for l := range addrs {
					addrs[l] = featBase + uint64(((base+l)*features+f*3)*4)
				}
				prog = append(prog, gather(addrs))
				// Centroid access: tiny array, stays cache resident.
				prog = append(prog, gather([]uint64{elem4(centBase, f*features)}))
				prog = append(prog, compute())
			}
			prog = append(prog, coalescedStore(memberBase, base, p.WarpSize))
			prog = computeN(prog, 2)
		}
		return prog
	})
	return b.workload("kmeans")
}

// BuildPVC reproduces MARS PageViewCount: hashing page-view log records
// into a hash table — coalesced log reads followed by random bucket probes
// and moderate insert-write traffic.
func BuildPVC(p Params) gpu.Workload {
	const logRecords = 1 << 20
	const buckets = 1 << 18
	a := newArena()
	logBase := a.alloc(logRecords * 16)
	bktBase := a.alloc(buckets * 16)
	outBase := a.alloc(logRecords * 8)

	recs := p.scaled(14)
	b := newBuilder(p)
	b.eachWarp(func(wr *rand.Rand, global int) sm.Program {
		var prog sm.Program
		for it := 0; it < recs; it++ {
			base := ((global*recs + it) * p.WarpSize) % (logRecords - p.WarpSize)
			// Log scan: coalesced (16B records -> 4 lines per warp).
			addrs := make([]uint64, p.WarpSize)
			for l := range addrs {
				addrs[l] = logBase + uint64(base+l)*16
			}
			prog = append(prog, sm.Insn{Kind: sm.Load, Addrs: addrs})
			prog = append(prog, compute()) // hash
			// Bucket probe: every lane hits a random bucket (full 32-way
			// divergence over a 4MB table).
			// Bucket probes: 12 lanes find distinct buckets this pass
			// (the rest hit the same cache lines as a neighbor lane).
			probe := make([]uint64, 12)
			for l := range probe {
				probe[l] = bktBase + uint64(wr.Intn(buckets))*16
			}
			prog = append(prog, sm.Insn{Kind: sm.Load, Addrs: probe})
			// Insert: scattered writes to a third of the buckets probed.
			prog = append(prog, scatter(probe[:4]))
			prog = append(prog, coalescedStore(outBase, base, p.WarpSize))
			prog = computeN(prog, 2)
		}
		return prog
	})
	return b.workload("PVC")
}

// BuildSS reproduces MARS SimilarityScore: pairwise document-vector dot
// products with score-matrix updates — clustered short gathers (low
// controller spread) and heavy write traffic (Fig 12).
func BuildSS(p Params) gpu.Workload {
	const docs = 40_000
	const veclen = 128
	a := newArena()
	vecBase := a.alloc(docs * veclen * 4)
	scoreBase := a.alloc(64 << 20)

	pairs := p.scaled(16)
	b := newBuilder(p)
	b.eachWarp(func(wr *rand.Rand, global int) sm.Program {
		var prog sm.Program
		for it := 0; it < pairs; it++ {
			d1 := wr.Intn(docs)
			d2 := wr.Intn(docs)
			// Vector segments: coalesced within each document.
			prog = append(prog, coalescedLoad(vecBase, d1*veclen, p.WarpSize))
			prog = append(prog, coalescedLoad(vecBase, d2*veclen, p.WarpSize))
			// Previous-score gather: a few entries clustered within one
			// score-matrix row (1-2 lines, single controller).
			prev := make([]uint64, 4)
			for k := range prev {
				prev[k] = scoreBase + uint64(d1)*1024 + uint64(wr.Intn(128))*4
			}
			prog = append(prog, gather(prev))
			prog = computeN(prog, 2)
			// Score updates: a burst of scattered stores into the score
			// matrix row (clustered within one region).
			rowBase := scoreBase + uint64(d1)*1024
			var ws []uint64
			for k := 0; k < 12; k++ {
				ws = append(ws, rowBase+uint64(wr.Intn(256))*4)
			}
			prog = append(prog, scatter(ws))
			prog = append(prog, scatter([]uint64{rowBase + uint64(d2%256)*4}))
			prog = append(prog, compute())
		}
		return prog
	})
	return b.workload("SS")
}

// BuildBH reproduces the LonestarGPU Barnes-Hut force kernel: spatially
// sorted bodies walk the octree together, so top-of-tree loads coalesce to
// a handful of nodes while deep levels diverge to per-lane node addresses.
func BuildBH(p Params) gpu.Workload {
	rng := rand.New(rand.NewSource(p.Seed + 8))
	tree := randOctree(rng, 9)
	a := newArena()
	nodeBase := a.alloc(uint64(tree.nodeCount()) * 32) // 32B per node
	bodyBase := a.alloc(1 << 22)
	accBase := a.alloc(1 << 22)

	walks := p.scaled(5)
	b := newBuilder(p)
	b.eachWarp(func(wr *rand.Rand, global int) sm.Program {
		var prog sm.Program
		for it := 0; it < walks; it++ {
			base := ((global*walks + it) * p.WarpSize) % (1<<20 - p.WarpSize)
			// Body positions: coalesced.
			prog = append(prog, coalescedLoad(bodyBase, base, p.WarpSize))
			// Walk the levels: distinct node count doubles with depth.
			for depth := 0; depth < len(tree.levels); depth++ {
				// Spatial sorting keeps at most ~16 distinct nodes per
				// warp even deep in the tree (Lonestar warp voting).
				distinct := 1 << uint(depth)
				if distinct > 16 {
					distinct = 16
				}
				addrs := make([]uint64, 0, p.WarpSize)
				for d := 0; d < distinct; d++ {
					n := tree.pick(wr, depth)
					addrs = append(addrs, nodeBase+uint64(n)*32)
				}
				prog = append(prog, gather(addrs), compute())
			}
			// Acceleration write-back: coalesced.
			prog = append(prog, coalescedStore(accBase, base, p.WarpSize))
			prog = computeN(prog, 3)
		}
		return prog
	})
	return b.workload("bh")
}

// BuildSAD reproduces Parboil sum-of-absolute-differences: 16x16 block
// matching over a reference window. All of a warp's loads fall inside one
// small 2D window (1-2 banks, Fig 3's lowest spread), and the SAD results
// produce heavy coalesced write traffic (Fig 12).
func BuildSAD(p Params) gpu.Workload {
	const frameW = 1920
	const frameH = 1080
	a := newArena()
	curBase := a.alloc(frameW * frameH * 2)
	refBase := a.alloc(frameW * frameH * 2)
	sadBase := a.alloc(256 << 20)

	blocks := p.scaled(10)
	b := newBuilder(p)
	b.eachWarp(func(wr *rand.Rand, global int) sm.Program {
		var prog sm.Program
		for it := 0; it < blocks; it++ {
			bx := (global*16 + it*37) % (frameW - 64)
			by := (global*7 + it*13) % (frameH - 64)
			pix := func(base uint64, x, y int) uint64 {
				return base + uint64(y*frameW+x)*2
			}
			// Current block rows: each warp load covers two 16-pixel
			// rows (2B pixels): requests cluster in one region.
			for r := 0; r < 4; r++ {
				addrs := make([]uint64, p.WarpSize)
				for l := range addrs {
					addrs[l] = pix(curBase, bx+(l%16), by+r*2+l/16)
				}
				prog = append(prog, sm.Insn{Kind: sm.Load, Addrs: addrs})
				// Candidate rows from the search window around (bx,by).
				cand := make([]uint64, p.WarpSize)
				dx, dy := wr.Intn(16)-8, wr.Intn(16)-8
				for l := range cand {
					cand[l] = pix(refBase, bx+dx+(l%16), by+dy+r*2+l/16)
				}
				prog = append(prog, sm.Insn{Kind: sm.Load, Addrs: cand})
				prog = append(prog, compute())
			}
			// SAD results: large coalesced store burst.
			out := (global*blocks + it) * 1024
			for r := 0; r < 3; r++ {
				prog = append(prog, coalescedStore(sadBase, (out+r*p.WarpSize)%(200<<18), p.WarpSize))
			}
			prog = append(prog, compute())
		}
		return prog
	})
	return b.workload("sad")
}
