package workload

import "math/rand"

// csr is a compressed-sparse-row graph/matrix: the substrate for bfs,
// sssp, sp and spmv. Values are not stored — only the structure matters
// for address generation — but colIdx contents are real so that dependent
// gathers (x[col[j]], dist[neighbor]) chase genuine indices.
type csr struct {
	n      int
	rowPtr []int32 // len n+1
	colIdx []int32 // len rowPtr[n]
}

// randCSR builds a graph with a skewed degree distribution (a crude R-MAT
// stand-in: most nodes near avgDeg, a heavy tail) and optional locality:
// with probability pLocal an edge lands within a +-window of its source
// (mesh/band structure), otherwise uniformly at random.
func randCSR(rng *rand.Rand, n, avgDeg int, pLocal float64, window int) *csr {
	deg := make([]int32, n)
	var m int32
	for i := range deg {
		d := avgDeg/2 + rng.Intn(avgDeg) // avgDeg/2 .. 1.5*avgDeg
		if rng.Intn(64) == 0 {
			d *= 8 // heavy-tail hub
		}
		if d < 1 {
			d = 1
		}
		deg[i] = int32(d)
		m += int32(d)
	}
	g := &csr{n: n, rowPtr: make([]int32, n+1), colIdx: make([]int32, m)}
	for i := 0; i < n; i++ {
		g.rowPtr[i+1] = g.rowPtr[i] + deg[i]
	}
	for i := 0; i < n; i++ {
		for e := g.rowPtr[i]; e < g.rowPtr[i+1]; e++ {
			if rng.Float64() < pLocal {
				d := rng.Intn(2*window+1) - window
				c := ((i+d)%n + n) % n // ring wrap, valid even for n < window
				g.colIdx[e] = int32(c)
			} else {
				g.colIdx[e] = int32(rng.Intn(n))
			}
		}
	}
	return g
}

// degree returns the out-degree of node i.
func (g *csr) degree(i int) int { return int(g.rowPtr[i+1] - g.rowPtr[i]) }

// edges returns the column indices of node i's edges.
func (g *csr) edges(i int) []int32 { return g.colIdx[g.rowPtr[i]:g.rowPtr[i+1]] }

// octree is the Barnes-Hut substrate: a pool of tree nodes with child
// pointers, allocated breadth-first the way the Lonestar builder does.
type octree struct {
	levels [][]int32 // node indices per level (into the node pool)
	child  [][8]int32
}

// randOctree builds a tree with the given depth; fanout thins with depth
// (real octrees are sparse near the leaves).
func randOctree(rng *rand.Rand, depth int) *octree {
	t := &octree{}
	var pool int32
	cur := []int32{0}
	pool = 1
	t.child = append(t.child, [8]int32{})
	for d := 0; d < depth; d++ {
		t.levels = append(t.levels, cur)
		var next []int32
		for _, n := range cur {
			kids := 0
			maxKids := 8
			if d > 2 {
				maxKids = 4
			}
			for c := 0; c < 8 && kids < maxKids; c++ {
				if rng.Intn(8) < maxKids {
					id := pool
					pool++
					t.child = append(t.child, [8]int32{})
					t.child[n][c] = id
					next = append(next, id)
					kids++
				} else {
					t.child[n][c] = -1
				}
			}
		}
		if len(next) == 0 {
			break
		}
		cur = next
	}
	t.levels = append(t.levels, cur)
	return t
}

// nodeCount returns the pool size.
func (t *octree) nodeCount() int { return len(t.child) }

// pick returns a random node id at the given level (clamped).
func (t *octree) pick(rng *rand.Rand, level int) int32 {
	if level >= len(t.levels) {
		level = len(t.levels) - 1
	}
	l := t.levels[level]
	return l[rng.Intn(len(l))]
}
