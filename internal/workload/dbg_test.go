package workload

import (
	"fmt"
	"testing"

	"dramlat/internal/gpu"
)

func TestDebugChar(t *testing.T) {
	for _, b := range All() {
		cfg := testConfig()
		sys, err := gpu.NewSystem(cfg, b.Build(testParams()))
		if err != nil {
			t.Fatal(err)
		}
		res, _ := sys.Run()
		fmt.Printf("%-14s drained=%v ticks=%-8d reqs/ld=%.2f multi=%.2f mcs=%.2f wrfrac=%.3f rdtxn=%d wrtxn=%d l2hr=%.2f l1hr=%.2f util=%.2f rowhit=%.2f\n",
			b.Name, res.Drained, res.Ticks, res.Summary.ReqsPerLoad, res.Summary.MultiReqFrac,
			res.Summary.AvgMCsTouched, res.WriteFrac, res.DRAM.ReadTxns, res.DRAM.WriteTxns, res.L2HitRate, res.L1HitRate, res.Utilization, res.RowHitRate)
	}
}
