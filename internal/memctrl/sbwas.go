package memctrl

import "dramlat/internal/memreq"

// SBWAS reproduces the single-bank warp-aware scheduler of Lakshminarayana
// et al. [32] as characterized in Section VI-C1 of the paper. Within each
// bank it chooses between (a) the oldest row-hit request and (b) the
// request of the warp with the fewest outstanding requests at this
// controller, biased by the profiled parameter alpha. The policy applies
// per bank only (no cross-bank or cross-channel grouping), and its
// controller uses the Interleaved write policy (writes compete with reads,
// no batch drain) — both fidelity points the paper calls out.
//
// The original potential function is a fluid-model construction; we
// reproduce its operational behaviour with the same knob: alpha in
// {0.25, 0.5, 0.75} sets how close to completion a warp must be before its
// row-miss request preempts row hits. Higher alpha favors nearly-complete
// warps more aggressively.
type SBWAS struct {
	ctl   *Controller
	rs    *RowSorter
	Alpha float64

	// outstanding counts buffered reads per warp at this controller.
	outstanding map[warpKey]int
	rrBank      int
}

type warpKey struct {
	sm, warp uint16
}

// NewSBWAS returns the comparator scheduler with the given alpha.
func NewSBWAS(alpha float64) *SBWAS {
	return &SBWAS{Alpha: alpha, outstanding: make(map[warpKey]int)}
}

// Name implements Scheduler.
func (s *SBWAS) Name() string { return "sbwas" }

// Attach implements Scheduler.
func (s *SBWAS) Attach(ctl *Controller) {
	s.ctl = ctl
	s.rs = NewRowSorter(ctl.Chan.NumBanks)
}

// OnEnqueue implements Scheduler.
func (s *SBWAS) OnEnqueue(r *memreq.Request, now int64) {
	s.rs.Add(r, now)
	if r.Group.Valid() {
		s.outstanding[warpKey{r.Group.SM, r.Group.Warp}]++
	}
}

// GroupComplete implements Scheduler.
func (s *SBWAS) GroupComplete(memreq.GroupID, int64) {}

// Pending implements Scheduler.
func (s *SBWAS) Pending() int { return s.rs.Count() }

// NextWakeup implements Scheduler. SBWAS runs under the Interleaved
// write policy, whose controller steps densely whenever any work is
// buffered, so this only matters for the all-banks-gated case.
func (s *SBWAS) NextWakeup(now int64) int64 {
	for bank := range s.rs.perBank {
		if len(s.rs.perBank[bank]) > 0 && s.ctl.Chan.CanAccept(bank) {
			return now + 1
		}
	}
	return Never
}

// shortJobCutoff converts alpha into the maximum number of outstanding
// requests a warp may have for its request to preempt a row-hit stream.
func (s *SBWAS) shortJobCutoff() int {
	switch {
	case s.Alpha >= 0.75:
		return 3
	case s.Alpha >= 0.5:
		return 2
	default:
		return 1
	}
}

// NextRead implements Scheduler.
func (s *SBWAS) NextRead(now int64) *memreq.Request {
	nb := s.ctl.Chan.NumBanks
	cutoff := s.shortJobCutoff()
	for i := 0; i < nb; i++ {
		bank := (s.rrBank + i) % nb
		if len(s.rs.perBank[bank]) == 0 || !s.ctl.Chan.CanAccept(bank) {
			continue
		}
		s.rrBank = (bank + 1) % nb

		hitStream := s.rs.StreamFor(bank, s.ctl.Chan.SchedRow(bank))

		// Candidate (b): the request in this bank belonging to the
		// warp with the fewest outstanding requests.
		var short *stream
		shortCount := 1 << 30
		var shortIdx int
		for _, st := range s.rs.perBank[bank] {
			for idx, r := range st.reqs {
				if !r.Group.Valid() {
					continue
				}
				n := s.outstanding[warpKey{r.Group.SM, r.Group.Warp}]
				if n < shortCount {
					shortCount, short, shortIdx = n, st, idx
				}
			}
		}

		if short != nil && shortCount <= cutoff && (hitStream == nil || short != hitStream) {
			r := s.removeAt(short, shortIdx)
			s.note(r)
			return r
		}
		if hitStream != nil {
			r := s.rs.PopFrom(hitStream)
			s.note(r)
			return r
		}
		if oldest := s.rs.OldestStream(bank); oldest != nil {
			r := s.rs.PopFrom(oldest)
			s.note(r)
			return r
		}
	}
	return nil
}

func (s *SBWAS) note(r *memreq.Request) {
	if r.Group.Valid() {
		k := warpKey{r.Group.SM, r.Group.Warp}
		if s.outstanding[k] > 0 {
			s.outstanding[k]--
		}
		if s.outstanding[k] == 0 {
			delete(s.outstanding, k)
		}
	}
}

func (s *SBWAS) removeAt(st *stream, idx int) *memreq.Request {
	r := st.reqs[idx]
	st.reqs = append(st.reqs[:idx], st.reqs[idx+1:]...)
	s.rs.count--
	if len(st.reqs) == 0 {
		s.rs.retire(st)
	}
	return r
}
