package memctrl

import (
	"math/rand"
	"testing"

	"dramlat/internal/dram"
	"dramlat/internal/gddr5"
	"dramlat/internal/memreq"
)

// TestEnqueueDequeueSteadyStateAllocs pins the zero-alloc property of the
// controller's hot loop: with the row-sorter structures, write queue and
// channel freelists warm, a sustained mixed read/write stream through
// AcceptRead/AcceptWrite, Tick and the completion callbacks must not
// allocate.
func TestEnqueueDequeueSteadyStateAllocs(t *testing.T) {
	ch := dram.NewChannel(gddr5.Default(), 16, 4, 4)
	ctl := New(ch, NewGMC(), 64, 64, 32, 16)

	var free []*memreq.Request
	recycle := func(r *memreq.Request, _ int64) { free = append(free, r) }
	ctl.OnReadDone = recycle
	ctl.OnWriteDone = recycle
	for i := 0; i < 128; i++ {
		free = append(free, &memreq.Request{})
	}

	var id uint64
	rng := rand.New(rand.NewSource(3))
	now := int64(0)
	tick := func() {
		if len(free) > 0 {
			r := free[len(free)-1]
			id++
			k := memreq.Read
			if rng.Intn(4) == 0 {
				k = memreq.Write
			}
			*r = memreq.Request{ID: id, Kind: k,
				Bank: rng.Intn(16), Row: rng.Intn(6), Col: rng.Intn(64) * 2}
			ok := false
			if k == memreq.Read {
				ok = ctl.AcceptRead(r, now)
			} else {
				ok = ctl.AcceptWrite(r, now)
			}
			if ok {
				free = free[:len(free)-1]
			}
		}
		ctl.Tick(now)
		now++
	}
	for i := 0; i < 8000; i++ {
		tick() // warm every queue and freelist
	}
	avg := testing.AllocsPerRun(100, func() {
		for i := 0; i < 100; i++ {
			tick()
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state controller tick allocated: %.2f allocs per 100 ticks, want 0", avg)
	}
}
