package memctrl

import "dramlat/internal/memreq"

// PARBS reproduces Parallelism-Aware Batch Scheduling (Mutlu & Moscibroda
// [40]) as discussed in Section VI-C3. PAR-BS forms batches of the oldest
// requests of every thread (here: warp) across all banks to guarantee
// fairness, ranks threads within the batch shortest-job-first by their
// maximum per-bank load (the "max rule"), and services marked requests
// with FR-FCFS order beneath the rank.
//
// The paper's point is that PAR-BS batches are the *opposite* of
// warp-groups: a batch deliberately mixes many warps' requests per bank, so
// it does not reduce latency divergence for any single warp. This
// implementation lets the harness quantify that argument.
type PARBS struct {
	ctl *Controller
	// MarkingCap bounds requests marked per (warp, bank) per batch (5 in
	// the original paper).
	MarkingCap int

	queued []*memreq.Request // unmarked arrivals
	batch  []*memreq.Request // marked requests being serviced
	rank   map[warpKey]int   // warp -> rank (smaller = higher priority)
}

// NewPARBS returns the comparator with the original marking cap of 5.
func NewPARBS() *PARBS { return &PARBS{MarkingCap: 5} }

// Name implements Scheduler.
func (p *PARBS) Name() string { return "parbs" }

// Attach implements Scheduler.
func (p *PARBS) Attach(ctl *Controller) { p.ctl = ctl }

// OnEnqueue implements Scheduler.
func (p *PARBS) OnEnqueue(r *memreq.Request, _ int64) { p.queued = append(p.queued, r) }

// GroupComplete implements Scheduler.
func (p *PARBS) GroupComplete(memreq.GroupID, int64) {}

// Pending implements Scheduler.
func (p *PARBS) Pending() int { return len(p.queued) + len(p.batch) }

// NextWakeup implements Scheduler. PAR-BS re-forms its batch inside
// NextRead (a mutation even when nothing dispatches), so it is stepped
// densely whenever it holds any request — the conservative bound that
// keeps batch-formation ticks identical to the dense loop.
func (p *PARBS) NextWakeup(now int64) int64 {
	if p.Pending() > 0 {
		return now + 1
	}
	return Never
}

// formBatch marks up to MarkingCap oldest requests per (warp, bank) and
// computes the shortest-job-first warp ranking over the marked set.
func (p *PARBS) formBatch() {
	if len(p.queued) == 0 {
		return
	}
	type wb struct {
		w warpKey
		b int
	}
	marked := make(map[wb]int)
	var batch, rest []*memreq.Request
	for _, r := range p.queued { // queued is in arrival order
		k := wb{warpOf(r), r.Bank}
		if marked[k] < p.MarkingCap {
			marked[k]++
			batch = append(batch, r)
		} else {
			rest = append(rest, r)
		}
	}
	p.batch = batch
	p.queued = rest

	// Rank warps: primary key max per-bank marked load (the max rule),
	// secondary total marked load; fewer first (shortest job).
	maxLoad := map[warpKey]int{}
	total := map[warpKey]int{}
	for k, n := range marked {
		total[k.w] += n
		if n > maxLoad[k.w] {
			maxLoad[k.w] = n
		}
	}
	type stat struct {
		w        warpKey
		max, tot int
	}
	var stats []stat
	for w := range maxLoad {
		stats = append(stats, stat{w, maxLoad[w], total[w]})
	}
	// Deterministic insertion sort by (max, tot, warp id).
	for i := 1; i < len(stats); i++ {
		for j := i; j > 0; j-- {
			a, b := stats[j-1], stats[j]
			if b.max < a.max || (b.max == a.max && (b.tot < a.tot ||
				(b.tot == a.tot && (b.w.sm < a.w.sm || (b.w.sm == a.w.sm && b.w.warp < a.w.warp))))) {
				stats[j-1], stats[j] = stats[j], stats[j-1]
			} else {
				break
			}
		}
	}
	p.rank = make(map[warpKey]int, len(stats))
	for i, s := range stats {
		p.rank[s.w] = i
	}
}

func warpOf(r *memreq.Request) warpKey { return warpKey{r.Group.SM, r.Group.Warp} }

// NextRead implements Scheduler: within the current batch, pick by
// (row-hit, warp rank, age); start a new batch when the current one drains.
func (p *PARBS) NextRead(now int64) *memreq.Request {
	if len(p.batch) == 0 {
		p.formBatch()
	}
	pool := p.batch
	fromBatch := true
	if len(pool) == 0 {
		pool = p.queued
		fromBatch = false
	}
	best := -1
	bestHit := false
	bestRank := 1 << 30
	for i, r := range pool {
		if !p.ctl.Chan.CanAccept(r.Bank) {
			continue
		}
		hit := p.ctl.Chan.ProjectHit(r.Bank, r.Row)
		rank := p.rank[warpOf(r)]
		if !fromBatch {
			rank = 0
		}
		better := false
		switch {
		case best == -1:
			better = true
		case hit != bestHit:
			better = hit
		case rank != bestRank:
			better = rank < bestRank
		}
		// Age: pool is arrival ordered, so the first seen wins ties.
		if better {
			best, bestHit, bestRank = i, hit, rank
		}
	}
	if best == -1 {
		return nil
	}
	r := pool[best]
	if fromBatch {
		p.batch = append(p.batch[:best], p.batch[best+1:]...)
	} else {
		p.queued = append(p.queued[:best], p.queued[best+1:]...)
	}
	return r
}

// ATLASState is the cross-controller least-attained-service table shared by
// the six ATLAS schedulers (Kim et al. [30], Section VI-C3). ATLAS
// exchanges information only at long quantum boundaries — far too coarse to
// coordinate at warp granularity, which is the paper's criticism.
type ATLASState struct {
	// QuantumTicks is the rank-update period (the original uses ~10M
	// cycles; scaled down to stay meaningful within our kernels).
	QuantumTicks int64

	attained    map[warpKey]int64 // service accumulated this quantum
	rank        map[warpKey]int
	nextUpdate  int64
	totalRanked int
}

// NewATLASState builds the shared table.
func NewATLASState(quantum int64) *ATLASState {
	return &ATLASState{
		QuantumTicks: quantum,
		attained:     make(map[warpKey]int64),
		rank:         make(map[warpKey]int),
	}
}

// note records service (in bursts) for a warp.
func (a *ATLASState) note(w warpKey, bursts int64) { a.attained[w] += bursts }

// rankOf returns the warp's priority rank (smaller = less attained service
// = higher priority). Unranked warps (first seen this quantum) get top
// priority, matching ATLAS's bias toward least-attained service.
func (a *ATLASState) rankOf(w warpKey) int {
	if r, ok := a.rank[w]; ok {
		return r
	}
	return -1
}

// maybeUpdate recomputes ranks at quantum boundaries.
func (a *ATLASState) maybeUpdate(now int64) {
	if now < a.nextUpdate {
		return
	}
	a.nextUpdate = now + a.QuantumTicks
	type stat struct {
		w warpKey
		s int64
	}
	var stats []stat
	for w, s := range a.attained {
		stats = append(stats, stat{w, s})
	}
	for i := 1; i < len(stats); i++ {
		for j := i; j > 0; j-- {
			x, y := stats[j-1], stats[j]
			if y.s < x.s || (y.s == x.s && (y.w.sm < x.w.sm || (y.w.sm == x.w.sm && y.w.warp < x.w.warp))) {
				stats[j-1], stats[j] = stats[j], stats[j-1]
			} else {
				break
			}
		}
	}
	a.rank = make(map[warpKey]int, len(stats))
	for i, s := range stats {
		a.rank[s.w] = i
	}
	a.totalRanked = len(stats)
	// Exponentially age attained service like the original.
	for w := range a.attained {
		a.attained[w] /= 2
	}
}

// ATLAS is the per-controller scheduler sharing an ATLASState.
type ATLAS struct {
	ctl   *Controller
	state *ATLASState
	rs    *RowSorter
}

// NewATLAS returns a controller scheduler bound to the shared state.
func NewATLAS(state *ATLASState) *ATLAS { return &ATLAS{state: state} }

// Name implements Scheduler.
func (a *ATLAS) Name() string { return "atlas" }

// Attach implements Scheduler.
func (a *ATLAS) Attach(ctl *Controller) {
	a.ctl = ctl
	a.rs = NewRowSorter(ctl.Chan.NumBanks)
}

// OnEnqueue implements Scheduler.
func (a *ATLAS) OnEnqueue(r *memreq.Request, now int64) { a.rs.Add(r, now) }

// GroupComplete implements Scheduler.
func (a *ATLAS) GroupComplete(memreq.GroupID, int64) {}

// Pending implements Scheduler.
func (a *ATLAS) Pending() int { return a.rs.Count() }

// NextWakeup implements Scheduler. Beyond dispatchability, ATLAS
// mutates shared state at quantum boundaries: the dense loop calls
// NextRead (and so maybeUpdate) every non-draining tick, so the event
// loop must visit the controller at the quantum-update tick even when
// no request is pending.
func (a *ATLAS) NextWakeup(now int64) int64 {
	w := a.state.nextUpdate
	if w <= now {
		w = now + 1
	}
	for bank := range a.rs.perBank {
		if len(a.rs.perBank[bank]) > 0 && a.ctl.Chan.CanAccept(bank) {
			return now + 1
		}
	}
	return w
}

// NextRead implements Scheduler: priority = (LAS rank, row hit, age).
func (a *ATLAS) NextRead(now int64) *memreq.Request {
	a.state.maybeUpdate(now)
	var best *stream
	bestIdx := -1
	bestRank := 1 << 30
	bestHit := false
	for bank := range a.rs.perBank {
		if !a.ctl.Chan.CanAccept(bank) {
			continue
		}
		for _, s := range a.rs.perBank[bank] {
			for idx, r := range s.reqs {
				rank := a.state.rankOf(warpOf(r))
				hit := idx == 0 && s.row == a.ctl.Chan.SchedRow(bank)
				better := false
				switch {
				case best == nil:
					better = true
				case rank != bestRank:
					better = rank < bestRank
				case hit != bestHit:
					better = hit
				case r.Arrive < best.reqs[bestIdx].Arrive:
					better = true
				}
				if better {
					best, bestIdx, bestRank, bestHit = s, idx, rank, hit
				}
			}
		}
	}
	if best == nil {
		return nil
	}
	r := best.reqs[bestIdx]
	best.reqs = append(best.reqs[:bestIdx], best.reqs[bestIdx+1:]...)
	a.rs.count--
	if len(best.reqs) == 0 {
		a.rs.retire(best)
	}
	a.state.note(warpOf(r), 2)
	return r
}
