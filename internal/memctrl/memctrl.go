// Package memctrl implements the GPU memory controller (GMC) frame of
// Section II-C: read and write queues, watermark-based write draining, and
// a pluggable transaction scheduler. The baseline schedulers — the
// throughput-optimized GMC row-sorter scheduler, FCFS, FR-FCFS, and the
// SBWAS comparator of Section VI-C — live here; the paper's warp-aware
// schedulers build on this frame in internal/core.
package memctrl

import (
	"dramlat/internal/dram"
	"dramlat/internal/guard"
	"dramlat/internal/memreq"
	"dramlat/internal/telemetry"
)

// WritePolicy selects how writes reach DRAM.
type WritePolicy uint8

const (
	// DrainBatch is the commonly used high/low-watermark batch drain
	// (Section II-C): writes are buffered and drained in bursts to avoid
	// frequent bus turnarounds.
	DrainBatch WritePolicy = iota
	// Interleaved services writes alongside reads with no batching, as
	// SBWAS does (Section VI-C1). It suffers frequent tWTR/tRTW
	// turnaround penalties.
	Interleaved
)

// Scheduler is a transaction scheduler: it owns the read-queue contents and
// decides which read request to dispatch to DRAM next.
type Scheduler interface {
	// Name identifies the policy ("gmc", "wg-w", ...).
	Name() string
	// Attach wires the scheduler to its controller before use.
	Attach(ctl *Controller)
	// OnEnqueue accepts a read request into the scheduler's structures.
	OnEnqueue(r *memreq.Request, now int64)
	// GroupComplete signals that no further requests of group g will
	// arrive at this controller (the group's channel-tagged request was
	// filtered by an L2 hit or MSHR merge). Schedulers that do not track
	// groups ignore it.
	GroupComplete(g memreq.GroupID, now int64)
	// NextRead removes and returns the next read to dispatch, or nil.
	// The returned request's bank must satisfy ctl.Chan.CanAccept.
	NextRead(now int64) *memreq.Request
	// Pending returns the number of reads held by the scheduler.
	Pending() int
	// NextWakeup returns the earliest tick strictly after now at which
	// NextRead could return a request or otherwise mutate scheduler
	// state, assuming no new input arrives first (no enqueues, no group
	// credits, no DRAM state change — bank-gated dispatchability is
	// covered by the channel's own wakeup). Never means quiescent until
	// external input. Early wakeups are harmless; late ones break the
	// event-driven/dense equivalence.
	NextWakeup(now int64) int64
}

// Never is the wakeup-contract sentinel shared with dram.Never.
const Never = dram.Never

// DrainObserver is implemented by schedulers that want to observe write
// drains beginning (used for the Fig 12 accounting in the WG schedulers).
type DrainObserver interface {
	OnDrainStart(now int64)
}

// SharedDemandObserver is implemented by schedulers that react to the L2
// merging another warp's miss into a group's in-flight request (the
// shared-data extension from the paper's conclusion).
type SharedDemandObserver interface {
	OnSharedDemand(g memreq.GroupID, now int64)
}

// Stats aggregates controller-level counters.
type Stats struct {
	ReadsAccepted     int64
	WritesAccepted    int64
	ReadsDone         int64
	WritesDone        int64
	DrainsStarted     int64
	DrainTicks        int64
	ReadQFullRejects  int64
	WriteQFullRejects int64
	// GroupCompleteSignals counts zero-cost group-credit messages from
	// the L2 slice.
	GroupCompleteSignals int64
}

// Controller is one per-channel GPU memory controller.
type Controller struct {
	Chan  *dram.Channel
	Sched Scheduler

	ReadCap  int // read queue entries (64 in Table II)
	WriteCap int // write queue entries (64 in Table II)
	HighWM   int // drain trigger (32)
	LowWM    int // drain release (16)
	Writes   WritePolicy
	// WriteAgeDrain starts a drain when the oldest buffered write has
	// waited this many ticks even though the high watermark has not been
	// reached, so write-light workloads cannot park the queue just below
	// the watermark forever. Zero disables the age trigger.
	WriteAgeDrain int64

	readCount int
	// writeQ is the buffered-write FIFO, head-indexed: entries before
	// wqHead are dispatched (and nil). Popping the oldest write — the
	// common case in nextWrite — advances wqHead instead of memmoving the
	// whole queue; the backing array is reset once the queue empties.
	// wqBank/wqRow mirror each entry's bank and row in flat parallel
	// slices so the oldest-hit-wins scan in nextWrite stays on contiguous
	// memory instead of dereferencing every queued request.
	writeQ      []*memreq.Request
	wqBank      []int32
	wqRow       []int32
	wqHead      int
	draining    bool
	drainTarget int  // occupancy at which the current drain releases
	wrAlt       bool // interleaved mode: alternate read/write

	// OnReadDone fires when a read's data transfer completes.
	OnReadDone func(r *memreq.Request, now int64)
	// OnWriteDone fires when a write's data transfer completes.
	OnWriteDone func(r *memreq.Request, now int64)

	// Probe receives queue enqueue/dequeue and write-drain trace events;
	// nil disables tracing (one branch per event site). ChannelID tags
	// the events with this controller's channel.
	Probe     *telemetry.Tracer
	ChannelID int

	Stats Stats
}

// New builds a controller around ch with the given scheduler and Table II
// queue parameters.
func New(ch *dram.Channel, sched Scheduler, readCap, writeCap, highWM, lowWM int) *Controller {
	ctl := &Controller{
		Chan:     ch,
		Sched:    sched,
		ReadCap:  readCap,
		WriteCap: writeCap,
		HighWM:   highWM,
		LowWM:    lowWM,
	}
	ch.OnComplete = ctl.onComplete
	sched.Attach(ctl)
	return ctl
}

func (ctl *Controller) onComplete(txn *dram.Transaction, now int64) {
	r := txn.Req
	r.Done = now
	if r.Kind == memreq.Write {
		ctl.Stats.WritesDone++
		if ctl.OnWriteDone != nil {
			ctl.OnWriteDone(r, now)
		}
		return
	}
	ctl.Stats.ReadsDone++
	if ctl.OnReadDone != nil {
		ctl.OnReadDone(r, now)
	}
}

// ReadOccupancy returns the number of reads buffered (scheduler-held).
func (ctl *Controller) ReadOccupancy() int { return ctl.readCount }

// WriteOccupancy returns the number of buffered writes.
func (ctl *Controller) WriteOccupancy() int { return len(ctl.writeQ) - ctl.wqHead }

// Draining reports whether a write drain is in progress.
func (ctl *Controller) Draining() bool { return ctl.draining }

// DrainImminent reports whether the write queue occupancy is within eight
// entries of the high water mark — the WG-W trigger (Section IV-E).
func (ctl *Controller) DrainImminent() bool {
	return ctl.Writes == DrainBatch && ctl.WriteOccupancy() >= ctl.HighWM-8
}

// AcceptRead offers a read request to the controller. It returns false
// (back-pressure) when the read queue is full.
func (ctl *Controller) AcceptRead(r *memreq.Request, now int64) bool {
	if r.BusOnly {
		// Zero-Latency-Divergence ideal: trailing requests bypass the
		// scheduler and banks, consuming only bus bandwidth (Fig 4).
		r.Arrive = now
		ctl.Stats.ReadsAccepted++
		ctl.Chan.EnqueueBusOnly(r)
		if ctl.Probe != nil {
			// Bus-only requests skip the queue, so trace the enqueue
			// and dispatch together to keep request lifecycles paired.
			ctl.Probe.EnqueueRead(now, ctl.ChannelID, r, ctl.readCount)
			ctl.Probe.DequeueRead(now, ctl.ChannelID, r, ctl.readCount)
		}
		return true
	}
	if ctl.readCount >= ctl.ReadCap {
		ctl.Stats.ReadQFullRejects++
		return false
	}
	ctl.readCount++
	r.Arrive = now
	ctl.Stats.ReadsAccepted++
	ctl.Sched.OnEnqueue(r, now)
	if ctl.Probe != nil {
		ctl.Probe.EnqueueRead(now, ctl.ChannelID, r, ctl.readCount)
	}
	return true
}

// AcceptWrite offers a write request to the controller. It returns false
// when the write queue is full.
func (ctl *Controller) AcceptWrite(r *memreq.Request, now int64) bool {
	if ctl.WriteOccupancy() >= ctl.WriteCap {
		ctl.Stats.WriteQFullRejects++
		return false
	}
	r.Arrive = now
	ctl.writeQ = append(ctl.writeQ, r)
	ctl.wqBank = append(ctl.wqBank, int32(r.Bank))
	ctl.wqRow = append(ctl.wqRow, int32(r.Row))
	ctl.Stats.WritesAccepted++
	if ctl.Probe != nil {
		ctl.Probe.EnqueueWrite(now, ctl.ChannelID, r, ctl.WriteOccupancy())
	}
	return true
}

// SharedDemand notifies the scheduler that group g's in-flight line just
// picked up another warp's demand at the L2.
func (ctl *Controller) SharedDemand(g memreq.GroupID, now int64) {
	if o, ok := ctl.Sched.(SharedDemandObserver); ok {
		o.OnSharedDemand(g, now)
	}
}

// GroupComplete forwards an L2 group-credit to the scheduler.
func (ctl *Controller) GroupComplete(g memreq.GroupID, now int64) {
	ctl.Stats.GroupCompleteSignals++
	ctl.Sched.GroupComplete(g, now)
}

// nextWrite picks the next write to dispatch: the oldest projected row hit
// if any, else the oldest write whose bank has command-queue space. The
// scan stops at the first projected hit, and removing the queue head — the
// overwhelmingly common pick during a drain — is a head-index bump rather
// than a memmove of the whole queue.
func (ctl *Controller) nextWrite() *memreq.Request {
	hit, any := -1, -1
	for i := ctl.wqHead; i < len(ctl.writeQ); i++ {
		bank := int(ctl.wqBank[i])
		if !ctl.Chan.CanAccept(bank) {
			continue
		}
		if any == -1 {
			any = i
		}
		if ctl.Chan.ProjectHit(bank, int(ctl.wqRow[i])) {
			hit = i
			break // oldest hit wins
		}
	}
	idx := hit
	if idx == -1 {
		idx = any
	}
	if idx == -1 {
		return nil
	}
	w := ctl.writeQ[idx]
	if idx == ctl.wqHead {
		ctl.writeQ[idx] = nil
		ctl.wqHead++
	} else {
		copy(ctl.writeQ[idx:], ctl.writeQ[idx+1:])
		copy(ctl.wqBank[idx:], ctl.wqBank[idx+1:])
		copy(ctl.wqRow[idx:], ctl.wqRow[idx+1:])
		ctl.writeQ[len(ctl.writeQ)-1] = nil
		ctl.writeQ = ctl.writeQ[:len(ctl.writeQ)-1]
		ctl.wqBank = ctl.wqBank[:len(ctl.wqBank)-1]
		ctl.wqRow = ctl.wqRow[:len(ctl.wqRow)-1]
	}
	if ctl.wqHead == len(ctl.writeQ) {
		ctl.writeQ = ctl.writeQ[:0]
		ctl.wqBank = ctl.wqBank[:0]
		ctl.wqRow = ctl.wqRow[:0]
		ctl.wqHead = 0
	}
	return w
}

// dispatchRead asks the scheduler for a read and enqueues it to DRAM.
func (ctl *Controller) dispatchRead(now int64) bool {
	r := ctl.Sched.NextRead(now)
	if r == nil {
		return false
	}
	if !ctl.Chan.CanAccept(r.Bank) {
		// Hot-path invariant (the Scheduler contract); a typed panic the
		// façade's recover converts into a *guard.RunError.
		guard.Invariantf("memctrl: scheduler returned read for full bank %s", r)
	}
	ctl.readCount--
	ctl.Chan.Enqueue(r)
	if ctl.Probe != nil {
		ctl.Probe.DequeueRead(now, ctl.ChannelID, r, ctl.readCount)
	}
	return true
}

// dispatchWrite moves a write into the DRAM command queues.
func (ctl *Controller) dispatchWrite(w *memreq.Request, now int64) {
	ctl.Chan.Enqueue(w)
	if ctl.Probe != nil {
		ctl.Probe.DequeueWrite(now, ctl.ChannelID, w, ctl.WriteOccupancy())
	}
}

// Tick advances the controller one cycle: it updates the drain state
// machine, dispatches at most one transaction to the DRAM command queues,
// and issues at most one DRAM command, which it returns for tracing (nil
// when the command bus idles).
func (ctl *Controller) Tick(now int64) *dram.Command {
	switch ctl.Writes {
	case DrainBatch:
		if !ctl.draining {
			occ := ctl.WriteOccupancy()
			aged := ctl.WriteAgeDrain > 0 && occ > 0 &&
				now-ctl.writeQ[ctl.wqHead].Arrive > ctl.WriteAgeDrain
			idle := occ > 0 && ctl.readCount == 0 && ctl.Chan.Idle()
			if occ >= ctl.HighWM || aged || idle {
				ctl.draining = true
				// Watermark drains stop at the low watermark;
				// age/idle drains flush the queue so stale writes
				// cannot re-trigger a turnaround every few ticks.
				ctl.drainTarget = ctl.LowWM
				if aged || idle {
					ctl.drainTarget = 0
				}
				ctl.Stats.DrainsStarted++
				if ctl.Probe != nil {
					ctl.Probe.DrainBegin(now, ctl.ChannelID, occ)
				}
				if obs, ok := ctl.Sched.(DrainObserver); ok {
					obs.OnDrainStart(now)
				}
			}
		} else if ctl.WriteOccupancy() <= ctl.drainTarget {
			ctl.draining = false
			if ctl.Probe != nil {
				ctl.Probe.DrainEnd(now, ctl.ChannelID, ctl.WriteOccupancy())
			}
		}
		if ctl.draining {
			ctl.Stats.DrainTicks++
			if w := ctl.nextWrite(); w != nil {
				ctl.dispatchWrite(w, now)
			}
		} else {
			ctl.dispatchRead(now)
		}
	case Interleaved:
		// Writes compete with reads without batch draining (Section
		// VI-C1): once a handful of writes are buffered they alternate
		// with reads, exposing the bus-turnaround cost that the
		// batch-drain policy avoids.
		occ := ctl.WriteOccupancy()
		tryWrite := ctl.wrAlt && occ >= 4
		if occ >= ctl.WriteCap-1 || (occ > 0 && ctl.readCount == 0) {
			tryWrite = true
		}
		if tryWrite {
			if w := ctl.nextWrite(); w != nil {
				ctl.dispatchWrite(w, now)
				ctl.wrAlt = false
			} else if ctl.dispatchRead(now) {
				ctl.wrAlt = true
			}
		} else {
			if ctl.dispatchRead(now) {
				ctl.wrAlt = true
			} else if w := ctl.nextWrite(); w != nil {
				ctl.dispatchWrite(w, now)
				ctl.wrAlt = false
			}
		}
	}
	return ctl.Chan.Tick(now)
}

// NextWakeup returns the earliest tick strictly after now at which Tick
// could do anything beyond a no-op pass, assuming no new requests are
// accepted before then. The drain state machine steps densely (its
// DrainTicks accounting is per-tick); otherwise the wakeup is the min of
// the channel's command-legal tick, the write-age drain trigger, and the
// scheduler's own wakeup.
func (ctl *Controller) NextWakeup(now int64) int64 {
	if ctl.draining {
		return now + 1
	}
	if ctl.Writes == Interleaved && (ctl.readCount > 0 || ctl.WriteOccupancy() > 0) {
		// Interleaved mode arbitrates reads vs writes every cycle.
		return now + 1
	}
	w := ctl.Chan.NextWakeup(now)
	if ctl.WriteOccupancy() > 0 {
		if ctl.readCount == 0 && ctl.Chan.Idle() {
			return now + 1 // the idle-drain trigger fires on the next tick
		}
		if ctl.WriteAgeDrain > 0 {
			if age := ctl.writeQ[ctl.wqHead].Arrive + ctl.WriteAgeDrain + 1; age < w {
				w = age
			}
		}
	}
	if s := ctl.Sched.NextWakeup(now); s < w {
		w = s
	}
	if w <= now {
		return now + 1
	}
	return w
}

// Idle reports whether the controller holds no work at all.
func (ctl *Controller) Idle() bool {
	return ctl.readCount == 0 && ctl.WriteOccupancy() == 0 && ctl.Chan.Idle()
}

// FlushTelemetry closes any trace span still open at end of run (a drain
// in progress when the last warp retired), so begin/end pairs balance.
func (ctl *Controller) FlushTelemetry(now int64) {
	if ctl.Probe != nil && ctl.draining {
		ctl.Probe.DrainEnd(now, ctl.ChannelID, ctl.WriteOccupancy())
	}
}
