package memctrl

import "dramlat/internal/memreq"

// GMC is the throughput-optimized baseline GPU memory controller scheduler
// of Section II-C. The row sorter forms row-hit streams per bank; the
// transaction scheduler picks a stream per bank and interleaves banks,
// bounded by an age-based starvation threshold and a maximum row-hit streak
// limit.
type GMC struct {
	ctl *Controller
	rs  *RowSorter

	// AgeThresh is the starvation guard: when the oldest pending request
	// of a bank has waited this long, its stream is served next even if
	// the active stream still has row hits.
	AgeThresh int64
	// MaxStreak caps the number of consecutive requests served from one
	// row-hit stream while other streams wait on the same bank.
	MaxStreak int

	streak []int // per-bank current row-hit streak
	rrBank int
}

// NewGMC returns the baseline scheduler with the default starvation
// parameters.
func NewGMC() *GMC { return &GMC{AgeThresh: 2000, MaxStreak: 16} }

// Name implements Scheduler.
func (g *GMC) Name() string { return "gmc" }

// Attach implements Scheduler.
func (g *GMC) Attach(ctl *Controller) {
	g.ctl = ctl
	g.rs = NewRowSorter(ctl.Chan.NumBanks)
	g.streak = make([]int, ctl.Chan.NumBanks)
}

// OnEnqueue implements Scheduler.
func (g *GMC) OnEnqueue(r *memreq.Request, now int64) { g.rs.Add(r, now) }

// GroupComplete implements Scheduler (the GMC is not warp-aware).
func (g *GMC) GroupComplete(memreq.GroupID, int64) {}

// Pending implements Scheduler.
func (g *GMC) Pending() int { return g.rs.Count() }

// NextRead implements Scheduler: round-robin across banks; within a bank,
// keep streaming row hits from the stream matching the projected open row
// until the streak cap or the age threshold forces a switch to the oldest
// stream.
func (g *GMC) NextRead(now int64) *memreq.Request {
	nb := g.ctl.Chan.NumBanks
	for i := 0; i < nb; i++ {
		bank := (g.rrBank + i) % nb
		if len(g.rs.perBank[bank]) == 0 || !g.ctl.Chan.CanAccept(bank) {
			continue
		}
		s := g.pickStream(bank, now)
		if s == nil {
			continue
		}
		hit := s.row == g.ctl.Chan.SchedRow(bank)
		if hit {
			g.streak[bank]++
		} else {
			g.streak[bank] = 1
		}
		g.rrBank = (bank + 1) % nb
		return g.rs.PopFrom(s)
	}
	return nil
}

// NextWakeup implements Scheduler: the GMC dispatches whenever any bank
// has both pending streams and command-queue space; the age threshold
// only changes which stream wins at a dispatch tick, so a bank-gated
// scheduler is woken by the channel's own wakeup.
func (g *GMC) NextWakeup(now int64) int64 {
	for bank := range g.rs.perBank {
		if len(g.rs.perBank[bank]) > 0 && g.ctl.Chan.CanAccept(bank) {
			return now + 1
		}
	}
	return Never
}

func (g *GMC) pickStream(bank int, now int64) *stream {
	active := g.rs.StreamFor(bank, g.ctl.Chan.SchedRow(bank))
	oldest := g.rs.OldestStream(bank)
	if oldest == nil {
		return nil
	}
	if active == nil || len(active.reqs) == 0 {
		return oldest
	}
	if active != oldest {
		// Starvation guards: an aged-out older request, or an
		// exhausted streak budget, preempts the row-hit stream.
		if now-oldest.oldestArrive() > g.AgeThresh {
			return oldest
		}
		if g.streak[bank] >= g.MaxStreak {
			return oldest
		}
	}
	return active
}

// FRFCFS is the classic First-Ready, First-Come-First-Served scheduler
// (Rixner et al. [42]): the oldest row hit on any ready bank wins; with no
// hits, the oldest request wins.
type FRFCFS struct {
	ctl *Controller
	rs  *RowSorter
}

// NewFRFCFS returns an FR-FCFS scheduler.
func NewFRFCFS() *FRFCFS { return &FRFCFS{} }

// Name implements Scheduler.
func (f *FRFCFS) Name() string { return "frfcfs" }

// Attach implements Scheduler.
func (f *FRFCFS) Attach(ctl *Controller) {
	f.ctl = ctl
	f.rs = NewRowSorter(ctl.Chan.NumBanks)
}

// OnEnqueue implements Scheduler.
func (f *FRFCFS) OnEnqueue(r *memreq.Request, now int64) { f.rs.Add(r, now) }

// GroupComplete implements Scheduler.
func (f *FRFCFS) GroupComplete(memreq.GroupID, int64) {}

// Pending implements Scheduler.
func (f *FRFCFS) Pending() int { return f.rs.Count() }

// NextRead implements Scheduler.
func (f *FRFCFS) NextRead(now int64) *memreq.Request {
	var bestHit, bestAny *stream
	for bank := range f.rs.perBank {
		if !f.ctl.Chan.CanAccept(bank) {
			continue
		}
		if s := f.rs.StreamFor(bank, f.ctl.Chan.SchedRow(bank)); s != nil {
			if bestHit == nil || s.oldestArrive() < bestHit.oldestArrive() {
				bestHit = s
			}
		}
		if s := f.rs.OldestStream(bank); s != nil {
			if bestAny == nil || s.oldestArrive() < bestAny.oldestArrive() {
				bestAny = s
			}
		}
	}
	if bestHit != nil {
		return f.rs.PopFrom(bestHit)
	}
	if bestAny != nil {
		return f.rs.PopFrom(bestAny)
	}
	return nil
}

// NextWakeup implements Scheduler: FR-FCFS can dispatch exactly when a
// bank has pending work and queue space; otherwise only external input
// (or the channel freeing a bank, covered by its wakeup) changes that.
func (f *FRFCFS) NextWakeup(now int64) int64 {
	for bank := range f.rs.perBank {
		if len(f.rs.perBank[bank]) > 0 && f.ctl.Chan.CanAccept(bank) {
			return now + 1
		}
	}
	return Never
}

// FCFS services reads strictly in arrival order; the head of line blocks
// when its bank's command queue is full. Combined with the
// non-interleaving interconnect mode it models the WAFCFS comparator of
// Yuan et al. [51] (Section VI-C2).
type FCFS struct {
	ctl *Controller
	q   []*memreq.Request
}

// NewFCFS returns a strict first-come-first-served scheduler.
func NewFCFS() *FCFS { return &FCFS{} }

// Name implements Scheduler.
func (f *FCFS) Name() string { return "fcfs" }

// Attach implements Scheduler.
func (f *FCFS) Attach(ctl *Controller) { f.ctl = ctl }

// OnEnqueue implements Scheduler.
func (f *FCFS) OnEnqueue(r *memreq.Request, _ int64) { f.q = append(f.q, r) }

// GroupComplete implements Scheduler.
func (f *FCFS) GroupComplete(memreq.GroupID, int64) {}

// Pending implements Scheduler.
func (f *FCFS) Pending() int { return len(f.q) }

// NextRead implements Scheduler.
func (f *FCFS) NextRead(int64) *memreq.Request {
	if len(f.q) == 0 || !f.ctl.Chan.CanAccept(f.q[0].Bank) {
		return nil
	}
	r := f.q[0]
	f.q = f.q[1:]
	return r
}

// NextWakeup implements Scheduler: the head of line either dispatches
// next tick or waits on its bank's command queue (a full bank implies a
// finite channel wakeup, which re-evaluates this).
func (f *FCFS) NextWakeup(now int64) int64 {
	if len(f.q) > 0 && f.ctl.Chan.CanAccept(f.q[0].Bank) {
		return now + 1
	}
	return Never
}
