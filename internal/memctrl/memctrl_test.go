package memctrl

import (
	"math/rand"
	"testing"

	"dramlat/internal/dram"
	"dramlat/internal/gddr5"
	"dramlat/internal/memreq"
)

func newCtl(sched Scheduler) *Controller {
	ch := dram.NewChannel(gddr5.Default(), 16, 4, 4)
	return New(ch, sched, 64, 64, 32, 16)
}

var reqID uint64

func rd(bank, row, col int, g memreq.GroupID) *memreq.Request {
	reqID++
	return &memreq.Request{ID: reqID, Kind: memreq.Read, Bank: bank, Row: row, Col: col, Group: g}
}

func wr(bank, row, col int) *memreq.Request {
	reqID++
	return &memreq.Request{ID: reqID, Kind: memreq.Write, Bank: bank, Row: row, Col: col}
}

func runUntilIdle(t *testing.T, ctl *Controller, start int64, bound int64) int64 {
	t.Helper()
	now := start
	for ; now < bound; now++ {
		ctl.Tick(now)
		if ctl.Idle() {
			return now
		}
	}
	t.Fatalf("controller not idle after %d ticks (pending=%d writes=%d)",
		bound, ctl.Sched.Pending(), ctl.WriteOccupancy())
	return now
}

func TestGMCPrefersRowHits(t *testing.T) {
	g := NewGMC()
	ctl := newCtl(g)
	var order []uint64
	ctl.OnReadDone = func(r *memreq.Request, _ int64) { order = append(order, r.ID) }

	// Arrival order: miss(row1), miss(row2), hit(row1). GMC should
	// reorder the row-1 hit ahead of the row-2 miss.
	a := rd(0, 1, 0, memreq.GroupID{})
	b := rd(0, 2, 0, memreq.GroupID{})
	c := rd(0, 1, 4, memreq.GroupID{})
	ctl.AcceptRead(a, 0)
	ctl.AcceptRead(b, 1)
	ctl.AcceptRead(c, 2)
	runUntilIdle(t, ctl, 0, 10000)
	if len(order) != 3 {
		t.Fatalf("%d reads done", len(order))
	}
	if order[0] != a.ID || order[1] != c.ID || order[2] != b.ID {
		t.Fatalf("completion order %v, want [a c b] = [%d %d %d]", order, a.ID, c.ID, b.ID)
	}
	if ctl.Chan.Stats.HitTxns != 1 {
		t.Fatalf("hits = %d, want 1", ctl.Chan.Stats.HitTxns)
	}
}

func TestGMCStreakCapPreemptsStream(t *testing.T) {
	g := NewGMC()
	g.MaxStreak = 2
	ctl := newCtl(g)
	var order []uint64
	ctl.OnReadDone = func(r *memreq.Request, _ int64) { order = append(order, r.ID) }

	// One row-2 miss, then a long row-1 stream. With MaxStreak=2 the
	// miss must be serviced after at most 3 row-1 requests (the opener
	// plus a streak of 2 hits).
	miss := rd(0, 2, 0, memreq.GroupID{})
	var hits []*memreq.Request
	for i := 0; i < 8; i++ {
		hits = append(hits, rd(0, 1, i*4%64, memreq.GroupID{}))
	}
	ctl.AcceptRead(hits[0], 0)
	ctl.AcceptRead(miss, 1)
	for i := 1; i < len(hits); i++ {
		ctl.AcceptRead(hits[i], int64(1+i))
	}
	runUntilIdle(t, ctl, 0, 20000)
	pos := -1
	for i, id := range order {
		if id == miss.ID {
			pos = i
		}
	}
	if pos < 0 || pos > 3 {
		t.Fatalf("miss serviced at position %d of %v, want <= 3", pos, order)
	}
}

func TestGMCAgeThresholdPreempts(t *testing.T) {
	g := NewGMC()
	g.AgeThresh = 50
	g.MaxStreak = 1 << 30 // disable streak cap; rely on age only
	ctl := newCtl(g)
	var doneAt = map[uint64]int64{}
	ctl.OnReadDone = func(r *memreq.Request, now int64) { doneAt[r.ID] = now }

	miss := rd(0, 2, 0, memreq.GroupID{})
	ctl.AcceptRead(rd(0, 1, 0, memreq.GroupID{}), 0)
	ctl.AcceptRead(miss, 0)
	// Keep refilling row-1 hits as the sim runs.
	now := int64(0)
	injected := 0
	for ; now < 3000; now++ {
		if injected < 40 && ctl.ReadOccupancy() < 60 {
			ctl.AcceptRead(rd(0, 1, injected*4%64, memreq.GroupID{}), now)
			injected++
		}
		ctl.Tick(now)
		if _, ok := doneAt[miss.ID]; ok {
			break
		}
	}
	if _, ok := doneAt[miss.ID]; !ok {
		t.Fatal("aged miss starved by endless row-hit stream")
	}
	if doneAt[miss.ID] > 500 {
		t.Fatalf("aged miss done at %d, want soon after age threshold 50", doneAt[miss.ID])
	}
}

func TestFCFSStrictOrder(t *testing.T) {
	ctl := newCtl(NewFCFS())
	var order []uint64
	ctl.OnReadDone = func(r *memreq.Request, _ int64) { order = append(order, r.ID) }
	a := rd(0, 1, 0, memreq.GroupID{})
	b := rd(0, 2, 0, memreq.GroupID{})
	c := rd(0, 1, 4, memreq.GroupID{})
	ctl.AcceptRead(a, 0)
	ctl.AcceptRead(b, 1)
	ctl.AcceptRead(c, 2)
	runUntilIdle(t, ctl, 0, 10000)
	if order[0] != a.ID || order[1] != b.ID || order[2] != c.ID {
		t.Fatalf("completion order %v, want strict arrival order", order)
	}
	// FCFS pays for it: row 1 is reopened, so 3 misses total.
	if ctl.Chan.Stats.MissTxns != 3 {
		t.Fatalf("misses = %d, want 3", ctl.Chan.Stats.MissTxns)
	}
}

func TestFRFCFSOldestHitFirst(t *testing.T) {
	ctl := newCtl(NewFRFCFS())
	var order []uint64
	ctl.OnReadDone = func(r *memreq.Request, _ int64) { order = append(order, r.ID) }
	a := rd(3, 5, 0, memreq.GroupID{}) // opens row 5
	b := rd(3, 6, 0, memreq.GroupID{}) // miss
	c := rd(3, 5, 4, memreq.GroupID{}) // hit on open row, younger than b
	ctl.AcceptRead(a, 0)
	ctl.AcceptRead(b, 1)
	ctl.AcceptRead(c, 2)
	runUntilIdle(t, ctl, 0, 10000)
	if order[1] != c.ID {
		t.Fatalf("completion order %v: FR-FCFS should serve the hit %d second", order, c.ID)
	}
}

func TestWriteDrainWatermarks(t *testing.T) {
	ctl := newCtl(NewGMC())
	// Fill to one below the high water mark: no drain (reads pending).
	ctl.AcceptRead(rd(0, 1, 0, memreq.GroupID{}), 0)
	for i := 0; i < ctl.HighWM-1; i++ {
		if !ctl.AcceptWrite(wr(i%16, 3, 0), 0) {
			t.Fatal("write rejected below cap")
		}
	}
	ctl.Tick(0)
	if ctl.Draining() {
		t.Fatal("drain started below high watermark with reads pending")
	}
	// Cross the high water mark.
	ctl.AcceptWrite(wr(0, 3, 4), 1)
	ctl.Tick(1)
	if !ctl.Draining() {
		t.Fatal("drain did not start at high watermark")
	}
	// Drain must stop at the low watermark.
	now := int64(2)
	for ; now < 50000 && ctl.Draining(); now++ {
		ctl.Tick(now)
	}
	if ctl.Draining() {
		t.Fatal("drain never released")
	}
	if got := ctl.WriteOccupancy(); got != ctl.LowWM {
		t.Fatalf("write occupancy after drain = %d, want %d", got, ctl.LowWM)
	}
	if ctl.Stats.DrainsStarted != 1 {
		t.Fatalf("drains started = %d", ctl.Stats.DrainsStarted)
	}
}

func TestIdleWriteDrain(t *testing.T) {
	// With no reads at all, buffered writes must still drain.
	ctl := newCtl(NewGMC())
	for i := 0; i < 5; i++ {
		ctl.AcceptWrite(wr(i, 2, 0), 0)
	}
	runUntilIdle(t, ctl, 0, 50000)
	if ctl.Stats.WritesDone != 5 {
		t.Fatalf("writes done = %d, want 5", ctl.Stats.WritesDone)
	}
}

func TestDrainImminent(t *testing.T) {
	ctl := newCtl(NewGMC())
	for i := 0; i < ctl.HighWM-8; i++ {
		ctl.AcceptWrite(wr(i%16, 1, 0), 0)
	}
	if !ctl.DrainImminent() {
		t.Fatal("DrainImminent false at highWM-8")
	}
	ctl2 := newCtl(NewGMC())
	for i := 0; i < ctl2.HighWM-9; i++ {
		ctl2.AcceptWrite(wr(i%16, 1, 0), 0)
	}
	if ctl2.DrainImminent() {
		t.Fatal("DrainImminent true below highWM-8")
	}
}

func TestBackpressure(t *testing.T) {
	ctl := newCtl(NewGMC())
	for i := 0; i < ctl.ReadCap; i++ {
		if !ctl.AcceptRead(rd(i%16, i, 0, memreq.GroupID{}), 0) {
			t.Fatalf("read %d rejected below cap", i)
		}
	}
	if ctl.AcceptRead(rd(0, 0, 0, memreq.GroupID{}), 0) {
		t.Fatal("read accepted past cap")
	}
	if ctl.Stats.ReadQFullRejects != 1 {
		t.Fatalf("rejects = %d", ctl.Stats.ReadQFullRejects)
	}
	for i := 0; i < ctl.WriteCap; i++ {
		if !ctl.AcceptWrite(wr(i%16, i, 0), 0) {
			t.Fatalf("write %d rejected below cap", i)
		}
	}
	if ctl.AcceptWrite(wr(0, 0, 0), 0) {
		t.Fatal("write accepted past cap")
	}
}

func TestSBWASShortWarpPreempts(t *testing.T) {
	s := NewSBWAS(0.75)
	ctl := newCtl(s)
	ctl.Writes = Interleaved
	var order []uint64
	ctl.OnReadDone = func(r *memreq.Request, _ int64) { order = append(order, r.ID) }

	bigWarp := memreq.GroupID{SM: 0, Warp: 0, Load: 1}
	smallWarp := memreq.GroupID{SM: 0, Warp: 1, Load: 1}
	// Big warp: 6 row-1 hits. Small warp: 1 row-9 miss (1 outstanding).
	var big []*memreq.Request
	for i := 0; i < 6; i++ {
		big = append(big, rd(0, 1, i*4%64, bigWarp))
	}
	small := rd(0, 9, 0, smallWarp)
	ctl.AcceptRead(big[0], 0)
	for i := 1; i < len(big); i++ {
		ctl.AcceptRead(big[i], int64(i))
	}
	ctl.AcceptRead(small, 6)
	runUntilIdle(t, ctl, 0, 20000)
	pos := -1
	for i, id := range order {
		if id == small.ID {
			pos = i
		}
	}
	// With alpha=0.75 (cutoff 3 outstanding) the unit warp should
	// preempt most of the big warp's stream.
	if pos > 2 {
		t.Fatalf("short warp serviced at position %d of %v", pos, order)
	}
}

func TestSBWASAlphaCutoffs(t *testing.T) {
	for alpha, want := range map[float64]int{0.25: 1, 0.5: 2, 0.75: 3} {
		s := NewSBWAS(alpha)
		if got := s.shortJobCutoff(); got != want {
			t.Errorf("alpha %.2f: cutoff %d, want %d", alpha, got, want)
		}
	}
}

func TestInterleavedWritesAlternate(t *testing.T) {
	s := NewSBWAS(0.5)
	ctl := newCtl(s)
	ctl.Writes = Interleaved
	for i := 0; i < 10; i++ {
		ctl.AcceptRead(rd(i%16, 1, 0, memreq.GroupID{SM: 0, Warp: uint16(i), Load: 1}), 0)
		ctl.AcceptWrite(wr((i+8)%16, 2, 0), 0)
	}
	runUntilIdle(t, ctl, 0, 50000)
	if ctl.Stats.ReadsDone != 10 || ctl.Stats.WritesDone != 10 {
		t.Fatalf("done: %d reads %d writes", ctl.Stats.ReadsDone, ctl.Stats.WritesDone)
	}
	if ctl.Stats.DrainsStarted != 0 {
		t.Fatal("interleaved policy used batch drains")
	}
}

// Conservation property: under every scheduler, random traffic completes
// every request exactly once and the controller goes idle.
func TestConservationAllSchedulers(t *testing.T) {
	mk := map[string]func() Scheduler{
		"gmc":    func() Scheduler { return NewGMC() },
		"fcfs":   func() Scheduler { return NewFCFS() },
		"frfcfs": func() Scheduler { return NewFRFCFS() },
		"sbwas":  func() Scheduler { return NewSBWAS(0.5) },
	}
	for name, f := range mk {
		for seed := int64(0); seed < 4; seed++ {
			rng := rand.New(rand.NewSource(seed))
			sched := f()
			ctl := newCtl(sched)
			if name == "sbwas" {
				ctl.Writes = Interleaved
			}
			done := map[uint64]int{}
			ctl.OnReadDone = func(r *memreq.Request, _ int64) { done[r.ID]++ }
			ctl.OnWriteDone = func(r *memreq.Request, _ int64) { done[r.ID]++ }
			var ids []uint64
			toInject := 400
			now := int64(0)
			for ; now < 1000000; now++ {
				if toInject > 0 && rng.Intn(2) == 0 {
					var r *memreq.Request
					g := memreq.GroupID{SM: uint16(rng.Intn(4)), Warp: uint16(rng.Intn(8)), Load: uint32(rng.Intn(5) + 1)}
					if rng.Intn(5) == 0 {
						r = wr(rng.Intn(16), rng.Intn(8), rng.Intn(16)*4)
						if ctl.AcceptWrite(r, now) {
							ids = append(ids, r.ID)
							toInject--
						}
					} else {
						r = rd(rng.Intn(16), rng.Intn(8), rng.Intn(16)*4, g)
						if ctl.AcceptRead(r, now) {
							ids = append(ids, r.ID)
							toInject--
						}
					}
				}
				ctl.Tick(now)
				if toInject == 0 && ctl.Idle() {
					break
				}
			}
			if toInject > 0 || !ctl.Idle() {
				t.Fatalf("%s seed %d: stuck (toInject=%d)", name, seed, toInject)
			}
			for _, id := range ids {
				if done[id] != 1 {
					t.Fatalf("%s seed %d: request %d completed %d times", name, seed, id, done[id])
				}
			}
		}
	}
}

func TestRowSorterBasics(t *testing.T) {
	rs := NewRowSorter(16)
	if rs.BanksPending() != 0 || rs.Count() != 0 {
		t.Fatal("fresh sorter not empty")
	}
	a := rd(1, 5, 0, memreq.GroupID{})
	a.Arrive = 10
	b := rd(1, 5, 4, memreq.GroupID{})
	b.Arrive = 20
	c := rd(1, 6, 0, memreq.GroupID{})
	c.Arrive = 5
	rs.Add(a, 10)
	rs.Add(b, 20)
	rs.Add(c, 5)
	if rs.Count() != 3 || rs.BanksPending() != 1 {
		t.Fatalf("count=%d banks=%d", rs.Count(), rs.BanksPending())
	}
	if s := rs.StreamFor(1, 5); s == nil || len(s.reqs) != 2 {
		t.Fatal("stream (1,5) wrong")
	}
	if s := rs.OldestStream(1); s.row != 6 {
		t.Fatalf("oldest stream row %d, want 6 (arrive 5)", s.row)
	}
	got := rs.PopFrom(rs.StreamFor(1, 5))
	if got != a {
		t.Fatal("pop returned wrong request")
	}
	rs.PopFrom(rs.StreamFor(1, 5))
	if rs.StreamFor(1, 5) != nil {
		t.Fatal("empty stream not retired")
	}
	if rs.OldestHead(2) != 1<<62 {
		t.Fatal("empty bank OldestHead sentinel wrong")
	}
}

// Baseline scheduler overhead for comparison with the warp-aware path.
func BenchmarkGMCNextRead(b *testing.B) {
	g := NewGMC()
	ctl := newCtl(g)
	var n uint64
	refill := func() {
		for g.Pending() < 48 {
			n++
			ctl.AcceptRead(rd(int(n)%16, int(n)%8, int(n)%16*4, memreq.GroupID{}), 0)
		}
	}
	refill()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctl.Tick(int64(i))
		if g.Pending() < 16 {
			b.StopTimer()
			refill()
			b.StartTimer()
		}
	}
}
