package memctrl

import (
	"math/rand"
	"testing"

	"dramlat/internal/memreq"
)

// nextWrite selection contract: the oldest projected row hit wins over an
// even older non-hit; with no hit in the queue, plain FIFO order applies.
func TestNextWriteOldestHitWins(t *testing.T) {
	ctl := newCtl(NewFRFCFS())
	// Open row 7 in bank 0 via a read so ProjectHit(0, 7) holds.
	ctl.AcceptRead(rd(0, 7, 0, memreq.GroupID{}), 0)
	now := runUntilIdle(t, ctl, 0, 10000)
	if !ctl.Chan.ProjectHit(0, 7) {
		t.Fatal("setup: row 7 not projected open in bank 0")
	}

	older := wr(0, 3, 0)    // non-hit, arrives first
	hit := wr(0, 7, 4)      // projected hit, arrives later
	hit2 := wr(0, 7, 8)     // second hit, younger than hit
	younger := wr(0, 4, 12) // non-hit, youngest
	for i, w := range []*memreq.Request{older, hit, hit2, younger} {
		if !ctl.AcceptWrite(w, now+int64(i)) {
			t.Fatalf("write %d rejected", i)
		}
	}
	if got := ctl.nextWrite(); got != hit {
		t.Fatalf("nextWrite returned %v, want the oldest projected hit %v", got.ID, hit.ID)
	}
	if got := ctl.nextWrite(); got != hit2 {
		t.Fatalf("nextWrite returned %v, want the next projected hit %v", got.ID, hit2.ID)
	}
	// No hits left: FIFO among the acceptable remainder.
	if got := ctl.nextWrite(); got != older {
		t.Fatalf("nextWrite returned %v, want FIFO-oldest %v", got.ID, older.ID)
	}
	if got := ctl.nextWrite(); got != younger {
		t.Fatalf("nextWrite returned %v, want %v", got.ID, younger.ID)
	}
	if occ := ctl.WriteOccupancy(); occ != 0 {
		t.Fatalf("occupancy %d after draining", occ)
	}
	if got := ctl.nextWrite(); got != nil {
		t.Fatalf("empty queue returned %v", got.ID)
	}
}

// Property: the head-indexed write queue (wqHead + mid-delete) must be
// observationally identical to a plain slice queue under random
// accept/pop interleavings — same selections, same occupancy, and the
// compaction invariant (head == len resets both) never drifts.
func TestWriteQueueHeadIndexProperty(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed + 900))
		ctl := newCtl(NewFRFCFS())
		// Open a few rows so ProjectHit exercises the hit-priority branch.
		for b := 0; b < 4; b++ {
			ctl.AcceptRead(rd(b, b+1, 0, memreq.GroupID{}), 0)
		}
		now := runUntilIdle(t, ctl, 0, 20000)

		var model []*memreq.Request
		refNext := func() (*memreq.Request, int) {
			hit, any := -1, -1
			for i, w := range model {
				if !ctl.Chan.CanAccept(w.Bank) {
					continue
				}
				if any == -1 {
					any = i
				}
				if ctl.Chan.ProjectHit(w.Bank, w.Row) {
					hit = i
					break
				}
			}
			idx := hit
			if idx == -1 {
				idx = any
			}
			if idx == -1 {
				return nil, -1
			}
			return model[idx], idx
		}
		for step := 0; step < 5000; step++ {
			if rng.Intn(2) == 0 {
				w := wr(rng.Intn(16), rng.Intn(8), 0)
				if ctl.AcceptWrite(w, now) {
					model = append(model, w)
				}
			} else {
				want, idx := refNext()
				got := ctl.nextWrite()
				if got != want {
					t.Fatalf("seed %d step %d: nextWrite diverged from slice model", seed, step)
				}
				if idx >= 0 {
					model = append(model[:idx], model[idx+1:]...)
				}
			}
			if ctl.WriteOccupancy() != len(model) {
				t.Fatalf("seed %d step %d: occupancy %d != model %d",
					seed, step, ctl.WriteOccupancy(), len(model))
			}
		}
	}
}
