package memctrl

import (
	"math/rand"
	"testing"

	"dramlat/internal/memreq"
)

func grd(bank, row, col int, sm, warp uint16) *memreq.Request {
	reqID++
	return &memreq.Request{
		ID: reqID, Kind: memreq.Read, Bank: bank, Row: row, Col: col,
		Group: memreq.GroupID{SM: sm, Warp: warp, Load: 1},
	}
}

func TestPARBSBatchBoundary(t *testing.T) {
	p := NewPARBS()
	ctl := newCtl(p)
	var order []uint64
	ctl.OnReadDone = func(r *memreq.Request, _ int64) { order = append(order, r.ID) }

	// Batch 1: two requests. They must be fully serviced before a
	// later-arriving row-hit request (which would win under FR-FCFS).
	a := grd(0, 1, 0, 0, 0)
	bq := grd(0, 2, 0, 0, 1)
	ctl.AcceptRead(a, 0)
	ctl.AcceptRead(bq, 0)
	ctl.Tick(0)                // dispatches one; batch formed
	late := grd(0, 1, 4, 0, 2) // row hit on a's row, but outside the batch
	ctl.AcceptRead(late, 1)
	runUntilIdle(t, ctl, 0, 40000)
	if len(order) != 3 {
		t.Fatalf("%d reads done", len(order))
	}
	if order[2] != late.ID {
		t.Fatalf("batch boundary violated: %v (late=%d)", order, late.ID)
	}
}

func TestPARBSShortestJobRanking(t *testing.T) {
	p := NewPARBS()
	ctl := newCtl(p)
	var order []uint64
	ctl.OnReadDone = func(r *memreq.Request, _ int64) { order = append(order, r.ID) }

	// Warp 0 has 4 requests on one bank (max load 4); warp 1 has 1.
	// Within the batch, warp 1's request must be serviced before warp
	// 0's remaining ones (after the unavoidable first dispatch).
	var heavy []*memreq.Request
	for i := 0; i < 4; i++ {
		r := grd(0, 3+i, 0, 0, 0)
		heavy = append(heavy, r)
		ctl.AcceptRead(r, 0)
	}
	light := grd(0, 20, 0, 0, 1)
	ctl.AcceptRead(light, 0)
	runUntilIdle(t, ctl, 0, 60000)
	pos := -1
	for i, id := range order {
		if id == light.ID {
			pos = i
		}
	}
	if pos > 1 {
		t.Fatalf("light warp serviced at %d: %v", pos, order)
	}
}

func TestPARBSMarkingCap(t *testing.T) {
	p := NewPARBS()
	p.MarkingCap = 2
	ctl := newCtl(p)
	for i := 0; i < 5; i++ {
		ctl.AcceptRead(grd(0, i, 0, 0, 0), 0)
	}
	p.formBatch()
	if len(p.batch) != 2 || len(p.queued) != 3 {
		t.Fatalf("batch %d queued %d, want 2/3", len(p.batch), len(p.queued))
	}
}

func TestPARBSConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	p := NewPARBS()
	ctl := newCtl(p)
	done := 0
	ctl.OnReadDone = func(*memreq.Request, int64) { done++ }
	total := 300
	injected := 0
	for now := int64(0); now < 500000; now++ {
		if injected < total && rng.Intn(2) == 0 {
			if ctl.AcceptRead(grd(rng.Intn(16), rng.Intn(8), 0, uint16(rng.Intn(3)), uint16(rng.Intn(8))), now) {
				injected++
			}
		}
		ctl.Tick(now)
		if injected == total && ctl.Idle() {
			break
		}
	}
	if done != total {
		t.Fatalf("done %d/%d", done, total)
	}
}

func TestATLASRankingFavorsLeastService(t *testing.T) {
	st := NewATLASState(1000)
	a := NewATLAS(st)
	ctl := newCtl(a)
	var order []uint64
	ctl.OnReadDone = func(r *memreq.Request, _ int64) { order = append(order, r.ID) }

	// Give warp 0 lots of attained service, then rank.
	st.note(warpKey{0, 0}, 100)
	st.note(warpKey{0, 1}, 1)
	st.maybeUpdate(0)
	if st.rankOf(warpKey{0, 1}) >= st.rankOf(warpKey{0, 0}) {
		t.Fatal("least-attained warp not ranked first")
	}

	// Warp 0 (served a lot) and warp 1 (starved) each have one request;
	// warp 1 must win even though warp 0's request arrived first.
	hog := grd(0, 1, 0, 0, 0)
	starved := grd(1, 2, 0, 0, 1)
	ctl.AcceptRead(hog, 1)
	ctl.AcceptRead(starved, 2)
	runUntilIdle(t, ctl, 0, 40000)
	if order[0] != starved.ID {
		t.Fatalf("ATLAS served the hog first: %v", order)
	}
}

func TestATLASQuantumAging(t *testing.T) {
	st := NewATLASState(100)
	st.note(warpKey{0, 0}, 64)
	st.maybeUpdate(0)
	if st.attained[warpKey{0, 0}] != 32 {
		t.Fatalf("attained not aged: %d", st.attained[warpKey{0, 0}])
	}
	// No update before the quantum elapses.
	st.note(warpKey{0, 1}, 1)
	st.maybeUpdate(50)
	if _, ok := st.rank[warpKey{0, 1}]; ok {
		t.Fatal("rank updated mid-quantum")
	}
	st.maybeUpdate(100)
	if _, ok := st.rank[warpKey{0, 1}]; !ok {
		t.Fatal("rank not updated at quantum boundary")
	}
}

func TestATLASSharedAcrossControllers(t *testing.T) {
	// Two controllers share one state: service noted at controller A
	// must lower the warp's priority at controller B.
	st := NewATLASState(10)
	a := NewATLAS(st)
	b := NewATLAS(st)
	ctlA := newCtl(a)
	_ = ctlA
	ctlB := newCtl(b)
	var order []uint64
	ctlB.OnReadDone = func(r *memreq.Request, _ int64) { order = append(order, r.ID) }

	st.note(warpKey{0, 0}, 50) // warp 0 got service "at controller A"
	st.note(warpKey{0, 1}, 1)
	st.maybeUpdate(0)
	hog := grd(0, 1, 0, 0, 0)
	starved := grd(1, 2, 0, 0, 1)
	ctlB.AcceptRead(hog, 1)
	ctlB.AcceptRead(starved, 2)
	runUntilIdle(t, ctlB, 0, 40000)
	if order[0] != starved.ID {
		t.Fatalf("shared LAS state ignored: %v", order)
	}
}
