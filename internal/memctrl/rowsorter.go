package memctrl

import "dramlat/internal/memreq"

// stream is one row-hit stream: the FIFO of pending requests to a single
// <bank,row> tuple (one Row Sorter entry, Section II-C).
type stream struct {
	bank, row int
	reqs      []*memreq.Request
	created   int64 // arrival tick of the first request (stream age)
}

func (s *stream) oldestArrive() int64 {
	if len(s.reqs) == 0 {
		return 1 << 62
	}
	return s.reqs[0].Arrive
}

// RowSorter groups pending read requests into row-hit streams per bank. It
// is the baseline GMC's sorting structure and is reused by FR-FCFS.
type RowSorter struct {
	byKey   map[[2]int]*stream
	perBank [][]*stream // streams per bank in creation order
	count   int
	// free recycles retired stream entries (and their request-slice
	// capacity): the sorter churns through one entry per row locality
	// burst, so the steady state reuses rather than allocates. No
	// scheduler retains a *stream across calls (all lookups re-resolve
	// through StreamFor/OldestStream), so reuse cannot revive a stale
	// handle.
	free []*stream
}

// NewRowSorter builds a sorter for numBanks banks.
func NewRowSorter(numBanks int) *RowSorter {
	return &RowSorter{
		byKey:   make(map[[2]int]*stream),
		perBank: make([][]*stream, numBanks),
	}
}

// Add merges a request into its stream (creating the stream if needed).
func (rs *RowSorter) Add(r *memreq.Request, now int64) {
	key := [2]int{r.Bank, r.Row}
	s, ok := rs.byKey[key]
	if !ok {
		if n := len(rs.free); n > 0 {
			s = rs.free[n-1]
			rs.free = rs.free[:n-1]
			// The retired entry's capacity tail may still hold pooled
			// request pointers; clear them so the reused entry starts clean.
			reqs := s.reqs[:cap(s.reqs)]
			for i := range reqs {
				reqs[i] = nil
			}
			*s = stream{bank: r.Bank, row: r.Row, created: now, reqs: reqs[:0]}
		} else {
			s = &stream{bank: r.Bank, row: r.Row, created: now}
		}
		rs.byKey[key] = s
		rs.perBank[r.Bank] = append(rs.perBank[r.Bank], s)
	}
	s.reqs = append(s.reqs, r)
	rs.count++
}

// Count returns the number of buffered requests.
func (rs *RowSorter) Count() int { return rs.count }

// StreamFor returns the stream for (bank, row), or nil.
func (rs *RowSorter) StreamFor(bank, row int) *stream {
	return rs.byKey[[2]int{bank, row}]
}

// BanksPending returns the number of banks with at least one request.
func (rs *RowSorter) BanksPending() int {
	n := 0
	for _, streams := range rs.perBank {
		if len(streams) > 0 {
			n++
		}
	}
	return n
}

// OldestStream returns the bank's stream with the oldest head request.
func (rs *RowSorter) OldestStream(bank int) *stream {
	var best *stream
	for _, s := range rs.perBank[bank] {
		if len(s.reqs) == 0 {
			continue
		}
		if best == nil || s.oldestArrive() < best.oldestArrive() {
			best = s
		}
	}
	return best
}

// OldestHead returns the arrival tick of the oldest request in the bank, or
// a huge value when the bank is empty.
func (rs *RowSorter) OldestHead(bank int) int64 {
	s := rs.OldestStream(bank)
	if s == nil {
		return 1 << 62
	}
	return s.oldestArrive()
}

// PopFrom removes and returns the head request of stream s, retiring the
// stream when it empties.
func (rs *RowSorter) PopFrom(s *stream) *memreq.Request {
	r := s.reqs[0]
	// Shift rather than re-slice: streams are short (one row locality
	// burst), and keeping the slice anchored at its base preserves the
	// capacity for the recycled entry's next life.
	copy(s.reqs, s.reqs[1:])
	s.reqs[len(s.reqs)-1] = nil
	s.reqs = s.reqs[:len(s.reqs)-1]
	rs.count--
	if len(s.reqs) == 0 {
		rs.retire(s)
	}
	return r
}

func (rs *RowSorter) retire(s *stream) {
	delete(rs.byKey, [2]int{s.bank, s.row})
	rs.free = append(rs.free, s)
	bank := rs.perBank[s.bank]
	for i, e := range bank {
		if e == s {
			rs.perBank[s.bank] = append(bank[:i], bank[i+1:]...)
			return
		}
	}
}
