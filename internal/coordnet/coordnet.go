// Package coordnet models the dedicated point-to-point coordination
// interconnect of Section IV-C: a narrow all-to-all network of 30 16-bit
// links connecting the six memory controllers. When a controller selects a
// warp-group it broadcasts a 32-bit message (SM id, warp id, local
// completion-time score) to the other five controllers; each receiver
// checks its ports every cycle.
package coordnet

import (
	"sync/atomic"

	"dramlat/internal/memreq"
)

// Msg is one coordination message.
type Msg struct {
	From  int // source controller
	Group memreq.GroupID
	Score int // the source's local completion-time score (LC)
}

type timedMsg struct {
	msg Msg
	due int64
}

// stagedMsg is one broadcast leg buffered during a parallel partition
// phase: dst plus the already-computed delivery time. Link serialization
// (linkFree) is per-source state, so the send time is exact at staging
// time; only the append to the destination queue waits for the barrier.
type stagedMsg struct {
	dst int
	tm  timedMsg
}

// Network is the all-to-all coordination fabric.
type Network struct {
	nodes int
	// Delay is the base propagation latency in ticks.
	Delay int64
	// SerializeTicks is the link occupancy per message: a 32-bit message
	// crosses a 16-bit link in 2 ticks.
	SerializeTicks int64

	queues   [][]timedMsg // per destination (NOT due-ordered: links backpressure independently)
	nextDue  []int64      // per destination, exact min due over queues[dst]
	linkFree [][]int64    // per (src,dst) link availability
	outBuf   [][]Msg      // per destination, reused across Deliver calls

	// staging, when non-nil, buffers Broadcast legs per source instead of
	// appending to the destination queues directly (EnableStaging). The
	// parallel engine's partition domains each own their source's buffer,
	// and Flush applies all buffers in ascending source order at the phase
	// barrier — the same order a serial partition loop would have appended
	// in, so queue contents are byte-identical. Same-tick delivery is
	// impossible (due >= now + SerializeTicks + Delay > now), so deferring
	// the append to the barrier is invisible to Deliver.
	staging [][]stagedMsg

	Sent      int64
	Delivered int64
}

// New builds a network between n controllers with the given base delay.
func New(n int, delay int64) *Network {
	net := &Network{
		nodes:          n,
		Delay:          delay,
		SerializeTicks: 2,
		queues:         make([][]timedMsg, n),
		nextDue:        make([]int64, n),
		linkFree:       make([][]int64, n),
		outBuf:         make([][]Msg, n),
	}
	for i := range net.linkFree {
		net.linkFree[i] = make([]int64, n)
		net.nextDue[i] = never
	}
	return net
}

// EnableStaging switches Broadcast into per-source staged mode for the
// parallel engine (see the staging field). Call before the run starts.
func (n *Network) EnableStaging() {
	n.staging = make([][]stagedMsg, n.nodes)
}

// Flush applies every staged broadcast leg to the destination queues in
// ascending source order and updates the per-destination due minima. The
// parallel engine's coordinator calls it at each partition-phase barrier.
func (n *Network) Flush() {
	for src := range n.staging {
		for _, s := range n.staging[src] {
			n.queues[s.dst] = append(n.queues[s.dst], s.tm)
			if s.tm.due < n.nextDue[s.dst] {
				n.nextDue[s.dst] = s.tm.due
			}
		}
		n.staging[src] = n.staging[src][:0]
	}
}

// Broadcast sends (group, score) from controller `from` to every other
// controller, respecting per-link serialization.
func (n *Network) Broadcast(from int, g memreq.GroupID, score int, now int64) {
	for dst := 0; dst < n.nodes; dst++ {
		if dst == from {
			continue
		}
		start := now
		if free := n.linkFree[from][dst]; free > start {
			start = free
		}
		n.linkFree[from][dst] = start + n.SerializeTicks
		due := start + n.SerializeTicks + n.Delay
		if n.staging != nil {
			n.staging[from] = append(n.staging[from], stagedMsg{dst, timedMsg{Msg{from, g, score}, due}})
		} else {
			n.queues[dst] = append(n.queues[dst], timedMsg{Msg{from, g, score}, due})
			if due < n.nextDue[dst] {
				n.nextDue[dst] = due
			}
		}
		atomic.AddInt64(&n.Sent, 1)
	}
}

// Deliver pops and returns every message destined to dst that has arrived
// by tick now, in arrival order. The returned slice is owned by the
// network and only valid until the next Deliver call for the same dst;
// callers consume it immediately (a receiver checks its ports once per
// cycle, so a hardware-faithful caller cannot hold two batches anyway).
func (n *Network) Deliver(dst int, now int64) []Msg {
	if now < n.nextDue[dst] {
		return nil // nothing has arrived yet; nextDue is exact
	}
	q := n.queues[dst]
	out := n.outBuf[dst][:0]
	keep := q[:0]
	next := never
	for _, tm := range q {
		if tm.due <= now {
			out = append(out, tm.msg)
			atomic.AddInt64(&n.Delivered, 1)
		} else {
			keep = append(keep, tm)
			if tm.due < next {
				next = tm.due
			}
		}
	}
	n.queues[dst] = keep
	n.nextDue[dst] = next
	n.outBuf[dst] = out
	return out
}

// PendingFor returns the number of undelivered messages queued for dst.
func (n *Network) PendingFor(dst int) int { return len(n.queues[dst]) }

// never is the wakeup-contract sentinel (see dram.Never).
const never int64 = 1 << 62

// NextDue returns the earliest due tick of any message queued for dst,
// or never when dst has no messages in flight. The event-driven system
// loop uses it to wake a controller exactly when Deliver would first
// return something. The value is maintained exactly: min-updated on
// Broadcast, recomputed from the survivors on every delivering Deliver.
func (n *Network) NextDue(dst int) int64 { return n.nextDue[dst] }
