package coordnet

import (
	"testing"

	"dramlat/internal/memreq"
)

func TestBroadcastReachesAllOthers(t *testing.T) {
	n := New(6, 4)
	g := memreq.GroupID{SM: 1, Warp: 2, Load: 3}
	n.Broadcast(2, g, 17, 100)
	if n.Sent != 5 {
		t.Fatalf("sent = %d, want 5", n.Sent)
	}
	// Not yet delivered before serialization+delay elapse.
	for dst := 0; dst < 6; dst++ {
		if got := n.Deliver(dst, 100); len(got) != 0 {
			t.Fatalf("dst %d got message instantly", dst)
		}
	}
	for dst := 0; dst < 6; dst++ {
		got := n.Deliver(dst, 100+2+4)
		if dst == 2 {
			if len(got) != 0 {
				t.Fatal("source received its own broadcast")
			}
			continue
		}
		if len(got) != 1 || got[0].Group != g || got[0].Score != 17 || got[0].From != 2 {
			t.Fatalf("dst %d got %+v", dst, got)
		}
	}
	if n.Delivered != 5 {
		t.Fatalf("delivered = %d", n.Delivered)
	}
}

func TestLinkSerialization(t *testing.T) {
	n := New(2, 0)
	g := memreq.GroupID{SM: 0, Warp: 0, Load: 1}
	// Two back-to-back broadcasts on the same link: the second must be
	// delayed by the link occupancy of the first.
	n.Broadcast(0, g, 1, 10)
	n.Broadcast(0, g, 2, 10)
	if got := n.Deliver(1, 12); len(got) != 1 || got[0].Score != 1 {
		t.Fatalf("first delivery %+v", got)
	}
	if got := n.Deliver(1, 13); len(got) != 0 {
		t.Fatalf("second message arrived too early: %+v", got)
	}
	if got := n.Deliver(1, 14); len(got) != 1 || got[0].Score != 2 {
		t.Fatalf("second delivery %+v", got)
	}
}

func TestPendingFor(t *testing.T) {
	n := New(3, 10)
	n.Broadcast(0, memreq.GroupID{Load: 1}, 5, 0)
	if n.PendingFor(1) != 1 || n.PendingFor(2) != 1 || n.PendingFor(0) != 0 {
		t.Fatalf("pending: %d %d %d", n.PendingFor(0), n.PendingFor(1), n.PendingFor(2))
	}
	n.Deliver(1, 1000)
	if n.PendingFor(1) != 0 {
		t.Fatal("delivery did not drain queue")
	}
}

func TestDeliveryOrder(t *testing.T) {
	n := New(2, 1)
	for i := 0; i < 5; i++ {
		n.Broadcast(0, memreq.GroupID{Load: uint32(i + 1)}, i, int64(i*10))
	}
	got := n.Deliver(1, 1000)
	if len(got) != 5 {
		t.Fatalf("got %d messages", len(got))
	}
	for i, m := range got {
		if m.Score != i {
			t.Fatalf("out of order: %+v", got)
		}
	}
}
