package cache

import (
	"math/rand"
	"testing"
)

func cfg() Config {
	return Config{SizeBytes: 4096, LineBytes: 128, Ways: 4, MSHRs: 4}
}

func TestHitAfterFill(t *testing.T) {
	c := New(cfg())
	if c.Lookup(0x1000) {
		t.Fatal("hit on empty cache")
	}
	c.Fill(0x1000, false)
	if !c.Lookup(0x1000) {
		t.Fatal("miss after fill")
	}
	if !c.Lookup(0x1040) {
		t.Fatal("miss on same line, different offset")
	}
	if c.Hits != 2 || c.Misses != 1 {
		t.Fatalf("hits=%d misses=%d", c.Hits, c.Misses)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(cfg()) // 8 sets, 4 ways
	setStride := uint64(8 * 128)
	// Fill one set's 4 ways.
	for i := 0; i < 4; i++ {
		c.Fill(uint64(i)*setStride, false)
	}
	// Touch line 0 so line 1 becomes LRU.
	c.Lookup(0)
	v, dirty, ev := c.Fill(4*setStride, false)
	if !ev {
		t.Fatal("no eviction from full set")
	}
	if dirty {
		t.Fatal("clean line evicted dirty")
	}
	if v != 1*setStride {
		t.Fatalf("evicted %#x, want %#x (LRU)", v, setStride)
	}
	if !c.Lookup(0) || c.Lookup(1*setStride) {
		t.Fatal("wrong lines resident after eviction")
	}
}

func TestDirtyEviction(t *testing.T) {
	c := New(cfg())
	setStride := uint64(8 * 128)
	c.Fill(0, true) // dirty
	for i := 1; i < 4; i++ {
		c.Fill(uint64(i)*setStride, false)
	}
	v, dirty, ev := c.Fill(4*setStride, false)
	if !ev || !dirty || v != 0 {
		t.Fatalf("evicted %#x dirty=%v ev=%v, want dirty 0", v, dirty, ev)
	}
	if c.DirtyEvict != 1 {
		t.Fatalf("DirtyEvict=%d", c.DirtyEvict)
	}
}

func TestFillResidentMergesDirty(t *testing.T) {
	c := New(cfg())
	c.Fill(0x2000, false)
	if _, _, ev := c.Fill(0x2000, true); ev {
		t.Fatal("refill evicted")
	}
	wasDirty, present := c.Invalidate(0x2000)
	if !present || !wasDirty {
		t.Fatalf("dirty=%v present=%v", wasDirty, present)
	}
	if c.Lookup(0x2000) {
		t.Fatal("hit after invalidate")
	}
}

func TestMarkDirty(t *testing.T) {
	c := New(cfg())
	if c.MarkDirty(0x3000) {
		t.Fatal("marked non-resident line")
	}
	c.Fill(0x3000, false)
	if !c.MarkDirty(0x3000) {
		t.Fatal("failed to mark resident line")
	}
	d, _ := c.Invalidate(0x3000)
	if !d {
		t.Fatal("line not dirty after MarkDirty")
	}
}

func TestMSHRLifecycle(t *testing.T) {
	c := New(cfg())
	if c.MSHRFor(0x100) != nil {
		t.Fatal("phantom MSHR")
	}
	m := c.MSHRAlloc(0x100)
	if m == nil || m.Line != 0x100 {
		t.Fatalf("alloc %+v", m)
	}
	if c.MSHRFor(0x140) != m {
		t.Fatal("same-line lookup failed (0x140 is in line 0x100)")
	}
	for i := 1; i < 4; i++ {
		if c.MSHRAlloc(uint64(i)*0x1000) == nil {
			t.Fatalf("alloc %d failed below cap", i)
		}
	}
	if c.MSHRAlloc(0x9000) != nil {
		t.Fatal("alloc past cap succeeded")
	}
	if c.MSHRCount() != 4 {
		t.Fatalf("count %d", c.MSHRCount())
	}
	if got := c.MSHRRelease(0x17f); got != m {
		t.Fatalf("release returned %+v", got)
	}
	if c.MSHRFor(0x100) != nil {
		t.Fatal("MSHR survives release")
	}
	if c.MSHRRelease(0x100) != nil {
		t.Fatal("double release returned non-nil")
	}
}

func TestMSHRDoubleAllocPanics(t *testing.T) {
	c := New(cfg())
	c.MSHRAlloc(0x100)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on double alloc")
		}
	}()
	c.MSHRAlloc(0x140)
}

func TestBadGeometryPanics(t *testing.T) {
	for _, bad := range []Config{
		{SizeBytes: 1000, LineBytes: 128, Ways: 4},
		{SizeBytes: 4096, LineBytes: 128, Ways: 3}, // 32 lines % 3 != 0... actually 32%3!=0
		{SizeBytes: 0, LineBytes: 128, Ways: 4},
	} {
		func() {
			defer func() { recover() }()
			New(bad)
			t.Fatalf("no panic for %+v", bad)
		}()
	}
}

// Property: the cache never holds more than Ways lines per set, a filled
// line is always found until evicted, and hit rate is consistent.
func TestRandomizedConsistency(t *testing.T) {
	c := New(Config{SizeBytes: 2048, LineBytes: 128, Ways: 2, MSHRs: 4})
	rng := rand.New(rand.NewSource(42))
	model := map[uint64]bool{} // resident lines per model
	count := 0
	for i := 0; i < 20000; i++ {
		addr := uint64(rng.Intn(64)) * 128
		if rng.Intn(2) == 0 {
			inModel := model[addr]
			got := c.Lookup(addr)
			if got != inModel {
				t.Fatalf("step %d: Lookup(%#x)=%v, model=%v", i, addr, got, inModel)
			}
		} else {
			v, _, ev := c.Fill(addr, false)
			if !model[addr] {
				model[addr] = true
				count++
			}
			if ev {
				if !model[v] {
					t.Fatalf("step %d: evicted non-resident %#x", i, v)
				}
				delete(model, v)
				count--
			}
			if count > 16 {
				t.Fatalf("step %d: more lines resident (%d) than capacity", i, count)
			}
		}
	}
}

func TestHitRate(t *testing.T) {
	c := New(cfg())
	if c.HitRate() != 0 {
		t.Fatal("empty hit rate")
	}
	c.Fill(0, false)
	c.Lookup(0)
	c.Lookup(128 * 1024)
	if c.HitRate() != 0.5 {
		t.Fatalf("hit rate %v", c.HitRate())
	}
}
