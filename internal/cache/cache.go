// Package cache implements the set-associative LRU caches of the memory
// hierarchy (Table II: 32KB 8-way L1 per SM, 128KB 16-way L2 slice per
// memory partition, 128B lines) together with MSHRs that merge concurrent
// misses to the same line.
package cache

// Config sizes a cache.
type Config struct {
	SizeBytes int
	LineBytes int
	Ways      int
	MSHRs     int // max outstanding distinct miss lines
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	used  int64 // LRU stamp
}

// MSHR tracks one in-flight miss line and the requests merged into it.
type MSHR struct {
	Line    uint64
	Owner   any   // the primary (in-flight) request's identity
	Waiters []any // opaque waiter handles owned by the caller
}

// Cache is a blocking-free set-associative cache model. It tracks tags
// only; data are not simulated.
type Cache struct {
	cfg      Config
	sets     [][]line
	setMask  uint64
	lineBits uint
	clock    int64

	mshrs map[uint64]*MSHR
	// mshrFree recycles released MSHRs: misses dominate the simulator's
	// steady-state allocation profile, and the registers are fixed
	// hardware structures, so the model should not allocate per miss
	// either. A released MSHR may be handed out again by the very next
	// MSHRAlloc — callers must finish reading a released MSHR before
	// allocating from the same cache (true of the SM and partition call
	// graphs: releases and the waiter fan-out run strictly between
	// allocs).
	mshrFree []*MSHR

	Hits       int64
	Misses     int64
	Evictions  int64
	DirtyEvict int64
}

// New builds a cache; SizeBytes/LineBytes/Ways must describe a power-of-two
// number of sets.
func New(cfg Config) *Cache {
	lines := cfg.SizeBytes / cfg.LineBytes
	if lines <= 0 || lines%cfg.Ways != 0 {
		panic("cache: size/line/ways mismatch")
	}
	nsets := lines / cfg.Ways
	if nsets&(nsets-1) != 0 {
		panic("cache: set count must be a power of two")
	}
	lb := uint(0)
	for 1<<lb < cfg.LineBytes {
		lb++
	}
	c := &Cache{
		cfg:      cfg,
		sets:     make([][]line, nsets),
		setMask:  uint64(nsets - 1),
		lineBits: lb,
		mshrs:    make(map[uint64]*MSHR),
	}
	for i := range c.sets {
		c.sets[i] = make([]line, cfg.Ways)
	}
	return c
}

func (c *Cache) set(addr uint64) ([]line, uint64) {
	tag := addr >> c.lineBits
	return c.sets[tag&c.setMask], tag
}

// Lookup probes for the line containing addr, updating LRU on hit.
func (c *Cache) Lookup(addr uint64) bool {
	set, tag := c.set(addr)
	c.clock++
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].used = c.clock
			c.Hits++
			return true
		}
	}
	c.Misses++
	return false
}

// Contains probes without touching LRU or hit/miss counters.
func (c *Cache) Contains(addr uint64) bool {
	set, tag := c.set(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return true
		}
	}
	return false
}

// Fill installs the line containing addr (marking it dirty when dirty is
// set). It returns the evicted victim's address and dirtiness when a valid
// line was displaced. Filling an already-resident line merges the dirty
// bit instead of evicting.
func (c *Cache) Fill(addr uint64, dirty bool) (victim uint64, victimDirty, evicted bool) {
	set, tag := c.set(addr)
	c.clock++
	// Already resident: refresh.
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].used = c.clock
			set[i].dirty = set[i].dirty || dirty
			return 0, false, false
		}
	}
	// Pick an invalid way, else the LRU way.
	victimIdx := -1
	for i := range set {
		if !set[i].valid {
			victimIdx = i
			break
		}
	}
	if victimIdx == -1 {
		victimIdx = 0
		for i := 1; i < len(set); i++ {
			if set[i].used < set[victimIdx].used {
				victimIdx = i
			}
		}
		v := set[victimIdx]
		victim = v.tag << c.lineBits
		victimDirty = v.dirty
		evicted = true
		c.Evictions++
		if v.dirty {
			c.DirtyEvict++
		}
	}
	set[victimIdx] = line{tag: tag, valid: true, dirty: dirty, used: c.clock}
	return victim, victimDirty, evicted
}

// Invalidate drops the line containing addr if resident, returning whether
// it was dirty.
func (c *Cache) Invalidate(addr uint64) (wasDirty, wasPresent bool) {
	set, tag := c.set(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			wasDirty = set[i].dirty
			set[i].valid = false
			return wasDirty, true
		}
	}
	return false, false
}

// MarkDirty sets the dirty bit of a resident line (write hit).
func (c *Cache) MarkDirty(addr uint64) bool {
	set, tag := c.set(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].dirty = true
			return true
		}
	}
	return false
}

// HitRate returns hits/(hits+misses).
func (c *Cache) HitRate() float64 {
	t := c.Hits + c.Misses
	if t == 0 {
		return 0
	}
	return float64(c.Hits) / float64(t)
}

// --- MSHR management ---

// MSHRFor returns the in-flight MSHR for the line containing addr, or nil.
func (c *Cache) MSHRFor(addr uint64) *MSHR {
	return c.mshrs[addr&^uint64(c.cfg.LineBytes-1)]
}

// MSHRAlloc allocates an MSHR for the line containing addr. It returns nil
// when all MSHRs are busy (the miss must be retried later).
func (c *Cache) MSHRAlloc(addr uint64) *MSHR {
	if len(c.mshrs) >= c.cfg.MSHRs {
		return nil
	}
	key := addr &^ uint64(c.cfg.LineBytes-1)
	if _, ok := c.mshrs[key]; ok {
		panic("cache: MSHR already allocated for line")
	}
	var m *MSHR
	if n := len(c.mshrFree); n > 0 {
		m = c.mshrFree[n-1]
		c.mshrFree = c.mshrFree[:n-1]
		// Waiter handles are cleared at reuse time, not release time,
		// because MSHRRelease's caller still reads them.
		ws := m.Waiters
		for i := range ws {
			ws[i] = nil
		}
		*m = MSHR{Line: key, Waiters: ws[:0]}
	} else {
		m = &MSHR{Line: key}
	}
	c.mshrs[key] = m
	return m
}

// MSHRRelease removes and returns the MSHR for the line containing addr
// (on fill). It returns nil if none exists.
func (c *Cache) MSHRRelease(addr uint64) *MSHR {
	key := addr &^ uint64(c.cfg.LineBytes-1)
	m := c.mshrs[key]
	if m != nil {
		delete(c.mshrs, key)
		c.mshrFree = append(c.mshrFree, m)
	}
	return m
}

// MSHRCount returns the number of in-flight miss lines.
func (c *Cache) MSHRCount() int { return len(c.mshrs) }
