package sweep

import (
	"errors"
	"math"
	"strings"
	"testing"

	"dramlat"
)

// fieldsOf asserts err is a *dramlat.ValidationError and returns its
// field names in order.
func fieldsOf(t *testing.T, err error) []string {
	t.Helper()
	var ve *dramlat.ValidationError
	if !errors.As(err, &ve) {
		t.Fatalf("error %v (%T) is not a *dramlat.ValidationError", err, err)
	}
	names := make([]string, len(ve.Fields))
	for i, f := range ve.Fields {
		names[i] = f.Field
	}
	return names
}

func wantFields(t *testing.T, err error, want ...string) {
	t.Helper()
	got := fieldsOf(t, err)
outer:
	for _, w := range want {
		for _, g := range got {
			if g == w {
				continue outer
			}
		}
		t.Errorf("missing field %q in %v (error: %v)", w, got, err)
	}
}

// TestParseGridErrorPaths pins the structured failure vocabulary of
// ParseGrid: every malformed grid comes back as a *ValidationError
// naming the offending axis keys, so a service can return them in a
// machine-readable error body.
func TestParseGridErrorPaths(t *testing.T) {
	cases := []struct {
		name   string
		json   string
		fields []string
	}{
		{"unknown field",
			`{"benchmarks":["bfs"],"bogus_axis":[1]}`,
			[]string{"bogus_axis"}},
		{"empty axis",
			`{"benchmarks":["bfs"],"seeds":[]}`,
			[]string{"seeds"}},
		{"several empty axes aggregate",
			`{"benchmarks":["bfs"],"seeds":[],"scales":[],"warp_scheds":[]}`,
			[]string{"seeds", "scales", "warp_scheds"}},
		{"duplicate axis key",
			`{"benchmarks":["bfs"],"seeds":[1],"seeds":[2]}`,
			[]string{"seeds"}},
		{"unknown benchmark",
			`{"benchmarks":["bfs","nope"]}`,
			[]string{"benchmarks[1]"}},
		{"unknown scheduler",
			`{"benchmarks":["bfs"],"schedulers":["gmc","fancy"]}`,
			[]string{"schedulers[1]"}},
		{"out-of-range float literal",
			`{"benchmarks":["bfs"],"scales":[1e999]}`,
			[]string{"scales"}},
		{"unknown and duplicate together",
			`{"benchmarks":["bfs"],"wat":1,"wat":2,"seeds":[]}`,
			[]string{"wat", "seeds"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseGrid(strings.NewReader(tc.json))
			if err == nil {
				t.Fatalf("ParseGrid(%s) succeeded", tc.json)
			}
			wantFields(t, err, tc.fields...)
		})
	}

	// Outright-broken JSON is not a validation error.
	if _, err := ParseGrid(strings.NewReader(`{"benchmarks":`)); err == nil {
		t.Fatal("truncated JSON accepted")
	} else {
		var ve *dramlat.ValidationError
		if errors.As(err, &ve) {
			t.Fatalf("truncated JSON misreported as validation error: %v", err)
		}
	}
	if _, err := ParseGrid(strings.NewReader(`[1,2]`)); err == nil {
		t.Fatal("non-object grid accepted")
	}

	// A good grid still parses.
	g, err := ParseGrid(strings.NewReader(
		`{"benchmarks":["bfs","spmv"],"schedulers":["gmc","wg-w"],"seeds":[1,2]}`))
	if err != nil {
		t.Fatalf("good grid rejected: %v", err)
	}
	if g.Size() != 8 {
		t.Fatalf("size %d, want 8", g.Size())
	}
}

// TestGridValidateStructured covers Validate paths not reachable via
// JSON (NaN/Inf floats, bad Extra specs, duplicate benchmark names are
// fine) and the multi-problem aggregation contract.
func TestGridValidateStructured(t *testing.T) {
	err := Grid{}.Validate()
	wantFields(t, err, "benchmarks")

	err = Grid{
		Benchmarks: []string{"bfs", "nope"},
		Schedulers: []string{"fancy"},
		Scales:     []float64{0.1, math.NaN(), math.Inf(1)},
		Alphas:     []float64{math.Inf(-1)},
	}.Validate()
	wantFields(t, err,
		"benchmarks[1]", "schedulers[0]", "scales[1]", "scales[2]", "alphas[0]")
	if got := fieldsOf(t, err); len(got) != 5 {
		t.Errorf("want exactly 5 problems, got %v", got)
	}

	// Extra specs validate individually, fields prefixed with their index.
	err = Grid{Extra: []dramlat.RunSpec{
		{Benchmark: "bfs", Scheduler: "gmc"},
		{Benchmark: "nope", Scale: -1},
	}}.Validate()
	wantFields(t, err, "extra[1].Benchmark", "extra[1].Scale")
	for _, f := range fieldsOf(t, err) {
		if strings.HasPrefix(f, "extra[0]") {
			t.Errorf("valid extra spec produced field %q", f)
		}
	}

	// A grid valid only through Extra (no cartesian axes) passes.
	if err := (Grid{Extra: []dramlat.RunSpec{{Benchmark: "bfs", Scheduler: "gmc"}}}).Validate(); err != nil {
		t.Fatalf("extra-only grid rejected: %v", err)
	}
}
