package sweep

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"dramlat"
)

// tinySpecs is a small real grid: cheap enough for the race detector,
// varied enough to exercise scheduler and seed dimensions.
func tinySpecs() []dramlat.RunSpec {
	g := Grid{
		Benchmarks: []string{"bfs", "spmv"},
		Schedulers: []string{"gmc", "wg-w"},
		Seeds:      []int64{1, 2},
		Scales:     []float64{0.05},
		SMs:        []int{2},
		WarpsPerSM: []int{4},
	}
	return g.Enumerate()
}

func TestGridEnumerate(t *testing.T) {
	g := Grid{
		Benchmarks: []string{"bfs", "spmv", "sssp"},
		Schedulers: []string{"gmc", "wg"},
		Seeds:      []int64{1, 2},
		Extra:      []dramlat.RunSpec{{Benchmark: "sad", Scheduler: "fcfs"}},
	}
	specs := g.Enumerate()
	if len(specs) != g.Size() || len(specs) != 3*2*2+1 {
		t.Fatalf("enumerated %d specs, Size()=%d", len(specs), g.Size())
	}
	// Benchmarks vary outermost.
	if specs[0].Benchmark != "bfs" || specs[len(specs)-2].Benchmark != "sssp" {
		t.Fatalf("unexpected order: %+v", specs)
	}
	seen := map[string]bool{}
	for _, s := range specs {
		seen[s.Hash()] = true
	}
	if len(seen) != len(specs) {
		t.Fatalf("hash collision: %d unique of %d", len(seen), len(specs))
	}
}

func TestGridValidate(t *testing.T) {
	if err := (Grid{}).Validate(); err == nil {
		t.Fatal("empty grid accepted")
	}
	if err := (Grid{Benchmarks: []string{"nope"}}).Validate(); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if err := (Grid{Benchmarks: []string{"bfs"}, Schedulers: []string{"nope"}}).Validate(); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
	if err := (Grid{Benchmarks: []string{"bfs"}, Schedulers: []string{"gmc"}}).Validate(); err != nil {
		t.Fatalf("valid grid rejected: %v", err)
	}
}

func TestParseGrid(t *testing.T) {
	g, err := ParseGrid(strings.NewReader(
		`{"benchmarks":["bfs"],"schedulers":["gmc","wg-w"],"seeds":[1,2,3]}`))
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != 6 {
		t.Fatalf("size %d", g.Size())
	}
	if _, err := ParseGrid(strings.NewReader(`{"bogus_field":1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestCanonicalHash(t *testing.T) {
	// Zero-valued defaults and their explicit spellings hash equal.
	a := dramlat.RunSpec{Benchmark: "bfs"}
	b := dramlat.RunSpec{Benchmark: "bfs", Scheduler: "gmc", Seed: 1,
		Scale: 1.0, SMs: 30, WarpsPerSM: 32, SBWASAlpha: 0.5,
		ReadQ: 64, CmdQueueCap: 4, WarpSched: "gto"}
	if a.Hash() != b.Hash() {
		t.Fatalf("default spec and explicit spec hash differently:\n%s\n%s", a.Hash(), b.Hash())
	}
	c := b
	c.Seed = 2
	if c.Hash() == b.Hash() {
		t.Fatal("different seeds share a hash")
	}
}

// TestParallelDeterminism is the core guarantee: the same grid run with 1
// worker and N workers yields identical Results — tick counts, IPC, the
// whole digest — for every spec.
func TestParallelDeterminism(t *testing.T) {
	specs := tinySpecs()
	serial := (&Engine{Workers: 1}).Run(specs)
	if err := serial.Err(); err != nil {
		t.Fatal(err)
	}
	parallel := (&Engine{Workers: 8}).Run(specs)
	if err := parallel.Err(); err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		s, p := serial.Outcomes[i].Results, parallel.Outcomes[i].Results
		if s != p {
			t.Errorf("spec %d (%s/%s seed %d): serial and parallel results differ:\nticks %d vs %d, IPC %g vs %g\n%+v\n%+v",
				i, specs[i].Benchmark, specs[i].Scheduler, specs[i].Seed,
				s.Ticks, p.Ticks, s.IPC, p.IPC, s, p)
		}
		// Byte-identical under encoding too (what the cache stores).
		sb, _ := json.Marshal(s)
		pb, _ := json.Marshal(p)
		if !bytes.Equal(sb, pb) {
			t.Errorf("spec %d: JSON encodings differ", i)
		}
	}
	if serial.Executed != len(specs) || parallel.Executed != len(specs) {
		t.Fatalf("executed %d/%d, want all %d", serial.Executed, parallel.Executed, len(specs))
	}
}

func TestCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	spec := dramlat.RunSpec{Benchmark: "bfs", Scheduler: "gmc", Scale: 0.05, SMs: 2, WarpsPerSM: 4}
	if _, ok := c.Get(spec); ok {
		t.Fatal("empty cache claims a hit")
	}
	res := dramlat.Results{Ticks: 123, Instr: 456, IPC: 3.7, Drained: true}
	if err := c.Put(spec, res); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(spec)
	if !ok || got != res {
		t.Fatalf("round trip: ok=%v got=%+v", ok, got)
	}
	// Equivalent spelling of the same spec hits the same entry.
	alias := spec
	alias.Seed = 1
	alias.Scheduler = "gmc"
	if got, ok := c.Get(alias); !ok || got != res {
		t.Fatal("canonicalized alias missed the cache")
	}
	// Layout: sharded by hash prefix.
	h := spec.Hash()
	if _, err := filepath.Glob(filepath.Join(dir, h[:2], h+".json")); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 {
		t.Fatalf("Len=%d", c.Len())
	}
	// A nil cache is a working no-op.
	var nilc *Cache
	if _, ok := nilc.Get(spec); ok {
		t.Fatal("nil cache hit")
	}
	if err := nilc.Put(spec, res); err != nil {
		t.Fatal(err)
	}
}

// TestSweepResume: a second engine run over the same grid and cache dir
// executes nothing and serves everything from disk, with identical
// results.
func TestSweepResume(t *testing.T) {
	dir := t.TempDir()
	specs := tinySpecs()

	c1, _ := OpenCache(dir)
	var ran atomic.Int64
	counting := func(s dramlat.RunSpec) (dramlat.Results, error) {
		ran.Add(1)
		return dramlat.Run(s)
	}
	first := (&Engine{Workers: 4, Cache: c1, Runner: counting}).Run(specs)
	if err := first.Err(); err != nil {
		t.Fatal(err)
	}
	if first.Executed != len(specs) || first.Cached != 0 || int(ran.Load()) != len(specs) {
		t.Fatalf("first pass: executed=%d cached=%d ran=%d", first.Executed, first.Cached, ran.Load())
	}

	c2, _ := OpenCache(dir) // fresh handle, same dir: resume
	second := (&Engine{Workers: 4, Cache: c2, Runner: counting}).Run(specs)
	if second.Executed != 0 || second.Cached != len(specs) || int(ran.Load()) != len(specs) {
		t.Fatalf("resume pass: executed=%d cached=%d ran=%d", second.Executed, second.Cached, ran.Load())
	}
	for i := range specs {
		if first.Outcomes[i].Results != second.Outcomes[i].Results {
			t.Fatalf("spec %d: cached results differ from executed", i)
		}
		if !second.Outcomes[i].Cached {
			t.Fatalf("spec %d not marked cached", i)
		}
	}
}

// TestErrorAggregation: one failing spec doesn't kill the sweep; the rest
// complete and the report carries the failure.
func TestErrorAggregation(t *testing.T) {
	boom := errors.New("boom")
	runner := func(s dramlat.RunSpec) (dramlat.Results, error) {
		if s.Benchmark == "bad" {
			return dramlat.Results{}, boom
		}
		return dramlat.Results{Ticks: int64(s.Seed), Drained: true}, nil
	}
	specs := []dramlat.RunSpec{
		{Benchmark: "ok1", Seed: 10},
		{Benchmark: "bad", Seed: 11},
		{Benchmark: "ok2", Seed: 12},
	}
	rep := (&Engine{Workers: 2, Runner: runner}).Run(specs)
	if rep.Failed != 1 || len(rep.Failures()) != 1 {
		t.Fatalf("failed=%d failures=%d", rep.Failed, len(rep.Failures()))
	}
	if !errors.Is(rep.Err(), boom) {
		t.Fatalf("aggregated error %v does not wrap the cause", rep.Err())
	}
	if rep.Outcomes[0].Results.Ticks != 10 || rep.Outcomes[2].Results.Ticks != 12 {
		t.Fatal("healthy specs did not complete")
	}
	if rep.Outcomes[1].Err == nil {
		t.Fatal("failed spec lost its error")
	}
}

// TestDeduplication: hash-equal specs execute once and share results.
func TestDeduplication(t *testing.T) {
	var ran atomic.Int64
	runner := func(s dramlat.RunSpec) (dramlat.Results, error) {
		ran.Add(1)
		return dramlat.Results{Ticks: 99, Drained: true}, nil
	}
	specs := []dramlat.RunSpec{
		{Benchmark: "bfs"},
		{Benchmark: "bfs", Scheduler: "gmc", Seed: 1, Scale: 1.0}, // same canonical spec
		{Benchmark: "bfs", Seed: 2},
	}
	rep := (&Engine{Workers: 4, Runner: runner}).Run(specs)
	if got := ran.Load(); got != 2 {
		t.Fatalf("ran %d unique specs, want 2", got)
	}
	if rep.Outcomes[1].Results.Ticks != 99 || !rep.Outcomes[1].Cached {
		t.Fatalf("duplicate outcome %+v", rep.Outcomes[1])
	}
	if rep.Executed != 2 || rep.Cached != 1 {
		t.Fatalf("executed=%d cached=%d", rep.Executed, rep.Cached)
	}
}

func TestProgressEvents(t *testing.T) {
	var events []Event
	rep := (&Engine{
		Workers: 3,
		Runner: func(s dramlat.RunSpec) (dramlat.Results, error) {
			return dramlat.Results{Drained: true}, nil
		},
		Progress: func(ev Event) { events = append(events, ev) },
	}).Run([]dramlat.RunSpec{{Benchmark: "a"}, {Benchmark: "b"}, {Benchmark: "c"}})
	if len(events) != 3 {
		t.Fatalf("%d events", len(events))
	}
	last := events[len(events)-1]
	if last.Done != 3 || last.Total != 3 || last.Executed != 3 {
		t.Fatalf("final event %+v", last)
	}
	if rep.Elapsed <= 0 {
		t.Fatal("no elapsed time")
	}
}

func TestExportJSONAndCSV(t *testing.T) {
	runner := func(s dramlat.RunSpec) (dramlat.Results, error) {
		if s.Benchmark == "bad" {
			return dramlat.Results{}, fmt.Errorf("exploded")
		}
		return dramlat.Results{Ticks: 42, Instr: 84, IPC: 2, Drained: true}, nil
	}
	rep := (&Engine{Workers: 1, Runner: runner}).Run([]dramlat.RunSpec{
		{Benchmark: "bfs", Scheduler: "wg-w", Seed: 7},
		{Benchmark: "bad"},
	})

	var jb bytes.Buffer
	if err := rep.WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Total, Executed, Failed int
		Runs                    []Record
	}
	if err := json.Unmarshal(jb.Bytes(), &decoded); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, jb.String())
	}
	if decoded.Total != 2 || decoded.Failed != 1 || len(decoded.Runs) != 2 {
		t.Fatalf("envelope %+v", decoded)
	}
	r0 := decoded.Runs[0]
	if r0.Benchmark != "bfs" || r0.Scheduler != "wg-w" || r0.Seed != 7 || r0.Ticks != 42 {
		t.Fatalf("record %+v", r0)
	}
	if r0.SMs != 30 || r0.Scale != 1.0 {
		t.Fatalf("record not canonicalized: %+v", r0)
	}
	if decoded.Runs[1].Error == "" {
		t.Fatal("failure lost in export")
	}

	var cb bytes.Buffer
	if err := rep.WriteCSV(&cb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(cb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV lines: %d\n%s", len(lines), cb.String())
	}
	if got := len(strings.Split(lines[0], ",")); got != len(csvHeader) {
		t.Fatalf("header width %d vs %d", got, len(csvHeader))
	}
	if !strings.HasPrefix(lines[1], "bfs,wg-w,7,") {
		t.Fatalf("row %q", lines[1])
	}
}

// TestEngineEndToEndWithRealRuns exercises the default runner through the
// cache on a real (tiny) simulation, including RunOne.
func TestEngineEndToEndWithRealRuns(t *testing.T) {
	c, _ := OpenCache(t.TempDir())
	e := &Engine{Workers: 2, Cache: c}
	spec := dramlat.RunSpec{Benchmark: "sad", Scheduler: "gmc", Scale: 0.05, SMs: 2, WarpsPerSM: 4}
	o1 := e.RunOne(spec)
	if o1.Err != nil || o1.Cached || o1.Results.Ticks == 0 {
		t.Fatalf("first RunOne %+v err %v", o1, o1.Err)
	}
	o2 := e.RunOne(spec)
	if o2.Err != nil || !o2.Cached || o2.Results != o1.Results {
		t.Fatalf("second RunOne not a faithful cache hit: %+v", o2)
	}
	rep := e.Run([]dramlat.RunSpec{spec})
	if rep.Cached != 1 || rep.Executed != 0 {
		t.Fatalf("Run after RunOne: %s", rep.Summary())
	}
}
