package sweep

import (
	"reflect"
	"testing"

	"dramlat"
)

// sampledTinySpecs is a small sampled grid: every spec carries a
// non-zero Sampled block (hash-included), with windows short enough
// that each run goes through several measure/jump regions.
func sampledTinySpecs() []dramlat.RunSpec {
	g := Grid{
		Benchmarks: []string{"bfs", "spmv"},
		Schedulers: []string{"gmc", "wg-w"},
		Seeds:      []int64{1, 2},
		Scales:     []float64{4},
		SMs:        []int{4},
		WarpsPerSM: []int{8},
	}
	specs := g.Enumerate()
	for i := range specs {
		specs[i].Sampled = dramlat.SampledOptions{
			WindowCycles: 2000, FastForwardCycles: 8000, WarmupCycles: 1000,
		}
	}
	return specs
}

// A sampled run's RNG streams are keyed on (spec hash, seed, window
// index) — never on goroutine scheduling or process-global state — so
// a sweep must produce byte-identical approximate Results whether one
// worker runs the specs sequentially or N workers race them. This is
// the lockstep contract that lets sampled sweeps share the persistent
// cache across fleet workers.
func TestSampledSweepLockstepAcrossWorkers(t *testing.T) {
	specs := sampledTinySpecs()
	one := (&Engine{Workers: 1}).Run(specs)
	many := (&Engine{Workers: 8}).Run(specs)
	if one.Failed != 0 || many.Failed != 0 {
		t.Fatalf("failures: 1-worker %d, 8-worker %d", one.Failed, many.Failed)
	}
	for i := range specs {
		a, b := one.Outcomes[i], many.Outcomes[i]
		if !a.Results.Approximate || !b.Results.Approximate {
			t.Fatalf("spec %d: sampled outcome not marked approximate", i)
		}
		if !reflect.DeepEqual(a.Results, b.Results) {
			t.Fatalf("spec %d (%s): 1-worker and 8-worker results diverge:\n a %+v\n b %+v",
				i, specs[i].Hash(), a.Results, b.Results)
		}
	}
}

// Approximate results round-trip the flattened Record and the outcome
// wire format with their sampling metadata intact, so a sweep report
// fetched from a dlserve instance keeps the error bars.
func TestSampledRecordCarriesErrorBars(t *testing.T) {
	spec := sampledTinySpecs()[0]
	o := (&Engine{}).RunOne(spec)
	if o.Err != nil {
		t.Fatal(o.Err)
	}
	rec := RecordOf(o)
	if !rec.Approximate {
		t.Fatal("record of a sampled outcome is not marked approximate")
	}
	if rec.SamplingWindows < 1 {
		t.Fatalf("record reports %d sampling windows", rec.SamplingWindows)
	}
}
