package sweep

import (
	"time"

	"dramlat"
	"dramlat/internal/metrics"
)

// The sweep engine and cache publish their counters on metrics.Default,
// so a local dlsweep/dlbench run and a dlserve instance expose the same
// families from the same code paths — the service's /metrics endpoint
// is just an exposition of what the engine already counts. All hooks
// are per-spec (a spec run costs milliseconds; a counter increment
// costs nanoseconds — see BenchmarkEngineMetricsOverhead), never
// per-simulated-tick.
var (
	mSpecsExecuted = metrics.Default.Counter("dramlat_sweep_specs_executed_total",
		"Specs actually simulated (cache misses that ran).")
	mSpecsCached = metrics.Default.Counter("dramlat_sweep_specs_cached_total",
		"Specs served from the persistent cache or a deduplicated leader run.")
	mSpecsFailed = metrics.Default.Counter("dramlat_sweep_specs_failed_total",
		"Specs whose runner returned an error.")
	mSpecSeconds = metrics.Default.HistogramVec("dramlat_sweep_spec_seconds",
		"Wall-clock execution latency of freshly simulated specs.",
		nil, "scheduler")
	mSpecsApproximate = metrics.Default.Counter("dramlat_sweep_specs_approximate_total",
		"Successful sampled-engine specs (approximate Results with error bars).")

	mCacheHits = metrics.Default.Counter("dramlat_cache_hits_total",
		"Result-cache lookups served from disk.")
	mCacheMisses = metrics.Default.Counter("dramlat_cache_misses_total",
		"Result-cache lookups that found no verified entry.")
	mCachePuts = metrics.Default.Counter("dramlat_cache_puts_total",
		"Result-cache entries written.")
	mCacheQuarantined = metrics.Default.Counter("dramlat_cache_quarantined_total",
		"Cache entries quarantined for parse or checksum failures.")
)

// observeOutcome mirrors one spec outcome (plus followers deduplicated
// onto it) into the default registry with exactly the Report counter
// semantics: followers of a successful leader count as cached, so
// executed + cached reconciles with the report totals.
func observeOutcome(spec dramlat.RunSpec, err error, cached bool, elapsed time.Duration, followers int) {
	n := 1 + followers
	if err != nil {
		mSpecsFailed.Add(int64(n))
	} else if spec.IsSampled() {
		mSpecsApproximate.Add(int64(n))
	}
	if cached {
		mSpecsCached.Add(int64(n))
		return
	}
	mSpecsExecuted.Inc()
	mSpecSeconds.With(spec.Canonical().Scheduler).Observe(elapsed.Seconds())
	if err == nil {
		mSpecsCached.Add(int64(followers))
	}
}
