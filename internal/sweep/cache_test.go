package sweep

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"dramlat"
)

// TestCachePutGetConcurrent hammers Put and Get for the same hash (and
// a handful of distinct hashes) from many goroutines. Run under -race
// in CI, this is the regression gate for the same-hash writer
// serialization: every Get that hits must return a whole, verified
// entry, and the directory must end up with exactly one .json per hash
// and no quarantined or stranded temp files.
func TestCachePutGetConcurrent(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	specs := make([]dramlat.RunSpec, 4)
	results := make([]dramlat.Results, 4)
	for i := range specs {
		specs[i] = dramlat.RunSpec{Benchmark: "bfs", Scheduler: "gmc",
			Seed: int64(i + 1), Scale: 0.05, SMs: 2, WarpsPerSM: 4}
		results[i] = dramlat.Results{Ticks: int64(1000 + i), Instr: int64(10 * i), Drained: true}
	}

	const goroutines = 16
	const iters = 40
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				// Every goroutine hammers hash 0; the rest rotate.
				k := 0
				if i%2 == 1 {
					k = (g + i) % len(specs)
				}
				if err := c.Put(specs[k], results[k]); err != nil {
					errs <- err
					return
				}
				if got, ok := c.Get(specs[k]); ok && got != results[k] {
					t.Errorf("goroutine %d: torn read for spec %d: %+v", g, k, got)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	for k := range specs {
		got, ok := c.Get(specs[k])
		if !ok || got != results[k] {
			t.Fatalf("spec %d after hammer: ok=%v got=%+v", k, ok, got)
		}
	}
	if n := c.Len(); n != len(specs) {
		t.Fatalf("Len=%d, want %d", n, len(specs))
	}
	// No .corrupt quarantines, no stranded temp files.
	filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		if strings.Contains(path, ".corrupt") || strings.Contains(path, ".tmp") {
			t.Errorf("stray file after concurrent Put: %s", path)
		}
		return nil
	})
}

// TestCacheEntryByHash covers the service's fetch-by-hash path,
// including the strict hash validation that fences path traversal.
func TestCacheEntryByHash(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	spec := dramlat.RunSpec{Benchmark: "spmv", Scheduler: "wg-w", Scale: 0.05, SMs: 2, WarpsPerSM: 4}
	res := dramlat.Results{Ticks: 777, Drained: true}
	if err := c.Put(spec, res); err != nil {
		t.Fatal(err)
	}
	gotSpec, gotRes, ok := c.Entry(spec.Hash())
	if !ok || gotRes != res {
		t.Fatalf("Entry miss: ok=%v res=%+v", ok, gotRes)
	}
	// Entries store the canonical spec.
	if gotSpec.Hash() != spec.Hash() || gotSpec.Seed != 1 {
		t.Fatalf("stored spec not canonical: %+v", gotSpec)
	}
	for _, bad := range []string{
		"", "zz", strings.Repeat("g", 64), "../../../../etc/passwd",
		strings.Repeat("A", 64), spec.Hash()[:63],
	} {
		if _, _, ok := c.Entry(bad); ok {
			t.Errorf("invalid hash %q hit", bad)
		}
	}
	if _, _, ok := c.Entry(strings.Repeat("0", 64)); ok {
		t.Error("absent hash hit")
	}
	var nilc *Cache
	if _, _, ok := nilc.Entry(spec.Hash()); ok {
		t.Error("nil cache hit")
	}
}
