// Package sweep is the experiment-execution engine behind the paper
// reproduction: it expands declarative spec grids into dramlat.RunSpec
// lists, executes them on a worker pool with a persistent on-disk result
// cache, aggregates failures instead of dying on the first one, and
// exports the aggregate as JSON or CSV. cmd/dlbench, cmd/dlsweep and
// examples/schedcompare all run on top of it.
package sweep

import (
	"encoding/json"
	"fmt"
	"io"

	"dramlat"
)

// Grid declares a cartesian sweep over RunSpec dimensions. A nil/empty
// dimension means "the spec zero value" (which dramlat resolves to its
// default), so the zero Grid with one benchmark and one scheduler is a
// single run. Specs listed in Extra are appended verbatim after the
// cartesian product.
type Grid struct {
	Benchmarks []string  `json:"benchmarks,omitempty"`
	Schedulers []string  `json:"schedulers,omitempty"`
	Seeds      []int64   `json:"seeds,omitempty"`
	Scales     []float64 `json:"scales,omitempty"`
	SMs        []int     `json:"sms,omitempty"`
	WarpsPerSM []int     `json:"warps_per_sm,omitempty"`
	ReadQs     []int     `json:"read_qs,omitempty"`
	CmdQCaps   []int     `json:"cmd_q_caps,omitempty"`
	Alphas     []float64 `json:"alphas,omitempty"`
	Ablations  []string  `json:"ablations,omitempty"`
	WarpScheds []string  `json:"warp_scheds,omitempty"`

	PerfectCoalescing []bool `json:"perfect_coalescing,omitempty"`
	ZeroDivergence    []bool `json:"zero_divergence,omitempty"`

	Extra []dramlat.RunSpec `json:"extra,omitempty"`
}

// Size returns the number of specs Enumerate will produce.
func (g Grid) Size() int {
	dim := func(n int) int {
		if n == 0 {
			return 1
		}
		return n
	}
	n := dim(len(g.Benchmarks)) * dim(len(g.Schedulers)) * dim(len(g.Seeds)) *
		dim(len(g.Scales)) * dim(len(g.SMs)) * dim(len(g.WarpsPerSM)) *
		dim(len(g.ReadQs)) * dim(len(g.CmdQCaps)) * dim(len(g.Alphas)) *
		dim(len(g.Ablations)) * dim(len(g.WarpScheds)) *
		dim(len(g.PerfectCoalescing)) * dim(len(g.ZeroDivergence))
	return n + len(g.Extra)
}

// Enumerate expands the grid into concrete specs, benchmarks outermost so
// per-benchmark results cluster together in reports.
func (g Grid) Enumerate() []dramlat.RunSpec {
	specs := []dramlat.RunSpec{{}}
	// Each non-empty dimension multiplies the partial spec list; empty
	// dimensions pass through, leaving the spec's zero value.
	strDim := func(vals []string, set func(*dramlat.RunSpec, string)) {
		if len(vals) == 0 {
			return
		}
		var next []dramlat.RunSpec
		for _, s := range specs {
			for _, v := range vals {
				c := s
				set(&c, v)
				next = append(next, c)
			}
		}
		specs = next
	}
	intDim := func(vals []int, set func(*dramlat.RunSpec, int)) {
		if len(vals) == 0 {
			return
		}
		var next []dramlat.RunSpec
		for _, s := range specs {
			for _, v := range vals {
				c := s
				set(&c, v)
				next = append(next, c)
			}
		}
		specs = next
	}
	f64Dim := func(vals []float64, set func(*dramlat.RunSpec, float64)) {
		if len(vals) == 0 {
			return
		}
		var next []dramlat.RunSpec
		for _, s := range specs {
			for _, v := range vals {
				c := s
				set(&c, v)
				next = append(next, c)
			}
		}
		specs = next
	}
	i64Dim := func(vals []int64, set func(*dramlat.RunSpec, int64)) {
		if len(vals) == 0 {
			return
		}
		var next []dramlat.RunSpec
		for _, s := range specs {
			for _, v := range vals {
				c := s
				set(&c, v)
				next = append(next, c)
			}
		}
		specs = next
	}
	boolDim := func(vals []bool, set func(*dramlat.RunSpec, bool)) {
		if len(vals) == 0 {
			return
		}
		var next []dramlat.RunSpec
		for _, s := range specs {
			for _, v := range vals {
				c := s
				set(&c, v)
				next = append(next, c)
			}
		}
		specs = next
	}

	strDim(g.Benchmarks, func(s *dramlat.RunSpec, v string) { s.Benchmark = v })
	strDim(g.Schedulers, func(s *dramlat.RunSpec, v string) { s.Scheduler = v })
	i64Dim(g.Seeds, func(s *dramlat.RunSpec, v int64) { s.Seed = v })
	f64Dim(g.Scales, func(s *dramlat.RunSpec, v float64) { s.Scale = v })
	intDim(g.SMs, func(s *dramlat.RunSpec, v int) { s.SMs = v })
	intDim(g.WarpsPerSM, func(s *dramlat.RunSpec, v int) { s.WarpsPerSM = v })
	intDim(g.ReadQs, func(s *dramlat.RunSpec, v int) { s.ReadQ = v })
	intDim(g.CmdQCaps, func(s *dramlat.RunSpec, v int) { s.CmdQueueCap = v })
	f64Dim(g.Alphas, func(s *dramlat.RunSpec, v float64) { s.SBWASAlpha = v })
	strDim(g.Ablations, func(s *dramlat.RunSpec, v string) { s.Ablation = v })
	strDim(g.WarpScheds, func(s *dramlat.RunSpec, v string) { s.WarpSched = v })
	boolDim(g.PerfectCoalescing, func(s *dramlat.RunSpec, v bool) { s.PerfectCoalescing = v })
	boolDim(g.ZeroDivergence, func(s *dramlat.RunSpec, v bool) { s.ZeroDivergence = v })

	specs = append(specs, g.Extra...)
	return specs
}

// Validate rejects grids that would enumerate specs dramlat.Run refuses,
// so a sweep fails before any work rather than per-spec.
func (g Grid) Validate() error {
	if len(g.Benchmarks) == 0 && len(g.Extra) == 0 {
		return fmt.Errorf("sweep: grid selects no benchmarks")
	}
	known := map[string]bool{}
	for _, b := range dramlat.Benchmarks() {
		known[b.Name] = true
	}
	for _, b := range g.Benchmarks {
		if !known[b] {
			return fmt.Errorf("sweep: unknown benchmark %q", b)
		}
	}
	scheds := map[string]bool{}
	for _, s := range dramlat.Schedulers() {
		scheds[s] = true
	}
	for _, s := range g.Schedulers {
		if !scheds[s] {
			return fmt.Errorf("sweep: unknown scheduler %q", s)
		}
	}
	return nil
}

// ParseGrid decodes a JSON grid description (the cmd/dlsweep -grid file
// format) and validates it.
func ParseGrid(r io.Reader) (Grid, error) {
	var g Grid
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&g); err != nil {
		return Grid{}, fmt.Errorf("sweep: parse grid: %w", err)
	}
	if err := g.Validate(); err != nil {
		return Grid{}, err
	}
	return g, nil
}
