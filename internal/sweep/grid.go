// Package sweep is the experiment-execution engine behind the paper
// reproduction: it expands declarative spec grids into dramlat.RunSpec
// lists, executes them on a worker pool with a persistent on-disk result
// cache, aggregates failures instead of dying on the first one, and
// exports the aggregate as JSON or CSV. cmd/dlbench, cmd/dlsweep and
// examples/schedcompare all run on top of it.
package sweep

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"

	"dramlat"
)

// Grid declares a cartesian sweep over RunSpec dimensions. A nil/empty
// dimension means "the spec zero value" (which dramlat resolves to its
// default), so the zero Grid with one benchmark and one scheduler is a
// single run. Specs listed in Extra are appended verbatim after the
// cartesian product.
type Grid struct {
	Benchmarks []string  `json:"benchmarks,omitempty"`
	Schedulers []string  `json:"schedulers,omitempty"`
	Seeds      []int64   `json:"seeds,omitempty"`
	Scales     []float64 `json:"scales,omitempty"`
	SMs        []int     `json:"sms,omitempty"`
	WarpsPerSM []int     `json:"warps_per_sm,omitempty"`
	ReadQs     []int     `json:"read_qs,omitempty"`
	CmdQCaps   []int     `json:"cmd_q_caps,omitempty"`
	Alphas     []float64 `json:"alphas,omitempty"`
	Ablations  []string  `json:"ablations,omitempty"`
	WarpScheds []string  `json:"warp_scheds,omitempty"`

	PerfectCoalescing []bool `json:"perfect_coalescing,omitempty"`
	ZeroDivergence    []bool `json:"zero_divergence,omitempty"`

	Extra []dramlat.RunSpec `json:"extra,omitempty"`
}

// Size returns the number of specs Enumerate will produce.
func (g Grid) Size() int {
	dim := func(n int) int {
		if n == 0 {
			return 1
		}
		return n
	}
	n := dim(len(g.Benchmarks)) * dim(len(g.Schedulers)) * dim(len(g.Seeds)) *
		dim(len(g.Scales)) * dim(len(g.SMs)) * dim(len(g.WarpsPerSM)) *
		dim(len(g.ReadQs)) * dim(len(g.CmdQCaps)) * dim(len(g.Alphas)) *
		dim(len(g.Ablations)) * dim(len(g.WarpScheds)) *
		dim(len(g.PerfectCoalescing)) * dim(len(g.ZeroDivergence))
	return n + len(g.Extra)
}

// Enumerate expands the grid into concrete specs, benchmarks outermost so
// per-benchmark results cluster together in reports.
func (g Grid) Enumerate() []dramlat.RunSpec {
	specs := []dramlat.RunSpec{{}}
	// Each non-empty dimension multiplies the partial spec list; empty
	// dimensions pass through, leaving the spec's zero value.
	strDim := func(vals []string, set func(*dramlat.RunSpec, string)) {
		if len(vals) == 0 {
			return
		}
		var next []dramlat.RunSpec
		for _, s := range specs {
			for _, v := range vals {
				c := s
				set(&c, v)
				next = append(next, c)
			}
		}
		specs = next
	}
	intDim := func(vals []int, set func(*dramlat.RunSpec, int)) {
		if len(vals) == 0 {
			return
		}
		var next []dramlat.RunSpec
		for _, s := range specs {
			for _, v := range vals {
				c := s
				set(&c, v)
				next = append(next, c)
			}
		}
		specs = next
	}
	f64Dim := func(vals []float64, set func(*dramlat.RunSpec, float64)) {
		if len(vals) == 0 {
			return
		}
		var next []dramlat.RunSpec
		for _, s := range specs {
			for _, v := range vals {
				c := s
				set(&c, v)
				next = append(next, c)
			}
		}
		specs = next
	}
	i64Dim := func(vals []int64, set func(*dramlat.RunSpec, int64)) {
		if len(vals) == 0 {
			return
		}
		var next []dramlat.RunSpec
		for _, s := range specs {
			for _, v := range vals {
				c := s
				set(&c, v)
				next = append(next, c)
			}
		}
		specs = next
	}
	boolDim := func(vals []bool, set func(*dramlat.RunSpec, bool)) {
		if len(vals) == 0 {
			return
		}
		var next []dramlat.RunSpec
		for _, s := range specs {
			for _, v := range vals {
				c := s
				set(&c, v)
				next = append(next, c)
			}
		}
		specs = next
	}

	strDim(g.Benchmarks, func(s *dramlat.RunSpec, v string) { s.Benchmark = v })
	strDim(g.Schedulers, func(s *dramlat.RunSpec, v string) { s.Scheduler = v })
	i64Dim(g.Seeds, func(s *dramlat.RunSpec, v int64) { s.Seed = v })
	f64Dim(g.Scales, func(s *dramlat.RunSpec, v float64) { s.Scale = v })
	intDim(g.SMs, func(s *dramlat.RunSpec, v int) { s.SMs = v })
	intDim(g.WarpsPerSM, func(s *dramlat.RunSpec, v int) { s.WarpsPerSM = v })
	intDim(g.ReadQs, func(s *dramlat.RunSpec, v int) { s.ReadQ = v })
	intDim(g.CmdQCaps, func(s *dramlat.RunSpec, v int) { s.CmdQueueCap = v })
	f64Dim(g.Alphas, func(s *dramlat.RunSpec, v float64) { s.SBWASAlpha = v })
	strDim(g.Ablations, func(s *dramlat.RunSpec, v string) { s.Ablation = v })
	strDim(g.WarpScheds, func(s *dramlat.RunSpec, v string) { s.WarpSched = v })
	boolDim(g.PerfectCoalescing, func(s *dramlat.RunSpec, v bool) { s.PerfectCoalescing = v })
	boolDim(g.ZeroDivergence, func(s *dramlat.RunSpec, v bool) { s.ZeroDivergence = v })

	specs = append(specs, g.Extra...)
	return specs
}

// Validate rejects grids that would enumerate specs dramlat.Run refuses,
// so a sweep fails before any work rather than per-spec. Every problem
// found in one pass is aggregated into a single *dramlat.ValidationError
// whose field names are the grid's JSON axis keys (indexed for
// per-element findings, e.g. "scales[1]"), so a caller — or a service
// returning the error over HTTP — reports everything at once.
func (g Grid) Validate() error {
	v := &dramlat.ValidationError{}
	if len(g.Benchmarks) == 0 && len(g.Extra) == 0 {
		v.Addf("benchmarks", nil, "grid selects no benchmarks (and no extra specs)")
	}
	// An axis that is present but empty is almost always a mistake (the
	// author meant to list values, or should delete the key to mean
	// "default"), and it would silently enumerate zero specs.
	for _, ax := range []struct {
		name    string
		present bool
	}{
		{"benchmarks", g.Benchmarks != nil && len(g.Benchmarks) == 0},
		{"schedulers", g.Schedulers != nil && len(g.Schedulers) == 0},
		{"seeds", g.Seeds != nil && len(g.Seeds) == 0},
		{"scales", g.Scales != nil && len(g.Scales) == 0},
		{"sms", g.SMs != nil && len(g.SMs) == 0},
		{"warps_per_sm", g.WarpsPerSM != nil && len(g.WarpsPerSM) == 0},
		{"read_qs", g.ReadQs != nil && len(g.ReadQs) == 0},
		{"cmd_q_caps", g.CmdQCaps != nil && len(g.CmdQCaps) == 0},
		{"alphas", g.Alphas != nil && len(g.Alphas) == 0},
		{"ablations", g.Ablations != nil && len(g.Ablations) == 0},
		{"warp_scheds", g.WarpScheds != nil && len(g.WarpScheds) == 0},
		{"perfect_coalescing", g.PerfectCoalescing != nil && len(g.PerfectCoalescing) == 0},
		{"zero_divergence", g.ZeroDivergence != nil && len(g.ZeroDivergence) == 0},
		{"extra", g.Extra != nil && len(g.Extra) == 0},
	} {
		if ax.present {
			v.Addf(ax.name, nil, "axis present but empty: add values or delete the key")
		}
	}
	known := map[string]bool{}
	for _, b := range dramlat.Benchmarks() {
		known[b.Name] = true
	}
	for i, b := range g.Benchmarks {
		if !known[b] {
			v.Addf(fmt.Sprintf("benchmarks[%d]", i), b, "unknown benchmark")
		}
	}
	scheds := map[string]bool{}
	for _, s := range dramlat.Schedulers() {
		scheds[s] = true
	}
	for i, s := range g.Schedulers {
		if !scheds[s] {
			v.Addf(fmt.Sprintf("schedulers[%d]", i), s, "unknown scheduler")
		}
	}
	// NaN/Inf never comes out of a JSON file, but grids are also built
	// in Go (and dlsweep's -scale flag parses "NaN" happily); fence the
	// float axes here so the poison cannot reach RunSpec hashing.
	for i, x := range g.Scales {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			v.Addf(fmt.Sprintf("scales[%d]", i), x, "must be finite")
		}
	}
	for i, x := range g.Alphas {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			v.Addf(fmt.Sprintf("alphas[%d]", i), x, "must be finite")
		}
	}
	for i, sp := range g.Extra {
		if err := sp.Validate(); err != nil {
			var ve *dramlat.ValidationError
			if errors.As(err, &ve) {
				for _, fe := range ve.Fields {
					v.Addf(fmt.Sprintf("extra[%d].%s", i, fe.Field), fe.Value, "%s", fe.Msg)
				}
			} else {
				v.Addf(fmt.Sprintf("extra[%d]", i), nil, "%v", err)
			}
		}
	}
	return v.Err()
}

// gridAxes is the set of legal top-level keys in a grid file, i.e. the
// JSON tags of Grid.
var gridAxes = map[string]bool{
	"benchmarks": true, "schedulers": true, "seeds": true, "scales": true,
	"sms": true, "warps_per_sm": true, "read_qs": true, "cmd_q_caps": true,
	"alphas": true, "ablations": true, "warp_scheds": true,
	"perfect_coalescing": true, "zero_divergence": true, "extra": true,
}

// ParseGrid decodes a JSON grid description (the cmd/dlsweep -grid file
// and sweepd submit format) and validates it. Unknown axis keys and
// duplicate axis keys — which encoding/json would silently drop or
// last-wins overwrite — are reported as *dramlat.ValidationError fields
// alongside everything Validate finds, so a bad grid file is fixed in
// one round trip.
func ParseGrid(r io.Reader) (Grid, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return Grid{}, fmt.Errorf("sweep: parse grid: %w", err)
	}
	v := &dramlat.ValidationError{}
	decodable, err := checkGridKeys(data, v)
	if err != nil {
		return Grid{}, fmt.Errorf("sweep: parse grid: %w", err)
	}
	var g Grid
	if decodable {
		if err := json.Unmarshal(data, &g); err != nil {
			var te *json.UnmarshalTypeError
			if errors.As(err, &te) && te.Field != "" {
				v.Addf(te.Field, nil, "cannot decode JSON %s into %s", te.Value, te.Type)
			} else if v.Err() == nil {
				return Grid{}, fmt.Errorf("sweep: parse grid: %w", err)
			}
		} else if verr := g.Validate(); verr != nil {
			var ve *dramlat.ValidationError
			if errors.As(verr, &ve) {
				v.Fields = append(v.Fields, ve.Fields...)
			} else if v.Err() == nil {
				return Grid{}, verr
			}
		}
	}
	if err := v.Err(); err != nil {
		return Grid{}, err
	}
	return g, nil
}

// checkGridKeys token-walks the top-level object, recording unknown and
// duplicate axis keys into v. Out-of-range numbers (1e999) surface from
// the tokenizer as *json.UnmarshalTypeError; those are recorded against
// the axis being walked and stop the walk with decodable=false, since
// json.Unmarshal would only repeat the same failure. A hard error is
// returned only for JSON that does not parse at all.
func checkGridKeys(data []byte, v *dramlat.ValidationError) (decodable bool, err error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	tok, err := dec.Token()
	if err != nil {
		return false, err
	}
	if d, ok := tok.(json.Delim); !ok || d != '{' {
		return false, fmt.Errorf("grid must be a JSON object, got %v", tok)
	}
	seen := map[string]int{}
	for dec.More() {
		keyTok, err := dec.Token()
		if err != nil {
			return false, err
		}
		key, _ := keyTok.(string)
		seen[key]++
		if seen[key] == 1 && !gridAxes[key] {
			v.Addf(key, nil, "unknown grid axis")
		}
		if seen[key] == 2 {
			v.Addf(key, nil, "duplicate axis key (JSON silently keeps only the last)")
		}
		if err := skipJSONValue(dec); err != nil {
			var te *json.UnmarshalTypeError
			if errors.As(err, &te) {
				v.Addf(key, nil, "cannot decode JSON %s into %s", te.Value, te.Type)
				return false, nil
			}
			return false, err
		}
	}
	_, err = dec.Token() // consume the closing '}'
	return err == nil, err
}

// skipJSONValue consumes one complete JSON value from dec.
func skipJSONValue(dec *json.Decoder) error {
	tok, err := dec.Token()
	if err != nil {
		return err
	}
	d, ok := tok.(json.Delim)
	if !ok || (d != '{' && d != '[') {
		return nil
	}
	for dec.More() {
		if d == '{' {
			if _, err := dec.Token(); err != nil { // key
				return err
			}
		}
		if err := skipJSONValue(dec); err != nil {
			return err
		}
	}
	_, err = dec.Token() // closing delim
	return err
}
