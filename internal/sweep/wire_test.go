package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"dramlat"
	"dramlat/internal/guard"
)

// wireSpec is a spec whose zero-valued knobs survive a JSON round trip
// unchanged (hash-excluded fields are all zero).
func wireSpec() dramlat.RunSpec {
	return dramlat.RunSpec{Benchmark: "bfs", Scheduler: "wg-w", Seed: 3,
		Scale: 0.25, SMs: 4, WarpsPerSM: 8}
}

func wireResults() dramlat.Results {
	return dramlat.Results{Scheduler: "wg-w", Workload: "bfs",
		Ticks: 1234, Instr: 5678, IPC: 1.5, Drained: true,
		Utilization: 0.42, RowHitRate: 0.6, L2HitRate: 0.3, L1HitRate: 0.2,
		GapP50: 10, GapP90: 90, GapP99: 99, WriteFrac: 0.1}
}

// outcomeFixtures builds one Outcome per OutcomeKind. Failure payload
// values that the wire flattens to strings (panic values, FieldError
// values) are strings already, so the fixtures round-trip deep-equal.
func outcomeFixtures() map[OutcomeKind]Outcome {
	spec := wireSpec()
	h := spec.Hash()
	res := wireResults()
	stall := &dramlat.StallError{
		Kind: dramlat.StallNoProgress, Cycle: 5000, Budget: 1000,
		Dump: dramlat.StallDump{
			Cycle: 5000,
			SMs: []guard.SMState{
				{ID: 1, LiveWarps: 3, Blocked: 2, ReplayQueue: 1, NextWakeup: 6000},
			},
			Channels: []guard.ChannelState{
				{Channel: 0, ReadQ: 4, SchedPending: 2, NextWakeup: 5100,
					Banks: []guard.BankState{{Bank: 2, QueuedTxns: 3, OpenRow: 17, SchedRow: 17}}},
			},
			XbarReqWake:  77,
			XbarRespWake: 88,
		},
	}
	return map[OutcomeKind]Outcome{
		KindOK:     {Spec: spec, Hash: h, Results: res, Elapsed: 250 * time.Millisecond},
		KindCached: {Spec: spec, Hash: h, Results: res, Cached: true},
		KindCanceled: {Spec: spec, Hash: h,
			Err: context.Canceled},
		KindInvalid: {Spec: spec, Hash: h,
			Err: &dramlat.ValidationError{Fields: []dramlat.FieldError{
				{Field: "Benchmark", Value: "nope", Msg: "unknown benchmark"},
				{Field: "Scale", Value: "-1", Msg: "must be a finite value >= 0"},
			}}},
		KindStalled: {Spec: spec, Hash: h, Results: res, Err: stall,
			Elapsed: time.Second},
		KindCrashed: {Spec: spec, Hash: h,
			Err: &dramlat.RunError{SpecHash: h, Phase: "run", Cycle: 42,
				Panic: "invariant violated: bank 3 issued RD on closed row",
				Stack: "goroutine 1 [running]:\nmain.main()"}},
		KindQuarantined: {Spec: spec, Hash: h,
			Err: &dramlat.QuarantineError{SpecHash: h, Attempts: 3,
				LastWorker: "worker-b"}},
		KindFailed: {Spec: spec, Hash: h, Err: errors.New("disk full")},
	}
}

// TestOutcomeJSONRoundTrip pins the service wire format: every
// OutcomeKind marshals, unmarshals back deep-equal (including the typed
// *StallError / *RunError / *ValidationError payloads), and re-marshals
// to identical bytes.
func TestOutcomeJSONRoundTrip(t *testing.T) {
	fixtures := outcomeFixtures()
	if len(fixtures) != len(Kinds()) {
		t.Fatalf("fixtures cover %d kinds, Kinds() lists %d", len(fixtures), len(Kinds()))
	}
	for kind, o := range fixtures {
		if got := o.Kind(); got != kind {
			t.Fatalf("fixture for %q classifies as %q", kind, got)
		}
		b, err := json.Marshal(o)
		if err != nil {
			t.Fatalf("%s: marshal: %v", kind, err)
		}
		var back Outcome
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("%s: unmarshal: %v\n%s", kind, err, b)
		}
		if !reflect.DeepEqual(o, back) {
			t.Errorf("%s: round trip not deep-equal:\n orig %#v\n back %#v", kind, o, back)
		}
		b2, err := json.Marshal(back)
		if err != nil {
			t.Fatalf("%s: re-marshal: %v", kind, err)
		}
		if !bytes.Equal(b, b2) {
			t.Errorf("%s: re-marshal bytes differ:\n%s\n%s", kind, b, b2)
		}
		if back.Kind() != kind {
			t.Errorf("%s: kind after round trip %q", kind, back.Kind())
		}
	}
}

// TestOutcomeRoundTripTypedErrors: the revived errors answer errors.As
// with payloads equal to the originals, message preserved, even when the
// engine wrapped them in run context.
func TestOutcomeRoundTripTypedErrors(t *testing.T) {
	spec := wireSpec()
	stall := &dramlat.StallError{Kind: dramlat.StallDeadline, Cycle: 9000,
		Dump: dramlat.StallDump{Cycle: 9000, XbarReqWake: 1, XbarRespWake: 2}}
	wrapped := fmt.Errorf("dramlat: bfs/wg-w: %w", stall)
	o := Outcome{Spec: spec, Hash: spec.Hash(), Err: wrapped}

	b, err := json.Marshal(o)
	if err != nil {
		t.Fatal(err)
	}
	var back Outcome
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Err.Error() != wrapped.Error() {
		t.Errorf("message lost: %q vs %q", back.Err.Error(), wrapped.Error())
	}
	var se *dramlat.StallError
	if !errors.As(back.Err, &se) {
		t.Fatalf("revived error %T is not errors.As-able to *StallError", back.Err)
	}
	if !reflect.DeepEqual(se, stall) {
		t.Errorf("stall payload drifted:\n orig %+v\n back %+v", stall, se)
	}

	// A wrapped context cancellation keeps answering errors.Is.
	o = Outcome{Spec: spec, Hash: spec.Hash(),
		Err: fmt.Errorf("sweep: %w", context.Canceled)}
	b, _ = json.Marshal(o)
	var back2 Outcome
	if err := json.Unmarshal(b, &back2); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(back2.Err, context.Canceled) {
		t.Errorf("revived cancel %v is not errors.Is(context.Canceled)", back2.Err)
	}
	if back2.Kind() != KindCanceled {
		t.Errorf("kind %q", back2.Kind())
	}
}

// TestOutcomeWireNormalizesPanics: non-string panic values and
// FieldError values flatten to their fmt.Sprint form once, then stay
// stable (marshal∘unmarshal is idempotent after the first pass).
func TestOutcomeWireNormalizesPanics(t *testing.T) {
	spec := wireSpec()
	o := Outcome{Spec: spec, Hash: spec.Hash(),
		Err: &dramlat.RunError{SpecHash: spec.Hash(), Phase: "run", Cycle: 7,
			Panic: dramlat.InvariantViolation{Msg: "queue overflow"}}}
	b, err := json.Marshal(o)
	if err != nil {
		t.Fatal(err)
	}
	var back Outcome
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	var re *dramlat.RunError
	if !errors.As(back.Err, &re) {
		t.Fatalf("revived %T", back.Err)
	}
	want := fmt.Sprint(dramlat.InvariantViolation{Msg: "queue overflow"})
	if re.Panic != want {
		t.Errorf("panic flattened to %q, want %q", re.Panic, want)
	}
	// Second trip is lossless.
	b2, _ := json.Marshal(back)
	var back2 Outcome
	if err := json.Unmarshal(b2, &back2); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, back2) {
		t.Error("second round trip drifted")
	}
}

// TestRecordJSONRoundTrip pins the flattened row format the streaming
// endpoints reuse.
func TestRecordJSONRoundTrip(t *testing.T) {
	o := Outcome{Spec: wireSpec(), Hash: wireSpec().Hash(),
		Results: wireResults(), Elapsed: time.Second}
	rec := RecordOf(o)
	b, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	var back Record
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rec, back) {
		t.Errorf("record round trip:\n orig %+v\n back %+v", rec, back)
	}
	// Failures surface in the record's error column.
	bad := Outcome{Spec: wireSpec(), Err: errors.New("boom")}
	if r := RecordOf(bad); r.Error != "boom" {
		t.Errorf("record error column %q", r.Error)
	}
}
