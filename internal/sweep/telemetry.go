package sweep

import (
	"fmt"
	"os"
	"path/filepath"

	"dramlat"
	"dramlat/internal/telemetry"
)

// telemetryRunner executes one spec with telemetry enabled and writes
// the artifacts before returning, so a sweep's traces are complete as
// soon as the Progress event for the spec fires. A spec carrying its
// own Telemetry options (a per-job sweepd request) keeps them; specs
// without fall back to the engine-level options.
func (e *Engine) telemetryRunner(spec dramlat.RunSpec) (dramlat.Results, error) {
	if spec.IsSampled() {
		// A sampled run's fast-forward regions are modeled, not
		// simulated: most of the trace simply does not exist, and a
		// partial artifact indistinguishable from a full one would
		// poison downstream analysis. Fail the spec with a typed field
		// error instead (dlsweep/dlserve reject the combination up
		// front; this guards per-spec telemetry arriving over the wire).
		return dramlat.Results{}, &dramlat.ValidationError{Fields: []dramlat.FieldError{{
			Field: "Telemetry", Value: "sampled",
			Msg: "telemetry capture is not available for sampled runs: fast-forward regions are modeled and have no events to record",
		}}}
	}
	if !spec.Telemetry.Enabled() {
		spec.Telemetry = e.Telemetry
	}
	res, tel, err := dramlat.RunTelemetry(spec)
	if tel != nil {
		// A MaxTicks run still has a (partial) trace worth keeping.
		if werr := WriteArtifacts(e.TelemetryDir, spec.Hash(), tel); werr != nil && err == nil {
			err = werr
		}
	}
	return res, err
}

// WriteArtifacts writes one run's telemetry bundle into dir, one file per
// enabled subsystem, named by the run's spec hash:
//
//	<hash>.events.jsonl   event trace (tracer enabled)
//	<hash>.channels.csv   per-channel interval table (sampler enabled)
//	<hash>.sms.csv        per-SM stall interval table (sampler enabled)
//
// Returned paths are the files actually written.
func WriteArtifacts(dir, hash string, tel *dramlat.Telemetry) error {
	if tel == nil {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("sweep: telemetry dir: %w", err)
	}
	write := func(name string, emit func(f *os.File) error) error {
		f, err := os.Create(filepath.Join(dir, hash+name))
		if err != nil {
			return err
		}
		if err := emit(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if tel.Tracer != nil {
		err := write(".events.jsonl", func(f *os.File) error {
			return telemetry.WriteJSONL(f, tel.Tracer.Events())
		})
		if err != nil {
			return fmt.Errorf("sweep: events: %w", err)
		}
	}
	if tel.Sampler != nil {
		err := write(".channels.csv", func(f *os.File) error {
			return telemetry.WriteChannelCSV(f, tel.Sampler.ChannelIntervals())
		})
		if err != nil {
			return fmt.Errorf("sweep: channel intervals: %w", err)
		}
		err = write(".sms.csv", func(f *os.File) error {
			return telemetry.WriteSMCSV(f, tel.Sampler.SMIntervals())
		})
		if err != nil {
			return fmt.Errorf("sweep: sm intervals: %w", err)
		}
	}
	return nil
}
