package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"dramlat"
)

// Outcome is the result of one spec in a sweep.
type Outcome struct {
	Spec    dramlat.RunSpec
	Hash    string
	Results dramlat.Results
	Err     error
	Cached  bool          // served from the persistent cache
	Elapsed time.Duration // zero for cached outcomes
}

// Event is one progress notification; Done counts both cached and
// executed specs. Events are delivered serially from the engine.
type Event struct {
	Done, Total      int
	Executed, Cached int
	Failed           int
	Outcome          Outcome
	ETA              time.Duration // crude: mean executed cost × remaining
}

// Engine runs specs concurrently. The zero Engine is usable: GOMAXPROCS
// workers, no cache, dramlat.Run as the runner, no progress reporting.
type Engine struct {
	// Workers caps concurrent simulations; <=0 means GOMAXPROCS.
	Workers int
	// Cache, when non-nil, is consulted before running and updated
	// after every successful run.
	Cache *Cache
	// Runner executes one spec; nil means dramlat.Run. Tests and
	// tools can substitute stubs or instrumented runners.
	Runner func(dramlat.RunSpec) (dramlat.Results, error)
	// Progress, when non-nil, receives one Event per finished spec,
	// never concurrently.
	Progress func(Event)
	// Telemetry, when it enables a subsystem and TelemetryDir is set,
	// applies to every spec the engine actually executes; each run's
	// artifacts (events JSONL, interval CSVs) land in TelemetryDir named
	// by the spec's canonical hash. Cache hits have no live run to trace,
	// so resumed sweeps only emit artifacts for freshly executed specs.
	// A spec whose own RunSpec.Telemetry enables a subsystem is captured
	// even when the engine-level options are off — that is how sweepd
	// honors per-job telemetry requests. Ignored when a custom Runner is
	// installed.
	Telemetry    dramlat.TelemetryOptions
	TelemetryDir string
	// Mutate, when non-nil, rewrites each spec immediately before
	// execution (after the cache lookup), for server-side execution
	// details like engine selection. It must only touch hash-excluded
	// fields (Engine, Shards, ...): the cache entry is keyed and stored
	// from the unmutated spec.
	Mutate func(*dramlat.RunSpec)
	// RunTimeout, when positive, gives every executed spec a wall-clock
	// deadline (spec.Deadline = now + RunTimeout, unless the spec already
	// carries one). A run that exceeds it aborts with a
	// *dramlat.StallError outcome — aggregated like any other failure,
	// never cached, so the next sweep retries it.
	RunTimeout time.Duration
}

// Report aggregates a finished sweep.
type Report struct {
	Outcomes []Outcome // one per input spec, in input order
	Executed int       // specs actually simulated
	Cached   int       // specs served from the cache
	Failed   int       // specs whose runner returned an error
	Elapsed  time.Duration
}

// Err joins every failure into one error, or returns nil if all specs
// succeeded.
func (r *Report) Err() error {
	var errs []error
	for _, o := range r.Outcomes {
		if o.Err != nil {
			errs = append(errs, fmt.Errorf("%s/%s seed %d: %w",
				o.Spec.Benchmark, o.Spec.Scheduler, o.Spec.Seed, o.Err))
		}
	}
	return errors.Join(errs...)
}

// Failures returns the failed outcomes.
func (r *Report) Failures() []Outcome {
	var out []Outcome
	for _, o := range r.Outcomes {
		if o.Err != nil {
			out = append(out, o)
		}
	}
	return out
}

func (e *Engine) workers() int {
	if e.Workers > 0 {
		return e.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// runnerFor picks the execution path for one spec: a custom Runner wins
// outright; otherwise the telemetry runner handles any spec that wants
// artifacts (engine-level options or the spec's own), and plain
// dramlat.Run covers the rest.
func (e *Engine) runnerFor(spec dramlat.RunSpec) func(dramlat.RunSpec) (dramlat.Results, error) {
	if e.Runner != nil {
		return e.Runner
	}
	if e.TelemetryDir != "" && (e.Telemetry.Enabled() || spec.Telemetry.Enabled()) {
		return e.telemetryRunner
	}
	return dramlat.Run
}

// prepare arms one spec for execution under ctx: in-flight simulations
// observe cancellation through their Stop channel (at watchdog cadence,
// so a Ctrl-C drains in milliseconds of sim work, not whole runs), and
// RunTimeout becomes a per-run wall-clock deadline. The returned copy
// hashes identically to the input — Stop and Deadline are hash-excluded
// — so cache keys are unaffected.
func (e *Engine) prepare(ctx context.Context, spec dramlat.RunSpec) dramlat.RunSpec {
	if spec.Stop == nil {
		spec.Stop = ctx.Done()
	}
	if e.RunTimeout > 0 && spec.Deadline.IsZero() {
		spec.Deadline = time.Now().Add(e.RunTimeout)
	}
	if e.Mutate != nil {
		e.Mutate(&spec)
	}
	return spec
}

// Run executes every spec and returns the aggregated report. One failed
// spec never aborts the sweep — it is recorded and the rest continue.
// Specs with equal content hashes are executed once and share the result,
// and results are byte-identical to serial execution regardless of the
// worker count (each simulation is self-contained and seeded).
func (e *Engine) Run(specs []dramlat.RunSpec) *Report {
	return e.RunContext(context.Background(), specs)
}

// RunContext is Run under a context: cancelling ctx stops accepting new
// work, aborts in-flight simulations at their next watchdog check, and
// still returns the full report — completed outcomes keep their results
// (already persisted to the cache), unstarted and aborted specs carry
// ctx.Err()-flavored failures. A cancelled sweep is therefore resumable:
// re-running it serves the finished prefix from the cache.
func (e *Engine) RunContext(ctx context.Context, specs []dramlat.RunSpec) *Report {
	start := time.Now()
	rep := &Report{Outcomes: make([]Outcome, len(specs))}
	if len(specs) == 0 {
		return rep
	}

	// Deduplicate by canonical hash: the first index with a given hash
	// becomes the "leader" that actually runs.
	leaders := make([]int, 0, len(specs))
	followers := map[int][]int{} // leader index -> duplicate indices
	byHash := map[string]int{}
	for i, s := range specs {
		h := s.Hash()
		rep.Outcomes[i].Spec = s
		rep.Outcomes[i].Hash = h
		if j, ok := byHash[h]; ok {
			followers[j] = append(followers[j], i)
			continue
		}
		byHash[h] = i
		leaders = append(leaders, i)
	}

	jobs := make(chan int)
	var wg sync.WaitGroup

	// mu guards the progress counters and serializes Progress calls.
	var mu sync.Mutex
	done, executed, cached, failed := 0, 0, 0, 0
	var execTime time.Duration

	finish := func(i int, o Outcome) {
		mu.Lock()
		defer mu.Unlock()
		rep.Outcomes[i].Results = o.Results
		rep.Outcomes[i].Err = o.Err
		rep.Outcomes[i].Cached = o.Cached
		rep.Outcomes[i].Elapsed = o.Elapsed
		dups := followers[i]
		for _, j := range dups {
			rep.Outcomes[j].Results = o.Results
			rep.Outcomes[j].Err = o.Err
			// Duplicates of a successful leader are effectively
			// cache hits served by the leader's run.
			rep.Outcomes[j].Cached = o.Err == nil
		}
		n := 1 + len(dups)
		done += n
		if o.Err != nil {
			failed += n
		}
		if o.Cached {
			cached += n
		} else {
			executed++
			execTime += o.Elapsed
			if o.Err == nil {
				cached += n - 1
			}
		}
		observeOutcome(rep.Outcomes[i].Spec, o.Err, o.Cached, o.Elapsed, len(dups))
		if e.Progress != nil {
			// Crude ETA: mean executed cost times remaining specs,
			// divided across the pool. Cached specs skew it low,
			// which is the right direction for a resumed sweep.
			var eta time.Duration
			if executed > 0 {
				perSpec := execTime / time.Duration(executed)
				eta = perSpec * time.Duration(len(specs)-done) / time.Duration(e.workers())
			}
			e.Progress(Event{
				Done: done, Total: len(specs),
				Executed: executed, Cached: cached, Failed: failed,
				Outcome: rep.Outcomes[i], ETA: eta,
			})
		}
	}

	for w := 0; w < e.workers(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				// Fast-fail once cancelled: drain the queue without
				// touching cache or simulator so the sweep unwinds
				// promptly and every spec still gets an outcome.
				if err := ctx.Err(); err != nil {
					finish(i, Outcome{Err: err})
					continue
				}
				spec := rep.Outcomes[i].Spec
				if res, ok := e.Cache.Get(spec); ok {
					finish(i, Outcome{Results: res, Cached: true})
					continue
				}
				t0 := time.Now()
				res, err := e.runnerFor(spec)(e.prepare(ctx, spec))
				o := Outcome{Results: res, Err: err, Elapsed: time.Since(t0)}
				if err == nil {
					if cerr := e.Cache.Put(spec, res); cerr != nil {
						o.Err = cerr
					}
				}
				finish(i, o)
			}
		}()
	}
	for _, i := range leaders {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	rep.Executed, rep.Cached, rep.Failed = executed, cached, failed
	rep.Elapsed = time.Since(start)
	return rep
}

// RunOne executes a single spec through the cache, for callers that
// interleave ad-hoc runs with grid sweeps (e.g. cmd/dlbench table code).
func (e *Engine) RunOne(spec dramlat.RunSpec) Outcome {
	return e.RunOneContext(context.Background(), spec)
}

// RunOneContext is RunOne under a context, with the same cancellation
// and timeout semantics as RunContext.
func (e *Engine) RunOneContext(ctx context.Context, spec dramlat.RunSpec) Outcome {
	o := Outcome{Spec: spec, Hash: spec.Hash()}
	if err := ctx.Err(); err != nil {
		o.Err = err
		return o
	}
	if res, ok := e.Cache.Get(spec); ok {
		o.Results, o.Cached = res, true
		observeOutcome(spec, nil, true, 0, 0)
		return o
	}
	t0 := time.Now()
	res, err := e.runnerFor(spec)(e.prepare(ctx, spec))
	o.Results, o.Err, o.Elapsed = res, err, time.Since(t0)
	if err == nil {
		if cerr := e.Cache.Put(spec, res); cerr != nil {
			o.Err = cerr
		}
	}
	observeOutcome(spec, o.Err, false, o.Elapsed, 0)
	return o
}
