package sweep

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// Record is one flattened sweep row: the canonical spec dimensions plus
// the headline metrics, shaped for JSON/CSV consumers (plotting scripts,
// regression dashboards) that should not need to understand RunSpec or
// Results internals.
type Record struct {
	Benchmark         string  `json:"benchmark"`
	Scheduler         string  `json:"scheduler"`
	Seed              int64   `json:"seed"`
	Scale             float64 `json:"scale"`
	SMs               int     `json:"sms"`
	WarpsPerSM        int     `json:"warps_per_sm"`
	ReadQ             int     `json:"read_q"`
	CmdQueueCap       int     `json:"cmd_queue_cap"`
	SBWASAlpha        float64 `json:"sbwas_alpha"`
	Ablation          string  `json:"ablation,omitempty"`
	WarpSched         string  `json:"warp_sched"`
	PerfectCoalescing bool    `json:"perfect_coalescing"`
	ZeroDivergence    bool    `json:"zero_divergence"`

	Hash   string `json:"hash"`
	Cached bool   `json:"cached"`
	Error  string `json:"error,omitempty"`

	// Approximate marks sampled-engine rows; the *_err columns are the
	// run's window-to-window 95% confidence half-widths (zero for exact
	// rows), so a plotting script can draw error bars without parsing
	// Results.Sampling.
	Approximate     bool    `json:"approximate,omitempty"`
	SamplingWindows int     `json:"sampling_windows,omitempty"`
	IPCErr          float64 `json:"ipc_err,omitempty"`
	GapP99Err       float64 `json:"gap_p99_err,omitempty"`

	Ticks            int64   `json:"ticks"`
	Instr            int64   `json:"instr"`
	IPC              float64 `json:"ipc"`
	Utilization      float64 `json:"utilization"`
	RowHitRate       float64 `json:"row_hit_rate"`
	L1HitRate        float64 `json:"l1_hit_rate"`
	L2HitRate        float64 `json:"l2_hit_rate"`
	EffectiveLatency float64 `json:"effective_latency"`
	DivergenceGap    float64 `json:"divergence_gap"`
	LastOverFirst    float64 `json:"last_over_first"`
	MultiReqFrac     float64 `json:"multi_req_frac"`
	ReqsPerLoad      float64 `json:"reqs_per_load"`
	AvgMCsTouched    float64 `json:"avg_mcs_touched"`
	SMIdleFrac       float64 `json:"sm_idle_frac"`
	WriteFrac        float64 `json:"write_frac"`
}

// RecordOf flattens one outcome.
func RecordOf(o Outcome) Record {
	c := o.Spec.Canonical()
	rec := Record{
		Benchmark: c.Benchmark, Scheduler: c.Scheduler,
		Seed: c.Seed, Scale: c.Scale,
		SMs: c.SMs, WarpsPerSM: c.WarpsPerSM,
		ReadQ: c.ReadQ, CmdQueueCap: c.CmdQueueCap,
		SBWASAlpha: c.SBWASAlpha, Ablation: c.Ablation, WarpSched: c.WarpSched,
		PerfectCoalescing: c.PerfectCoalescing, ZeroDivergence: c.ZeroDivergence,
		Hash: o.Hash, Cached: o.Cached,
	}
	if rec.Hash == "" {
		rec.Hash = o.Spec.Hash()
	}
	if o.Err != nil {
		rec.Error = o.Err.Error()
	}
	r := o.Results
	s := r.Summary
	rec.Ticks, rec.Instr, rec.IPC = r.Ticks, r.Instr, r.IPC
	rec.Utilization, rec.RowHitRate = r.Utilization, r.RowHitRate
	rec.L1HitRate, rec.L2HitRate = r.L1HitRate, r.L2HitRate
	rec.EffectiveLatency, rec.DivergenceGap = s.EffectiveLatency, s.DivergenceGap
	rec.LastOverFirst, rec.MultiReqFrac = s.LastOverFirst, s.MultiReqFrac
	rec.ReqsPerLoad, rec.AvgMCsTouched = s.ReqsPerLoad, s.AvgMCsTouched
	rec.SMIdleFrac, rec.WriteFrac = r.SMIdleFrac, r.WriteFrac
	rec.Approximate = r.Approximate
	if r.Sampling != nil {
		rec.SamplingWindows = r.Sampling.Windows
		rec.IPCErr = r.Sampling.IPCErr
		rec.GapP99Err = r.Sampling.GapP99Err
	}
	return rec
}

// Records flattens every outcome of the report, in input order.
func (r *Report) Records() []Record {
	out := make([]Record, len(r.Outcomes))
	for i, o := range r.Outcomes {
		out[i] = RecordOf(o)
	}
	return out
}

// jsonReport is the exported JSON envelope.
type jsonReport struct {
	Total     int      `json:"total"`
	Executed  int      `json:"executed"`
	Cached    int      `json:"cached"`
	Failed    int      `json:"failed"`
	ElapsedMS int64    `json:"elapsed_ms"`
	Runs      []Record `json:"runs"`
}

// WriteJSON emits the report as indented JSON: summary counters plus one
// record per spec.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jsonReport{
		Total: len(r.Outcomes), Executed: r.Executed,
		Cached: r.Cached, Failed: r.Failed,
		ElapsedMS: r.Elapsed.Milliseconds(),
		Runs:      r.Records(),
	})
}

// csvHeader lists the CSV columns, matching Record field order.
var csvHeader = []string{
	"benchmark", "scheduler", "seed", "scale", "sms", "warps_per_sm",
	"read_q", "cmd_queue_cap", "sbwas_alpha", "ablation", "warp_sched",
	"perfect_coalescing", "zero_divergence", "hash", "cached", "error",
	"ticks", "instr", "ipc", "utilization", "row_hit_rate",
	"l1_hit_rate", "l2_hit_rate", "effective_latency", "divergence_gap",
	"last_over_first", "multi_req_frac", "reqs_per_load",
	"avg_mcs_touched", "sm_idle_frac", "write_frac",
	"approximate", "sampling_windows", "ipc_err", "gap_p99_err",
}

// WriteCSV emits one row per spec with a header line.
func (r *Report) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, rec := range r.Records() {
		row := []string{
			rec.Benchmark, rec.Scheduler,
			strconv.FormatInt(rec.Seed, 10), f(rec.Scale),
			strconv.Itoa(rec.SMs), strconv.Itoa(rec.WarpsPerSM),
			strconv.Itoa(rec.ReadQ), strconv.Itoa(rec.CmdQueueCap),
			f(rec.SBWASAlpha), rec.Ablation, rec.WarpSched,
			strconv.FormatBool(rec.PerfectCoalescing),
			strconv.FormatBool(rec.ZeroDivergence),
			rec.Hash, strconv.FormatBool(rec.Cached), rec.Error,
			strconv.FormatInt(rec.Ticks, 10), strconv.FormatInt(rec.Instr, 10),
			f(rec.IPC), f(rec.Utilization), f(rec.RowHitRate),
			f(rec.L1HitRate), f(rec.L2HitRate), f(rec.EffectiveLatency),
			f(rec.DivergenceGap), f(rec.LastOverFirst), f(rec.MultiReqFrac),
			f(rec.ReqsPerLoad), f(rec.AvgMCsTouched), f(rec.SMIdleFrac),
			f(rec.WriteFrac),
			strconv.FormatBool(rec.Approximate),
			strconv.Itoa(rec.SamplingWindows),
			f(rec.IPCErr), f(rec.GapP99Err),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Summary returns a one-line human digest ("12 specs: 8 executed, 4
// cached, 0 failed in 1.2s") for progress footers.
func (r *Report) Summary() string {
	return fmt.Sprintf("%d specs: %d executed, %d cached, %d failed in %v",
		len(r.Outcomes), r.Executed, r.Cached, r.Failed, r.Elapsed.Round(10_000_000))
}
