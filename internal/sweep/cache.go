package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"dramlat"
)

// Cache is a persistent on-disk result store keyed by the content hash of
// the canonicalized spec. Layout: one JSON file per result at
// <dir>/<hash[:2]>/<hash>.json holding {spec, results}, written atomically
// (temp file + rename) so an interrupted sweep never leaves a torn entry
// and a re-run resumes from whatever completed. A nil *Cache is a valid
// disabled cache.
//
// The cache is safe for concurrent use from many goroutines (and, for
// Get, many processes): temp-file names are unique, renames are atomic,
// and same-hash writers are serialized through a striped lock so two
// workers finishing the same spec at once cannot interleave their
// temp-write/rename sequences.
type Cache struct {
	dir string
	// putLocks stripes the per-hash Put serialization. 64 stripes keeps
	// unrelated hashes effectively uncontended while making same-hash
	// writers strictly sequential.
	putLocks [64]sync.Mutex
}

// putLock returns the stripe lock for a hash.
func (c *Cache) putLock(hash string) *sync.Mutex {
	h := fnv.New32a()
	h.Write([]byte(hash))
	return &c.putLocks[h.Sum32()%uint32(len(c.putLocks))]
}

// OpenCache creates dir if needed and returns the cache rooted there.
func OpenCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sweep: open cache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache root ("" for a disabled cache).
func (c *Cache) Dir() string {
	if c == nil {
		return ""
	}
	return c.dir
}

// entry is the on-disk record: the canonical spec rides along with the
// results so cache files are self-describing and auditable, and a
// checksum over both detects torn or bit-rotted files.
type entry struct {
	Spec    dramlat.RunSpec `json:"spec"`
	Results dramlat.Results `json:"results"`
	// Checksum is hex SHA-256 over the compact JSON of {spec, results}.
	Checksum string `json:"checksum"`
}

// checksum computes the entry's content digest. Compact (non-indented)
// marshalling makes the digest independent of the pretty-printing the
// file itself uses.
func checksum(spec dramlat.RunSpec, res dramlat.Results) string {
	payload, err := json.Marshal(entry{Spec: spec, Results: res})
	if err != nil {
		// Both structs are plain data; Marshal cannot fail.
		panic(fmt.Sprintf("sweep: checksum marshal: %v", err))
	}
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:])
}

func (c *Cache) path(hash string) string {
	return filepath.Join(c.dir, hash[:2], hash+".json")
}

// Get returns the cached results for a spec, if present and verified:
// an entry that fails to parse or whose checksum does not match its
// content (torn write survived a crash, disk corruption, hand-edited
// file, or a pre-checksum legacy entry) is quarantined — renamed to
// <path>.corrupt for post-mortem — and reported as a miss, so the sweep
// transparently re-runs and re-caches the spec.
func (c *Cache) Get(spec dramlat.RunSpec) (dramlat.Results, bool) {
	_, res, ok := c.Entry(spec.Hash())
	return res, ok
}

// Entry returns the stored spec and results for a content hash, with
// the same verify-and-quarantine semantics as Get. It is the lookup
// behind "fetch result by spec hash" service endpoints, so the hash is
// validated strictly (64 lowercase hex chars) before it touches a path.
func (c *Cache) Entry(hash string) (dramlat.RunSpec, dramlat.Results, bool) {
	if c == nil || !ValidHash(hash) {
		return dramlat.RunSpec{}, dramlat.Results{}, false
	}
	path := c.path(hash)
	b, err := os.ReadFile(path)
	if err != nil {
		mCacheMisses.Inc()
		return dramlat.RunSpec{}, dramlat.Results{}, false
	}
	var e entry
	if err := json.Unmarshal(b, &e); err != nil {
		c.quarantine(path)
		mCacheMisses.Inc()
		return dramlat.RunSpec{}, dramlat.Results{}, false
	}
	if e.Checksum != checksum(e.Spec, e.Results) {
		c.quarantine(path)
		mCacheMisses.Inc()
		return dramlat.RunSpec{}, dramlat.Results{}, false
	}
	mCacheHits.Inc()
	return e.Spec, e.Results, true
}

// ValidHash reports whether s looks like a RunSpec.Hash (hex SHA-256).
// Service endpoints use it to fence path-building on untrusted hashes.
func ValidHash(s string) bool {
	if len(s) != 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// quarantine moves a bad entry aside (best-effort; removed on rename
// failure) so it stops shadowing the slot but stays inspectable.
func (c *Cache) quarantine(path string) {
	mCacheQuarantined.Inc()
	if err := os.Rename(path, path+".corrupt"); err != nil {
		os.Remove(path)
	}
}

// Put stores a result. Failed runs are never stored, so a crash or
// MaxTicks abort is retried on the next sweep. Same-hash writers are
// serialized (see Cache doc), so concurrent workers that resolved the
// same spec — deduplicated jobs, overlapping sweeps — land exactly one
// whole entry instead of racing the rename.
func (c *Cache) Put(spec dramlat.RunSpec, res dramlat.Results) error {
	if c == nil {
		return nil
	}
	hash := spec.Hash()
	mu := c.putLock(hash)
	mu.Lock()
	defer mu.Unlock()
	canon := spec.Canonical()
	b, err := json.MarshalIndent(entry{Spec: canon, Results: res, Checksum: checksum(canon, res)}, "", " ")
	if err != nil {
		return fmt.Errorf("sweep: encode cache entry: %w", err)
	}
	path := c.path(hash)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("sweep: cache shard: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), hash+".tmp*")
	if err != nil {
		return fmt.Errorf("sweep: cache temp: %w", err)
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("sweep: cache write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("sweep: cache close: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("sweep: cache rename: %w", err)
	}
	mCachePuts.Inc()
	return nil
}

// Len counts the stored entries (walks the shard directories).
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	filepath.WalkDir(c.dir, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.HasSuffix(path, ".json") {
			n++
		}
		return nil
	})
	return n
}
