package sweep

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"dramlat"
)

// This file is the sweep stack's wire format: Outcome marshals to JSON
// with its failure preserved as a *typed* payload, so a result that
// crosses a process boundary (the sweepd service, a saved report, a
// log line) round-trips back into the same errors.As-able error the
// engine produced. Record (export.go) is the flattened row view; the
// Outcome wire form below is the lossless one.

// OutcomeKind classifies an Outcome for consumers that should not need
// errors.As: the success states, plus one kind per typed failure the
// façade can produce.
type OutcomeKind string

const (
	// KindOK is a freshly executed, successful run.
	KindOK OutcomeKind = "ok"
	// KindCached is a successful result served from the cache (or from
	// a deduplicated sibling execution).
	KindCached OutcomeKind = "cached"
	// KindCanceled is a spec that never ran (or was aborted) because
	// the sweep's context was canceled.
	KindCanceled OutcomeKind = "canceled"
	// KindInvalid is a spec rejected by validation (*ValidationError).
	KindInvalid OutcomeKind = "invalid"
	// KindStalled is a run aborted by the liveness watchdog
	// (*StallError: no-progress, cycle-budget, deadline or stopped).
	KindStalled OutcomeKind = "stalled"
	// KindCrashed is a panic recovered at the Run boundary (*RunError).
	KindCrashed OutcomeKind = "crashed"
	// KindQuarantined is a poison spec the sweep fleet gave up on after
	// repeated worker deaths (*QuarantineError).
	KindQuarantined OutcomeKind = "quarantined"
	// KindFailed is any other error (I/O, custom runners, ...).
	KindFailed OutcomeKind = "failed"
)

// Kinds lists every OutcomeKind, for table-driven consumers and tests.
func Kinds() []OutcomeKind {
	return []OutcomeKind{KindOK, KindCached, KindCanceled, KindInvalid,
		KindStalled, KindCrashed, KindQuarantined, KindFailed}
}

// Kind classifies the outcome. Context cancellation wins over the typed
// failures so a canceled sweep reads as canceled, not as a generic error.
func (o Outcome) Kind() OutcomeKind {
	if o.Err == nil {
		if o.Cached {
			return KindCached
		}
		return KindOK
	}
	return kindOfErr(o.Err)
}

func kindOfErr(err error) OutcomeKind {
	var ve *dramlat.ValidationError
	var se *dramlat.StallError
	var re *dramlat.RunError
	var qe *dramlat.QuarantineError
	switch {
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		return KindCanceled
	case errors.As(err, &ve):
		return KindInvalid
	case errors.As(err, &se):
		return KindStalled
	case errors.As(err, &re):
		return KindCrashed
	case errors.As(err, &qe):
		return KindQuarantined
	}
	return KindFailed
}

// FieldErrorWire is the wire form of one dramlat.FieldError. Value is
// flattened to its fmt.Sprint form: FieldError.Value is `any`, and JSON
// would silently retype it on the way back (ints become float64s), so
// the wire pins the one representation that survives a round trip.
type FieldErrorWire struct {
	Field string `json:"field"`
	Value string `json:"value,omitempty"`
	Msg   string `json:"msg"`
}

// RunErrorWire is the wire form of a *dramlat.RunError. Panic is
// flattened to its fmt.Sprint form for the same reason as
// FieldErrorWire.Value.
type RunErrorWire struct {
	SpecHash string `json:"spec_hash"`
	Phase    string `json:"phase"`
	Cycle    int64  `json:"cycle"`
	Panic    string `json:"panic"`
	Stack    string `json:"stack,omitempty"`
}

// Failure is the wire form of an Outcome error: the full message plus
// at most one typed payload. Unmarshalling reconstructs the typed error
// (see Err), so errors.As keeps working across a process boundary.
type Failure struct {
	Kind       OutcomeKind              `json:"kind"`
	Message    string                   `json:"message"`
	Invalid    []FieldErrorWire         `json:"invalid,omitempty"`
	Stall      *dramlat.StallError      `json:"stall,omitempty"`
	Crash      *RunErrorWire            `json:"crash,omitempty"`
	Quarantine *dramlat.QuarantineError `json:"quarantine,omitempty"`
}

// failureOf captures err as a Failure.
func failureOf(err error) *Failure {
	f := &Failure{Kind: kindOfErr(err), Message: err.Error()}
	var ve *dramlat.ValidationError
	var se *dramlat.StallError
	var re *dramlat.RunError
	var qe *dramlat.QuarantineError
	switch {
	case errors.As(err, &ve):
		for _, fe := range ve.Fields {
			w := FieldErrorWire{Field: fe.Field, Msg: fe.Msg}
			if fe.Value != nil {
				w.Value = fmt.Sprint(fe.Value)
			}
			f.Invalid = append(f.Invalid, w)
		}
	case errors.As(err, &se):
		f.Stall = se
	case errors.As(err, &re):
		f.Crash = &RunErrorWire{
			SpecHash: re.SpecHash, Phase: re.Phase, Cycle: re.Cycle,
			Panic: fmt.Sprint(re.Panic), Stack: re.Stack,
		}
	case errors.As(err, &qe):
		f.Quarantine = qe
	}
	return f
}

// wireWrap preserves a wrapped error's full message around the
// reconstructed typed cause, so both Error() and errors.As/Is survive
// the round trip.
type wireWrap struct {
	msg   string
	cause error
}

func (w *wireWrap) Error() string { return w.msg }
func (w *wireWrap) Unwrap() error { return w.cause }

// Err reconstructs the failure as a live error. When the typed payload
// was the whole error, the exact type comes back (deep-equal to the
// original); when it was wrapped (e.g. the façade's "dramlat: bench/
// sched:" context), the message is preserved around the typed cause.
func (f *Failure) Err() error {
	var cause error
	switch {
	case len(f.Invalid) > 0:
		ve := &dramlat.ValidationError{}
		for _, w := range f.Invalid {
			var v any
			if w.Value != "" {
				v = w.Value
			}
			ve.Fields = append(ve.Fields, dramlat.FieldError{Field: w.Field, Value: v, Msg: w.Msg})
		}
		cause = ve
	case f.Stall != nil:
		cause = f.Stall
	case f.Crash != nil:
		cause = &dramlat.RunError{
			SpecHash: f.Crash.SpecHash, Phase: f.Crash.Phase,
			Cycle: f.Crash.Cycle, Panic: f.Crash.Panic, Stack: f.Crash.Stack,
		}
	case f.Quarantine != nil:
		cause = f.Quarantine
	case f.Kind == KindCanceled && f.Message == context.Canceled.Error():
		cause = context.Canceled
	case f.Kind == KindCanceled && f.Message == context.DeadlineExceeded.Error():
		cause = context.DeadlineExceeded
	case f.Kind == KindCanceled:
		cause = context.Canceled
	default:
		return errors.New(f.Message)
	}
	if cause.Error() == f.Message {
		return cause
	}
	return &wireWrap{msg: f.Message, cause: cause}
}

// outcomeWire is the JSON shape of an Outcome.
type outcomeWire struct {
	Spec      dramlat.RunSpec `json:"spec"`
	Hash      string          `json:"hash"`
	Kind      OutcomeKind     `json:"kind"`
	Results   dramlat.Results `json:"results"`
	Cached    bool            `json:"cached,omitempty"`
	ElapsedNS int64           `json:"elapsed_ns,omitempty"`
	Failure   *Failure        `json:"failure,omitempty"`
}

// MarshalJSON emits the outcome in its wire form: spec, hash, results
// and (for failures) a typed Failure payload.
func (o Outcome) MarshalJSON() ([]byte, error) {
	w := outcomeWire{
		Spec: o.Spec, Hash: o.Hash, Kind: o.Kind(),
		Results: o.Results, Cached: o.Cached,
		ElapsedNS: o.Elapsed.Nanoseconds(),
	}
	if o.Err != nil {
		w.Failure = failureOf(o.Err)
	}
	return json.Marshal(w)
}

// UnmarshalJSON reconstructs an outcome, reviving typed failures so
// errors.As(*StallError) etc. work on the receiving side.
func (o *Outcome) UnmarshalJSON(b []byte) error {
	var w outcomeWire
	if err := json.Unmarshal(b, &w); err != nil {
		return fmt.Errorf("sweep: decode outcome: %w", err)
	}
	*o = Outcome{
		Spec: w.Spec, Hash: w.Hash, Results: w.Results,
		Cached: w.Cached, Elapsed: time.Duration(w.ElapsedNS),
	}
	if w.Failure != nil {
		o.Err = w.Failure.Err()
	}
	return nil
}
