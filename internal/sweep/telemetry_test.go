package sweep

import (
	"os"
	"path/filepath"
	"testing"

	"dramlat"
	"dramlat/internal/telemetry"
)

func TestSweepTelemetryArtifacts(t *testing.T) {
	dir := t.TempDir()
	spec := dramlat.RunSpec{
		Benchmark: "bfs", Scheduler: "wg-w", Scale: 0.05, SMs: 2, WarpsPerSM: 4,
	}
	eng := &Engine{
		Workers:      1,
		Telemetry:    dramlat.TelemetryOptions{Events: true, SampleEvery: 200},
		TelemetryDir: dir,
	}
	rep := eng.Run([]dramlat.RunSpec{spec})
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	if rep.Executed != 1 {
		t.Fatalf("executed %d, want 1", rep.Executed)
	}

	hash := spec.Hash()
	for _, suffix := range []string{".events.jsonl", ".channels.csv", ".sms.csv"} {
		if _, err := os.Stat(filepath.Join(dir, hash+suffix)); err != nil {
			t.Errorf("missing artifact %s: %v", suffix, err)
		}
	}

	// The emitted trace must parse, validate, and reproduce the run's
	// divergence gap.
	f, err := os.Open(filepath.Join(dir, hash+".events.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	evs, err := telemetry.ReadJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) == 0 {
		t.Fatal("empty event trace")
	}
	telemetry.SortEvents(evs)
	if err := telemetry.Validate(evs); err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
	got := telemetry.Analyze(evs).DivergenceGap()
	want := rep.Outcomes[0].Results.Summary.DivergenceGap
	if diff := got - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("trace gap %.6f != collector gap %.6f", got, want)
	}
}

// TestSweepTelemetryHashSharing pins that telemetry options do not change
// the spec hash: traced and untraced runs must share a result-cache entry.
func TestSweepTelemetryHashSharing(t *testing.T) {
	plain := dramlat.RunSpec{Benchmark: "bfs", Scheduler: "gmc"}
	traced := plain
	traced.Telemetry = dramlat.TelemetryOptions{Events: true, SampleEvery: 100}
	if plain.Hash() != traced.Hash() {
		t.Fatal("telemetry options changed the spec hash")
	}
}

func TestSweepTelemetryCustomRunnerWins(t *testing.T) {
	ran := false
	eng := &Engine{
		Workers: 1,
		Runner: func(s dramlat.RunSpec) (dramlat.Results, error) {
			ran = true
			return dramlat.Results{}, nil
		},
		Telemetry:    dramlat.TelemetryOptions{Events: true},
		TelemetryDir: t.TempDir(),
	}
	rep := eng.Run([]dramlat.RunSpec{{Benchmark: "bfs", Scheduler: "gmc"}})
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("custom runner not used")
	}
}
