package sweep

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"sync/atomic"
	"testing"
	"time"

	"dramlat"
	"dramlat/internal/guard/chaos"
)

// A corrupted cache entry must be detected by the checksum, quarantined
// to <path>.corrupt and reported as a miss — never served as results.
func TestCacheCorruptionQuarantine(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	spec := dramlat.RunSpec{Benchmark: "bfs", Scheduler: "gmc", Scale: 0.05, SMs: 2, WarpsPerSM: 4}
	res := dramlat.Results{Ticks: 123, Instr: 456, IPC: 3.7, Drained: true}
	if err := c.Put(spec, res); err != nil {
		t.Fatal(err)
	}
	path := c.path(spec.Hash())
	if err := chaos.CorruptFile(path, 42); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(spec); ok {
		t.Fatal("corrupt entry served as a hit")
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Fatalf("corrupt entry not quarantined: %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt entry still shadows the slot")
	}
	// The slot is writable again and round-trips.
	if err := c.Put(spec, res); err != nil {
		t.Fatal(err)
	}
	if got, ok := c.Get(spec); !ok || got != res {
		t.Fatalf("re-put after quarantine: ok=%v got=%+v", ok, got)
	}
}

// A legacy entry (pre-checksum format) is quarantined rather than
// trusted: its integrity cannot be verified.
func TestCacheLegacyEntryQuarantine(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	spec := dramlat.RunSpec{Benchmark: "bfs", Scheduler: "gmc", Scale: 0.05, SMs: 2, WarpsPerSM: 4}
	if err := c.Put(spec, dramlat.Results{Ticks: 7}); err != nil {
		t.Fatal(err)
	}
	path := c.path(spec.Hash())
	// Rewrite the file without its checksum field, emulating an entry
	// written by an older build.
	var raw map[string]json.RawMessage
	b, _ := os.ReadFile(path)
	if err := json.Unmarshal(b, &raw); err != nil {
		t.Fatal(err)
	}
	delete(raw, "checksum")
	b, _ = json.Marshal(raw)
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(spec); ok {
		t.Fatal("unverifiable legacy entry served as a hit")
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Fatalf("legacy entry not quarantined: %v", err)
	}
}

// Cancelling a sweep's context fails the remaining specs with ctx.Err()
// while the report still covers every spec — and nothing hangs.
func TestSweepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	release := make(chan struct{})
	runner := func(s dramlat.RunSpec) (dramlat.Results, error) {
		started.Add(1)
		select {
		case <-s.Stop: // wired to ctx.Done() by the engine
			return dramlat.Results{}, context.Canceled
		case <-release:
			return dramlat.Results{Drained: true}, nil
		}
	}
	specs := []dramlat.RunSpec{
		{Benchmark: "a", Seed: 1}, {Benchmark: "b", Seed: 2},
		{Benchmark: "c", Seed: 3}, {Benchmark: "d", Seed: 4},
	}
	go func() {
		for started.Load() == 0 {
			time.Sleep(time.Millisecond)
		}
		cancel()
	}()
	rep := (&Engine{Workers: 2, Runner: runner}).RunContext(ctx, specs)
	if len(rep.Outcomes) != len(specs) {
		t.Fatalf("report covers %d of %d specs", len(rep.Outcomes), len(specs))
	}
	if rep.Failed == 0 {
		t.Fatal("cancelled sweep reports no failures")
	}
	for i, o := range rep.Outcomes {
		if o.Err == nil {
			t.Fatalf("spec %d completed after cancellation", i)
		}
		if !errors.Is(o.Err, context.Canceled) {
			t.Fatalf("spec %d: err %v is not context.Canceled", i, o.Err)
		}
	}
}

// A pre-cancelled context fast-fails every spec without invoking the
// runner or the cache at all.
func TestSweepPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	runner := func(dramlat.RunSpec) (dramlat.Results, error) {
		ran.Add(1)
		return dramlat.Results{}, nil
	}
	specs := []dramlat.RunSpec{{Benchmark: "a"}, {Benchmark: "b"}}
	rep := (&Engine{Workers: 2, Runner: runner}).RunContext(ctx, specs)
	if ran.Load() != 0 {
		t.Fatalf("runner invoked %d times after cancellation", ran.Load())
	}
	if rep.Failed != len(specs) {
		t.Fatalf("failed=%d, want %d", rep.Failed, len(specs))
	}
	o := (&Engine{Runner: runner}).RunOneContext(ctx, specs[0])
	if o.Err == nil || ran.Load() != 0 {
		t.Fatal("RunOneContext ignored the cancelled context")
	}
}

// RunTimeout turns a wedged simulation into a deadline StallError
// outcome: aggregated like a failure, never cached, sweep continues.
func TestSweepRunTimeout(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	hang := dramlat.RunSpec{Benchmark: "bfs", Scheduler: "gmc", Scale: 0.05, SMs: 2, WarpsPerSM: 4,
		StallCycles: -1, // progress watchdog off: only the deadline can end it
		Chaos:       &dramlat.Faults{WakeTarget: chaos.TargetPartition, WakeIndex: 0, WakeAfter: 100}}
	ok := dramlat.RunSpec{Benchmark: "spmv", Scheduler: "gmc", Scale: 0.05, SMs: 2, WarpsPerSM: 4}
	eng := &Engine{Workers: 2, Cache: c, RunTimeout: 50 * time.Millisecond}
	rep := eng.RunContext(context.Background(), []dramlat.RunSpec{hang, ok})
	var stall *dramlat.StallError
	if rep.Outcomes[0].Err == nil || !errors.As(rep.Outcomes[0].Err, &stall) {
		t.Fatalf("hung spec: want *StallError, got %v", rep.Outcomes[0].Err)
	}
	if stall.Kind != dramlat.StallDeadline {
		t.Fatalf("kind = %q", stall.Kind)
	}
	if rep.Outcomes[1].Err != nil {
		t.Fatalf("healthy spec failed: %v", rep.Outcomes[1].Err)
	}
	if rep.Failed != 1 {
		t.Fatalf("failed = %d", rep.Failed)
	}
	// The timed-out run must not have been cached; the healthy one must.
	if _, hit := c.Get(hang); hit {
		t.Fatal("timed-out run was cached")
	}
	if _, hit := c.Get(ok); !hit {
		t.Fatal("healthy run missing from the cache")
	}
}
