package power

import (
	"math"
	"testing"

	"dramlat/internal/dram"
)

func TestZeroElapsed(t *testing.T) {
	b := DefaultGDDR5().Estimate(dram.Stats{ACTs: 100}, 0, 6)
	if b.TotalMW != 0 {
		t.Fatalf("power for zero time: %+v", b)
	}
}

func TestBackgroundScalesWithChannels(t *testing.T) {
	m := DefaultGDDR5()
	b1 := m.Estimate(dram.Stats{}, 1000, 1)
	b6 := m.Estimate(dram.Stats{}, 1000, 6)
	if math.Abs(b6.BackgroundMW-6*b1.BackgroundMW) > 1e-9 {
		t.Fatalf("background %v vs %v", b6.BackgroundMW, b1.BackgroundMW)
	}
}

func TestComponentsAdditive(t *testing.T) {
	m := DefaultGDDR5()
	s := dram.Stats{ACTs: 1e6, RDBursts: 4e6, WRBursts: 1e6}
	b := m.Estimate(s, 10_000_000, 6)
	sum := b.BackgroundMW + b.ActPreMW + b.ReadMW + b.WriteMW
	if math.Abs(sum-b.TotalMW) > 1e-9 {
		t.Fatalf("total %v != sum %v", b.TotalMW, sum)
	}
	if b.ActPreMW <= 0 || b.ReadMW <= 0 || b.WriteMW <= 0 {
		t.Fatalf("non-positive components: %+v", b)
	}
}

// The Section VI-B sensitivity: a 16% relative row-hit-rate drop (more
// ACTs for the same data moved) must cost only a few percent of total
// GDDR5 power — the I/O-dominated energy profile of the part.
func TestRowMissSensitivitySmall(t *testing.T) {
	m := DefaultGDDR5()
	const txns = 8e6
	const elapsed = 40_000_000 // moderately loaded channel set
	mk := func(hitRate float64) dram.Stats {
		miss := int64(txns * (1 - hitRate))
		return dram.Stats{
			ACTs:     miss,
			RDBursts: int64(txns * 2 * 0.85),
			WRBursts: int64(txns * 2 * 0.15),
		}
	}
	base := m.Estimate(mk(0.50), elapsed, 6)
	worse := m.Estimate(mk(0.50*0.84), elapsed, 6) // 16% lower hit rate
	delta := (worse.TotalMW - base.TotalMW) / base.TotalMW
	if delta <= 0 {
		t.Fatalf("more misses did not cost power: %v", delta)
	}
	if delta > 0.05 {
		t.Fatalf("power delta %.3f too large; paper reports ~1.8%%", delta)
	}
}
