// Package power estimates GDDR5 DRAM power with the Micron power
// calculator methodology [37] adapted to GDDR5 as in Section VI-B: energy
// per operation derived from datasheet currents, plus a static background
// term. As the paper notes, most GDDR5 power is spent in the high-speed
// I/O drivers, so the array-access energy added by extra row misses moves
// total power only slightly (the paper reports that a 16% row-hit-rate
// drop costs just 1.8% more GDDR5 power).
package power

import "dramlat/internal/dram"

// Model holds per-operation energies for one 64-bit channel (two x32
// devices in tandem).
type Model struct {
	// EactNJ is the activate+precharge pair energy in nanojoules
	// (IDD0-derived, both devices).
	EactNJ float64
	// ErdBurstNJ / EwrBurstNJ are per-64B-burst energies including the
	// I/O drivers (the dominant term at 6 Gbps).
	ErdBurstNJ float64
	EwrBurstNJ float64
	// PbgMW is the background (standby + clocking) power per channel in
	// milliwatts.
	PbgMW float64
	// TickSeconds converts ticks to time (tCK).
	TickSeconds float64
}

// DefaultGDDR5 returns the model for the simulated Hynix part: I/O-heavy
// burst energy, modest array energy.
func DefaultGDDR5() Model {
	return Model{
		EactNJ:      5.0,
		ErdBurstNJ:  5.0,
		EwrBurstNJ:  5.2,
		PbgMW:       900,
		TickSeconds: 0.667e-9,
	}
}

// Breakdown is channel-aggregate power in milliwatts.
type Breakdown struct {
	BackgroundMW float64
	ActPreMW     float64
	ReadMW       float64
	WriteMW      float64
	TotalMW      float64
}

// Estimate computes average power over a run: stats are the aggregate DRAM
// counters, elapsed the run length in ticks, channels the channel count.
func (m Model) Estimate(s dram.Stats, elapsedTicks int64, channels int) Breakdown {
	if elapsedTicks <= 0 {
		return Breakdown{}
	}
	seconds := float64(elapsedTicks) * m.TickSeconds
	var b Breakdown
	b.BackgroundMW = m.PbgMW * float64(channels)
	// nJ / s = 1e-9 W = 1e-6 mW.
	b.ActPreMW = float64(s.ACTs) * m.EactNJ / seconds * 1e-6
	b.ReadMW = float64(s.RDBursts) * m.ErdBurstNJ / seconds * 1e-6
	b.WriteMW = float64(s.WRBursts) * m.EwrBurstNJ / seconds * 1e-6
	b.TotalMW = b.BackgroundMW + b.ActPreMW + b.ReadMW + b.WriteMW
	return b
}
