package dramlat

import (
	"errors"
	"testing"
)

// FuzzRunSpec asserts the façade's no-panic contract over arbitrary
// specs: Run either succeeds or returns a typed error. A *RunError —
// the recovered-panic wrapper — is itself a failure here, because for
// machine-generated (not chaos-injected) specs every panic path must be
// fenced off by validation.
//
// Geometry and scale are clamped (not rejected) so the fuzzer explores
// behavior, not allocation limits; MaxCycles/StallCycles bound each
// case's runtime.
func FuzzRunSpec(f *testing.F) {
	f.Add("bfs", "gmc", 2, 4, int64(1), 0.05, "gto", 0, 0)
	f.Add("spmv", "wg-w", 4, 8, int64(3), 0.1, "lrr", 32, 8)
	f.Add("streamcluster", "atlas", 1, 1, int64(-7), 0.01, "", 1, 1)
	f.Add("", "bogus", -1, 0, int64(0), -2.0, "mystery", -5, 1<<20)
	f.Fuzz(func(t *testing.T, bench, sched string, sms, warps int, seed int64, scale float64, ws string, readq, cmdq int) {
		if sms > 6 {
			sms = sms%6 + 1
		}
		if warps > 12 {
			warps = warps%12 + 1
		}
		if scale > 0.1 {
			scale = 0.1
		}
		if readq > 256 {
			readq = readq%256 + 1
		}
		if cmdq > 64 {
			cmdq = cmdq%64 + 1
		}
		spec := RunSpec{
			Benchmark: bench, Scheduler: sched, Scale: scale,
			SMs: sms, WarpsPerSM: warps, Seed: seed, WarpSched: ws,
			ReadQ: readq, CmdQueueCap: cmdq,
			MaxCycles: 150_000, StallCycles: 30_000,
		}
		_, err := Run(spec) // must never panic
		if err == nil {
			return
		}
		var ve *ValidationError
		var se *StallError
		var re *RunError
		switch {
		case errors.As(err, &ve), errors.As(err, &se):
			// The two legitimate failure modes: rejected up front, or
			// aborted by the watchdog under the tight budgets above.
		case errors.As(err, &re):
			t.Fatalf("panic escaped validation for %+v: %v\n%s", spec, re, re.Stack)
		default:
			t.Fatalf("untyped error for %+v: %v", spec, err)
		}
	})
}
