module dramlat

go 1.22
