// Command dlbench regenerates every table and figure of the paper's
// evaluation as text tables. Each experiment is selected with -exp; "all"
// runs the full set (the EXPERIMENTS.md record is produced this way).
//
// The simulations behind the tables run through the internal/sweep
// engine: they are prewarmed in parallel (-workers), cached persistently
// on disk (-cache), and a failed run is reported at the end instead of
// killing the sweep. -json exports every run backing the tables as
// machine-readable JSON.
//
// Usage:
//
//	dlbench -exp fig8 [-scale 1] [-sms 30] [-warps 32]
//	dlbench -exp all [-workers 8] [-cache dir|none] [-json out.json]
//
// Experiments: table1 table2 table3 fig2 fig3 fig4 fig8 fig9 fig10 fig11
// fig12 regular power sbwas wafcfs util1bank ablation all
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	"dramlat"
	"dramlat/internal/atomicio"
	"dramlat/internal/prof"
	"dramlat/internal/sweep"
	"dramlat/internal/sweepd/client"
)

// execer is the executor surface a session needs; both the local
// sweep.Engine and the sweepd client.Remote satisfy it, so -server
// swaps the backend without touching any table code.
type execer interface {
	RunContext(ctx context.Context, specs []dramlat.RunSpec) *sweep.Report
	RunOneContext(ctx context.Context, spec dramlat.RunSpec) sweep.Outcome
}

// session is the per-invocation sweep state shared by every runner
// (including the ablation sub-runners): the engine, an in-memory memo of
// everything resolved so far, and the executed/cached/failed accounting
// for the exit summary and -json export.
type session struct {
	ctx      context.Context // cancels the whole invocation (SIGINT)
	eng      execer
	memo     map[string]sweep.Outcome // by canonical spec hash
	order    []string                 // memo insertion order, for export
	executed int
	cached   int
	failed   int
	start    time.Time
}

func newSession(ctx context.Context, eng execer) *session {
	return &session{ctx: ctx, eng: eng, memo: map[string]sweep.Outcome{}, start: time.Now()}
}

// lookup resolves one spec: memo, then the engine (disk cache, then a
// real run). A failed run is recorded and its partial results returned —
// the sweep continues and main exits non-zero at the end.
func (s *session) lookup(spec dramlat.RunSpec) dramlat.Results {
	h := spec.Hash()
	if o, ok := s.memo[h]; ok {
		return o.Results
	}
	o := s.eng.RunOneContext(s.ctx, spec)
	s.record(o)
	if o.Err != nil {
		if !errors.Is(o.Err, context.Canceled) {
			fmt.Fprintf(os.Stderr, "dlbench: %v (continuing)\n", o.Err)
		}
	} else if !o.Cached {
		fmt.Fprintf(os.Stderr, "  ran %s/%s seed %d %10d ticks\n",
			spec.Benchmark, spec.Scheduler, spec.Canonical().Seed, o.Results.Ticks)
	}
	return o.Results
}

func (s *session) record(o sweep.Outcome) {
	if _, ok := s.memo[o.Hash]; ok {
		return
	}
	s.memo[o.Hash] = o
	s.order = append(s.order, o.Hash)
	switch {
	case o.Err != nil:
		s.failed++
	case o.Cached:
		s.cached++
	default:
		s.executed++
	}
}

// prewarm runs the specs an experiment set needs through the engine's
// worker pool, so the table code below finds everything in the memo.
func (s *session) prewarm(specs []dramlat.RunSpec) {
	if len(specs) == 0 {
		return
	}
	rep := s.eng.RunContext(s.ctx, specs)
	for _, o := range rep.Outcomes {
		s.record(o)
		if o.Err != nil && !errors.Is(o.Err, context.Canceled) {
			fmt.Fprintf(os.Stderr, "dlbench: %v (continuing)\n", o.Err)
		}
	}
}

// report assembles the sweep report over every unique spec this
// invocation touched, for the -json export.
func (s *session) report() *sweep.Report {
	rep := &sweep.Report{
		Executed: s.executed, Cached: s.cached, Failed: s.failed,
		Elapsed: time.Since(s.start),
	}
	for _, h := range s.order {
		rep.Outcomes = append(rep.Outcomes, s.memo[h])
	}
	return rep
}

type runner struct {
	scale      float64
	sms, warps int
	seed       int64
	seeds      int // >1: average kernel times over this many seeds
	ablation   string
	engine     string
	shards     int
	s          *session
}

// spec builds the RunSpec for one table cell under this runner's
// geometry, seed and ablation.
func (r *runner) spec(bench, sched string, perfect, zerodiv bool, alpha float64) dramlat.RunSpec {
	return dramlat.RunSpec{
		Benchmark: bench, Scheduler: sched, Scale: r.scale,
		SMs: r.sms, WarpsPerSM: r.warps, Seed: r.seed,
		PerfectCoalescing: perfect, ZeroDivergence: zerodiv, SBWASAlpha: alpha,
		Ablation: r.ablation, Engine: r.engine, Shards: r.shards,
	}
}

func (r *runner) run(bench, sched string, perfect, zerodiv bool, alpha float64) dramlat.Results {
	return r.s.lookup(r.spec(bench, sched, perfect, zerodiv, alpha))
}

func (r *runner) base(bench string) dramlat.Results { return r.run(bench, "gmc", false, false, 0.5) }

// ticks returns the kernel time for (bench, sched), averaged over -seeds
// workload seeds when more than one is requested.
func (r *runner) ticks(bench, sched string) float64 {
	if r.seeds <= 1 {
		return float64(r.run(bench, sched, false, false, 0.5).Ticks)
	}
	baseSeed := r.seed
	defer func() { r.seed = baseSeed }()
	var sum float64
	for i := 0; i < r.seeds; i++ {
		r.seed = baseSeed + int64(i)
		sum += float64(r.run(bench, sched, false, false, 0.5).Ticks)
	}
	return sum / float64(r.seeds)
}

// speedup of sched over the GMC baseline (kernel-time ratio).
func (r *runner) speedup(bench, sched string) float64 {
	return r.ticks(bench, "gmc") / r.ticks(bench, sched)
}

func geomean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

func header(title string) {
	fmt.Printf("\n==== %s ====\n", title)
}

// experimentOrder is the -exp all sequence (the EXPERIMENTS.md order).
var experimentOrder = []string{"table1", "table2", "table3", "fig2", "fig3", "fig4",
	"fig8", "fig9", "fig10", "fig11", "fig12", "regular", "power",
	"sbwas", "wafcfs", "util1bank", "ablation", "cpusched", "extension",
	"sensitivity", "motivation"}

// defaultCacheDir resolves the persistent sweep cache location: the
// user cache dir when available, else a dot-dir in the working tree.
func defaultCacheDir() string {
	if d, err := os.UserCacheDir(); err == nil {
		return filepath.Join(d, "dramlat", "sweep")
	}
	return ".dramlat-sweep"
}

func main() {
	exp := flag.String("exp", "all", "experiment id (table1..3, fig2..4, fig8..12, regular, power, sbwas, wafcfs, util1bank, all)")
	scale := flag.Float64("scale", 1.0, "work scale")
	sms := flag.Int("sms", 0, "override SMs")
	warps := flag.Int("warps", 0, "override warps/SM")
	seed := flag.Int64("seed", 1, "workload seed")
	seeds := flag.Int("seeds", 1, "average kernel times over this many seeds")
	workers := flag.Int("workers", 0, "parallel simulations (0 = GOMAXPROCS)")
	server := flag.String("server", "", "run the simulations on a dlserve instance at this URL instead of locally")
	priority := flag.Int("priority", 0, "with -server: job priority (higher runs first)")
	engine := flag.String("engine", "", "simulation engine: event (default), dense, parallel (all exact, sharing cache entries) or sampled (approximate paper numbers — error bars are not printed, prefer exact engines here)")
	shards := flag.Int("shards", 0, "parallel-engine worker count (0 = min(GOMAXPROCS, cores, SMs))")
	cacheDir := flag.String("cache", defaultCacheDir(), "persistent result cache dir (\"none\" disables)")
	jsonOut := flag.String("json", "", "also write every run as sweep JSON to this file (\"-\" = stdout)")
	pf := prof.Register()
	flag.Parse()
	if err := pf.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "dlbench:", err)
		os.Exit(1)
	}
	defer pf.Stop()

	progress := func(ev sweep.Event) {
		if ev.Outcome.Cached || ev.Outcome.Err != nil {
			return
		}
		sp := ev.Outcome.Spec.Canonical()
		fmt.Fprintf(os.Stderr, "  [%3d/%3d] ran %s/%s seed %d %10d ticks\n",
			ev.Done, ev.Total, sp.Benchmark, sp.Scheduler, sp.Seed, ev.Outcome.Results.Ticks)
	}
	var ex execer
	var cache *sweep.Cache
	if *server != "" {
		// Thin-client mode: simulations run on a dlserve instance with its
		// own cache, worker pool and engine selection.
		ex = &client.Remote{BaseURL: *server, Priority: *priority, Progress: progress}
	} else {
		if *cacheDir != "" && *cacheDir != "none" {
			var err error
			cache, err = sweep.OpenCache(*cacheDir)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dlbench: %v (running uncached)\n", err)
			}
		}
		ex = &sweep.Engine{Workers: *workers, Cache: cache, Progress: progress}
	}
	// First SIGINT/SIGTERM cancels the session: in-flight simulations
	// abort at their next watchdog check, finished results are already
	// cached, and the partial accounting (and -json export) is still
	// written — re-running the same command resumes from the cache.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	s := newSession(ctx, ex)
	r := &runner{scale: *scale, sms: *sms, warps: *warps, seed: *seed, seeds: *seeds,
		engine: *engine, shards: *shards, s: s}

	exps := map[string]func(*runner){
		"table1": table1, "table2": table2, "table3": table3,
		"fig2": fig2, "fig3": fig3, "fig4": fig4,
		"fig8": fig8, "fig9": fig9, "fig10": fig10, "fig11": fig11, "fig12": fig12,
		"regular": regular, "power": powerExp, "sbwas": sbwas, "wafcfs": wafcfs,
		"util1bank": util1bank, "ablation": ablation,
		"cpusched": cpusched, "extension": extension,
		"sensitivity": sensitivity, "motivation": motivation,
	}
	selected := []string{*exp}
	if *exp == "all" {
		selected = experimentOrder
	} else if _, ok := exps[*exp]; !ok {
		fmt.Fprintf(os.Stderr, "dlbench: unknown experiment %q\n", *exp)
		pf.Stop()
		os.Exit(2)
	}

	// Prewarm: enumerate every spec the selected experiments need and
	// run them on the engine's worker pool; the table code then reads
	// the memo. Specs the enumeration misses still run (serially) via
	// session.lookup, so the tables are always complete.
	var specs []dramlat.RunSpec
	for _, e := range selected {
		specs = append(specs, experimentSpecs(r, e)...)
	}
	s.prewarm(specs)
	if len(specs) > 0 {
		backend := "cache: " + cache.Dir()
		if *server != "" {
			backend = "server: " + *server
		}
		fmt.Fprintf(os.Stderr, "sweep: %d unique specs, %d executed, %d cached, %d failed (%s)\n",
			len(s.order), s.executed, s.cached, s.failed, backend)
	}

	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "dlbench: interrupted — skipping tables (completed runs are cached; re-run to resume)")
	} else {
		for _, e := range selected {
			exps[e](r)
		}
	}

	if *jsonOut != "" {
		// Render into a buffer and commit in one step, so an interrupt or
		// error mid-render never leaves a truncated export behind.
		out := atomicio.Create(*jsonOut)
		if err := s.report().WriteJSON(out); err != nil {
			fmt.Fprintln(os.Stderr, "dlbench:", err)
			pf.Stop()
			os.Exit(1)
		}
		if err := out.Commit(); err != nil {
			fmt.Fprintln(os.Stderr, "dlbench:", err)
			pf.Stop()
			os.Exit(1)
		}
	}
	if err := pf.WriteBench(s.report().Outcomes); err != nil {
		fmt.Fprintln(os.Stderr, "dlbench:", err)
		pf.Stop()
		os.Exit(1)
	}

	if s.failed > 0 {
		fmt.Fprintf(os.Stderr, "dlbench: %d of %d runs failed:\n", s.failed, len(s.order))
		for _, h := range s.order {
			o := s.memo[h]
			if o.Err == nil || errors.Is(o.Err, context.Canceled) {
				continue // the "interrupted" line already covers these
			}
			sp := o.Spec.Canonical()
			fmt.Fprintf(os.Stderr, "  %s/%s seed %d: %v\n", sp.Benchmark, sp.Scheduler, sp.Seed, o.Err)
		}
	}
	if s.failed > 0 || ctx.Err() != nil {
		pf.Stop()
		os.Exit(1)
	}
}

// experimentSpecs enumerates the specs one experiment will request, for
// parallel prewarming. It mirrors the table functions below; drifting out
// of sync only costs parallelism (lookup still runs stragglers), never
// correctness.
func experimentSpecs(r *runner, exp string) []dramlat.RunSpec {
	var specs []dramlat.RunSpec
	add := func(bench, sched string, perfect, zerodiv bool, alpha float64) {
		specs = append(specs, r.spec(bench, sched, perfect, zerodiv, alpha))
	}
	// seeded mirrors runner.ticks: seeds > 1 averages over consecutive
	// workload seeds.
	seeded := func(bench, sched string) {
		if r.seeds <= 1 {
			add(bench, sched, false, false, 0.5)
			return
		}
		base := r.spec(bench, sched, false, false, 0.5)
		for i := 0; i < r.seeds; i++ {
			sp := base
			sp.Seed = r.seed + int64(i)
			specs = append(specs, sp)
		}
	}
	irr := dramlat.IrregularNames()
	switch exp {
	case "fig2", "fig3", "motivation":
		for _, b := range irr {
			add(b, "gmc", false, false, 0.5)
		}
	case "fig4":
		for _, b := range irr {
			add(b, "gmc", false, false, 0.5)
			add(b, "gmc", true, false, 0.5)
			add(b, "gmc", false, true, 0.5)
		}
	case "fig8":
		for _, b := range irr {
			seeded(b, "gmc")
			for _, s := range dramlat.WarpAwareSchedulers() {
				seeded(b, s)
			}
		}
	case "fig9", "fig10", "fig11":
		for _, b := range irr {
			add(b, "gmc", false, false, 0.5)
			for _, s := range dramlat.WarpAwareSchedulers() {
				add(b, s, false, false, 0.5)
			}
		}
	case "fig12":
		for _, b := range irr {
			add(b, "wg-w", false, false, 0.5)
		}
	case "regular":
		for _, b := range dramlat.RegularNames() {
			seeded(b, "gmc")
			seeded(b, "wg-w")
		}
	case "power":
		for _, b := range irr {
			add(b, "gmc", false, false, 0.5)
			add(b, "wg-w", false, false, 0.5)
		}
	case "sbwas":
		for _, b := range irr {
			add(b, "gmc", false, false, 0.5)
			for _, a := range []float64{0.25, 0.5, 0.75} {
				add(b, "sbwas", false, false, a)
			}
		}
	case "wafcfs":
		for _, b := range irr {
			seeded(b, "gmc")
			seeded(b, "wafcfs")
		}
	case "cpusched":
		for _, b := range irr {
			for _, s := range []string{"gmc", "parbs", "atlas", "wg-w"} {
				seeded(b, s)
			}
		}
	case "extension":
		for _, b := range irr {
			for _, s := range []string{"gmc", "wg-w", "wg-sh"} {
				seeded(b, s)
			}
		}
	case "sensitivity":
		for _, rq := range []int{16, 32, 64, 128} {
			for _, b := range []string{"spmv", "kmeans"} {
				for _, s := range []string{"gmc", "wg-w"} {
					sp := r.spec(b, s, false, false, 0.5)
					sp.ReadQ = rq
					specs = append(specs, sp)
				}
			}
		}
	case "ablation":
		for _, b := range []string{"bfs", "kmeans", "spmv", "sssp"} {
			add(b, "wg-bw", false, false, 0.5)
			for _, ab := range []string{"count-score", "no-orphan", "no-credits"} {
				sp := r.spec(b, "wg-bw", false, false, 0.5)
				sp.Ablation = ab
				specs = append(specs, sp)
			}
		}
	}
	return specs
}

func table1(r *runner) {
	header("Table I: MERB values (GDDR5)")
	tab := dramlat.MERBTable(16)
	fmt.Printf("%-10s %s\n", "banks", "MERB")
	for b := 1; b <= 5; b++ {
		fmt.Printf("%-10d %d\n", b, tab[b-1])
	}
	fmt.Printf("%-10s %d\n", "6-16", tab[5])
	fmt.Println("paper: 31 20 10 7 5 5")
}

func table2(r *runner) {
	header("Table II: simulation parameters")
	cfg := dramlat.Config(dramlat.RunSpec{})
	t := cfg.Timing
	fmt.Printf("compute units        %d\n", cfg.NumSMs)
	fmt.Printf("warp size            %d\n", cfg.WarpSize)
	fmt.Printf("max warps/core       %d (1024 threads)\n", cfg.WarpsPerSM)
	fmt.Printf("L1 per core          %dKB %d-way, %dB lines\n", cfg.L1SizeBytes>>10, cfg.L1Ways, cfg.LineBytes)
	fmt.Printf("L2 per partition     %dKB %d-way\n", cfg.L2SliceSize>>10, cfg.L2Ways)
	fmt.Printf("DRAM channels        %d x 64-bit GDDR5\n", cfg.NumChannels)
	fmt.Printf("banks/chip           %d (%d bank groups)\n", cfg.NumBanks, cfg.BankGroups)
	fmt.Printf("read/write queues    %d/%d, watermarks %d/%d\n", cfg.ReadQ, cfg.WriteQ, cfg.HighWM, cfg.LowWM)
	fmt.Printf("tCK                  0.667 ns (6 Gbps pin)\n")
	fmt.Printf("tRC=%dns tRCD=%dns tRP=%dns tCAS=%dns tRAS=%dns\n",
		int(t.TRCNS), int(t.TRCDNS), int(t.TRPNS), int(t.TCASNS), int(t.TRASNS))
	fmt.Printf("tRRD=%.1fns tWTR=%dns tFAW=%dns tRTP=%dns\n",
		t.TRRDNS, int(t.TWTRNS), int(t.TFAWNS), int(t.TRTPNS))
	fmt.Printf("tWL=%dtCK tBURST=%dtCK tRTRS=%dtCK tCCDL=%dtCK tCCDS=%dtCK\n",
		t.TWL, t.TBURST, t.TRTRS, t.TCCDL, t.TCCDS)
}

func table3(r *runner) {
	header("Table III: workloads")
	for _, b := range dramlat.Benchmarks() {
		kind := "regular (§VI-A)"
		if b.Irregular {
			kind = "irregular"
		}
		fmt.Printf("%-14s %-12s %-16s %s\n", b.Name, b.Suite, kind, b.Desc)
	}
}

func fig2(r *runner) {
	header("Fig 2: coalescing efficiency (GMC baseline)")
	fmt.Printf("%-10s %18s %14s\n", "bench", ">1-request loads", "reqs/load")
	var fr, rl []float64
	for _, b := range dramlat.IrregularNames() {
		s := r.base(b).Summary
		fmt.Printf("%-10s %17.0f%% %14.2f\n", b, s.MultiReqFrac*100, s.ReqsPerLoad)
		fr = append(fr, s.MultiReqFrac)
		rl = append(rl, s.ReqsPerLoad)
	}
	fmt.Printf("%-10s %17.0f%% %14.2f   (paper: 56%%, 5.9)\n", "MEAN", mean(fr)*100, mean(rl))
}

func fig3(r *runner) {
	header("Fig 3: extent of memory latency divergence (GMC baseline)")
	fmt.Printf("%-10s %12s %12s\n", "bench", "last/first", "MCs/warp")
	var lf, mc []float64
	for _, b := range dramlat.IrregularNames() {
		s := r.base(b).Summary
		fmt.Printf("%-10s %11.2fx %12.2f\n", b, s.LastOverFirst, s.AvgMCsTouched)
		lf = append(lf, s.LastOverFirst)
		mc = append(mc, s.AvgMCsTouched)
	}
	fmt.Printf("%-10s %11.2fx %12.2f   (paper: 1.6x, 2.5)\n", "MEAN", mean(lf), mean(mc))
}

func fig4(r *runner) {
	header("Fig 4: room for improvement (speedup over GMC)")
	fmt.Printf("%-10s %18s %22s\n", "bench", "perfect coalescing", "zero latency divergence")
	var pc, zd []float64
	for _, b := range dramlat.IrregularNames() {
		base := float64(r.base(b).Ticks)
		p := base / float64(r.run(b, "gmc", true, false, 0.5).Ticks)
		z := base / float64(r.run(b, "gmc", false, true, 0.5).Ticks)
		fmt.Printf("%-10s %17.2fx %21.2fx\n", b, p, z)
		pc = append(pc, p)
		zd = append(zd, z)
	}
	fmt.Printf("%-10s %17.2fx %21.2fx   (paper: ~5x, ~1.43x)\n", "GEOMEAN", geomean(pc), geomean(zd))
}

func fig8(r *runner) {
	header("Fig 8: performance normalized to GMC")
	scheds := dramlat.WarpAwareSchedulers()
	fmt.Printf("%-10s", "bench")
	for _, s := range scheds {
		fmt.Printf(" %8s", s)
	}
	fmt.Println()
	agg := map[string][]float64{}
	for _, b := range dramlat.IrregularNames() {
		fmt.Printf("%-10s", b)
		for _, s := range scheds {
			sp := r.speedup(b, s)
			agg[s] = append(agg[s], sp)
			fmt.Printf(" %8.3f", sp)
		}
		fmt.Println()
	}
	fmt.Printf("%-10s", "GEOMEAN")
	for _, s := range scheds {
		fmt.Printf(" %8.3f", geomean(agg[s]))
	}
	fmt.Println("\npaper means: wg 1.034, wg-m 1.062, wg-bw 1.084, wg-w 1.101")
}

func fig9(r *runner) {
	header("Fig 9: effective main-memory latency (normalized to GMC)")
	scheds := dramlat.WarpAwareSchedulers()
	fmt.Printf("%-10s", "bench")
	for _, s := range scheds {
		fmt.Printf(" %8s", s)
	}
	fmt.Println()
	agg := map[string][]float64{}
	for _, b := range dramlat.IrregularNames() {
		fmt.Printf("%-10s", b)
		base := r.base(b).Summary.EffectiveLatency
		for _, s := range scheds {
			v := r.run(b, s, false, false, 0.5).Summary.EffectiveLatency / base
			agg[s] = append(agg[s], v)
			fmt.Printf(" %8.3f", v)
		}
		fmt.Println()
	}
	fmt.Printf("%-10s", "GEOMEAN")
	for _, s := range scheds {
		fmt.Printf(" %8.3f", geomean(agg[s]))
	}
	fmt.Println("\npaper: wg -9.1% (0.909), wg-m -16.9% (0.831)")
}

func fig10(r *runner) {
	header("Fig 10: DRAM latency divergence (first-to-last gap, ticks)")
	scheds := append([]string{"gmc"}, dramlat.WarpAwareSchedulers()...)
	fmt.Printf("%-10s", "bench")
	for _, s := range scheds {
		fmt.Printf(" %8s", s)
	}
	fmt.Println()
	for _, b := range dramlat.IrregularNames() {
		fmt.Printf("%-10s", b)
		for _, s := range scheds {
			fmt.Printf(" %8.0f", r.run(b, s, false, false, 0.5).Summary.DivergenceGap)
		}
		fmt.Println()
	}
}

func fig11(r *runner) {
	header("Fig 11: DRAM bandwidth utilization")
	scheds := append([]string{"gmc"}, dramlat.WarpAwareSchedulers()...)
	fmt.Printf("%-10s", "bench")
	for _, s := range scheds {
		fmt.Printf(" %8s", s)
	}
	fmt.Println()
	agg := map[string][]float64{}
	for _, b := range dramlat.IrregularNames() {
		fmt.Printf("%-10s", b)
		for _, s := range scheds {
			u := r.run(b, s, false, false, 0.5).Utilization
			agg[s] = append(agg[s], u)
			fmt.Printf(" %7.1f%%", u*100)
		}
		fmt.Println()
	}
	fmt.Printf("%-10s", "MEAN")
	for _, s := range scheds {
		fmt.Printf(" %7.1f%%", mean(agg[s])*100)
	}
	fmt.Println("\npaper: wg-bw recovers >14% of the bandwidth wg-m loses")
}

func fig12(r *runner) {
	header("Fig 12: write intensity and drain-stalled warp-groups (wg-w)")
	fmt.Printf("%-10s %12s %22s\n", "bench", "write frac", "unit/orphan stalled")
	for _, b := range dramlat.IrregularNames() {
		res := r.run(b, "wg-w", false, false, 0.5)
		frac := 0.0
		if res.DrainStalledGroups > 0 {
			frac = float64(res.DrainStalledUnitOrOrphan) / float64(res.DrainStalledGroups)
		}
		fmt.Printf("%-10s %11.1f%% %21.1f%%\n", b, res.WriteFrac*100, frac*100)
	}
}

func regular(r *runner) {
	header("Section VI-A: non-divergent applications (wg-w vs GMC)")
	fmt.Printf("%-14s %10s\n", "bench", "speedup")
	var sp []float64
	worst := math.Inf(1)
	for _, b := range dramlat.RegularNames() {
		s := r.speedup(b, "wg-w")
		sp = append(sp, s)
		if s < worst {
			worst = s
		}
		fmt.Printf("%-14s %10.3f\n", b, s)
	}
	fmt.Printf("%-14s %10.3f   worst %.3f   (paper: +1.8%%, no slowdowns)\n",
		"GEOMEAN", geomean(sp), worst)
}

func powerExp(r *runner) {
	header("Section VI-B: row-hit rate and GDDR5 power (wg-w vs GMC)")
	var hitDeltas, pwDeltas []float64
	fmt.Printf("%-10s %12s %12s %12s\n", "bench", "gmc hit", "wg-w hit", "power delta")
	for _, b := range dramlat.IrregularNames() {
		g := r.base(b)
		w := r.run(b, "wg-w", false, false, 0.5)
		pg := dramlat.EstimatePower(g)
		pw := dramlat.EstimatePower(w)
		d := pw.TotalMW/pg.TotalMW - 1
		fmt.Printf("%-10s %11.1f%% %11.1f%% %+11.2f%%\n",
			b, g.RowHitRate*100, w.RowHitRate*100, d*100)
		if g.RowHitRate > 0 {
			hitDeltas = append(hitDeltas, w.RowHitRate/g.RowHitRate-1)
		}
		pwDeltas = append(pwDeltas, d)
	}
	fmt.Printf("MEAN hit-rate change %+.1f%%, power change %+.2f%%   (paper: -16%%, +1.8%%)\n",
		mean(hitDeltas)*100, mean(pwDeltas)*100)
}

func sbwas(r *runner) {
	header("Section VI-C1: SBWAS (alpha profiled per benchmark)")
	fmt.Printf("%-10s %8s %8s\n", "bench", "alpha", "speedup")
	var sp []float64
	for _, b := range dramlat.IrregularNames() {
		best, bestA := 0.0, 0.0
		for _, a := range []float64{0.25, 0.5, 0.75} {
			s := float64(r.base(b).Ticks) / float64(r.run(b, "sbwas", false, false, a).Ticks)
			if s > best {
				best, bestA = s, a
			}
		}
		sp = append(sp, best)
		fmt.Printf("%-10s %8.2f %8.3f\n", b, bestA, best)
	}
	fmt.Printf("%-10s %8s %8.3f   (paper: +2.51%%)\n", "GEOMEAN", "", geomean(sp))
}

func wafcfs(r *runner) {
	header("Section VI-C2: WAFCFS (Yuan et al.)")
	fmt.Printf("%-10s %8s\n", "bench", "speedup")
	var sp []float64
	for _, b := range dramlat.IrregularNames() {
		s := r.speedup(b, "wafcfs")
		sp = append(sp, s)
		fmt.Printf("%-10s %8.3f\n", b, s)
	}
	fmt.Printf("%-10s %8.3f   (paper: 0.888, an 11.2%% degradation)\n", "GEOMEAN", geomean(sp))
}

func util1bank(r *runner) {
	header("Section IV-D: single-bank utilization model")
	t := dramlat.Timing()
	var ns []int
	for n := 1; n <= 31; n *= 2 {
		ns = append(ns, n)
	}
	ns = append(ns, 31)
	sort.Ints(ns)
	for _, n := range ns {
		bar := strings.Repeat("#", int(t.SingleBankUtilization(n)*50))
		fmt.Printf("n=%-4d %5.1f%% %s\n", n, t.SingleBankUtilization(n)*100, bar)
	}
}

// cpusched runs the CPU memory schedulers the paper argues are ill-suited
// to warp-level divergence (Section VI-C3): PAR-BS batches mix warps, and
// ATLAS coordinates at quanta far coarser than a warp's lifetime.
func cpusched(r *runner) {
	header("Section VI-C3: CPU memory schedulers (PAR-BS, ATLAS) vs GMC")
	fmt.Printf("%-10s %8s %8s %8s\n", "bench", "parbs", "atlas", "wg-w")
	aggP, aggA, aggW := []float64{}, []float64{}, []float64{}
	for _, b := range dramlat.IrregularNames() {
		p := r.speedup(b, "parbs")
		a := r.speedup(b, "atlas")
		w := r.speedup(b, "wg-w")
		aggP = append(aggP, p)
		aggA = append(aggA, a)
		aggW = append(aggW, w)
		fmt.Printf("%-10s %8.3f %8.3f %8.3f\n", b, p, a, w)
	}
	fmt.Printf("%-10s %8.3f %8.3f %8.3f\n", "GEOMEAN", geomean(aggP), geomean(aggA), geomean(aggW))
	fmt.Println("(the paper argues thread-centric CPU policies cannot reduce")
	fmt.Println(" warp latency divergence; they should trail the wg family)")
}

// extension runs the shared-data warp-group priority sketched in the
// paper's conclusion (wg-sh = wg-w + multi-warp-demand priority).
func extension(r *runner) {
	header("Conclusion extension: shared-data warp-group priority (wg-sh)")
	fmt.Printf("%-10s %8s %8s\n", "bench", "wg-w", "wg-sh")
	var a, b2 []float64
	for _, b := range dramlat.IrregularNames() {
		w := r.speedup(b, "wg-w")
		sh := r.speedup(b, "wg-sh")
		a = append(a, w)
		b2 = append(b2, sh)
		fmt.Printf("%-10s %8.3f %8.3f\n", b, w, sh)
	}
	fmt.Printf("%-10s %8.3f %8.3f\n", "GEOMEAN", geomean(a), geomean(b2))
}

// motivation quantifies the Section III-A argument that multithreading
// cannot hide divergence-induced stalls: the fraction of core cycles where
// an SM had live warps but none ready to issue.
func motivation(r *runner) {
	header("Section III-A: SM idle cycles (all warps stalled) under GMC")
	fmt.Printf("%-10s %12s %12s\n", "bench", "idle frac", "L1 hit rate")
	var idle []float64
	for _, b := range dramlat.IrregularNames() {
		res := r.base(b)
		idle = append(idle, res.SMIdleFrac)
		fmt.Printf("%-10s %11.1f%% %11.1f%%\n", b, res.SMIdleFrac*100, res.L1HitRate*100)
	}
	fmt.Printf("%-10s %11.1f%%\n", "MEAN", mean(idle)*100)
	fmt.Println("(previous studies [18],[27]: cores frequently sit idle with all")
	fmt.Println(" warps stalled on memory; caches have poor hit rates under")
	fmt.Println(" thousands of concurrent threads)")
}

// sensitivity sweeps the queue depths that control how much reordering
// freedom the warp-aware scheduler has: the read queue (Table II: 64) and
// the per-bank command queue. The warp-aware gain should grow with queue
// depth - with shallow queues there is nothing to reorder.
func sensitivity(r *runner) {
	header("Sensitivity: wg-w speedup over GMC vs read-queue depth")
	benches := []string{"spmv", "kmeans"}
	fmt.Printf("%-16s", "readQ")
	for _, b := range benches {
		fmt.Printf(" %10s", b)
	}
	fmt.Println()
	runOne := func(b, sched string, rq int) int64 {
		sp := r.spec(b, sched, false, false, 0.5)
		sp.ReadQ = rq
		return r.s.lookup(sp).Ticks
	}
	for _, rq := range []int{16, 32, 64, 128} {
		fmt.Printf("%-16d", rq)
		for _, b := range benches {
			sp := float64(runOne(b, "gmc", rq)) / float64(runOne(b, "wg-w", rq))
			fmt.Printf(" %10.3f", sp)
		}
		fmt.Println()
	}
	fmt.Println("(deeper queues give the warp-aware scheduler more to reorder)")
}

// ablation quantifies the warp-aware design choices DESIGN.md calls out:
// bank-aware scoring vs raw request counts, orphan control, and the L2
// group-complete credits, each measured as a slowdown of wg-bw on four
// representative irregular benchmarks.
func ablation(r *runner) {
	header("Ablation: warp-aware design choices (slowdown of wg-bw when removed)")
	benches := []string{"bfs", "kmeans", "spmv", "sssp"}
	for _, ab := range []string{"count-score", "no-orphan", "no-credits"} {
		sub := &runner{scale: r.scale, sms: r.sms, warps: r.warps, seed: r.seed,
			ablation: ab, engine: r.engine, shards: r.shards, s: r.s}
		var slow []float64
		fmt.Printf("%-14s", ab)
		for _, b := range benches {
			full := float64(r.run(b, "wg-bw", false, false, 0.5).Ticks)
			abl := float64(sub.run(b, "wg-bw", false, false, 0.5).Ticks)
			slow = append(slow, abl/full)
			fmt.Printf(" %s=%.3f", b, abl/full)
		}
		fmt.Printf("  geomean=%.3f\n", geomean(slow))
	}
	fmt.Println("(values > 1.000 mean the removed mechanism was helping)")
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
