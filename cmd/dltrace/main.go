// Command dltrace exports a built-in benchmark as a text warp-instruction
// trace, or replays a trace file through the simulator under any scheduler.
//
// Usage:
//
//	dltrace -export spmv -scale 0.2 -o spmv.trace
//	dltrace -run spmv.trace -sched wg-w
//
// The trace format is documented in internal/trace.
package main

import (
	"flag"
	"fmt"
	"os"

	"dramlat"
	"dramlat/internal/gpu"
	"dramlat/internal/trace"
	"dramlat/internal/workload"
)

func main() {
	export := flag.String("export", "", "benchmark to export as a trace")
	runFile := flag.String("run", "", "trace file to replay")
	out := flag.String("o", "", "output file for -export (default stdout)")
	sched := flag.String("sched", "gmc", "scheduler for -run")
	scale := flag.Float64("scale", 1.0, "work scale for -export")
	sms := flag.Int("sms", 0, "machine SMs (0 = Table II: 30)")
	warps := flag.Int("warps", 0, "warps per SM (0 = Table II: 32)")
	seed := flag.Int64("seed", 1, "workload seed for -export")
	flag.Parse()

	switch {
	case *export != "" && *runFile != "":
		fail("use either -export or -run, not both")
	case *export != "":
		doExport(*export, *out, *scale, *sms, *warps, *seed)
	case *runFile != "":
		doRun(*runFile, *sched, *sms, *warps)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fail(msg string) {
	fmt.Fprintln(os.Stderr, "dltrace:", msg)
	os.Exit(1)
}

func machine(sms, warps int) (int, int) {
	cfg := gpu.DefaultConfig()
	if sms > 0 {
		cfg.NumSMs = sms
	}
	if warps > 0 {
		cfg.WarpsPerSM = warps
	}
	return cfg.NumSMs, cfg.WarpsPerSM
}

func doExport(bench, out string, scale float64, sms, warps int, seed int64) {
	b, err := workload.ByName(bench)
	if err != nil {
		fail(err.Error())
	}
	p := workload.DefaultParams()
	p.NumSMs, p.WarpsPerSM = machine(sms, warps)
	p.Scale = scale
	p.Seed = seed
	wl := b.Build(p)
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			fail(err.Error())
		}
		defer f.Close()
		w = f
	}
	if err := trace.Write(w, wl); err != nil {
		fail(err.Error())
	}
}

func doRun(file, sched string, sms, warps int) {
	f, err := os.Open(file)
	if err != nil {
		fail(err.Error())
	}
	defer f.Close()
	numSMs, warpsPerSM := machine(sms, warps)
	wl, err := trace.Read(f, file, numSMs, warpsPerSM)
	if err != nil {
		fail(err.Error())
	}
	cfg := dramlat.Config(dramlat.RunSpec{Scheduler: sched, SMs: numSMs, WarpsPerSM: warpsPerSM})
	sys, err := gpu.NewSystem(cfg, wl)
	if err != nil {
		fail(err.Error())
	}
	res, err := sys.Run()
	if err != nil {
		fail(err.Error())
	}
	fmt.Printf("trace                %s\n", file)
	fmt.Printf("scheduler            %s\n", sched)
	fmt.Printf("kernel ticks         %d (%.1f us)\n", res.Ticks, float64(res.Ticks)*0.667e-3)
	fmt.Printf("IPC                  %.3f\n", res.IPC)
	fmt.Printf("DRAM utilization     %.1f%%\n", res.Utilization*100)
	fmt.Printf("row hit rate         %.1f%%\n", res.RowHitRate*100)
	fmt.Printf("effective latency    %.0f ticks\n", res.Summary.EffectiveLatency)
	fmt.Printf("divergence gap       %.0f ticks\n", res.Summary.DivergenceGap)
}
