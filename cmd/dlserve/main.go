// Command dlserve runs the sweepd experiment service: a long-running
// HTTP server that accepts sweep jobs (grids or spec lists), executes
// them on a bounded worker pool over the shared persistent result
// cache, streams live per-outcome progress, and drains gracefully on
// SIGTERM — in-flight specs finish and persist, unfinished jobs are
// marked resumable, and resubmitting them is served from the cache.
//
// Usage:
//
//	dlserve -addr :8080 -cache ~/.cache/dramlat/sweep -workers 8
//	dlsweep -server http://localhost:8080 -bench bfs -sched gmc,wg-w
//
// The API lives under /api/v1 (see internal/sweepd). The matching Go
// client is internal/sweepd/client.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"dramlat"
	"dramlat/internal/metrics"
	"dramlat/internal/sweep"
	"dramlat/internal/sweepd"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "dlserve:", err)
	os.Exit(1)
}

// withPprof mounts the net/http/pprof handlers explicitly — never via
// DefaultServeMux, so nothing is exposed unless -pprof is set.
func withPprof(next http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/", next)
	return mux
}

func defaultCacheDir() string {
	if d, err := os.UserCacheDir(); err == nil {
		return d + "/dramlat/sweep"
	}
	return ".dramlat-sweep"
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cacheDir := flag.String("cache", defaultCacheDir(), "persistent result cache dir")
	workers := flag.Int("workers", 0, "parallel simulations (0 = GOMAXPROCS)")
	engine := flag.String("engine", "", "simulation engine: event (default), dense or parallel — all exact and engine-independent, so cache entries are shared (sampled is rejected: submit sampled specs instead)")
	shards := flag.Int("shards", 0, "parallel-engine worker count (0 = min(GOMAXPROCS, cores, SMs))")
	runTimeout := flag.Duration("timeout", 0, "per-run wall-clock budget (0 = none)")
	drainTimeout := flag.Duration("drain-timeout", 2*time.Minute, "max wait for in-flight specs on shutdown before aborting them")
	traceEvents := flag.Bool("trace-events", false, "capture per-spec telemetry for every executed spec, not just jobs that request it")
	traceCap := flag.Int("trace-cap", 0, "cap on captured events per run (0 = unlimited)")
	sampleEvery := flag.Int64("sample-every", 0, "interval-sample cadence in ticks for captured telemetry (0 = default)")
	fleetOnly := flag.Bool("fleet-only", false, "run no local simulations; every spec waits for a remote dlwork worker to claim it")
	leaseTTL := flag.Duration("lease-ttl", 0, "fleet lease duration before a silent worker is presumed dead (0 = 30s)")
	leaseAttempts := flag.Int("lease-attempts", 0, "expired leases per spec before it is quarantined (0 = 3)")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof profiling endpoints under /debug/pprof/")
	adminAddr := flag.String("admin", "", "separate listen address for /metrics, /healthz and (with -pprof) /debug/pprof; empty serves them on -addr")
	verbose := flag.Bool("v", false, "log every finished spec, not just job lifecycle")
	flag.Parse()

	level := slog.LevelInfo
	if *verbose {
		level = slog.LevelDebug
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	cache, err := sweep.OpenCache(*cacheDir)
	if err != nil {
		fail(err)
	}
	eng := &sweep.Engine{
		Workers: *workers, Cache: cache, RunTimeout: *runTimeout,
		// Artifact capture is always available: jobs opt in per submit,
		// and -trace-events turns it on for every executed spec.
		TelemetryDir: filepath.Join(cache.Dir(), "artifacts"),
	}
	if *traceEvents {
		eng.Telemetry = dramlat.TelemetryOptions{
			Events: true, EventCap: *traceCap, SampleEvery: *sampleEvery,
		}
	}
	if *engine == "sampled" {
		// Mutate runs after the cache is keyed on the submitted spec, so
		// forcing the sampled engine here would store approximate Results
		// under exact specs' hashes — permanent cache poisoning. Sampled
		// runs must be requested per spec (the hash-included Sampled
		// block), never as a server-wide override.
		fail(fmt.Errorf("-engine sampled is not a valid server-wide engine: sampled results are approximate and would be cached under exact spec hashes; submit specs with a Sampled block instead"))
	}
	if *engine != "" || *shards != 0 {
		// Engine selection is a server-side execution detail: Engine and
		// Shards are hash-excluded (results are engine-independent), so
		// they never arrive over the wire. Mutate rewrites them just
		// before execution while keeping the engine's own runner — and
		// with it telemetry capture — intact.
		eng.Mutate = func(sp *dramlat.RunSpec) {
			sp.Engine = *engine
			sp.Shards = *shards
		}
	}

	opts := sweepd.Options{LeaseTTL: *leaseTTL, LeaseAttempts: *leaseAttempts}
	if *fleetOnly {
		opts.LocalWorkers = -1
	}
	srv := sweepd.NewWithOptions(eng, logger, metrics.Default, opts)
	handler := srv.Handler()
	if *pprofOn && *adminAddr == "" {
		handler = withPprof(handler)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: handler}

	// The optional admin listener isolates operational surface (scrapes,
	// probes, profiles) from the job API, e.g. to firewall them apart.
	var adminSrv *http.Server
	if *adminAddr != "" {
		admin := http.NewServeMux()
		admin.Handle("GET /metrics", srv.MetricsHandler())
		admin.HandleFunc("GET /healthz", srv.HealthzHandler)
		var ah http.Handler = admin
		if *pprofOn {
			ah = withPprof(admin)
		}
		adminSrv = &http.Server{Addr: *adminAddr, Handler: ah}
		go func() {
			logger.Info("admin listening", "addr", *adminAddr, "pprof", *pprofOn)
			if err := adminSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fail(err)
			}
		}()
	}

	// SIGTERM/SIGINT: stop accepting connections, drain the queue
	// (in-flight specs finish and persist; unfinished jobs are marked
	// resumable), then exit. A second signal kills the process.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ctx.Done()
		logger.Info("shutdown signal received, draining")
		drained := make(chan struct{})
		go func() { srv.Drain(); close(drained) }()
		select {
		case <-drained:
		case <-time.After(*drainTimeout):
			logger.Warn("drain timeout, aborting in-flight specs")
			srv.Close()
		}
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		httpSrv.Shutdown(sctx)
		if adminSrv != nil {
			adminSrv.Shutdown(sctx)
		}
		logger.Info("sweepd down")
	}()

	logger.Info("listening", "addr", *addr, "cache", cache.Dir())
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fail(err)
	}
	<-done
}
