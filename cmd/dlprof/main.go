// Command dlprof profiles a simulation run through the telemetry layer:
// it either runs a benchmark with tracing enabled or consumes a previously
// exported JSONL event trace, then renders the time-resolved story the
// end-of-run scalars hide — per-interval channel/SM tables, the top-K
// straggler warp-groups with their per-request DRAM command history, and
// the divergence-gap histogram (the Fig 10 distribution).
//
// Usage:
//
//	dlprof -bench bfs -sched wg-w -scale 0.05 -sms 4 -warps 8
//	dlprof -bench spmv -sched gmc -sample-every 2000 -intervals
//	dlprof -bench bfs -events bfs.events.jsonl -chrome bfs.trace.json
//	dlprof -read bfs.events.jsonl -top 10 -validate
//	dlprof -server http://localhost:8080 -spec-hash <hash> -top 10
//
// The -chrome output loads directly in Perfetto (ui.perfetto.dev) or
// chrome://tracing; -events emits the JSONL schema read back by -read.
// Remote mode (-server) fetches a spec's server-captured event trace
// from a dlserve artifact endpoint and produces output byte-identical
// to analyzing the server-side file in place.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"dramlat"
	"dramlat/internal/sweepd/client"
	"dramlat/internal/telemetry"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "dlprof:", err)
	os.Exit(1)
}

func main() {
	// Trace-consumption mode.
	read := flag.String("read", "", "JSONL event trace to analyze instead of running a simulation")

	// Remote trace-consumption mode: pull the trace from a dlserve
	// artifact endpoint instead of the local filesystem.
	server := flag.String("server", "", "dlserve base URL to fetch the trace from (needs -spec-hash)")
	specHash := flag.String("spec-hash", "", "spec content hash whose server-captured trace to analyze")

	// Run mode: spec selection (mirrors cmd/dlsim).
	bench := flag.String("bench", "", "benchmark to run (see dlsim -list)")
	sched := flag.String("sched", "gmc", "memory scheduler")
	scale := flag.Float64("scale", 0.05, "work scale")
	sms := flag.Int("sms", 4, "machine SMs (0 = Table II: 30)")
	warps := flag.Int("warps", 8, "warps per SM (0 = Table II: 32)")
	seed := flag.Int64("seed", 1, "workload seed")
	evcap := flag.Int("cap", 0, "event ring capacity (0 = default 1Mi events)")
	sampleEvery := flag.Int64("sample-every", 0, "snapshot channel/SM gauges every N ticks")

	// Outputs and report shaping.
	events := flag.String("events", "", "write the raw event trace as JSONL")
	chrome := flag.String("chrome", "", "write a Chrome trace_event JSON (Perfetto-loadable)")
	csvPrefix := flag.String("csv", "", "write <prefix>.channels.csv and <prefix>.sms.csv interval tables")
	intervals := flag.Bool("intervals", false, "print the per-interval channel table (needs -sample-every)")
	validate := flag.Bool("validate", false, "check trace invariants (command legality, balanced spans)")
	top := flag.Int("top", 5, "straggler warp-groups to detail (0 disables)")
	hist := flag.Bool("hist", true, "print the divergence-gap histogram")
	flag.Parse()

	modes := 0
	for _, on := range []bool{*read != "", *bench != "", *server != ""} {
		if on {
			modes++
		}
	}
	switch {
	case modes > 1:
		fail(fmt.Errorf("use exactly one of -read, -bench or -server"))
	case *server != "" && *specHash == "":
		fail(fmt.Errorf("-server needs -spec-hash"))
	case *server != "":
		analyzeRemote(*server, *specHash, *validate, *top, *hist, *chrome, *events)
	case *read != "":
		analyzeFile(*read, *validate, *top, *hist, *chrome, *events)
	case *bench != "":
		runProfile(profileOpts{
			spec: dramlat.RunSpec{
				Benchmark: *bench, Scheduler: *sched, Scale: *scale,
				SMs: *sms, WarpsPerSM: *warps, Seed: *seed,
				Telemetry: dramlat.TelemetryOptions{
					Events: true, EventCap: *evcap, SampleEvery: *sampleEvery,
				},
			},
			events: *events, chrome: *chrome, csvPrefix: *csvPrefix,
			intervals: *intervals, validate: *validate, top: *top, hist: *hist,
		})
	default:
		flag.Usage()
		os.Exit(2)
	}
}

type profileOpts struct {
	spec           dramlat.RunSpec
	events, chrome string
	csvPrefix      string
	intervals      bool
	validate       bool
	top            int
	hist           bool
}

func runProfile(o profileOpts) {
	res, tel, err := dramlat.RunTelemetry(o.spec)
	if err != nil {
		fail(err)
	}
	evs := tel.Tracer.Events()
	telemetry.SortEvents(evs)

	fmt.Printf("run                  %s/%s scale %g seed %d\n",
		o.spec.Benchmark, o.spec.Scheduler, o.spec.Scale, o.spec.Seed)
	fmt.Printf("kernel ticks         %d\n", res.Ticks)
	fmt.Printf("IPC                  %.3f\n", res.IPC)
	fmt.Printf("events               %d recorded, %d dropped (ring wrap)\n",
		tel.Tracer.Len(), tel.Tracer.Dropped())

	a := telemetry.Analyze(evs)
	fmt.Printf("divergence gap       %.1f ticks (collector) / %.1f ticks (trace)\n",
		res.Summary.DivergenceGap, a.DivergenceGap())
	doValidate := o.validate
	if doValidate && tel.Tracer.Dropped() > 0 {
		fmt.Println("validate             skipped (ring wrapped; raise -cap for a complete trace)")
		doValidate = false
	}
	report(a, evs, doValidate, o.top, o.hist)

	if o.intervals {
		if tel.Sampler == nil {
			fail(fmt.Errorf("-intervals needs -sample-every"))
		}
		printIntervals(tel.Sampler)
	}
	writeOutputs(evs, o.events, o.chrome)
	if o.csvPrefix != "" {
		if tel.Sampler == nil {
			fail(fmt.Errorf("-csv needs -sample-every"))
		}
		writeCSVs(tel.Sampler, o.csvPrefix)
	}
}

func analyzeFile(path string, validate bool, top int, hist bool, chrome, events string) {
	f, err := os.Open(path)
	if err != nil {
		fail(err)
	}
	evs, err := telemetry.ReadJSONL(f)
	f.Close()
	if err != nil {
		fail(err)
	}
	analyzeEvents(path, evs, validate, top, hist, chrome, events)
}

// analyzeRemote fetches a spec's server-captured event trace and runs
// the exact analysis path of -read. The header names the artifact file
// (<hash>.events.jsonl), so the full output is byte-identical to
// running dlprof -read against the server-side file from inside the
// artifact dir — remote and local analysis stay diffable.
func analyzeRemote(server, hash string, validate bool, top int, hist bool, chrome, events string) {
	r := &client.Remote{BaseURL: server}
	name := hash + ".events.jsonl"
	rc, err := r.Artifact(context.Background(), hash, "events.jsonl")
	if err != nil {
		fail(err)
	}
	evs, err := telemetry.ReadJSONL(rc)
	rc.Close()
	if err != nil {
		fail(err)
	}
	analyzeEvents(name, evs, validate, top, hist, chrome, events)
}

// analyzeEvents is the shared trace-consumption tail of -read and
// -server: sort, headline, report, optional re-exports.
func analyzeEvents(name string, evs []telemetry.Event, validate bool, top int, hist bool, chrome, events string) {
	telemetry.SortEvents(evs)
	fmt.Printf("trace                %s (%d events)\n", name, len(evs))
	a := telemetry.Analyze(evs)
	fmt.Printf("divergence gap       %.1f ticks (trace)\n", a.DivergenceGap())
	report(a, evs, validate, top, hist)
	writeOutputs(evs, events, chrome)
}

func report(a *telemetry.Analysis, evs []telemetry.Event, validate bool, top int, hist bool) {
	fmt.Printf("warp-groups          %s\n", a.Summary())
	if validate {
		if err := telemetry.Validate(evs); err != nil {
			fmt.Printf("validate             FAILED\n%v\n", err)
			os.Exit(1)
		}
		fmt.Printf("validate             ok\n")
	}
	if hist {
		printHistogram(a)
	}
	if top > 0 {
		printStragglers(a, top)
	}
}

// printHistogram renders the Fig 10 time-gap distribution.
func printHistogram(a *telemetry.Analysis) {
	bins := a.GapHistogram()
	if len(bins) == 0 {
		fmt.Println("\nno multi-completion warp-groups: no gap histogram")
		return
	}
	total := 0
	maxCount := 0
	for _, b := range bins {
		total += b.Count
		if b.Count > maxCount {
			maxCount = b.Count
		}
	}
	fmt.Printf("\ndivergence-gap histogram (%d groups, p50 %.0f / p90 %.0f / p99 %.0f ticks):\n",
		total, a.GapPercentile(50), a.GapPercentile(90), a.GapPercentile(99))
	for i, b := range bins {
		label := fmt.Sprintf("[%d,%d)", b.Lo, b.Hi)
		if i == len(bins)-1 {
			label = fmt.Sprintf("[%d,+)", b.Lo)
		}
		bar := ""
		if maxCount > 0 {
			bar = strings.Repeat("#", b.Count*40/maxCount)
		}
		fmt.Printf("  %-16s %6d (%5.1f%%) %s\n",
			label, b.Count, 100*float64(b.Count)/float64(total), bar)
	}
}

// printStragglers details the k worst warp-groups with the DRAM command
// history of each of their requests — the per-group view of Fig 3.
func printStragglers(a *telemetry.Analysis, k int) {
	worst := a.Stragglers(k)
	if len(worst) == 0 {
		return
	}
	fmt.Printf("\ntop %d straggler warp-groups:\n", len(worst))
	for _, g := range worst {
		fmt.Printf("  %s: gap %d ticks, %d lines / %d sent, %d channels, issued @%d",
			g.ID, g.Gap(), g.Lines, g.Sent, g.Channels(), g.Issue)
		if g.Unblock >= 0 {
			fmt.Printf(", unblocked @%d", g.Unblock)
		}
		fmt.Println()
		for _, r := range g.Reqs {
			var hist []string
			hist = append(hist, fmt.Sprintf("enq @%d", r.Enq))
			if r.Deq >= 0 {
				hist = append(hist, fmt.Sprintf("deq @%d", r.Deq))
			}
			for _, t := range r.Acts {
				hist = append(hist, fmt.Sprintf("ACT @%d", t))
			}
			for _, t := range r.Bursts {
				hist = append(hist, fmt.Sprintf("RD @%d", t))
			}
			if r.Done >= 0 {
				hist = append(hist, fmt.Sprintf("done @%d", r.Done))
			}
			fmt.Printf("    req %-6d ch%d bank %-2d row %-5d  %s\n",
				r.ID, r.Channel, r.Bank, r.Row, strings.Join(hist, " > "))
		}
	}
}

// printIntervals renders the per-interval channel table.
func printIntervals(s *telemetry.Sampler) {
	rows := s.ChannelIntervals()
	if len(rows) == 0 {
		fmt.Println("\nno complete sampling interval (run shorter than -sample-every)")
		return
	}
	fmt.Println("\nper-interval channel activity:")
	tw := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "interval\tch\trdq\twrq\tacts\trd\twr\thit%\tbusy%\tdrains\t")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d-%d\t%d\t%d\t%d\t%d\t%d\t%d\t%.0f\t%.0f\t%d\t\n",
			r.Start, r.End, r.Channel, r.ReadQ, r.WriteQ,
			r.ACTs, r.RDBursts, r.WRBursts,
			100*r.RowHitRate, 100*r.BusyFrac, r.DrainsStarted)
	}
	tw.Flush()
}

func writeOutputs(evs []telemetry.Event, eventsPath, chromePath string) {
	if eventsPath != "" {
		writeFile(eventsPath, func(f *os.File) error {
			return telemetry.WriteJSONL(f, evs)
		})
	}
	if chromePath != "" {
		writeFile(chromePath, func(f *os.File) error {
			return telemetry.WriteChromeTrace(f, evs)
		})
	}
}

func writeCSVs(s *telemetry.Sampler, prefix string) {
	writeFile(prefix+".channels.csv", func(f *os.File) error {
		return telemetry.WriteChannelCSV(f, s.ChannelIntervals())
	})
	writeFile(prefix+".sms.csv", func(f *os.File) error {
		return telemetry.WriteSMCSV(f, s.SMIntervals())
	})
}

func writeFile(path string, emit func(f *os.File) error) {
	f, err := os.Create(path)
	if err != nil {
		fail(err)
	}
	if err := emit(f); err != nil {
		f.Close()
		fail(err)
	}
	if err := f.Close(); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "dlprof: wrote %s\n", path)
}
