// Command dlsim runs one (benchmark, scheduler) simulation and prints the
// run digest.
//
// Usage:
//
//	dlsim -bench bfs -sched wg-w [-scale 0.5] [-sms 30] [-warps 32]
//	      [-perfect] [-zerodiv] [-alpha 0.5] [-seed 1]
//	      [-engine event|dense|parallel|sampled] [-shards N]
//	      [-sample-window W] [-sample-ff F] [-sample-warmup U]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"dramlat"
)

func main() {
	bench := flag.String("bench", "bfs", "benchmark name (see -list)")
	sched := flag.String("sched", "gmc", "scheduler: fcfs|wafcfs|frfcfs|gmc|sbwas|wg|wg-m|wg-bw|wg-w")
	scale := flag.Float64("scale", 1.0, "work scale factor")
	sms := flag.Int("sms", 0, "override SM count (0 = Table II: 30)")
	warps := flag.Int("warps", 0, "override warps per SM (0 = Table II: 32)")
	seed := flag.Int64("seed", 1, "workload seed")
	alpha := flag.Float64("alpha", 0.5, "SBWAS alpha (0.25/0.5/0.75)")
	perfect := flag.Bool("perfect", false, "ideal: perfect coalescing (Fig 4)")
	zerodiv := flag.Bool("zerodiv", false, "ideal: zero latency divergence (Fig 4)")
	ablation := flag.String("ablation", "", "warp-aware ablation: count-score|no-orphan|no-credits")
	engine := flag.String("engine", "", "simulation engine: event (default), dense, parallel or sampled (approximate, with error bars)")
	shards := flag.Int("shards", 0, "parallel engine worker shards (0 = min(GOMAXPROCS, SMs))")
	sampleWindow := flag.Int64("sample-window", 0, "sampled engine: detailed measurement window cycles (0 = default)")
	sampleFF := flag.Int64("sample-ff", 0, "sampled engine: fast-forward cycles per region (0 = default)")
	sampleWarmup := flag.Int64("sample-warmup", 0, "sampled engine: detailed warm-up cycles after each jump (0 = default)")
	jsonOut := flag.Bool("json", false, "emit the full Results struct as JSON")
	list := flag.Bool("list", false, "list benchmarks and exit")
	flag.Parse()

	if *list {
		for _, b := range dramlat.Benchmarks() {
			kind := "regular"
			if b.Irregular {
				kind = "irregular"
			}
			fmt.Printf("%-14s %-12s %-9s %s\n", b.Name, b.Suite, kind, b.Desc)
		}
		return
	}

	spec := dramlat.RunSpec{
		Benchmark: *bench, Scheduler: *sched, Scale: *scale,
		SMs: *sms, WarpsPerSM: *warps, Seed: *seed,
		PerfectCoalescing: *perfect, ZeroDivergence: *zerodiv,
		SBWASAlpha: *alpha, Ablation: *ablation,
		Engine: *engine, Shards: *shards,
	}
	if *sampleWindow != 0 || *sampleFF != 0 || *sampleWarmup != 0 {
		spec.Sampled = dramlat.SampledOptions{
			WindowCycles:      *sampleWindow,
			FastForwardCycles: *sampleFF,
			WarmupCycles:      *sampleWarmup,
		}
	}
	res, err := dramlat.Run(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dlsim:", err)
		os.Exit(1)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintln(os.Stderr, "dlsim:", err)
			os.Exit(1)
		}
		return
	}
	s := res.Summary
	fmt.Printf("benchmark            %s\n", res.Workload)
	fmt.Printf("scheduler            %s\n", res.Scheduler)
	if res.Approximate && res.Sampling != nil {
		sp := res.Sampling
		fmt.Printf("APPROXIMATE          sampled engine: %d windows, %d detailed + %d modeled cycles\n",
			sp.Windows, sp.DetailedTicks, sp.ModeledTicks)
		fmt.Printf("95%% CI half-widths   IPC ±%.3f, gap p50 ±%.0f, p90 ±%.0f, p99 ±%.0f\n",
			sp.IPCErr, sp.GapP50Err, sp.GapP90Err, sp.GapP99Err)
	}
	fmt.Printf("kernel ticks         %d (%.1f us)\n", res.Ticks, float64(res.Ticks)*0.667e-3)
	fmt.Printf("instructions         %d\n", res.Instr)
	fmt.Printf("IPC                  %.3f\n", res.IPC)
	fmt.Printf("SM idle (all stall)  %.1f%%\n", res.SMIdleFrac*100)
	fmt.Printf("loads                %d (%.2f reqs/load, %.0f%% multi-request)\n",
		s.Loads, s.ReqsPerLoad, s.MultiReqFrac*100)
	fmt.Printf("MCs touched/warp     %.2f\n", s.AvgMCsTouched)
	fmt.Printf("effective latency    %.0f ticks (%.0f ns)\n", s.EffectiveLatency, s.EffectiveLatency*0.667)
	fmt.Printf("divergence gap       %.0f ticks (p50 %.0f, p90 %.0f, p99 %.0f)\n",
		s.DivergenceGap, res.GapP50, res.GapP90, res.GapP99)
	fmt.Printf("last/first latency   %.2fx\n", s.LastOverFirst)
	fmt.Printf("DRAM utilization     %.1f%%\n", res.Utilization*100)
	fmt.Printf("row hit rate         %.1f%%\n", res.RowHitRate*100)
	fmt.Printf("L1 / L2 hit rate     %.1f%% / %.1f%%\n", res.L1HitRate*100, res.L2HitRate*100)
	fmt.Printf("write fraction       %.1f%%\n", res.WriteFrac*100)
	fmt.Printf("write drains         %d\n", res.DrainsStarted)
	fmt.Printf("warp-aware detail    selected=%d coordSent=%d coordApplied=%d soleBlocker=%d merbFill=%d unitRush=%d\n",
		res.GroupsSelected, res.CoordMessages, res.CoordApplied, res.CoordSoleBlocker, res.MERBFillers, res.UnitRush)
	pw := dramlat.EstimatePower(res)
	fmt.Printf("GDDR5 power          %.0f mW (bg %.0f, act %.0f, rd %.0f, wr %.0f)\n",
		pw.TotalMW, pw.BackgroundMW, pw.ActPreMW, pw.ReadMW, pw.WriteMW)
}
