// Command dlwork is a fleet worker for the sweepd experiment service:
// it connects to a dlserve instance, claims queued specs under
// time-bounded leases, simulates them locally, and returns typed
// outcomes — scaling a sweep horizontally across machines without any
// scheduler beyond the server's own queue.
//
// Usage:
//
//	dlserve -addr :8080 -fleet-only
//	dlwork -server http://host:8080 -workers 8 &   # on each machine
//	dlsweep -server http://host:8080 -bench bfs -sched gmc,wg-w
//
// Fault model: a dlwork that dies mid-spec (crash, OOM, SIGKILL,
// partition) just stops heartbeating; the server re-queues its specs
// after the lease TTL and another worker picks them up. Reports stay
// byte-identical to local execution. dlwork exits 0 of its own accord
// when the server begins draining, and on SIGINT/SIGTERM finishes the
// specs it holds before exiting (a second signal kills it).
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"dramlat"
	"dramlat/internal/sweep"
	"dramlat/internal/sweepd/client"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "dlwork:", err)
	os.Exit(1)
}

func defaultCacheDir() string {
	if d, err := os.UserCacheDir(); err == nil {
		return d + "/dramlat/sweep"
	}
	return ".dramlat-sweep"
}

func main() {
	server := flag.String("server", "http://localhost:8080", "dlserve base URL")
	name := flag.String("name", "", "worker name reported to the server (default host-pid)")
	workers := flag.Int("workers", 0, "parallel simulations (0 = GOMAXPROCS)")
	cacheDir := flag.String("cache", defaultCacheDir(), "local result cache dir (private to this worker unless shared storage)")
	engine := flag.String("engine", "", "simulation engine: event (default), dense or parallel (sampled is rejected: the server's spec hashes must keep exact results)")
	shards := flag.Int("shards", 0, "parallel-engine worker count (0 = auto)")
	runTimeout := flag.Duration("timeout", 0, "per-run wall-clock budget (0 = none)")
	poll := flag.Duration("poll", 15*time.Second, "claim long-poll window")
	verbose := flag.Bool("v", false, "log every claim and outcome, not just lifecycle")
	flag.Parse()

	level := slog.LevelInfo
	if *verbose {
		level = slog.LevelDebug
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	cache, err := sweep.OpenCache(*cacheDir)
	if err != nil {
		fail(err)
	}
	eng := &sweep.Engine{Workers: 1, Cache: cache, RunTimeout: *runTimeout}
	if *engine == "sampled" {
		// Mutate runs after the claimed spec's hash fixed the cache key:
		// a sampled override would complete approximate Results under
		// exact hashes, poisoning both the local and the server cache.
		fail(fmt.Errorf("-engine sampled is not a valid worker-wide engine: sampled runs are requested per spec via the Sampled block"))
	}
	if *engine != "" || *shards != 0 {
		eng.Mutate = func(sp *dramlat.RunSpec) {
			sp.Engine = *engine
			sp.Shards = *shards
		}
	}

	n := *workers
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	w := &client.Worker{
		Remote:      &client.Remote{BaseURL: *server},
		Eng:         eng,
		Name:        *name,
		Concurrency: n,
		Poll:        *poll,
		Logger:      logger,
	}

	// First signal: stop claiming, finish held specs, exit. Second
	// signal: die immediately (the server re-queues our leases — that
	// is exactly the fault the fleet is built to absorb).
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		logger.Info("shutdown signal received; finishing held specs (signal again to abort)")
		cancel()
		<-sigs
		os.Exit(1)
	}()

	if err := w.Run(ctx); err != nil {
		fail(err)
	}
}
