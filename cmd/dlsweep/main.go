// Command dlsweep runs a declarative sweep grid over dramlat.RunSpec on
// the internal/sweep engine and emits the aggregate as JSON (default) or
// CSV. Grids come from flags or a JSON grid file; results are cached
// persistently, so interrupted or repeated sweeps resume instantly.
//
// Usage:
//
//	dlsweep -bench irregular -sched gmc,wg-w -seeds 1,2,3 -scale 0.25
//	dlsweep -grid grid.json -workers 8 -format csv -o results.csv
//	dlsweep -bench bfs,spmv -sched all -readq 16,32,64,128
//
// Benchmark shorthands: "irregular" (Table III suite), "regular"
// (§VI-A suite), "all". Scheduler shorthands: "wg" (the four warp-aware
// policies), "all".
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"

	"dramlat"
	"dramlat/internal/atomicio"
	"dramlat/internal/prof"
	"dramlat/internal/sweep"
	"dramlat/internal/sweepd/client"
)

// execer is the one surface dlsweep needs from an executor; both the
// local sweep.Engine and the sweepd client.Remote satisfy it, so
// -server swaps the backend without touching the report path.
type execer interface {
	RunContext(ctx context.Context, specs []dramlat.RunSpec) *sweep.Report
}

// stopProf flushes any active profiles before an error exit; main swaps
// in the real stopper once the profiling flags are parsed.
var stopProf = func() {}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "dlsweep:", err)
	stopProf()
	os.Exit(1)
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, p := range splitList(s) {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("bad int %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseInt64s(s string) ([]int64, error) {
	var out []int64
	for _, p := range splitList(s) {
		v, err := strconv.ParseInt(p, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad int %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, p := range splitList(s) {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("bad float %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

// expandBenches resolves the -bench shorthands.
func expandBenches(names []string) []string {
	var out []string
	for _, n := range names {
		switch n {
		case "irregular":
			out = append(out, dramlat.IrregularNames()...)
		case "regular":
			out = append(out, dramlat.RegularNames()...)
		case "all":
			out = append(out, dramlat.IrregularNames()...)
			out = append(out, dramlat.RegularNames()...)
		default:
			out = append(out, n)
		}
	}
	return out
}

// expandScheds resolves the -sched shorthands.
func expandScheds(names []string) []string {
	var out []string
	for _, n := range names {
		switch n {
		case "wg":
			out = append(out, dramlat.WarpAwareSchedulers()...)
		case "all":
			out = append(out, dramlat.Schedulers()...)
		default:
			out = append(out, n)
		}
	}
	return out
}

func main() {
	gridFile := flag.String("grid", "", "JSON grid description file (overrides the dimension flags)")
	bench := flag.String("bench", "", "benchmarks: comma list, or irregular/regular/all")
	sched := flag.String("sched", "gmc", "schedulers: comma list, wg (warp-aware four), or all")
	seeds := flag.String("seeds", "", "comma list of workload seeds")
	scales := flag.String("scale", "", "comma list of work scales")
	sms := flag.String("sms", "", "comma list of SM counts")
	warps := flag.String("warps", "", "comma list of warps/SM")
	readqs := flag.String("readq", "", "comma list of read-queue depths")
	cmdqs := flag.String("cmdq", "", "comma list of per-bank command-queue caps")
	alphas := flag.String("alpha", "", "comma list of SBWAS alphas")
	ablations := flag.String("ablation", "", "comma list of ablations (count-score,no-orphan,no-credits)")
	warpscheds := flag.String("warpsched", "", "comma list of SM warp schedulers (gto,lrr)")
	workers := flag.Int("workers", 0, "parallel simulations (0 = GOMAXPROCS)")
	server := flag.String("server", "", "run the sweep on a dlserve instance at this URL instead of locally")
	priority := flag.Int("priority", 0, "with -server: job priority (higher runs first)")
	engine := flag.String("engine", "", "simulation engine: event (default), dense, parallel (all exact, sharing cache entries) or sampled (approximate, with error bars, cached separately)")
	shards := flag.Int("shards", 0, "parallel-engine worker count (0 = min(GOMAXPROCS, cores, SMs))")
	sampleWindow := flag.Int64("sample-window", 0, "sampled engine: detailed measurement window cycles (0 = default)")
	sampleFF := flag.Int64("sample-ff", 0, "sampled engine: fast-forward cycles per region (0 = default)")
	sampleWarmup := flag.Int64("sample-warmup", 0, "sampled engine: detailed warm-up cycles after each jump (0 = default)")
	runTimeout := flag.Duration("timeout", 0, "per-run wall-clock budget (0 = none); overruns fail like any other spec")
	cacheDir := flag.String("cache", defaultCacheDir(), "persistent result cache dir (\"none\" disables)")
	format := flag.String("format", "json", "output format: json or csv")
	out := flag.String("o", "-", "output file (\"-\" = stdout)")
	quiet := flag.Bool("q", false, "suppress per-run progress on stderr")
	traceDir := flag.String("trace-dir", "", "write per-run telemetry artifacts into this dir (named by spec hash)")
	traceEvents := flag.Bool("trace-events", false, "with -trace-dir: record the event trace (JSONL)")
	traceCap := flag.Int("trace-cap", 0, "event ring capacity (0 = default)")
	sampleEvery := flag.Int64("sample-every", 0, "with -trace-dir: snapshot gauges every N ticks (CSV)")
	pf := prof.Register()
	flag.Parse()
	if err := pf.Start(); err != nil {
		fail(err)
	}
	stopProf = pf.Stop
	defer pf.Stop()

	if *format != "json" && *format != "csv" {
		fail(fmt.Errorf("unknown format %q", *format))
	}

	var g sweep.Grid
	if *gridFile != "" {
		f, err := os.Open(*gridFile)
		if err != nil {
			fail(err)
		}
		g, err = sweep.ParseGrid(f)
		f.Close()
		if err != nil {
			fail(err)
		}
	} else {
		var err error
		g.Benchmarks = expandBenches(splitList(*bench))
		g.Schedulers = expandScheds(splitList(*sched))
		if g.Seeds, err = parseInt64s(*seeds); err != nil {
			fail(err)
		}
		if g.Scales, err = parseFloats(*scales); err != nil {
			fail(err)
		}
		if g.SMs, err = parseInts(*sms); err != nil {
			fail(err)
		}
		if g.WarpsPerSM, err = parseInts(*warps); err != nil {
			fail(err)
		}
		if g.ReadQs, err = parseInts(*readqs); err != nil {
			fail(err)
		}
		if g.CmdQCaps, err = parseInts(*cmdqs); err != nil {
			fail(err)
		}
		if g.Alphas, err = parseFloats(*alphas); err != nil {
			fail(err)
		}
		g.Ablations = splitList(*ablations)
		g.WarpScheds = splitList(*warpscheds)
		if err = g.Validate(); err != nil {
			fail(err)
		}
	}

	var progress func(sweep.Event)
	if !*quiet {
		progress = func(ev sweep.Event) {
			sp := ev.Outcome.Spec.Canonical()
			state := "ran"
			if ev.Outcome.Cached {
				state = "hit"
			}
			if ev.Outcome.Err != nil {
				state = "FAIL"
			}
			fmt.Fprintf(os.Stderr, "  [%4d/%4d] %s %s/%s seed %d (eta %v)\n",
				ev.Done, ev.Total, state, sp.Benchmark, sp.Scheduler, sp.Seed, ev.ETA.Round(1e8))
		}
	}

	specs := g.Enumerate()
	sampled := *engine == "sampled" || *sampleWindow != 0 || *sampleFF != 0 || *sampleWarmup != 0
	if sampled {
		if *traceDir != "" {
			fail(fmt.Errorf("-engine sampled cannot be combined with -trace-dir: fast-forward regions are modeled and have no events to capture"))
		}
		// Materialize the hash-included Sampled block on every spec
		// before any hashing happens: it is what travels to a dlserve
		// instance (the Engine string is JSON-suppressed) and what keeps
		// approximate results in their own cache entries, never shared
		// with exact runs.
		opts := dramlat.SampledOptions{
			WindowCycles:      *sampleWindow,
			FastForwardCycles: *sampleFF,
			WarmupCycles:      *sampleWarmup,
		}
		if !opts.Enabled() {
			opts = dramlat.DefaultSampled()
		}
		for i := range specs {
			specs[i].Sampled = opts
		}
	}
	var ex execer
	var remote *client.Remote
	if *server != "" {
		// Thin-client mode: the sweep runs on a dlserve instance; its
		// cache, worker pool and engine selection apply. With -trace-dir
		// the server captures telemetry and the artifacts are downloaded
		// into the local dir after the run, byte-identical to a local
		// capture.
		remote = &client.Remote{BaseURL: *server, Priority: *priority, Progress: progress}
		if *traceDir != "" {
			if !*traceEvents && *sampleEvery <= 0 {
				fail(fmt.Errorf("-trace-dir needs -trace-events and/or -sample-every"))
			}
			remote.Telemetry = &dramlat.TelemetryOptions{
				Events: *traceEvents, EventCap: *traceCap, SampleEvery: *sampleEvery,
			}
		}
		ex = remote
		fmt.Fprintf(os.Stderr, "dlsweep: %d specs on %s\n", len(specs), *server)
	} else {
		var cache *sweep.Cache
		if *cacheDir != "" && *cacheDir != "none" {
			var err error
			if cache, err = sweep.OpenCache(*cacheDir); err != nil {
				fail(err)
			}
		}
		eng := &sweep.Engine{Workers: *workers, Cache: cache,
			RunTimeout: *runTimeout, Progress: progress}
		if *traceDir != "" {
			if !*traceEvents && *sampleEvery <= 0 {
				fail(fmt.Errorf("-trace-dir needs -trace-events and/or -sample-every"))
			}
			eng.TelemetryDir = *traceDir
			eng.Telemetry = dramlat.TelemetryOptions{
				Events: *traceEvents, EventCap: *traceCap, SampleEvery: *sampleEvery,
			}
		}
		for i := range specs {
			specs[i].Engine = *engine
			specs[i].Shards = *shards
		}
		nw := *workers
		if nw <= 0 {
			nw = runtime.GOMAXPROCS(0)
		}
		fmt.Fprintf(os.Stderr, "dlsweep: %d specs on %d workers (cache: %s)\n",
			len(specs), nw, cache.Dir())
		ex = eng
	}

	// First SIGINT/SIGTERM cancels the sweep: in-flight runs abort at
	// their next watchdog check, completed results are already in the
	// cache, and the partial report is still written below — so the same
	// command re-run resumes where it stopped. A second signal kills the
	// process the usual way.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	rep := ex.RunContext(ctx, specs)
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "dlsweep: interrupted — writing partial report (cached results are kept; re-run to resume)")
	}
	fmt.Fprintln(os.Stderr, "dlsweep:", rep.Summary())
	if remote != nil && *traceDir != "" {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			fail(err)
		}
		// Pull each successful spec's server-captured artifacts into the
		// local trace dir, mirroring the server's <hash>.<name> layout.
		seen := map[string]bool{}
		files := 0
		for _, o := range rep.Outcomes {
			if o.Err != nil || seen[o.Hash] {
				continue
			}
			seen[o.Hash] = true
			paths, err := remote.DownloadArtifacts(ctx, o.Hash, *traceDir)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dlsweep: artifacts for %s: %v\n", o.Hash, err)
				continue
			}
			files += len(paths)
		}
		fmt.Fprintf(os.Stderr, "dlsweep: downloaded %d artifact files into %s\n", files, *traceDir)
	}
	if err := pf.WriteBench(rep.Outcomes); err != nil {
		fail(err)
	}

	// Render into a buffer and commit in one step: an interrupt or error
	// mid-render leaves either the whole artifact or the previous one,
	// never a truncated file.
	w := atomicio.Create(*out)
	var err error
	switch *format {
	case "json":
		err = rep.WriteJSON(w)
	case "csv":
		err = rep.WriteCSV(w)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fail(err)
	}
	if err := w.Commit(); err != nil {
		fail(err)
	}

	if rep.Failed > 0 {
		for _, o := range rep.Failures() {
			if errors.Is(o.Err, context.Canceled) {
				continue // one "interrupted" line beats hundreds of these
			}
			sp := o.Spec.Canonical()
			fmt.Fprintf(os.Stderr, "dlsweep: FAILED %s/%s seed %d: %v\n",
				sp.Benchmark, sp.Scheduler, sp.Seed, o.Err)
		}
		pf.Stop()
		os.Exit(1)
	}
}

// defaultCacheDir mirrors cmd/dlbench so the two tools share a cache.
func defaultCacheDir() string {
	if d, err := os.UserCacheDir(); err == nil {
		return d + "/dramlat/sweep"
	}
	return ".dramlat-sweep"
}
