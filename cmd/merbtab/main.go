// Command merbtab prints Table I of the paper — the Minimum Efficient Row
// Burst values — computed from the GDDR5 timing model, plus the
// single-bank utilization curve of Section IV-D.
package main

import (
	"fmt"

	"dramlat"
)

func main() {
	t := dramlat.Timing()
	fmt.Println("Table I: MERB values for GDDR5 (banks with pending work -> bursts)")
	fmt.Printf("%-8s %s\n", "Banks", "MERB")
	tab := dramlat.MERBTable(16)
	for b := 1; b <= 5; b++ {
		fmt.Printf("%-8d %d\n", b, tab[b-1])
	}
	fmt.Printf("%-8s %d\n", "6-16", tab[5])
	fmt.Println()
	fmt.Println("Single-bank utilization (Section IV-D): util = 1.33n/(1.33n+25.33)")
	for _, n := range []int{2, 4, 8, 16, 31} {
		fmt.Printf("n=%-4d util=%.1f%%\n", n, t.SingleBankUtilization(n)*100)
	}
}
