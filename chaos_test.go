package dramlat

import (
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"dramlat/internal/guard/chaos"
)

// chaosSpec is the small machine the fault-injection tests run on.
func chaosSpec(sched string) RunSpec {
	return RunSpec{
		Benchmark: "bfs", Scheduler: sched,
		Scale: 0.05, SMs: 4, WarpsPerSM: 8,
		// Small budget so the watchdog trips within one or two of its
		// 64K-cycle checks instead of the default million.
		StallCycles: 20_000,
	}
}

// A partition that stops answering (the observable shape of a late
// NextWakeup contract violation) must trip the liveness watchdog on
// every scheduler under both engines — never hang, never run to the
// 50M-cycle default budget.
func TestChaosLateWakeupTripsWatchdog(t *testing.T) {
	for _, sched := range Schedulers() {
		for _, dense := range []bool{false, true} {
			name := sched + "/event"
			if dense {
				name = sched + "/dense"
			}
			t.Run(name, func(t *testing.T) {
				spec := chaosSpec(sched)
				spec.DenseLoop = dense
				spec.Chaos = &Faults{
					WakeTarget: chaos.TargetPartition, WakeIndex: 0, WakeAfter: 200,
				}
				_, err := Run(spec)
				if err == nil {
					t.Fatal("comatose partition went unnoticed")
				}
				var stall *StallError
				if !errors.As(err, &stall) {
					t.Fatalf("want *StallError, got %T: %v", err, err)
				}
				if stall.Kind != StallNoProgress {
					t.Fatalf("kind = %q, want %q (err: %v)", stall.Kind, StallNoProgress, err)
				}
				if stall.Dump.LiveWarps() == 0 {
					t.Fatal("stall dump shows no live warps despite the hang")
				}
				if s := stall.Dump.String(); !strings.Contains(s, "stall dump") {
					t.Fatalf("dump not rendered: %q", s)
				}
			})
		}
	}
}

// The same fault aimed at an SM: its warps never retire, so after the
// rest of the machine drains the progress vector flatlines.
func TestChaosLateSMWakeupTripsWatchdog(t *testing.T) {
	for _, dense := range []bool{false, true} {
		spec := chaosSpec("wg-w")
		spec.DenseLoop = dense
		spec.Chaos = &Faults{WakeTarget: chaos.TargetSM, WakeIndex: 1, WakeAfter: 200}
		_, err := Run(spec)
		var stall *StallError
		if !errors.As(err, &stall) {
			t.Fatalf("dense=%v: want *StallError, got %v", dense, err)
		}
		if stall.Kind != StallNoProgress {
			t.Fatalf("dense=%v: kind = %q", dense, stall.Kind)
		}
		// The dump must finger SM 1 as still holding live warps.
		var sm1Live int
		for _, s := range stall.Dump.SMs {
			if s.ID == 1 {
				sm1Live = s.LiveWarps
			}
		}
		if sm1Live == 0 {
			t.Fatalf("dense=%v: dump does not show the comatose SM's stranded warps", dense)
		}
	}
}

// A forced mid-run panic must come back as a *RunError carrying the
// spec hash, the run phase and the cycle — Run never panics.
func TestChaosForcedPanicRecovered(t *testing.T) {
	for _, dense := range []bool{false, true} {
		spec := chaosSpec("gmc")
		spec.DenseLoop = dense
		spec.Chaos = &Faults{PanicAtCycle: 500}
		_, err := Run(spec)
		if err == nil {
			t.Fatalf("dense=%v: forced panic vanished", dense)
		}
		var re *RunError
		if !errors.As(err, &re) {
			t.Fatalf("dense=%v: want *RunError, got %T: %v", dense, err, err)
		}
		if re.SpecHash != spec.Hash() {
			t.Fatalf("dense=%v: RunError hash %s != spec hash %s", dense, re.SpecHash, spec.Hash())
		}
		if re.Phase != "run" {
			t.Fatalf("dense=%v: phase %q", dense, re.Phase)
		}
		if re.Cycle < 500 {
			t.Fatalf("dense=%v: cycle %d before the armed tick", dense, re.Cycle)
		}
		if re.Stack == "" {
			t.Fatalf("dense=%v: no stack captured", dense)
		}
		if !strings.Contains(err.Error(), "panic") {
			t.Fatalf("dense=%v: error message hides the panic: %v", dense, err)
		}
	}
}

// hangingSpec is a run that would spin forever (comatose partition)
// with the no-progress check disabled, so only the knob under test can
// end it. A run that finishes before the first watchdog check never
// consults deadline or Stop — that is by design (the budget guards
// runaway runs, it does not race healthy ones) — hence the forced hang.
func hangingSpec(sched string) RunSpec {
	spec := chaosSpec(sched)
	spec.StallCycles = -1
	spec.Chaos = &Faults{WakeTarget: chaos.TargetPartition, WakeIndex: 0, WakeAfter: 200}
	return spec
}

// An already-expired wall-clock deadline aborts a hung run at the first
// watchdog check with partial results instead of spinning to MaxTicks.
func TestDeadlineAborts(t *testing.T) {
	spec := hangingSpec("gmc")
	spec.Deadline = time.Now().Add(-time.Second)
	res, err := Run(spec)
	var stall *StallError
	if !errors.As(err, &stall) {
		t.Fatalf("want *StallError, got %v", err)
	}
	if stall.Kind != StallDeadline {
		t.Fatalf("kind = %q", stall.Kind)
	}
	if res.Drained {
		t.Fatal("aborted run claims to have drained")
	}
}

// A closed Stop channel cancels the run the same way.
func TestStopChannelAborts(t *testing.T) {
	stop := make(chan struct{})
	close(stop)
	spec := hangingSpec("gmc")
	spec.Stop = stop
	_, err := Run(spec)
	var stall *StallError
	if !errors.As(err, &stall) {
		t.Fatalf("want *StallError, got %v", err)
	}
	if stall.Kind != StallStopped {
		t.Fatalf("kind = %q", stall.Kind)
	}
}

// Exhausting MaxCycles returns a typed cycle-budget StallError, and the
// partial Results at the cap are byte-identical across engines (the
// differential invariant holds for truncated runs too).
func TestMaxCyclesStallError(t *testing.T) {
	run := func(dense bool) (Results, *StallError) {
		spec := RunSpec{
			Benchmark: "bfs", Scheduler: "wg-w",
			Scale: 0.05, SMs: 4, WarpsPerSM: 8,
			MaxCycles: 500, DenseLoop: dense,
		}
		res, err := Run(spec)
		var stall *StallError
		if !errors.As(err, &stall) {
			t.Fatalf("dense=%v: want *StallError, got %v", dense, err)
		}
		return res, stall
	}
	eventRes, eventStall := run(false)
	denseRes, denseStall := run(true)
	if eventStall.Kind != StallCycleBudget || denseStall.Kind != StallCycleBudget {
		t.Fatalf("kinds = %q / %q", eventStall.Kind, denseStall.Kind)
	}
	if eventStall.Dump.LiveWarps() == 0 {
		t.Fatal("no live warps in the cycle-budget dump")
	}
	if !reflect.DeepEqual(eventRes, denseRes) {
		t.Fatalf("truncated results diverge\ndense: %+v\nevent: %+v", denseRes, eventRes)
	}
}

// Validation aggregates every bad field in one pass and never runs.
func TestRunSpecValidate(t *testing.T) {
	good := RunSpec{Benchmark: "bfs", Scheduler: "wg-w", Scale: 0.05, SMs: 2, WarpsPerSM: 4}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := RunSpec{Benchmark: "nope", Scheduler: "bogus", Scale: -1, ReadQ: -8}
	err := bad.Validate()
	var ve *ValidationError
	if !errors.As(err, &ve) {
		t.Fatalf("want *ValidationError, got %T: %v", err, err)
	}
	if len(ve.Fields) < 4 {
		t.Fatalf("expected >= 4 field errors, got %d: %v", len(ve.Fields), err)
	}
	fields := map[string]bool{}
	for _, f := range ve.Fields {
		fields[f.Field] = true
	}
	for _, want := range []string{"Benchmark", "Scheduler", "Scale", "ReadQ"} {
		if !fields[want] {
			t.Fatalf("field %s not reported in %v", want, err)
		}
	}
	// Run surfaces the same error without starting a simulation.
	if _, rerr := Run(bad); !errors.As(rerr, &ve) {
		t.Fatalf("Run did not return the validation error: %v", rerr)
	}
}
