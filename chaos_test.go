package dramlat

import (
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"dramlat/internal/guard/chaos"
)

// chaosSpec is the small machine the fault-injection tests run on.
func chaosSpec(sched string) RunSpec {
	return RunSpec{
		Benchmark: "bfs", Scheduler: sched,
		Scale: 0.05, SMs: 4, WarpsPerSM: 8,
		// Small budget so the watchdog trips within one or two of its
		// 64K-cycle checks instead of the default million.
		StallCycles: 20_000,
	}
}

// chaosEngines is every engine the fault-injection suite must cover.
var chaosEngines = []string{"event", "dense", "parallel"}

// A partition that stops answering (the observable shape of a late
// NextWakeup contract violation) must trip the liveness watchdog on
// every scheduler under every engine — never hang, never run to the
// 50M-cycle default budget.
func TestChaosLateWakeupTripsWatchdog(t *testing.T) {
	for _, sched := range Schedulers() {
		for _, engine := range chaosEngines {
			t.Run(sched+"/"+engine, func(t *testing.T) {
				spec := chaosSpec(sched)
				spec.Engine = engine
				spec.Chaos = &Faults{
					WakeTarget: chaos.TargetPartition, WakeIndex: 0, WakeAfter: 200,
				}
				_, err := Run(spec)
				if err == nil {
					t.Fatal("comatose partition went unnoticed")
				}
				var stall *StallError
				if !errors.As(err, &stall) {
					t.Fatalf("want *StallError, got %T: %v", err, err)
				}
				if stall.Kind != StallNoProgress {
					t.Fatalf("kind = %q, want %q (err: %v)", stall.Kind, StallNoProgress, err)
				}
				if stall.Dump.LiveWarps() == 0 {
					t.Fatal("stall dump shows no live warps despite the hang")
				}
				if s := stall.Dump.String(); !strings.Contains(s, "stall dump") {
					t.Fatalf("dump not rendered: %q", s)
				}
			})
		}
	}
}

// The same fault aimed at an SM: its warps never retire, so after the
// rest of the machine drains the progress vector flatlines.
func TestChaosLateSMWakeupTripsWatchdog(t *testing.T) {
	for _, engine := range chaosEngines {
		spec := chaosSpec("wg-w")
		spec.Engine = engine
		spec.Chaos = &Faults{WakeTarget: chaos.TargetSM, WakeIndex: 1, WakeAfter: 200}
		_, err := Run(spec)
		var stall *StallError
		if !errors.As(err, &stall) {
			t.Fatalf("engine=%s: want *StallError, got %v", engine, err)
		}
		if stall.Kind != StallNoProgress {
			t.Fatalf("engine=%s: kind = %q", engine, stall.Kind)
		}
		// The dump must finger SM 1 as still holding live warps.
		var sm1Live int
		for _, s := range stall.Dump.SMs {
			if s.ID == 1 {
				sm1Live = s.LiveWarps
			}
		}
		if sm1Live == 0 {
			t.Fatalf("engine=%s: dump does not show the comatose SM's stranded warps", engine)
		}
	}
}

// A forced mid-run panic must come back as a *RunError carrying the
// spec hash, the run phase and the cycle — Run never panics.
func TestChaosForcedPanicRecovered(t *testing.T) {
	for _, engine := range chaosEngines {
		spec := chaosSpec("gmc")
		spec.Engine = engine
		spec.Chaos = &Faults{PanicAtCycle: 500}
		_, err := Run(spec)
		if err == nil {
			t.Fatalf("engine=%s: forced panic vanished", engine)
		}
		var re *RunError
		if !errors.As(err, &re) {
			t.Fatalf("engine=%s: want *RunError, got %T: %v", engine, err, err)
		}
		if re.SpecHash != spec.Hash() {
			t.Fatalf("engine=%s: RunError hash %s != spec hash %s", engine, re.SpecHash, spec.Hash())
		}
		if re.Phase != "run" {
			t.Fatalf("engine=%s: phase %q", engine, re.Phase)
		}
		if re.Cycle < 500 {
			t.Fatalf("engine=%s: cycle %d before the armed tick", engine, re.Cycle)
		}
		if re.Stack == "" {
			t.Fatalf("engine=%s: no stack captured", engine)
		}
		if !strings.Contains(err.Error(), "panic") {
			t.Fatalf("engine=%s: error message hides the panic: %v", engine, err)
		}
	}
}

// hangingSpec is a run that would spin forever (comatose partition)
// with the no-progress check disabled, so only the knob under test can
// end it. A run that finishes before the first watchdog check never
// consults deadline or Stop — that is by design (the budget guards
// runaway runs, it does not race healthy ones) — hence the forced hang.
func hangingSpec(sched string) RunSpec {
	spec := chaosSpec(sched)
	spec.StallCycles = -1
	spec.Chaos = &Faults{WakeTarget: chaos.TargetPartition, WakeIndex: 0, WakeAfter: 200}
	return spec
}

// An already-expired wall-clock deadline aborts a hung run at the first
// watchdog check with partial results instead of spinning to MaxTicks.
func TestDeadlineAborts(t *testing.T) {
	spec := hangingSpec("gmc")
	spec.Deadline = time.Now().Add(-time.Second)
	res, err := Run(spec)
	var stall *StallError
	if !errors.As(err, &stall) {
		t.Fatalf("want *StallError, got %v", err)
	}
	if stall.Kind != StallDeadline {
		t.Fatalf("kind = %q", stall.Kind)
	}
	if res.Drained {
		t.Fatal("aborted run claims to have drained")
	}
}

// A closed Stop channel cancels the run the same way.
func TestStopChannelAborts(t *testing.T) {
	stop := make(chan struct{})
	close(stop)
	spec := hangingSpec("gmc")
	spec.Stop = stop
	_, err := Run(spec)
	var stall *StallError
	if !errors.As(err, &stall) {
		t.Fatalf("want *StallError, got %v", err)
	}
	if stall.Kind != StallStopped {
		t.Fatalf("kind = %q", stall.Kind)
	}
}

// Exhausting MaxCycles returns a typed cycle-budget StallError, and the
// partial Results at the cap are byte-identical across engines (the
// differential invariant holds for truncated runs too).
func TestMaxCyclesStallError(t *testing.T) {
	run := func(engine string) (Results, *StallError) {
		spec := RunSpec{
			Benchmark: "bfs", Scheduler: "wg-w",
			Scale: 0.05, SMs: 4, WarpsPerSM: 8,
			MaxCycles: 500, Engine: engine,
		}
		res, err := Run(spec)
		var stall *StallError
		if !errors.As(err, &stall) {
			t.Fatalf("engine=%s: want *StallError, got %v", engine, err)
		}
		return res, stall
	}
	eventRes, eventStall := run("event")
	if eventStall.Kind != StallCycleBudget {
		t.Fatalf("kind = %q", eventStall.Kind)
	}
	if eventStall.Dump.LiveWarps() == 0 {
		t.Fatal("no live warps in the cycle-budget dump")
	}
	for _, engine := range chaosEngines[1:] {
		res, stall := run(engine)
		if stall.Kind != StallCycleBudget {
			t.Fatalf("engine=%s: kind = %q", engine, stall.Kind)
		}
		if !reflect.DeepEqual(eventRes, res) {
			t.Fatalf("truncated results diverge\nevent: %+v\n%s: %+v", eventRes, engine, res)
		}
	}
}

// Validation aggregates every bad field in one pass and never runs.
func TestRunSpecValidate(t *testing.T) {
	good := RunSpec{Benchmark: "bfs", Scheduler: "wg-w", Scale: 0.05, SMs: 2, WarpsPerSM: 4}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := RunSpec{Benchmark: "nope", Scheduler: "bogus", Scale: -1, ReadQ: -8}
	err := bad.Validate()
	var ve *ValidationError
	if !errors.As(err, &ve) {
		t.Fatalf("want *ValidationError, got %T: %v", err, err)
	}
	if len(ve.Fields) < 4 {
		t.Fatalf("expected >= 4 field errors, got %d: %v", len(ve.Fields), err)
	}
	fields := map[string]bool{}
	for _, f := range ve.Fields {
		fields[f.Field] = true
	}
	for _, want := range []string{"Benchmark", "Scheduler", "Scale", "ReadQ"} {
		if !fields[want] {
			t.Fatalf("field %s not reported in %v", want, err)
		}
	}
	// Run surfaces the same error without starting a simulation.
	if _, rerr := Run(bad); !errors.As(rerr, &ve) {
		t.Fatalf("Run did not return the validation error: %v", rerr)
	}
}
