package dramlat

import (
	"errors"
	"reflect"
	"testing"
)

// exactTinySpec is the small machine the cache-safety and determinism
// tests run on: fast enough to execute many variants, big enough that
// a wrong engine or knob would visibly change the numbers.
func exactTinySpec() RunSpec {
	return RunSpec{
		Benchmark: "spmv", Scheduler: "gmc",
		Scale: 4, SMs: 4, WarpsPerSM: 8, Seed: 3,
	}
}

// sampledTinySpec is exactTinySpec under the sampled engine with small
// windows, so the run goes through several measure/jump regions even on
// a short kernel.
func sampledTinySpec() RunSpec {
	s := exactTinySpec()
	s.Sampled = SampledOptions{
		WindowCycles: 2000, FastForwardCycles: 8000, WarmupCycles: 1000,
	}
	return s
}

// The result cache is keyed on RunSpec.Hash(), so every hash-excluded
// knob MUST be results-neutral: if one of them changed the numbers, a
// run with the knob set would poison the cache entry every other run
// shares. This pins the exclusion set as an enforced contract rather
// than a convention — each variant must keep both the hash and the
// Results of the baseline, byte for byte.
func TestHashExcludedKnobsAreResultNeutral(t *testing.T) {
	base := exactTinySpec()
	want, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	wantHash := base.Hash()

	variants := []struct {
		name string
		mut  func(*RunSpec)
	}{
		{"engine-event", func(s *RunSpec) { s.Engine = "event" }},
		{"engine-dense", func(s *RunSpec) { s.Engine = "dense" }},
		{"engine-parallel", func(s *RunSpec) { s.Engine = "parallel" }},
		{"shards", func(s *RunSpec) { s.Engine = "parallel"; s.Shards = 3 }},
		{"dense-loop", func(s *RunSpec) { s.DenseLoop = true }},
		{"max-cycles-sufficient", func(s *RunSpec) { s.MaxCycles = 100_000_000 }},
		{"stall-cycles", func(s *RunSpec) { s.StallCycles = 5_000_000 }},
		{"telemetry", func(s *RunSpec) { s.Telemetry = TelemetryOptions{Events: true, EventCap: 64} }},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			spec := exactTinySpec()
			v.mut(&spec)
			if h := spec.Hash(); h != wantHash {
				t.Fatalf("hash-excluded knob changed the hash: %s != %s", h, wantHash)
			}
			got, err := Run(spec)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("hash-excluded knob changed Results:\n got %+v\nwant %+v", got, want)
			}
		})
	}
}

// The Sampled block is the one engine-selection surface that IS
// hash-included: approximate results must never share a cache entry
// with exact ones, or with sampled runs at different window parameters.
func TestSampledBlockIsHashIncluded(t *testing.T) {
	exact := exactTinySpec()
	sampled := sampledTinySpec()
	if exact.Hash() == sampled.Hash() {
		t.Fatal("sampled spec hashes like the exact spec: approximate results would poison the exact cache entry")
	}

	// Engine="sampled" with no block and an explicit default block are
	// the same simulation, so they must share a hash (and cache entry).
	viaEngine := exactTinySpec()
	viaEngine.Engine = "sampled"
	viaBlock := exactTinySpec()
	viaBlock.Sampled = DefaultSampled()
	if viaEngine.Hash() != viaBlock.Hash() {
		t.Fatalf("Engine=sampled (%s) and explicit default Sampled block (%s) hash differently",
			viaEngine.Hash(), viaBlock.Hash())
	}
	if viaEngine.Hash() == exact.Hash() {
		t.Fatal("Engine=sampled shares the exact spec's hash")
	}

	// Different window parameters are different statistical models.
	other := sampledTinySpec()
	other.Sampled.WindowCycles *= 2
	if other.Hash() == sampled.Hash() {
		t.Fatal("different WindowCycles share a hash")
	}
}

// A sampled run must be deterministic: the per-region RNG streams are
// keyed on (spec hash, seed, window index), so the same spec run twice
// — in any process, on any worker — produces byte-identical Results.
func TestSampledRunDeterministic(t *testing.T) {
	spec := sampledTinySpec()
	a, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Approximate {
		t.Fatal("sampled run did not set Approximate")
	}
	if a.Sampling == nil || a.Sampling.Windows < 1 {
		t.Fatalf("sampled run reports no sampling stats: %+v", a.Sampling)
	}
	if a.Sampling.ModeledTicks <= 0 {
		t.Fatal("sampled run modeled no cycles — the fast-forward never engaged")
	}
	b, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("sampled run is nondeterministic:\n a %+v\n b %+v", a, b)
	}
}

// Exact engines must never report approximate results.
func TestExactEnginesAreNotApproximate(t *testing.T) {
	for _, engine := range []string{"", "dense", "parallel"} {
		spec := exactTinySpec()
		spec.Engine = engine
		res, err := Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		if res.Approximate || res.Sampling != nil {
			t.Fatalf("engine %q reported approximate results", engine)
		}
	}
}

// Golden drift cases: chaos injection biases the sampled engine's
// calibrated model (SampleDrift scales every synthesized divergence
// gap), forcing the run outside its error contract. The distributional
// validator must catch it with a typed *AccuracyError naming the
// drifted metric and the violated bound — and the same spec without
// the fault must pass, so the gate is detecting the drift, not noise.
func TestChaosSampleDriftTripsAccuracyGate(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale exact reference run")
	}
	spec := RunSpec{Benchmark: "spmv", Scheduler: "gmc"}
	exact, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}

	clean := spec
	clean.Engine = "sampled"
	cleanRes, err := Run(clean)
	if err != nil {
		t.Fatal(err)
	}
	if err := CompareSampled(cleanRes, exact, DefaultBounds()); err != nil {
		t.Fatalf("drift-free sampled run outside bounds: %v", err)
	}

	for _, drift := range []float64{2.5, 0.25} {
		spec := clean
		spec.Chaos = &Faults{SampleDrift: drift}
		res, err := Run(spec)
		if err != nil {
			t.Fatalf("drift %.2f: run failed: %v", drift, err)
		}
		err = CompareSampled(res, exact, DefaultBounds())
		if err == nil {
			t.Fatalf("drift %.2f stayed inside bounds: gate cannot see model bias", drift)
		}
		var acc *AccuracyError
		if !errors.As(err, &acc) {
			t.Fatalf("drift %.2f: want *AccuracyError, got %T: %v", drift, err, err)
		}
		if acc.Metric == "" || acc.Bound <= 0 {
			t.Fatalf("drift %.2f: error carries no metric/bound: %+v", drift, acc)
		}
	}
}

// TestSampledAccuracyGate is the CI accuracy gate: for every scheduler,
// a sampled run at default window parameters must land within
// DefaultBounds of the exact event-engine reference on IPC and the
// p50/p90/p99 divergence-gap percentiles. A regression in the
// statistical model (calibration, drain compensation, dispersion
// preservation) fails here before it can mislead a sweep.
func TestSampledAccuracyGate(t *testing.T) {
	if testing.Short() {
		t.Skip("runs exact+sampled at full scale for every scheduler")
	}
	for _, sched := range Schedulers() {
		t.Run(sched, func(t *testing.T) {
			spec := RunSpec{Benchmark: "spmv", Scheduler: sched}
			exact, err := Run(spec)
			if err != nil {
				t.Fatal(err)
			}
			spec.Engine = "sampled"
			sampled, err := Run(spec)
			if err != nil {
				t.Fatal(err)
			}
			if !sampled.Approximate {
				t.Fatal("sampled run did not set Approximate")
			}
			if err := CompareSampled(sampled, exact, DefaultBounds()); err != nil {
				t.Fatal(err)
			}
		})
	}
}
