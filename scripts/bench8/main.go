// Command bench8 measures the data-oriented hot-path core (PR 8) and
// emits BENCH_8.json: single-thread ticks-per-second and allocations per
// run for bfs/spmv/cfd under all three engines (dense, event, parallel).
// Dense and event are timed at GOMAXPROCS=1 — they are the single-thread
// trajectory; the parallel engine is timed at the host's GOMAXPROCS and
// is only a parallel-speedup measurement when the host actually has the
// cores (see the caveat field).
//
// Run it twice to build a before/after record: once on the old tree with
// -o before.json, then on the new tree with -baseline before.json, which
// embeds the old numbers next to the new ones and computes the
// improvement ratios per cell. Workload construction is excluded from
// all timings; each cell is timed over -reps alternating runs and the
// minimum wall time is reported. Allocations are a runtime.MemStats
// Mallocs delta around a dedicated (untimed) run.
//
// Usage:
//
//	go run ./scripts/bench8 [-o BENCH_8.json] [-baseline before.json]
//	    [-reps 3] [-scale 0.1] [-sched wg-w]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"dramlat/internal/gpu"
	"dramlat/internal/workload"
)

// Cell is one benchmark x engine measurement.
type Cell struct {
	Benchmark string  `json:"benchmark"`
	Engine    string  `json:"engine"`
	GOMAXPROC int     `json:"gomaxprocs"`
	Ticks     int64   `json:"ticks"`
	WallNS    int64   `json:"wall_ns"`
	TicksPS   float64 `json:"ticks_per_sec"`
	AllocsRun uint64  `json:"allocs_per_run"`

	// Before/after deltas, present when -baseline is given and the
	// baseline file has a matching cell.
	BaseTicksPS   float64 `json:"baseline_ticks_per_sec,omitempty"`
	BaseAllocsRun uint64  `json:"baseline_allocs_per_run,omitempty"`
	SpeedupX      float64 `json:"speedup_vs_baseline,omitempty"`
	AllocsRatio   float64 `json:"allocs_vs_baseline,omitempty"`
}

// Report wraps the matrix with the host context needed to interpret it.
type Report struct {
	HostCores int     `json:"host_cores"`
	Reps      int     `json:"reps"`
	Scale     float64 `json:"scale"`
	Scheduler string  `json:"scheduler"`
	SMs       int     `json:"sms"`
	WarpsPT   int     `json:"warps_per_sm"`
	// Caveat is set when the host cannot actually schedule the maximum
	// GOMAXPROCS used by any cell: parallel-engine numbers then measure
	// barrier overhead, not a speedup. Single-thread cells are unaffected.
	Caveat string `json:"caveat,omitempty"`
	Cells  []Cell `json:"cells"`
}

const warpsPerSM = 32

func fail(err error) {
	fmt.Fprintln(os.Stderr, "bench8:", err)
	os.Exit(1)
}

func build(bench string, sms int, scale float64) gpu.Workload {
	p := workload.DefaultParams()
	p.Scale = scale
	p.NumSMs = sms
	p.WarpsPerSM = warpsPerSM
	b, err := workload.ByName(bench)
	if err != nil {
		fail(err)
	}
	return b.Build(p)
}

func run(bench, sched, engine string, sms int, w gpu.Workload) (gpu.Results, time.Duration) {
	cfg := gpu.DefaultConfig()
	cfg.Scheduler = sched
	cfg.NumSMs = sms
	cfg.WarpsPerSM = warpsPerSM
	cfg.Engine = engine
	sys, err := gpu.NewSystem(cfg, w)
	if err != nil {
		fail(err)
	}
	start := time.Now()
	res, err := sys.Run()
	if err != nil {
		fail(err)
	}
	return res, time.Since(start)
}

// allocsPerRun measures the Mallocs delta of one full run (construction
// included: NewSystem's fixed setup cost is identical before and after,
// so the delta between trees is the steady-state story).
func allocsPerRun(bench, sched, engine string, sms int, w gpu.Workload) uint64 {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	run(bench, sched, engine, sms, w)
	runtime.ReadMemStats(&after)
	return after.Mallocs - before.Mallocs
}

func main() {
	out := flag.String("o", "BENCH_8.json", "output file (\"-\" = stdout)")
	baseline := flag.String("baseline", "", "prior bench8 JSON to diff against")
	reps := flag.Int("reps", 3, "timed repetitions per cell (minimum is reported)")
	scale := flag.Float64("scale", 0.1, "workload scale")
	sched := flag.String("sched", "wg-w", "transaction scheduler")
	sms := flag.Int("sms", 30, "streaming multiprocessors")
	flag.Parse()

	var base *Report
	if *baseline != "" {
		data, err := os.ReadFile(*baseline)
		if err != nil {
			fail(err)
		}
		base = &Report{}
		if err := json.Unmarshal(data, base); err != nil {
			fail(err)
		}
	}
	baseCell := func(bench, engine string) *Cell {
		if base == nil {
			return nil
		}
		for i := range base.Cells {
			c := &base.Cells[i]
			if c.Benchmark == bench && c.Engine == engine {
				return c
			}
		}
		return nil
	}

	hostCores := runtime.NumCPU()
	origProcs := runtime.GOMAXPROCS(0)
	rep := Report{
		HostCores: hostCores, Reps: *reps, Scale: *scale,
		Scheduler: *sched, SMs: *sms, WarpsPT: warpsPerSM,
	}
	maxProcs := 1
	for _, bench := range []string{"bfs", "spmv", "cfd"} {
		w := build(bench, *sms, *scale)
		for _, engine := range []string{gpu.EngineDense, gpu.EngineEvent, gpu.EngineParallel} {
			procs := 1
			if engine == gpu.EngineParallel {
				procs = origProcs
			}
			if procs > maxProcs {
				maxProcs = procs
			}
			runtime.GOMAXPROCS(procs)
			var minDT time.Duration
			var res gpu.Results
			for r := 0; r < *reps; r++ {
				rr, dt := run(bench, *sched, engine, *sms, w)
				if r == 0 || dt < minDT {
					minDT = dt
				}
				res = rr
			}
			allocs := allocsPerRun(bench, *sched, engine, *sms, w)
			runtime.GOMAXPROCS(origProcs)
			c := Cell{
				Benchmark: bench, Engine: engine, GOMAXPROC: procs,
				Ticks: res.Ticks, WallNS: minDT.Nanoseconds(),
				TicksPS:   float64(res.Ticks) / minDT.Seconds(),
				AllocsRun: allocs,
			}
			if bc := baseCell(bench, engine); bc != nil {
				c.BaseTicksPS = bc.TicksPS
				c.BaseAllocsRun = bc.AllocsRun
				if bc.TicksPS > 0 {
					c.SpeedupX = c.TicksPS / bc.TicksPS
				}
				if bc.AllocsRun > 0 {
					c.AllocsRatio = float64(c.AllocsRun) / float64(bc.AllocsRun)
				}
			}
			rep.Cells = append(rep.Cells, c)
			extra := ""
			if c.SpeedupX > 0 {
				extra = fmt.Sprintf(" %5.2fx ticks/s, %.2fx allocs vs baseline", c.SpeedupX, c.AllocsRatio)
			}
			fmt.Fprintf(os.Stderr, "%-5s %-9s procs=%d ticks=%-9d wall=%-10s %12.0f ticks/s allocs=%-9d%s\n",
				bench, engine, procs, c.Ticks, minDT.Round(time.Microsecond), c.TicksPS, c.AllocsRun, extra)
		}
	}
	if hostCores < maxProcs {
		rep.Caveat = fmt.Sprintf(
			"host has %d core(s) but cells were run at GOMAXPROCS up to %d: parallel-engine numbers measure barrier overhead on an oversubscribed host, NOT a parallel speedup; only the single-thread (gomaxprocs=1) cells are trustworthy",
			hostCores, maxProcs)
		fmt.Fprintln(os.Stderr, "bench8: WARNING:", rep.Caveat)
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fail(err)
	}
}
