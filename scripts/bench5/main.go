// Command bench5 measures the epoch-parallel engine (PR 5) against the
// serial event engine and emits BENCH_5.json: wall-clock ns, simulated
// ticks/sec and speedup per benchmark x scheduler x SM-count, each at
// GOMAXPROCS 1, 2, 4 and 8. Workload construction is excluded from the
// timings; each configuration is timed over -reps alternating runs and
// the minimum wall time is reported. Every parallel run is checked
// byte-identical to its serial reference before timing is trusted.
//
// The matrix pairs the paper's 30-SM machine with a 120-SM full-occupancy
// scale-up: with 120 SM shards and six memory partitions there is enough
// per-phase work for the contiguous shards to fill eight cores. The
// report records host_cores because the speedup column is only
// meaningful when the host can actually schedule GOMAXPROCS threads:
// on a single-core host the spin barriers degrade to Gosched handoffs
// and the parallel engine runs at serial speed (see EXPERIMENTS.md).
//
// Usage:
//
//	go run ./scripts/bench5 [-o BENCH_5.json] [-reps 3] [-scale 0.1]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"time"

	"dramlat/internal/gpu"
	"dramlat/internal/workload"
)

// ProcsResult is one GOMAXPROCS point of a matrix cell. Workers is the
// worker count the engine actually resolves: min(GOMAXPROCS, host cores,
// SMs) — on a host with fewer cores than the requested GOMAXPROCS the
// engine refuses to oversubscribe, so the speedup column saturates at
// the hardware, not at the request.
type ProcsResult struct {
	GOMAXPROCS int     `json:"gomaxprocs"`
	Workers    int     `json:"workers"`
	ParallelNS int64   `json:"parallel_ns"`
	TicksPS    float64 `json:"parallel_ticks_per_sec"`
	Speedup    float64 `json:"speedup_vs_serial"`
}

// Entry is one benchmark x scheduler x SM-count cell of BENCH_5.json.
type Entry struct {
	Benchmark string  `json:"benchmark"`
	Scheduler string  `json:"scheduler"`
	SMs       int     `json:"sms"`
	WarpsPT   int     `json:"warps_per_sm"`
	Scale     float64 `json:"scale"`
	Ticks     int64   `json:"ticks"`

	SerialNS      int64         `json:"serial_ns"`
	SerialTicksPS float64       `json:"serial_ticks_per_sec"`
	Procs         []ProcsResult `json:"procs"`
}

// Report wraps the matrix with the host context needed to interpret it.
type Report struct {
	HostCores int `json:"host_cores"`
	Reps      int `json:"reps"`
	// Caveat is set when the host cannot actually schedule the largest
	// GOMAXPROCS point of the sweep: those cells then measure barrier
	// overhead on an oversubscribed host, not a parallel speedup.
	Caveat     string  `json:"caveat,omitempty"`
	BestSpeed  float64 `json:"best_speedup"`
	BestConfig string  `json:"best_speedup_config"`
	Entries    []Entry `json:"entries"`
}

type cell struct {
	bench, sched string
	sms          int
}

func matrix() []cell {
	var cells []cell
	for _, b := range []string{"bfs", "spmv", "cfd"} {
		for _, s := range []string{"gmc", "wg-w"} {
			// The paper's 30-SM machine, then the full-occupancy 120-SM
			// scale-up where sharding has enough work per phase to pay.
			cells = append(cells, cell{b, s, 30})
			cells = append(cells, cell{b, s, 120})
		}
	}
	return cells
}

const warpsPerSM = 32

func fail(err error) {
	fmt.Fprintln(os.Stderr, "bench5:", err)
	os.Exit(1)
}

// build constructs the workload once per cell; construction is identical
// for both engines and excluded from all timings.
func build(c cell, scale float64) gpu.Workload {
	p := workload.DefaultParams()
	p.Scale = scale
	p.NumSMs = c.sms
	p.WarpsPerSM = warpsPerSM
	b, err := workload.ByName(c.bench)
	if err != nil {
		fail(err)
	}
	return b.Build(p)
}

func run(c cell, w gpu.Workload, engine string) (gpu.Results, time.Duration) {
	cfg := gpu.DefaultConfig()
	cfg.Scheduler = c.sched
	cfg.NumSMs = c.sms
	cfg.WarpsPerSM = warpsPerSM
	cfg.Engine = engine
	sys, err := gpu.NewSystem(cfg, w)
	if err != nil {
		fail(err)
	}
	start := time.Now()
	res, err := sys.Run()
	if err != nil {
		fail(err)
	}
	return res, time.Since(start)
}

func main() {
	out := flag.String("o", "BENCH_5.json", "output file (\"-\" = stdout)")
	reps := flag.Int("reps", 3, "timed repetitions per point (minimum is reported)")
	scale := flag.Float64("scale", 0.1, "workload scale")
	flag.Parse()

	hostCores := runtime.NumCPU()
	origProcs := runtime.GOMAXPROCS(0)
	procsPoints := []int{1, 2, 4, 8}

	rep := Report{HostCores: hostCores, Reps: *reps}
	for _, c := range matrix() {
		w := build(c, *scale)

		var serialMin time.Duration
		var serialRes gpu.Results
		for r := 0; r < *reps; r++ {
			res, dt := run(c, w, gpu.EngineEvent)
			if r == 0 || dt < serialMin {
				serialMin = dt
			}
			serialRes = res
		}
		e := Entry{
			Benchmark: c.bench, Scheduler: c.sched,
			SMs: c.sms, WarpsPT: warpsPerSM, Scale: *scale,
			Ticks:    serialRes.Ticks,
			SerialNS: serialMin.Nanoseconds(),
			SerialTicksPS: float64(serialRes.Ticks) /
				serialMin.Seconds(),
		}

		for _, procs := range procsPoints {
			runtime.GOMAXPROCS(procs)
			var parMin time.Duration
			for r := 0; r < *reps; r++ {
				res, dt := run(c, w, gpu.EngineParallel)
				if !reflect.DeepEqual(serialRes, res) {
					runtime.GOMAXPROCS(origProcs)
					fail(fmt.Errorf("%s/%s sms=%d procs=%d: parallel results diverge from serial",
						c.bench, c.sched, c.sms, procs))
				}
				if r == 0 || dt < parMin {
					parMin = dt
				}
			}
			runtime.GOMAXPROCS(origProcs)
			workers := procs
			if workers > hostCores {
				workers = hostCores
			}
			if workers > c.sms {
				workers = c.sms
			}
			pr := ProcsResult{
				GOMAXPROCS: procs,
				Workers:    workers,
				ParallelNS: parMin.Nanoseconds(),
				TicksPS:    float64(serialRes.Ticks) / parMin.Seconds(),
				Speedup:    float64(serialMin) / float64(parMin),
			}
			e.Procs = append(e.Procs, pr)
			if pr.Speedup > rep.BestSpeed {
				rep.BestSpeed = pr.Speedup
				rep.BestConfig = fmt.Sprintf("%s/%s sms=%d procs=%d",
					c.bench, c.sched, c.sms, procs)
			}
			fmt.Fprintf(os.Stderr, "%-6s %-6s sms=%-4d procs=%d ticks=%-9d serial=%-10s parallel=%-10s %5.2fx\n",
				c.bench, c.sched, c.sms, procs, e.Ticks,
				serialMin.Round(time.Microsecond), parMin.Round(time.Microsecond), pr.Speedup)
		}
		rep.Entries = append(rep.Entries, e)
	}

	maxProcs := procsPoints[len(procsPoints)-1]
	if hostCores < maxProcs {
		rep.Caveat = fmt.Sprintf(
			"host has %d core(s) but the sweep runs GOMAXPROCS up to %d: oversubscribed points measure barrier overhead, NOT a parallel speedup; only points with gomaxprocs <= %d are trustworthy",
			hostCores, maxProcs, hostCores)
		fmt.Fprintln(os.Stderr, "bench5: WARNING:", rep.Caveat)
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fail(err)
	}
}
