// Command bench10 measures the sampled engine (PR 10) and emits
// BENCH_10.json: for bfs/spmv/cfd it times the exact event engine and
// the interval-sampling engine on the same spec, reports
// simulated-ticks-per-second for both, the sampled/event throughput
// ratio, and the sampled run's accuracy against the exact reference
// (IPC and divergence-gap percentile deviations, checked against
// dramlat.DefaultBounds). A final low-occupancy row runs spmv at a
// larger scale with a long fast-forward, where the modeled fraction —
// and with it the speedup — is highest.
//
// All timings are single-threaded measurements of simulation
// throughput; host_cores records the machine so a reader knows what
// the wall clocks mean. Workload construction is excluded from every
// timing; each engine is timed over -reps runs and the minimum wall
// time is reported.
//
// Usage:
//
//	go run ./scripts/bench10 [-o BENCH_10.json] [-reps 2] [-sched gmc]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"dramlat"
)

// Cell is one benchmark's exact-vs-sampled comparison.
type Cell struct {
	Benchmark string  `json:"benchmark"`
	Scale     float64 `json:"scale"`

	// Sampled-engine window parameters (cycles).
	WindowCycles      int64 `json:"window_cycles"`
	FastForwardCycles int64 `json:"fast_forward_cycles"`
	WarmupCycles      int64 `json:"warmup_cycles"`

	// Throughput: simulated kernel ticks per wall-clock second.
	EventTicks     int64   `json:"event_ticks"`
	EventWallNS    int64   `json:"event_wall_ns"`
	EventTicksPS   float64 `json:"event_ticks_per_sec"`
	SampledTicks   int64   `json:"sampled_ticks"`
	SampledWallNS  int64   `json:"sampled_wall_ns"`
	SampledTicksPS float64 `json:"sampled_ticks_per_sec"`
	SpeedupX       float64 `json:"speedup_vs_event"`

	// Coverage: how much of the sampled run was full fidelity.
	Windows       int   `json:"windows"`
	DetailedTicks int64 `json:"detailed_ticks"`
	ModeledTicks  int64 `json:"modeled_ticks"`

	// Accuracy against the exact reference.
	IPCExact     float64 `json:"ipc_exact"`
	IPCSampled   float64 `json:"ipc_sampled"`
	GapP50Exact  float64 `json:"gap_p50_exact"`
	GapP50Samp   float64 `json:"gap_p50_sampled"`
	GapP90Exact  float64 `json:"gap_p90_exact"`
	GapP90Samp   float64 `json:"gap_p90_sampled"`
	GapP99Exact  float64 `json:"gap_p99_exact"`
	GapP99Samp   float64 `json:"gap_p99_sampled"`
	WithinBounds bool    `json:"within_bounds"`
	Violation    string  `json:"violation,omitempty"`
}

// Report wraps the matrix with the host context needed to interpret it.
type Report struct {
	// HostCores caveats every wall-clock number: both engines are timed
	// single-threaded, but a loaded or throttled host still skews the
	// absolute ticks-per-second (the speedup ratio is robust to that).
	HostCores int    `json:"host_cores"`
	Reps      int    `json:"reps"`
	Scheduler string `json:"scheduler"`
	Cells     []Cell `json:"cells"`
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "bench10:", err)
	os.Exit(1)
}

// timeRun times reps executions of spec and returns the results of the
// last run with the minimum wall time.
func timeRun(spec dramlat.RunSpec, reps int) (dramlat.Results, time.Duration) {
	var best time.Duration
	var res dramlat.Results
	for i := 0; i < reps; i++ {
		start := time.Now()
		r, err := dramlat.Run(spec)
		wall := time.Since(start)
		if err != nil {
			fail(err)
		}
		if best == 0 || wall < best {
			best, res = wall, r
		}
	}
	return res, best
}

func main() {
	out := flag.String("o", "BENCH_10.json", "output file (\"-\" = stdout)")
	reps := flag.Int("reps", 2, "timed repetitions per cell (minimum wall time wins)")
	sched := flag.String("sched", "gmc", "memory scheduler for every cell")
	flag.Parse()

	type config struct {
		bench string
		scale float64
		opts  dramlat.SampledOptions
	}
	defaults := dramlat.DefaultSampled()
	configs := []config{
		{"bfs", 1, defaults},
		{"spmv", 1, defaults},
		{"cfd", 1, defaults},
		// The low-occupancy showcase: a longer kernel amortizes the
		// settle prefix, and a long fast-forward pushes the modeled
		// fraction — and with it the speedup — past 10x.
		{"spmv", 4, dramlat.SampledOptions{
			WindowCycles:      defaults.WindowCycles,
			FastForwardCycles: 256_000,
			WarmupCycles:      defaults.WarmupCycles,
		}},
	}

	rep := Report{HostCores: runtime.NumCPU(), Reps: *reps, Scheduler: *sched}
	for _, c := range configs {
		spec := dramlat.RunSpec{Benchmark: c.bench, Scheduler: *sched, Scale: c.scale}
		exact, exactWall := timeRun(spec, *reps)

		sspec := spec
		sspec.Sampled = c.opts
		sampled, sampledWall := timeRun(sspec, *reps)
		if !sampled.Approximate || sampled.Sampling == nil {
			fail(fmt.Errorf("%s: sampled run reported no sampling stats", c.bench))
		}

		cell := Cell{
			Benchmark: c.bench, Scale: c.scale,
			WindowCycles:      c.opts.WindowCycles,
			FastForwardCycles: c.opts.FastForwardCycles,
			WarmupCycles:      c.opts.WarmupCycles,
			EventTicks:        exact.Ticks,
			EventWallNS:       exactWall.Nanoseconds(),
			EventTicksPS:      float64(exact.Ticks) / exactWall.Seconds(),
			SampledTicks:      sampled.Ticks,
			SampledWallNS:     sampledWall.Nanoseconds(),
			SampledTicksPS:    float64(sampled.Ticks) / sampledWall.Seconds(),
			Windows:           sampled.Sampling.Windows,
			DetailedTicks:     sampled.Sampling.DetailedTicks,
			ModeledTicks:      sampled.Sampling.ModeledTicks,
			IPCExact:          exact.IPC, IPCSampled: sampled.IPC,
			GapP50Exact: exact.GapP50, GapP50Samp: sampled.GapP50,
			GapP90Exact: exact.GapP90, GapP90Samp: sampled.GapP90,
			GapP99Exact: exact.GapP99, GapP99Samp: sampled.GapP99,
		}
		cell.SpeedupX = cell.SampledTicksPS / cell.EventTicksPS
		if err := dramlat.CompareSampled(sampled, exact, dramlat.DefaultBounds()); err != nil {
			cell.Violation = err.Error()
		} else {
			cell.WithinBounds = true
		}
		fmt.Fprintf(os.Stderr, "  %s scale %g: %.1fx (event %.0f t/s, sampled %.0f t/s, within bounds: %v)\n",
			c.bench, c.scale, cell.SpeedupX, cell.EventTicksPS, cell.SampledTicksPS, cell.WithinBounds)
		rep.Cells = append(rep.Cells, cell)
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fail(err)
	}
}
