// Command bench3 measures the event-driven engine (PR 3) against the
// dense reference loop and emits BENCH_3.json: wall-clock ns, simulated
// ticks/sec and speedup per scheduler×workload, plus the engine's
// visit/skip ratios. Workload construction is excluded from the timings
// (it is identical for both engines); each configuration is timed over
// -reps alternating runs and the minimum wall time is reported.
//
// The matrix covers the default-occupancy irregular suite (the "no
// slowdown beyond 5%" guard) and latency-bound low-occupancy
// configurations where dense ticking is almost entirely wasted (the
// ≥3x demonstration).
//
// Usage:
//
//	go run ./scripts/bench3 [-o BENCH_3.json] [-reps 5]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"time"

	"dramlat"
	"dramlat/internal/gpu"
	"dramlat/internal/workload"
)

// Entry is one matrix cell of BENCH_3.json.
type Entry struct {
	Benchmark string  `json:"benchmark"`
	Scheduler string  `json:"scheduler"`
	SMs       int     `json:"sms"`
	WarpsPT   int     `json:"warps_per_sm"`
	Scale     float64 `json:"scale"`
	Ticks     int64   `json:"ticks"`

	DenseNS      int64   `json:"dense_ns"`
	EventNS      int64   `json:"event_ns"`
	DenseTicksPS float64 `json:"dense_ticks_per_sec"`
	EventTicksPS float64 `json:"event_ticks_per_sec"`
	Speedup      float64 `json:"speedup"`

	// Fractions of the dense tick×component grid the event engine
	// actually executed.
	VisitedFrac  float64 `json:"visited_frac"`
	SMTickFrac   float64 `json:"sm_tick_frac"`
	PartTickFrac float64 `json:"part_tick_frac"`
}

// Report wraps the matrix with the host context needed to read it.
type Report struct {
	HostCores  int `json:"host_cores"`
	GOMAXPROCS int `json:"gomaxprocs"`
	// Caveat is set when the host has fewer cores than GOMAXPROCS: the
	// Go runtime then time-slices its threads and wall-clock numbers
	// include scheduler noise the benchmark does not control.
	Caveat  string  `json:"caveat,omitempty"`
	Entries []Entry `json:"entries"`
}

type cell struct {
	bench, sched string
	sms, warps   int
	scale        float64
}

func matrix() []cell {
	var cells []cell
	// Default occupancy: the regression guard. Every irregular workload
	// under the GMC baseline and the paper's best scheduler.
	for _, b := range dramlat.IrregularNames() {
		for _, s := range []string{"gmc", "wg-w"} {
			cells = append(cells, cell{b, s, 30, 32, 0.25})
		}
	}
	// Latency-bound low occupancy: one warp per SM leaves the dense loop
	// ticking mostly-idle cores; at 120 SMs the six channels saturate and
	// nearly every SM tick is skippable.
	for _, b := range []string{"bfs", "spmv"} {
		for _, s := range []string{"fcfs", "gmc", "wg-w"} {
			cells = append(cells, cell{b, s, 30, 1, 0.5})
			cells = append(cells, cell{b, s, 120, 1, 0.5})
		}
	}
	return cells
}

func run(c cell, dense bool) (*gpu.System, gpu.Results, time.Duration) {
	cfg := gpu.DefaultConfig()
	cfg.Scheduler = c.sched
	cfg.NumSMs = c.sms
	cfg.WarpsPerSM = c.warps
	cfg.DenseLoop = dense
	p := workload.DefaultParams()
	p.Scale = c.scale
	p.NumSMs = c.sms
	p.WarpsPerSM = c.warps
	b, err := workload.ByName(c.bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench3:", err)
		os.Exit(1)
	}
	w := b.Build(p)
	sys, err := gpu.NewSystem(cfg, w)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench3:", err)
		os.Exit(1)
	}
	start := time.Now()
	res, err := sys.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench3:", err)
		os.Exit(1)
	}
	return sys, res, time.Since(start)
}

func main() {
	out := flag.String("o", "BENCH_3.json", "output file (\"-\" = stdout)")
	reps := flag.Int("reps", 5, "timed repetitions per engine (minimum is reported)")
	flag.Parse()

	var entries []Entry
	for _, c := range matrix() {
		var denseMin, eventMin time.Duration
		var denseRes, eventRes gpu.Results
		var eng gpu.EngineStats
		for r := 0; r < *reps; r++ {
			_, dres, ddt := run(c, true)
			sys, eres, edt := run(c, false)
			if r == 0 {
				denseMin, eventMin = ddt, edt
				denseRes, eventRes, eng = dres, eres, sys.Engine
				continue
			}
			if ddt < denseMin {
				denseMin = ddt
			}
			if edt < eventMin {
				eventMin = edt
			}
		}
		if !reflect.DeepEqual(denseRes, eventRes) {
			fmt.Fprintf(os.Stderr, "bench3: %s/%s results diverge between engines\n", c.bench, c.sched)
			os.Exit(1)
		}
		grid := denseRes.Ticks + 1
		e := Entry{
			Benchmark: c.bench, Scheduler: c.sched,
			SMs: c.sms, WarpsPT: c.warps, Scale: c.scale,
			Ticks:   denseRes.Ticks,
			DenseNS: denseMin.Nanoseconds(), EventNS: eventMin.Nanoseconds(),
			DenseTicksPS: float64(denseRes.Ticks) / denseMin.Seconds(),
			EventTicksPS: float64(eventRes.Ticks) / eventMin.Seconds(),
			Speedup:      float64(denseMin) / float64(eventMin),
			VisitedFrac:  float64(eng.VisitedTicks) / float64(grid),
			SMTickFrac:   float64(eng.SMTicks) / float64(grid*int64(c.sms)),
			PartTickFrac: float64(eng.PartTicks) / float64(grid*6),
		}
		entries = append(entries, e)
		fmt.Fprintf(os.Stderr, "%-14s %-7s sms=%-4d warps=%-3d ticks=%-9d dense=%-10s event=%-10s %5.2fx\n",
			c.bench, c.sched, c.sms, c.warps, e.Ticks,
			denseMin.Round(time.Microsecond), eventMin.Round(time.Microsecond), e.Speedup)
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench3:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	rep := Report{
		HostCores:  runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Entries:    entries,
	}
	if rep.HostCores < rep.GOMAXPROCS {
		rep.Caveat = fmt.Sprintf(
			"host has %d core(s) but GOMAXPROCS is %d: wall-clock timings include runtime thread time-slicing noise",
			rep.HostCores, rep.GOMAXPROCS)
		fmt.Fprintln(os.Stderr, "bench3: WARNING:", rep.Caveat)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "bench3:", err)
		os.Exit(1)
	}
}
