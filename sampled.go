package dramlat

import (
	"dramlat/internal/gpu"
	"dramlat/internal/stats"
)

// The sampled engine's correctness contract is distributional, not
// byte-identical: a sampled run's IPC and divergence-gap percentiles
// must land within configured bounds of the event engine's exact
// values. CompareSampled is that validator; the CI accuracy gate runs
// it across every scheduler (see TestSampledAccuracyGate).

// Bound is one metric's allowed deviation: the larger of Rel×|exact|
// and the absolute floor Abs (re-exported from internal/stats).
type Bound = stats.Bound

// Bounds is the per-metric tolerance set for CompareSampled.
type Bounds = stats.Bounds

// DefaultBounds returns the tolerances the CI accuracy gate enforces.
func DefaultBounds() Bounds { return stats.DefaultBounds() }

// SamplingStats re-exports the sampled engine's coverage/error-bar
// report attached to approximate Results.
type SamplingStats = gpu.SamplingStats

// CompareSampled validates an approximate (sampled-engine) result
// against an exact reference from the same spec: IPC and the p50/p90/
// p99 divergence-gap percentiles must each fall within bounds. The
// worst violation is returned as a *AccuracyError; nil means the
// sampled run is within its error contract.
func CompareSampled(sampled, exact Results, b Bounds) error {
	return stats.Check([]stats.MetricPair{
		{Name: "ipc", Sampled: sampled.IPC, Exact: exact.IPC, Bound: b.IPC},
		{Name: "gap_p50", Sampled: sampled.GapP50, Exact: exact.GapP50, Bound: b.GapP50},
		{Name: "gap_p90", Sampled: sampled.GapP90, Exact: exact.GapP90, Bound: b.GapP90},
		{Name: "gap_p99", Sampled: sampled.GapP99, Exact: exact.GapP99, Bound: b.GapP99},
	})
}
