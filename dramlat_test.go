package dramlat

import (
	"strings"
	"testing"
)

func TestRegistries(t *testing.T) {
	if len(Schedulers()) != 12 {
		t.Fatalf("%d schedulers", len(Schedulers()))
	}
	if len(WarpAwareSchedulers()) != 4 {
		t.Fatalf("%d warp-aware schedulers", len(WarpAwareSchedulers()))
	}
	if len(Benchmarks()) != 17 {
		t.Fatalf("%d benchmarks, want 11 irregular + 6 regular", len(Benchmarks()))
	}
	if len(IrregularNames()) != 11 || len(RegularNames()) != 6 {
		t.Fatal("suite split wrong")
	}
}

func TestMERBTableFacade(t *testing.T) {
	tab := MERBTable(16)
	want := []int{31, 20, 10, 7, 5, 5}
	for i, w := range want {
		if tab[i] != w {
			t.Fatalf("MERB table %v", tab[:6])
		}
	}
}

func TestTimingFacade(t *testing.T) {
	tm := Timing()
	if tm.TRC != 60 || tm.TCAS != 18 {
		t.Fatalf("timing %+v", tm)
	}
}

func TestConfigOverrides(t *testing.T) {
	cfg := Config(RunSpec{SMs: 4, WarpsPerSM: 8, Scheduler: "wg", SBWASAlpha: 0.75, ZeroDivergence: true})
	if cfg.NumSMs != 4 || cfg.WarpsPerSM != 8 || cfg.Scheduler != "wg" ||
		cfg.SBWASAlpha != 0.75 || !cfg.ZeroDivergence {
		t.Fatalf("config %+v", cfg)
	}
	// Defaults preserved when unset.
	def := Config(RunSpec{})
	if def.NumSMs != 30 || def.Scheduler != "gmc" {
		t.Fatalf("defaults %+v", def)
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(RunSpec{Benchmark: "nope", Scheduler: "gmc"}); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if _, err := Run(RunSpec{Benchmark: "bfs", Scheduler: "nope"}); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
}

func TestRunSmall(t *testing.T) {
	res, err := Run(RunSpec{
		Benchmark: "bfs", Scheduler: "wg-w",
		Scale: 0.1, SMs: 4, WarpsPerSM: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Workload != "bfs" || res.Scheduler != "wg-w" {
		t.Fatalf("identity %q/%q", res.Workload, res.Scheduler)
	}
	if res.Ticks <= 0 || res.IPC <= 0 || res.DRAM.ReadTxns == 0 {
		t.Fatalf("degenerate results %+v", res)
	}
	pw := EstimatePower(res)
	if pw.TotalMW <= pw.BackgroundMW {
		t.Fatalf("power breakdown %+v", pw)
	}
}

func TestRunDeterministicFacade(t *testing.T) {
	spec := RunSpec{Benchmark: "sad", Scheduler: "gmc", Scale: 0.1, SMs: 4, WarpsPerSM: 4, Seed: 3}
	a, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Ticks != b.Ticks || a.DRAM.ACTs != b.DRAM.ACTs {
		t.Fatal("facade runs nondeterministic")
	}
}

func TestBenchmarkInfoFields(t *testing.T) {
	for _, b := range Benchmarks() {
		if b.Name == "" || b.Suite == "" || b.Desc == "" {
			t.Fatalf("incomplete info %+v", b)
		}
		if strings.ContainsAny(b.Name, " \t") {
			t.Fatalf("benchmark name %q has spaces", b.Name)
		}
	}
}
