package dramlat

import (
	"reflect"
	"testing"

	"dramlat/internal/gpu"
	"dramlat/internal/telemetry"
	"dramlat/internal/workload"
)

// runBoth executes the same spec under both engines and returns the two
// result digests plus telemetry bundles.
func runBoth(t *testing.T, spec RunSpec) (dense, event Results, dtel, etel *Telemetry) {
	t.Helper()
	ds := spec
	ds.DenseLoop = true
	var err error
	dense, dtel, err = RunTelemetry(ds)
	if err != nil {
		t.Fatalf("dense run: %v", err)
	}
	es := spec
	es.DenseLoop = false
	event, etel, err = RunTelemetry(es)
	if err != nil {
		t.Fatalf("event run: %v", err)
	}
	return dense, event, dtel, etel
}

// TestEventDrivenMatchesDense is the differential proof behind the
// event-driven engine: for every scheduler, with telemetry off and on,
// the next-wakeup loop must produce Results byte-identical to the dense
// reference loop. Any mismatch means a component reported a wakeup tick
// later than its first real state change.
func TestEventDrivenMatchesDense(t *testing.T) {
	workloads := []string{"bfs", "streamcluster"}
	for _, sched := range Schedulers() {
		for _, wl := range workloads {
			spec := RunSpec{
				Benchmark: wl, Scheduler: sched,
				Scale: 0.05, SMs: 6, WarpsPerSM: 8,
			}
			t.Run(sched+"/"+wl, func(t *testing.T) {
				dense, event, _, _ := runBoth(t, spec)
				if !reflect.DeepEqual(dense, event) {
					t.Fatalf("results diverge\ndense: %+v\nevent: %+v", dense, event)
				}
			})
			t.Run(sched+"/"+wl+"/telemetry", func(t *testing.T) {
				sp := spec
				sp.Telemetry = telemetry.Options{
					Events: true, EventCap: 1 << 14, SampleEvery: 500,
				}
				dense, event, dtel, etel := runBoth(t, sp)
				if !reflect.DeepEqual(dense, event) {
					t.Fatalf("results diverge\ndense: %+v\nevent: %+v", dense, event)
				}
				if !reflect.DeepEqual(dtel.Sampler.SMs, etel.Sampler.SMs) {
					t.Fatalf("SM samples diverge\ndense: %+v\nevent: %+v",
						dtel.Sampler.SMs, etel.Sampler.SMs)
				}
				if !reflect.DeepEqual(dtel.Sampler.Channels, etel.Sampler.Channels) {
					t.Fatalf("channel samples diverge\ndense: %+v\nevent: %+v",
						dtel.Sampler.Channels, etel.Sampler.Channels)
				}
				if !reflect.DeepEqual(dtel.Sampler.Globals, etel.Sampler.Globals) {
					t.Fatalf("global samples diverge\ndense: %+v\nevent: %+v",
						dtel.Sampler.Globals, etel.Sampler.Globals)
				}
			})
		}
	}
}

// TestEventDrivenMatchesDenseRefresh exercises the refresh path, which the
// public RunSpec does not expose: the channel's wakeup must account for the
// tREFI arming tick even while otherwise idle.
func TestEventDrivenMatchesDenseRefresh(t *testing.T) {
	for _, sched := range []string{"gmc", "frfcfs", "wg-w"} {
		t.Run(sched, func(t *testing.T) {
			build := func(dense bool) Results {
				cfg := gpu.DefaultConfig()
				cfg.NumSMs = 6
				cfg.WarpsPerSM = 8
				cfg.Scheduler = sched
				cfg.EnableRefresh = true
				cfg.DenseLoop = dense
				p := workload.DefaultParams()
				p.NumSMs = cfg.NumSMs
				p.WarpsPerSM = cfg.WarpsPerSM
				p.Scale = 0.05
				b, err := workload.ByName("bfs")
				if err != nil {
					t.Fatal(err)
				}
				sys, err := gpu.NewSystem(cfg, b.Build(p))
				if err != nil {
					t.Fatal(err)
				}
				res, err := sys.Run()
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			dense, event := build(true), build(false)
			if !reflect.DeepEqual(dense, event) {
				t.Fatalf("results diverge with refresh\ndense: %+v\nevent: %+v", dense, event)
			}
		})
	}
}
