package dramlat

import (
	"errors"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"dramlat/internal/gpu"
	"dramlat/internal/guard/chaos"
	"dramlat/internal/telemetry"
	"dramlat/internal/workload"
)

func workloadParams(sms, warps int, scale float64) workload.Params {
	p := workload.DefaultParams()
	p.NumSMs = sms
	p.WarpsPerSM = warps
	p.Scale = scale
	return p
}

func benchBuild(t *testing.T, name string, p workload.Params) gpu.Workload {
	t.Helper()
	b, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return b.Build(p)
}

// runSerialParallel executes the same spec under the serial event engine
// and the parallel engine and returns both digests plus telemetry.
func runSerialParallel(t *testing.T, spec RunSpec) (serial, par Results, stel, ptel *Telemetry) {
	t.Helper()
	ss := spec
	ss.Engine = ""
	var err error
	serial, stel, err = RunTelemetry(ss)
	if err != nil {
		t.Fatalf("serial run: %v", err)
	}
	ps := spec
	ps.Engine = "parallel"
	par, ptel, err = RunTelemetry(ps)
	if err != nil {
		t.Fatalf("parallel run: %v", err)
	}
	return serial, par, stel, ptel
}

// TestParallelMatchesEvent is the differential proof behind the parallel
// engine: for every scheduler and an irregular-workload cross-section, at
// both the paper's 30-SM machine and a 120-SM scale-up, the epoch-parallel
// loop must produce Results byte-identical to the serial event engine. Any
// mismatch means a phase domain touched state outside its shard or a
// barrier absorbed staged work out of serial order.
func TestParallelMatchesEvent(t *testing.T) {
	workloads := []string{"bfs", "spmv", "cfd"}
	smCounts := []int{30, 120}
	if testing.Short() {
		workloads = []string{"bfs"}
		smCounts = []int{30}
	}
	for _, sched := range Schedulers() {
		for _, wl := range workloads {
			for _, sms := range smCounts {
				spec := RunSpec{
					Benchmark: wl, Scheduler: sched,
					Scale: 0.02, SMs: sms, WarpsPerSM: 8,
				}
				t.Run(sched+"/"+wl+"/sm"+itoa(sms), func(t *testing.T) {
					serial, par, _, _ := runSerialParallel(t, spec)
					if !reflect.DeepEqual(serial, par) {
						t.Fatalf("results diverge\nserial:   %+v\nparallel: %+v", serial, par)
					}
				})
			}
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestParallelTelemetryMatches checks the staged-absorb machinery end to
// end: event traces (including ring-drop behavior) and interval samples
// must be byte-identical, not just the result digest.
func TestParallelTelemetryMatches(t *testing.T) {
	for _, sched := range []string{"frfcfs", "wg-w", "wg-sh", "atlas", "wafcfs"} {
		t.Run(sched, func(t *testing.T) {
			spec := RunSpec{
				Benchmark: "spmv", Scheduler: sched,
				Scale: 0.05, SMs: 6, WarpsPerSM: 8,
				Telemetry: telemetry.Options{Events: true, EventCap: 1 << 14, SampleEvery: 500},
			}
			serial, par, stel, ptel := runSerialParallel(t, spec)
			if !reflect.DeepEqual(serial, par) {
				t.Fatalf("results diverge\nserial:   %+v\nparallel: %+v", serial, par)
			}
			if !reflect.DeepEqual(stel.Tracer.Events(), ptel.Tracer.Events()) {
				t.Fatal("trace events diverge")
			}
			if stel.Tracer.Dropped() != ptel.Tracer.Dropped() {
				t.Fatalf("ring drops diverge: serial %d, parallel %d", stel.Tracer.Dropped(), ptel.Tracer.Dropped())
			}
			if !reflect.DeepEqual(stel.Sampler, ptel.Sampler) {
				t.Fatal("interval samples diverge")
			}
		})
	}
}

// TestParallelShardCountInvariance: Results must not depend on the worker
// count — explicit Shards from 1 to 2x the partition count, and a
// GOMAXPROCS=1 process (the CI determinism check sets it via env) must all
// reproduce the serial digest.
func TestParallelShardCountInvariance(t *testing.T) {
	spec := RunSpec{Benchmark: "bfs", Scheduler: "wg-w", Scale: 0.05, SMs: 12, WarpsPerSM: 8}
	ref, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Engine = "parallel"
	for _, shards := range []int{1, 2, 3, 7, 12} {
		spec.Shards = shards
		got, err := Run(spec)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("shards=%d: results diverge from serial", shards)
		}
	}
	// Force single-threaded execution: the spin barriers must degrade to
	// Gosched handoffs without deadlock or divergence.
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	spec.Shards = 4
	got, err := Run(spec)
	if err != nil {
		t.Fatalf("GOMAXPROCS=1: %v", err)
	}
	if !reflect.DeepEqual(ref, got) {
		t.Fatal("GOMAXPROCS=1: results diverge from serial")
	}
}

// TestParallelRefreshMatches exercises the refresh path (not exposed via
// RunSpec) under the parallel engine.
func TestParallelRefreshMatches(t *testing.T) {
	for _, sched := range []string{"gmc", "frfcfs", "wg-w"} {
		t.Run(sched, func(t *testing.T) {
			build := func(engine string) Results {
				cfg := gpu.DefaultConfig()
				cfg.NumSMs = 6
				cfg.WarpsPerSM = 8
				cfg.Scheduler = sched
				cfg.EnableRefresh = true
				cfg.Engine = engine
				p := workloadParams(cfg.NumSMs, cfg.WarpsPerSM, 0.05)
				sys, err := gpu.NewSystem(cfg, benchBuild(t, "bfs", p))
				if err != nil {
					t.Fatal(err)
				}
				res, err := sys.Run()
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			serial, par := build(""), build("parallel")
			if !reflect.DeepEqual(serial, par) {
				t.Fatalf("results diverge with refresh\nserial:   %+v\nparallel: %+v", serial, par)
			}
		})
	}
}

// TestParallelStallDumpShards: a comatose partition under the parallel
// engine must trip the watchdog like the serial engines, and the dump must
// carry the per-shard progress table.
func TestParallelStallDumpShards(t *testing.T) {
	spec := RunSpec{
		Benchmark: "bfs", Scheduler: "wg-w",
		Scale: 0.05, SMs: 4, WarpsPerSM: 8,
		StallCycles: 20_000,
		Engine:      "parallel",
		Chaos:       &Faults{WakeTarget: chaos.TargetPartition, WakeIndex: 0, WakeAfter: 200},
	}
	_, err := Run(spec)
	var stall *StallError
	if !errors.As(err, &stall) {
		t.Fatalf("want *StallError, got %v", err)
	}
	if stall.Kind != StallNoProgress {
		t.Fatalf("kind = %q", stall.Kind)
	}
	if len(stall.Dump.Shards) == 0 {
		t.Fatal("parallel stall dump carries no shard states")
	}
	var sawSM, sawPart bool
	for _, sh := range stall.Dump.Shards {
		switch sh.Kind {
		case "sm":
			sawSM = true
		case "part":
			sawPart = true
		}
		if sh.Last < sh.First {
			t.Fatalf("empty shard range in dump: %+v", sh)
		}
	}
	if !sawSM || !sawPart {
		t.Fatalf("dump shard kinds incomplete: %+v", stall.Dump.Shards)
	}
	if s := stall.Dump.String(); !strings.Contains(s, "shard") {
		t.Fatalf("rendered dump omits the shard table: %q", s)
	}
	// Live warps must be attributed to SM shards.
	live := 0
	for _, sh := range stall.Dump.Shards {
		live += sh.LiveWarps
	}
	if live == 0 {
		t.Fatal("shard table shows no live warps despite the hang")
	}
}

// TestEngineValidation: the engine knobs validate without running.
func TestEngineValidation(t *testing.T) {
	spec := RunSpec{Benchmark: "bfs", Scheduler: "wg-w", Scale: 0.05, SMs: 2, WarpsPerSM: 4}

	bad := spec
	bad.Engine = "quantum"
	var ve *ValidationError
	if err := bad.Validate(); !errors.As(err, &ve) {
		t.Fatalf("unknown engine accepted: %v", err)
	}

	bad = spec
	bad.Engine = "parallel"
	bad.DenseLoop = true
	if err := bad.Validate(); !errors.As(err, &ve) {
		t.Fatalf("parallel+DenseLoop accepted: %v", err)
	}

	bad = spec
	bad.Engine = "parallel"
	bad.Shards = -1
	if err := bad.Validate(); !errors.As(err, &ve) {
		t.Fatalf("negative Shards accepted: %v", err)
	}

	// CmdLog is a Config-level knob: command logging is inherently serial.
	cfg := gpu.DefaultConfig()
	cfg.Engine = gpu.EngineParallel
	cfg.CmdLog = &strings.Builder{}
	if err := cfg.Validate(); !errors.As(err, &ve) {
		t.Fatalf("parallel+CmdLog accepted: %v", err)
	}
	cfg.CmdLog = nil
	if err := cfg.Validate(); err != nil {
		t.Fatalf("plain parallel config rejected: %v", err)
	}
}
