package dramlat

// End-to-end telemetry contract: a traced run's event stream must be
// structurally legal (DRAM command legality, balanced begin/end spans) and
// rich enough to reproduce the collector's headline divergence metric from
// the trace alone. The overhead benchmarks pin the
// zero-cost-when-disabled design (see internal/telemetry).

import (
	"testing"

	"dramlat/internal/telemetry"
)

func tinyTelemetrySpec(sched string) RunSpec {
	return RunSpec{
		Benchmark: "bfs", Scheduler: sched, Scale: 0.05, SMs: 2, WarpsPerSM: 4,
		Telemetry: TelemetryOptions{Events: true, SampleEvery: 200},
	}
}

func TestRunTelemetryDisabledReturnsNil(t *testing.T) {
	spec := tinyTelemetrySpec("gmc")
	spec.Telemetry = TelemetryOptions{}
	_, tel, err := RunTelemetry(spec)
	if err != nil {
		t.Fatal(err)
	}
	if tel != nil {
		t.Fatal("telemetry bundle returned for a disabled run")
	}
}

func TestTelemetryDoesNotPerturbResults(t *testing.T) {
	spec := tinyTelemetrySpec("wg-w")
	plain := spec
	plain.Telemetry = TelemetryOptions{}
	a, err := Run(plain)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := RunTelemetry(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Ticks != b.Ticks || a.Instr != b.Instr || a.Summary != b.Summary {
		t.Fatalf("telemetry changed the simulation: %+v vs %+v", a, b)
	}
}

func TestTraceValidAndReproducesDivergenceGap(t *testing.T) {
	// wg-w exercises every event source: MERB streaks, write drains,
	// coordination; gmc covers the baseline path.
	for _, sched := range []string{"gmc", "wg-w"} {
		res, tel, err := RunTelemetry(tinyTelemetrySpec(sched))
		if err != nil {
			t.Fatalf("%s: %v", sched, err)
		}
		if tel == nil || tel.Tracer == nil || tel.Sampler == nil {
			t.Fatalf("%s: missing telemetry bundle", sched)
		}
		if tel.Tracer.Dropped() != 0 {
			t.Fatalf("%s: ring wrapped on a tiny run (%d dropped)", sched, tel.Tracer.Dropped())
		}
		evs := tel.Tracer.Events()
		telemetry.SortEvents(evs)
		if err := telemetry.Validate(evs); err != nil {
			t.Fatalf("%s: trace invalid: %v", sched, err)
		}

		a := telemetry.Analyze(evs)
		got, want := a.DivergenceGap(), res.Summary.DivergenceGap
		if diff := got - want; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("%s: trace gap %.6f != collector gap %.6f", sched, got, want)
		}

		// The sampler must have produced consistent snapshots: final
		// sample at run end, cumulative counters non-decreasing.
		ivs := tel.Sampler.ChannelIntervals()
		if len(ivs) == 0 {
			t.Fatalf("%s: no sampling intervals", sched)
		}
		for _, iv := range ivs {
			if iv.ACTs < 0 || iv.RDBursts < 0 || iv.BusyFrac < 0 || iv.BusyFrac > 1 {
				t.Fatalf("%s: inconsistent interval %+v", sched, iv)
			}
		}
	}
}

// BenchmarkRunTelemetryOff is the overhead contract's baseline: the same
// simulation as BenchmarkRunTelemetryOn with every probe nil. The disabled
// path must stay within a few percent of a build without instrumentation
// (one nil-check branch per event site).
func BenchmarkRunTelemetryOff(b *testing.B) {
	spec := RunSpec{Benchmark: "spmv", Scheduler: "wg-w", Scale: 0.1}
	benchTelemetry(b, spec)
}

// BenchmarkRunTelemetryOn measures the fully traced run for comparison.
func BenchmarkRunTelemetryOn(b *testing.B) {
	spec := RunSpec{Benchmark: "spmv", Scheduler: "wg-w", Scale: 0.1}
	spec.Telemetry = TelemetryOptions{Events: true, SampleEvery: 1000}
	benchTelemetry(b, spec)
}

func benchTelemetry(b *testing.B, spec RunSpec) {
	var ticks int64
	for i := 0; i < b.N; i++ {
		spec.Seed = int64(i + 1)
		res, _, err := RunTelemetry(spec)
		if err != nil {
			b.Fatal(err)
		}
		ticks += res.Ticks
	}
	b.ReportMetric(float64(ticks)/b.Elapsed().Seconds(), "sim-ticks/s")
}
