// Trace replay example: export a generated workload as a portable text
// trace, then replay it through two schedulers — the workflow for running
// externally captured warp traces through the simulator.
//
//	go run ./examples/tracereplay
package main

import (
	"bytes"
	"fmt"
	"log"

	"dramlat"
	"dramlat/internal/gpu"
	"dramlat/internal/trace"
	"dramlat/internal/workload"
)

func main() {
	// Build a small bfs workload and serialize it.
	p := workload.DefaultParams()
	p.NumSMs, p.WarpsPerSM, p.Scale = 8, 8, 0.3
	b, err := workload.ByName("bfs")
	if err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.Write(&buf, b.Build(p)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exported bfs as a %d-byte text trace\n", buf.Len())

	// Replay the identical trace under two schedulers.
	for _, sched := range []string{"gmc", "wg-bw"} {
		wl, err := trace.Read(bytes.NewReader(buf.Bytes()), "bfs-trace", p.NumSMs, p.WarpsPerSM)
		if err != nil {
			log.Fatal(err)
		}
		cfg := dramlat.Config(dramlat.RunSpec{Scheduler: sched, SMs: p.NumSMs, WarpsPerSM: p.WarpsPerSM})
		sys, err := gpu.NewSystem(cfg, wl)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sys.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s ticks=%-8d IPC=%.3f divergence-gap=%.0f\n",
			sched, res.Ticks, res.IPC, res.Summary.DivergenceGap)
	}
	fmt.Println("\n(the same trace file can come from any external tool; see")
	fmt.Println(" internal/trace for the format and cmd/dltrace for the CLI)")
}
